(* Quickstart: the paper's running example (Figures 1-3), end to end.

   A source schema Customer with three tuples, a target schema Person, five
   possible mappings with probabilities, and the introduction's query

     q : π_phone σ_addr='aaa' Person

   whose answer the paper works out as {(123, 0.5), (456, 0.8), (789, 0.2)}.

   Run with: dune exec examples/quickstart.exe *)

open Urm_relalg

let source =
  Schema.make "CustomerDB"
    [
      ( "Customer",
        [
          ("cid", Schema.TInt); ("cname", Schema.TStr); ("ophone", Schema.TStr);
          ("hphone", Schema.TStr); ("mobile", Schema.TStr); ("oaddr", Schema.TStr);
          ("haddr", Schema.TStr); ("nid", Schema.TInt);
        ] );
    ]

let target =
  Schema.make "PersonDB"
    [
      ( "Person",
        [
          ("pname", Schema.TStr); ("phone", Schema.TStr); ("addr", Schema.TStr);
          ("nation", Schema.TStr); ("gender", Schema.TStr);
        ] );
    ]

(* Figure 2: the Customer relation. *)
let customer =
  let s v = Value.Str v and i v = Value.Int v in
  Relation.create
    ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "mobile"; "oaddr"; "haddr"; "nid" ]
    [
      [| i 1; s "Alice"; s "123"; s "789"; s "555"; s "aaa"; s "hk"; i 1 |];
      [| i 2; s "Bob"; s "456"; s "123"; s "556"; s "bbb"; s "hk"; i 1 |];
      [| i 3; s "Cindy"; s "456"; s "789"; s "557"; s "aaa"; s "aaa"; i 2 |];
    ]

(* Figure 3: five possible mappings with probabilities 0.3/0.2/0.2/0.2/0.1.
   Correspondences are (target attribute ← source attribute). *)
let mappings =
  let make id prob pairs = Urm.Mapping.make ~id ~prob ~score:prob pairs in
  [
    make 0 0.3
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr") ];
    make 1 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr"); ("Person.gender", "Customer.nid") ];
    make 2 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr") ];
    make 3 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.hphone");
        ("Person.addr", "Customer.haddr") ];
    (* Like the paper's m5, this mapping matches pname elsewhere but shares
       (ophone, phone) and (haddr, addr) with other mappings. *)
    make 4 0.1
      [ ("Person.pname", "Customer.mobile"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr") ];
  ]

let () =
  let catalog = Catalog.create () in
  Catalog.add catalog "Customer" customer;
  let ctx = Urm.Ctx.make ~catalog ~source ~target () in

  (* π_phone σ_addr='aaa' Person *)
  let q =
    Urm.Query.make ~name:"q" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", Value.Str "aaa") ]
      ~projection:[ Urm.Query.at "Person" "phone" ]
      ()
  in
  Format.printf "Target query: %a@.@." Urm.Query.pp q;

  (* Every algorithm computes the same probabilistic answer. *)
  List.iter
    (fun alg ->
      let report = Urm.Algorithms.run alg ctx q mappings in
      Format.printf "%-14s -> %a@." (Urm.Algorithms.name alg) Urm.Answer.pp
        report.Urm.Report.answer)
    [
      Urm.Algorithms.Basic;
      Urm.Algorithms.Ebasic;
      Urm.Algorithms.Qsharing;
      Urm.Algorithms.Osharing Urm.Eunit.Sef;
    ];

  (* The paper's §III-B worked answer: (123, 0.5), (456, 0.8), (789, 0.2). *)
  let answer = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q mappings).Urm.Report.answer in
  Format.printf "@.Expected (paper §III-B): (123, 0.5) (456, 0.8) (789, 0.2)@.";
  List.iter
    (fun (v, p) ->
      Format.printf "Got: (%s, %.1f)@."
        (Value.to_string v.(0)) p)
    (Urm.Answer.to_list answer);

  (* A top-1 query returns 456 without computing all probabilities. *)
  let top = Urm.Topk.run ~k:1 ctx q mappings in
  match Urm.Answer.to_list top.Urm.Topk.report.Urm.Report.answer with
  | [ (v, lb) ] ->
    Format.printf "@.Top-1 answer: %s (lower-bound probability %.1f)@."
      (Value.to_string v.(0)) lb
  | _ -> Format.printf "@.Top-1 answer: unexpected@."
