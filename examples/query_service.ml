(* The query service, embedded: start a server in-process on an ephemeral
   loopback port, talk to it over the wire protocol, and watch the answer
   cache and latency metrics work.

   The same server is what `urm serve` runs; the same protocol is what
   `urm request` speaks.  Embedding it like this is how the smoke test and
   any OCaml host process would use it.

   Run with: dune exec examples/query_service.exe *)

module Json = Urm_util.Json
module Server = Urm_service.Server
module Client = Urm_service.Client

let show label = function
  | Ok json -> Format.printf "%-12s -> %s@." label (Json.to_string json)
  | Error (code, msg) -> Format.printf "%-12s -> error %s: %s@." label code msg

let () =
  (* Port 0 binds an ephemeral port — nothing else on the machine is
     disturbed.  Four worker domains, a 64-deep admission queue. *)
  let server =
    Server.start { Server.default_config with port = 0; workers = 4 }
  in
  let port = Server.port server in
  Format.printf "server listening on 127.0.0.1:%d@.@." port;

  let c = Client.connect ~port () in
  show "ping" (Client.call c ~op:"ping" []);

  (* A session pins a matching workload: target schema, matcher seed,
     scale and mapping count.  Its fingerprint — a stable hash of all of
     those plus the mapping distribution — keys the answer cache. *)
  let session = ("session", Json.Str "demo") in
  show "open"
    (Client.call c ~op:"open-session"
       [
         session;
         ("target", Json.Str "Excel");
         ("seed", Json.Num 42.);
         ("scale", Json.Num 0.01);
         ("h", Json.Num 8.);
       ]);

  (* First evaluation computes; the repeat is served from the cache
     (spot the "cached":true and the seconds field). *)
  let q1 = [ session; ("query", Json.Str "Q1") ] in
  show "Q1 cold" (Client.call c ~op:"query" q1);
  show "Q1 warm" (Client.call c ~op:"query" q1);

  (* The cache key uses the canonical query, so the SQL spelling of Q1 —
     even with the conjuncts reordered — hits the same entry. *)
  show "Q1 as SQL"
    (Client.call c ~op:"query"
       [
         session;
         ( "sql",
           Json.Str
             "SELECT * FROM PO WHERE invoiceTo = 'Mary' AND priority = 2 AND \
              telephone = '335-1736'" );
       ]);

  (* Top-k and threshold queries cache under their own variants. *)
  show "top-3" (Client.call c ~op:"topk" [ session; ("query", Json.Str "Q2"); ("k", Json.Num 3.) ]);
  show "tau=0.3"
    (Client.call c ~op:"threshold"
       [ session; ("query", Json.Str "Q2"); ("tau", Json.Num 0.3) ]);

  (* Request counts, cache hit/miss/evict, queue depth and p50/p95. *)
  show "metrics" (Client.call c ~op:"metrics" []);

  (* Graceful drain: in-flight work finishes, then the pool exits. *)
  show "shutdown" (Client.call c ~op:"shutdown" []);
  Client.close c;
  Server.wait server;
  Format.printf "@.server drained.@."
