(* Beyond the paper: SQL input, compound (set-operator) queries, threshold
   queries, and persistence of the matching.

   The paper's future work (§IX) asks for set operators on top of o-sharing;
   this example runs a UNION / EXCEPT over two purchase-order queries, a
   probability-threshold query, and shows the matching being saved to JSON
   and the source instance to CSV.

   Run with: dune exec examples/advanced_features.exe *)

let () =
  let pipeline = Urm_workload.Pipeline.create ~seed:31 ~scale:0.03 () in
  let target = Urm_workload.Targets.excel in
  let ctx = Urm_workload.Pipeline.ctx pipeline target in
  let mappings = Urm_workload.Pipeline.mappings pipeline target ~h:100 in

  (* 1. Queries straight from SQL. *)
  let parse s = Urm.Sql.parse_exn ~name:s ~target s in
  let q_mary = parse "SELECT telephone FROM PO WHERE invoiceTo = 'Mary'" in
  let q_central = parse "SELECT telephone FROM PO WHERE deliverToStreet = 'Central'" in
  Format.printf "q1: %s@.q2: %s@.@." (Urm.Sql.to_sql q_mary) (Urm.Sql.to_sql q_central);

  (* 2. Compound queries: phones that invoice Mary OR deliver to Central,
     and phones that invoice Mary but do NOT deliver to Central. *)
  let union = Urm.Compound.Union (Query q_mary, Query q_central) in
  let except = Urm.Compound.Except (Query q_mary, Query q_central) in
  let show name c =
    let r = Urm.Compound.run ctx c mappings in
    Format.printf "%s: %d answers (θ=%.3f), %d source operators, %d groups@."
      name
      (Urm.Answer.size r.Urm.Report.answer)
      (Urm.Answer.null_prob r.Urm.Report.answer)
      r.Urm.Report.source_operators r.Urm.Report.groups;
    List.iter
      (fun (t, p) ->
        Format.printf "   (%s) : %.3f@."
          (String.concat ", " (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
          p)
      (Urm.Answer.top_k r.Urm.Report.answer 3)
  in
  show "mary ∪ central" union;
  show "mary ∖ central" except;

  (* 2b. A grouped aggregate straight from SQL: orders per priority. *)
  let q_grouped =
    parse "SELECT COUNT(*) FROM PO WHERE deliverToStreet = 'Central' GROUP BY priority"
  in
  let r = Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx q_grouped mappings in
  Format.printf "@.%s:@." (Urm.Sql.to_sql q_grouped);
  List.iter
    (fun (t, p) ->
      Format.printf "   (%s) : %.3f@."
        (String.concat ", " (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
        p)
    (Urm.Answer.top_k r.Urm.Report.answer 4);

  (* 2c. Lineage: which mappings support a suspicious answer? *)
  let lin = Urm.Lineage.run ctx q_mary mappings in
  (match lin.Urm.Lineage.entries with
  | e :: _ ->
    Format.printf "@.top answer (%s) is supported by %d of %d mappings@."
      (String.concat ", " (Array.to_list (Array.map Urm_relalg.Value.to_string e.Urm.Lineage.tuple)))
      (List.length e.Urm.Lineage.support) (List.length mappings)
  | [] -> ());

  (* 3. Threshold query: all answers with probability at least 0.5. *)
  let r = Urm.Threshold.run ~tau:0.5 ctx q_mary mappings in
  Format.printf "@.threshold τ=0.5 on q1: %d qualifying answers (early stop: %b)@."
    (Urm.Answer.size r.Urm.Threshold.report.Urm.Report.answer)
    r.Urm.Threshold.stopped_early;

  (* 4. Persist the matching and the data. *)
  let json_path = Filename.temp_file "urm_mappings" ".json" in
  Urm.Mapping_io.save json_path mappings;
  let reloaded = Urm.Mapping_io.load json_path in
  Format.printf "@.saved %d mappings to %s and reloaded %d@." (List.length mappings)
    json_path (List.length reloaded);
  let dir = Filename.temp_file "urm_data" "" in
  Sys.remove dir;
  Urm_relalg.Csv.export_catalog dir ctx.Urm.Ctx.catalog;
  let back = Urm_relalg.Csv.import_catalog ~schema:Urm_tpch.Gen.schema dir in
  Format.printf "exported the source instance to %s/ and re-imported %d rows@." dir
    (Urm_relalg.Catalog.total_rows back);

  (* 5. Reloaded artefacts answer queries identically. *)
  let ctx2 =
    Urm.Ctx.make ~catalog:back ~source:Urm_tpch.Gen.schema ~target ()
  in
  let a1 = (Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx q_mary mappings).Urm.Report.answer in
  let a2 = (Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx2 q_mary reloaded).Urm.Report.answer in
  Format.printf "round-tripped pipeline gives the same answer: %b@."
    (Urm.Answer.equal a1 a2)
