open Urm_relalg

(* ------------------------------------------------------------------ *)
(* A small self-contained fixture: the paper's running example (Figs 1-3). *)

let source =
  Schema.make "S"
    [
      ( "Customer",
        [
          ("cid", Schema.TInt); ("cname", Schema.TStr); ("ophone", Schema.TStr);
          ("hphone", Schema.TStr); ("mobile", Schema.TStr); ("oaddr", Schema.TStr);
          ("haddr", Schema.TStr); ("nid", Schema.TInt);
        ] );
      ( "C_Order",
        [ ("oid", Schema.TInt); ("cid", Schema.TInt); ("amount", Schema.TFloat) ] );
      ("Nation", [ ("nid", Schema.TInt); ("name", Schema.TStr) ]);
    ]

let target =
  Schema.make "T"
    [
      ( "Person",
        [
          ("pname", Schema.TStr); ("phone", Schema.TStr); ("addr", Schema.TStr);
          ("nation", Schema.TStr); ("gender", Schema.TStr);
        ] );
      ( "Order",
        [
          ("sname", Schema.TStr); ("item", Schema.TStr); ("status", Schema.TStr);
          ("price", Schema.TFloat); ("total", Schema.TFloat);
        ] );
    ]

let s v = Value.Str v
let i v = Value.Int v
let f v = Value.Float v

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "Customer"
    (Relation.create
       ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "mobile"; "oaddr"; "haddr"; "nid" ]
       [
         [| i 1; s "Alice"; s "123"; s "789"; s "555"; s "aaa"; s "hk"; i 1 |];
         [| i 2; s "Bob"; s "456"; s "123"; s "556"; s "bbb"; s "hk"; i 1 |];
         [| i 3; s "Cindy"; s "456"; s "789"; s "557"; s "aaa"; s "aaa"; i 2 |];
       ]);
  Catalog.add cat "C_Order"
    (Relation.create
       ~cols:[ "oid"; "cid"; "amount" ]
       [
         [| i 10; i 1; f 5. |]; [| i 11; i 1; f 7.5 |]; [| i 12; i 3; f 2.25 |];
       ]);
  Catalog.add cat "Nation"
    (Relation.create ~cols:[ "nid"; "name" ] [ [| i 1; s "HK" |]; [| i 2; s "CN" |] ]);
  cat

let ctx () = Urm.Ctx.make ~catalog:(catalog ()) ~source ~target ()

let mk id prob pairs = Urm.Mapping.make ~id ~prob ~score:prob pairs

(* The five mappings of Fig. 3 (restricted to attributes we model). *)
let fig3_mappings () =
  [
    mk 0 0.3
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr"); ("Person.nation", "Nation.name");
        ("Order.price", "C_Order.amount") ];
    mk 1 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr"); ("Person.nation", "Nation.name");
        ("Person.gender", "Customer.nid") ];
    mk 2 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr"); ("Person.nation", "Nation.name");
        ("Order.price", "C_Order.amount") ];
    mk 3 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.hphone");
        ("Person.addr", "Customer.haddr"); ("Person.nation", "Nation.name") ];
    mk 4 0.1
      [ ("Person.pname", "Customer.mobile"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr"); ("Order.item", "Nation.name");
        ("Order.price", "C_Order.amount") ];
  ]

(* π_phone σ_addr='aaa' Person — the paper's §III-B example. *)
let q_paper () =
  Urm.Query.make ~name:"q" ~target
    ~aliases:[ ("Person", "Person") ]
    ~selections:[ (Urm.Query.at "Person" "addr", s "aaa") ]
    ~projection:[ Urm.Query.at "Person" "phone" ]
    ()

(* ------------------------------------------------------------------ *)
(* Mapping *)

let test_mapping_one_to_one () =
  Alcotest.check_raises "dup target"
    (Invalid_argument "Mapping.make: duplicate target Person.phone") (fun () ->
      ignore
        (mk 0 1.
           [ ("Person.phone", "Customer.ophone"); ("Person.phone", "Customer.hphone") ]));
  Alcotest.check_raises "dup source"
    (Invalid_argument "Mapping.make: duplicate source Customer.ophone") (fun () ->
      ignore
        (mk 0 1.
           [ ("Person.phone", "Customer.ophone"); ("Person.pname", "Customer.ophone") ]))

let test_mapping_lookup () =
  let m = List.hd (fig3_mappings ()) in
  Alcotest.(check (option string)) "phone" (Some "Customer.ophone")
    (Urm.Mapping.source_of m "Person.phone");
  Alcotest.(check (option string)) "missing" None (Urm.Mapping.source_of m "Person.gender");
  Alcotest.(check int) "size" 5 (Urm.Mapping.size m)

let test_mapping_o_ratio () =
  let ms = fig3_mappings () in
  let m0 = List.nth ms 0 and m1 = List.nth ms 1 in
  (* m0 ∩ m1 = 4 shared pairs; union = 6. *)
  Alcotest.(check (float 1e-9)) "pairwise" (4. /. 6.) (Urm.Mapping.o_ratio m0 m1);
  Alcotest.(check (float 1e-9)) "self" 1. (Urm.Mapping.o_ratio m0 m0)

let test_mapping_normalize () =
  let ms = Urm.Mapping.normalize (fig3_mappings ()) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Urm.Mapping.total_prob ms)

(* ------------------------------------------------------------------ *)
(* Query *)

let test_query_validation () =
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Query.make: unknown target relation Nope") (fun () ->
      ignore (Urm.Query.make ~name:"x" ~target ~aliases:[ ("A", "Nope") ] ()));
  Alcotest.check_raises "unknown attribute"
    (Invalid_argument "Query.make: unknown attribute Person.zzz") (fun () ->
      ignore
        (Urm.Query.make ~name:"x" ~target
           ~aliases:[ ("Person", "Person") ]
           ~selections:[ (Urm.Query.at "Person" "zzz", s "1") ]
           ()));
  Alcotest.check_raises "unknown alias"
    (Invalid_argument "Query.make: unknown alias Q") (fun () ->
      ignore
        (Urm.Query.make ~name:"x" ~target
           ~aliases:[ ("Person", "Person") ]
           ~selections:[ (Urm.Query.at "Q" "phone", s "1") ]
           ()))

let test_query_referenced_and_output () =
  let q = q_paper () in
  Alcotest.(check (list string)) "referenced"
    [ "Person.addr"; "Person.phone" ]
    (List.map Urm.Query.tattr_to_string (Urm.Query.referenced_attrs q));
  Alcotest.(check (list string)) "output"
    [ "Person.phone" ]
    (List.map Urm.Query.tattr_to_string (Urm.Query.output_attrs q))

let test_query_operators () =
  let q2 =
    Urm.Query.make ~name:"q2" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:
        [ (Urm.Query.at "Person" "addr", s "hk"); (Urm.Query.at "Person" "phone", s "123") ]
      ()
  in
  (* two selections + one product connecting the components + output *)
  Alcotest.(check int) "operator count" 3 (Urm.Query.operator_count q2);
  Alcotest.(check int) "schedulable ops" 4 (List.length (Urm.Query.operators q2))

let test_query_products_from_joins () =
  let q =
    Urm.Query.make ~name:"j" ~target
      ~aliases:[ ("P1", "Person"); ("P2", "Person") ]
      ~joins:[ (Urm.Query.at "P1" "pname", Urm.Query.at "P2" "pname") ]
      ()
  in
  (* the join connects both aliases: no bare product needed *)
  let products =
    List.filter
      (function Urm.Query.Op_product _ -> true | _ -> false)
      (Urm.Query.operators q)
  in
  Alcotest.(check int) "no products" 0 (List.length products)

(* ------------------------------------------------------------------ *)
(* Reformulate *)

let test_reformulate_paper_example () =
  let q = q_paper () in
  let m0 = List.hd (fig3_mappings ()) in
  let sq = Urm.Reformulate.source_query target q m0 in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (match sq.Urm.Reformulate.body with
  | Urm.Reformulate.Expr e ->
    let str = Algebra.to_string e in
    Alcotest.(check bool) "selects oaddr" true (contains str "oaddr=aaa");
    Alcotest.(check bool) "projects ophone" true (contains str "ophone")
  | _ -> Alcotest.fail "expected Expr");
  Alcotest.(check (list string)) "outputs" [ "Person.phone" ]
    (Urm.Reformulate.output_labels sq)

let test_reformulate_unsatisfiable () =
  (* selection on an attribute the mapping does not cover *)
  let q =
    Urm.Query.make ~name:"x" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "gender", s "f") ]
      ()
  in
  let m0 = List.hd (fig3_mappings ()) in
  let sq = Urm.Reformulate.source_query target q m0 in
  Alcotest.(check bool) "unsat" true (sq.Urm.Reformulate.body = Urm.Reformulate.Unsatisfiable)

let test_reformulate_key_groups () =
  let q = q_paper () in
  let keys =
    List.map
      (fun m -> Urm.Reformulate.key (Urm.Reformulate.source_query target q m))
      (fig3_mappings ())
  in
  (* m0/m1 share a source query; m2/m4 share; m3 distinct: 3 distinct keys *)
  Alcotest.(check int) "distinct keys" 3 (List.length (List.sort_uniq compare keys))

let test_reformulate_factor () =
  (* COUNT over Person × Order where Order is unreferenced: factor is the
     cardinality product of Order's cover. *)
  let q =
    Urm.Query.make ~name:"c" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:[ (Urm.Query.at "Person" "addr", s "aaa") ]
      ~aggregate:Urm.Query.Count ()
  in
  let m0 = List.hd (fig3_mappings ()) in
  let sq = Urm.Reformulate.source_query target q m0 in
  (* Order's mapped attrs under m0: price ← C_Order.amount → cover C_Order (3 rows) *)
  Alcotest.(check int) "factor" 3 (Urm.Reformulate.factor (catalog ()) sq)

(* ------------------------------------------------------------------ *)
(* Answer *)

let test_answer_accumulate () =
  let a = Urm.Answer.create [ "x" ] in
  Urm.Answer.add a [| s "v" |] 0.3;
  Urm.Answer.add a [| s "v" |] 0.2;
  Urm.Answer.add a [| s "w" |] 0.1;
  Urm.Answer.add_null a 0.4;
  Alcotest.(check (float 1e-9)) "dup sums" 0.5 (Urm.Answer.prob_of a [| s "v" |]);
  Alcotest.(check (float 1e-9)) "null" 0.4 (Urm.Answer.null_prob a);
  Alcotest.(check (float 1e-9)) "total" 1.0 (Urm.Answer.total_prob a);
  Alcotest.(check int) "size" 2 (Urm.Answer.size a);
  match Urm.Answer.top_k a 1 with
  | [ (t, p) ] ->
    Alcotest.(check bool) "top is v" true (Value.equal t.(0) (s "v"));
    Alcotest.(check (float 1e-9)) "top prob" 0.5 p
  | _ -> Alcotest.fail "top_k shape"

let test_answer_equal () =
  let a = Urm.Answer.create [ "x" ] and b = Urm.Answer.create [ "x" ] in
  Urm.Answer.add a [| i 1 |] 0.5;
  Urm.Answer.add b [| i 1 |] 0.5;
  Alcotest.(check bool) "equal" true (Urm.Answer.equal a b);
  Urm.Answer.add b [| i 2 |] 0.1;
  Alcotest.(check bool) "not equal" false (Urm.Answer.equal a b)

(* Regression: equality must match buckets one-to-one.  Two near-identical
   float keys of [a] used to both claim the same bucket of [b], so [a]
   compared equal to a [b] it plainly differs from — and only in one
   direction (the check was asymmetric). *)
let test_answer_equal_one_to_one () =
  let near = 1.0 +. 1e-12 in
  let mk rows =
    let t = Urm.Answer.create [ "x" ] in
    List.iter (fun (v, p) -> Urm.Answer.add t [| f v |] p) rows;
    t
  in
  let a = mk [ (1.0, 0.3); (near, 0.3) ] in
  let b = mk [ (1.0, 0.3); (5.0, 0.3) ] in
  Alcotest.(check bool) "a vs b" false (Urm.Answer.equal a b);
  Alcotest.(check bool) "b vs a" false (Urm.Answer.equal b a);
  (* Sanity: near-identical keys still match their own copy. *)
  let a' = mk [ (1.0, 0.3); (near, 0.3) ] in
  Alcotest.(check bool) "a vs a'" true (Urm.Answer.equal a a');
  Alcotest.(check bool) "a' vs a" true (Urm.Answer.equal a' a)

let test_answer_arity_mismatch () =
  let a = Urm.Answer.create [ "x"; "y" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Answer.add: arity mismatch")
    (fun () -> Urm.Answer.add a [| i 1 |] 0.5)

(* ------------------------------------------------------------------ *)
(* Partition tree *)

let test_ptree_paper_q1 () =
  (* π_pname σ_addr='abc': partitions {m0,m1}, {m2,m3}, {m4} (paper §IV). *)
  let q =
    Urm.Query.make ~name:"q1" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", s "abc") ]
      ~projection:[ Urm.Query.at "Person" "pname" ]
      ()
  in
  let parts = Urm.Ptree.partition target q (fig3_mappings ()) in
  Alcotest.(check int) "3 partitions" 3 (List.length parts);
  Alcotest.(check (list int)) "sizes" [ 2; 2; 1 ]
    (List.map List.length parts);
  let reps = Urm.Ptree.represent parts in
  Alcotest.(check (list (float 1e-9))) "probabilities" [ 0.5; 0.4; 0.1 ]
    (List.map (fun m -> m.Urm.Mapping.prob) reps)

let test_ptree_matches_naive () =
  let q = q_paper () in
  let ms = fig3_mappings () in
  let by_tree = Urm.Ptree.partition target q ms in
  let by_naive = Urm.Ptree.partition_naive target q ms in
  let ids groups = List.map (List.map (fun m -> m.Urm.Mapping.id)) groups in
  Alcotest.(check (list (list int))) "same partitions"
    (List.sort compare (ids by_naive))
    (List.sort compare (ids by_tree))

let test_ptree_covers_all () =
  let q = q_paper () in
  let ms = fig3_mappings () in
  let parts = Urm.Ptree.partition target q ms in
  Alcotest.(check int) "every mapping in one partition" (List.length ms)
    (List.length (List.concat parts))

(* ------------------------------------------------------------------ *)
(* Algorithms: the paper's worked answer + cross-algorithm consistency *)

let check_answer_tuples expected answer =
  List.iter
    (fun (v, p) ->
      Alcotest.(check (float 1e-9)) (Value.to_string v) p
        (Urm.Answer.prob_of answer [| v |]))
    expected

let test_paper_worked_answer () =
  let ctx = ctx () in
  let report = Urm.Basic.run ctx (q_paper ()) (fig3_mappings ()) in
  check_answer_tuples
    [ (s "123", 0.5); (s "456", 0.8); (s "789", 0.2) ]
    report.Urm.Report.answer

let all_algorithms =
  [
    Urm.Algorithms.Basic;
    Urm.Algorithms.Ebasic;
    Urm.Algorithms.Emqo;
    Urm.Algorithms.Qsharing;
    Urm.Algorithms.Osharing Urm.Eunit.Random;
    Urm.Algorithms.Osharing Urm.Eunit.Snf;
    Urm.Algorithms.Osharing Urm.Eunit.Sef;
  ]

let queries_for_consistency () =
  let at = Urm.Query.at in
  [
    q_paper ();
    (* join: people and their orders *)
    Urm.Query.make ~name:"join" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:[ (at "Person" "addr", s "hk") ]
      ~joins:[ (at "Person" "gender", at "Order" "price") ]
      ();
    (* COUNT with an unreferenced alias *)
    Urm.Query.make ~name:"count" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:[ (at "Person" "phone", s "456") ]
      ~aggregate:Urm.Query.Count ();
    (* SUM *)
    Urm.Query.make ~name:"sum" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:[ (at "Person" "addr", s "aaa") ]
      ~aggregate:(Urm.Query.Sum (at "Order" "price"))
      ();
    (* self-join *)
    Urm.Query.make ~name:"self" ~target
      ~aliases:[ ("P1", "Person"); ("P2", "Person") ]
      ~selections:[ (at "P1" "addr", s "aaa") ]
      ~joins:[ (at "P1" "phone", at "P2" "phone") ]
      ();
    (* pure projection, no selections *)
    Urm.Query.make ~name:"proj" ~target
      ~aliases:[ ("Person", "Person") ]
      ~projection:[ at "Person" "pname"; at "Person" "nation" ]
      ();
    (* grouped COUNT: people per address *)
    Urm.Query.make ~name:"group-count" ~target
      ~aliases:[ ("Person", "Person") ]
      ~aggregate:Urm.Query.Count
      ~group_by:[ at "Person" "addr" ]
      ();
    (* grouped SUM with a selection *)
    Urm.Query.make ~name:"group-sum" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:[ (at "Person" "addr", s "hk") ]
      ~aggregate:(Urm.Query.Sum (at "Order" "price"))
      ~group_by:[ at "Person" "pname" ]
      ();
  ]

let test_all_algorithms_agree () =
  let ctx = ctx () in
  let ms = fig3_mappings () in
  List.iter
    (fun q ->
      let baseline = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      List.iter
        (fun alg ->
          let r = (Urm.Algorithms.run alg ctx q ms).Urm.Report.answer in
          if not (Urm.Answer.equal ~eps:1e-9 baseline r) then
            Alcotest.failf "%s disagrees with basic on %s:@.basic: %s@.other: %s"
              (Urm.Algorithms.name alg) q.Urm.Query.name
              (Format.asprintf "%a" Urm.Answer.pp baseline)
              (Format.asprintf "%a" Urm.Answer.pp r))
        all_algorithms)
    (queries_for_consistency ())

let test_group_by_answers () =
  (* Grouped COUNT by addr under m0 (addr←oaddr): aaa→2, bbb→1.
     Under m2/m3/m4 (addr←haddr): hk→2, aaa→1.  m1 groups like m0. *)
  let ctx = ctx () in
  let q =
    Urm.Query.make ~name:"g" ~target
      ~aliases:[ ("Person", "Person") ]
      ~aggregate:Urm.Query.Count
      ~group_by:[ Urm.Query.at "Person" "addr" ]
      ()
  in
  let a = (Urm.Basic.run ctx q (fig3_mappings ())).Urm.Report.answer in
  Alcotest.(check (list string)) "header" [ "Person.addr"; "count" ] (Urm.Answer.output a);
  Alcotest.(check (float 1e-9)) "aaa→2 under oaddr mappings" 0.5
    (Urm.Answer.prob_of a [| s "aaa"; i 2 |]);
  Alcotest.(check (float 1e-9)) "bbb→1" 0.5 (Urm.Answer.prob_of a [| s "bbb"; i 1 |]);
  Alcotest.(check (float 1e-9)) "hk→2 under haddr mappings" 0.5
    (Urm.Answer.prob_of a [| s "hk"; i 2 |]);
  Alcotest.(check (float 1e-9)) "aaa→1" 0.5 (Urm.Answer.prob_of a [| s "aaa"; i 1 |])

let test_group_by_validation () =
  Alcotest.check_raises "group_by without aggregate"
    (Invalid_argument "Query.make: group_by requires an aggregate") (fun () ->
      ignore
        (Urm.Query.make ~name:"bad" ~target
           ~aliases:[ ("Person", "Person") ]
           ~group_by:[ Urm.Query.at "Person" "addr" ]
           ()))

let test_total_probability_invariant () =
  let ctx = ctx () in
  let ms = fig3_mappings () in
  List.iter
    (fun q ->
      let a = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      (* each mapping contributes ≥ its mass to non-aggregate answers only
         through tuples or θ; for aggregates exactly one tuple per mapping *)
      match (q.Urm.Query.aggregate, q.Urm.Query.group_by) with
      | Some _, [] ->
        (* exactly one aggregate value per mapping *)
        Alcotest.(check (float 1e-9)) (q.Urm.Query.name ^ " total") 1.
          (Urm.Answer.total_prob a)
      | _ ->
        (* each mapping contributes ≥ one tuple or θ *)
        Alcotest.(check bool) (q.Urm.Query.name ^ " θ+max ≥ 1") true
          (Urm.Answer.total_prob a >= 1. -. 1e-9))
    (queries_for_consistency ())

(* ------------------------------------------------------------------ *)
(* o-sharing details *)

let test_osharing_stats () =
  let ctx = ctx () in
  let report, stats =
    Urm.Osharing.run_with_stats ~strategy:Urm.Eunit.Sef ctx (q_paper ()) (fig3_mappings ())
  in
  Alcotest.(check bool) "some e-units" true (stats.Urm.Osharing.eunits >= 1);
  Alcotest.(check int) "3 representatives" 3 stats.Urm.Osharing.representatives;
  Alcotest.(check bool) "fewer ops than basic" true
    (report.Urm.Report.source_operators
    <= (Urm.Basic.run ctx (q_paper ()) (fig3_mappings ())).Urm.Report.source_operators)

let test_osharing_memo_ablation_consistent () =
  let ctx = ctx () in
  List.iter
    (fun q ->
      let with_memo =
        (Urm.Osharing.run ~use_memo:true ctx q (fig3_mappings ())).Urm.Report.answer
      in
      let without =
        (Urm.Osharing.run ~use_memo:false ctx q (fig3_mappings ())).Urm.Report.answer
      in
      Alcotest.(check bool) (q.Urm.Query.name ^ " same answer") true
        (Urm.Answer.equal with_memo without))
    (queries_for_consistency ())

let test_strategy_entropy_example () =
  (* Fig. 7: SEF prefers the operator with the 70% partition. *)
  let e_o1 = Urm_util.Stats.entropy [ 0.4; 0.3; 0.3 ] in
  let e_o2 = Urm_util.Stats.entropy [ 0.1; 0.7; 0.1; 0.1 ] in
  Alcotest.(check bool) "E(o2) < E(o1)" true (e_o2 < e_o1);
  Alcotest.(check (float 0.02)) "E(o1) ≈ 1.57" 1.571 e_o1;
  Alcotest.(check (float 0.02)) "E(o2) ≈ 1.36" 1.357 e_o2

(* ------------------------------------------------------------------ *)
(* Top-k *)

let test_topk_paper_query () =
  let ctx = ctx () in
  let ms = fig3_mappings () in
  let q = q_paper () in
  let full = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
  List.iter
    (fun k ->
      let r = Urm.Topk.run ~k ctx q ms in
      let got = Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer in
      Alcotest.(check int)
        (Printf.sprintf "k=%d count" k)
        (min k (Urm.Answer.size full))
        (List.length got);
      (* every returned tuple is among the true top-k *)
      let truth = Urm.Answer.top_k full k in
      let kth = match List.rev truth with [] -> 0. | (_, p) :: _ -> p in
      List.iter
        (fun (t, _) ->
          Alcotest.(check bool) "sound" true
            (Urm.Answer.prob_of full t >= kth -. 1e-9))
        got)
    [ 1; 2; 3; 5 ]

let test_topk_lower_bounds_exact_when_finished () =
  let ctx = ctx () in
  let ms = fig3_mappings () in
  let q = q_paper () in
  let r = Urm.Topk.run ~k:10 ctx q ms in
  (* with k larger than the answer set the traversal completes and lower
     bounds equal exact probabilities *)
  let full = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
  List.iter
    (fun (t, lb) ->
      Alcotest.(check (float 1e-9)) "exact" (Urm.Answer.prob_of full t) lb)
    (Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer)

(* The paper's Table II / §VII worked example, translated to our fixture:
   four u-trace leaves with masses 0.5 (θ), 0.2 ({ta}), 0.2 ({ta,tb,tc})
   and 0.1 (θ); the top-1 answer is ta with lower bound 0.4 and the
   traversal can stop before the last branch. *)
let test_topk_table2_scenario () =
  let cat = Catalog.create () in
  Catalog.add cat "Customer"
    (Relation.create
       ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "mobile"; "oaddr"; "haddr"; "nid" ]
       [
         [| i 1; s "ta"; s "123"; s "123"; s "999"; s "x"; s "hk"; i 1 |];
         [| i 2; s "tb"; s "000"; s "123"; s "998"; s "x"; s "hk"; i 1 |];
         [| i 3; s "tc"; s "001"; s "123"; s "997"; s "x"; s "hk"; i 1 |];
       ]);
  let ctx = Urm.Ctx.make ~catalog:cat ~source ~target () in
  let ms =
    [
      (* mass 0.5: phone→ophone, addr→oaddr — empty (θ) *)
      mk 0 0.3
        [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.oaddr");
          ("Person.pname", "Customer.cname") ];
      mk 1 0.2
        [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.oaddr");
          ("Person.pname", "Customer.cname"); ("Person.gender", "Customer.nid") ];
      (* mass 0.2: returns {ta} *)
      mk 2 0.2
        [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.haddr");
          ("Person.pname", "Customer.cname") ];
      (* mass 0.2: returns {ta, tb, tc} *)
      mk 3 0.2
        [ ("Person.phone", "Customer.hphone"); ("Person.addr", "Customer.haddr");
          ("Person.pname", "Customer.cname") ];
      (* mass 0.1: returns nothing *)
      mk 4 0.1
        [ ("Person.phone", "Customer.mobile"); ("Person.addr", "Customer.haddr");
          ("Person.pname", "Customer.cname") ];
    ]
  in
  let q =
    Urm.Query.make ~name:"q2ish" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:
        [ (Urm.Query.at "Person" "phone", s "123"); (Urm.Query.at "Person" "addr", s "hk") ]
      ~projection:[ Urm.Query.at "Person" "pname" ]
      ()
  in
  (* exact probabilities: ta 0.4, tb 0.2, tc 0.2, θ 0.6 *)
  let full = (Urm.Basic.run ctx q ms).Urm.Report.answer in
  Alcotest.(check (float 1e-9)) "ta" 0.4 (Urm.Answer.prob_of full [| s "ta" |]);
  Alcotest.(check (float 1e-9)) "tb" 0.2 (Urm.Answer.prob_of full [| s "tb" |]);
  Alcotest.(check (float 1e-9)) "θ" 0.6 (Urm.Answer.null_prob full);
  (* top-1 returns ta without visiting everything *)
  let r = Urm.Topk.run ~k:1 ctx q ms in
  (match Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer with
  | [ (t, lb) ] ->
    Alcotest.(check bool) "top-1 is ta" true (Value.equal t.(0) (s "ta"));
    Alcotest.(check bool) "lb ≥ 0.4 - ε" true (lb >= 0.4 -. 1e-9)
  | _ -> Alcotest.fail "top-1 shape");
  Alcotest.(check bool) "stopped early" true r.Urm.Topk.stopped_early

let test_topk_invalid_k () =
  let ctx = ctx () in
  Alcotest.check_raises "k=0" (Invalid_argument "Topk.run: k must be positive")
    (fun () -> ignore (Urm.Topk.run ~k:0 ctx (q_paper ()) (fig3_mappings ())))

(* ------------------------------------------------------------------ *)
(* Overlap / Mapgen *)

let test_overlap_set () =
  Alcotest.(check (float 1e-9)) "singleton" 1. (Urm.Overlap.o_ratio [ List.hd (fig3_mappings ()) ]);
  let r = Urm.Overlap.o_ratio (fig3_mappings ()) in
  Alcotest.(check bool) "in (0,1)" true (r > 0. && r < 1.)

let test_overlap_frequencies () =
  match Urm.Overlap.correspondence_frequencies (fig3_mappings ()) with
  | (pair, f) :: _ ->
    (* (pname ← cname) appears in 4 of 5 mappings — the paper's observation *)
    Alcotest.(check bool) "top pair" true
      (pair = ("Person.pname", "Customer.cname")
      || pair = ("Person.nation", "Nation.name"));
    Alcotest.(check (float 1e-9)) "0.8" 0.8 f
  | [] -> Alcotest.fail "no frequencies"

let test_mapgen_from_candidates () =
  let cand src dst score = { Urm_matcher.Match.src; dst; score } in
  let cands =
    [
      cand "Customer.ophone" "Person.phone" 0.85;
      cand "Customer.hphone" "Person.phone" 0.83;
      cand "Customer.oaddr" "Person.addr" 0.75;
      cand "Customer.haddr" "Person.addr" 0.75;
      cand "Customer.cname" "Person.pname" 0.81;
    ]
  in
  let ms = Urm.Mapgen.from_candidates ~h:5 cands in
  Alcotest.(check int) "5 mappings" 5 (List.length ms);
  Alcotest.(check (float 1e-9)) "normalised" 1. (Urm.Mapping.total_prob ms);
  (* best mapping has all three attributes matched *)
  Alcotest.(check int) "best size" 3 (Urm.Mapping.size (List.hd ms));
  (* best-first *)
  let scores = List.map (fun m -> m.Urm.Mapping.score) ms in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Float.compare b a) scores = scores)

let qcheck_answers_agree =
  (* random selections over the fixture, all algorithms agree with basic *)
  let gen =
    QCheck.Gen.(
      let sel =
        oneofl
          [
            (Urm.Query.at "Person" "addr", s "aaa");
            (Urm.Query.at "Person" "addr", s "hk");
            (Urm.Query.at "Person" "phone", s "456");
            (Urm.Query.at "Person" "pname", s "Alice");
            (Urm.Query.at "Person" "nation", s "HK");
          ]
      in
      list_size (1 -- 3) sel)
  in
  QCheck.Test.make ~name:"random selection queries agree across algorithms" ~count:40
    (QCheck.make gen) (fun sels ->
      let q =
        Urm.Query.make ~name:"rand" ~target
          ~aliases:[ ("Person", "Person") ]
          ~selections:(List.sort_uniq compare sels)
          ()
      in
      let ctx = ctx () in
      let ms = fig3_mappings () in
      let baseline = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      List.for_all
        (fun alg ->
          Urm.Answer.equal ~eps:1e-9 baseline
            (Urm.Algorithms.run alg ctx q ms).Urm.Report.answer)
        all_algorithms)

let suite =
  [
    Alcotest.test_case "mapping 1:1 checked" `Quick test_mapping_one_to_one;
    Alcotest.test_case "mapping lookup" `Quick test_mapping_lookup;
    Alcotest.test_case "mapping o-ratio" `Quick test_mapping_o_ratio;
    Alcotest.test_case "mapping normalize" `Quick test_mapping_normalize;
    Alcotest.test_case "query validation" `Quick test_query_validation;
    Alcotest.test_case "query referenced/output" `Quick test_query_referenced_and_output;
    Alcotest.test_case "query operators" `Quick test_query_operators;
    Alcotest.test_case "products from joins" `Quick test_query_products_from_joins;
    Alcotest.test_case "reformulate paper example" `Quick test_reformulate_paper_example;
    Alcotest.test_case "reformulate unsatisfiable" `Quick test_reformulate_unsatisfiable;
    Alcotest.test_case "reformulate key groups" `Quick test_reformulate_key_groups;
    Alcotest.test_case "reformulate factor" `Quick test_reformulate_factor;
    Alcotest.test_case "answer accumulate" `Quick test_answer_accumulate;
    Alcotest.test_case "answer equal" `Quick test_answer_equal;
    Alcotest.test_case "answer equal matches buckets one-to-one" `Quick
      test_answer_equal_one_to_one;
    Alcotest.test_case "answer arity" `Quick test_answer_arity_mismatch;
    Alcotest.test_case "ptree paper q1" `Quick test_ptree_paper_q1;
    Alcotest.test_case "ptree = naive" `Quick test_ptree_matches_naive;
    Alcotest.test_case "ptree covers all" `Quick test_ptree_covers_all;
    Alcotest.test_case "paper worked answer" `Quick test_paper_worked_answer;
    Alcotest.test_case "all algorithms agree" `Quick test_all_algorithms_agree;
    Alcotest.test_case "group-by answers" `Quick test_group_by_answers;
    Alcotest.test_case "group-by validation" `Quick test_group_by_validation;
    Alcotest.test_case "probability invariants" `Quick test_total_probability_invariant;
    Alcotest.test_case "o-sharing stats" `Quick test_osharing_stats;
    Alcotest.test_case "memo ablation consistent" `Quick test_osharing_memo_ablation_consistent;
    Alcotest.test_case "SEF entropy example" `Quick test_strategy_entropy_example;
    Alcotest.test_case "top-k paper query" `Quick test_topk_paper_query;
    Alcotest.test_case "top-k exact when finished" `Quick test_topk_lower_bounds_exact_when_finished;
    Alcotest.test_case "top-k Table II scenario" `Quick test_topk_table2_scenario;
    Alcotest.test_case "top-k invalid k" `Quick test_topk_invalid_k;
    Alcotest.test_case "overlap set" `Quick test_overlap_set;
    Alcotest.test_case "overlap frequencies" `Quick test_overlap_frequencies;
    Alcotest.test_case "mapgen from candidates" `Quick test_mapgen_from_candidates;
    QCheck_alcotest.to_alcotest qcheck_answers_agree;
  ]
