(* The incremental-maintenance suite: versioned catalog semantics, answer
   compaction, and the qcheck differential property that delta-apply over
   any mutation sequence equals full re-evaluation (basic, e-basic, e-MQO,
   all three engines) at the final epoch. *)

open Urm_relalg
module Mutation = Urm_incr.Mutation
module Vcatalog = Urm_incr.Vcatalog
module State = Urm_incr.State

let s v = Value.Str v
let i v = Value.Int v

let vcat_of ?engine () =
  let catalog = Test_core.catalog () in
  let ctx =
    Urm.Ctx.make ?engine ~catalog ~source:Test_core.source ~target:Test_core.target
      ()
  in
  Vcatalog.create ~ctx ~mappings:(Test_core.fig3_mappings ()) ()

let customer name addr k =
  [| i (1000 + k); s name; s "123"; s "789"; s "555"; s addr; s "hk"; i 1 |]

let fresh_answer alg (snap : Vcatalog.snapshot) q =
  (Urm.Algorithms.run alg snap.Vcatalog.ctx q snap.Vcatalog.mappings)
    .Urm.Report.answer

let check_equal msg expected got =
  if not (Urm.Answer.equal ~eps:Urm.Prob.eps expected got) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Urm.Answer.pp expected
      Urm.Answer.pp got

(* ------------------------------------------------------------------ *)
(* Answer compaction *)

let test_compact () =
  let a = Urm.Answer.create [ "x" ] in
  let tu = [| s "t" |] in
  Urm.Answer.add a tu 0.3;
  Urm.Answer.add a [| s "keep" |] 0.5;
  (* Retract in three unequal pieces: float cancellation leaves a residue. *)
  Urm.Answer.add a tu (-0.1);
  Urm.Answer.add a tu (-0.2);
  Urm.Answer.add_null a 0.2;
  Urm.Answer.add_null a (-0.2);
  Urm.Answer.compact a;
  Alcotest.(check int) "ghost bucket dropped" 1 (Urm.Answer.size a);
  Alcotest.(check bool) "θ clamped to non-negative" true (Urm.Answer.null_prob a >= 0.);
  Alcotest.(check (float 1e-12)) "surviving bucket intact" 0.5
    (Urm.Answer.prob_of a [| s "keep" |])

(* ------------------------------------------------------------------ *)
(* Mutation JSON round trip *)

let test_mutation_json () =
  let batch =
    [
      Mutation.Insert { rel = "Customer"; row = customer "Zoe" "aaa" 1 };
      Mutation.Delete { rel = "C_Order"; row = [| i 10; i 1; Value.Float 5. |] };
      Mutation.Reweight { mapping = 2; prob = 0.125 };
      Mutation.Prune { mapping = 4 };
      Mutation.Add_mapping
        {
          id = None;
          pairs = [ ("Person.pname", "Customer.cname") ];
          prob = 0.05;
          score = 0.4;
        };
    ]
  in
  let json = Urm_util.Json.to_string (Mutation.batch_to_json batch) in
  match Mutation.batch_of_json (Urm_util.Json.parse_exn json) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok batch' ->
    Alcotest.(check int) "batch length" (List.length batch) (List.length batch');
    Alcotest.(check string) "round trip is identity" json
      (Urm_util.Json.to_string (Mutation.batch_to_json batch'))

(* ------------------------------------------------------------------ *)
(* Versioned-catalog semantics *)

let test_commit_basics () =
  let vcat = vcat_of () in
  let pre = Vcatalog.head vcat in
  let row = customer "Zoe" "aaa" 1 in
  (match Vcatalog.commit vcat [ Mutation.Insert { rel = "Customer"; row } ] with
  | Error msg -> Alcotest.failf "commit failed: %s" msg
  | Ok out ->
    Alcotest.(check int) "epoch bumped" 1 out.Vcatalog.snapshot.Vcatalog.epoch;
    Alcotest.(check (list string)) "touched" [ "Customer" ] out.Vcatalog.touched;
    Alcotest.(check bool) "mappings unchanged" false out.Vcatalog.mappings_changed);
  let post = Vcatalog.head vcat in
  Alcotest.(check int) "pre snapshot untouched" 3
    (Relation.cardinality (Catalog.find pre.Vcatalog.ctx.Urm.Ctx.catalog "Customer"));
  Alcotest.(check int) "post sees the insert" 4
    (Relation.cardinality (Catalog.find post.Vcatalog.ctx.Urm.Ctx.catalog "Customer"));
  (* Untouched relations are shared, not copied. *)
  Alcotest.(check bool) "untouched relation shared" true
    (Catalog.find pre.Vcatalog.ctx.Urm.Ctx.catalog "Nation"
    == Catalog.find post.Vcatalog.ctx.Urm.Ctx.catalog "Nation");
  (* A delete of an absent row rejects the whole batch atomically. *)
  (match
     Vcatalog.commit vcat
       [
         Mutation.Insert { rel = "Customer"; row = customer "Yan" "bbb" 2 };
         Mutation.Delete { rel = "Customer"; row = customer "Nobody" "zzz" 3 };
       ]
   with
  | Ok _ -> Alcotest.fail "expected delete-of-absent-row to fail"
  | Error _ ->
    Alcotest.(check int) "failed batch left no trace" 1 (Vcatalog.epoch vcat));
  (* Integral floats coerce against the stored column type (wire JSON). *)
  (match
     Vcatalog.commit vcat
       [ Mutation.Insert { rel = "C_Order"; row = [| i 13; i 2; i 4 |] } ]
   with
  | Error msg -> Alcotest.failf "coercing commit failed: %s" msg
  | Ok out ->
    let rel = Catalog.find out.Vcatalog.snapshot.Vcatalog.ctx.Urm.Ctx.catalog "C_Order" in
    Alcotest.(check bool) "int coerced to float column" true
      (Value.equal rel.Relation.rows.(3).(2) (Value.Float 4.)));
  match Vcatalog.entries_since vcat 1 with
  | Some [ e ] ->
    Alcotest.(check int) "entry spans 1→2" 2 e.Vcatalog.post.Vcatalog.epoch
  | _ -> Alcotest.fail "entries_since 1 should yield exactly one entry"

let test_snapshot_isolation () =
  let vcat = vcat_of () in
  let q = Test_core.q_paper () in
  let snap0 = Vcatalog.head vcat in
  let a0 = fresh_answer Urm.Algorithms.Basic snap0 q in
  let state = State.build snap0 q in
  check_equal "built state matches fresh eval" a0 (State.answer state);
  (match
     Vcatalog.commit vcat
       [
         Mutation.Insert { rel = "Customer"; row = customer "Zoe" "aaa" 1 };
         Mutation.Reweight { mapping = 0; prob = 0.05 };
       ]
   with
  | Error msg -> Alcotest.failf "commit failed: %s" msg
  | Ok _ -> ());
  (* The reader pinned at epoch 0 still computes the epoch-0 answer while
     (and after) epoch 1 commits. *)
  check_equal "pinned snapshot unchanged" a0 (fresh_answer Urm.Algorithms.Basic snap0 q);
  let head = Vcatalog.head vcat in
  let a1 = fresh_answer Urm.Algorithms.Basic head q in
  Alcotest.(check bool) "head answer moved" false
    (Urm.Answer.equal ~eps:Urm.Prob.eps a0 a1);
  let state, status = State.catch_up vcat state in
  Alcotest.(check bool) "caught up by patching" true (status = `Patched);
  check_equal "patched state matches fresh eval" a1 (State.answer state)

(* ------------------------------------------------------------------ *)
(* Drift regression: 10^4 insert/delete pairs leave the maintained answer
   equal to a fresh evaluation (satellite: epsilon-floor guard). *)

let test_drift_regression () =
  let vcat = vcat_of () in
  let q = Test_core.q_paper () in
  let state = ref (State.build (Vcatalog.head vcat) q) in
  let rng = Random.State.make [| 7 |] in
  let names = [| "Zoe"; "Yan"; "Ada"; "Lin" |] in
  let addrs = [| "aaa"; "bbb"; "hk" |] in
  let commit_and_apply batch =
    match Vcatalog.commit vcat batch with
    | Error msg -> Alcotest.failf "commit failed: %s" msg
    | Ok _ ->
      let st, _ = State.catch_up vcat !state in
      state := st
  in
  for k = 1 to 10_000 do
    let row =
      customer
        names.(Random.State.int rng (Array.length names))
        addrs.(Random.State.int rng (Array.length addrs))
        k
    in
    commit_and_apply [ Mutation.Insert { rel = "Customer"; row } ];
    commit_and_apply [ Mutation.Delete { rel = "Customer"; row } ];
    if k mod 2_500 = 0 then
      check_equal
        (Printf.sprintf "after %d insert/delete pairs" k)
        (fresh_answer Urm.Algorithms.Basic (Vcatalog.head vcat) q)
        (State.answer !state)
  done;
  Alcotest.(check int) "instance back to its original size" 3
    (Relation.cardinality
       (Catalog.find (Vcatalog.head vcat).Vcatalog.ctx.Urm.Ctx.catalog "Customer"))

(* ------------------------------------------------------------------ *)
(* qcheck differential: random mutation sequences × random queries ×
   engines × exact algorithms. *)

(* Abstract mutation specs realised against the catalog head at commit
   time, so deletes always name live rows and mapping ops live ids. *)
type spec =
  | SIns of int * int * int * int  (* relation, template row, name, addr *)
  | SDel of int * int
  | SRew of int * float
  | SPrune of int
  | SAdd of (string * string) list * float

let rels = [| "Customer"; "C_Order"; "Nation" |]

let spec_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun (r, t) (n, a) -> SIns (r, t, n, a)) (pair (0 -- 2) (0 -- 9)) (pair (0 -- 3) (0 -- 2)));
        (3, map2 (fun r t -> SDel (r, t)) (0 -- 2) (0 -- 9));
        (2, map2 (fun j p -> SRew (j, p)) (0 -- 9) (float_range 0.01 0.4));
        (1, map (fun j -> SPrune j) (0 -- 9));
        (1, map2 (fun pairs p -> SAdd (pairs, p)) Test_differential.pairs_gen (float_range 0.01 0.3));
      ])

let batches_gen = QCheck.Gen.(list_size (1 -- 4) (list_size (1 -- 4) spec_gen))

let names = [| "Zoe"; "Yan"; "Ada"; "Lin" |]
let addrs = [| "aaa"; "bbb"; "hk" |]

(* Turn specs into a valid batch against the current head: inserts clone a
   template row (fresh key, randomised name/addr for Customer), deletes
   target live rows not already doomed in this batch, mapping ops resolve
   indices into live ids. *)
let realize (snap : Vcatalog.snapshot) counter specs =
  let cat = snap.Vcatalog.ctx.Urm.Ctx.catalog in
  let doomed : (string * Value.t array, unit) Hashtbl.t = Hashtbl.create 4 in
  let ids = List.map (fun m -> m.Urm.Mapping.id) snap.Vcatalog.mappings in
  List.filter_map
    (fun spec ->
      match spec with
      | SIns (r, t, n, a) ->
        let rel = rels.(r) in
        let stored = Catalog.find cat rel in
        if Relation.is_empty stored then None
        else begin
          incr counter;
          let row =
            Array.copy stored.Relation.rows.(t mod Relation.cardinality stored)
          in
          (match rel with
          | "Customer" ->
            row.(0) <- i (10_000 + !counter);
            row.(1) <- s names.(n);
            row.(5) <- s addrs.(a)
          | "C_Order" -> row.(0) <- i (10_000 + !counter)
          | _ -> row.(0) <- i (10_000 + !counter));
          Some (Mutation.Insert { rel; row })
        end
      | SDel (r, t) ->
        let rel = rels.(r) in
        let stored = Catalog.find cat rel in
        if Relation.is_empty stored then None
        else begin
          let row = stored.Relation.rows.(t mod Relation.cardinality stored) in
          if Hashtbl.mem doomed (rel, row) then None
          else begin
            Hashtbl.replace doomed (rel, row) ();
            Some (Mutation.Delete { rel; row })
          end
        end
      | SRew (j, p) -> (
        match ids with
        | [] -> None
        | _ ->
          Some
            (Mutation.Reweight
               { mapping = List.nth ids (j mod List.length ids); prob = p }))
      | SPrune j -> (
        match ids with
        | [] -> None
        | _ -> Some (Mutation.Prune { mapping = List.nth ids (j mod List.length ids) }))
      | SAdd (pairs, p) ->
        if pairs = [] then None
        else Some (Mutation.Add_mapping { id = None; pairs; prob = p; score = p }))
    specs
  (* One prune/reweight per mapping id per batch: duplicates would race on
     the same id within the staged list. *)
  |> fun batch ->
  let seen = Hashtbl.create 4 in
  List.filter
    (function
      | Mutation.Prune { mapping } | Mutation.Reweight { mapping; _ } ->
        if Hashtbl.mem seen mapping then false
        else begin
          Hashtbl.add seen mapping ();
          true
        end
      | _ -> true)
    batch

let engines =
  [
    ("interpreted", Urm_relalg.Compile.Interpreted);
    ("compiled", Urm_relalg.Compile.Compiled);
    ("vectorized", Urm_relalg.Compile.Vectorized);
  ]

let exact = [ Urm.Algorithms.Basic; Urm.Algorithms.Ebasic; Urm.Algorithms.Emqo ]

let qcheck_delta_equals_full =
  QCheck.Test.make
    ~name:"delta-apply ≡ full re-evaluation across mutation sequences"
    ~count:30
    (QCheck.make QCheck.Gen.(pair Test_differential.query_gen batches_gen))
    (fun (q, spec_batches) ->
      List.for_all
        (fun (ename, engine) ->
          let vcat = vcat_of ~engine () in
          let state = ref (State.build (Vcatalog.head vcat) q) in
          let counter = ref 0 in
          List.iter
            (fun specs ->
              let head = Vcatalog.head vcat in
              match realize head counter specs with
              | [] -> ()
              | batch -> (
                match Vcatalog.commit vcat batch with
                | Error msg -> Alcotest.failf "[%s] commit failed: %s" ename msg
                | Ok _ ->
                  let st, status = State.catch_up vcat !state in
                  if status <> `Patched then
                    Alcotest.failf "[%s] expected `Patched catch-up" ename;
                  state := st;
                  let head = Vcatalog.head vcat in
                  let fresh = fresh_answer Urm.Algorithms.Basic head q in
                  if not (Urm.Answer.equal ~eps:Urm.Prob.eps fresh (State.answer !state))
                  then
                    QCheck.Test.fail_reportf
                      "[%s] patched state diverged from basic after batch \
                       [%s]@.state %a@.fresh %a"
                      ename
                      (String.concat "; "
                         (List.map
                            (fun m -> Format.asprintf "%a" Mutation.pp m)
                            batch))
                      Urm.Answer.pp (State.answer !state) Urm.Answer.pp fresh))
            spec_batches;
          let head = Vcatalog.head vcat in
          List.for_all
            (fun alg ->
              let fresh = fresh_answer alg head q in
              Urm.Answer.equal ~eps:Urm.Prob.eps fresh (State.answer !state)
              ||
              QCheck.Test.fail_reportf "[%s] final state disagrees with %s" ename
                (Urm.Algorithms.name alg))
            exact)
        engines)

let suite =
  [
    Alcotest.test_case "answer compaction drops retraction ghosts" `Quick test_compact;
    Alcotest.test_case "mutation JSON round trip" `Quick test_mutation_json;
    Alcotest.test_case "commit: COW, atomicity, coercion, history" `Quick
      test_commit_basics;
    Alcotest.test_case "snapshot isolation across a commit" `Quick
      test_snapshot_isolation;
    Alcotest.test_case "drift: 10^4 insert/delete pairs stay eps-equal" `Slow
      test_drift_regression;
    QCheck_alcotest.to_alcotest qcheck_delta_equals_full;
  ]
