(* The binary frame protocol: qcheck encode/decode round-trips for every
   frame type, hand-built adversarial headers for every error path, and a
   live-server fuzz — 1000 adversarial byte strings thrown at a running
   service, which must answer each malformed frame with a [Proto_error]
   (where the connection is still writable), never crash, and tear every
   connection down. *)

module Json = Urm_util.Json
module Frame = Urm_service.Frame
module Server = Urm_service.Server
module Client = Urm_service.Client

(* ------------------------------------------------------------------ *)
(* Frame crafting: a private re-implementation of the header encoder so
   tests can lie about any field while keeping the CRC honest (or not). *)

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let add_be32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let craft ?(version = Frame.version) ?declared_len ?(bad_crc = false) ~tag
    payload =
  let buf = Buffer.create 64 in
  Buffer.add_char buf Frame.magic;
  add_varint buf (Option.value ~default:(String.length payload) declared_len);
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr tag);
  let crc = Urm_util.Crc32.digest (Buffer.contents buf) in
  add_be32 buf (if bad_crc then crc lxor 0xA5A5 else crc);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* The 63-bit overflow attack: a 9-byte LEB128 length (0x80 x8 then
   0x40) would decode to 2^62 and wrap negative under further shifts if
   accepted, slipping past the [> max_payload] check into the payload
   read.  The decoder's varint byte cap must reject it even with an
   honest CRC on the header. *)
let overflow_len_frame =
  let buf = Buffer.create 16 in
  Buffer.add_char buf Frame.magic;
  Buffer.add_string buf "\x80\x80\x80\x80\x80\x80\x80\x80\x40";
  Buffer.add_char buf (Char.chr Frame.version);
  Buffer.add_char buf '\x03';
  let crc = Urm_util.Crc32.digest (Buffer.contents buf) in
  add_be32 buf crc;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Round-trips *)

let frame_gen =
  let open QCheck.Gen in
  let doc = string_size ~gen:printable (int_range 0 200) in
  let blob = string_size (int_range 0 64) in
  oneof
    [
      map (fun s -> Frame.Hello s) blob;
      map (fun n -> Frame.Hello_ack n) (int_range 0 100_000);
      map (fun s -> Frame.Request s) doc;
      map (fun s -> Frame.Reply s) doc;
      map (fun ss -> Frame.Batch ss) (list_size (int_range 0 8) blob);
      map (fun ss -> Frame.Batch_reply ss) (list_size (int_range 0 8) doc);
      map (fun n -> Frame.Credit n) (int_range 0 100_000);
      map2
        (fun c m -> Frame.Proto_error (c, m))
        (string_size ~gen:printable (int_range 1 12))
        doc;
    ]

let frame_equal a b =
  match (a, b) with
  | Frame.Hello x, Frame.Hello y
  | Frame.Request x, Frame.Request y
  | Frame.Reply x, Frame.Reply y ->
    String.equal x y
  | Frame.Hello_ack x, Frame.Hello_ack y | Frame.Credit x, Frame.Credit y ->
    x = y
  | Frame.Batch x, Frame.Batch y | Frame.Batch_reply x, Frame.Batch_reply y ->
    List.length x = List.length y && List.for_all2 String.equal x y
  | Frame.Proto_error (c1, m1), Frame.Proto_error (c2, m2) ->
    String.equal c1 c2 && String.equal m1 m2
  | _ -> false

let qcheck_roundtrip =
  QCheck.Test.make ~name:"every frame survives encode/decode" ~count:500
    (QCheck.make frame_gen) (fun f ->
      let s = Frame.encode f in
      match Frame.decode s with
      | Ok (f', consumed) -> frame_equal f f' && consumed = String.length s
      | Error _ -> false)

let qcheck_chained =
  QCheck.Test.make ~name:"concatenated frames decode in sequence" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) frame_gen)) (fun fs ->
      let s = String.concat "" (List.map Frame.encode fs) in
      let rec walk pos = function
        | [] -> pos = String.length s
        | f :: rest -> (
          match Frame.decode ~pos s with
          | Ok (f', pos') -> frame_equal f f' && walk pos' rest
          | Error _ -> false)
      in
      walk 0 fs)

let qcheck_truncation =
  QCheck.Test.make ~name:"every strict prefix is an error, never a crash"
    ~count:100 (QCheck.make frame_gen) (fun f ->
      let s = Frame.encode f in
      List.for_all
        (fun cut ->
          match Frame.decode (String.sub s 0 cut) with
          | Ok _ -> false
          | Error _ -> true)
        (List.init (String.length s) Fun.id))

(* ------------------------------------------------------------------ *)
(* Error paths, one by one *)

let expect_error label expected input =
  match Frame.decode input with
  | Ok _ -> Alcotest.failf "%s decoded" label
  | Error e ->
    Alcotest.(check string) label expected (Frame.error_code e)

let test_decode_errors () =
  expect_error "empty input" "truncated" "";
  expect_error "foreign first byte" "bad_magic" "{\"op\":\"ping\"}";
  expect_error "flipped checksum" "bad_crc"
    (craft ~bad_crc:true ~tag:0x03 "{}");
  expect_error "future version, honest crc" "version_skew"
    (craft ~version:2 ~tag:0x03 "{}");
  expect_error "unknown tag, honest crc" "bad_tag" (craft ~tag:0x7F "{}");
  expect_error "declared length beyond the limit" "frame_too_large"
    (craft ~declared_len:(Frame.max_payload + 1) ~tag:0x03 "");
  expect_error "payload shorter than declared" "truncated"
    (craft ~declared_len:1000 ~tag:0x03 "{}");
  expect_error "overlong varint length" "frame_too_large"
    (String.make 1 Frame.magic ^ String.make 10 '\xFF');
  expect_error "63-bit overflow varint, honest crc" "frame_too_large"
    overflow_len_frame;
  expect_error "five-byte length beyond the limit" "frame_too_large"
    (craft ~declared_len:(1 lsl 28) ~tag:0x03 "");
  (* Header checks run before the payload is interpreted: a bad CRC wins
     over the version, the version over the tag. *)
  expect_error "crc beats version" "bad_crc"
    (craft ~version:9 ~bad_crc:true ~tag:0x03 "{}");
  expect_error "version beats tag" "version_skew"
    (craft ~version:9 ~tag:0x7F "{}")

let test_payload_errors () =
  expect_error "hello-ack with trailing bytes" "bad_payload"
    (craft ~tag:0x02 "\x01garbage");
  expect_error "credit with empty payload" "bad_payload" (craft ~tag:0x07 "");
  expect_error "batch item overruns payload" "bad_payload"
    (craft ~tag:0x05 "\x01\x7Fxy");
  expect_error "proto-error without json" "bad_payload"
    (craft ~tag:0x08 "not json");
  expect_error "proto-error missing fields" "bad_payload"
    (craft ~tag:0x08 "{\"code\":3}")

let test_error_messages_are_distinct () =
  let codes =
    List.map Frame.error_code
      [
        Frame.Truncated;
        Frame.Bad_magic 'x';
        Frame.Bad_crc;
        Frame.Bad_version 2;
        Frame.Bad_tag 0x7F;
        Frame.Oversized 1;
        Frame.Bad_payload "m";
      ]
  in
  Alcotest.(check int) "seven distinct codes" 7
    (List.length (List.sort_uniq String.compare codes))

(* ------------------------------------------------------------------ *)
(* Live-server fuzz *)

let recv_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with Unix.Unix_error _ -> ());
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  Buffer.contents buf

let frames_of_bytes s =
  let rec walk pos acc =
    if pos >= String.length s then List.rev acc
    else
      match Frame.decode ~pos s with
      | Ok (f, pos') -> walk pos' (f :: acc)
      | Error _ -> List.rev acc
  in
  walk 0 []

(* One adversarial exchange: send the bytes, read whatever comes back
   until the server closes, return the decoded reply frames. *)
let throw_at port bytes =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string bytes in
      ignore (Unix.write fd b 0 (Bytes.length b));
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      frames_of_bytes (recv_all fd))

let adversarial_gen =
  let open QCheck.Gen in
  let valid_request =
    return (Frame.encode (Frame.Request "{\"op\":\"ping\",\"id\":1}"))
  in
  oneof
    [
      (* Truncation at a random cut. *)
      (let* s = valid_request in
       let* cut = int_range 1 (String.length s - 1) in
       return (String.sub s 0 cut));
      (* One corrupted byte anywhere in a valid frame. *)
      (let* s = valid_request in
       let* i = int_range 1 (String.length s - 1) in
       let* c = char in
       let b = Bytes.of_string s in
       Bytes.set b i c;
       return (Bytes.to_string b));
      (* Version skew with an honest CRC. *)
      (let* v = int_range 2 255 in
       return (craft ~version:v ~tag:0x03 "{}"));
      (* Unknown tag with an honest CRC. *)
      (let* tag = oneof [ return 0x00; int_range 0x09 0xFF ] in
       return (craft ~tag "{}"));
      (* Oversized declared length. *)
      (let* extra = int_range 1 1_000_000 in
       return (craft ~declared_len:(Frame.max_payload + extra) ~tag:0x03 ""));
      (* Garbage after a valid frame: the request must be answered, the
         garbage must kill the connection. *)
      (let* s = valid_request in
       let* junk = string_size (int_range 1 32) in
       return (s ^ String.make 1 Frame.magic ^ junk));
      (* Client-sent server-only frame types. *)
      (let* f =
         oneofl
           [
             Frame.Reply "{}";
             Frame.Hello_ack 3;
             Frame.Batch_reply [ "{}" ];
             Frame.Proto_error ("x", "y");
           ]
       in
       return (Frame.encode f));
      (* Pure line noise behind the magic byte. *)
      (let* junk = string_size (int_range 0 64) in
       return (String.make 1 Frame.magic ^ junk));
    ]

let test_server_survives_fuzz () =
  let server =
    Server.start
      { Server.default_config with port = 0; workers = 2; queue_depth = 16 }
  in
  let port = Server.port server in
  let baseline = Server.connection_count server in
  let rand = Random.State.make [| 0xF5AE; 9 |] in
  let n = 1000 in
  let got_proto_error = ref 0 and got_reply = ref 0 in
  for _ = 1 to n do
    let bytes = QCheck.Gen.generate1 ~rand adversarial_gen in
    let replies = throw_at port bytes in
    List.iter
      (function
        | Frame.Proto_error _ -> incr got_proto_error
        | Frame.Reply _ -> incr got_reply
        | _ -> ())
      replies
  done;
  (* A deterministic subset with a guaranteed writable connection must
     have produced typed protocol errors. *)
  let must_err label bytes expected_code =
    match throw_at port bytes with
    | [ Frame.Proto_error (code, _) ] ->
      Alcotest.(check string) label expected_code code
    | frames ->
      Alcotest.failf "%s: got %d frames, wanted one proto-error" label
        (List.length frames)
  in
  must_err "bad crc is reported" (craft ~bad_crc:true ~tag:0x03 "{}") "bad_crc";
  must_err "version skew is reported" (craft ~version:7 ~tag:0x03 "{}")
    "version_skew";
  must_err "bad tag is reported" (craft ~tag:0x55 "{}") "bad_tag";
  must_err "oversized is reported"
    (craft ~declared_len:(Frame.max_payload + 1) ~tag:0x03 "")
    "frame_too_large";
  must_err "overflowing varint length is reported" overflow_len_frame
    "frame_too_large";
  (* A pipelined request followed by garbage: the garbage must yield the
     typed error; the request's reply races the reader's close (the
     executor answers asynchronously), so it may or may not get out. *)
  (match
     throw_at port
       (Frame.encode (Frame.Request "{\"op\":\"ping\",\"id\":1}")
       ^ craft ~bad_crc:true ~tag:0x03 "{}")
   with
  | [ Frame.Reply _; Frame.Proto_error ("bad_crc", _) ]
  | [ Frame.Proto_error ("bad_crc", _); Frame.Reply _ ]
  | [ Frame.Proto_error ("bad_crc", _) ] -> ()
  | frames ->
    Alcotest.failf
      "mid-stream garbage: got %d frames, wanted the bad_crc proto-error \
       (plus at most the racing reply)"
      (List.length frames));
  Alcotest.(check bool) "fuzz produced protocol errors" true (!got_proto_error > 50);
  (* The server must still serve both wire dialects... *)
  let check_ping framed =
    let c = Client.connect ~framed ~port () in
    (match Client.call c ~op:"ping" [] with
    | Ok (Json.Obj [ ("pong", Json.Bool true) ]) -> ()
    | Ok j -> Alcotest.failf "odd pong: %s" (Json.to_string j)
    | Error (code, m) -> Alcotest.failf "post-fuzz ping: %s: %s" code m);
    Client.close c
  in
  check_ping false;
  check_ping true;
  (* ... and must not leak a single fuzz connection. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec settle () =
    if Server.connection_count server <= baseline then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "leaked connections: %d live, baseline %d"
        (Server.connection_count server)
        baseline
    else begin
      Thread.delay 0.05;
      settle ()
    end
  in
  settle ();
  Server.stop server;
  Server.wait server

(* ------------------------------------------------------------------ *)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_chained;
    QCheck_alcotest.to_alcotest qcheck_truncation;
    Alcotest.test_case "header error paths" `Quick test_decode_errors;
    Alcotest.test_case "payload error paths" `Quick test_payload_errors;
    Alcotest.test_case "error codes are distinct" `Quick
      test_error_messages_are_distinct;
    Alcotest.test_case "live server survives 1000 adversarial frames" `Slow
      test_server_survives_fuzz;
  ]
