(* The query-service layer: LRU, wire protocol, canonical query keys,
   mapping-set wire validation, and domain-safety of the metrics registry.
   The live server is exercised end to end by test/smoke (dune @smoke,
   part of @runtest). *)

module Json = Urm_util.Json
module Lru = Urm_util.Lru
module Protocol = Urm_service.Protocol

(* ------------------------------------------------------------------ *)
(* Fnv *)

let test_fnv_stable () =
  Alcotest.(check string)
    "deterministic"
    (Urm_util.Fnv.to_hex (Urm_util.Fnv.string "abc"))
    (Urm_util.Fnv.to_hex (Urm_util.Fnv.string "abc"));
  Alcotest.(check bool)
    "different inputs differ" false
    (String.equal
       (Urm_util.Fnv.to_hex (Urm_util.Fnv.string "abc"))
       (Urm_util.Fnv.to_hex (Urm_util.Fnv.string "abd")));
  Alcotest.(check int) "16 hex digits" 16
    (String.length (Urm_util.Fnv.to_hex (Urm_util.Fnv.string "abc")))

let test_fnv_boundaries () =
  (* The separator byte keeps ["ab";"c"] and ["abc"] apart. *)
  let open Urm_util.Fnv in
  let split = add_string (add_string seed "ab") "c" in
  let whole = add_string seed "abc" in
  Alcotest.(check bool) "field boundaries matter" false (Int64.equal split whole)

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_eviction () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check (list string)) "no eviction" [] (Lru.add l "a" 1);
  Alcotest.(check (list string)) "no eviction" [] (Lru.add l "b" 2);
  (* Touch "a" so "b" is now least recently used. *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find l "a");
  Alcotest.(check (list string)) "evicts lru" [ "b" ] (Lru.add l "c" 3);
  Alcotest.(check (option int)) "b gone" None (Lru.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find l "a");
  Alcotest.(check int) "length" 2 (Lru.length l)

let test_lru_replace_and_clear () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "a" 9);
  Alcotest.(check (option int)) "replaced" (Some 9) (Lru.find l "a");
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length l);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l);
  Alcotest.(check bool) "capacity must be positive" true
    (match Lru.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_request_roundtrip () =
  let line =
    Json.to_string
      (Protocol.request ~id:(Json.Num 7.) ~op:"query"
         [ ("session", Json.Str "s"); ("k", Json.Num 3.) ])
  in
  match Protocol.parse_request line with
  | Error msg -> Alcotest.fail msg
  | Ok req ->
    Alcotest.(check string) "op" "query" req.Protocol.op;
    Alcotest.(check (option string)) "param" (Some "s")
      (Protocol.str_param req "session");
    Alcotest.(check (option int)) "int param" (Some 3) (Protocol.int_param req "k");
    Alcotest.(check (option int)) "absent param" None
      (Protocol.int_param req "missing")

let test_protocol_rejects () =
  List.iter
    (fun line ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ "nonsense"; "[1,2]"; "{}"; {|{"op": 3}|}; {|{"op": ""}|} ]

let test_protocol_reply_roundtrip () =
  (match Protocol.parse_reply (Protocol.ok ~id:(Json.Num 1.) (Json.Bool true)) with
  | Ok (Protocol.Ok (Json.Num 1., Json.Bool true)) -> ()
  | _ -> Alcotest.fail "ok reply did not round-trip");
  match Protocol.parse_reply (Protocol.error ~id:Json.Null ~code:"busy" "full") with
  | Ok (Protocol.Err (Json.Null, "busy", "full")) -> ()
  | _ -> Alcotest.fail "error reply did not round-trip"

let test_protocol_values () =
  let values =
    Urm_relalg.Value.[ Null; Int 42; Float 1.5; Str "x"; Int (-3) ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "value round-trip" true
        (Urm_relalg.Value.equal v
           (Protocol.value_of_json (Protocol.value_to_json v))))
    values

(* ------------------------------------------------------------------ *)
(* Query canonicalisation *)

let test_canonical_ignores_spelling () =
  let target = Urm_workload.Targets.excel in
  let at = Urm.Query.at in
  let q name sels =
    Urm.Query.make ~name ~target ~aliases:[ ("PO", "PO") ] ~selections:sels ()
  in
  let a =
    q "A"
      [
        (at "PO" "priority", Urm_relalg.Value.Int 2);
        (at "PO" "invoiceTo", Urm_relalg.Value.Str "Mary");
      ]
  in
  let b =
    q "B"
      [
        (at "PO" "invoiceTo", Urm_relalg.Value.Str "Mary");
        (at "PO" "priority", Urm_relalg.Value.Int 2);
      ]
  in
  Alcotest.(check string) "order and name independent" (Urm.Query.canonical a)
    (Urm.Query.canonical b);
  Alcotest.(check string) "fingerprints agree" (Urm.Query.fingerprint a)
    (Urm.Query.fingerprint b)

let test_canonical_sql_agrees () =
  let target, q4 = Urm_workload.Queries.by_name "Q4" in
  let sql = Urm.Sql.to_sql q4 in
  let reparsed = Urm.Sql.parse_exn ~name:"reparsed" ~target sql in
  Alcotest.(check string) "named query ≡ its SQL rendering"
    (Urm.Query.canonical q4) (Urm.Query.canonical reparsed)

let test_canonical_distinguishes () =
  let _, q1 = Urm_workload.Queries.by_name "Q1" in
  let _, q5 = Urm_workload.Queries.by_name "Q5" in
  (* Q5 is Q1 plus selections and a COUNT — must not collide. *)
  Alcotest.(check bool) "distinct queries differ" false
    (String.equal (Urm.Query.canonical q1) (Urm.Query.canonical q5))

(* ------------------------------------------------------------------ *)
(* Mapping_io wire validation *)

let mapping_set probs =
  List.mapi
    (fun i p ->
      Urm.Mapping.make ~id:i ~prob:p ~score:p
        [ ("Person.pname", "Customer.c" ^ string_of_int i) ])
    probs

let test_mapping_io_rejects_bad_probabilities () =
  let reject label text =
    match Urm.Mapping_io.of_json text with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  reject "sum 0.5"
    {|[{"id":0,"prob":0.5,"score":1,"pairs":[["Person.pname","Customer.cname"]]}]|};
  reject "prob 1.5"
    {|[{"id":0,"prob":1.5,"score":1,"pairs":[["Person.pname","Customer.cname"]]}]|};
  reject "negative prob"
    {|[{"id":0,"prob":-0.2,"score":1,"pairs":[["Person.pname","Customer.cname"]]},
       {"id":1,"prob":1.2,"score":1,"pairs":[["Person.pname","Customer.cname"]]}]|};
  reject "empty set" "[]";
  reject "pair arity"
    {|[{"id":0,"prob":1,"score":1,"pairs":[["Person.pname"]]}]|};
  reject "ill-typed prob"
    {|[{"id":0,"prob":"x","score":1,"pairs":[["Person.pname","Customer.cname"]]}]|}

let test_mapping_io_one_to_one_is_failure () =
  (* The mli contract says Failure, even though Mapping.make itself raises
     Invalid_argument: wire input must never surface as a programming
     error. *)
  let text =
    {|[{"id":0,"prob":1,"score":1,
       "pairs":[["Person.pname","Customer.a"],["Person.pname","Customer.b"]]}]|}
  in
  match Urm.Mapping_io.of_json text with
  | exception Failure _ -> ()
  | exception Invalid_argument _ ->
    Alcotest.fail "Invalid_argument leaked through of_json"
  | _ -> Alcotest.fail "duplicate target accepted"

let qcheck_mapping_io_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* weights = list_size (return n) (float_range 0.05 1.0) in
      let total = List.fold_left ( +. ) 0. weights in
      return (List.map (fun w -> w /. total) weights))
  in
  QCheck.Test.make ~name:"mapping sets survive the wire" ~count:100
    (QCheck.make gen) (fun probs ->
      let ms = Urm.Mapping.normalize (mapping_set probs) in
      let back = Urm.Mapping_io.of_json (Urm.Mapping_io.to_json ms) in
      List.length back = List.length ms
      && List.for_all2
           (fun a b ->
             Urm.Mapping.same_correspondences a b
             && Float.abs (a.Urm.Mapping.prob -. b.Urm.Mapping.prob) < 1e-9
             && a.Urm.Mapping.id = b.Urm.Mapping.id)
           ms back)

(* ------------------------------------------------------------------ *)
(* Metrics under concurrent domains *)

let test_metrics_concurrent_domains () =
  let m = Urm_obs.Metrics.create () in
  let c = Urm_obs.Metrics.counter m "shared" in
  let tm = Urm_obs.Metrics.timer m "lat" in
  let per_domain = 25_000 in
  let body () =
    for _ = 1 to per_domain do
      Urm_obs.Metrics.incr c;
      Urm_obs.Metrics.record tm 0.001
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Urm_obs.Metrics.value c);
  Alcotest.(check int) "no lost recordings" (4 * per_domain)
    (Urm_obs.Metrics.calls tm);
  Alcotest.(check (float 1e-6)) "no torn accumulation"
    (0.001 *. float_of_int (4 * per_domain))
    (Urm_obs.Metrics.elapsed tm)

let test_metrics_json_sorted () =
  let m = Urm_obs.Metrics.create () in
  (* Insert in reverse order; the snapshot must come out sorted. *)
  List.iter
    (fun n -> Urm_obs.Metrics.incr (Urm_obs.Metrics.counter m n))
    [ "z"; "m"; "a" ];
  Urm_obs.Metrics.record (Urm_obs.Metrics.timer m "t2") 1.;
  Urm_obs.Metrics.record (Urm_obs.Metrics.timer m "t1") 2.;
  Alcotest.(check string) "byte-deterministic rendering"
    {|{"counters":{"a":1,"m":1,"z":1},"timers":{"t1":{"seconds":2,"count":1},"t2":{"seconds":1,"count":1}}}|}
    (Json.to_string (Urm_obs.Metrics.to_json m))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "fnv is stable" `Quick test_fnv_stable;
    Alcotest.test_case "fnv separates field boundaries" `Quick test_fnv_boundaries;
    Alcotest.test_case "lru evicts least recently used" `Quick test_lru_eviction;
    Alcotest.test_case "lru replaces and clears" `Quick test_lru_replace_and_clear;
    Alcotest.test_case "protocol request round-trip" `Quick
      test_protocol_request_roundtrip;
    Alcotest.test_case "protocol rejects malformed requests" `Quick
      test_protocol_rejects;
    Alcotest.test_case "protocol reply round-trip" `Quick
      test_protocol_reply_roundtrip;
    Alcotest.test_case "protocol value mapping" `Quick test_protocol_values;
    Alcotest.test_case "canonical ignores name and order" `Quick
      test_canonical_ignores_spelling;
    Alcotest.test_case "canonical agrees with SQL round-trip" `Quick
      test_canonical_sql_agrees;
    Alcotest.test_case "canonical distinguishes queries" `Quick
      test_canonical_distinguishes;
    Alcotest.test_case "mapping_io rejects bad probabilities" `Quick
      test_mapping_io_rejects_bad_probabilities;
    Alcotest.test_case "mapping_io one-to-one violations are Failure" `Quick
      test_mapping_io_one_to_one_is_failure;
    QCheck_alcotest.to_alcotest qcheck_mapping_io_roundtrip;
    Alcotest.test_case "metrics survive concurrent domains" `Quick
      test_metrics_concurrent_domains;
    Alcotest.test_case "metrics json has sorted keys" `Quick
      test_metrics_json_sorted;
  ]
