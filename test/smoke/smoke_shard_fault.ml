(* Fault-injection smoke for the shard router (dune @smoke): SIGKILL a
   worker mid-query and assert that every in-flight reply is either a
   correct answer (the router retried against the respawned worker) or
   the typed [shard_unavailable] error — never a crash, never a wrong
   answer.  Then commit a mutation, kill another worker, and check that
   the replacement's replayed state (session open + mutation log) still
   answers byte-identically.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Router = Urm_shard.Router

(* Workers are this very binary, re-executed. *)
let () = Urm_shard.Launcher.exec_if_worker ()

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "shard-fault: FAIL %s\n%!" label
  end

let member name json = Option.value ~default:Json.Null (Json.member name json)

let answer_key json =
  Json.to_string
    (Json.Obj
       [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

let seed = 5
let scale = 0.005
let h = 6
let session = ("session", Json.Str "fault")

let q1_basic =
  [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "basic") ]

let () =
  match Router.start { Router.default_config with shards = 2 } with
  | Error m ->
    Printf.eprintf "shard-fault: cannot start the router: %s\n%!" m;
    exit 1
  | Ok router ->
    let port = Router.port router in
    let c = Client.connect ~framed:true ~port () in
    (match
       Client.call c ~op:"open-session"
         [
           session;
           ("target", Json.Str "Excel");
           ("seed", Json.Num (float_of_int seed));
           ("scale", Json.Num scale);
           ("h", Json.Num (float_of_int h));
         ]
     with
    | Ok _ -> ()
    | Error (code, m) ->
      Printf.eprintf "shard-fault: open-session: %s: %s\n%!" code m;
      exit 1);
    let baseline =
      match Client.call c ~op:"query" q1_basic with
      | Ok reply -> answer_key reply
      | Error (code, m) ->
        Printf.eprintf "shard-fault: baseline query: %s: %s\n%!" code m;
        exit 1
    in

    (* Phase 1: SIGKILL a worker while queries are in flight. *)
    let initial_pids = Router.worker_pids router in
    check "two workers spawned" (List.length initial_pids = 2);
    let killed = ref false in
    let killer =
      Thread.create
        (fun () ->
          Thread.delay 0.05;
          match Router.worker_pids router with
          | pid :: _ ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            killed := true
          | [] -> check "a worker pid to kill" false)
        ()
    in
    let deadline = Unix.gettimeofday () +. 30. in
    let recovered = ref false in
    while (not !recovered) && Unix.gettimeofday () < deadline do
      (match Client.call c ~op:"query" q1_basic with
      | Ok reply ->
        check "in-flight answer is correct"
          (String.equal (answer_key reply) baseline);
        if !killed then recovered := true
      | Error ("shard_unavailable", _) ->
        (* The typed degradation — acceptable while the replacement boots. *)
        ()
      | Error (code, m) ->
        check (Printf.sprintf "unexpected error during fault: %s: %s" code m)
          false);
      Thread.delay 0.02
    done;
    Thread.join killer;
    check "a correct answer after the kill" !recovered;
    let restart_deadline = Unix.gettimeofday () +. 30. in
    while Router.restarts router < 1 && Unix.gettimeofday () < restart_deadline do
      Thread.delay 0.1
    done;
    check "the dead worker was respawned" (Router.restarts router >= 1);

    (* Phase 2: mutate, capture the post-mutation answer, kill another
       worker, and make sure the replayed replacement still agrees —
       the mutation log survived the crash. *)
    (match
       Client.call c ~op:"mutate"
         [
           session;
           ( "mutations",
             Json.Arr
               [
                 Json.Obj
                   [
                     ("op", Json.Str "reweight");
                     ("mapping", Json.Num 0.);
                     ("prob", Json.Num 0.01);
                   ];
               ] );
         ]
     with
    | Ok reply -> check "mutation committed" (member "epoch" reply = Json.Num 1.)
    | Error (code, m) ->
      check (Printf.sprintf "post-restart mutate: %s: %s" code m) false);
    let mutated =
      match Client.call c ~op:"query" q1_basic with
      | Ok reply -> answer_key reply
      | Error (code, m) ->
        check (Printf.sprintf "post-mutation query: %s: %s" code m) false;
        ""
    in
    (match Router.worker_pids router with
    | pid :: _ -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | [] -> check "a worker pid for the second kill" false);
    let replay_deadline = Unix.gettimeofday () +. 30. in
    let replayed = ref false in
    while (not !replayed) && Unix.gettimeofday () < replay_deadline do
      (match Client.call c ~op:"query" q1_basic with
      | Ok reply when String.equal (answer_key reply) mutated -> replayed := true
      | Ok reply ->
        check "replayed state answers byte-identically"
          (String.equal (answer_key reply) mutated)
      | Error ("shard_unavailable", _) -> ()
      | Error (code, m) ->
        check (Printf.sprintf "unexpected error after second kill: %s: %s" code m)
          false);
      Thread.delay 0.02
    done;
    check "post-replay answers match the committed mutation" !replayed;
    check "both kills produced restarts" (Router.restarts router >= 2);

    (match Client.call c ~op:"shutdown" [] with
    | Ok bye -> check "drain acknowledged" (member "draining" bye = Json.Bool true)
    | Error (code, m) -> check (Printf.sprintf "shutdown: %s: %s" code m) false);
    Client.close c;
    Router.wait router;
    check "every worker reaped" (Router.worker_pids router = []);

    if !failures = 0 then print_endline "smoke: shard fault-injection OK"
    else begin
      Printf.eprintf "shard-fault: %d failure(s)\n%!" !failures;
      exit 1
    end
