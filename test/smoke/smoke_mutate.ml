(* Mutate-path smoke (dune @smoke, part of @runtest): open a session,
   query it, commit mutation batches over the wire, and check that

   - a data-only batch (delete + re-insert) commits atomically, reports
     selective cache invalidation, and leaves both the fresh and the
     maintained ("incr") answers equal to a local oracle that applied the
     identical batch to the identical versioned catalog,
   - a mapping reweight reports wholesale invalidation, forces the next
     query to recompute (cached = false), visibly changes the answer, and
     the maintained answer is patched — not rebuilt — to the same result,
   - the metrics op surfaces the per-session selective/wholesale counts
     and the cache's invalidation counters.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Server = Urm_service.Server
module Mutation = Urm_incr.Mutation
module Vcatalog = Urm_incr.Vcatalog

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "mutate-smoke: FAIL %s\n%!" label
  end

let get_exn label = function
  | Ok v -> v
  | Error (code, msg) ->
    incr failures;
    Printf.eprintf "mutate-smoke: FAIL %s: %s: %s\n%!" label code msg;
    Json.Null

let member name json = Option.value ~default:Json.Null (Json.member name json)
let num name json = match member name json with Json.Num f -> f | _ -> Float.nan
let str name json = match member name json with Json.Str s -> s | _ -> ""

(* Session parameters, shared by the server session and the local oracle. *)
let seed = 7
let scale = 0.01
let h = 8
let limit = 500 (* large enough that no answer is truncated *)

let answers_json answer =
  Json.Arr
    (List.map
       (fun (tuple, p) ->
         Json.Obj
           [
             ( "tuple",
               Json.Arr
                 (List.map Urm_service.Protocol.value_to_json
                    (Array.to_list tuple)) );
             ("prob", Json.Num p);
           ])
       (Urm.Answer.top_k answer limit))

let answer_key_of_json json =
  Json.to_string
    (Json.Obj
       [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

(* Tolerant comparison for the maintained answer: patched buckets carry
   float residue within Prob.eps of a fresh evaluation, so byte equality
   is too strict — compare tuple sets and probabilities within eps. *)
let answers_eps_equal a b =
  let bag json =
    match member "answers" json with
    | Json.Arr items ->
      List.map
        (fun it -> (Json.to_string (member "tuple" it), num "prob" it))
        items
      |> List.sort compare
    | _ -> []
  in
  let ba = bag a and bb = bag b in
  List.length ba = List.length bb
  && List.for_all2
       (fun (ta, pa) (tb, pb) ->
         String.equal ta tb && Float.abs (pa -. pb) <= 1e-9)
       ba bb
  && Float.abs (num "null_prob" a -. num "null_prob" b) <= 1e-9

let () =
  (* The local oracle: the same pipeline parameters give the same instance
     and mapping set, and committing the same batches to a local versioned
     catalog replays the server's state epoch by epoch. *)
  let p = Urm_workload.Pipeline.create ~seed ~scale () in
  let excel = Urm_workload.Targets.excel in
  let ctx = Urm_workload.Pipeline.ctx p excel in
  let ms = Urm_workload.Pipeline.mappings p excel ~h in
  let vcat = Vcatalog.create ~ctx ~mappings:ms () in
  let _, q1 = Urm_workload.Queries.by_name "Q1" in
  let oracle_key () =
    let head = Vcatalog.head vcat in
    let report =
      Urm.Algorithms.run Urm.Algorithms.Basic head.Vcatalog.ctx q1
        head.Vcatalog.mappings
    in
    let answer = report.Urm.Report.answer in
    Json.to_string
      (Json.Obj
         [
           ("answers", answers_json answer);
           ("null", Json.Num (Urm.Answer.null_prob answer));
         ])
  in

  (* Batch 1, data only: delete the first row of some relation and insert
     it back.  The final instance differs only in row order, so the answer
     is unchanged — the point is the non-monotone (reeval) path, commit
     atomicity over the wire, and selective invalidation. *)
  let cat0 = ctx.Urm.Ctx.catalog in
  let rel = List.hd (List.sort String.compare (Urm_relalg.Catalog.names cat0)) in
  let row0 = (Urm_relalg.Catalog.find cat0 rel).Urm_relalg.Relation.rows.(0) in
  let batch1 =
    [ Mutation.Delete { rel; row = row0 }; Mutation.Insert { rel; row = row0 } ]
  in
  (* Batch 2: halve the first mapping's probability — guaranteed to move
     probability mass, so the answer visibly changes. *)
  let m0 = List.hd ms in
  let batch2 =
    [
      Mutation.Reweight
        { mapping = m0.Urm.Mapping.id; prob = m0.Urm.Mapping.prob /. 2. };
    ]
  in

  let server =
    Server.start { Server.default_config with port = 0; workers = 2 }
  in
  let port = Server.port server in
  let session = ("session", Json.Str "mut") in
  let c = Client.connect ~port () in
  let opened =
    get_exn "open-session"
      (Client.call c ~op:"open-session"
         [
           session;
           ("target", Json.Str "Excel");
           ("seed", Json.Num (float_of_int seed));
           ("scale", Json.Num scale);
           ("h", Json.Num (float_of_int h));
         ])
  in
  check "session created" (member "created" opened = Json.Bool true);
  check "session opens at epoch 0" (num "epoch" opened = 0.);

  let query alg =
    get_exn ("query " ^ alg)
      (Client.call c ~op:"query"
         [
           session;
           ("query", Json.Str "Q1");
           ("algorithm", Json.Str alg);
           ("answers", Json.Num (float_of_int limit));
         ])
  in
  let mutate label batch =
    get_exn label
      (Client.call c ~op:"mutate"
         [ session; ("mutations", Mutation.batch_to_json batch) ])
  in

  (* Epoch 0: cold, warm (cached), and the maintained answer. *)
  let basic0 = query "basic" in
  check "epoch-0 basic matches the oracle"
    (String.equal (answer_key_of_json basic0) (oracle_key ()));
  let warm = query "basic" in
  check "warm run is served from cache" (member "cached" warm = Json.Bool true);
  let incr0 = query "incr" in
  check "incr is built on first use" (String.equal (str "status" incr0) "built");
  check "incr epoch 0" (num "epoch" incr0 = 0.);
  check "built incr equals basic" (answers_eps_equal incr0 basic0);

  (* Batch 1 over the wire and on the oracle. *)
  let r1 = mutate "mutate (data)" batch1 in
  check "data batch bumps to epoch 1" (num "epoch" r1 = 1.);
  check "data batch touched the relation"
    (member "touched" r1 = Json.Arr [ Json.Str rel ]);
  check "data batch left mappings alone"
    (member "mappings_changed" r1 = Json.Bool false);
  check "data batch invalidates selectively"
    (String.equal (str "scope" (member "invalidation" r1)) "selective");
  (match Vcatalog.commit vcat batch1 with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "oracle commit 1: %s" msg) false);

  let basic1 = query "basic" in
  check "epoch-1 basic matches the oracle"
    (String.equal (answer_key_of_json basic1) (oracle_key ()));
  let incr1 = query "incr" in
  check "incr is patched, not rebuilt"
    (String.equal (str "status" incr1) "patched");
  check "incr epoch 1" (num "epoch" incr1 = 1.);
  check "patched incr equals basic after the data batch"
    (answers_eps_equal incr1 basic1);

  (* Batch 2: the reweight must change the answer and flush the cache. *)
  let r2 = mutate "mutate (reweight)" batch2 in
  check "reweight bumps to epoch 2" (num "epoch" r2 = 2.);
  check "reweight flags the mapping change"
    (member "mappings_changed" r2 = Json.Bool true);
  check "reweight invalidates wholesale"
    (String.equal (str "scope" (member "invalidation" r2)) "wholesale");
  check "wholesale invalidation removed the cached answers"
    (num "removed" (member "invalidation" r2) >= 1.);
  (match Vcatalog.commit vcat batch2 with
  | Ok _ -> ()
  | Error msg -> check (Printf.sprintf "oracle commit 2: %s" msg) false);

  let basic2 = query "basic" in
  check "post-reweight query recomputes" (member "cached" basic2 = Json.Bool false);
  check "epoch-2 basic matches the oracle"
    (String.equal (answer_key_of_json basic2) (oracle_key ()));
  check "the reweight changed the answer"
    (not (String.equal (answer_key_of_json basic2) (answer_key_of_json basic1)));
  let incr2 = query "incr" in
  check "incr patched across the reweight"
    (String.equal (str "status" incr2) "patched");
  check "patched incr equals basic after the reweight"
    (answers_eps_equal incr2 basic2);

  (* Metrics surface both invalidation views. *)
  let m = get_exn "metrics" (Client.call c ~op:"metrics" []) in
  let inv = member "invalidate" (member "cache" m) in
  check "one selective invalidation counted" (num "selective" inv = 1.);
  check "one wholesale invalidation counted" (num "wholesale" inv = 1.);
  check "invalidation removed entries" (num "removed" inv >= 1.);
  let per_session = member "mut" (member "invalidations" m) in
  check "per-session selective count" (num "selective" per_session = 1.);
  check "per-session wholesale count" (num "wholesale" per_session = 1.);
  check "per-session epoch" (num "epoch" per_session = 2.);

  (* Bad batches reject atomically: unknown relation, row never applied. *)
  (match
     Client.call c ~op:"mutate"
       [
         session;
         ( "mutations",
           Mutation.batch_to_json
             [ Mutation.Insert { rel = "NoSuchRel"; row = row0 } ] );
       ]
   with
  | Error ("conflict", _) -> ()
  | _ -> check "unknown relation is a conflict" false);
  let m' = get_exn "metrics after reject" (Client.call c ~op:"metrics" []) in
  check "rejected batch did not bump the epoch"
    (num "epoch" (member "mut" (member "invalidations" m')) = 2.);

  (match Client.call c ~op:"shutdown" [] with
  | Ok bye -> check "drain acknowledged" (member "draining" bye = Json.Bool true)
  | Error (code, msg) -> check (Printf.sprintf "shutdown: %s: %s" code msg) false);
  Client.close c;
  Server.wait server;

  if !failures = 0 then print_endline "mutate-smoke: service OK"
  else begin
    Printf.eprintf "mutate-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
