(* Service concurrency stress (dune @smoke, part of @runtest): eight
   clients hammer one session with a mix of cache-friendly and
   cache-defeating query requests while the server evaluates through a
   shared two-domain pool, and every reply is checked against a
   sequential oracle computed locally from the same pipeline parameters
   (same seed, scale and h ⇒ byte-identical answer payloads — JSON
   floats print as %.17g, which round-trips exactly).  Afterwards the
   cache counters must balance: with a capacity far above the distinct
   variant count, evict = 0 and hit + miss equals the number of query
   requests issued.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Server = Urm_service.Server

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "stress: FAIL %s\n%!" label
  end

let member name json = Option.value ~default:Json.Null (Json.member name json)

let num name json =
  match member name json with Json.Num f -> f | _ -> Float.nan

(* Session parameters, shared by the server session and the local oracle. *)
let seed = 7
let scale = 0.01
let h = 8
let n_clients = 8

(* Mirrors the server's answer serialisation (Server.answers_json). *)
let answers_json answer limit =
  Json.Arr
    (List.map
       (fun (tuple, p) ->
         Json.Obj
           [
             ( "tuple",
               Json.Arr
                 (List.map Urm_service.Protocol.value_to_json
                    (Array.to_list tuple)) );
             ("prob", Json.Num p);
           ])
       (Urm.Answer.top_k answer limit))

let answer_key_of_json json =
  Json.to_string
    (Json.Obj
       [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

(* The request mix.  Only the strictly per-item-deterministic algorithms:
   the server evaluates through a jobs = 2 pool and the oracle runs
   sequentially, so the payloads must be bit-identical. *)
let shared_script =
  [
    ("Q1", "o-sharing", 20);
    ("Q2", "basic", 20);
    ("Q1", "e-basic", 20);
    ("Q3", "q-sharing", 20);
  ]

let unique_script i = [ ("Q2", "basic", 40 + i); ("Q5", "o-sharing", 60 + i) ]

(* shared twice: the second pass is the cache-friendly half of the mix. *)
let script i = shared_script @ unique_script i @ shared_script

let algorithm_of = function
  | "basic" -> Urm.Algorithms.Basic
  | "e-basic" -> Urm.Algorithms.Ebasic
  | "q-sharing" -> Urm.Algorithms.Qsharing
  | "o-sharing" -> Urm.Algorithms.Osharing Urm.Eunit.Sef
  | other -> failwith ("stress: no oracle algorithm for " ^ other)

let () =
  (* The sequential oracle over the same pipeline parameters. *)
  let p = Urm_workload.Pipeline.create ~seed ~scale () in
  let excel = Urm_workload.Targets.excel in
  let ctx = Urm_workload.Pipeline.ctx p excel in
  let ms = Urm_workload.Pipeline.mappings p excel ~h in
  let oracle = Hashtbl.create 32 in
  let oracle_key (qname, alg_name, limit) =
    match Hashtbl.find_opt oracle (qname, alg_name, limit) with
    | Some k -> k
    | None ->
      let _, q = Urm_workload.Queries.by_name qname in
      let report = Urm.Algorithms.run (algorithm_of alg_name) ctx q ms in
      let answer = report.Urm.Report.answer in
      let k =
        Json.to_string
          (Json.Obj
             [
               ("answers", answers_json answer limit);
               ("null", Json.Num (Urm.Answer.null_prob answer));
             ])
      in
      Hashtbl.replace oracle (qname, alg_name, limit) k;
      k
  in
  List.iter
    (fun i -> List.iter (fun case -> ignore (oracle_key case)) (script i))
    (List.init n_clients Fun.id);

  let server =
    Server.start
      {
        Server.default_config with
        port = 0;
        workers = 4;
        queue_depth = 256;
        cache_capacity = 4096;
        eval_jobs = 2;
      }
  in
  let port = Server.port server in
  let session = ("session", Json.Str "stress") in
  let open_params =
    [
      session;
      ("target", Json.Str "Excel");
      ("seed", Json.Num (float_of_int seed));
      ("scale", Json.Num scale);
      ("h", Json.Num (float_of_int h));
    ]
  in
  let c0 = Client.connect ~port () in
  (match Client.call c0 ~op:"open-session" open_params with
  | Ok opened -> check "session created" (member "created" opened = Json.Bool true)
  | Error (code, msg) -> check (Printf.sprintf "open-session: %s: %s" code msg) false);

  (* Eight clients, each racing the full mix over the one session. *)
  let cached_seen = Array.make n_clients 0 in
  let run_client i =
    let c = Client.connect ~port () in
    (match Client.call c ~op:"open-session" open_params with
    | Ok _ -> ()
    | Error (code, msg) ->
      check (Printf.sprintf "client %d reopen: %s: %s" i code msg) false);
    List.iter
      (fun ((qname, alg_name, limit) as case) ->
        match
          Client.call c ~op:"query"
            [
              session;
              ("query", Json.Str qname);
              ("algorithm", Json.Str alg_name);
              ("answers", Json.Num (float_of_int limit));
            ]
        with
        | Error (code, msg) ->
          check
            (Printf.sprintf "client %d %s/%s/%d: %s: %s" i qname alg_name limit
               code msg)
            false
        | Ok reply ->
          if member "cached" reply = Json.Bool true then
            cached_seen.(i) <- cached_seen.(i) + 1;
          check
            (Printf.sprintf "client %d %s/%s/%d matches the sequential oracle" i
               qname alg_name limit)
            (String.equal (answer_key_of_json reply) (oracle_key case)))
      (script i);
    Client.close c
  in
  let threads =
    List.init n_clients (fun i -> Thread.create (fun () -> run_client i) ())
  in
  List.iter Thread.join threads;

  (* Mutate-then-query rounds, sequential and deterministic: each round
     commits a batch over the wire and to a local versioned catalog built
     from the same state, then compares the server's fresh answer
     byte-for-byte against a local evaluation over the oracle head (the
     commit path is shared code, so the instances are identical), and the
     maintained "incr" answer within Prob.eps of it.  Data-only rounds
     must invalidate selectively, mapping rounds wholesale. *)
  let module Mutation = Urm_incr.Mutation in
  let module Vcatalog = Urm_incr.Vcatalog in
  let ovcat = Vcatalog.create ~ctx ~mappings:ms () in
  let _, q1_query = Urm_workload.Queries.by_name "Q1" in
  let rel =
    List.hd (List.sort String.compare (Urm_relalg.Catalog.names ctx.Urm.Ctx.catalog))
  in
  let answers_eps_equal a b =
    let bag json =
      match member "answers" json with
      | Json.Arr items ->
        List.map
          (fun it -> (Json.to_string (member "tuple" it), num "prob" it))
          items
        |> List.sort compare
      | _ -> []
    in
    let ba = bag a and bb = bag b in
    List.length ba = List.length bb
    && List.for_all2
         (fun (ta, pa) (tb, pb) ->
           String.equal ta tb && Float.abs (pa -. pb) <= 1e-9)
         ba bb
    && Float.abs (num "null_prob" a -. num "null_prob" b) <= 1e-9
  in
  let n_rounds = 4 in
  let mutated_queries = ref 0 in
  for round = 0 to n_rounds - 1 do
    let head = Vcatalog.head ovcat in
    let batch =
      if round mod 2 = 0 then begin
        (* Data-only: delete a live row and insert it back, shifted to the
           end — answer-preserving, but a real non-monotone commit. *)
        let stored = Urm_relalg.Catalog.find head.Vcatalog.ctx.Urm.Ctx.catalog rel in
        let row =
          stored.Urm_relalg.Relation.rows.(round
                                           mod Urm_relalg.Relation.cardinality
                                                 stored)
        in
        [ Mutation.Delete { rel; row }; Mutation.Insert { rel; row } ]
      end
      else
        let m =
          List.nth head.Vcatalog.mappings (round mod List.length head.Vcatalog.mappings)
        in
        [
          Mutation.Reweight
            { mapping = m.Urm.Mapping.id; prob = m.Urm.Mapping.prob *. 0.8 };
        ]
    in
    (match Vcatalog.commit ovcat batch with
    | Ok _ -> ()
    | Error msg -> check (Printf.sprintf "round %d oracle commit: %s" round msg) false);
    (match
       Client.call c0 ~op:"mutate"
         [ session; ("mutations", Mutation.batch_to_json batch) ]
     with
    | Error (code, msg) ->
      check (Printf.sprintf "round %d mutate: %s: %s" round code msg) false
    | Ok r ->
      check
        (Printf.sprintf "round %d epoch advanced" round)
        (num "epoch" r = float_of_int (round + 1));
      check
        (Printf.sprintf "round %d invalidation scope" round)
        (String.equal
           (match member "invalidation" r with j -> (match member "scope" j with Json.Str s -> s | _ -> ""))
           (if round mod 2 = 0 then "selective" else "wholesale")));
    let head = Vcatalog.head ovcat in
    let expected =
      let report =
        Urm.Algorithms.run Urm.Algorithms.Basic head.Vcatalog.ctx q1_query
          head.Vcatalog.mappings
      in
      let answer = report.Urm.Report.answer in
      Json.to_string
        (Json.Obj
           [
             ("answers", answers_json answer 20);
             ("null", Json.Num (Urm.Answer.null_prob answer));
           ])
    in
    (match
       Client.call c0 ~op:"query"
         [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "basic") ]
     with
    | Error (code, msg) ->
      check (Printf.sprintf "round %d query: %s: %s" round code msg) false
    | Ok reply ->
      incr mutated_queries;
      check
        (Printf.sprintf "round %d answer matches the post-mutation oracle" round)
        (String.equal (answer_key_of_json reply) expected);
      (match
         Client.call c0 ~op:"query"
           [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "incr") ]
       with
      | Error (code, msg) ->
        check (Printf.sprintf "round %d incr query: %s: %s" round code msg) false
      | Ok incr_reply ->
        check
          (Printf.sprintf "round %d incr status" round)
          (match member "status" incr_reply with
          | Json.Str ("built" | "patched") -> true
          | _ -> false);
        check
          (Printf.sprintf "round %d maintained answer equals fresh basic" round)
          (answers_eps_equal incr_reply reply)))
  done;

  (* Cache accounting: every query request did exactly one cache lookup
     ("incr" queries bypass the cache); nothing was evicted; the repeated
     half of the mix did hit. *)
  let total_queries = (List.length (script 0) * n_clients) + !mutated_queries in
  (match Client.call c0 ~op:"metrics" [] with
  | Error (code, msg) -> check (Printf.sprintf "metrics: %s: %s" code msg) false
  | Ok m ->
    let cache = member "cache" m in
    let hit = num "hit" cache and miss = num "miss" cache in
    let evict = num "evict" cache in
    check "evict = 0 under a large cache" (evict = 0.);
    check
      (Printf.sprintf "hit + miss (%g + %g) = query requests (%d)" hit miss
         total_queries)
      (hit +. miss = float_of_int total_queries);
    (* Every shared variant is computed at most once per concurrent racer;
       far fewer than the repeats, so hits must dominate the shared half. *)
    check "cache hits observed" (hit >= float_of_int total_queries /. 4.);
    check "requests counted" (num "requests" m >= float_of_int total_queries);
    (* Invalidation accounting: two data-only rounds invalidated
       selectively, two mapping rounds wholesale — counted both at the
       cache and per session. *)
    let inv = member "invalidate" cache in
    check "selective invalidations counted" (num "selective" inv = 2.);
    check "wholesale invalidations counted" (num "wholesale" inv = 2.);
    let per_session = member "stress" (member "invalidations" m) in
    check "per-session selective count" (num "selective" per_session = 2.);
    check "per-session wholesale count" (num "wholesale" per_session = 2.);
    check "per-session epoch tracks the rounds"
      (num "epoch" per_session = float_of_int n_rounds));
  check "some client observed a cached reply"
    (Array.exists (fun n -> n > 0) cached_seen);

  (match Client.call c0 ~op:"shutdown" [] with
  | Ok bye -> check "drain acknowledged" (member "draining" bye = Json.Bool true)
  | Error (code, msg) -> check (Printf.sprintf "shutdown: %s: %s" code msg) false);
  Client.close c0;
  Server.wait server;

  if !failures = 0 then print_endline "stress: service OK"
  else begin
    Printf.eprintf "stress: %d failure(s)\n%!" !failures;
    exit 1
  end
