(* Multi-process stress for the shard router (dune @smoke): eight
   concurrent framed clients hammer a 3-shard router with a mix of
   fanned-out basic queries, forwarded algorithms, approx sampling,
   batch frames and (from one designated client) identity-preserving
   mutation commits — every reply byte-checked against a sequential
   oracle computed locally from the same pipeline parameters.  Then
   sequential mutate-and-verify rounds run the real state changes
   through the router against a local versioned-catalog oracle.

   Afterwards the per-shard cache counters must balance exactly: a
   fanned-out query (basic over mapping ranges, e-basic/e-mqo/q-sharing
   over e-unit slots) costs one partial-answer lookup per shard, a
   forwarded operation costs one on its home shard, incr and mutate
   cost none, and nothing is evicted.  The run reports the router's
   p50/p95/p99 and the per-shard cache hit/evict tallies.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Router = Urm_shard.Router

let () = Urm_shard.Launcher.exec_if_worker ()

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "stress-shard: FAIL %s\n%!" label
  end

let member name json = Option.value ~default:Json.Null (Json.member name json)
let num name json = match member name json with Json.Num f -> f | _ -> Float.nan

let seed = 7
let scale = 0.01
let h = 8
let shards = 3
let n_clients = 8
let session = ("session", Json.Str "stress")

(* Mirrors Server.answers_json. *)
let answers_json answer limit =
  Json.Arr
    (List.map
       (fun (tuple, p) ->
         Json.Obj
           [
             ( "tuple",
               Json.Arr
                 (List.map Urm_service.Protocol.value_to_json
                    (Array.to_list tuple)) );
             ("prob", Json.Num p);
           ])
       (Urm.Answer.top_k answer limit))

let answer_key_of_json json =
  Json.to_string
    (Json.Obj
       [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

let key_of_answer answer limit =
  Json.to_string
    (Json.Obj
       [
         ("answers", answers_json answer limit);
         ("null", Json.Num (Urm.Answer.null_prob answer));
       ])

(* The query mix: "basic" entries fan out over every shard (mapping
   ranges), e-basic/q-sharing fan out over e-unit slots, and o-sharing
   forwards whole to the session's home shard. *)
let shared_script =
  [
    ("Q1", "o-sharing", 20);
    ("Q2", "basic", 20);
    ("Q1", "e-basic", 20);
    ("Q3", "q-sharing", 20);
  ]

let unique_script i = [ ("Q2", "basic", 40 + i); ("Q5", "o-sharing", 60 + i) ]
let script i = shared_script @ unique_script i @ shared_script

let algorithm_of = function
  | "basic" -> Urm.Algorithms.Basic
  | "e-basic" -> Urm.Algorithms.Ebasic
  | "q-sharing" -> Urm.Algorithms.Qsharing
  | "o-sharing" -> Urm.Algorithms.Osharing Urm.Eunit.Sef
  | other -> failwith ("stress-shard: no oracle algorithm for " ^ other)

(* Cache-lookup cost of one query request, for the fleet-wide accounting:
   fanned algorithms (basic over mapping ranges, e-basic/e-mqo/q-sharing
   over e-unit slots — Router.unit_fan_algorithms) pay one partial lookup
   per shard; forwarded ones pay one on their home shard. *)
let lookups_of_alg = function
  | "basic" | "e-basic" | "e-mqo" | "q-sharing" -> shards
  | _ -> 1

let () =
  (* Sequential oracle over the same pipeline parameters. *)
  let p = Urm_workload.Pipeline.create ~seed ~scale () in
  let excel = Urm_workload.Targets.excel in
  let ctx = Urm_workload.Pipeline.ctx ~engine:Urm_relalg.Compile.Vectorized p excel in
  let ms = Urm_workload.Pipeline.mappings p excel ~h in
  let oracle = Hashtbl.create 32 in
  let oracle_key (qname, alg_name, limit) =
    match Hashtbl.find_opt oracle (qname, alg_name, limit) with
    | Some k -> k
    | None ->
      let _, q = Urm_workload.Queries.by_name qname in
      let report = Urm.Algorithms.run (algorithm_of alg_name) ctx q ms in
      let k = key_of_answer report.Urm.Report.answer limit in
      Hashtbl.replace oracle (qname, alg_name, limit) k;
      k
  in
  List.iter
    (fun i -> List.iter (fun case -> ignore (oracle_key case)) (script i))
    (List.init n_clients Fun.id);

  let router =
    match
      Router.start { Router.default_config with shards; queue_depth = 256 }
    with
    | Ok r -> r
    | Error m ->
      Printf.eprintf "stress-shard: cannot start the router: %s\n%!" m;
      exit 1
  in
  let port = Router.port router in
  let open_params =
    [
      session;
      ("target", Json.Str "Excel");
      ("seed", Json.Num (float_of_int seed));
      ("scale", Json.Num scale);
      ("h", Json.Num (float_of_int h));
    ]
  in
  let c0 = Client.connect ~framed:true ~port () in
  (match Client.call c0 ~op:"open-session" open_params with
  | Ok opened -> check "session created" (member "created" opened = Json.Bool true)
  | Error (code, msg) ->
    check (Printf.sprintf "open-session: %s: %s" code msg) false);

  (* One sequential approx reply is the oracle for the concurrent ones:
     fixed seed and budget make the sampler deterministic. *)
  let approx_params =
    [
      session;
      ("query", Json.Str "Q1");
      ("samples", Json.Num 300.);
      ("seed", Json.Num 11.);
    ]
  in
  let approx_full json =
    Json.to_string
      (Json.Obj
         [
           ("answers", member "answers" json);
           ("intervals", member "intervals" json);
           ("samples", member "samples" json);
         ])
  in
  let approx_oracle =
    match Client.call c0 ~op:"approx" approx_params with
    | Ok reply -> approx_full reply
    | Error (code, msg) ->
      check (Printf.sprintf "approx oracle: %s: %s" code msg) false;
      ""
  in

  (* Identity-preserving mutation: reweight mapping 0 to its current
     probability.  A real commit — epoch bump, invalidation broadcast —
     whose before/after states are byte-identical, so the concurrent
     racers' oracle keys stay exact. *)
  let noop_mutation =
    Json.Arr
      [
        Json.Obj
          [
            ("op", Json.Str "reweight");
            ("mapping", Json.Num 0.);
            ("prob", Json.Num (List.hd ms).Urm.Mapping.prob);
          ];
      ]
  in
  let n_noop_mutations = 3 in

  (* Eight clients race the mix; client 0 interleaves mutation commits. *)
  let run_client i =
    let c = Client.connect ~framed:true ~port () in
    (match Client.call c ~op:"open-session" open_params with
    | Ok _ -> ()
    | Error (code, msg) ->
      check (Printf.sprintf "client %d reopen: %s: %s" i code msg) false);
    List.iteri
      (fun step ((qname, alg_name, limit) as case) ->
        (if i = 0 && step < n_noop_mutations then
           match
             Client.call c ~op:"mutate"
               [ session; ("mutations", noop_mutation) ]
           with
           | Ok _ -> ()
           | Error (code, msg) ->
             check (Printf.sprintf "concurrent mutate %d: %s: %s" step code msg)
               false);
        match
          Client.call c ~op:"query"
            [
              session;
              ("query", Json.Str qname);
              ("algorithm", Json.Str alg_name);
              ("answers", Json.Num (float_of_int limit));
            ]
        with
        | Error (code, msg) ->
          check
            (Printf.sprintf "client %d %s/%s/%d: %s: %s" i qname alg_name limit
               code msg)
            false
        | Ok reply ->
          check
            (Printf.sprintf "client %d %s/%s/%d matches the oracle" i qname
               alg_name limit)
            (String.equal (answer_key_of_json reply) (oracle_key case)))
      (script i);
    (* Approx through the router, against the sequential reference. *)
    (match Client.call c ~op:"approx" approx_params with
    | Ok reply ->
      check
        (Printf.sprintf "client %d approx matches the sequential run" i)
        (String.equal (approx_full reply) approx_oracle)
    | Error (code, msg) ->
      check (Printf.sprintf "client %d approx: %s: %s" i code msg) false);
    (* A pipelined batch: ping + a fanned-out basic query in one frame. *)
    (match
       Client.call_batch c
         [
           ("ping", []);
           ( "query",
             [
               session;
               ("query", Json.Str "Q1");
               ("algorithm", Json.Str "basic");
               ("answers", Json.Num 20.);
             ] );
         ]
     with
    | Ok [ ping; q ] ->
      check
        (Printf.sprintf "client %d batch ping" i)
        (match ping with Ok j -> member "pong" j = Json.Bool true | _ -> false);
      check
        (Printf.sprintf "client %d batch query matches the oracle" i)
        (match q with
        | Ok reply ->
          String.equal (answer_key_of_json reply)
            (oracle_key ("Q1", "basic", 20))
        | Error _ -> false)
    | Ok replies ->
      check (Printf.sprintf "client %d batch arity %d" i (List.length replies)) false
    | Error msg -> check (Printf.sprintf "client %d batch: %s" i msg) false);
    Client.close c
  in
  let threads =
    List.init n_clients (fun i -> Thread.create (fun () -> run_client i) ())
  in
  List.iter Thread.join threads;

  (* Sequential mutate-and-verify rounds: real state changes through the
     router, differentially against a local versioned catalog. *)
  let module Mutation = Urm_incr.Mutation in
  let module Vcatalog = Urm_incr.Vcatalog in
  let ovcat = Vcatalog.create ~ctx ~mappings:ms () in
  let _, q1_query = Urm_workload.Queries.by_name "Q1" in
  let rel =
    List.hd
      (List.sort String.compare (Urm_relalg.Catalog.names ctx.Urm.Ctx.catalog))
  in
  let n_rounds = 4 in
  for round = 0 to n_rounds - 1 do
    let head = Vcatalog.head ovcat in
    let batch =
      if round mod 2 = 0 then begin
        let stored =
          Urm_relalg.Catalog.find head.Vcatalog.ctx.Urm.Ctx.catalog rel
        in
        let row =
          stored.Urm_relalg.Relation.rows.(round
                                           mod Urm_relalg.Relation.cardinality
                                                 stored)
        in
        [ Mutation.Delete { rel; row }; Mutation.Insert { rel; row } ]
      end
      else
        let m =
          List.nth head.Vcatalog.mappings
            (round mod List.length head.Vcatalog.mappings)
        in
        [
          Mutation.Reweight
            { mapping = m.Urm.Mapping.id; prob = m.Urm.Mapping.prob *. 0.8 };
        ]
    in
    (match Vcatalog.commit ovcat batch with
    | Ok _ -> ()
    | Error msg ->
      check (Printf.sprintf "round %d oracle commit: %s" round msg) false);
    (match
       Client.call c0 ~op:"mutate"
         [ session; ("mutations", Mutation.batch_to_json batch) ]
     with
    | Error (code, msg) ->
      check (Printf.sprintf "round %d mutate: %s: %s" round code msg) false
    | Ok r ->
      check
        (Printf.sprintf "round %d epoch advanced" round)
        (num "epoch" r = float_of_int (n_noop_mutations + round + 1)));
    let head = Vcatalog.head ovcat in
    let expected =
      let report =
        Urm.Algorithms.run Urm.Algorithms.Basic head.Vcatalog.ctx q1_query
          head.Vcatalog.mappings
      in
      key_of_answer report.Urm.Report.answer 20
    in
    match
      Client.call c0 ~op:"query"
        [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "basic") ]
    with
    | Error (code, msg) ->
      check (Printf.sprintf "round %d query: %s: %s" round code msg) false
    | Ok reply ->
      check
        (Printf.sprintf "round %d fanned answer matches the mutated oracle" round)
        (String.equal (answer_key_of_json reply) expected);
      (match
         Client.call c0 ~op:"query"
           [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "incr") ]
       with
      | Error (code, msg) ->
        check (Printf.sprintf "round %d incr query: %s: %s" round code msg) false
      | Ok incr_reply ->
        check
          (Printf.sprintf "round %d incr status" round)
          (match member "status" incr_reply with
          | Json.Str ("built" | "patched") -> true
          | _ -> false))
  done;

  (* Fleet-wide accounting and the latency report. *)
  let expected_lookups =
    let per_client i =
      List.fold_left
        (fun acc (_, alg, _) -> acc + lookups_of_alg alg)
        0 (script i)
      + 1 (* approx *)
      + lookups_of_alg "basic" (* the batched query *)
    in
    List.fold_left ( + ) 0 (List.init n_clients per_client)
    + 1 (* the sequential approx oracle *)
    + (n_rounds * lookups_of_alg "basic")
    (* incr and mutate never touch the answer cache *)
  in
  (match Client.call c0 ~op:"metrics" [] with
  | Error (code, msg) -> check (Printf.sprintf "metrics: %s: %s" code msg) false
  | Ok m ->
    let router_m = member "router" m in
    let lat = member "latency" router_m in
    Printf.printf
      "stress-shard: %d shards, %g requests; p50 %.4fs p95 %.4fs p99 %.4fs\n"
      shards (num "requests" router_m) (num "p50" lat) (num "p95" lat)
      (num "p99" lat);
    check "no worker restarts under load" (num "restarts" router_m = 0.);
    let hits = ref 0. and misses = ref 0. and evicts = ref 0. in
    (match member "shards" m with
    | Json.Arr per_shard ->
      check "one metrics entry per shard" (List.length per_shard = shards);
      List.iter
        (fun entry ->
          let cache = member "cache" (member "metrics" entry) in
          Printf.printf
            "stress-shard:   shard %g cache: hit %g miss %g evict %g\n"
            (num "shard" entry) (num "hit" cache) (num "miss" cache)
            (num "evict" cache);
          hits := !hits +. num "hit" cache;
          misses := !misses +. num "miss" cache;
          evicts := !evicts +. num "evict" cache)
        per_shard
    | _ -> check "per-shard metrics present" false);
    check "evict = 0 under a large cache" (!evicts = 0.);
    check
      (Printf.sprintf "hit + miss (%g + %g) = expected lookups (%d)" !hits
         !misses expected_lookups)
      (!hits +. !misses = float_of_int expected_lookups);
    check "the shared half of the mix hit the caches"
      (!hits >= float_of_int expected_lookups /. 4.));

  (match Client.call c0 ~op:"shutdown" [] with
  | Ok bye -> check "drain acknowledged" (member "draining" bye = Json.Bool true)
  | Error (code, msg) -> check (Printf.sprintf "shutdown: %s: %s" code msg) false);
  Client.close c0;
  Router.wait router;

  if !failures = 0 then print_endline "stress-shard: 3-shard router OK"
  else begin
    Printf.eprintf "stress-shard: %d failure(s)\n%!" !failures;
    exit 1
  end
