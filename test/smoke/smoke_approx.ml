(* End-to-end smoke test for the anytime [approx] service op (dune @smoke,
   part of @runtest): boot a server on an ephemeral loopback port, open a
   small fixed-seed workload session, and check that

   - the estimate mode stops for a declared reason, reports intervals, and
     every exact answer probability (from a "query"/basic run of the same
     query) falls inside the matching interval,
   - the top-k and threshold modes answer with their mode-specific fields,
   - an exact replay of an approx request is served from the answer cache
     ([cached] flips to true) with an otherwise identical payload,
   - budget validation rejects nonsense (delta ≥ 1) as a bad request.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Server = Urm_service.Server

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "smoke-approx: FAIL %s\n%!" label
  end

let get_exn label = function
  | Ok v -> v
  | Error (code, msg) ->
    incr failures;
    Printf.eprintf "smoke-approx: FAIL %s: %s: %s\n%!" label code msg;
    Json.Null

let member name json = Option.value ~default:Json.Null (Json.member name json)
let str name json = match member name json with Json.Str s -> s | _ -> ""
let num name json = match member name json with Json.Num f -> f | _ -> Float.nan

let arr name json =
  match member name json with Json.Arr l -> l | _ -> []

(* tuple-as-text key for matching answers against intervals *)
let tuple_key json = Json.to_string (member "tuple" json)

let () =
  let server =
    Server.start
      { Server.default_config with port = 0; workers = 2; queue_depth = 16 }
  in
  let port = Server.port server in
  let c = Client.connect ~port () in
  let session = ("session", Json.Str "smoke-approx") in
  let opened =
    get_exn "open-session"
      (Client.call c ~op:"open-session"
         [
           session;
           ("target", Json.Str "Excel");
           ("seed", Json.Num 7.);
           ("scale", Json.Num 0.01);
           ("h", Json.Num 8.);
         ])
  in
  check "session created" (member "created" opened = Json.Bool true);

  (* Exact baseline for Q1 over the same session mappings. *)
  let exact =
    get_exn "query/basic"
      (Client.call c ~op:"query"
         [ session; ("query", Json.Str "Q1"); ("algorithm", Json.Str "basic") ])
  in

  (* Estimate mode: a generous fixed budget at a small delta.  h = 8 worlds
     sampled 20k times observe every answer tuple, so each exact probability
     must sit inside its Wilson interval. *)
  let approx_params =
    [
      session;
      ("query", Json.Str "Q1");
      ("samples", Json.Num 20_000.);
      ("delta", Json.Num 0.001);
      ("epsilon", Json.Num 0.005);
      ("seed", Json.Num 42.);
    ]
  in
  let est = get_exn "approx/estimate" (Client.call c ~op:"approx" approx_params) in
  check "estimate mode" (str "mode" est = "estimate");
  check "stop reason declared"
    (match str "stop_reason" est with
    | "converged" | "samples-exhausted" -> true
    | _ -> false);
  check "samples spent" (num "samples" est > 0.);
  check "cold run" (member "cached" est = Json.Bool false);
  let intervals = arr "intervals" est in
  check "intervals present" (intervals <> []);
  List.iter
    (fun iv ->
      let lo = num "lo" iv and hi = num "hi" iv in
      check "interval well-formed" (0. <= lo && lo <= hi && hi <= 1.))
    intervals;
  let exact_answers = arr "answers" exact in
  check "baseline non-empty" (exact_answers <> []);
  List.iter
    (fun a ->
      let p = num "prob" a in
      match
        List.find_opt (fun iv -> String.equal (tuple_key iv) (tuple_key a)) intervals
      with
      | None -> check "exact tuple observed by the sampler" false
      | Some iv ->
        (* 1e-9 slack: the exact probability is a float sum over mappings
           and can overshoot a certain tuple's 1.0 by an ulp *)
        let lo = num "lo" iv -. 1e-9 and hi = num "hi" iv +. 1e-9 in
        check "exact prob inside interval" (lo <= p && p <= hi))
    exact_answers;
  let nlo = num "lo" (member "null_interval" est)
  and nhi = num "hi" (member "null_interval" est) in
  check "null interval covers exact null prob"
    (nlo <= num "null_prob" exact && num "null_prob" exact <= nhi);

  (* Replaying the identical request must come back from the answer cache
     with the same payload modulo the cached flag. *)
  let strip_cached json =
    match json with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (n, _) -> n <> "cached") fields)
    | other -> other
  in
  let replay = get_exn "approx replay" (Client.call c ~op:"approx" approx_params) in
  check "replay cached" (member "cached" replay = Json.Bool true);
  check "replay identical"
    (String.equal
       (Json.to_string (strip_cached est))
       (Json.to_string (strip_cached replay)));

  (* Top-k and threshold modes. *)
  let topk =
    get_exn "approx/topk"
      (Client.call c ~op:"approx"
         (approx_params @ [ ("k", Json.Num 3.) ]))
  in
  check "topk mode" (str "mode" topk = "topk");
  check "topk k echoed" (num "k" topk = 3.);
  check "topk answer bounded" (List.length (arr "answers" topk) <= 3);
  check "topk stopped_early declared"
    (match member "stopped_early" topk with Json.Bool _ -> true | _ -> false);

  let thresh =
    get_exn "approx/threshold"
      (Client.call c ~op:"approx"
         (approx_params @ [ ("tau", Json.Num 0.3) ]))
  in
  check "threshold mode" (str "mode" thresh = "threshold");
  check "threshold undecided counted" (num "undecided" thresh >= 0.);
  List.iter
    (fun iv -> check "threshold answers clear tau" (num "lo" iv >= 0.3))
    (arr "intervals" thresh);

  (* Budget validation surfaces as bad_request, not a dead worker. *)
  (match
     Client.call c ~op:"approx"
       [ session; ("query", Json.Str "Q1"); ("delta", Json.Num 1.5) ]
   with
  | Error ("bad_request", _) -> ()
  | Error (code, _) -> check ("delta=1.5 rejected as bad_request, got " ^ code) false
  | Ok _ -> check "delta=1.5 rejected" false);

  ignore (Client.call c ~op:"shutdown" []);
  Client.close c;
  Server.stop server;
  if !failures > 0 then begin
    Printf.eprintf "smoke-approx: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "smoke-approx: OK"
