(* End-to-end smoke test for the query service (dune @smoke, part of
   @runtest): start a server on an ephemeral loopback port, drive it with
   four concurrent clients sharing one session, and check that

   - every scripted request in the batch succeeds,
   - all clients get identical answers for the same query,
   - a repeated query is served from the answer cache (cache.hit > 0)
     with answers identical to the cold run,
   - the metrics op reports request counts and p50/p95 latency,
   - shutdown drains gracefully.

   Exit code 0 on success, 1 with a diagnostic on any failure. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Server = Urm_service.Server

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "smoke: FAIL %s\n%!" label
  end

let get_exn label = function
  | Ok v -> v
  | Error (code, msg) ->
    incr failures;
    Printf.eprintf "smoke: FAIL %s: %s: %s\n%!" label code msg;
    Json.Null

let member name json = Option.value ~default:Json.Null (Json.member name json)

let num name json =
  match member name json with Json.Num f -> f | _ -> Float.nan

(* The answer payload minus the volatile fields: what must be identical
   between clients and between a cold and a cached run. *)
let answer_key json =
  Json.to_string
    (Json.Obj [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

let () =
  let server =
    Server.start
      { Server.default_config with port = 0; workers = 4; queue_depth = 64 }
  in
  let port = Server.port server in
  (* [start] must leave SIGPIPE ignored: a worker flushing a reply to a
     client that disconnected mid-write would otherwise kill the process
     before [send]'s EPIPE handler runs.  (Read-modify-restore — [Sys]
     has no pure getter.) *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | Sys.Signal_ignore -> ()
  | prev ->
    Sys.set_signal Sys.sigpipe prev;
    check "SIGPIPE ignored after start" false);
  let session = ("session", Json.Str "smoke") in
  let open_params =
    [
      session;
      ("target", Json.Str "Excel");
      ("seed", Json.Num 7.);
      ("scale", Json.Num 0.01);
      ("h", Json.Num 8.);
    ]
  in

  (* One client opens the session; the others race the same open and must
     converge on the identical fingerprint. *)
  let c0 = Client.connect ~port () in
  let opened = get_exn "open-session" (Client.call c0 ~op:"open-session" open_params) in
  check "session created" (member "created" opened = Json.Bool true);
  let fingerprint = member "fingerprint" opened in
  check "fingerprint present" (match fingerprint with Json.Str _ -> true | _ -> false);

  (* Four concurrent clients over the one session: each runs the scripted
     batch and returns the per-query answer keys it observed. *)
  let script = [ ("Q1", "o-sharing"); ("Q2", "basic"); ("Q1", "e-basic") ] in
  let run_client i =
    let c = Client.connect ~port () in
    let reopened =
      get_exn "concurrent open" (Client.call c ~op:"open-session" open_params)
    in
    check
      (Printf.sprintf "client %d sees the same session" i)
      (Json.to_string (member "fingerprint" reopened) = Json.to_string fingerprint);
    let keys =
      List.map
        (fun (q, alg) ->
          let r =
            get_exn
              (Printf.sprintf "client %d %s/%s" i q alg)
              (Client.call c ~op:"query"
                 [ session; ("query", Json.Str q); ("algorithm", Json.Str alg) ])
          in
          answer_key r)
        script
    in
    Client.close c;
    keys
  in
  let results = Array.make 4 [] in
  let threads =
    List.init 4 (fun i -> Thread.create (fun () -> results.(i) <- run_client i) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i keys ->
      check
        (Printf.sprintf "client %d answers match client 0" i)
        (List.equal String.equal keys results.(0)))
    results;

  (* The exact algorithms must agree across the wire too: Q1 via o-sharing
     and Q1 via e-basic produced the same answer key. *)
  (match results.(0) with
  | [ k1_osh; _; k1_ebasic ] ->
    check "o-sharing ≡ e-basic over the wire" (String.equal k1_osh k1_ebasic)
  | _ -> check "script shape" false);

  (* A client that disconnects with a batch of requests still queued:
     the reader must tear the connection down on EOF, pending workers
     must drop their replies via the [alive] check (or absorb the
     EPIPE/RST if they were already writing), and the catalog/cache must
     stay consistent.  Distinct [answers] limits defeat the cache so the
     jobs are real work; every request c0 makes below doubles as the
     server-survived check. *)
  let abrupt = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect abrupt (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let batch =
    String.concat ""
      (List.init 5 (fun i ->
           Json.to_string
             (Urm_service.Protocol.request
                ~id:(Json.Num (float_of_int (900 + i)))
                ~op:"query"
                [
                  session;
                  ("query", Json.Str "Q2");
                  ("algorithm", Json.Str "basic");
                  ("answers", Json.Num (float_of_int (30 + i)));
                ])
           ^ "\n"))
  in
  ignore (Unix.write_substring abrupt batch 0 (String.length batch));
  Unix.close abrupt;

  (* Cache: a repeat of a scripted query must hit and must be identical. *)
  let cold =
    get_exn "cold query"
      (Client.call c0 ~op:"query" [ session; ("query", Json.Str "Q1") ])
  in
  let warm =
    get_exn "warm query"
      (Client.call c0 ~op:"query" [ session; ("query", Json.Str "Q1") ])
  in
  check "warm run is served from cache" (member "cached" warm = Json.Bool true);
  check "cached answers identical" (String.equal (answer_key cold) (answer_key warm));

  (* Top-k and threshold over the same session. *)
  let topk =
    get_exn "topk"
      (Client.call c0 ~op:"topk" [ session; ("query", Json.Str "Q2"); ("k", Json.Num 3.) ])
  in
  check "topk answers bounded" (match member "answers" topk with
    | Json.Arr l -> List.length l <= 3
    | _ -> false);
  let thr =
    get_exn "threshold"
      (Client.call c0 ~op:"threshold"
         [ session; ("query", Json.Str "Q2"); ("tau", Json.Num 0.3) ])
  in
  check "threshold replies" (match member "answers" thr with
    | Json.Arr _ -> true
    | _ -> false);

  (* Error replies: unknown session, malformed line, unknown op. *)
  (match Client.call c0 ~op:"query" [ ("session", Json.Str "nope") ] with
  | Error ("not_found", _) -> ()
  | _ -> check "unknown session is not_found" false);
  (match Client.roundtrip c0 "{not json" with
  | Ok reply ->
    check "malformed line is bad_request"
      (match Urm_service.Protocol.parse_reply reply with
      | Ok (Urm_service.Protocol.Err (_, "bad_request", _)) -> true
      | _ -> false)
  | Error _ -> check "malformed line got a reply" false);
  (match Client.call c0 ~op:"frobnicate" [] with
  | Error ("bad_request", _) -> ()
  | _ -> check "unknown op is bad_request" false);

  (* Metrics: requests counted, cache hits observed, latency quantiles. *)
  let m = get_exn "metrics" (Client.call c0 ~op:"metrics" []) in
  let requests = num "requests" m in
  let cache_hit = num "hit" (member "cache" m) in
  let p50 = num "p50" (member "latency" m) in
  let p95 = num "p95" (member "latency" m) in
  check "requests counted" (requests >= 19.);
  check "cache hits observed" (cache_hit >= 1.);
  check "p50 sane" (p50 >= 0. && Float.is_finite p50);
  check "p95 ≥ p50" (p95 >= p50);

  (* Graceful drain. *)
  let bye = get_exn "shutdown" (Client.call c0 ~op:"shutdown" []) in
  check "drain acknowledged" (member "draining" bye = Json.Bool true);
  Client.close c0;
  Server.wait server;

  if !failures = 0 then print_endline "smoke: service OK"
  else begin
    Printf.eprintf "smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
