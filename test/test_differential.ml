(* The cross-algorithm differential oracle suite.

   qcheck generators produce random mapping distributions (random 1:1
   correspondence subsets with random normalised probabilities, the shape
   [Urm.Mapgen] emits) and random target queries (selections, joins,
   aggregates) over the paper's running-example schemas and the workload
   schemas.  The property: every exact algorithm — sequential and through
   the domain-parallel drivers at jobs ∈ {2, 4} — returns the same
   (tuple, probability) answer set within [Urm.Prob.eps], and top-k
   answers are a prefix of the full ranking. *)

let s v = Urm_relalg.Value.Str v

(* Pools shared across all qcheck cases (creating domains per case would
   dominate the suite's runtime). *)
let pool2 = lazy (Urm_par.Pool.create ~jobs:2 ())
let pool4 = lazy (Urm_par.Pool.create ~jobs:4 ())

let exact_algorithms =
  [
    Urm.Algorithms.Basic;
    Urm.Algorithms.Ebasic;
    Urm.Algorithms.Emqo;
    Urm.Algorithms.Qsharing;
    Urm.Algorithms.Osharing Urm.Eunit.Sef;
    Urm.Algorithms.Osharing Urm.Eunit.Snf;
    Urm.Algorithms.Osharing Urm.Eunit.Random;
  ]

let modes =
  [
    ("seq", fun alg ctx q ms -> Urm.Algorithms.run alg ctx q ms);
    ( "jobs=2",
      fun alg ctx q ms ->
        Urm_par.Drivers.run ~pool:(Lazy.force pool2) alg ctx q ms );
    ( "jobs=4",
      fun alg ctx q ms ->
        Urm_par.Drivers.run ~pool:(Lazy.force pool4) alg ctx q ms );
  ]

(* All algorithms, all modes, all engines, against the interpreted
   sequential basic.  [ctxs] is a list of (engine label, context) over the
   same catalog — the first one is the baseline's.  Returns the first
   disagreement as a counterexample description. *)
let disagreement ctxs q ms =
  let _, baseline_ctx = List.hd ctxs in
  let baseline =
    (Urm.Algorithms.run Urm.Algorithms.Basic baseline_ctx q ms).Urm.Report.answer
  in
  List.fold_left
    (fun acc (engine, ctx) ->
      match acc with
      | Some _ -> acc
      | None ->
        List.fold_left
          (fun acc alg ->
            match acc with
            | Some _ -> acc
            | None ->
              List.fold_left
                (fun acc (mode, run) ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    let answer = (run alg ctx q ms).Urm.Report.answer in
                    if Urm.Answer.equal ~eps:Urm.Prob.eps baseline answer then
                      None
                    else
                      Some
                        (Printf.sprintf
                           "%s (%s, %s) disagrees with interpreted sequential \
                            basic"
                           (Urm.Algorithms.name alg) mode engine))
                None modes)
          None exact_algorithms)
    None ctxs

let check_agreement ctxs q ms =
  match disagreement ctxs q ms with
  | None -> true
  | Some msg -> QCheck.Test.fail_report msg

(* Interpreted first (it provides the baseline), then the plan engines. *)
let both_engines mk =
  [
    ("interpreted", mk Urm_relalg.Compile.Interpreted);
    ("compiled", mk Urm_relalg.Compile.Compiled);
    ("vectorized", mk Urm_relalg.Compile.Vectorized);
  ]

(* ------------------------------------------------------------------ *)
(* Random mapping distributions over the running-example schemas. *)

(* Candidate correspondences, one bucket per target attribute (the
   matcher's shape).  A generated mapping picks at most one source per
   target and keeps the choice 1:1 on the source side too. *)
let correspondence_pool =
  [
    ("Person.pname", [ "Customer.cname"; "Customer.mobile" ]);
    ("Person.phone", [ "Customer.ophone"; "Customer.hphone"; "Customer.mobile" ]);
    ("Person.addr", [ "Customer.oaddr"; "Customer.haddr" ]);
    ("Person.nation", [ "Nation.name" ]);
    ("Person.gender", [ "Customer.nid" ]);
    ("Order.price", [ "C_Order.amount" ]);
    ("Order.item", [ "Nation.name" ]);
    ("Order.total", [ "C_Order.amount" ]);
  ]

let pairs_gen =
  QCheck.Gen.(
    let bucket (tgt, sources) =
      let* keep = bool in
      if keep then
        let* src = oneofl sources in
        return (Some (tgt, src))
      else return None
    in
    let* chosen = flatten_l (List.map bucket correspondence_pool) in
    let pairs = List.filter_map Fun.id chosen in
    (* enforce 1:1 on the source side: first target wins *)
    let _, pairs =
      List.fold_left
        (fun (seen, acc) (tgt, src) ->
          if List.mem src seen then (seen, acc)
          else (src :: seen, (tgt, src) :: acc))
        ([], []) pairs
    in
    return (List.rev pairs))

let mappings_gen =
  QCheck.Gen.(
    let* raw = list_size (1 -- 6) (pair pairs_gen (float_range 0.1 10.)) in
    let raw = List.filter (fun (pairs, _) -> pairs <> []) raw in
    if raw = [] then return []
    else
      let total = List.fold_left (fun t (_, w) -> t +. w) 0. raw in
      return
        (List.mapi
           (fun id (pairs, w) ->
             Urm.Mapping.make ~id ~prob:(w /. total) ~score:w pairs)
           raw))

(* ------------------------------------------------------------------ *)
(* Random target queries over the running-example schemas. *)

let selection_gen =
  QCheck.Gen.oneofl
    [
      (Urm.Query.at "Person" "addr", s "aaa");
      (Urm.Query.at "Person" "addr", s "hk");
      (Urm.Query.at "Person" "phone", s "456");
      (Urm.Query.at "Person" "pname", s "Alice");
      (Urm.Query.at "Person" "nation", s "HK");
    ]

let query_gen =
  QCheck.Gen.(
    let person_sels = list_size (1 -- 3) selection_gen in
    let plain =
      let* sels = person_sels in
      let* project = bool in
      return
        (Urm.Query.make ~name:"rand-plain" ~target:Test_core.target
           ~aliases:[ ("Person", "Person") ]
           ~selections:(List.sort_uniq compare sels)
           ?projection:
             (if project then
                Some [ Urm.Query.at "Person" "phone"; Urm.Query.at "Person" "addr" ]
              else None)
           ())
    in
    let join =
      let* sels = list_size (0 -- 2) selection_gen in
      return
        (Urm.Query.make ~name:"rand-join" ~target:Test_core.target
           ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
           ~selections:(List.sort_uniq compare sels)
           ~joins:[ (Urm.Query.at "Person" "pname", Urm.Query.at "Order" "sname") ]
           ())
    in
    let count =
      let* sels = person_sels in
      let* grouped = bool in
      return
        (Urm.Query.make ~name:"rand-count" ~target:Test_core.target
           ~aliases:[ ("Person", "Person") ]
           ~selections:(List.sort_uniq compare sels)
           ~aggregate:Urm.Query.Count
           ?group_by:
             (if grouped then Some [ Urm.Query.at "Person" "nation" ] else None)
           ())
    in
    let sum =
      let* item = oneofl [ "HK"; "CN" ] in
      return
        (Urm.Query.make ~name:"rand-sum" ~target:Test_core.target
           ~aliases:[ ("Order", "Order") ]
           ~selections:[ (Urm.Query.at "Order" "item", s item) ]
           ~aggregate:(Urm.Query.Sum (Urm.Query.at "Order" "price"))
           ())
    in
    oneof [ plain; join; count; sum ])

let qcheck_running_example =
  QCheck.Test.make
    ~name:"random queries × random mapping sets agree across algorithms and jobs"
    ~count:40
    (QCheck.make QCheck.Gen.(pair query_gen mappings_gen))
    (fun (q, ms) ->
      QCheck.assume (ms <> []);
      let cat = Test_core.catalog () in
      let ctxs =
        both_engines (fun engine ->
            Urm.Ctx.make ~engine ~catalog:cat ~source:Test_core.source
              ~target:Test_core.target ())
      in
      check_agreement ctxs q ms)

(* ------------------------------------------------------------------ *)
(* Random queries over the workload schemas (Excel), with matcher-derived
   mapping distributions from the pipeline. *)

let workload = lazy (Urm_workload.Pipeline.create ~seed:11 ~scale:0.005 ())

let workload_case_gen =
  QCheck.Gen.(
    let* h = 4 -- 12 in
    let* q =
      oneof
        [
          (let* n = 1 -- 4 in
           return (Urm_workload.Sweeps.selections n));
          (let* n = 1 -- 2 in
           return (Urm_workload.Sweeps.self_joins n));
          (* Q1–Q5 are the Excel-targeted queries of Table III. *)
          oneofl
            Urm_workload.Queries.[ q1; q2; q3; q4; q5 ];
        ]
    in
    return (q, h))

let qcheck_workload =
  QCheck.Test.make
    ~name:"workload queries × pipeline mappings agree across algorithms and jobs"
    ~count:10
    (QCheck.make workload_case_gen)
    (fun (q, h) ->
      let p = Lazy.force workload in
      let excel = Urm_workload.Targets.excel in
      let ctxs =
        both_engines (fun engine -> Urm_workload.Pipeline.ctx ~engine p excel)
      in
      let ms = Urm_workload.Pipeline.mappings p excel ~h in
      check_agreement ctxs q ms)

(* ------------------------------------------------------------------ *)
(* Top-k answers are a prefix of the full ranking. *)

let qcheck_topk_prefix =
  QCheck.Test.make ~name:"top-k answers are a prefix of the full ranking"
    ~count:30
    (QCheck.make
       QCheck.Gen.(triple query_gen mappings_gen (1 -- 5)))
    (fun (q, ms, k) ->
      QCheck.assume (ms <> []);
      let ctx = Test_core.ctx () in
      let full =
        (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer
      in
      let r = Urm.Topk.run ~k ctx q ms in
      let got = Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer in
      let truth = Urm.Answer.top_k full k in
      let kth = match List.rev truth with [] -> 0. | (_, p) :: _ -> p in
      List.length got = min k (Urm.Answer.size full)
      && List.for_all
           (fun (t, _) -> Urm.Answer.prob_of full t >= kth -. Urm.Prob.eps)
           got)

(* ------------------------------------------------------------------ *)
(* The factorized-executor dimension: deterministic sweeps that pin the
   cases the random generators visit only occasionally. *)

(* h ∈ {1, 7, 32}: h = 1 is the degenerate single-unit pass (the weight
   vector has one entry and no key ever repeats), 32 exceeds the batch
   of distinct reformulations so units genuinely dedup and replay. *)
let test_factorized_h_sweep () =
  let p = Lazy.force workload in
  let excel = Urm_workload.Targets.excel in
  let ctxs =
    both_engines (fun engine -> Urm_workload.Pipeline.ctx ~engine p excel)
  in
  List.iter
    (fun h ->
      let ms = Urm_workload.Pipeline.mappings p excel ~h in
      List.iter
        (fun q ->
          match disagreement ctxs q ms with
          | None -> ()
          | Some msg -> Alcotest.failf "h=%d: %s" h msg)
        Urm_workload.Queries.[ q1; q4 ])
    [ 1; 7; 32 ]

(* Mappings sharing one correspondence set reformulate to the same e-unit:
   the factorized pass must collapse them into one weight vector (and the
   replay memo must hand repeated keys the recorded cells), still agreeing
   with the interpreted per-mapping oracle. *)
let test_factorized_duplicate_mappings () =
  let mk id prob pairs = Urm.Mapping.make ~id ~prob ~score:prob pairs in
  let office =
    [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.oaddr") ]
  in
  let home =
    [ ("Person.phone", "Customer.hphone"); ("Person.addr", "Customer.haddr") ]
  in
  let ms =
    [
      mk 0 0.3 office; mk 1 0.25 home; mk 2 0.2 office; mk 3 0.15 office;
      mk 4 0.1 home;
    ]
  in
  let cat = Test_core.catalog () in
  let ctxs =
    both_engines (fun engine ->
        Urm.Ctx.make ~engine ~catalog:cat ~source:Test_core.source
          ~target:Test_core.target ())
  in
  List.iter
    (fun q ->
      match disagreement ctxs q ms with
      | None -> ()
      | Some msg -> Alcotest.failf "%s: %s" q.Urm.Query.name msg)
    [
      Urm.Query.make ~name:"dup-sel" ~target:Test_core.target
        ~aliases:[ ("Person", "Person") ]
        ~selections:[ (Urm.Query.at "Person" "addr", s "aaa") ]
        ();
      Urm.Query.make ~name:"dup-count" ~target:Test_core.target
        ~aliases:[ ("Person", "Person") ]
        ~aggregate:Urm.Query.Count ();
    ]

(* The plan engines must actually take the factorized executor (and say
   so in the report), while the interpreted oracle keeps its name. *)
let test_factorized_engine_recorded () =
  let p = Lazy.force workload in
  let excel = Urm_workload.Targets.excel in
  let ms = Urm_workload.Pipeline.mappings p excel ~h:7 in
  let q = Urm_workload.Queries.q1 in
  let check engine alg expect =
    let ctx = Urm_workload.Pipeline.ctx ~engine p excel in
    let r = Urm.Algorithms.run alg ctx q ms in
    Alcotest.(check string)
      (Printf.sprintf "%s engine string" (Urm.Algorithms.name alg))
      expect r.Urm.Report.engine
  in
  List.iter
    (fun alg ->
      check Urm_relalg.Compile.Vectorized alg "vectorized+factorized";
      check Urm_relalg.Compile.Interpreted alg "interpreted")
    [
      Urm.Algorithms.Ebasic; Urm.Algorithms.Emqo; Urm.Algorithms.Qsharing;
      Urm.Algorithms.Osharing Urm.Eunit.Sef;
    ];
  check Urm_relalg.Compile.Vectorized Urm.Algorithms.Basic "vectorized"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_running_example;
    QCheck_alcotest.to_alcotest qcheck_workload;
    QCheck_alcotest.to_alcotest qcheck_topk_prefix;
    Alcotest.test_case "factorized h sweep (1, 7, 32) matches the oracle" `Slow
      test_factorized_h_sweep;
    Alcotest.test_case "duplicate mappings collapse and replay" `Quick
      test_factorized_duplicate_mappings;
    Alcotest.test_case "reports record the effective engine" `Quick
      test_factorized_engine_recorded;
  ]
