(* Compound (set-operator) queries, threshold queries, CSV and JSON. *)
open Urm_relalg

let s v = Value.Str v
let i v = Value.Int v

(* The same fixture as test_core: the paper's running example. *)
let source =
  Schema.make "S"
    [
      ( "Customer",
        [
          ("cid", Schema.TInt); ("cname", Schema.TStr); ("ophone", Schema.TStr);
          ("hphone", Schema.TStr); ("mobile", Schema.TStr); ("oaddr", Schema.TStr);
          ("haddr", Schema.TStr); ("nid", Schema.TInt);
        ] );
    ]

let target =
  Schema.make "T"
    [
      ( "Person",
        [
          ("pname", Schema.TStr); ("phone", Schema.TStr); ("addr", Schema.TStr);
          ("nation", Schema.TStr); ("gender", Schema.TStr);
        ] );
    ]

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "Customer"
    (Relation.create
       ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "mobile"; "oaddr"; "haddr"; "nid" ]
       [
         [| i 1; s "Alice"; s "123"; s "789"; s "555"; s "aaa"; s "hk"; i 1 |];
         [| i 2; s "Bob"; s "456"; s "123"; s "556"; s "bbb"; s "hk"; i 1 |];
         [| i 3; s "Cindy"; s "456"; s "789"; s "557"; s "aaa"; s "aaa"; i 2 |];
       ]);
  cat

let ctx () = Urm.Ctx.make ~catalog:(catalog ()) ~source ~target ()

let mk id prob pairs = Urm.Mapping.make ~id ~prob ~score:prob pairs

let mappings () =
  [
    mk 0 0.3
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr") ];
    mk 1 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.oaddr"); ("Person.gender", "Customer.nid") ];
    mk 2 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr") ];
    mk 3 0.2
      [ ("Person.pname", "Customer.cname"); ("Person.phone", "Customer.hphone");
        ("Person.addr", "Customer.haddr") ];
    mk 4 0.1
      [ ("Person.pname", "Customer.mobile"); ("Person.phone", "Customer.ophone");
        ("Person.addr", "Customer.haddr") ];
  ]

let phone_where_addr addr =
  Urm.Query.make ~name:("q" ^ addr) ~target
    ~aliases:[ ("Person", "Person") ]
    ~selections:[ (Urm.Query.at "Person" "addr", s addr) ]
    ~projection:[ Urm.Query.at "Person" "phone" ]
    ()

(* Reference implementation of compound semantics: evaluate each member per
   mapping via basic and combine per-mapping tuple sets. *)
let compound_reference ctx c ms =
  let members = Urm.Compound.leaves c in
  let acc = Urm.Answer.create (List.hd members |> fun q -> Urm.Reformulate.output_header q) in
  List.iter
    (fun m ->
      let set_of q =
        let a = (Urm.Basic.run ctx q [ Urm.Mapping.with_prob m 1.0 ]).Urm.Report.answer in
        List.filter_map
          (fun (t, p) -> if p > 0.5 then Some t else None)
          (Urm.Answer.to_list a)
      in
      let module SS = Set.Make (struct
        type t = Value.t array

        let compare a b = compare (Array.to_list a) (Array.to_list b)
      end) in
      let rec go = function
        | Urm.Compound.Query q -> SS.of_list (set_of q)
        | Urm.Compound.Union (a, b) -> SS.union (go a) (go b)
        | Urm.Compound.Intersect (a, b) -> SS.inter (go a) (go b)
        | Urm.Compound.Except (a, b) -> SS.diff (go a) (go b)
      in
      let set = go c in
      if SS.is_empty set then Urm.Answer.add_null acc m.Urm.Mapping.prob
      else SS.iter (fun t -> Urm.Answer.add acc t m.Urm.Mapping.prob) set)
    ms;
  acc

let check_compound c =
  let ctx = ctx () in
  let ms = mappings () in
  let fast = (Urm.Compound.run ctx c ms).Urm.Report.answer in
  let slow = compound_reference ctx c ms in
  if not (Urm.Answer.equal ~eps:1e-9 fast slow) then
    Alcotest.failf "compound mismatch:@.fast %a@.ref %a" Urm.Answer.pp fast
      Urm.Answer.pp slow

let test_compound_union () =
  check_compound
    (Urm.Compound.Union
       (Urm.Compound.Query (phone_where_addr "aaa"), Urm.Compound.Query (phone_where_addr "hk")))

let test_compound_intersect () =
  check_compound
    (Urm.Compound.Intersect
       (Urm.Compound.Query (phone_where_addr "aaa"), Urm.Compound.Query (phone_where_addr "hk")))

let test_compound_except () =
  check_compound
    (Urm.Compound.Except
       (Urm.Compound.Query (phone_where_addr "aaa"), Urm.Compound.Query (phone_where_addr "hk")));
  check_compound
    (Urm.Compound.Except
       (Urm.Compound.Query (phone_where_addr "hk"), Urm.Compound.Query (phone_where_addr "aaa")))

let test_compound_nested () =
  check_compound
    (Urm.Compound.Union
       ( Urm.Compound.Except
           (Urm.Compound.Query (phone_where_addr "hk"), Urm.Compound.Query (phone_where_addr "aaa")),
         Urm.Compound.Intersect
           (Urm.Compound.Query (phone_where_addr "aaa"), Urm.Compound.Query (phone_where_addr "bbb"))
       ))

let test_compound_with_aggregates () =
  (* set operations over COUNT answers: values are arity-1 tuples *)
  let count_where addr =
    Urm.Query.make ~name:("c" ^ addr) ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", s addr) ]
      ~aggregate:Urm.Query.Count ()
  in
  check_compound
    (Urm.Compound.Union (Query (count_where "aaa"), Query (count_where "hk")));
  check_compound
    (Urm.Compound.Intersect (Query (count_where "aaa"), Query (count_where "hk")))

let test_compound_single_is_plain () =
  let ctx = ctx () in
  let ms = mappings () in
  let q = phone_where_addr "aaa" in
  let via_compound = (Urm.Compound.run ctx (Urm.Compound.Query q) ms).Urm.Report.answer in
  let direct = (Urm.Basic.run ctx q ms).Urm.Report.answer in
  Alcotest.(check bool) "same" true (Urm.Answer.equal via_compound direct)

let test_compound_arity_mismatch () =
  let q1 = phone_where_addr "aaa" in
  let q2 =
    Urm.Query.make ~name:"two" ~target
      ~aliases:[ ("Person", "Person") ]
      ~projection:[ Urm.Query.at "Person" "phone"; Urm.Query.at "Person" "pname" ]
      ()
  in
  Alcotest.check_raises "arity"
    (Invalid_argument "Compound.validate: two has arity 2, expected 1") (fun () ->
      ignore (Urm.Compound.run (ctx ()) (Urm.Compound.Union (Query q1, Query q2)) (mappings ())))

(* ------------------------------------------------------------------ *)
(* Threshold queries *)

let test_threshold_matches_exact () =
  let ctx = ctx () in
  let ms = mappings () in
  let q = phone_where_addr "aaa" in
  let full = (Urm.Basic.run ctx q ms).Urm.Report.answer in
  List.iter
    (fun tau ->
      let r = Urm.Threshold.run ~tau ctx q ms in
      let got = Urm.Answer.to_list r.Urm.Threshold.report.Urm.Report.answer in
      let expected =
        List.filter (fun (_, p) -> p >= tau -. 1e-9) (Urm.Answer.to_list full)
      in
      Alcotest.(check int)
        (Printf.sprintf "tau=%.2f count" tau)
        (List.length expected) (List.length got);
      List.iter
        (fun (t, lb) ->
          let exact = Urm.Answer.prob_of full t in
          Alcotest.(check bool) "lb ≤ exact" true (lb <= exact +. 1e-9);
          Alcotest.(check bool) "qualifies" true (exact >= tau -. 1e-9))
        got)
    [ 0.1; 0.3; 0.5; 0.8; 1.0 ]

let test_threshold_invalid_tau () =
  Alcotest.check_raises "tau=0"
    (Invalid_argument "Threshold.run: tau must be in (0, 1]") (fun () ->
      ignore (Urm.Threshold.run ~tau:0. (ctx ()) (phone_where_addr "aaa") (mappings ())))

let test_threshold_exact_probs_when_finished () =
  let ctx = ctx () in
  let ms = mappings () in
  let q = phone_where_addr "aaa" in
  let r = Urm.Threshold.run ~tau:0.1 ctx q ms in
  if not r.Urm.Threshold.stopped_early then begin
    let full = (Urm.Basic.run ctx q ms).Urm.Report.answer in
    List.iter
      (fun (t, lb) ->
        Alcotest.(check (float 1e-9)) "exact" (Urm.Answer.prob_of full t) lb)
      (Urm.Answer.to_list r.Urm.Threshold.report.Urm.Report.answer)
  end

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv_roundtrip_untyped () =
  let rel =
    Relation.create ~cols:[ "a"; "b"; "c" ]
      [
        [| i 1; s "plain"; Value.Float 1.5 |];
        [| i 2; s "with,comma"; Value.Null |];
        [| i 3; s "with\"quote"; Value.Float (-0.25) |];
        [| i 4; s "123"; Value.Float 2. |];
        [| i 5; s ""; Value.Null |];
      ]
  in
  let back = Csv.read_string (Csv.write_string rel) in
  Alcotest.(check bool) "roundtrip" true (Relation.equal_contents rel back)

let test_csv_typed () =
  let rel_schema =
    { Schema.rname = "r";
      attrs =
        [
          { Schema.aname = "k"; ty = Schema.TInt };
          { Schema.aname = "name"; ty = Schema.TStr };
          { Schema.aname = "w"; ty = Schema.TFloat };
        ];
    }
  in
  let text = "k,name,w\n1,42,2.5\n2,,0.5\n" in
  let rel = Csv.read_string ~schema:rel_schema text in
  Alcotest.(check bool) "string stays string" true
    (Value.equal (Relation.value rel 0 "name") (s "42"));
  Alcotest.(check bool) "int" true (Value.equal (Relation.value rel 0 "k") (i 1));
  Alcotest.(check bool) "empty is null" true (Value.is_null (Relation.value rel 1 "name"))

(* Regression: a quoted field pending at EOF (no trailing newline) was
   dropped when its unescaped text was empty — [parse_rows]'s final flush
   tested only the buffer, which [""] leaves empty. *)
let test_csv_eof_quoted_field () =
  let one_row text =
    let rel = Csv.read_string text in
    Alcotest.(check int) (Printf.sprintf "%S row count" text) 1
      (Relation.cardinality rel);
    Relation.value rel 0 "c"
  in
  Alcotest.(check bool) "empty quoted string at EOF survives" true
    (Value.equal (one_row "c\n\"\"") (Value.Str ""));
  Alcotest.(check bool) "escaped quote at EOF survives" true
    (Value.equal (one_row "c\n\"a\"\"b\"") (Value.Str "a\"b"))

let test_csv_errors () =
  (match Csv.read_string "a,b\n1\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted");
  match Csv.read_string "a\n\"unterminated\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unterminated quote accepted"

let test_csv_catalog_roundtrip () =
  let dir = Filename.temp_file "urm" "" in
  Sys.remove dir;
  let cat = Urm_tpch.Gen.generate ~seed:3 ~scale:0.005 () in
  Csv.export_catalog dir cat;
  let back = Csv.import_catalog ~schema:Urm_tpch.Gen.schema dir in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " identical") true
        (Relation.equal_contents (Catalog.find cat name) (Catalog.find back name)))
    (Catalog.names cat)

(* ------------------------------------------------------------------ *)
(* JSON + mapping persistence *)

let test_json_roundtrip () =
  let module J = Urm_util.Json in
  let j =
    J.Obj
      [
        ("a", J.Arr [ J.Num 1.; J.Num (-2.5); J.Null; J.Bool true ]);
        ("s", J.Str "quote\" slash\\ newline\n");
        ("nested", J.Obj [ ("x", J.Arr []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (J.parse_exn (J.to_string j) = j)

let test_json_parse_errors () =
  let module J = Urm_util.Json in
  List.iter
    (fun text ->
      match J.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [ "{"; "[1,"; "\"unterminated"; "nul"; "1 2"; "{\"a\" 1}" ]

let test_json_accessors () =
  let module J = Urm_util.Json in
  let j = J.parse_exn {|{"xs":[1,2,3],"name":"n"}|} in
  Alcotest.(check int) "member list" 3
    (List.length (J.to_list (Option.get (J.member "xs" j))));
  Alcotest.(check string) "member str" "n" (J.to_str (Option.get (J.member "name" j)));
  Alcotest.(check bool) "missing member" true (J.member "zzz" j = None)

let test_mapping_io_roundtrip () =
  let ms = mappings () in
  let back = Urm.Mapping_io.of_json (Urm.Mapping_io.to_json ms) in
  Alcotest.(check int) "count" (List.length ms) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "pairs" true (Urm.Mapping.same_correspondences a b);
      Alcotest.(check (float 1e-12)) "prob" a.Urm.Mapping.prob b.Urm.Mapping.prob;
      Alcotest.(check int) "id" a.Urm.Mapping.id b.Urm.Mapping.id)
    ms back

let test_mapping_io_file () =
  let path = Filename.temp_file "urm" ".json" in
  let ms = mappings () in
  Urm.Mapping_io.save path ms;
  let back = Urm.Mapping_io.load path in
  Sys.remove path;
  Alcotest.(check int) "count" (List.length ms) (List.length back)

let test_mapping_io_rejects_garbage () =
  (match Urm.Mapping_io.of_json "[{\"id\":0}]" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing fields accepted");
  match Urm.Mapping_io.of_json "not json" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* ------------------------------------------------------------------ *)
(* Data translation *)

let test_translate_relation () =
  let ctx = ctx () in
  let m = List.hd (mappings ()) in
  (* m0 maps pname←cname, phone←ophone, addr←oaddr *)
  let person = Urm.Translate.relation ctx m "Person" in
  Alcotest.(check (list string)) "target header"
    [ "pname"; "phone"; "addr"; "nation"; "gender" ]
    (Relation.cols person);
  Alcotest.(check int) "three customers" 3 (Relation.cardinality person);
  Alcotest.(check bool) "values translated" true
    (Relation.fold
       (fun acc row -> acc || Value.equal row.(0) (s "Alice"))
       false person);
  (* unmapped attributes are Null *)
  Relation.iter
    (fun row -> Alcotest.(check bool) "nation null" true (Value.is_null row.(3)))
    person

let test_translate_catalog_and_expectation () =
  let ctx = ctx () in
  let ms = mappings () in
  let cat = Urm.Translate.catalog ctx (List.hd ms) in
  Alcotest.(check bool) "Person present" true (Catalog.mem cat "Person");
  let expected = Urm.Translate.expected_cardinalities ctx ms in
  let person_exp = List.assoc "Person" expected in
  (* every mapping yields 3 distinct person rows *)
  Alcotest.(check (float 1e-9)) "expected card" 3.0 person_exp

let test_translate_unmapped_relation_empty () =
  let ctx = ctx () in
  let m = Urm.Mapping.make ~id:9 ~prob:1. ~score:1. [ ("Person.phone", "Customer.ophone") ] in
  (* no Order.* correspondences → would-be empty relation *)
  let person = Urm.Translate.relation ctx m "Person" in
  Alcotest.(check bool) "person non-empty" true (Relation.cardinality person > 0)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo validation + lineage *)

let test_montecarlo_close_to_exact () =
  let ctx = ctx () in
  let ms = mappings () in
  let q = phone_where_addr "aaa" in
  let exact = (Urm.Basic.run ctx q ms).Urm.Report.answer in
  let estimate = Urm.Montecarlo.estimate ~seed:5 ~samples:20000 ctx q ms in
  let dev = Urm.Montecarlo.max_deviation ~exact ~estimate in
  (* max binomial std-dev at p=0.5, n=20000 ≈ 0.0035; allow 5σ *)
  if dev > 0.02 then Alcotest.failf "MC deviation %.4f too large" dev

let test_montecarlo_sampler_distribution () =
  let rng = Urm_util.Prng.create 3 in
  let ms = mappings () in
  let counts = Hashtbl.create 8 in
  let n = 50000 in
  for _ = 1 to n do
    let m = Urm.Montecarlo.sample rng ms in
    Hashtbl.replace counts m.Urm.Mapping.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts m.Urm.Mapping.id))
  done;
  List.iter
    (fun m ->
      let freq =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts m.Urm.Mapping.id))
        /. float_of_int n
      in
      if abs_float (freq -. m.Urm.Mapping.prob) > 0.01 then
        Alcotest.failf "mapping %d sampled at %.3f, prob %.3f" m.Urm.Mapping.id freq
          m.Urm.Mapping.prob)
    ms

let test_lineage () =
  let ctx = ctx () in
  let ms = mappings () in
  let q = phone_where_addr "aaa" in
  let lin = Urm.Lineage.run ctx q ms in
  (* probabilities match basic *)
  let exact = (Urm.Basic.run ctx q ms).Urm.Report.answer in
  List.iter
    (fun e ->
      Alcotest.(check (float 1e-9)) "prob" (Urm.Answer.prob_of exact e.Urm.Lineage.tuple)
        e.Urm.Lineage.prob;
      (* support mass = probability *)
      let mass =
        List.fold_left
          (fun acc id ->
            acc +. (List.find (fun m -> m.Urm.Mapping.id = id) ms).Urm.Mapping.prob)
          0. e.Urm.Lineage.support
      in
      Alcotest.(check (float 1e-9)) "support mass" e.Urm.Lineage.prob mass)
    lin.Urm.Lineage.entries;
  (* the paper's example: 123 is supported exactly by m0 and m1 *)
  Alcotest.(check (list int)) "support of 123" [ 0; 1 ]
    (Urm.Lineage.support_of lin [| s "123" |]);
  Alcotest.(check (list int)) "support of 456" [ 0; 1; 2; 4 ]
    (Urm.Lineage.support_of lin [| s "456" |]);
  Alcotest.(check (list int)) "support of 789" [ 3 ]
    (Urm.Lineage.support_of lin [| s "789" |]);
  Alcotest.(check (list int)) "no support for junk" []
    (Urm.Lineage.support_of lin [| s "zzz" |])

let qcheck_json_roundtrip =
  let module J = Urm_util.Json in
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof
        [
          return J.Null;
          map (fun b -> J.Bool b) bool;
          map (fun i -> J.Num (float_of_int i)) (-1000 -- 1000);
          map (fun s -> J.Str s) (string_size ~gen:printable (0 -- 12));
        ]
    else
      oneof
        [
          gen 0;
          map (fun l -> J.Arr l) (list_size (0 -- 4) (gen (depth - 1)));
          map
            (fun kvs ->
              (* distinct keys so structural equality round-trips *)
              let _, fields =
                List.fold_left
                  (fun (seen, acc) (k, v) ->
                    if List.mem k seen then (seen, acc) else (k :: seen, (k, v) :: acc))
                  ([], []) kvs
              in
              J.Obj (List.rev fields))
            (list_size (0 -- 4)
               (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) (gen (depth - 1))));
        ]
  in
  QCheck.Test.make ~name:"json roundtrip" ~count:200 (QCheck.make (gen 3))
    (fun j -> J.parse_exn (J.to_string j) = j)

let qcheck_csv_roundtrip =
  let open QCheck.Gen in
  let value =
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) (-1000 -- 1000);
        map (fun s -> Value.Str s) (string_size ~gen:printable (0 -- 10));
        map (fun f -> Value.Float (Float.round (f *. 100.) /. 100.)) (float_bound_inclusive 100.);
      ]
  in
  let gen =
    1 -- 4 >>= fun arity ->
    list_size (0 -- 8) (array_size (return arity) value) >|= fun rows ->
    let cols = List.init arity (fun i -> Printf.sprintf "c%d" i) in
    Relation.create ~cols rows
  in
  QCheck.Test.make ~name:"csv roundtrip" ~count:100 (QCheck.make gen) (fun rel ->
      Relation.equal_contents rel (Csv.read_string (Csv.write_string rel)))

let suite =
  [
    Alcotest.test_case "compound union" `Quick test_compound_union;
    Alcotest.test_case "compound intersect" `Quick test_compound_intersect;
    Alcotest.test_case "compound except" `Quick test_compound_except;
    Alcotest.test_case "compound nested" `Quick test_compound_nested;
    Alcotest.test_case "compound with aggregates" `Quick test_compound_with_aggregates;
    Alcotest.test_case "compound single = plain" `Quick test_compound_single_is_plain;
    Alcotest.test_case "compound arity mismatch" `Quick test_compound_arity_mismatch;
    Alcotest.test_case "threshold matches exact" `Quick test_threshold_matches_exact;
    Alcotest.test_case "threshold invalid tau" `Quick test_threshold_invalid_tau;
    Alcotest.test_case "threshold exact when finished" `Quick test_threshold_exact_probs_when_finished;
    Alcotest.test_case "csv roundtrip untyped" `Quick test_csv_roundtrip_untyped;
    Alcotest.test_case "csv typed" `Quick test_csv_typed;
    Alcotest.test_case "csv quoted field at EOF" `Quick test_csv_eof_quoted_field;
    Alcotest.test_case "csv errors" `Quick test_csv_errors;
    Alcotest.test_case "csv catalog roundtrip" `Quick test_csv_catalog_roundtrip;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "mapping io roundtrip" `Quick test_mapping_io_roundtrip;
    Alcotest.test_case "mapping io file" `Quick test_mapping_io_file;
    Alcotest.test_case "mapping io rejects garbage" `Quick test_mapping_io_rejects_garbage;
    Alcotest.test_case "translate relation" `Quick test_translate_relation;
    Alcotest.test_case "translate catalog + expectation" `Quick test_translate_catalog_and_expectation;
    Alcotest.test_case "translate partial mapping" `Quick test_translate_unmapped_relation_empty;
    Alcotest.test_case "monte-carlo close to exact" `Quick test_montecarlo_close_to_exact;
    Alcotest.test_case "monte-carlo sampler" `Quick test_montecarlo_sampler_distribution;
    Alcotest.test_case "lineage" `Quick test_lineage;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_csv_roundtrip;
  ]
