(* lib/par unit tests: the domain pool, the chunker, and the determinism
   regression — the same seed and query evaluated at jobs = 1 (sequential
   paths) and jobs = 8 (pool) must serialise to byte-identical reports. *)

let pool8 = lazy (Urm_par.Pool.create ~jobs:8 ())

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_inline () =
  let p = Urm_par.Pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs" 1 (Urm_par.Pool.jobs p);
  let sum =
    Urm_par.Pool.map_reduce p ~n:100
      ~map:(fun i -> i * i)
      ~init:0
      ~reduce:(fun acc _ v -> acc + v)
  in
  Alcotest.(check int) "sum of squares" 328350 sum;
  Urm_par.Pool.shutdown p;
  Urm_par.Pool.shutdown p (* idempotent *)

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Urm_par.Pool.create ~jobs:0 ()))

let test_pool_ascending_reduce () =
  let p = Lazy.force pool8 in
  (* The reduce must see items in ascending order whatever the domains
     did; collect the indices as seen by the fold. *)
  for _ = 1 to 5 do
    let order =
      Urm_par.Pool.map_reduce p ~n:64
        ~map:(fun i ->
          if i mod 7 = 0 then Domain.cpu_relax ();
          i)
        ~init:[]
        ~reduce:(fun acc i v ->
          Alcotest.(check int) "map result" i v;
          i :: acc)
    in
    Alcotest.(check (list int)) "ascending order" (List.init 64 (fun i -> 63 - i)) order
  done

let test_pool_empty_and_singleton () =
  let p = Lazy.force pool8 in
  Alcotest.(check int) "n = 0" 42
    (Urm_par.Pool.map_reduce p ~n:0 ~map:(fun _ -> assert false) ~init:42
       ~reduce:(fun _ _ _ -> assert false));
  Alcotest.(check int) "n = 1" 7
    (Urm_par.Pool.map_reduce p ~n:1 ~map:(fun i -> i + 7) ~init:0
       ~reduce:(fun acc _ v -> acc + v))

let test_pool_exception () =
  let p = Lazy.force pool8 in
  Alcotest.check_raises "first failure re-raised" (Failure "item 13") (fun () ->
      ignore
        (Urm_par.Pool.map_reduce p ~n:32
           ~map:(fun i -> if i = 13 then failwith "item 13" else i)
           ~init:0
           ~reduce:(fun acc _ v -> acc + v)));
  (* the pool survives a failed round *)
  Alcotest.(check int) "pool survives" 10
    (Urm_par.Pool.map_reduce p ~n:5 ~map:(fun i -> i) ~init:0
       ~reduce:(fun acc _ v -> acc + v))

let test_pool_counters () =
  let m = Urm_obs.Metrics.create () in
  let p = Urm_par.Pool.create ~metrics:m ~jobs:3 () in
  let total = 50 in
  ignore
    (Urm_par.Pool.map_reduce p ~n:total ~map:(fun i -> i) ~init:0
       ~reduce:(fun acc _ v -> acc + v));
  Urm_par.Pool.shutdown p;
  let counter name =
    match Urm_obs.Metrics.find_counter m name with
    | Some c -> c
    | None -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "rounds" 1 (counter "par/rounds");
  let busy =
    counter "par/domain0/busy" + counter "par/domain1/busy"
    + counter "par/domain2/busy"
  in
  Alcotest.(check int) "busy counters account for every item" total busy

(* ------------------------------------------------------------------ *)
(* Chunk *)

let test_chunk_ranges () =
  Alcotest.(check (list (pair int int)))
    "10 into 4"
    [ (0, 2); (2, 5); (5, 7); (7, 10) ]
    (Array.to_list (Urm_par.Chunk.ranges ~chunks:4 10));
  Alcotest.(check (list (pair int int))) "n < chunks" [ (0, 1); (1, 2) ]
    (Array.to_list (Urm_par.Chunk.ranges ~chunks:5 2));
  Alcotest.(check (list (pair int int))) "n = 0" []
    (Array.to_list (Urm_par.Chunk.ranges ~chunks:4 0))

let qcheck_chunk_split =
  QCheck.Test.make ~name:"Chunk.split concat round-trips and balances" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (chunks, l) ->
      let parts = Urm_par.Chunk.split ~chunks l in
      let sizes = Array.to_list (Array.map List.length parts) in
      List.concat (Array.to_list parts) = l
      && List.for_all (fun s -> s > 0) sizes
      && Array.length parts <= chunks
      && (match (sizes, l) with
         | [], [] -> true
         | [], _ :: _ -> false
         | _ :: _, _ ->
           List.fold_left max 0 sizes - List.fold_left min max_int sizes <= 1))

(* ------------------------------------------------------------------ *)
(* Determinism regression: jobs = 1 vs jobs = 8, byte-identical reports.

   [Report.to_json ~volatile:false] drops timings and operator/memo
   counters (which legitimately vary with scheduling) and keeps the
   answer, algorithm identity and work shape; the parallel drivers
   promise those are bit-identical to sequential for any [jobs].  The
   e-MQO case uses a COUNT query: per-chunk planning may legally reorder
   float additions inside a SUM, but counts are exact. *)

let stable_bytes report =
  Urm_util.Json.to_string (Urm.Report.to_json ~volatile:false report)

let determinism_cases () =
  let ctx = Test_core.ctx () in
  let ms = Test_core.fig3_mappings () in
  let q = Test_core.q_paper () in
  let count =
    Urm.Query.make ~name:"count-by-nation" ~target:Test_core.target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", Urm_relalg.Value.Str "aaa") ]
      ~aggregate:Urm.Query.Count
      ~group_by:[ Urm.Query.at "Person" "nation" ]
      ()
  in
  List.concat_map
    (fun (qname, q) ->
      List.map
        (fun alg -> (qname, alg, ctx, q, ms))
        [
          Urm.Algorithms.Basic;
          Urm.Algorithms.Ebasic;
          Urm.Algorithms.Emqo;
          Urm.Algorithms.Qsharing;
          Urm.Algorithms.Osharing Urm.Eunit.Sef;
          Urm.Algorithms.Osharing Urm.Eunit.Snf;
        ])
    [ ("q_paper", q); ("count", count) ]

let test_determinism_jobs8 () =
  List.iter
    (fun (qname, alg, ctx, q, ms) ->
      let seq = Urm.Algorithms.run alg ctx q ms in
      let par = Urm_par.Drivers.run ~pool:(Lazy.force pool8) alg ctx q ms in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s: jobs=8 report bytes" qname (Urm.Algorithms.name alg))
        (stable_bytes seq) (stable_bytes par))
    (determinism_cases ())

(* The workload pipeline exercise of the same contract: Q4 over
   matcher-derived mappings, through the [Experiments.run_alg] entry the
   CLI and bench use. *)
let test_determinism_workload () =
  let cfg = { Urm_workload.Experiments.quick with Urm_workload.Experiments.jobs = 1 } in
  let p = Urm_workload.Pipeline.create ~seed:7 ~scale:0.005 () in
  let target, q = Urm_workload.Queries.default in
  let ctx = Urm_workload.Pipeline.ctx p target in
  let ms = Urm_workload.Pipeline.mappings p target ~h:12 in
  List.iter
    (fun alg ->
      let seq = Urm_workload.Experiments.run_alg cfg alg ctx q ms in
      let par =
        Urm_workload.Experiments.run_alg
          { cfg with Urm_workload.Experiments.jobs = 8 }
          alg ctx q ms
      in
      Alcotest.(check string)
        (Printf.sprintf "Q4/%s: jobs=8 report bytes" (Urm.Algorithms.name alg))
        (stable_bytes seq) (stable_bytes par))
    [ Urm.Algorithms.Basic; Urm.Algorithms.Osharing Urm.Eunit.Sef ]

let suite =
  [
    Alcotest.test_case "pool: jobs=1 runs inline" `Quick test_pool_inline;
    Alcotest.test_case "pool: jobs=0 rejected" `Quick test_pool_invalid_jobs;
    Alcotest.test_case "pool: reduce is ascending" `Quick test_pool_ascending_reduce;
    Alcotest.test_case "pool: n=0 and n=1 edges" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "pool: exceptions propagate" `Quick test_pool_exception;
    Alcotest.test_case "pool: busy counters" `Quick test_pool_counters;
    Alcotest.test_case "chunk: ranges" `Quick test_chunk_ranges;
    QCheck_alcotest.to_alcotest qcheck_chunk_split;
    Alcotest.test_case "determinism: jobs=8 byte-identical reports" `Quick
      test_determinism_jobs8;
    Alcotest.test_case "determinism: workload Q4 via run_alg" `Quick
      test_determinism_workload;
  ]
