open Urm_relalg

let target =
  Schema.make "T"
    [
      ( "Person",
        [ ("pname", Schema.TStr); ("phone", Schema.TStr); ("addr", Schema.TStr) ] );
      ( "Order",
        [ ("item", Schema.TStr); ("price", Schema.TFloat); ("qty", Schema.TInt) ] );
    ]

let parse sql = Urm.Sql.parse ~name:"t" ~target sql

let ok sql =
  match parse sql with
  | Ok q -> q
  | Error e -> Alcotest.failf "unexpected parse error on %S: %a" sql Urm.Sql.pp_error e

let err sql =
  match parse sql with
  | Ok q -> Alcotest.failf "expected error on %S, parsed %s" sql (Urm.Query.to_string q)
  | Error e -> e

let test_select_star () =
  let q = ok "SELECT * FROM Person WHERE addr = 'aaa'" in
  Alcotest.(check int) "one selection" 1 (List.length q.Urm.Query.selections);
  Alcotest.(check bool) "no projection" true (q.Urm.Query.projection = None);
  Alcotest.(check bool) "no aggregate" true (q.Urm.Query.aggregate = None)

let test_projection_and_literals () =
  let q = ok "select phone, pname from Person, Order where addr = 'ab' and qty = 3" in
  (match q.Urm.Query.projection with
  | Some [ a; b ] ->
    Alcotest.(check string) "phone" "Person.phone" (Urm.Query.tattr_to_string a);
    Alcotest.(check string) "pname" "Person.pname" (Urm.Query.tattr_to_string b)
  | _ -> Alcotest.fail "projection shape");
  (* unqualified attributes resolved across both relations in scope *)
  (match q.Urm.Query.selections with
  | [ (a, Value.Str "ab"); (b, Value.Int 3) ] ->
    Alcotest.(check string) "addr in Person" "Person.addr" (Urm.Query.tattr_to_string a);
    Alcotest.(check string) "qty in Order" "Order.qty" (Urm.Query.tattr_to_string b)
  | _ -> Alcotest.fail "selection shape");
  (* an attribute of a relation not in scope is an error *)
  ignore (err "SELECT phone FROM Person WHERE qty = 3")

let test_escaped_quote () =
  let q = ok "SELECT * FROM Person WHERE pname = 'O''Brien'" in
  match q.Urm.Query.selections with
  | [ (_, Value.Str s) ] -> Alcotest.(check string) "escaped" "O'Brien" s
  | _ -> Alcotest.fail "selection shape"

let test_aliases_and_join () =
  let q =
    ok
      "SELECT P1.phone FROM Person AS P1, Person AS P2 WHERE P1.addr = P2.addr AND P1.pname = 'Bob'"
  in
  Alcotest.(check int) "aliases" 2 (List.length q.Urm.Query.aliases);
  Alcotest.(check int) "joins" 1 (List.length q.Urm.Query.joins);
  Alcotest.(check int) "selections" 1 (List.length q.Urm.Query.selections)

let test_implicit_alias () =
  let q = ok "SELECT phone FROM Person P WHERE P.addr = 'x'" in
  Alcotest.(check (list (pair string string))) "alias binding"
    [ ("P", "Person") ] q.Urm.Query.aliases

let test_count_and_sum () =
  let q = ok "SELECT COUNT(*) FROM Person, Order WHERE addr = 'x'" in
  Alcotest.(check bool) "count" true (q.Urm.Query.aggregate = Some Urm.Query.Count);
  let q2 = ok "SELECT SUM(price) FROM Order" in
  (match q2.Urm.Query.aggregate with
  | Some (Urm.Query.Sum ta) ->
    Alcotest.(check string) "sum attr" "Order.price" (Urm.Query.tattr_to_string ta)
  | _ -> Alcotest.fail "sum shape")

let test_numeric_literals () =
  let q = ok "SELECT * FROM Order WHERE qty = 10 AND price = 2.5" in
  match q.Urm.Query.selections with
  | [ (_, Value.Int 10); (_, Value.Float 2.5) ] -> ()
  | _ -> Alcotest.fail "literal types"

let test_unknown_relation () =
  let e = err "SELECT * FROM Nothing" in
  Alcotest.(check bool) "mentions relation" true
    (String.length e.Urm.Sql.message > 0)

let test_unknown_attribute () =
  ignore (err "SELECT * FROM Person WHERE nope = 1")

let test_ambiguous_attribute () =
  (* both Person and Order have no common attr; make one ambiguous via self join *)
  let e = err "SELECT phone FROM Person AS A, Person AS B WHERE phone = 'x'" in
  Alcotest.(check bool) "ambiguity reported" true
    (e.Urm.Sql.message <> "")

let test_syntax_errors () =
  ignore (err "SELECT");
  ignore (err "SELECT * FROM");
  ignore (err "SELECT * FROM Person WHERE");
  ignore (err "SELECT * FROM Person WHERE addr = ");
  ignore (err "SELECT * FROM Person 123");
  ignore (err "SELECT * FROM Person WHERE addr = 'unterminated")

let test_error_position () =
  let e = err "SELECT * FROM Person WHERE @ = 1" in
  Alcotest.(check int) "position of @" 27 e.Urm.Sql.position

let test_group_by () =
  let q = ok "SELECT COUNT(*) FROM Person GROUP BY addr" in
  Alcotest.(check (list string)) "group attrs" [ "Person.addr" ]
    (List.map Urm.Query.tattr_to_string q.Urm.Query.group_by);
  Alcotest.(check bool) "count" true (q.Urm.Query.aggregate = Some Urm.Query.Count);
  let q2 = ok "SELECT SUM(price) FROM Order GROUP BY item, qty" in
  Alcotest.(check int) "two group attrs" 2 (List.length q2.Urm.Query.group_by);
  (* roundtrip *)
  (match Urm.Sql.parse ~name:"t" ~target (Urm.Sql.to_sql q2) with
  | Ok q2' ->
    Alcotest.(check string) "roundtrip" (Urm.Query.to_string q2) (Urm.Query.to_string q2')
  | Error e -> Alcotest.failf "no reparse: %a" Urm.Sql.pp_error e);
  (* group by without aggregate is rejected by validation *)
  ignore (err "SELECT * FROM Person GROUP BY addr");
  ignore (err "SELECT COUNT(*) FROM Person GROUP")

let test_roundtrip_table3 () =
  (* to_sql ∘ parse is the identity on the paper's workload *)
  List.iter
    (fun (name, schema, q) ->
      let sql = Urm.Sql.to_sql q in
      match Urm.Sql.parse ~name ~target:schema sql with
      | Error e -> Alcotest.failf "%s: %s does not re-parse: %a" name sql Urm.Sql.pp_error e
      | Ok q' ->
        Alcotest.(check string) (name ^ " roundtrip") (Urm.Query.to_string q)
          (Urm.Query.to_string q'))
    Urm_workload.Queries.all

let test_parse_exn () =
  Alcotest.(check bool) "parses" true
    (Urm.Sql.parse_exn ~name:"x" ~target "SELECT * FROM Person" |> fun q ->
     q.Urm.Query.name = "x");
  match Urm.Sql.parse_exn ~name:"x" ~target "garbage" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_sql_evaluates () =
  (* the SQL-built query evaluates identically to the hand-built one *)
  let catalog = Catalog.create () in
  Catalog.add catalog "Customer"
    (Relation.create ~cols:[ "cname"; "ophone"; "oaddr" ]
       [
         [| Value.Str "Alice"; Value.Str "123"; Value.Str "aaa" |];
         [| Value.Str "Bob"; Value.Str "456"; Value.Str "bbb" |];
       ]);
  let source =
    Schema.make "S"
      [ ("Customer", [ ("cname", Schema.TStr); ("ophone", Schema.TStr); ("oaddr", Schema.TStr) ]) ]
  in
  let ctx = Urm.Ctx.make ~catalog ~source ~target () in
  let m =
    Urm.Mapping.make ~id:0 ~prob:1. ~score:1.
      [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.oaddr") ]
  in
  let q_sql = Urm.Sql.parse_exn ~name:"q" ~target "SELECT phone FROM Person WHERE addr = 'aaa'" in
  let q_hand =
    Urm.Query.make ~name:"q" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", Value.Str "aaa") ]
      ~projection:[ Urm.Query.at "Person" "phone" ]
      ()
  in
  let a1 = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q_sql [ m ]).Urm.Report.answer in
  let a2 = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q_hand [ m ]).Urm.Report.answer in
  Alcotest.(check bool) "same answers" true (Urm.Answer.equal a1 a2)

let qcheck_roundtrip =
  (* random queries over the fixture schema re-parse to themselves *)
  let open QCheck.Gen in
  let gen =
    let sel =
      oneofl
        [
          (Urm.Query.at "Person" "addr", Value.Str "aaa");
          (Urm.Query.at "Person" "phone", Value.Str "12");
          (Urm.Query.at "Order" "qty", Value.Int 5);
          (Urm.Query.at "Order" "price", Value.Float 1.5);
        ]
    in
    list_size (0 -- 3) sel >>= fun sels ->
    oneofl [ None; Some [ Urm.Query.at "Person" "phone" ] ] >>= fun proj ->
    bool >|= fun two_rels ->
    let aliases =
      if two_rels then [ ("Person", "Person"); ("Order", "Order") ]
      else [ ("Person", "Person") ]
    in
    let sels =
      List.sort_uniq compare
        (List.filter
           (fun (ta, _) -> two_rels || ta.Urm.Query.alias = "Person")
           sels)
    in
    Urm.Query.make ~name:"r" ~target ~aliases ~selections:sels ?projection:proj ()
  in
  QCheck.Test.make ~name:"to_sql/parse roundtrip" ~count:100
    (QCheck.make gen ~print:Urm.Query.to_string)
    (fun q ->
      match Urm.Sql.parse ~name:"r" ~target (Urm.Sql.to_sql q) with
      | Ok q' -> Urm.Query.to_string q = Urm.Query.to_string q'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "select star" `Quick test_select_star;
    Alcotest.test_case "projection + literals" `Quick test_projection_and_literals;
    Alcotest.test_case "escaped quote" `Quick test_escaped_quote;
    Alcotest.test_case "aliases + join" `Quick test_aliases_and_join;
    Alcotest.test_case "implicit alias" `Quick test_implicit_alias;
    Alcotest.test_case "count and sum" `Quick test_count_and_sum;
    Alcotest.test_case "numeric literals" `Quick test_numeric_literals;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute;
    Alcotest.test_case "ambiguous attribute" `Quick test_ambiguous_attribute;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "error position" `Quick test_error_position;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "Table III roundtrip" `Quick test_roundtrip_table3;
    Alcotest.test_case "parse_exn" `Quick test_parse_exn;
    Alcotest.test_case "sql query evaluates" `Quick test_sql_evaluates;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
