(* The compiled-engine differential suite.

   qcheck generators produce random small catalogs (typed columns with
   nulls, duplicates and skew, so join orders and build sides actually
   vary) and random algebra expressions over them (selections, equi- and
   theta-joins, products, projections, distinct, aggregates, group-by).
   The property: [Compile.compile |> Plan.execute] (row stream) and
   [Plan.execute_batches] (columnar batch stream) return exactly the
   same header and row multiset as the tree-walking interpreter, both
   with and without the logical optimiser; dedicated cardinalities
   exercise the 1024-row batch boundaries.

   Deterministic unit tests cover the plan cache's hit/miss/evict
   accounting, cost-based build-side selection, aggregate null/string
   semantics, and the [Urm.Ctx] cross-mapping plan reuse. *)

open Urm_relalg

let i n = Value.Int n
let s v = Value.Str v
let f x = Value.Float x

(* ------------------------------------------------------------------ *)
(* Random catalogs: R(a:int, b:str, c:int), S(c:int, d:float?), T(e:int).
   Join keys draw from a small domain so matches are common. *)

let value_int_gen = QCheck.Gen.(map i (0 -- 4))

let value_str_gen =
  QCheck.Gen.(oneofl [ s "x"; s "y"; s "z"; Value.Null ])

let value_float_gen =
  QCheck.Gen.(
    oneof [ map f (float_range (-2.) 2.); return Value.Null; map i (0 -- 3) ])

let rows_gen ~max_rows cell_gens =
  QCheck.Gen.(
    list_size (0 -- max_rows)
      (map Array.of_list (flatten_l cell_gens)))

let catalog_gen =
  QCheck.Gen.(
    let* r_rows =
      rows_gen ~max_rows:30 [ value_int_gen; value_str_gen; value_int_gen ]
    in
    let* s_rows = rows_gen ~max_rows:12 [ value_int_gen; value_float_gen ] in
    let* t_rows = rows_gen ~max_rows:6 [ value_int_gen ] in
    return
      (let cat = Catalog.create () in
       Catalog.add cat "R" (Relation.create ~cols:[ "a"; "b"; "c" ] r_rows);
       Catalog.add cat "S" (Relation.create ~cols:[ "c"; "d" ] s_rows);
       Catalog.add cat "T" (Relation.create ~cols:[ "e" ] t_rows);
       cat))

(* ------------------------------------------------------------------ *)
(* Random expressions.  Bases are renamed (the algorithms' shape), so
   every column is alias-qualified and the cluster lowering sees the
   general case. *)

let r_ = Algebra.Rename ("r", Algebra.Base "R")
let s_ = Algebra.Rename ("s", Algebra.Base "S")
let t_ = Algebra.Rename ("t", Algebra.Base "T")

let cmp_gen = QCheck.Gen.oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Ge ]

let pred_gen =
  QCheck.Gen.(
    oneof
      [
        (let* c = cmp_gen and* v = value_int_gen in
         return (Pred.Cmp (c, "r#a", v)));
        (let* v = oneofl [ s "x"; s "y" ] in
         return (Pred.Cmp (Pred.Eq, "r#b", v)));
        (let* c = cmp_gen and* v = value_int_gen in
         return (Pred.Cmp (c, "s#c", v)));
        return (Pred.CmpCols (Pred.Eq, "r#c", "s#c"));
        return (Pred.CmpCols (Pred.Ne, "r#a", "s#c"));
      ])

(* A joined body over r and s (sometimes t), with 0–2 extra conjuncts. *)
let body_gen =
  QCheck.Gen.(
    let* extra = list_size (0 -- 2) pred_gen in
    let* shape = 0 -- 3 in
    let conj base = List.fold_left (fun e p -> Algebra.Select (p, e)) base extra in
    match shape with
    | 0 -> return (conj (Algebra.Join (Pred.CmpCols (Pred.Eq, "r#c", "s#c"), r_, s_)))
    | 1 -> return (conj (Algebra.Product (r_, s_)))
    | 2 -> return (conj (Algebra.Product (Algebra.Product (r_, s_), t_)))
    | _ -> return (conj r_))

let expr_gen =
  QCheck.Gen.(
    let* body = body_gen in
    let has_s =
      match body with
      | Algebra.Rename ("r", _) -> false
      | _ -> true
    in
    let proj_cols =
      if has_s then [ "r#b"; "s#c" ] else [ "r#b"; "r#a" ]
    in
    let* shape = 0 -- 5 in
    match shape with
    | 0 -> return body
    | 1 -> return (Algebra.Project (proj_cols, body))
    | 2 -> return (Algebra.Distinct (Algebra.Project (proj_cols, body)))
    | 3 ->
      let* agg =
        oneofl
          [ Algebra.Count; Algebra.Sum "r#a"; Algebra.Min "r#b"; Algebra.Max "r#c" ]
      in
      return (Algebra.Aggregate (agg, body))
    | 4 ->
      let* agg = oneofl [ Algebra.Count; Algebra.Avg "r#a" ] in
      return (Algebra.GroupBy ([ "r#b" ], agg, body))
    | _ -> return (Algebra.Distinct body))

(* ------------------------------------------------------------------ *)
(* The differential property. *)

let rows_of r = Relation.fold (fun acc row -> row :: acc) [] r

let compare_rows a b =
  let n = compare (Array.length a) (Array.length b) in
  if n <> 0 then n
  else
    let rec go k =
      if k = Array.length a then 0
      else
        let c = Value.compare a.(k) b.(k) in
        if c <> 0 then c else go (k + 1)
    in
    go 0

let same_multiset ra rb =
  let sa = List.sort compare_rows (rows_of ra) in
  let sb = List.sort compare_rows (rows_of rb) in
  List.length sa = List.length sb
  && List.for_all2
       (fun a b ->
         Array.length a = Array.length b
         && Array.for_all2 (fun x y -> Value.approx_equal x y) a b)
       sa sb

let outcome run =
  match run () with
  | r -> Ok r
  | exception Not_found -> Error "Not_found"
  | exception Invalid_argument m -> Error ("Invalid_argument " ^ m)

let agree oa ob =
  match (oa, ob) with
  | Ok ra, Ok rb ->
    List.equal String.equal (Relation.cols ra) (Relation.cols rb)
    && same_multiset ra rb
  | Error a, Error b -> String.equal a b
  | _ -> false

let qcheck_compiled_vs_interpreted =
  QCheck.Test.make
    ~name:"compiled plans agree with the interpreter on random catalogs × exprs"
    ~count:200
    (QCheck.make QCheck.Gen.(pair catalog_gen expr_gen))
    (fun (cat, e) ->
      let interp = outcome (fun () -> Eval.eval cat e) in
      let unopt = outcome (fun () -> Eval.eval ~optimize:false cat e) in
      let compiled =
        outcome (fun () ->
            let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
            Plan.execute cat (Compile.compile env e))
      in
      let vectorized =
        outcome (fun () ->
            let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
            Plan.execute_batches cat (Compile.compile env e))
      in
      if not (agree interp unopt) then
        QCheck.Test.fail_reportf "optimised interpreter disagrees on %s"
          (Algebra.to_string e)
      else if not (agree interp compiled) then
        QCheck.Test.fail_reportf "compiled engine disagrees on %s"
          (Algebra.to_string e)
      else if not (agree interp vectorized) then
        QCheck.Test.fail_reportf "vectorized engine disagrees on %s"
          (Algebra.to_string e)
      else true)

(* Indexing off exercises the scan path of compiled index probes. *)
let qcheck_compiled_no_index =
  QCheck.Test.make
    ~name:"compiled plans agree with the interpreter when indexing is disabled"
    ~count:60
    (QCheck.make QCheck.Gen.(pair catalog_gen expr_gen))
    (fun (cat, e) ->
      Catalog.set_indexing cat false;
      let interp = outcome (fun () -> Eval.eval cat e) in
      let compiled =
        outcome (fun () ->
            let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
            Plan.execute cat (Compile.compile env e))
      in
      let vectorized =
        outcome (fun () ->
            let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
            Plan.execute_batches cat (Compile.compile env e))
      in
      agree interp compiled && agree interp vectorized
      || QCheck.Test.fail_reportf "compiled (no index) disagrees on %s"
           (Algebra.to_string e))

(* Batch-boundary cardinalities: the vectorized stream must agree exactly
   where batches split — empty inputs, single rows, and one row either
   side of the 1024-row batch size. *)
let qcheck_batch_boundaries =
  QCheck.Test.make
    ~name:"batch streams agree at batch-size boundaries (0/1/1023/1024/1025)"
    ~count:30
    (QCheck.make
       QCheck.Gen.(pair (oneofl [ 0; 1; 1023; 1024; 1025 ]) (0 -- 2)))
    (fun (n, shape) ->
      let cat = Catalog.create () in
      Catalog.add cat "B"
        (Relation.create ~cols:[ "a"; "b" ]
           (List.init n (fun j ->
                [|
                  i (j mod 5);
                  (if j mod 7 = 0 then Value.Null else f (float_of_int (j mod 3)));
                |])));
      let b_ = Algebra.Rename ("b", Algebra.Base "B") in
      let e =
        match shape with
        | 0 -> Algebra.Select (Pred.Cmp (Pred.Lt, "b#a", i 3), b_)
        | 1 ->
          Algebra.Distinct
            (Algebra.Project
               ([ "b#b" ], Algebra.Select (Pred.Cmp (Pred.Ne, "b#a", i 0), b_)))
        | _ ->
          Algebra.Aggregate
            (Algebra.Count, Algebra.Select (Pred.Cmp (Pred.Ge, "b#b", f 1.), b_))
      in
      let interp = outcome (fun () -> Eval.eval cat e) in
      let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
      let plan = Compile.compile env e in
      let rowwise = outcome (fun () -> Plan.execute cat plan) in
      let batched = outcome (fun () -> Plan.execute_batches cat plan) in
      agree interp rowwise && agree interp batched
      || QCheck.Test.fail_reportf "boundary n=%d disagrees on %s" n
           (Algebra.to_string e))

(* ------------------------------------------------------------------ *)
(* Plan-cache accounting. *)

let fixed_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "R"
    (Relation.create ~cols:[ "a"; "b"; "c" ]
       (List.init 100 (fun k -> [| i (k mod 5); s "x"; i (k mod 3) |])));
  Catalog.add cat "S"
    (Relation.create ~cols:[ "c"; "d" ] [ [| i 0; f 1. |]; [| i 1; f 2. |] ]);
  Catalog.add cat "T" (Relation.create ~cols:[ "e" ] [ [| i 0 |] ]);
  cat

let test_cache_accounting () =
  let cat = fixed_catalog () in
  let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
  let cache =
    Plan_cache.create ~metrics:(Urm_obs.Metrics.create ()) ~capacity:2 ()
  in
  let exprs =
    [
      ("k1", Algebra.Base "R");
      ("k2", Algebra.Base "S");
      ("k3", Algebra.Base "T");
    ]
  in
  let get k = Plan_cache.find_or_add cache k (fun () ->
      Compile.compile env (List.assoc k exprs))
  in
  ignore (get "k1");                            (* miss *)
  ignore (get "k1");                            (* hit *)
  ignore (get "k2");                            (* miss *)
  ignore (get "k3");                            (* miss; evicts k1's LRU peer *)
  let hit, miss, evict = Plan_cache.stats cache in
  Alcotest.(check (triple int int int)) "stats" (1, 3, 1) (hit, miss, evict);
  Alcotest.(check int) "length" 2 (Plan_cache.length cache);
  Alcotest.(check int) "capacity" 2 (Plan_cache.capacity cache);
  (* k2 was touched more recently than k1, so k1 was the eviction victim:
     re-fetching k2 hits, re-fetching k1 misses. *)
  ignore (get "k2");
  ignore (get "k1");
  let hit, miss, _ = Plan_cache.stats cache in
  Alcotest.(check (pair int int)) "lru order" (2, 4) (hit, miss)

let test_cache_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Plan_cache.create: capacity must be positive")
    (fun () ->
      ignore (Plan_cache.create ~metrics:(Urm_obs.Metrics.create ()) ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Cost-based join order and build side: with R at 100 rows and S at 2,
   the greedy order starts from S and the hash join builds on it. *)

let test_build_side () =
  let cat = fixed_catalog () in
  let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
  let e = Algebra.Join (Pred.CmpCols (Pred.Eq, "r#c", "s#c"), r_, s_) in
  let plan = Compile.compile env e in
  let d = Plan.describe plan in
  let idx sub =
    let rec find k =
      if k + String.length sub > String.length d then -1
      else if String.sub d k (String.length sub) = sub then k
      else find (k + 1)
    in
    find 0
  in
  Alcotest.(check bool) "builds on the smaller side" true
    (idx "build=left" >= 0);
  Alcotest.(check bool) "smaller relation drives" true
    (idx "scan(S)" >= 0 && idx "scan(R)" >= 0 && idx "scan(S)" < idx "scan(R)");
  (* The reordered plan still returns the interpreter's header and rows. *)
  let interp = Eval.eval cat e in
  let compiled = Plan.execute cat plan in
  Alcotest.(check (list string)) "header" (Relation.cols interp)
    (Relation.cols compiled);
  Alcotest.(check bool) "rows" true (same_multiset interp compiled)

(* ------------------------------------------------------------------ *)
(* Aggregate semantics: nulls skipped by Avg, absorbed by Sum; strings
   raise; ties keep the first row's value.  Both engines, same answers. *)

let agg_catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "A"
    (Relation.create ~cols:[ "v"; "w" ]
       [
         [| i 1; s "b" |]; [| Value.Null; s "a" |]; [| i 2; Value.Null |];
         [| i 1; s "a" |];
       ]);
  cat

let both_engines cat e =
  let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
  let interp = Eval.eval cat e in
  let compiled = Plan.execute cat (Compile.compile env e) in
  Alcotest.(check bool)
    ("engines agree on " ^ Algebra.to_string e)
    true
    (List.equal String.equal (Relation.cols interp) (Relation.cols compiled)
    && same_multiset interp compiled);
  interp

let test_aggregate_semantics () =
  let cat = agg_catalog () in
  let got e = Relation.fold (fun _ row -> Some row.(0)) None (both_engines cat e) in
  let check name e expect =
    match got e with
    | Some v ->
      Alcotest.(check bool) name true (Value.approx_equal v expect)
    | None -> Alcotest.fail (name ^ ": no row")
  in
  check "count counts nulls" (Algebra.Aggregate (Algebra.Count, Algebra.Base "A")) (i 4);
  check "sum absorbs nulls" (Algebra.Aggregate (Algebra.Sum "v", Algebra.Base "A")) (i 4);
  check "avg skips nulls" (Algebra.Aggregate (Algebra.Avg "v", Algebra.Base "A"))
    (f (4. /. 3.));
  check "min skips nulls" (Algebra.Aggregate (Algebra.Min "v", Algebra.Base "A")) (i 1);
  check "max" (Algebra.Aggregate (Algebra.Max "v", Algebra.Base "A")) (i 2);
  check "min over strings skips nulls"
    (Algebra.Aggregate (Algebra.Min "w", Algebra.Base "A")) (s "a");
  (* Sum over a string column raises identically on both engines. *)
  let e = Algebra.Aggregate (Algebra.Sum "w", Algebra.Base "A") in
  let env = Compile.create_env ~metrics:(Urm_obs.Metrics.create ()) cat in
  let expect = Invalid_argument "Value.add: string operand" in
  Alcotest.check_raises "interpreted sum over strings" expect (fun () ->
      ignore (Eval.eval cat e));
  Alcotest.check_raises "compiled sum over strings" expect (fun () ->
      ignore (Plan.execute cat (Compile.compile env e)))

(* ------------------------------------------------------------------ *)
(* Emptiness probes must leave metrics untouched: [Plan.nonempty] (and the
   derived [check] it runs) previously streamed through the accounting
   wrappers, inflating operator/row/access counters with rows no query
   produced. *)

let test_nonempty_counters () =
  let cat = fixed_catalog () in
  let metrics = Urm_obs.Metrics.create () in
  let env = Compile.create_env ~metrics cat in
  (* Ne lowers to a scan-side filter, the path whose access counter the
     derived check used to bump. *)
  let e = Algebra.Select (Pred.Cmp (Pred.Ne, "r#b", s "nope"), r_) in
  let plan = Compile.compile env e in
  let ctrs = Eval.fresh_counters ~metrics () in
  Alcotest.(check bool) "probe finds rows" true (Plan.nonempty ~ctrs cat plan);
  Alcotest.(check int) "no operators recorded" 0 ctrs.Eval.operators;
  Alcotest.(check int) "no rows recorded" 0 ctrs.Eval.rows_produced;
  Alcotest.(check (option int))
    "no scan accesses recorded" (Some 0)
    (Urm_obs.Metrics.find_counter
       (Urm_obs.Metrics.scope metrics "relalg")
       "select.scan")

(* ------------------------------------------------------------------ *)
(* Ctx-level plan reuse: the same shape evaluated twice compiles once. *)

let test_ctx_reuse () =
  let ctx = Test_core.ctx () in
  let e =
    Algebra.Select (Pred.Cmp (Pred.Eq, "p#cname", s "Alice"),
                    Algebra.Rename ("p", Algebra.Base "Customer"))
  in
  let a = Urm.Ctx.eval ctx e in
  let b = Urm.Ctx.eval ctx e in
  Alcotest.(check bool) "same answer" true (Relation.equal_contents a b);
  let hit, miss, evict = Urm.Ctx.plan_stats ctx in
  Alcotest.(check (triple int int int)) "one compile, one reuse" (1, 1, 0)
    (hit, miss, evict)

(* Canonicalized cache keys: permuted And-conjuncts are one plan-cache
   entry (the hit-rate regression), while anything that affects the
   header or row order — projection column order, product order — must
   stay a distinct key. *)
let test_canonical_fingerprint_cache () =
  let p1 = Pred.Cmp (Pred.Eq, "p#cname", s "Alice")
  and p2 = Pred.Cmp (Pred.Eq, "p#oaddr", s "aaa") in
  let base = Algebra.Rename ("p", Algebra.Base "Customer") in
  let e12 = Algebra.Select (Pred.And (p1, p2), base)
  and e21 = Algebra.Select (Pred.And (p2, p1), base) in
  Alcotest.(check string) "conjunct order does not change the key"
    (Algebra.canonical_fingerprint e12)
    (Algebra.canonical_fingerprint e21);
  Alcotest.(check bool) "raw fingerprints do differ" true
    (not (String.equal (Algebra.fingerprint e12) (Algebra.fingerprint e21)));
  let pr cols = Algebra.Project (cols, base) in
  Alcotest.(check bool) "projection order stays a distinct key" true
    (not
       (String.equal
          (Algebra.canonical_fingerprint (pr [ "p#cname"; "p#oaddr" ]))
          (Algebra.canonical_fingerprint (pr [ "p#oaddr"; "p#cname" ]))));
  Alcotest.(check bool) "product order stays a distinct key" true
    (not
       (String.equal
          (Algebra.canonical_fingerprint (Algebra.Product (r_, s_)))
          (Algebra.canonical_fingerprint (Algebra.Product (s_, r_)))));
  let ctx = Test_core.ctx () in
  let a = Urm.Ctx.eval ctx e12 in
  let b = Urm.Ctx.eval ctx e21 in
  Alcotest.(check bool) "either spelling returns the same rows" true
    (Relation.equal_contents a b);
  let hit, miss, evict = Urm.Ctx.plan_stats ctx in
  Alcotest.(check (triple int int int)) "one compile serves both spellings"
    (1, 1, 0) (hit, miss, evict)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_compiled_vs_interpreted;
    QCheck_alcotest.to_alcotest qcheck_compiled_no_index;
    QCheck_alcotest.to_alcotest qcheck_batch_boundaries;
    Alcotest.test_case "emptiness probes leave counters untouched" `Quick
      test_nonempty_counters;
    Alcotest.test_case "plan cache hit/miss/evict accounting" `Quick
      test_cache_accounting;
    Alcotest.test_case "plan cache rejects non-positive capacity" `Quick
      test_cache_bad_capacity;
    Alcotest.test_case "hash join builds on the estimated-smaller side" `Quick
      test_build_side;
    Alcotest.test_case "aggregate null/string semantics match" `Quick
      test_aggregate_semantics;
    Alcotest.test_case "Ctx reuses one plan across evaluations" `Quick
      test_ctx_reuse;
    Alcotest.test_case "canonical fingerprints share one cache entry" `Quick
      test_canonical_fingerprint_cache;
  ]
