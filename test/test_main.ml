(* First, before Alcotest touches argv: the shard tests spawn worker
   processes by re-executing this binary with URM_SHARD_WORKER set. *)
let () = Urm_shard.Launcher.exec_if_worker ()

let () =
  Alcotest.run "urm"
    [
      ("util", Test_util.suite);
      ("relalg", Test_relalg.suite);
      ("eval", Test_eval.suite);
      ("tpch", Test_tpch.suite);
      ("matcher", Test_matcher.suite);
      ("bipartite", Test_bipartite.suite);
      ("mqo", Test_mqo.suite);
      ("core", Test_core.suite);
      ("sql", Test_sql.suite);
      ("extensions", Test_extensions.suite);
      ("eunit", Test_eunit.suite);
      ("misc", Test_misc.suite);
      ("xmlconv", Test_xmlconv.suite);
      ("workload", Test_workload.suite);
      ("service", Test_service.suite);
      ("par", Test_par.suite);
      ("differential", Test_differential.suite);
      ("plan", Test_plan.suite);
      ("anytime", Test_anytime.suite);
      ("incr", Test_incr.suite);
      ("frame", Test_frame.suite);
      ("shard", Test_shard.suite);
    ]
