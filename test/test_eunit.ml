(* Focused tests of the o-sharing machinery: e-units, u-trace traversal,
   strategies, memoisation, early abort. *)
open Urm_relalg

let source =
  Schema.make "S"
    [
      ( "Customer",
        [
          ("cid", Schema.TInt); ("cname", Schema.TStr); ("ophone", Schema.TStr);
          ("hphone", Schema.TStr); ("oaddr", Schema.TStr); ("haddr", Schema.TStr);
        ] );
      ("C_Order", [ ("oid", Schema.TInt); ("cid", Schema.TInt); ("amount", Schema.TFloat) ]);
    ]

let target =
  Schema.make "T"
    [
      ( "Person",
        [ ("pname", Schema.TStr); ("phone", Schema.TStr); ("addr", Schema.TStr) ] );
      ("Order", [ ("price", Schema.TFloat); ("owner", Schema.TInt) ]);
    ]

let s v = Value.Str v
let i v = Value.Int v
let f v = Value.Float v

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "Customer"
    (Relation.create
       ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "oaddr"; "haddr" ]
       [
         [| i 1; s "Alice"; s "123"; s "789"; s "aaa"; s "hk" |];
         [| i 2; s "Bob"; s "456"; s "123"; s "bbb"; s "hk" |];
         [| i 3; s "Cindy"; s "456"; s "789"; s "aaa"; s "aaa" |];
       ]);
  Catalog.add cat "C_Order"
    (Relation.create ~cols:[ "oid"; "cid"; "amount" ]
       [ [| i 10; i 1; f 5. |]; [| i 11; i 3; f 7. |] ]);
  cat

let ctx () = Urm.Ctx.make ~catalog:(catalog ()) ~source ~target ()
let mk id prob pairs = Urm.Mapping.make ~id ~prob ~score:prob pairs

let mappings () =
  [
    mk 0 0.4
      [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.oaddr");
        ("Order.price", "C_Order.amount"); ("Order.owner", "C_Order.cid") ];
    mk 1 0.35
      [ ("Person.phone", "Customer.ophone"); ("Person.addr", "Customer.haddr");
        ("Order.price", "C_Order.amount"); ("Order.owner", "C_Order.cid") ];
    mk 2 0.25
      [ ("Person.phone", "Customer.hphone"); ("Person.addr", "Customer.haddr");
        ("Order.price", "C_Order.amount") ];
  ]

let q_sel () =
  Urm.Query.make ~name:"sel" ~target
    ~aliases:[ ("Person", "Person") ]
    ~selections:[ (Urm.Query.at "Person" "addr", s "aaa") ]
    ~projection:[ Urm.Query.at "Person" "phone" ]
    ()

let test_init_pending () =
  let u = Urm.Eunit.init (q_sel ()) (mappings ()) in
  Alcotest.(check int) "pieces empty" 0 (List.length u.Urm.Eunit.pieces);
  Alcotest.(check int) "pending = sel + output" 2 (List.length u.Urm.Eunit.pending);
  Alcotest.(check (float 1e-9)) "mass" 1.0 (Urm.Eunit.mass u)

let collect_leaves ?(strategy = Urm.Eunit.Sef) q ms =
  let env = Urm.Eunit.make_env ~strategy (ctx ()) q in
  let leaves = ref [] in
  let finished =
    Urm.Eunit.run_qt env (Urm.Eunit.init q ms) ~emit:(fun l ->
        leaves := l :: !leaves;
        true)
  in
  (env, List.rev !leaves, finished)

let leaf_mass = function
  | Urm.Eunit.Tuples (_, m) -> m
  | Urm.Eunit.Null_answer m -> m

let test_leaves_partition_probability () =
  let _, leaves, finished = collect_leaves (q_sel ()) (mappings ()) in
  Alcotest.(check bool) "finished" true finished;
  let total = List.fold_left (fun acc l -> acc +. leaf_mass l) 0. leaves in
  Alcotest.(check (float 1e-9)) "mass partitioned" 1.0 total

let test_leaves_sorted_by_mass () =
  (* partitions are visited in decreasing mass order at each level; with a
     query whose only partition point is the selection attribute (the
     projection repeats it), leaves map 1:1 onto top-level branches and must
     come out mass-descending *)
  let q =
    Urm.Query.make ~name:"one-level" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "addr", s "aaa") ]
      ~projection:[ Urm.Query.at "Person" "addr" ]
      ()
  in
  let _, leaves, _ = collect_leaves q (mappings ()) in
  let masses = List.map leaf_mass leaves in
  let rec desc = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc masses);
  Alcotest.(check int) "two branches" 2 (List.length masses)

let test_early_abort () =
  let env = Urm.Eunit.make_env ~strategy:Urm.Eunit.Sef (ctx ()) (q_sel ()) in
  let count = ref 0 in
  let finished =
    Urm.Eunit.run_qt env (Urm.Eunit.init (q_sel ()) (mappings ())) ~emit:(fun _ ->
        incr count;
        false)
  in
  Alcotest.(check bool) "aborted" false finished;
  Alcotest.(check int) "exactly one leaf seen" 1 !count

let test_all_strategies_same_answer () =
  let reference = ref None in
  List.iter
    (fun strategy ->
      let _, leaves, _ = collect_leaves ~strategy (q_sel ()) (mappings ()) in
      let acc = Urm.Answer.create [ "Person.phone" ] in
      List.iter
        (fun l ->
          match l with
          | Urm.Eunit.Tuples (ts, m) -> List.iter (fun t -> Urm.Answer.add acc t m) ts
          | Urm.Eunit.Null_answer m -> Urm.Answer.add_null acc m)
        leaves;
      match !reference with
      | None -> reference := Some acc
      | Some r -> Alcotest.(check bool) "same" true (Urm.Answer.equal r acc))
    [ Urm.Eunit.Sef; Urm.Eunit.Snf; Urm.Eunit.Random ]

let test_random_strategy_seed_invariance () =
  (* different seeds may change operator order but never the answer *)
  let answers =
    List.map
      (fun seed ->
        let env = Urm.Eunit.make_env ~seed ~strategy:Urm.Eunit.Random (ctx ()) (q_sel ()) in
        let acc = Urm.Answer.create [ "Person.phone" ] in
        ignore
          (Urm.Eunit.run_qt env (Urm.Eunit.init (q_sel ()) (mappings ())) ~emit:(fun l ->
               (match l with
               | Urm.Eunit.Tuples (ts, m) -> List.iter (fun t -> Urm.Answer.add acc t m) ts
               | Urm.Eunit.Null_answer m -> Urm.Answer.add_null acc m);
               true));
        acc)
      [ 1; 2; 3; 42 ]
  in
  match answers with
  | first :: rest ->
    List.iter (fun a -> Alcotest.(check bool) "seed invariant" true (Urm.Answer.equal first a)) rest
  | [] -> assert false

let test_memo_hits_under_random () =
  (* a two-alias query where branching on Person happens before the Order
     selection: the Order-side operator repeats identically across sibling
     branches and must hit the memo at least once under some ordering *)
  let q =
    Urm.Query.make ~name:"two" ~target
      ~aliases:[ ("Person", "Person"); ("Order", "Order") ]
      ~selections:
        [
          (Urm.Query.at "Person" "addr", s "aaa");
          (Urm.Query.at "Order" "price", f 5.);
        ]
      ~projection:[ Urm.Query.at "Person" "phone" ]
      ()
  in
  let total_hits = ref 0 in
  List.iter
    (fun seed ->
      let env = Urm.Eunit.make_env ~seed ~strategy:Urm.Eunit.Random (ctx ()) q in
      ignore (Urm.Eunit.run_qt env (Urm.Eunit.init q (mappings ())) ~emit:(fun _ -> true));
      total_hits := !total_hits + Urm.Eunit.memo_hits env)
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check bool) "memo hit somewhere" true (!total_hits > 0)

let test_counters_accumulate () =
  let env, _, _ = collect_leaves (q_sel ()) (mappings ()) in
  let c = Urm.Eunit.counters env in
  Alcotest.(check bool) "operators executed" true (c.Eval.operators > 0);
  Alcotest.(check bool) "eunits created" true (Urm.Eunit.eunits_created env >= 1)

let test_unmapped_selection_goes_null () =
  let q =
    Urm.Query.make ~name:"pn" ~target
      ~aliases:[ ("Person", "Person") ]
      ~selections:[ (Urm.Query.at "Person" "pname", s "Zoe") ]
      ()
  in
  (* no mapping covers pname: every leaf is θ *)
  let _, leaves, _ = collect_leaves q (mappings ()) in
  List.iter
    (fun l ->
      match l with
      | Urm.Eunit.Null_answer _ -> ()
      | Urm.Eunit.Tuples _ -> Alcotest.fail "expected θ")
    leaves

let test_tracer () =
  let lines = ref [] in
  let _report, _stats =
    Urm.Osharing.run_with_stats ~tracer:(fun l -> lines := l :: !lines) (ctx ())
      (q_sel ()) (mappings ())
  in
  Alcotest.(check bool) "trace lines produced" true (List.length !lines > 3);
  Alcotest.(check bool) "mentions e-units" true
    (List.exists
       (fun l -> String.length l > 7 && String.sub l 0 7 = "e-unit ")
       !lines);
  (* no tracer → no crash, same answer *)
  let a1, _ = Urm.Osharing.run_with_stats (ctx ()) (q_sel ()) (mappings ()) in
  let a2, _ =
    Urm.Osharing.run_with_stats ~tracer:(fun _ -> ()) (ctx ()) (q_sel ()) (mappings ())
  in
  Alcotest.(check bool) "tracer does not change answers" true
    (Urm.Answer.equal a1.Urm.Report.answer a2.Urm.Report.answer)

let test_strategy_names () =
  Alcotest.(check string) "sef" "SEF" (Urm.Eunit.strategy_name Urm.Eunit.Sef);
  Alcotest.(check string) "snf" "SNF" (Urm.Eunit.strategy_name Urm.Eunit.Snf);
  Alcotest.(check string) "random" "Random" (Urm.Eunit.strategy_name Urm.Eunit.Random)

let suite =
  [
    Alcotest.test_case "init pending" `Quick test_init_pending;
    Alcotest.test_case "leaves partition probability" `Quick test_leaves_partition_probability;
    Alcotest.test_case "leaves sorted by mass" `Quick test_leaves_sorted_by_mass;
    Alcotest.test_case "early abort" `Quick test_early_abort;
    Alcotest.test_case "strategies agree" `Quick test_all_strategies_same_answer;
    Alcotest.test_case "random seed invariance" `Quick test_random_strategy_seed_invariance;
    Alcotest.test_case "memo hits under random" `Quick test_memo_hits_under_random;
    Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
    Alcotest.test_case "unmapped selection → θ" `Quick test_unmapped_selection_goes_null;
    Alcotest.test_case "tracer" `Quick test_tracer;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
  ]
