(* Integration tests over the full pipeline at miniature scale. *)

let pipeline = lazy (Urm_workload.Pipeline.create ~seed:7 ~scale:0.01 ())

let test_target_schema_sizes () =
  let count s = Urm_relalg.Schema.attr_count s in
  Alcotest.(check int) "Excel 48" 48 (count Urm_workload.Targets.excel);
  Alcotest.(check int) "Noris 66" 66 (count Urm_workload.Targets.noris);
  Alcotest.(check int) "Paragon 69" 69 (count Urm_workload.Targets.paragon)

let test_queries_well_formed () =
  Alcotest.(check int) "ten queries" 10 (List.length Urm_workload.Queries.all);
  List.iter
    (fun (name, target, q) ->
      Alcotest.(check string) (name ^ " name") name q.Urm.Query.name;
      (* every query validates against its schema by construction; check the
         operator inventory is non-trivial *)
      Alcotest.(check bool)
        (name ^ " has operators")
        true
        (Urm.Query.operator_count q >= 1);
      ignore target)
    Urm_workload.Queries.all

let test_table3_operator_inventory () =
  let op_count name =
    let _, q = Urm_workload.Queries.by_name name in
    Urm.Query.operator_count q
  in
  Alcotest.(check int) "Q1: three selections" 3 (op_count "Q1");
  Alcotest.(check int) "Q2: two selections + product" 3 (op_count "Q2");
  Alcotest.(check int) "Q3: 2 sel + 2 joins" 4 (op_count "Q3");
  Alcotest.(check int) "Q4: 1 sel + 2 joins + product" 4 (op_count "Q4");
  Alcotest.(check int) "Q5: 4 sel + count" 5 (op_count "Q5");
  Alcotest.(check int) "Q10: 2 sel + product + count" 4 (op_count "Q10")

let test_mappings_pipeline () =
  let p = Lazy.force pipeline in
  let ms = Urm_workload.Pipeline.mappings p Urm_workload.Targets.excel ~h:15 in
  Alcotest.(check int) "h mappings" 15 (List.length ms);
  Alcotest.(check (float 1e-9)) "normalised" 1. (Urm.Mapping.total_prob ms);
  Alcotest.(check bool) "substantial top mapping" true
    (Urm.Mapping.size (List.hd ms) >= 20);
  Alcotest.(check bool) "high overlap" true (Urm.Overlap.o_ratio ms >= 0.5)

let test_mapping_cache_prefix () =
  let p = Lazy.force pipeline in
  let big = Urm_workload.Pipeline.mappings p Urm_workload.Targets.noris ~h:12 in
  let small = Urm_workload.Pipeline.mappings p Urm_workload.Targets.noris ~h:5 in
  Alcotest.(check int) "prefix length" 5 (List.length small);
  (* same correspondence sets as the first five of the larger request *)
  List.iteri
    (fun idx m ->
      if idx < 5 then
        Alcotest.(check bool)
          (Printf.sprintf "mapping %d same" idx)
          true
          (Urm.Mapping.same_correspondences m (List.nth small idx)))
    big;
  Alcotest.(check (float 1e-9)) "renormalised" 1. (Urm.Mapping.total_prob small)

let test_every_query_runs_and_agrees () =
  let p = Lazy.force pipeline in
  List.iter
    (fun (name, target, q) ->
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h:10 in
      let basic = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      List.iter
        (fun alg ->
          let r = (Urm.Algorithms.run alg ctx q ms).Urm.Report.answer in
          if not (Urm.Answer.equal ~eps:1e-6 basic r) then
            Alcotest.failf "%s disagrees on %s" (Urm.Algorithms.name alg) name)
        [
          Urm.Algorithms.Ebasic; Urm.Algorithms.Emqo; Urm.Algorithms.Qsharing;
          Urm.Algorithms.Osharing Urm.Eunit.Random;
          Urm.Algorithms.Osharing Urm.Eunit.Snf;
          Urm.Algorithms.Osharing Urm.Eunit.Sef;
        ])
    Urm_workload.Queries.all

let test_topk_sound_on_workload () =
  let p = Lazy.force pipeline in
  List.iter
    (fun qname ->
      let target, q = Urm_workload.Queries.by_name qname in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h:10 in
      let full =
        (Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx q ms)
          .Urm.Report.answer
      in
      List.iter
        (fun k ->
          let r = Urm.Topk.run ~k ctx q ms in
          let truth = Urm.Answer.top_k full k in
          let kth = match List.rev truth with [] -> 0. | (_, pr) :: _ -> pr in
          List.iter
            (fun (t, _) ->
              if Urm.Answer.prob_of full t < kth -. 1e-9 then
                Alcotest.failf "%s k=%d returned non-top tuple" qname k)
            (Urm.Answer.to_list r.Urm.Topk.report.Urm.Report.answer))
        [ 1; 3 ])
    [ "Q1"; "Q4"; "Q7"; "Q10" ]

let test_sweep_queries () =
  List.iter
    (fun n ->
      let q = Urm_workload.Sweeps.selections n in
      Alcotest.(check int) "selection count" n (List.length q.Urm.Query.selections))
    [ 1; 2; 3; 4; 5 ];
  List.iter
    (fun n ->
      let q = Urm_workload.Sweeps.self_joins n in
      Alcotest.(check int) "join count" n (List.length q.Urm.Query.joins);
      Alcotest.(check int) "alias count" (n + 1) (List.length q.Urm.Query.aliases))
    [ 1; 2; 3 ];
  Alcotest.check_raises "selections out of range"
    (Invalid_argument "Sweeps.selections: n out of range") (fun () ->
      ignore (Urm_workload.Sweeps.selections 6))

let test_experiments_quick () =
  (* every experiment produces a well-formed table at the quick config *)
  let cfg = Urm_workload.Experiments.quick in
  List.iter
    (fun (id, f) ->
      let table = f cfg in
      Alcotest.(check string) (id ^ " id") id table.Urm_workload.Experiments.Table.id;
      Alcotest.(check bool) (id ^ " has rows") true
        (table.Urm_workload.Experiments.Table.rows <> []);
      List.iter
        (fun row ->
          Alcotest.(check int)
            (id ^ " row width")
            (List.length table.Urm_workload.Experiments.Table.headers)
            (List.length row))
        table.Urm_workload.Experiments.Table.rows)
    (* exclude the slowest sweeps from unit tests; they run in the bench *)
    (List.filter
       (fun (id, _) -> not (List.mem id [ "fig10c"; "fig11c"; "abl-ptree" ]))
       Urm_workload.Experiments.all)

let test_hero_rows_make_queries_satisfiable () =
  let p = Lazy.force pipeline in
  (* Q1/Q6/Q7 conjunctive selections have a witness thanks to hero rows *)
  List.iter
    (fun qname ->
      let target, q = Urm_workload.Queries.by_name qname in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h:10 in
      let a = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      Alcotest.(check bool) (qname ^ " non-θ") true (Urm.Answer.size a > 0))
    [ "Q1"; "Q6"; "Q7" ]

let test_montecarlo_validates_workload () =
  let p = Lazy.force pipeline in
  List.iter
    (fun qname ->
      let target, q = Urm_workload.Queries.by_name qname in
      let ctx = Urm_workload.Pipeline.ctx p target in
      let ms = Urm_workload.Pipeline.mappings p target ~h:10 in
      let exact = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      let estimate = Urm.Montecarlo.estimate ~seed:9 ~samples:20000 ctx q ms in
      let dev = Urm.Montecarlo.max_deviation ~exact ~estimate in
      if dev > 0.02 then
        Alcotest.failf "%s: Monte-Carlo deviates by %.4f from the exact answer" qname dev)
    [ "Q1"; "Q5"; "Q7"; "Q10" ]

(* Random query generator over the Excel target schema: selections from a
   pool of plausible predicates, optional join, optional aggregate with
   optional grouping.  All algorithms must agree with basic on all of them
   — the strongest end-to-end invariant the library has. *)
let qcheck_random_workload_queries_agree =
  let open QCheck.Gen in
  let at = Urm.Query.at in
  let v_str s = Urm_relalg.Value.Str s in
  let v_int i = Urm_relalg.Value.Int i in
  let sel_pool =
    [
      (at "PO" "telephone", v_str Urm_tpch.Gen.phone_hot);
      (at "PO" "priority", v_int 2);
      (at "PO" "invoiceTo", v_str Urm_tpch.Gen.person_hot);
      (at "PO" "deliverToStreet", v_str Urm_tpch.Gen.street_hot);
      (at "PO" "company", v_str Urm_tpch.Gen.company_hot);
      (at "Item" "quantity", v_int 10);
      (at "Item" "itemNum", v_str Urm_tpch.Gen.part_hot);
    ]
  in
  let gen =
    list_size (0 -- 3) (oneofl sel_pool) >>= fun sels ->
    bool >>= fun join ->
    oneofl
      [ `None; `Count; `Sum; `CountByPriority; `Proj ]
    >|= fun shape ->
    let sels = List.sort_uniq compare sels in
    let aliases = [ ("PO", "PO"); ("Item", "Item") ] in
    let joins = if join then [ (at "PO" "orderNum", at "Item" "orderNum") ] else [] in
    let make = Urm.Query.make ~name:"rand" ~target:Urm_workload.Targets.excel ~aliases ~selections:sels ~joins in
    match shape with
    | `None -> make ()
    | `Count -> make ~aggregate:Urm.Query.Count ()
    | `Sum -> make ~aggregate:(Urm.Query.Sum (at "Item" "unitPrice")) ()
    | `CountByPriority ->
      make ~aggregate:Urm.Query.Count ~group_by:[ at "PO" "priority" ] ()
    | `Proj -> make ~projection:[ at "PO" "telephone"; at "Item" "itemNum" ] ()
  in
  QCheck.Test.make ~name:"random workload queries agree across algorithms" ~count:25
    (QCheck.make gen ~print:Urm.Query.to_string)
    (fun q ->
      let p = Lazy.force pipeline in
      let ctx = Urm_workload.Pipeline.ctx p Urm_workload.Targets.excel in
      let ms = Urm_workload.Pipeline.mappings p Urm_workload.Targets.excel ~h:8 in
      let baseline = (Urm.Algorithms.run Urm.Algorithms.Basic ctx q ms).Urm.Report.answer in
      List.for_all
        (fun alg ->
          Urm.Answer.equal ~eps:1e-6 baseline
            (Urm.Algorithms.run alg ctx q ms).Urm.Report.answer)
        [
          Urm.Algorithms.Ebasic; Urm.Algorithms.Emqo; Urm.Algorithms.Qsharing;
          Urm.Algorithms.Osharing Urm.Eunit.Random;
          Urm.Algorithms.Osharing Urm.Eunit.Snf;
          Urm.Algorithms.Osharing Urm.Eunit.Sef;
        ])

let test_osharing_metrics_agree () =
  (* The metrics registry and Osharing's stats record are two views over
     the same counters: they must agree exactly on a fixed-seed run, and
     the per-kind operator counters must sum to the total. *)
  let p = Lazy.force pipeline in
  let target, q = Urm_workload.Queries.by_name "Q4" in
  let ctx = Urm_workload.Pipeline.ctx p target in
  let ms = Urm_workload.Pipeline.mappings p target ~h:10 in
  let reg = Urm_obs.Metrics.create () in
  let report, stats =
    Urm.Osharing.run_with_stats ~seed:7 ~metrics:reg ctx q ms
  in
  let counter name =
    match Urm_obs.Metrics.find_counter reg ("o-sharing/" ^ name) with
    | Some v -> v
    | None -> Alcotest.failf "counter o-sharing/%s not registered" name
  in
  Alcotest.(check int) "eunits" stats.Urm.Osharing.eunits
    (counter "eunit/executions");
  Alcotest.(check int) "memo hits" stats.Urm.Osharing.memo_hits
    (counter "eunit/memo_hits");
  Alcotest.(check int) "representatives" stats.Urm.Osharing.representatives
    (counter "eunit/representatives");
  Alcotest.(check int) "operators" report.Urm.Report.source_operators
    (counter "relalg/operators");
  Alcotest.(check int) "rows" report.Urm.Report.rows_produced
    (counter "relalg/rows_produced");
  Alcotest.(check bool) "e-units executed" true (counter "eunit/executions" > 0);
  let kinds =
    [ "op.select"; "op.project"; "op.distinct"; "op.product"; "op.join";
      "op.aggregate"; "op.groupby" ]
  in
  Alcotest.(check int) "per-kind counters sum to total"
    (counter "relalg/operators")
    (List.fold_left (fun acc k -> acc + counter ("relalg/" ^ k)) 0 kinds);
  (* Memo hits depend on operator ordering; the Random strategy across a few
     seeds exercises them.  Whatever the count, the stats record and the
     registry must agree. *)
  List.iter
    (fun seed ->
      let reg = Urm_obs.Metrics.create () in
      let _, stats =
        Urm.Osharing.run_with_stats ~strategy:Urm.Eunit.Random ~seed
          ~metrics:reg ctx q ms
      in
      let hits =
        Option.value ~default:0
          (Urm_obs.Metrics.find_counter reg "o-sharing/eunit/memo_hits")
      in
      Alcotest.(check int)
        (Printf.sprintf "memo hits agree (seed %d)" seed)
        stats.Urm.Osharing.memo_hits hits)
    [ 1; 2; 3; 4; 5; 6 ]

let suite =
  [
    Alcotest.test_case "target schema sizes" `Quick test_target_schema_sizes;
    Alcotest.test_case "queries well-formed" `Quick test_queries_well_formed;
    Alcotest.test_case "Table III operator inventory" `Quick test_table3_operator_inventory;
    Alcotest.test_case "mapping pipeline" `Quick test_mappings_pipeline;
    Alcotest.test_case "mapping cache prefix" `Quick test_mapping_cache_prefix;
    Alcotest.test_case "all queries agree (integration)" `Slow test_every_query_runs_and_agrees;
    Alcotest.test_case "top-k sound (integration)" `Slow test_topk_sound_on_workload;
    Alcotest.test_case "sweep queries" `Quick test_sweep_queries;
    Alcotest.test_case "experiments quick config" `Slow test_experiments_quick;
    Alcotest.test_case "hero rows" `Quick test_hero_rows_make_queries_satisfiable;
    Alcotest.test_case "monte-carlo validates workload" `Slow test_montecarlo_validates_workload;
    Alcotest.test_case "o-sharing stats match metrics registry" `Quick
      test_osharing_metrics_agree;
    QCheck_alcotest.to_alcotest qcheck_random_workload_queries_agree;
  ]
