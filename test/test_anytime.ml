(* lib/anytime: the alias sampler, Wilson intervals, the budgeted
   Monte-Carlo estimator and its anytime top-k / threshold variants,
   differentially against the exact Basic algorithm on the running-example
   fixture, plus the synthetic huge-h mapping generator.

   Every sampled run here is deterministic from its seed, so the
   statistical assertions (coverage, convergence) are reproducible — a
   failure is a real regression, not sampling noise. *)

let seed = 2012

(* ------------------------------------------------------------------ *)
(* Alias table *)

let test_alias_frequencies () =
  let weights = [| 0.1; 0.2; 0.3; 0.4 |] in
  let table = Urm_util.Alias.create weights in
  let rng = Urm_util.Prng.create seed in
  let n = 100_000 in
  let counts = Array.make (Array.length weights) 0 in
  for _ = 1 to n do
    let i = Urm_util.Alias.draw table rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i w ->
      let freq = float_of_int counts.(i) /. float_of_int n in
      if abs_float (freq -. w) > 0.01 then
        Alcotest.failf "alias index %d: frequency %.4f, weight %.4f" i freq w)
    weights

let test_alias_unnormalised () =
  (* Weights needn't sum to 1 — the table normalises internally. *)
  let table = Urm_util.Alias.create [| 3.; 1. |] in
  let rng = Urm_util.Prng.create seed in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Urm_util.Alias.draw table rng = 0 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "3:1 split" true (abs_float (freq -. 0.75) < 0.01)

let test_alias_invalid () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (raises (fun () -> Urm_util.Alias.create [||]));
  Alcotest.(check bool) "zero mass" true
    (raises (fun () -> Urm_util.Alias.create [| 0.; 0. |]));
  Alcotest.(check bool) "negative" true
    (raises (fun () -> Urm_util.Alias.create [| 0.5; -0.1 |]))

let test_montecarlo_sampler_matches_alias () =
  (* Montecarlo.sampler is the alias table applied to mappings: drawing
     from both with the same PRNG state must pick the same mappings. *)
  let ms = Test_extensions.mappings () in
  let draw = Urm.Montecarlo.sampler ms in
  let table =
    Urm_util.Alias.create
      (Array.of_list (List.map (fun m -> m.Urm.Mapping.prob) ms))
  in
  let arr = Array.of_list ms in
  let r1 = Urm_util.Prng.create seed and r2 = Urm_util.Prng.create seed in
  for _ = 1 to 1000 do
    let a = draw r1 and b = arr.(Urm_util.Alias.draw table r2) in
    Alcotest.(check int) "same mapping" b.Urm.Mapping.id a.Urm.Mapping.id
  done

(* ------------------------------------------------------------------ *)
(* Normal quantile and Wilson intervals *)

let test_normal_quantile () =
  let check p expected =
    let z = Urm_util.Stats.normal_quantile p in
    if abs_float (z -. expected) > 2e-3 then
      Alcotest.failf "quantile %.4f: got %.5f, expected %.5f" p z expected
  in
  check 0.975 1.95996;
  check 0.995 2.57583;
  check 0.5 0.;
  check 0.025 (-1.95996);
  (* z_of_delta is the two-sided critical value *)
  let z = Urm_anytime.Estimator.z_of_delta 0.05 in
  Alcotest.(check bool) "z(0.05) ~ 1.96" true (abs_float (z -. 1.95996) < 2e-3)

let test_wilson_interval () =
  let z = 1.95996 in
  let lo, hi = Urm_util.Stats.wilson_interval ~positives:50 ~n:100 ~z in
  Alcotest.(check bool) "centred near 0.5" true
    (abs_float (lo -. 0.404) < 0.005 && abs_float (hi -. 0.596) < 0.005);
  let lo, hi = Urm_util.Stats.wilson_interval ~positives:0 ~n:100 ~z in
  Alcotest.(check bool) "zero successes starts at 0" true (lo <= 1e-12 && hi > 0.);
  let lo, hi = Urm_util.Stats.wilson_interval ~positives:100 ~n:100 ~z in
  Alcotest.(check bool) "all successes ends at 1" true (hi >= 1. -. 1e-12 && lo < 1.);
  let w n =
    let lo, hi = Urm_util.Stats.wilson_interval ~positives:(n / 2) ~n ~z in
    hi -. lo
  in
  Alcotest.(check bool) "width shrinks with n" true (w 10_000 < w 100 && w 100 < w 10)

(* ------------------------------------------------------------------ *)
(* Report interval JSON round-trip *)

let tuple vs = Array.of_list (List.map (fun v -> Urm_relalg.Value.Str v) vs)

let make_report intervals =
  let answer = Urm.Answer.create [ "Person.phone" ] in
  List.iter (fun (t, _) -> Urm.Answer.add answer t 0.5) intervals;
  Urm.Report.make ~intervals ~answer
    ~timings:{ Urm.Report.rewrite = 0.; plan = 0.; evaluate = 0.; aggregate = 0. }
    ~source_operators:0 ~rows_produced:0 ~groups:0 ()

let test_interval_roundtrip () =
  let intervals =
    [ (tuple [ "123" ], (0.1, 0.9)); (tuple [ "456" ], (0.25, 0.75)) ]
  in
  let r = make_report intervals in
  let json =
    Urm_util.Json.parse_exn (Urm_util.Json.to_string (Urm.Report.to_json r))
  in
  match Urm.Report.intervals_of_json json with
  | None -> Alcotest.fail "intervals lost in round-trip"
  | Some back ->
    Alcotest.(check int) "count" 2 (List.length back);
    List.iter
      (fun (t, (lo, hi)) ->
        match
          List.find_opt (fun (t', _) -> compare t' t = 0) back
        with
        | None -> Alcotest.fail "tuple lost in round-trip"
        | Some (_, (lo', hi')) ->
          Alcotest.(check (float 1e-12)) "lo" lo lo';
          Alcotest.(check (float 1e-12)) "hi" hi hi')
      intervals

let test_interval_absent_when_none () =
  (* Reports without intervals must render exactly as before the field
     existed (the exact engines' determinism contract), and parse back to
     [None]. *)
  let answer = Urm.Answer.create [ "Person.phone" ] in
  let r =
    Urm.Report.make ~answer
      ~timings:{ Urm.Report.rewrite = 0.; plan = 0.; evaluate = 0.; aggregate = 0. }
      ~source_operators:0 ~rows_produced:0 ~groups:0 ()
  in
  let json = Urm.Report.to_json r in
  Alcotest.(check bool) "no intervals member" true
    (Urm_util.Json.member "intervals" json = None);
  Alcotest.(check bool) "parses to None" true
    (Urm.Report.intervals_of_json json = None)

(* ------------------------------------------------------------------ *)
(* Estimator vs the exact Basic algorithm on the fixture *)

let fixture () =
  (Test_extensions.ctx (), Test_extensions.mappings ())

let exact_answer ctx q ms = (Urm.Basic.run ctx q ms).Urm.Report.answer

let test_estimator_covers_exact () =
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let exact = exact_answer ctx q ms in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 20_000;
      delta = 0.001;
      epsilon = 0.;
    }
  in
  let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
  Alcotest.(check int) "spent the whole budget" 20_000
    r.Urm_anytime.Estimator.samples;
  let intervals =
    Option.get r.Urm_anytime.Estimator.report.Urm.Report.intervals
  in
  Alcotest.(check int) "all exact tuples observed"
    (Urm.Answer.size exact) (List.length intervals);
  List.iter
    (fun (t, (lo, hi)) ->
      let p = Urm.Answer.prob_of exact t in
      if not (lo <= p && p <= hi) then
        Alcotest.failf "exact %.4f outside [%.4f, %.4f]" p lo hi;
      let est =
        Urm.Answer.prob_of r.Urm_anytime.Estimator.report.Urm.Report.answer t
      in
      if abs_float (est -. p) > 0.02 then
        Alcotest.failf "estimate %.4f too far from exact %.4f" est p)
    intervals;
  let nlo, nhi = r.Urm_anytime.Estimator.null_interval in
  let np = Urm.Answer.null_prob exact in
  Alcotest.(check bool) "null prob covered" true (nlo <= np && np <= nhi)

let test_estimator_width_convergence () =
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 1_000_000;
      delta = 0.05;
      epsilon = 0.05;
    }
  in
  let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
  Alcotest.(check bool) "converged" true
    (r.Urm_anytime.Estimator.stop_reason = Urm_anytime.Budget.Converged);
  List.iter
    (fun (_, (lo, hi)) ->
      Alcotest.(check bool) "width within 2eps" true (hi -. lo <= 0.1 +. 1e-9))
    (Option.get r.Urm_anytime.Estimator.report.Urm.Report.intervals)

let test_estimator_deterministic () =
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 5_000;
    }
  in
  let render () =
    let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
    Urm_util.Json.to_string
      (Urm.Report.to_json ~volatile:false r.Urm_anytime.Estimator.report)
  in
  Alcotest.(check string) "same seed, same report" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Anytime top-k and threshold vs exact *)

(* Exact probabilities on q = phone_where_addr "aaa":
   "456" -> 0.8, "123" -> 0.5, "789" -> 0.2. *)

let test_topk_matches_exact () =
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let exact = exact_answer ctx q ms in
  let k = 2 in
  let exact_top =
    List.map fst (Urm.Answer.top_k exact k)
    |> List.map (fun t -> Array.map Urm_relalg.Value.to_string t |> Array.to_list)
    |> List.sort compare
  in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 500_000;
      delta = 0.001;  (* δ → 0: the separation test must hold at 99.9% *)
    }
  in
  let r = Urm_anytime.Topk.run ~seed ~budget ~k ctx q ms in
  Alcotest.(check bool) "stopped early (converged)" true
    r.Urm_anytime.Topk.stopped_early;
  let got =
    List.map fst (Urm.Answer.to_list r.Urm_anytime.Topk.report.Urm.Report.answer)
    |> List.map (fun t -> Array.map Urm_relalg.Value.to_string t |> Array.to_list)
    |> List.sort compare
  in
  Alcotest.(check (list (list string))) "top-k sets agree" exact_top got

let test_threshold_matches_exact () =
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let exact = exact_answer ctx q ms in
  let tau = 0.4 in
  let exact_in =
    List.filter_map
      (fun (t, p) ->
        if p >= tau then
          Some (Array.map Urm_relalg.Value.to_string t |> Array.to_list)
        else None)
      (Urm.Answer.to_list exact)
    |> List.sort compare
  in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 500_000;
      delta = 0.001;
    }
  in
  let r = Urm_anytime.Threshold.run ~seed ~budget ~tau ctx q ms in
  Alcotest.(check bool) "stopped early (converged)" true
    r.Urm_anytime.Threshold.stopped_early;
  Alcotest.(check int) "nothing undecided" 0 r.Urm_anytime.Threshold.undecided;
  let got =
    List.map fst
      (Urm.Answer.to_list r.Urm_anytime.Threshold.report.Urm.Report.answer)
    |> List.map (fun t -> Array.map Urm_relalg.Value.to_string t |> Array.to_list)
    |> List.sort compare
  in
  Alcotest.(check (list (list string))) "threshold sets agree" exact_in got

let test_early_stop_agrees_with_full_run () =
  (* A budget-starved threshold run may leave tuples undecided, but every
     tuple it does decide "in" must also be in the converged run's answer
     (same seed ⇒ the short run's draws are a prefix of the long run's). *)
  let ctx, ms = fixture () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let tau = 0.4 in
  let run cap =
    Urm_anytime.Threshold.run ~seed
      ~budget:
        {
          Urm_anytime.Budget.default with
          Urm_anytime.Budget.max_samples = Some cap;
          delta = 0.001;
        }
      ~tau ctx q ms
  in
  let short = run 96 and long = run 500_000 in
  Alcotest.(check bool) "short run exhausted its budget" true
    (short.Urm_anytime.Threshold.stop_reason
    = Urm_anytime.Budget.Samples_exhausted);
  Alcotest.(check bool) "long run converged" true
    long.Urm_anytime.Threshold.stopped_early;
  let long_answer = long.Urm_anytime.Threshold.report.Urm.Report.answer in
  List.iter
    (fun (t, _) ->
      Alcotest.(check bool) "decided tuple also in converged answer" true
        (Urm.Answer.prob_of long_answer t > 0.))
    (Urm.Answer.to_list short.Urm_anytime.Threshold.report.Urm.Report.answer)

(* ------------------------------------------------------------------ *)
(* qcheck: interval coverage on random mapping distributions *)

(* Same Person selection as the fixture query, but over Test_core's target
   schema — Test_differential's generated mappings reference Test_core's
   catalog (Nation, C_Order), so the exact baseline must run there too. *)
let core_query addr =
  Urm.Query.make ~name:("q" ^ addr) ~target:Test_core.target
    ~aliases:[ ("Person", "Person") ]
    ~selections:[ (Urm.Query.at "Person" "addr", Urm_relalg.Value.Str addr) ]
    ~projection:[ Urm.Query.at "Person" "phone" ]
    ()

let qcheck_coverage =
  QCheck.Test.make ~count:15 ~name:"estimator intervals cover exact basic"
    (QCheck.make
       QCheck.Gen.(
         pair Test_differential.mappings_gen (oneofl [ "aaa"; "hk" ])))
    (fun (ms, addr) ->
      QCheck.assume (ms <> []);
      QCheck.assume (Urm.Mapping.total_prob ms > 0.999);
      let ctx = Test_core.ctx () in
      let q = core_query addr in
      let exact = exact_answer ctx q ms in
      let budget =
        {
          Urm_anytime.Budget.default with
          Urm_anytime.Budget.max_samples = Some 8_000;
          delta = 0.0001;  (* wide intervals: a coverage miss at this δ and
                              fixed seed is a bug, not noise *)
          epsilon = 0.;
        }
      in
      let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
      let intervals =
        Option.get r.Urm_anytime.Estimator.report.Urm.Report.intervals
      in
      List.for_all
        (fun (t, (lo, hi)) ->
          let p = Urm.Answer.prob_of exact t in
          lo -. 1e-9 <= p && p <= hi +. 1e-9)
        intervals
      &&
      let nlo, nhi = r.Urm_anytime.Estimator.null_interval in
      let np = Urm.Answer.null_prob exact in
      nlo -. 1e-9 <= np && np <= nhi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Synthetic huge-h mapping generation *)

let synthetic_candidates =
  [
    ("Person.pname", "Customer.cname", 0.9);
    ("Person.pname", "Customer.mobile", 0.2);
    ("Person.phone", "Customer.ophone", 0.8);
    ("Person.phone", "Customer.hphone", 0.6);
    ("Person.phone", "Customer.mobile", 0.5);
    ("Person.addr", "Customer.oaddr", 0.7);
    ("Person.addr", "Customer.haddr", 0.65);
    ("Person.nation", "Customer.nid", 0.4);
    ("Person.gender", "Customer.nid", 0.3);
  ]
  |> List.map (fun (dst, src, score) -> { Urm_matcher.Match.src; dst; score })

let test_synthetic_mapgen () =
  let h = 40 in
  let ms = Urm.Mapgen.synthetic ~seed ~h synthetic_candidates in
  Alcotest.(check bool) "returns a non-trivial set" true (List.length ms > 10);
  Alcotest.(check bool) "at most h" true (List.length ms <= h);
  Alcotest.(check (float 1e-9)) "probabilities sum to 1" 1.
    (Urm.Mapping.total_prob ms);
  (* structurally distinct *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Urm.Mapping.same_correspondences a b then
            Alcotest.failf "mappings %d and %d coincide" i j)
        ms)
    ms;
  (* deterministic from the seed *)
  let ms' = Urm.Mapgen.synthetic ~seed ~h synthetic_candidates in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same pairs" true (Urm.Mapping.same_correspondences a b);
      Alcotest.(check (float 1e-12)) "same prob" a.Urm.Mapping.prob b.Urm.Mapping.prob)
    ms ms';
  (* Greedy rank-1 head: the best-scoring one-to-one matching comes first.
     nation and gender compete for the single Customer.nid source, so the
     greedy matching covers 4 of the 5 targets. *)
  match ms with
  | best :: _ ->
    Alcotest.(check int) "head covers all 1:1-satisfiable targets" 4
      (Urm.Mapping.size best)
  | [] -> Alcotest.fail "empty synthetic set"

let test_synthetic_through_estimator () =
  (* End-to-end at a fixture-sized h: sample a synthetic set through the
     estimator and check the intervals cover the exact Basic answer over
     the same set. *)
  let ms = Urm.Mapgen.synthetic ~seed ~h:200 synthetic_candidates in
  let ctx = Test_extensions.ctx () in
  let q = Test_extensions.phone_where_addr "aaa" in
  let exact = exact_answer ctx q ms in
  let budget =
    {
      Urm_anytime.Budget.default with
      Urm_anytime.Budget.max_samples = Some 20_000;
      delta = 0.001;
      epsilon = 0.;
    }
  in
  let r = Urm_anytime.Estimator.run ~seed ~budget ctx q ms in
  List.iter
    (fun (t, (lo, hi)) ->
      let p = Urm.Answer.prob_of exact t in
      if not (lo -. 1e-9 <= p && p <= hi +. 1e-9) then
        Alcotest.failf "synthetic: exact %.4f outside [%.4f, %.4f]" p lo hi)
    (Option.get r.Urm_anytime.Estimator.report.Urm.Report.intervals)

let suite =
  [
    Alcotest.test_case "alias: frequencies match weights" `Quick
      test_alias_frequencies;
    Alcotest.test_case "alias: unnormalised weights" `Quick test_alias_unnormalised;
    Alcotest.test_case "alias: invalid inputs" `Quick test_alias_invalid;
    Alcotest.test_case "montecarlo sampler = alias table" `Quick
      test_montecarlo_sampler_matches_alias;
    Alcotest.test_case "normal quantile (Acklam)" `Quick test_normal_quantile;
    Alcotest.test_case "wilson interval shape" `Quick test_wilson_interval;
    Alcotest.test_case "report intervals round-trip" `Quick test_interval_roundtrip;
    Alcotest.test_case "report intervals absent when None" `Quick
      test_interval_absent_when_none;
    Alcotest.test_case "estimator covers exact basic" `Quick
      test_estimator_covers_exact;
    Alcotest.test_case "estimator width convergence" `Quick
      test_estimator_width_convergence;
    Alcotest.test_case "estimator deterministic from seed" `Quick
      test_estimator_deterministic;
    Alcotest.test_case "anytime top-k matches exact at small delta" `Quick
      test_topk_matches_exact;
    Alcotest.test_case "anytime threshold matches exact at small delta" `Quick
      test_threshold_matches_exact;
    Alcotest.test_case "early stop agrees with full run" `Quick
      test_early_stop_agrees_with_full_run;
    QCheck_alcotest.to_alcotest qcheck_coverage;
    Alcotest.test_case "synthetic mapgen invariants" `Quick test_synthetic_mapgen;
    Alcotest.test_case "synthetic set through the estimator" `Quick
      test_synthetic_through_estimator;
  ]
