(* Differential oracle for the shard router: the same session, queries
   and mutation batches against a single-process server and against
   routers with 1, 2 and 4 worker processes must produce byte-identical
   answer payloads — the basic fan-out merges per-mapping partials in
   ascending order, every other operation forwards whole, and JSON
   floats render as %.17g, so any divergence is a real bug, not noise.

   The routers spawn workers by re-executing this test binary; test_main
   calls [Urm_shard.Launcher.exec_if_worker] before Alcotest ever runs. *)

module Json = Urm_util.Json
module Client = Urm_service.Client
module Server = Urm_service.Server
module Router = Urm_shard.Router
module Hash = Urm_shard.Hash

let seed = 5
let scale = 0.005
let h = 6
let shard_counts = [ 1; 2; 4 ]

let member name json = Option.value ~default:Json.Null (Json.member name json)

let answer_key json =
  Json.to_string
    (Json.Obj
       [ ("answers", member "answers" json); ("null", member "null_prob" json) ])

let approx_key json =
  Json.to_string
    (Json.Obj
       [
         ("answers", member "answers" json);
         ("intervals", member "intervals" json);
         ("samples", member "samples" json);
       ])

let open_params =
  [
    ("session", Json.Str "shard");
    ("target", Json.Str "Excel");
    ("seed", Json.Num (float_of_int seed));
    ("scale", Json.Num scale);
    ("h", Json.Num (float_of_int h));
  ]

type fixture = {
  oracle : Server.t;
  c_oracle : Client.t;
  routers : (int * Router.t * Client.t) list;
}

let fixture =
  lazy
    (let oracle =
       Server.start
         {
           Server.default_config with
           port = 0;
           workers = 2;
           engine = Urm_relalg.Compile.Vectorized;
         }
     in
     let c_oracle = Client.connect ~port:(Server.port oracle) () in
     (match Client.call c_oracle ~op:"open-session" open_params with
     | Ok _ -> ()
     | Error (code, m) -> failwith (Printf.sprintf "oracle open: %s: %s" code m));
     let routers =
       List.map
         (fun shards ->
           match Router.start { Router.default_config with shards } with
           | Error m ->
             failwith (Printf.sprintf "router (%d shards): %s" shards m)
           | Ok r ->
             let c = Client.connect ~framed:true ~port:(Router.port r) () in
             (match Client.call c ~op:"open-session" open_params with
             | Ok _ -> ()
             | Error (code, m) ->
               failwith
                 (Printf.sprintf "router (%d shards) open: %s: %s" shards code m));
             (shards, r, c))
         shard_counts
     in
     { oracle; c_oracle; routers })

let call_or_fail label c ~op params =
  match Client.call c ~op params with
  | Ok j -> j
  | Error (code, m) -> Alcotest.failf "%s: %s: %s" label code m

let query_params qname alg =
  [
    ("session", Json.Str "shard");
    ("query", Json.Str qname);
    ("algorithm", Json.Str alg);
  ]

(* ------------------------------------------------------------------ *)
(* Placement is deterministic and total *)

let test_hash_owner () =
  List.iter
    (fun shards ->
      List.iter
        (fun key ->
          let o = Hash.owner ~shards key in
          Alcotest.(check bool) "in range" true (o >= 0 && o < shards);
          Alcotest.(check int) "deterministic" o (Hash.owner ~shards key))
        [ ""; "a"; "fingerprint:1234"; "shard" ])
    [ 1; 2; 3; 7 ];
  Alcotest.(check int) "one shard is trivial" 0 (Hash.owner ~shards:1 "x");
  Alcotest.(check bool) "rejects zero shards" true
    (match Hash.owner ~shards:0 "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_hash_ranges () =
  List.iter
    (fun (shards, n) ->
      let ranges = Hash.ranges ~shards ~h:n in
      Alcotest.(check int) "one range per shard" shards (Array.length ranges);
      let covered =
        Array.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges
      in
      Alcotest.(check int) "ranges cover every mapping" n covered;
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "ordered" true (lo <= hi);
          if i > 0 then
            Alcotest.(check int) "contiguous" lo (snd ranges.(i - 1)))
        ranges)
    [ (1, 6); (2, 6); (4, 6); (3, 10); (8, 3) ]

(* ------------------------------------------------------------------ *)
(* Random queries: router ≡ single process, any shard count *)

let qcheck_differential =
  let gen =
    QCheck.Gen.(
      pair
        (oneofl [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5" ])
        (oneofl [ "basic"; "e-basic"; "e-mqo"; "q-sharing"; "o-sharing" ]))
  in
  QCheck.Test.make ~name:"random query × algorithm × shard count is byte-identical"
    ~count:25 (QCheck.make gen) (fun (qname, alg) ->
      let f = Lazy.force fixture in
      let expected =
        answer_key
          (call_or_fail "oracle query" f.c_oracle ~op:"query"
             (query_params qname alg))
      in
      List.for_all
        (fun (shards, _, c) ->
          let got =
            answer_key
              (call_or_fail
                 (Printf.sprintf "router %d query" shards)
                 c ~op:"query" (query_params qname alg))
          in
          String.equal expected got)
        f.routers)

let test_approx_differential () =
  let f = Lazy.force fixture in
  let params =
    [
      ("session", Json.Str "shard");
      ("query", Json.Str "Q1");
      ("samples", Json.Num 200.);
      ("seed", Json.Num 11.);
    ]
  in
  let expected =
    approx_key (call_or_fail "oracle approx" f.c_oracle ~op:"approx" params)
  in
  List.iter
    (fun (shards, _, c) ->
      Alcotest.(check string)
        (Printf.sprintf "approx via %d shards" shards)
        expected
        (approx_key
           (call_or_fail "router approx" c ~op:"approx" params)))
    f.routers

let test_topk_threshold_differential () =
  let f = Lazy.force fixture in
  List.iter
    (fun (op, extra) ->
      let params = (("session", Json.Str "shard") :: extra) in
      let expected =
        answer_key (call_or_fail ("oracle " ^ op) f.c_oracle ~op params)
      in
      List.iter
        (fun (shards, _, c) ->
          Alcotest.(check string)
            (Printf.sprintf "%s via %d shards" op shards)
            expected
            (answer_key (call_or_fail ("router " ^ op) c ~op params)))
        f.routers)
    [
      ("topk", [ ("query", Json.Str "Q4"); ("k", Json.Num 3.) ]);
      ("threshold", [ ("query", Json.Str "Q2"); ("tau", Json.Num 0.3) ]);
    ]

let test_batch_pipelining () =
  let f = Lazy.force fixture in
  List.iter
    (fun (shards, _, c) ->
      match
        Client.call_batch c
          [
            ("ping", []);
            ("query", query_params "Q1" "basic");
            ("no-such-op", []);
          ]
      with
      | Error m -> Alcotest.failf "batch via %d shards: %s" shards m
      | Ok [ ping; q; bad ] ->
        Alcotest.(check bool) "pong" true
          (match ping with Ok j -> member "pong" j = Json.Bool true | _ -> false);
        Alcotest.(check bool) "query answered" true (Result.is_ok q);
        Alcotest.(check bool) "unknown op is a per-item error" true
          (match bad with Error ("bad_request", _) -> true | _ -> false)
      | Ok replies ->
        Alcotest.failf "batch via %d shards: %d replies" shards
          (List.length replies))
    f.routers

(* A partial-range query beyond the live mapping count must surface the
   worker's typed [stale_range] error — the router's refresh-and-retry
   keys off this code, so it must never regress into a generic
   bad_request whose message the router would have to parse. *)
let test_stale_range_is_typed () =
  let f = Lazy.force fixture in
  (* Both fan-out protocols: a mapping range beyond the live count, and an
     e-unit slot whose expected mapping count is behind a mutate. *)
  let probes =
    [
      query_params "Q1" "basic"
      @ [ ("range_lo", Json.Num 0.); ("range_hi", Json.Num 999.) ];
      query_params "Q1" "e-basic"
      @ [
          ("slot", Json.Num 0.);
          ("slots", Json.Num 1.);
          ("expect_h", Json.Num 999.);
        ];
    ]
  in
  List.iter
    (fun params ->
      List.iter
        (fun (label, c) ->
          match Client.call c ~op:"query" params with
          | Error ("stale_range", _) -> ()
          | Error (code, m) ->
            Alcotest.failf "%s: wanted stale_range, got %s: %s" label code m
          | Ok _ -> Alcotest.failf "%s: out-of-range query succeeded" label)
        (("oracle", f.c_oracle)
        :: List.map
             (fun (shards, _, c) -> (Printf.sprintf "%d-shard router" shards, c))
             f.routers))
    probes

(* ------------------------------------------------------------------ *)
(* Mutation rounds through the router, differential against the oracle *)

let test_mutation_rounds () =
  let f = Lazy.force fixture in
  (* A live row of the lexicographically first relation, rendered exactly
     as the wire expects, from a local pipeline over the same parameters. *)
  let p = Urm_workload.Pipeline.create ~seed ~scale () in
  let ctx = Urm_workload.Pipeline.ctx p Urm_workload.Targets.excel in
  let rel =
    List.hd
      (List.sort String.compare (Urm_relalg.Catalog.names ctx.Urm.Ctx.catalog))
  in
  let row i =
    let stored = Urm_relalg.Catalog.find ctx.Urm.Ctx.catalog rel in
    let r =
      stored.Urm_relalg.Relation.rows.(i mod Urm_relalg.Relation.cardinality stored)
    in
    Json.Arr
      (List.map Urm_service.Protocol.value_to_json (Array.to_list r))
  in
  (* Reweight downward so the mapping-set mass stays a sub-distribution
     (the commit path validates, and reweight does not renormalise). *)
  let prob0 =
    let ms = Urm_workload.Pipeline.mappings p Urm_workload.Targets.excel ~h in
    (List.hd ms).Urm.Mapping.prob *. 0.8
  in
  let batches =
    [
      (* Data-only: delete a live row, insert it back at the end. *)
      Json.Arr
        [
          Json.Obj
            [ ("op", Json.Str "delete"); ("rel", Json.Str rel); ("row", row 0) ];
          Json.Obj
            [ ("op", Json.Str "insert"); ("rel", Json.Str rel); ("row", row 0) ];
        ];
      (* Reweight mapping 0 — wholesale invalidation, same mapping count. *)
      Json.Arr
        [
          Json.Obj
            [
              ("op", Json.Str "reweight");
              ("mapping", Json.Num 0.);
              ("prob", Json.Num prob0);
            ];
        ];
      (* Prune the last mapping — the mapping count drops, so the routers
         must refresh their fan-out bound. *)
      Json.Arr
        [
          Json.Obj
            [
              ("op", Json.Str "prune");
              ("mapping", Json.Num (float_of_int (h - 1)));
            ];
        ];
      Json.Arr
        [
          Json.Obj
            [ ("op", Json.Str "delete"); ("rel", Json.Str rel); ("row", row 2) ];
          Json.Obj
            [ ("op", Json.Str "insert"); ("rel", Json.Str rel); ("row", row 2) ];
        ];
    ]
  in
  List.iteri
    (fun round batch ->
      let params = [ ("session", Json.Str "shard"); ("mutations", batch) ] in
      let oracle_reply =
        call_or_fail
          (Printf.sprintf "oracle mutate %d" round)
          f.c_oracle ~op:"mutate" params
      in
      List.iter
        (fun (shards, _, c) ->
          let reply =
            call_or_fail
              (Printf.sprintf "router %d mutate %d" shards round)
              c ~op:"mutate" params
          in
          Alcotest.(check string)
            (Printf.sprintf "round %d epoch agrees via %d shards" round shards)
            (Json.to_string (member "epoch" oracle_reply))
            (Json.to_string (member "epoch" reply)))
        f.routers;
      (* Fresh basic (fanned out) and the maintained incr answer must both
         match the single process after every round. *)
      List.iter
        (fun alg ->
          let expected =
            answer_key
              (call_or_fail
                 (Printf.sprintf "oracle %s after round %d" alg round)
                 f.c_oracle ~op:"query" (query_params "Q1" alg))
          in
          List.iter
            (fun (shards, _, c) ->
              Alcotest.(check string)
                (Printf.sprintf "round %d %s via %d shards" round alg shards)
                expected
                (answer_key
                   (call_or_fail
                      (Printf.sprintf "router %d %s round %d" shards alg round)
                      c ~op:"query" (query_params "Q1" alg))))
            f.routers)
        [ "basic"; "e-basic"; "incr" ])
    batches

(* ------------------------------------------------------------------ *)
(* Metrics roll-up shape *)

let test_metrics_rollup () =
  let f = Lazy.force fixture in
  List.iter
    (fun (shards, r, c) ->
      let m = call_or_fail "router metrics" c ~op:"metrics" [] in
      let router = member "router" m in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards reported" shards)
        true
        (member "shards" router = Json.Num (float_of_int shards));
      (match member "shards" m with
      | Json.Arr per_shard ->
        Alcotest.(check int) "one entry per shard" shards (List.length per_shard)
      | _ -> Alcotest.fail "missing per-shard metrics");
      (* The aggregate sums additive counters over the fleet and drops
         non-additive percentiles. *)
      let agg = member "aggregate" m in
      Alcotest.(check bool) "aggregate requests present" true
        (match member "requests" agg with Json.Num n -> n > 0. | _ -> false);
      Alcotest.(check bool) "percentiles dropped from aggregate" true
        (member "p50" (member "latency" agg) = Json.Null);
      Alcotest.(check int) "no restarts during the happy path" 0
        (Router.restarts r))
    f.routers

(* ------------------------------------------------------------------ *)
(* Teardown — must run last in this suite *)

let test_teardown () =
  let f = Lazy.force fixture in
  List.iter
    (fun (shards, r, c) ->
      let bye = call_or_fail "router shutdown" c ~op:"shutdown" [] in
      Alcotest.(check bool)
        (Printf.sprintf "router %d drains" shards)
        true
        (member "draining" bye = Json.Bool true);
      Client.close c;
      Router.wait r;
      Alcotest.(check (list int))
        (Printf.sprintf "router %d workers reaped" shards)
        []
        (Router.worker_pids r))
    f.routers;
  Client.close f.c_oracle;
  Server.stop f.oracle;
  Server.wait f.oracle

let suite =
  [
    Alcotest.test_case "rendezvous placement" `Quick test_hash_owner;
    Alcotest.test_case "fan-out ranges partition the mappings" `Quick
      test_hash_ranges;
    QCheck_alcotest.to_alcotest qcheck_differential;
    Alcotest.test_case "approx is byte-identical through the router" `Slow
      test_approx_differential;
    Alcotest.test_case "topk and threshold forward byte-identically" `Slow
      test_topk_threshold_differential;
    Alcotest.test_case "batch frames pipeline through the router" `Slow
      test_batch_pipelining;
    Alcotest.test_case "stale range is a typed error" `Slow
      test_stale_range_is_typed;
    Alcotest.test_case "mutation rounds stay in lockstep" `Slow
      test_mutation_rounds;
    Alcotest.test_case "metrics roll up across the fleet" `Slow
      test_metrics_rollup;
    Alcotest.test_case "teardown reaps every worker" `Slow test_teardown;
  ]
