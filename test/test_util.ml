open Urm_util

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let c = Prng.split a in
  Alcotest.(check bool) "streams differ" false (Prng.next a = Prng.next c)

let test_prng_bounds () =
  let r = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Prng.in_range r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (w >= 5 && w <= 9);
    let f = Prng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_float_mean () =
  let r = Prng.create 3 in
  let w = Stats.Welford.create () in
  for _ = 1 to 20000 do
    Stats.Welford.add w (Prng.float r)
  done;
  Alcotest.(check bool) "mean near 0.5" true
    (abs_float (Stats.Welford.mean w -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let r = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_zipf_skew () =
  let r = Prng.create 9 in
  let z = Prng.Zipf.create ~n:100 ~theta:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10000 do
    let v = Prng.Zipf.draw z r in
    Alcotest.(check bool) "in range" true (v >= 1 && v <= 100);
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 50" true (counts.(0) > counts.(49))

let test_welford () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Welford.mean w);
  Alcotest.(check (float 1e-6)) "stddev" 2.13808993529939 (Stats.Welford.stddev w)

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.percentile 1. xs)

let test_entropy () =
  Alcotest.(check (float 1e-9)) "uniform 4" 2. (Stats.entropy [ 0.25; 0.25; 0.25; 0.25 ]);
  Alcotest.(check (float 1e-9)) "point mass" 0. (Stats.entropy [ 1.0 ]);
  (* The paper's Fig. 7 example: E(o1) = 1.53, ties to 3 partitions of
     40/30/30 percent; E(o2) = 1.36 for 10/70/10/10. *)
  Alcotest.(check bool) "SEF example ordering" true
    (Stats.entropy [ 0.1; 0.7; 0.1; 0.1 ] < Stats.entropy [ 0.4; 0.3; 0.3 ])

let test_heap_sorts () =
  let h = Heap.of_list compare [ 5; 1; 4; 2; 3 ] in
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "peek min" 1 (Heap.peek h);
  Alcotest.(check int) "pop min" 1 (Heap.pop h);
  Alcotest.(check int) "len" 4 (Heap.length h)

let test_heap_empty () =
  let h = Heap.create compare in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h));
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h)

let test_percentile_single () =
  (* A single observation is every percentile. *)
  Alcotest.(check (float 1e-9)) "p=0" 42. (Stats.percentile 0. [ 42. ]);
  Alcotest.(check (float 1e-9)) "p=0.3" 42. (Stats.percentile 0.3 [ 42. ]);
  Alcotest.(check (float 1e-9)) "p=1" 42. (Stats.percentile 1. [ 42. ])

let test_percentile_empty () =
  Alcotest.check_raises "empty input"
    (Invalid_argument "Stats.percentile: empty input") (fun () ->
      ignore (Stats.percentile 0.5 []))

let test_percentile_or_zero () =
  (* The total variant: an empty window (the server's latency ring before
     any request) reads as 0 instead of raising. *)
  Alcotest.(check (float 1e-9)) "empty is zero" 0. (Stats.percentile_or_zero 0.99 []);
  Alcotest.(check (float 1e-9)) "single sample" 42.
    (Stats.percentile_or_zero 0.5 [ 42. ]);
  Alcotest.(check (float 1e-9)) "single sample, extreme p" 42.
    (Stats.percentile_or_zero 0.99 [ 42. ]);
  (* Ties: every percentile of a constant list is that constant. *)
  let ties = [ 7.; 7.; 7.; 7. ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "ties at p=%g" p)
        7.
        (Stats.percentile_or_zero p ties))
    [ 0.; 0.5; 0.95; 1. ];
  (* And it agrees with the raising variant on non-empty input. *)
  let xs = [ 5.; 1.; 3.; 2.; 4. ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "agrees at p=%g" p)
        (Stats.percentile p xs)
        (Stats.percentile_or_zero p xs))
    [ 0.; 0.25; 0.5; 0.75; 1. ]

let test_histogram_top_edge () =
  (* x = hi must land in the last bucket, not fall off the end. *)
  let counts = Stats.histogram ~buckets:4 [ 0.; 1.; 2.; 3.; 4. ] in
  Alcotest.(check (array int)) "top edge in last bucket" [| 1; 1; 1; 2 |] counts;
  Alcotest.(check int) "no sample dropped" 5 (Array.fold_left ( + ) 0 counts)

let test_histogram_all_equal () =
  (* Zero-width range: everything in the first bucket, nothing crashes. *)
  let counts = Stats.histogram ~buckets:3 [ 5.; 5.; 5. ] in
  Alcotest.(check (array int)) "all in first bucket" [| 3; 0; 0 |] counts

let test_histogram_invalid () =
  Alcotest.check_raises "non-positive buckets"
    (Invalid_argument "Stats.histogram: buckets must be positive") (fun () ->
      ignore (Stats.histogram ~buckets:0 [ 1. ]));
  Alcotest.check_raises "empty input"
    (Invalid_argument "Stats.histogram: empty input") (fun () ->
      ignore (Stats.histogram ~buckets:4 []))

let qcheck_heap =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Urm_util.Heap.of_list compare xs in
      Urm_util.Heap.to_sorted_list h = List.sort compare xs)

let qcheck_heap_push_pop =
  (* Interleaved pushes and pops still drain in sorted order: pops always
     remove the current minimum, so the final drain must equal sorting what
     is left. *)
  QCheck.Test.make ~name:"heap push/pop interleaved" ~count:200
    QCheck.(list (pair int bool))
    (fun ops ->
      let h = Urm_util.Heap.create compare in
      let model = ref [] in
      let rec remove_one x = function
        | [] -> []
        | y :: rest -> if y = x then rest else y :: remove_one x rest
      in
      List.iter
        (fun (x, pop) ->
          if pop && not (Urm_util.Heap.is_empty h) then begin
            let v = Urm_util.Heap.pop h in
            let expected = List.fold_left min max_int !model in
            if v <> expected then QCheck.Test.fail_report "pop not minimum";
            model := remove_one expected !model
          end
          else begin
            Urm_util.Heap.push h x;
            model := x :: !model
          end)
        ops;
      Urm_util.Heap.to_sorted_list h = List.sort compare !model)

let qcheck_heap_copy_independent =
  QCheck.Test.make ~name:"heap copy is independent" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, y) ->
      let h = Urm_util.Heap.of_list compare xs in
      let c = Urm_util.Heap.copy h in
      (* Mutate the original: drain it and push something new. *)
      while not (Urm_util.Heap.is_empty h) do
        ignore (Urm_util.Heap.pop h)
      done;
      Urm_util.Heap.push h y;
      Urm_util.Heap.to_sorted_list c = List.sort compare xs
      && Urm_util.Heap.to_sorted_list h = [ y ])

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.)) (float_bound_inclusive 1.))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      v >= List.fold_left min infinity xs -. 1e-9
      && v <= List.fold_left max neg_infinity xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng float mean" `Quick test_prng_float_mean;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "welford" `Quick test_welford;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "entropy" `Quick test_entropy;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "percentile single" `Quick test_percentile_single;
    Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
    Alcotest.test_case "percentile_or_zero edge cases" `Quick
      test_percentile_or_zero;
    Alcotest.test_case "histogram top edge" `Quick test_histogram_top_edge;
    Alcotest.test_case "histogram all equal" `Quick test_histogram_all_equal;
    Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
    QCheck_alcotest.to_alcotest qcheck_heap;
    QCheck_alcotest.to_alcotest qcheck_heap_push_pop;
    QCheck_alcotest.to_alcotest qcheck_heap_copy_independent;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
  ]
