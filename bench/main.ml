(* Benchmark harness.

   Two parts, both filtered by [--only id1,id2]:

   1. The experiment tables: regenerates every table and figure of the
      paper's evaluation section (plus the DESIGN.md ablations) at the
      default configuration and prints them in row/series form.  Use
      [--quick] for the miniature configuration.

   2. A Bechamel micro-benchmark suite with one [Test.make] per table or
      figure, exercising that experiment's characteristic operation on a
      small fixed workload (skip with [--skip-bechamel], keep only with
      [--skip-tables]). *)

(* First, before argv parsing: the shard sweep spawns worker processes
   by re-executing this binary with URM_SHARD_WORKER set. *)
let () = Urm_shard.Launcher.exec_if_worker ()

let parse_args () =
  let only = ref None in
  let quick = ref false in
  let skip_bechamel = ref false in
  let skip_tables = ref false in
  let engine = ref None in
  let rec go = function
    | [] -> ()
    | "--only" :: v :: rest ->
      only := Some (String.split_on_char ',' v);
      go rest
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--skip-bechamel" :: rest ->
      skip_bechamel := true;
      go rest
    | "--skip-tables" :: rest ->
      skip_tables := true;
      go rest
    | "--engine" :: v :: rest -> begin
      match Urm_relalg.Compile.engine_of_string v with
      | Ok e ->
        engine := Some e;
        go rest
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2
    end
    | other :: _ ->
      Format.eprintf
        "unknown argument %s (expected --only ids | --quick | --engine name | \
         --skip-bechamel | --skip-tables)@."
        other;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!only, !quick, !skip_bechamel, !skip_tables, !engine)

let wanted only id =
  match only with None -> true | Some ids -> List.mem id ids

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures. *)

let metrics_file = "metrics.json"

let run_tables only quick =
  let cfg =
    if quick then Urm_workload.Experiments.quick else Urm_workload.Experiments.default
  in
  Format.printf "=== experiment tables (scale %g, h = %d, runs = %d) ===@.@."
    cfg.Urm_workload.Experiments.scale cfg.Urm_workload.Experiments.h
    cfg.Urm_workload.Experiments.runs;
  (* One metrics snapshot per experiment: the algorithms all record into the
     global registry, so reset it around each experiment and keep the
     per-experiment JSON. *)
  let snapshots =
    List.filter_map
      (fun (id, f) ->
        if wanted only id then begin
          Urm_obs.Metrics.reset Urm_obs.Metrics.global;
          let t0 = Unix.gettimeofday () in
          let table = f cfg in
          Format.printf "%a  [%.1fs]@.@." Urm_workload.Experiments.Table.pp table
            (Unix.gettimeofday () -. t0);
          Some (id, Urm_obs.Metrics.to_json Urm_obs.Metrics.global)
        end
        else None)
      Urm_workload.Experiments.all
  in
  if snapshots <> [] then begin
    let json = Urm_util.Json.Obj [ ("experiments", Urm_util.Json.Obj snapshots) ] in
    let oc = open_out metrics_file in
    output_string oc (Urm_util.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Format.printf "wrote per-experiment operator metrics to %s@." metrics_file
  end

(* ------------------------------------------------------------------ *)
(* Part 1b: the parallel-evaluation sweep (id "par").

   fig10c/fig11c-style h-sweeps for one simple (basic) and one sharing
   (o-sharing/SEF) solution at jobs ∈ {1, 2, 4, 8}, written to
   BENCH_parallel.json.  Every parallel point also checks its answer is
   bit-identical to the jobs = 1 answer of the same point (the lib/par
   determinism contract), recorded as "identical_to_jobs1". *)

let parallel_file = "BENCH_parallel.json"

let run_par quick =
  let module E = Urm_workload.Experiments in
  let cfg = if quick then E.quick else E.default in
  let jobs_sweep = [ 1; 2; 4; 8 ] in
  let sweeps =
    [
      ("fig10c-par", Urm.Algorithms.Basic);
      ("fig11c-par", Urm.Algorithms.Osharing Urm.Eunit.Sef);
    ]
  in
  let target, q = Urm_workload.Queries.default in
  let p = Urm_workload.Pipeline.create ~seed:cfg.E.seed ~scale:cfg.E.scale () in
  let ctx = Urm_workload.Pipeline.ctx p target in
  Format.printf "=== parallel evaluation sweep (Q4, jobs ∈ {%s}) ===@.@."
    (String.concat ", " (List.map string_of_int jobs_sweep));
  let rows =
    List.concat_map
      (fun (id, alg) ->
        List.concat_map
          (fun h ->
            let ms = Urm_workload.Pipeline.mappings p target ~h in
            let baseline = ref None in
            List.map
              (fun jobs ->
                let report = ref None in
                let secs =
                  Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.E.runs (fun () ->
                      report :=
                        Some (E.run_alg { cfg with E.jobs } alg ctx q ms))
                in
                let answer = (Option.get !report).Urm.Report.answer in
                let identical =
                  match !baseline with
                  | None ->
                    baseline := Some answer;
                    true
                  | Some b -> Urm.Answer.equal ~eps:0. b answer
                in
                Format.printf "  %-12s h=%-4d jobs=%d  %8.3fs%s@." id h jobs
                  secs
                  (if identical then "" else "  ANSWER MISMATCH");
                Urm_util.Json.Obj
                  [
                    ("id", Urm_util.Json.Str id);
                    ("algorithm", Urm_util.Json.Str (Urm.Algorithms.name alg));
                    ("query", Urm_util.Json.Str "Q4");
                    ("h", Urm_util.Json.Num (float_of_int h));
                    ("jobs", Urm_util.Json.Num (float_of_int jobs));
                    ("seconds", Urm_util.Json.Num secs);
                    ("identical_to_jobs1", Urm_util.Json.Bool identical);
                  ])
              jobs_sweep)
          cfg.E.h_sweep)
      sweeps
  in
  let json =
    Urm_util.Json.Obj
      [
        ( "config",
          Urm_util.Json.Obj
            [
              ("seed", Urm_util.Json.Num (float_of_int cfg.E.seed));
              ("scale", Urm_util.Json.Num cfg.E.scale);
              ("runs", Urm_util.Json.Num (float_of_int cfg.E.runs));
              ( "recommended_domains",
                Urm_util.Json.Num
                  (float_of_int (Domain.recommended_domain_count ())) );
            ] );
        ("rows", Urm_util.Json.Arr rows);
      ]
  in
  let oc = open_out parallel_file in
  output_string oc (Urm_util.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote parallel sweep to %s@.@." parallel_file

(* ------------------------------------------------------------------ *)
(* Part 1c: the engine sweep (id "eval").

   Per algorithm × workload × h, runs the same query under every engine
   (interpreted, compiled, vectorized — or interpreted plus the one named
   by [--engine]) and records wall time, the plan-engine contexts'
   plan-cache counters and answer identity against the interpreted
   baseline, written to BENCH_eval.json.  Any mismatch makes the harness
   exit non-zero.  Two workloads:

   - "replicated": the top-1 mapping duplicated h times (uniform 1/h
     probability).  Every mapping rewrites to the same query shape, so a
     single compile serves the whole run — the pure cross-mapping
     plan-cache case (hit ≥ h − 1).
   - "pipeline": the real h-best Murty mappings, where distinct
     correspondence sets yield several plan shapes. *)

let eval_file = "BENCH_eval.json"

let run_eval quick engine_opt =
  let module E = Urm_workload.Experiments in
  let cfg = if quick then E.quick else E.default in
  let engines =
    match engine_opt with
    | None ->
      [
        Urm_relalg.Compile.Interpreted;
        Urm_relalg.Compile.Compiled;
        Urm_relalg.Compile.Vectorized;
      ]
    | Some Urm_relalg.Compile.Interpreted -> [ Urm_relalg.Compile.Interpreted ]
    | Some e -> [ Urm_relalg.Compile.Interpreted; e ]
  in
  let mismatch = ref false in
  let h_sweep = if quick then [ 8; 32 ] else [ 32; 100; 300 ] in
  let algorithms =
    [ Urm.Algorithms.Basic; Urm.Algorithms.Ebasic; Urm.Algorithms.Emqo ]
  in
  let target, q = Urm_workload.Queries.default in
  let p = Urm_workload.Pipeline.create ~seed:cfg.E.seed ~scale:cfg.E.scale () in
  let replicated h =
    match Urm_workload.Pipeline.mappings p target ~h:1 with
    | [] -> []
    | top :: _ ->
      List.init h (fun id ->
          Urm.Mapping.make ~id ~prob:(1. /. float_of_int h)
            ~score:top.Urm.Mapping.score top.Urm.Mapping.pairs)
  in
  let workloads =
    [
      ("replicated", replicated);
      ("pipeline", fun h -> Urm_workload.Pipeline.mappings p target ~h);
    ]
  in
  Format.printf "=== engine sweep (Q4, %s) ===@.@."
    (String.concat " vs "
       (List.map Urm_relalg.Compile.engine_name engines));
  let rows =
    List.concat_map
      (fun alg ->
        List.concat_map
          (fun (workload, make_ms) ->
            List.concat_map
              (fun h ->
                let ms = make_ms h in
                let baseline = ref None in
                List.map
                  (fun engine ->
                    (* A fresh context per row isolates the plan-cache
                       counters to this run. *)
                    let ctx = Urm_workload.Pipeline.ctx ~engine p target in
                    let report = ref None in
                    let secs =
                      Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.E.runs
                        (fun () -> report := Some (E.run_alg cfg alg ctx q ms))
                    in
                    let answer = (Option.get !report).Urm.Report.answer in
                    let identical =
                      match !baseline with
                      | None ->
                        baseline := Some answer;
                        true
                      | Some b -> Urm.Answer.equal ~eps:Urm.Prob.eps b answer
                    in
                    if not identical then mismatch := true;
                    let hit, miss, evict = Urm.Ctx.plan_stats ctx in
                    Format.printf
                      "  %-10s %-10s h=%-4d %-11s  %8.3fs  cache %d/%d%s@."
                      (Urm.Algorithms.name alg) workload h
                      (Urm_relalg.Compile.engine_name engine)
                      secs hit (hit + miss)
                      (if identical then "" else "  ANSWER MISMATCH");
                    Urm_util.Json.Obj
                      [
                        ("id", Urm_util.Json.Str "eval");
                        ( "algorithm",
                          Urm_util.Json.Str (Urm.Algorithms.name alg) );
                        ("workload", Urm_util.Json.Str workload);
                        ("query", Urm_util.Json.Str "Q4");
                        ("h", Urm_util.Json.Num (float_of_int h));
                        ( "engine",
                          Urm_util.Json.Str
                            (Urm_relalg.Compile.engine_name engine) );
                        ("seconds", Urm_util.Json.Num secs);
                        ( "plan_cache",
                          Urm_util.Json.Obj
                            [
                              ("hit", Urm_util.Json.Num (float_of_int hit));
                              ("miss", Urm_util.Json.Num (float_of_int miss));
                              ("evict", Urm_util.Json.Num (float_of_int evict));
                            ] );
                        ("identical_to_interpreted", Urm_util.Json.Bool identical);
                      ])
                  engines)
              h_sweep)
          workloads)
      algorithms
  in
  let json =
    Urm_util.Json.Obj
      [
        ( "config",
          Urm_util.Json.Obj
            [
              ("seed", Urm_util.Json.Num (float_of_int cfg.E.seed));
              ("scale", Urm_util.Json.Num cfg.E.scale);
              ("runs", Urm_util.Json.Num (float_of_int cfg.E.runs));
            ] );
        ("rows", Urm_util.Json.Arr rows);
      ]
  in
  let oc = open_out eval_file in
  output_string oc (Urm_util.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote engine sweep to %s@.@." eval_file;
  if !mismatch then begin
    Format.eprintf "engine sweep: answers diverged from the interpreted baseline@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 1c': the sharing sweep (id "share").

   The factorized multi-mapping executor's headline: the sharing
   algorithms (e-basic, e-MQO, q-sharing, o-sharing) on the plan engines
   run one vectorized pass over the distinct e-units for all h mappings,
   instead of re-interpreting per unit.  Per algorithm × engine × h, times
   Q4 on the pipeline workload and checks the answer against the
   interpreted e-basic oracle of the same h — byte-for-byte on the rendered
   JSON for the sharing algorithms (they all accumulate per mapping in
   ascending mapping order, so even the float bits must agree), and with
   [Answer.equal ~eps] for basic (it groups the same additions per mapping
   instead of per e-unit, so last-ulp float bits legitimately differ).  Any
   divergence exits non-zero, so the factorized path cannot silently
   drift.  Each row records the report's effective engine
   ("vectorized+factorized" on the sharing algorithms' plan-engine path).

   The perf gate (full sweep only, where h=300 exists): factorized e-MQO
   must beat vectorized basic wall-clock and interpreted e-MQO by ≥ 5×,
   measured as the min of 3 fresh runs per configuration — the min is the
   noise-robust statistic; single-shot row timings on a shared box jitter
   by 20%+, which a 5× threshold cannot absorb. *)

let share_file = "BENCH_share.json"

let run_share quick =
  let module E = Urm_workload.Experiments in
  let cfg = if quick then E.quick else E.default in
  let h_sweep = if quick then [ 8; 32 ] else [ 32; 100; 300 ] in
  let sharing =
    [
      Urm.Algorithms.Ebasic;
      Urm.Algorithms.Emqo;
      Urm.Algorithms.Qsharing;
      Urm.Algorithms.Osharing Urm.Eunit.Sef;
    ]
  in
  let target, q = Urm_workload.Queries.default in
  let p = Urm_workload.Pipeline.create ~seed:cfg.E.seed ~scale:cfg.E.scale () in
  let mismatch = ref false in
  Format.printf "=== sharing sweep (Q4, factorized vs interpreted) ===@.@.";
  let row alg engine h ms ~compare ~oracle =
    let ctx = Urm_workload.Pipeline.ctx ~engine p target in
    let report = ref None in
    let secs =
      Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.E.runs (fun () ->
          report := Some (E.run_alg cfg alg ctx q ms))
    in
    let report = Option.get !report in
    let answer = report.Urm.Report.answer in
    let rendered = Urm_util.Json.to_string (Urm.Answer.to_json answer) in
    let matches =
      match !oracle with
      | None ->
        oracle := Some (answer, rendered);
        true
      | Some (oans, obytes) -> (
        match compare with
        | `Bytes -> String.equal obytes rendered
        | `Eps -> Urm.Answer.equal ~eps:Urm.Prob.eps oans answer)
    in
    if not matches then mismatch := true;
    let alg_name = Urm.Algorithms.name alg in
    let engine_name = Urm_relalg.Compile.engine_name engine in
    Format.printf "  %-14s h=%-4d %-11s (%s)  %8.3fs%s@." alg_name h
      engine_name
      (match report.Urm.Report.engine with "" -> "?" | e -> e)
      secs
      (if matches then "" else "  ANSWER MISMATCH");
    Urm_util.Json.Obj
      [
        ("id", Urm_util.Json.Str "share");
        ("algorithm", Urm_util.Json.Str alg_name);
        ("query", Urm_util.Json.Str "Q4");
        ("h", Urm_util.Json.Num (float_of_int h));
        ("engine", Urm_util.Json.Str engine_name);
        ("effective_engine", Urm_util.Json.Str report.Urm.Report.engine);
        ("seconds", Urm_util.Json.Num secs);
        ( "comparison",
          Urm_util.Json.Str
            (match compare with `Bytes -> "bytes" | `Eps -> "eps") );
        ("matches_oracle", Urm_util.Json.Bool matches);
      ]
  in
  let mappings = Hashtbl.create 4 in
  let mappings_for h =
    match Hashtbl.find_opt mappings h with
    | Some ms -> ms
    | None ->
      let ms = Urm_workload.Pipeline.mappings p target ~h in
      Hashtbl.add mappings h ms;
      ms
  in
  let rows =
    List.concat_map
      (fun h ->
        let ms = mappings_for h in
        (* The oracle at this h: interpreted e-basic, the first row.  An
           interpreted basic reference is h× more expensive for the same
           probabilities, so the sharing algorithms' interpreted runs
           stand in. *)
        let oracle = ref None in
        let interp =
          List.map
            (fun alg ->
              row alg Urm_relalg.Compile.Interpreted h ms ~compare:`Bytes
                ~oracle)
            sharing
        in
        let vect_basic =
          row Urm.Algorithms.Basic Urm_relalg.Compile.Vectorized h ms
            ~compare:`Eps ~oracle
        in
        let vect =
          vect_basic
          :: List.map
               (fun alg ->
                 row alg Urm_relalg.Compile.Vectorized h ms ~compare:`Bytes
                   ~oracle)
               sharing
        in
        interp @ vect)
      h_sweep
  in
  (* The perf gate, re-measured min-of-3 with a fresh context per run. *)
  let gate =
    if quick then []
    else begin
      let ms = mappings_for 300 in
      let best alg engine =
        let t = ref infinity in
        for _ = 1 to 3 do
          let ctx = Urm_workload.Pipeline.ctx ~engine p target in
          let secs =
            Urm_util.Timer.repeat ~warmup:0 ~runs:1 (fun () ->
                ignore (E.run_alg cfg alg ctx q ms))
          in
          if secs < !t then t := secs
        done;
        !t
      in
      let fact = best Urm.Algorithms.Emqo Urm_relalg.Compile.Vectorized in
      let interp = best Urm.Algorithms.Emqo Urm_relalg.Compile.Interpreted in
      let basic = best Urm.Algorithms.Basic Urm_relalg.Compile.Vectorized in
      let speedup = interp /. fact in
      let pass = fact < basic && speedup >= 5. in
      Format.printf
        "@.perf gate (h=300, min of 3): factorized e-MQO %.3fs, vectorized \
         basic %.3fs, interpreted e-MQO %.3fs (%.1fx) — %s@."
        fact basic interp speedup
        (if pass then "PASS" else "FAIL");
      [
        ( "gate",
          Urm_util.Json.Obj
            [
              ("h", Urm_util.Json.Num 300.);
              ("runs", Urm_util.Json.Num 3.);
              ("factorized_emqo_seconds", Urm_util.Json.Num fact);
              ("interpreted_emqo_seconds", Urm_util.Json.Num interp);
              ("vectorized_basic_seconds", Urm_util.Json.Num basic);
              ("speedup_vs_interpreted", Urm_util.Json.Num speedup);
              ("pass", Urm_util.Json.Bool pass);
            ] );
      ]
    end
  in
  let json =
    Urm_util.Json.Obj
      ([
         ( "config",
           Urm_util.Json.Obj
             [
               ("seed", Urm_util.Json.Num (float_of_int cfg.E.seed));
               ("scale", Urm_util.Json.Num cfg.E.scale);
               ("runs", Urm_util.Json.Num (float_of_int cfg.E.runs));
             ] );
         ("rows", Urm_util.Json.Arr rows);
       ]
      @ gate)
  in
  let oc = open_out share_file in
  output_string oc (Urm_util.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote sharing sweep to %s@.@." share_file;
  if !mismatch then begin
    Format.eprintf
      "sharing sweep: answers diverged from the interpreted oracle@.";
    exit 1
  end;
  match gate with
  | [ (_, Urm_util.Json.Obj fields) ]
    when List.assoc "pass" fields = Urm_util.Json.Bool false ->
    Format.eprintf
      "perf gate FAILED: factorized e-MQO must beat vectorized basic and \
       interpreted e-MQO by >= 5x@.";
    exit 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Part 1d: the anytime sweep (id "anytime").

   The headline claim of lib/anytime: mapping sets far beyond exact reach
   (h = 10³..10⁵, drawn by the synthetic generator) answered with
   confidence intervals in less wall-clock than the exact Basic algorithm
   needs at h = 300.  Per h × sample budget, runs the budgeted estimator
   on Q4 and records wall time, samples drawn, distinct shapes evaluated,
   the stop reason and the final max/mean interval widths — the
   interval-width-vs-budget curve — written to BENCH_anytime.json next to
   the exact baseline. *)

let anytime_file = "BENCH_anytime.json"

let run_anytime quick =
  let module E = Urm_workload.Experiments in
  let cfg = if quick then E.quick else E.default in
  let target, q = Urm_workload.Queries.default in
  let p = Urm_workload.Pipeline.create ~seed:cfg.E.seed ~scale:cfg.E.scale () in
  let ctx = Urm_workload.Pipeline.ctx p target in
  let exact_h = if quick then 50 else 300 in
  let exact_ms = Urm_workload.Pipeline.mappings p target ~h:exact_h in
  let exact_secs =
    Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.E.runs (fun () ->
        ignore (E.run_alg cfg Urm.Algorithms.Basic ctx q exact_ms))
  in
  Format.printf "=== anytime sweep (Q4, synthetic mappings) ===@.@.";
  Format.printf "  exact basic   h=%-7d          %8.3fs (baseline)@." exact_h
    exact_secs;
  let h_sweep = if quick then [ 1000 ] else [ 1000; 10_000; 100_000 ] in
  let budgets = if quick then [ 64; 256 ] else [ 128; 512; 2048 ] in
  let fastest_at_max_h = ref infinity in
  let rows =
    List.concat_map
      (fun h ->
        let ms = Urm_workload.Pipeline.synthetic_mappings p target ~h in
        List.map
          (fun samples ->
            (* ε = 0 disables width convergence so the sweep traces the
               full width-vs-budget curve at every point. *)
            let budget =
              {
                Urm_anytime.Budget.default with
                Urm_anytime.Budget.max_samples = Some samples;
                epsilon = 0.;
              }
            in
            let result = ref None in
            let secs =
              Urm_util.Timer.repeat ~warmup:0 ~runs:cfg.E.runs (fun () ->
                  result :=
                    Some
                      (Urm_anytime.Estimator.run ~seed:cfg.E.seed ~budget ctx q
                         ms))
            in
            let r = Option.get !result in
            let widths =
              let nl, nh = r.Urm_anytime.Estimator.null_interval in
              (nh -. nl)
              :: List.map
                   (fun (_, (lo, hi)) -> hi -. lo)
                   (Option.value ~default:[]
                      r.Urm_anytime.Estimator.report.Urm.Report.intervals)
            in
            let max_width = List.fold_left Float.max 0. widths in
            let mean_width = Urm_util.Stats.mean widths in
            if h = List.fold_left max 0 h_sweep then
              fastest_at_max_h := Float.min !fastest_at_max_h secs;
            Format.printf
              "  anytime       h=%-7d n=%-6d %8.3fs  width max %.4f mean \
               %.4f  %s@."
              h r.Urm_anytime.Estimator.samples secs max_width mean_width
              (Urm_anytime.Budget.stop_reason_name
                 r.Urm_anytime.Estimator.stop_reason);
            Urm_util.Json.Obj
              [
                ("id", Urm_util.Json.Str "anytime");
                ("query", Urm_util.Json.Str "Q4");
                ("h", Urm_util.Json.Num (float_of_int h));
                ("budget_samples", Urm_util.Json.Num (float_of_int samples));
                ( "samples",
                  Urm_util.Json.Num
                    (float_of_int r.Urm_anytime.Estimator.samples) );
                ( "shapes",
                  Urm_util.Json.Num (float_of_int r.Urm_anytime.Estimator.shapes)
                );
                ("seconds", Urm_util.Json.Num secs);
                ("max_width", Urm_util.Json.Num max_width);
                ("mean_width", Urm_util.Json.Num mean_width);
                ( "stop_reason",
                  Urm_util.Json.Str
                    (Urm_anytime.Budget.stop_reason_name
                       r.Urm_anytime.Estimator.stop_reason) );
              ])
          budgets)
      h_sweep
  in
  let faster = !fastest_at_max_h < exact_secs in
  Format.printf
    "@.  anytime at h=%d: best %.3fs vs exact %.3fs at h=%d → %s@."
    (List.fold_left max 0 h_sweep)
    !fastest_at_max_h exact_secs exact_h
    (if faster then "faster" else "NOT faster");
  let json =
    Urm_util.Json.Obj
      [
        ( "config",
          Urm_util.Json.Obj
            [
              ("seed", Urm_util.Json.Num (float_of_int cfg.E.seed));
              ("scale", Urm_util.Json.Num cfg.E.scale);
              ("runs", Urm_util.Json.Num (float_of_int cfg.E.runs));
              ("delta", Urm_util.Json.Num Urm_anytime.Budget.default.Urm_anytime.Budget.delta);
            ] );
        ( "exact",
          Urm_util.Json.Obj
            [
              ("algorithm", Urm_util.Json.Str "basic");
              ("h", Urm_util.Json.Num (float_of_int exact_h));
              ("seconds", Urm_util.Json.Num exact_secs);
            ] );
        ("faster_than_exact", Urm_util.Json.Bool faster);
        ("rows", Urm_util.Json.Arr rows);
      ]
  in
  let oc = open_out anytime_file in
  output_string oc (Urm_util.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote anytime sweep to %s@.@." anytime_file

(* ------------------------------------------------------------------ *)
(* Part 1e: the incremental-maintenance sweep (id "incr").

   The headline claim of lib/incr: after a mutation batch, patching the
   maintained answer by delta evaluation (State.catch_up) beats
   re-evaluating the query from scratch, and the patched answer stays
   within Prob.eps of the fresh one at every benchmarked point — any
   inequality makes the harness exit non-zero.  Per h × batch size,
   commits [runs] epochs of fresh-key tuple inserts into a relation the
   query reads (inserts elsewhere would be skipped by every shape, timing
   nothing) and times the catch-up against a full Basic re-evaluation
   over the new head.  Written to BENCH_incr.json. *)

let incr_file = "BENCH_incr.json"

let run_incr quick =
  let module E = Urm_workload.Experiments in
  let module Vcatalog = Urm_incr.Vcatalog in
  let module State = Urm_incr.State in
  let module Mutation = Urm_incr.Mutation in
  let module Json = Urm_util.Json in
  let cfg = if quick then E.quick else E.default in
  let runs = if quick then 2 else 3 in
  let h_sweep = if quick then [ 8; 32 ] else [ 100; 300; 500 ] in
  let batch_sizes = [ 1; 10; 100 ] in
  let target, q = Urm_workload.Queries.default in
  let p = Urm_workload.Pipeline.create ~seed:cfg.E.seed ~scale:cfg.E.scale () in
  let mismatch = ref false in
  let single_insert = ref [] in
  Format.printf "=== incremental maintenance (Q4, basic) ===@.@.";
  let rows =
    List.concat_map
      (fun h ->
        let ms = Urm_workload.Pipeline.mappings p target ~h in
        let ctx = Urm_workload.Pipeline.ctx p target in
        let vcat = Vcatalog.create ~ctx ~mappings:ms () in
        let head0 = Vcatalog.head vcat in
        let rel =
          match State.query_deps head0 q with
          | r :: _ -> r
          | [] -> failwith "incr bench: Q4 reads no stored relation"
        in
        let fresh_key = ref 0 in
        let make_batch head n =
          let stored =
            Urm_relalg.Catalog.find head.Vcatalog.ctx.Urm.Ctx.catalog rel
          in
          List.init n (fun i ->
              let row =
                Array.copy
                  stored.Urm_relalg.Relation.rows.(i
                                                   mod Urm_relalg.Relation
                                                       .cardinality stored)
              in
              incr fresh_key;
              (match row.(0) with
              | Urm_relalg.Value.Int _ ->
                row.(0) <- Urm_relalg.Value.Int (10_000_000 + !fresh_key)
              | _ -> ());
              Mutation.Insert { rel; row })
        in
        (* Build the maintained state once per h; one fresh evaluation
           warms the plan cache so the full-reeval side is not charged
           compile time either. *)
        let t0 = Urm_util.Timer.now () in
        let state = State.build head0 q in
        let build_secs = Urm_util.Timer.now () -. t0 in
        ignore
          (E.run_alg cfg Urm.Algorithms.Basic head0.Vcatalog.ctx q
             head0.Vcatalog.mappings);
        List.map
          (fun n ->
            let d_sum = ref 0. and f_sum = ref 0. in
            for _ = 1 to runs do
              let head = Vcatalog.head vcat in
              let batch = make_batch head n in
              (match Vcatalog.commit vcat batch with
              | Ok _ -> ()
              | Error msg -> failwith ("incr bench: commit failed: " ^ msg));
              let t0 = Urm_util.Timer.now () in
              let _, status = State.catch_up vcat state in
              d_sum := !d_sum +. (Urm_util.Timer.now () -. t0);
              (match status with
              | `Patched -> ()
              | `Current | `Rebuilt ->
                failwith "incr bench: expected a delta catch-up");
              let head = Vcatalog.head vcat in
              let t1 = Urm_util.Timer.now () in
              let report =
                E.run_alg cfg Urm.Algorithms.Basic head.Vcatalog.ctx q
                  head.Vcatalog.mappings
              in
              f_sum := !f_sum +. (Urm_util.Timer.now () -. t1);
              if
                not
                  (Urm.Answer.equal ~eps:Urm.Prob.eps
                     report.Urm.Report.answer (State.answer state))
              then mismatch := true
            done;
            let delta_secs = !d_sum /. float_of_int runs in
            let full_secs = !f_sum /. float_of_int runs in
            let speedup = full_secs /. Float.max delta_secs 1e-9 in
            if n = 1 then single_insert := (h, speedup) :: !single_insert;
            Format.printf
              "  h=%-5d batch=%-4d  delta %9.6fs  full %8.4fs  speedup \
               %8.1fx%s@."
              h n delta_secs full_secs speedup
              (if !mismatch then "  ANSWER MISMATCH" else "");
            Json.Obj
              [
                ("id", Json.Str "incr");
                ("query", Json.Str "Q4");
                ("algorithm", Json.Str "basic");
                ("h", Json.Num (float_of_int h));
                ("batch", Json.Num (float_of_int n));
                ("relation", Json.Str rel);
                ("build_seconds", Json.Num build_secs);
                ("delta_seconds", Json.Num delta_secs);
                ("full_seconds", Json.Num full_secs);
                ("speedup", Json.Num speedup);
                ("equal_within_eps", Json.Bool (not !mismatch));
              ])
          batch_sizes)
      h_sweep
  in
  (* The headline: single-tuple-insert batches at the largest h. *)
  let meets_5x =
    List.for_all
      (fun (h, s) -> h < 300 || s >= 5.)
      !single_insert
  in
  Format.printf "@.  single-insert speedups: %s → %s@."
    (String.concat ", "
       (List.rev_map
          (fun (h, s) -> Printf.sprintf "h=%d %.1fx" h s)
          !single_insert))
    (if meets_5x then "≥5x at h≥300" else "BELOW the 5x target at h≥300");
  let json =
    Json.Obj
      [
        ( "config",
          Json.Obj
            [
              ("seed", Json.Num (float_of_int cfg.E.seed));
              ("scale", Json.Num cfg.E.scale);
              ("runs", Json.Num (float_of_int runs));
            ] );
        ("meets_5x_single_insert", Json.Bool meets_5x);
        ("rows", Json.Arr rows);
      ]
  in
  let oc = open_out incr_file in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote incremental-maintenance sweep to %s@.@." incr_file;
  if !mismatch then begin
    Format.eprintf
      "incr sweep: a patched answer diverged from the fresh evaluation@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 1f: the shard-router sweep (id "shard").

   End-to-end service latency and throughput over the binary-framed wire
   at shards ∈ {1, 2, 3}: one router + N worker processes per point, a
   mixed loop of [basic] fan-out queries, with every reply byte-compared
   against the shards = 1 reply of the same query (the per-mapping merge
   determinism contract), recorded as "identical_to_shards1" in
   BENCH_shard.json.  Repeats hit the workers' answer caches, so the
   numbers isolate the wire + fan-out + merge overhead rather than
   re-measuring evaluation cost. *)

let shard_file = "BENCH_shard.json"

let run_shard quick =
  let module Json = Urm_util.Json in
  let module Client = Urm_service.Client in
  let module Router = Urm_shard.Router in
  let shard_sweep = [ 1; 2; 3 ] in
  let requests = if quick then 60 else 300 in
  let queries = [ "Q1"; "Q2"; "Q4" ] in
  let session = ("session", Json.Str "bench-shard") in
  let member name json =
    Option.value ~default:Json.Null (Json.member name json)
  in
  let answer_key json =
    Json.to_string
      (Json.Obj
         [ ("answers", member "answers" json); ("null", member "null_prob" json) ])
  in
  Format.printf
    "=== shard-router sweep (basic fan-out, shards ∈ {%s}, %d requests) ===@.@."
    (String.concat ", " (List.map string_of_int shard_sweep))
    requests;
  let mismatch = ref false in
  let baseline : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let rows =
    List.map
      (fun shards ->
        match Router.start { Router.default_config with shards } with
        | Error m ->
          Format.eprintf "shard sweep: cannot start the %d-shard router: %s@."
            shards m;
          exit 1
        | Ok router ->
          let c = Client.connect ~framed:true ~port:(Router.port router) () in
          (match
             Client.call c ~op:"open-session"
               [
                 session;
                 ("target", Json.Str "Excel");
                 ("seed", Json.Num 7.);
                 ("scale", Json.Num 0.01);
                 ("h", Json.Num 8.);
               ]
           with
          | Ok _ -> ()
          | Error (code, m) ->
            Format.eprintf "shard sweep: open-session: %s: %s@." code m;
            exit 1);
          let query q =
            Client.call c ~op:"query"
              [ session; ("query", Json.Str q); ("algorithm", Json.Str "basic") ]
          in
          let identical = ref true in
          let check q reply =
            let key = answer_key reply in
            match Hashtbl.find_opt baseline q with
            | None -> Hashtbl.replace baseline q key
            | Some expected ->
              if not (String.equal key expected) then begin
                identical := false;
                mismatch := true;
                Format.eprintf
                  "shard sweep: %s at shards = %d diverged from shards = 1@." q
                  shards
              end
          in
          (* Warm pass: populate/ check the baselines outside the timing. *)
          List.iter
            (fun q ->
              match query q with
              | Ok reply -> check q reply
              | Error (code, m) ->
                Format.eprintf "shard sweep: warm %s: %s: %s@." q code m;
                exit 1)
            queries;
          let lats = ref [] in
          let t0 = Unix.gettimeofday () in
          for i = 0 to requests - 1 do
            let q = List.nth queries (i mod List.length queries) in
            let s = Unix.gettimeofday () in
            (match query q with
            | Ok reply -> check q reply
            | Error (code, m) ->
              mismatch := true;
              Format.eprintf "shard sweep: %s at shards = %d: %s: %s@." q shards
                code m);
            lats := (Unix.gettimeofday () -. s) :: !lats
          done;
          let seconds = Unix.gettimeofday () -. t0 in
          (match Client.call c ~op:"shutdown" [] with
          | Ok _ -> ()
          | Error (code, m) ->
            Format.eprintf "shard sweep: shutdown: %s: %s@." code m);
          Client.close c;
          Router.wait router;
          let p pq = Urm_util.Stats.percentile_or_zero pq !lats in
          let p50 = p 0.5 and p95 = p 0.95 and p99 = p 0.99 in
          let req_per_s = float_of_int requests /. seconds in
          Format.printf
            "  shards = %d  %3d requests in %6.2fs  %7.0f req/s  p50 %.4fs  \
             p95 %.4fs  p99 %.4fs  %s@."
            shards requests seconds req_per_s p50 p95 p99
            (if !identical then "bit-identical" else "DIVERGED");
          Json.Obj
            [
              ("shards", Json.Num (float_of_int shards));
              ("requests", Json.Num (float_of_int requests));
              ("seconds", Json.Num seconds);
              ("req_per_s", Json.Num req_per_s);
              ("p50", Json.Num p50);
              ("p95", Json.Num p95);
              ("p99", Json.Num p99);
              ("identical_to_shards1", Json.Bool !identical);
            ])
      shard_sweep
  in
  let json =
    Json.Obj
      [
        ( "config",
          Json.Obj
            [
              ("seed", Json.Num 7.);
              ("scale", Json.Num 0.01);
              ("h", Json.Num 8.);
              ("queries", Json.Arr (List.map (fun q -> Json.Str q) queries));
            ] );
        ("rows", Json.Arr rows);
      ]
  in
  let oc = open_out shard_file in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote shard-router sweep to %s@.@." shard_file;
  if !mismatch then begin
    Format.eprintf "shard sweep: a sharded answer diverged from shards = 1@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks, one per table/figure. *)

let micro_tests () =
  (* One shared miniature workload so each staged closure is cheap enough
     for Bechamel to sample many times. *)
  let p = Urm_workload.Pipeline.create ~seed:3 ~scale:0.01 () in
  let excel = Urm_workload.Targets.excel in
  let ctx q_name =
    let target, q = Urm_workload.Queries.by_name q_name in
    (Urm_workload.Pipeline.ctx p target, q, Urm_workload.Pipeline.mappings p target ~h:10)
  in
  let run alg q_name () =
    let ctx, q, ms = ctx q_name in
    ignore (Urm.Algorithms.run alg ctx q ms)
  in
  let excel_mappings = Urm_workload.Pipeline.mappings p excel ~h:10 in
  let stage = Bechamel.Staged.stage in
  [
    ("fig9a", stage (fun () -> ignore (Urm.Overlap.o_ratio excel_mappings)));
    ("fig10a", stage (run Urm.Algorithms.Basic "Q1"));
    ("fig10b", stage (run Urm.Algorithms.Ebasic "Q4"));
    ("fig10c", stage (run Urm.Algorithms.Emqo "Q4"));
    ("fig11a", stage (run (Urm.Algorithms.Osharing Urm.Eunit.Sef) "Q1"));
    ("fig11b", stage (run Urm.Algorithms.Qsharing "Q4"));
    ("fig11c", stage (run (Urm.Algorithms.Osharing Urm.Eunit.Sef) "Q4"));
    ( "fig11d",
      let q = Urm_workload.Sweeps.selections 3 in
      let c = Urm_workload.Pipeline.ctx p excel in
      stage (fun () -> ignore (Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) c q excel_mappings)) );
    ( "fig11e",
      let q = Urm_workload.Sweeps.self_joins 1 in
      let c = Urm_workload.Pipeline.ctx p excel in
      stage (fun () -> ignore (Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) c q excel_mappings)) );
    ("fig11f", stage (run (Urm.Algorithms.Osharing Urm.Eunit.Random) "Q5"));
    ("tab4", stage (run (Urm.Algorithms.Osharing Urm.Eunit.Snf) "Q4"));
    ( "fig12a",
      let c, q, ms = ctx "Q4" in
      stage (fun () -> ignore (Urm.Topk.run ~k:1 c q ms)) );
    ( "fig12b",
      let c, q, ms = ctx "Q7" in
      stage (fun () -> ignore (Urm.Topk.run ~k:1 c q ms)) );
    ( "fig12c",
      let c, q, ms = ctx "Q10" in
      stage (fun () -> ignore (Urm.Topk.run ~k:1 c q ms)) );
    ( "abl-memo",
      let c, q, ms = ctx "Q3" in
      stage (fun () -> ignore (Urm.Osharing.run ~use_memo:false c q ms)) );
    ( "abl-index",
      let c, q, ms = ctx "Q1" in
      stage (fun () -> ignore (Urm.Algorithms.run Urm.Algorithms.Ebasic c q ms)) );
    ( "abl-ptree",
      let _, q, ms = ctx "Q4" in
      let target, _ = Urm_workload.Queries.by_name "Q4" in
      stage (fun () -> ignore (Urm.Ptree.partition target q ms)) );
  ]

let run_bechamel only =
  let open Bechamel in
  let tests =
    micro_tests ()
    |> List.filter (fun (id, _) -> wanted only id)
    |> List.map (fun (id, staged) -> Test.make ~name:id staged)
  in
  if tests <> [] then begin
    Format.printf "=== bechamel micro-benchmarks (one per table/figure) ===@.";
    let grouped = Test.make_grouped ~name:"urm" ~fmt:"%s/%s" tests in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
    in
    let raws = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raws in
    let rows =
      Hashtbl.fold
        (fun name result acc ->
          let est =
            match Analyze.OLS.estimates result with
            | Some [ e ] -> e
            | _ -> Float.nan
          in
          (name, est) :: acc)
        results []
      |> List.sort compare
    in
    List.iter
      (fun (name, ns) ->
        if Float.is_nan ns then Format.printf "  %-24s (no estimate)@." name
        else if ns > 1e9 then Format.printf "  %-24s %10.3f  s/run@." name (ns /. 1e9)
        else if ns > 1e6 then Format.printf "  %-24s %10.3f ms/run@." name (ns /. 1e6)
        else Format.printf "  %-24s %10.3f µs/run@." name (ns /. 1e3))
      rows
  end

let () =
  let only, quick, skip_bechamel, skip_tables, engine = parse_args () in
  if not skip_tables then run_tables only quick;
  if not skip_tables && wanted only "par" then run_par quick;
  if not skip_tables && wanted only "eval" then run_eval quick engine;
  if not skip_tables && wanted only "share" then run_share quick;
  if not skip_tables && wanted only "anytime" then run_anytime quick;
  if not skip_tables && wanted only "incr" then run_incr quick;
  if not skip_tables && wanted only "shard" then run_shard quick;
  if not skip_bechamel then run_bechamel only
