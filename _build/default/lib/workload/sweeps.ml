open Urm_relalg
open Urm

let selection_pool =
  [
    (Query.at "PO" "telephone", Value.Str Urm_tpch.Gen.phone_hot);
    (Query.at "PO" "priority", Value.Int 2);
    (Query.at "PO" "invoiceTo", Value.Str Urm_tpch.Gen.person_hot);
    (Query.at "PO" "deliverToStreet", Value.Str Urm_tpch.Gen.street_hot);
    (Query.at "PO" "company", Value.Str Urm_tpch.Gen.company_hot);
  ]

let selections n =
  if n < 1 || n > List.length selection_pool then
    invalid_arg "Sweeps.selections: n out of range";
  Query.make
    ~name:(Printf.sprintf "sel-%d" n)
    ~target:Targets.excel
    ~aliases:[ ("PO", "PO") ]
    ~selections:(List.filteri (fun i _ -> i < n) selection_pool)
    ()

let self_joins n =
  if n < 1 || n > 3 then invalid_arg "Sweeps.self_joins: n out of range";
  let aliases = List.init (n + 1) (fun i -> (Printf.sprintf "PO%d" (i + 1), "PO")) in
  let joins =
    List.init n (fun i ->
        ( Query.at (Printf.sprintf "PO%d" (i + 1)) "orderNum",
          Query.at (Printf.sprintf "PO%d" (i + 2)) "orderNum" ))
  in
  Query.make
    ~name:(Printf.sprintf "selfjoin-%d" n)
    ~target:Targets.excel ~aliases
    ~selections:[ (Query.at "PO1" "telephone", Value.Str Urm_tpch.Gen.phone_hot) ]
    ~joins ()
