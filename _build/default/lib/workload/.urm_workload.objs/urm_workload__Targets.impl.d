lib/workload/targets.ml: Convert List Schema Urm_relalg Urm_xmlconv Xtree
