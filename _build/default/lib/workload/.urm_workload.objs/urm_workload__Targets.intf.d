lib/workload/targets.mli: Urm_relalg Urm_xmlconv
