lib/workload/queries.ml: List Query String Targets Urm Urm_relalg Urm_tpch Value
