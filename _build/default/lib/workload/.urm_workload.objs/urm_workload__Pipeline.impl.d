lib/workload/pipeline.ml: Hashtbl String Urm Urm_relalg Urm_tpch
