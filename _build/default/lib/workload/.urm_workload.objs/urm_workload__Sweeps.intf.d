lib/workload/sweeps.mli: Urm
