lib/workload/queries.mli: Urm Urm_relalg
