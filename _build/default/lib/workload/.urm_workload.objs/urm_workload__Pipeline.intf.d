lib/workload/pipeline.mli: Urm Urm_relalg
