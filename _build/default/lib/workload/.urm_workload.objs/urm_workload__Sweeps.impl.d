lib/workload/sweeps.ml: List Printf Query Targets Urm Urm_relalg Urm_tpch Value
