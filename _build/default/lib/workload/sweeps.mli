(** Parametric query families for the paper's query-size experiments
    (Fig. 11(d): 1–5 selection operators; Fig. 11(e): 1–3 Cartesian
    product / self-join operators). *)

(** [selections n] a query with the first [n] (1 ≤ n ≤ 5) of the fixed
    Excel PO selections: telephone, priority, invoiceTo, deliverToStreet,
    company. *)
val selections : int -> Urm.Query.t

(** [self_joins n] a query over [n + 1] PO aliases chained by
    [orderNum] self-join predicates — [n] Cartesian-product operators in
    the paper's operator counting — plus one telephone selection to bound
    intermediate sizes. *)
val self_joins : int -> Urm.Query.t
