open Urm_relalg
open Urm_xmlconv

let s = Schema.TStr
let i = Schema.TInt
let f = Schema.TFloat
let el = Xtree.element
let one c = (Xtree.One, c)
let many c = (Xtree.Many, c)

(* Excel: 48 attributes (PO 30 + Item 18). *)
let excel_xml =
  el "Excel"
    ~children:
      [
        many
          (el "PO" ~key:"orderNum"
             ~attrs:
               [
                 ("orderNum", s); ("orderDate", s); ("status", s); ("priority", i);
                 ("telephone", s); ("fax", s); ("company", s); ("contactName", s);
                 ("total", f); ("subtotal", f); ("taxAmount", f);
                 ("shippingCost", f); ("currency", s); ("paymentTerms", s);
                 ("approvedBy", s); ("createdBy", s); ("remark", s);
                 ("customerNum", i); ("segment", s); ("region", s);
               ]
             ~children:
               [
                 one
                   (el "invoice"
                      ~attrs:
                        [
                          ("to", s); ("street", s); ("city", s); ("zip", s);
                          ("country", s);
                        ]);
                 one
                   (el "deliverTo" ~text:s
                      ~attrs:
                        [ ("street", s); ("city", s); ("zip", s); ("country", s) ]);
                 many
                   (el "Item"
                      ~attrs:
                        [
                          ("itemNum", s); ("orderNum", s); ("description", s);
                          ("quantity", i); ("unitPrice", f); ("extendedPrice", f);
                          ("discount", f); ("tax", f); ("lineNumber", i);
                          ("brand", s); ("itemType", s); ("size", i);
                          ("container", s); ("supplierNum", i); ("availQty", i);
                          ("shipDate", s); ("receiptDate", s); ("itemStatus", s);
                        ]);
               ]);
      ]

(* Noris: 66 attributes (PO 36 + Item 30). *)
let noris_xml =
  el "Noris"
    ~children:
      [
        many
          (el "PO" ~key:"orderNum"
             ~attrs:
               [
                 ("orderNum", s); ("purchaseDate", s); ("orderStatus", s);
                 ("urgency", i); ("telephone", s); ("mobile", s);
                 ("faxNumber", s); ("company", s); ("contactPerson", s);
                 ("totalAmount", f); ("netAmount", f); ("vatAmount", f);
                 ("freightCost", f); ("currencyCode", s); ("termsOfPayment", s);
                 ("approver", s); ("author", s); ("note", s); ("clientNum", i);
                 ("clientCategory", s); ("clientRegion", s);
                 ("departmentCode", s); ("projectCode", s); ("warehouseCode", s);
                 ("carrierName", s); ("trackingNum", s);
               ]
             ~children:
               [
                 one
                   (el "invoice"
                      ~attrs:
                        [
                          ("to", s); ("address", s); ("city", s);
                          ("postcode", s); ("nation", s);
                        ]);
                 one
                   (el "deliverTo" ~text:s
                      ~attrs:
                        [
                          ("street", s); ("city", s); ("postcode", s);
                          ("nation", s);
                        ]);
                 many
                   (el "Item"
                      ~attrs:
                        [
                          ("itemNum", s); ("orderNum", s); ("itemDescription", s);
                          ("quantity", i); ("unitPrice", f); ("lineTotal", f);
                          ("rebate", f); ("vatRate", f); ("positionNum", i);
                          ("makerBrand", s); ("itemKind", s); ("itemSize", i);
                          ("packaging", s); ("vendorNum", i); ("stockQty", i);
                          ("dispatchDate", s); ("arrivalDate", s);
                          ("lineStatus", s); ("weight", f); ("volume", f);
                          ("color", s); ("material", s); ("originCountry", s);
                          ("hsCode", s); ("serialNum", s); ("batchNum", s);
                          ("warrantyMonths", i); ("returnFlag", s);
                          ("inspectionFlag", s); ("remarks", s);
                        ]);
               ]);
      ]

(* Paragon: 69 attributes (PO 36 + Item 33). *)
let paragon_xml =
  el "Paragon"
    ~children:
      [
        many
          (el "PO" ~key:"orderNum"
             ~attrs:
               [
                 ("orderNum", s); ("orderDate", s); ("state", s);
                 ("urgencyLevel", i); ("telephone", s); ("faxNum", s);
                 ("organisation", s); ("attentionOf", s); ("invoiceTo", s);
                 ("grandTotal", f); ("merchandiseTotal", f); ("salesTax", f);
                 ("freightCharge", f); ("currencyType", s); ("paymentMethod", s);
                 ("authorisedBy", s); ("enteredBy", s);
                 ("specialInstructions", s); ("accountNum", i);
                 ("marketSegment", s); ("salesRegion", s); ("divisionCode", s);
                 ("costCenter", s); ("shippingMethod", s); ("promiseDate", s);
               ]
             ~children:
               [
                 one
                   (el "billTo" ~text:s
                      ~attrs:
                        [
                          ("address", s); ("city", s); ("zipcode", s);
                          ("country", s);
                        ]);
                 one
                   (el "shipTo" ~text:s
                      ~attrs:
                        [
                          ("phone", s); ("address", s); ("city", s);
                          ("zipcode", s); ("country", s);
                        ]);
                 many
                   (el "Item"
                      ~attrs:
                        [
                          ("itemNum", s); ("orderNum", s);
                          ("productDescription", s); ("orderQty", i);
                          ("price", f); ("amount", f); ("discountPct", f);
                          ("taxPct", f); ("lineSeq", i); ("brandName", s);
                          ("productType", s); ("productSize", i);
                          ("packageType", s); ("supplierCode", i);
                          ("onHandQty", i); ("shipmentDate", s);
                          ("deliveryDate", s); ("rowStatus", s);
                          ("unitWeight", f); ("unitVolume", f); ("colorCode", s);
                          ("materialType", s); ("countryOfOrigin", s);
                          ("tariffCode", s); ("serialNumber", s);
                          ("lotNumber", s); ("guaranteePeriod", i);
                          ("returnable", s); ("qualityFlag", s); ("notes", s);
                          ("uom", s); ("listPrice", f); ("netPrice", f);
                        ]);
               ]);
      ]

let excel = Convert.inline excel_xml
let noris = Convert.inline noris_xml
let paragon = Convert.inline paragon_xml
let all = [ ("Excel", excel); ("Noris", noris); ("Paragon", paragon) ]
let by_name name = List.assoc name all
