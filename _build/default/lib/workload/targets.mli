(** The three purchase-order target schemas of the paper's evaluation
    (§VIII-A): Excel (48 attributes), Noris (66) and Paragon (69).

    As in the paper, the schemas are XML documents (they ship with COMA++
    in XML form) and their relational ([PO], [Item]) versions are derived
    by shared inlining ({!Urm_xmlconv.Convert.inline}, the paper's [23]) —
    which is where composed attribute names like [deliverToStreet] and
    [billToAddress] come from. *)

(** The XML schema trees. *)
val excel_xml : Urm_xmlconv.Xtree.t

val noris_xml : Urm_xmlconv.Xtree.t
val paragon_xml : Urm_xmlconv.Xtree.t

(** The inlined relational forms used by the query workload. *)
val excel : Urm_relalg.Schema.t

val noris : Urm_relalg.Schema.t
val paragon : Urm_relalg.Schema.t

(** All three, with their paper names. *)
val all : (string * Urm_relalg.Schema.t) list

(** [by_name "Excel"] raises [Not_found] for unknown names. *)
val by_name : string -> Urm_relalg.Schema.t
