open Urm_relalg
open Urm

let at = Query.at
let str v = Value.Str v
let int v = Value.Int v
let phone = str Urm_tpch.Gen.phone_hot
let mary = str Urm_tpch.Gen.person_hot
let abc = str Urm_tpch.Gen.company_hot
let central = str Urm_tpch.Gen.street_hot
let item1 = str Urm_tpch.Gen.part_hot
let order1 = str Urm_tpch.Gen.order_hot

(* Q1 (Excel): σ_telephone σ_priority=2 σ_invoiceTo=Mary PO *)
let q1 =
  Query.make ~name:"Q1" ~target:Targets.excel
    ~aliases:[ ("PO", "PO") ]
    ~selections:
      [
        (at "PO" "telephone", phone);
        (at "PO" "priority", int 2);
        (at "PO" "invoiceTo", mary);
      ]
    ()

(* Q2 (Excel): σ_quantity=10 σ_itemNum=00001 (PO × Item) *)
let q2 =
  Query.make ~name:"Q2" ~target:Targets.excel
    ~aliases:[ ("PO", "PO"); ("Item", "Item") ]
    ~selections:[ (at "Item" "quantity", int 10); (at "Item" "itemNum", item1) ]
    ()

(* Q3 (Excel): σ_PO.orderNum=Item1.orderNum (σ_telephone σ_Item1.itemNum PO ×
   Item1) × σ_Item1.orderNum=Item2.orderNum (Item1 × Item2) *)
let q3 =
  Query.make ~name:"Q3" ~target:Targets.excel
    ~aliases:[ ("PO", "PO"); ("Item1", "Item"); ("Item2", "Item") ]
    ~selections:[ (at "PO" "telephone", phone); (at "Item1" "itemNum", item1) ]
    ~joins:
      [
        (at "PO" "orderNum", at "Item1" "orderNum");
        (at "Item1" "orderNum", at "Item2" "orderNum");
      ]
    ()

(* Q4 (Excel, the default query): σ_Item1.itemNum=00001
   ((σ_PO1.orderNum=PO2.orderNum PO1 × PO2) ×
    (σ_Item1.orderNum=Item2.orderNum Item1 × Item2)) *)
let q4 =
  Query.make ~name:"Q4" ~target:Targets.excel
    ~aliases:
      [ ("PO1", "PO"); ("PO2", "PO"); ("Item1", "Item"); ("Item2", "Item") ]
    ~selections:[ (at "Item1" "itemNum", item1) ]
    ~joins:
      [
        (at "PO1" "orderNum", at "PO2" "orderNum");
        (at "Item1" "orderNum", at "Item2" "orderNum");
      ]
    ()

(* Q5 (Excel): COUNT(σ_telephone σ_company=ABC σ_invoiceTo=Mary
   σ_deliverToStreet=Central PO) *)
let q5 =
  Query.make ~name:"Q5" ~target:Targets.excel
    ~aliases:[ ("PO", "PO") ]
    ~selections:
      [
        (at "PO" "telephone", phone);
        (at "PO" "company", abc);
        (at "PO" "invoiceTo", mary);
        (at "PO" "deliverToStreet", central);
      ]
    ~aggregate:Query.Count ()

(* Q6 (Noris): σ_telephone σ_invoiceTo=Mary σ_deliverToStreet=Central PO *)
let q6 =
  Query.make ~name:"Q6" ~target:Targets.noris
    ~aliases:[ ("PO", "PO") ]
    ~selections:
      [
        (at "PO" "telephone", phone);
        (at "PO" "invoiceTo", mary);
        (at "PO" "deliverToStreet", central);
      ]
    ()

(* Q7 (Noris): π_itemNum,unitPrice σ_orderNum=00001 σ_deliverTo=Mary
   σ_deliverToStreet=Central (PO × Item) *)
let q7 =
  Query.make ~name:"Q7" ~target:Targets.noris
    ~aliases:[ ("PO", "PO"); ("Item", "Item") ]
    ~selections:
      [
        (at "PO" "orderNum", order1);
        (at "PO" "deliverTo", mary);
        (at "PO" "deliverToStreet", central);
      ]
    ~projection:[ at "Item" "itemNum"; at "Item" "unitPrice" ]
    ()

(* Q8 (Paragon): σ_billTo=Mary σ_shipToAddress=ABC σ_shipToPhone PO *)
let q8 =
  Query.make ~name:"Q8" ~target:Targets.paragon
    ~aliases:[ ("PO", "PO") ]
    ~selections:
      [
        (at "PO" "billTo", mary);
        (at "PO" "shipToAddress", abc);
        (at "PO" "shipToPhone", phone);
      ]
    ()

(* Q9 (Paragon): SUM(price)(σ_telephone σ_billToAddress=ABC σ_itemNum=00001
   (PO × Item)) *)
let q9 =
  Query.make ~name:"Q9" ~target:Targets.paragon
    ~aliases:[ ("PO", "PO"); ("Item", "Item") ]
    ~selections:
      [
        (at "PO" "telephone", phone);
        (at "PO" "billToAddress", abc);
        (at "Item" "itemNum", item1);
      ]
    ~aggregate:(Query.Sum (at "Item" "price"))
    ()

(* Q10 (Paragon): COUNT(σ_invoiceTo=Mary σ_billToAddress=ABC (PO × Item)) *)
let q10 =
  Query.make ~name:"Q10" ~target:Targets.paragon
    ~aliases:[ ("PO", "PO"); ("Item", "Item") ]
    ~selections:
      [ (at "PO" "invoiceTo", mary); (at "PO" "billToAddress", abc) ]
    ~aggregate:Query.Count ()

let all =
  [
    ("Q1", Targets.excel, q1);
    ("Q2", Targets.excel, q2);
    ("Q3", Targets.excel, q3);
    ("Q4", Targets.excel, q4);
    ("Q5", Targets.excel, q5);
    ("Q6", Targets.noris, q6);
    ("Q7", Targets.noris, q7);
    ("Q8", Targets.paragon, q8);
    ("Q9", Targets.paragon, q9);
    ("Q10", Targets.paragon, q10);
  ]

let by_name name =
  let _, schema, q = List.find (fun (n, _, _) -> String.equal n name) all in
  (schema, q)

let default = by_name "Q4"
