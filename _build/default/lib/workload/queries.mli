(** The ten target queries of the paper's Table III.

    Constants reference the planted values of the {!Urm_tpch.Gen} instance
    (["335-1736"], ["Mary"], ["ABC"], ["Central"], ["00001"], priority 2,
    quantity 10).  Q1–Q5 target Excel, Q6–Q7 Noris, Q8–Q10 Paragon; the
    paper's default query is Q4. *)

val q1 : Urm.Query.t
val q2 : Urm.Query.t
val q3 : Urm.Query.t
val q4 : Urm.Query.t
val q5 : Urm.Query.t
val q6 : Urm.Query.t
val q7 : Urm.Query.t
val q8 : Urm.Query.t
val q9 : Urm.Query.t
val q10 : Urm.Query.t

(** All ten with their target schema, in order: [("Q1", excel, q1); …]. *)
val all : (string * Urm_relalg.Schema.t * Urm.Query.t) list

(** [by_name "Q4"].  Raises [Not_found] for unknown names. *)
val by_name : string -> Urm_relalg.Schema.t * Urm.Query.t

(** The paper's default query: Q4 with the Excel schema. *)
val default : Urm_relalg.Schema.t * Urm.Query.t
