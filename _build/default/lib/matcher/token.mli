(** Attribute-name tokenisation.

    Splits on underscores, dots, digits and camelCase boundaries, strips
    TPC-H-style relation prefixes (["c_"], ["ps_"], …), and greedily
    decomposes compound words against the domain vocabulary (so
    ["orderpriority"] becomes [["order"; "priority"]]). *)

(** [split name] lower-cased tokens of a (possibly qualified) attribute
    name; a leading token of length ≤ 2 coming from an [x_] or [xy_] prefix
    is dropped. *)
val split : string -> string list

(** [decompose vocabulary token] greedy longest-prefix decomposition of
    [token] into vocabulary words; [\[token\]] if no decomposition covers
    it completely. *)
val decompose : string list -> string -> string list

(** [tokens name] = [split] followed by vocabulary [decompose] of each token
    against {!Synonyms.vocabulary}, with stop-tokens (["to"], ["of"], …)
    removed. *)
val tokens : string -> string list
