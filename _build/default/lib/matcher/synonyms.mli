(** Purchase-order domain synonym dictionary.

    Plays the role of COMA++'s auxiliary thesaurus: tokens in the same group
    are treated as equal by the token-level similarity. *)

(** [canon token] is the canonical representative of [token]'s synonym
    group, or [token] itself when it belongs to none. *)
val canon : string -> string

(** All words known to the dictionary (used for compound decomposition). *)
val vocabulary : string list

(** The raw groups, first element is the canonical representative. *)
val groups : string list list
