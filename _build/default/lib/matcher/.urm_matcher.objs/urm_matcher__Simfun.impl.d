lib/matcher/simfun.ml: Array Hashtbl List String
