lib/matcher/simfun.mli:
