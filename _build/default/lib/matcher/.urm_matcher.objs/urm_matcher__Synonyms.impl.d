lib/matcher/synonyms.ml: Hashtbl List String
