lib/matcher/token.ml: Buffer Hashtbl List String Synonyms
