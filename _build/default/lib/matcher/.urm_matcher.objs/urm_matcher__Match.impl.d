lib/matcher/match.ml: Float Format Hashtbl List Simfun String Synonyms Token Urm_relalg
