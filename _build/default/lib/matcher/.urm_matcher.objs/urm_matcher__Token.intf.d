lib/matcher/token.mli:
