lib/matcher/match.mli: Format Urm_relalg
