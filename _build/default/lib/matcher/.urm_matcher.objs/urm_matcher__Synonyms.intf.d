lib/matcher/synonyms.mli:
