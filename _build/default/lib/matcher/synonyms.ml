let groups =
  [
    [ "phone"; "telephone"; "tel"; "mobile"; "fax" ];
    [ "name"; "clerk"; "person"; "contact" ];
    [ "invoice"; "bill" ];
    [ "deliver"; "ship"; "dispatch" ];
    [ "street"; "road" ];
    [ "address"; "addr"; "location"; "company" ];
    [ "num"; "number"; "key"; "id"; "no"; "code" ];
    [ "item"; "part"; "product"; "article" ];
    [ "order"; "po"; "purchase" ];
    [ "quantity"; "qty"; "amount" ];
    [ "price"; "cost"; "total"; "charge" ];
    [ "unit"; "each" ];
    [ "priority"; "urgency" ];
    [ "status"; "state" ];
    [ "date"; "day"; "time" ];
    [ "nation"; "country" ];
    [ "region"; "area" ];
    [ "customer"; "client"; "buyer"; "cust" ];
    [ "supplier"; "vendor"; "seller"; "supp" ];
    [ "segment"; "market"; "mktsegment"; "category" ];
    [ "brand"; "make"; "label" ];
    [ "type"; "kind" ];
    [ "container"; "package"; "box" ];
    [ "discount"; "rebate" ];
    [ "line"; "row" ];
    [ "avail"; "available"; "stock" ];
    [ "extended"; "ext" ];
    [ "retail"; "list" ];
    [ "size"; "dimension" ];
    [ "tax"; "duty" ];
  ]

let table =
  let h = Hashtbl.create 128 in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | canon :: _ -> List.iter (fun w -> Hashtbl.replace h w canon) group)
    groups;
  h

let canon token =
  match Hashtbl.find_opt table token with
  | Some c -> c
  | None ->
    (* Plural fallback: "phones" canonicalises like "phone". *)
    let l = String.length token in
    if l > 2 && token.[l - 1] = 's' then begin
      let stem = String.sub token 0 (l - 1) in
      match Hashtbl.find_opt table stem with Some c -> c | None -> token
    end
    else token

let vocabulary =
  let words = List.concat groups in
  let extra =
    [ "supply"; "ship"; "mode"; "flag"; "return"; "receipt"; "commit"; "pack" ]
  in
  List.sort_uniq String.compare (words @ extra)
