type candidate = { src : string; dst : string; score : float }

let pp_candidate ppf c =
  Format.fprintf ppf "%s ↔ %s (%.3f)" c.src c.dst c.score

let clamp01 x = Float.max 0. (Float.min 1. x)

let canon_tokens name = List.map Synonyms.canon (Token.tokens name)

let token_score a b =
  let ta = canon_tokens a and tb = canon_tokens b in
  match (ta, tb) with
  | [], _ | _, [] -> 0.
  | _ ->
    let j = Simfun.jaccard ta tb in
    let inter =
      List.length (List.filter (fun t -> List.mem t tb) (List.sort_uniq compare ta))
    in
    let overlap =
      float_of_int inter /. float_of_int (min (List.length (List.sort_uniq compare ta))
                                            (List.length (List.sort_uniq compare tb)))
    in
    (0.5 *. j) +. (0.5 *. overlap)

let squash name =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char '_' name))

let char_score a b =
  let a = squash a and b = squash b in
  (0.5 *. Simfun.lev_sim a b) +. (0.5 *. Simfun.ngram_sim ~n:3 a b)

let name_score a b = Float.max (token_score a b) (char_score a b)

(* Deterministic noise in [-0.005, 0.005]: makes tied scores distinguishable
   (as a real matcher's would be) without a stateful PRNG, so results do not
   depend on pair enumeration order.  Kept of the same order as the context
   bonus so that the k-best matchings vary across all ambiguous attributes
   rather than only the very cheapest ties. *)
let jitter src dst =
  let h = Hashtbl.hash (src, dst, "urm-jitter") land 0xFFFF in
  ((float_of_int h /. 65535.) -. 0.5) *. 0.012

let pair_score ~src_rel ~src ~dst_rel ~dst =
  let name = name_score src dst in
  let context = token_score src_rel dst_rel in
  clamp01 ((0.9 *. name) +. (0.02 *. context) +. jitter (src_rel ^ "." ^ src) (dst_rel ^ "." ^ dst))

let candidates ?(threshold = 0.5) ?(slack = 0.2) ?(per_attr = 4) ~source ~target
    () =
  let module S = Urm_relalg.Schema in
  let out = ref [] in
  List.iter
    (fun (tr : S.rel) ->
      List.iter
        (fun (ta : S.attr) ->
          let for_attr = ref [] in
          List.iter
            (fun (sr : S.rel) ->
              List.iter
                (fun (sa : S.attr) ->
                  let score =
                    pair_score ~src_rel:sr.S.rname ~src:sa.S.aname
                      ~dst_rel:tr.S.rname ~dst:ta.S.aname
                  in
                  if score >= threshold then
                    for_attr :=
                      {
                        src = S.qualify sr.S.rname sa.S.aname;
                        dst = S.qualify tr.S.rname ta.S.aname;
                        score;
                      }
                      :: !for_attr)
                sr.S.attrs)
            source.S.rels;
          (* Per-attribute pruning: keep only plausible alternatives. *)
          let ranked =
            List.sort (fun a b -> Float.compare b.score a.score) !for_attr
          in
          match ranked with
          | [] -> ()
          | best :: _ ->
            List.iteri
              (fun i c ->
                if i < per_attr && c.score >= best.score -. slack then
                  out := c :: !out)
              ranked)
        tr.S.attrs)
    target.S.rels;
  List.sort (fun a b -> Float.compare b.score a.score) !out
