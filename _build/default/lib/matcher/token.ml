let stop_tokens = [ "to"; "of"; "the"; "at"; "by"; "for" ]

let is_upper c = c >= 'A' && c <= 'Z'
let is_alpha c = (c >= 'a' && c <= 'z') || is_upper c

(* Raw splitting on separators, digits and camelCase boundaries. *)
let raw_split name =
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun i c ->
      if not (is_alpha c) then flush ()
      else begin
        if is_upper c && i > 0 && not (is_upper name.[i - 1]) then flush ();
        Buffer.add_char buf c
      end)
    name;
  flush ();
  List.rev !out

let split name =
  match raw_split name with
  | first :: (_ :: _ as rest)
    when String.length first <= 2 && String.contains name '_' ->
    (* TPC-H style relation prefix: c_, ps_, o_, ... *)
    rest
  | tokens -> tokens

let decompose vocabulary token =
  let vocab = List.filter (fun w -> String.length w >= 2) vocabulary in
  let starts_at s i w =
    let lw = String.length w in
    i + lw <= String.length s && String.equal (String.sub s i lw) w
  in
  let rec go i acc =
    if i >= String.length token then Some (List.rev acc)
    else if i = String.length token - 1 && token.[i] = 's' && acc <> [] then
      (* Trailing plural: "orders" decomposes like "order". *)
      Some (List.rev acc)
    else begin
      (* Longest vocabulary word starting at position i. *)
      let best =
        List.fold_left
          (fun best w ->
            if starts_at token i w then
              match best with
              | Some b when String.length b >= String.length w -> best
              | _ -> Some w
            else best)
          None vocab
      in
      match best with
      | None -> None
      | Some w -> go (i + String.length w) (w :: acc)
    end
  in
  match go 0 [] with
  | Some (_ :: _ :: _ as words) -> words
  | Some _ | None -> [ token ]

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let tokens name =
  split name
  |> List.concat_map (decompose Synonyms.vocabulary)
  |> List.filter (fun t -> not (List.mem t stop_tokens))
  |> dedup
