let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let lev_sim a b =
  let ml = max (String.length a) (String.length b) in
  if ml = 0 then 1.
  else 1. -. (float_of_int (levenshtein a b) /. float_of_int ml)

let ngrams n s =
  let l = String.length s in
  if l < n then [ s ]
  else List.init (l - n + 1) (fun i -> String.sub s i n)

let set_of l =
  let h = Hashtbl.create (List.length l) in
  List.iter (fun x -> Hashtbl.replace h x ()) l;
  h

let jaccard a b =
  match (a, b) with
  | [], [] -> 1.
  | _ ->
    let sa = set_of a and sb = set_of b in
    let inter =
      Hashtbl.fold (fun k () acc -> if Hashtbl.mem sb k then acc + 1 else acc) sa 0
    in
    let union = Hashtbl.length sa + Hashtbl.length sb - inter in
    if union = 0 then 1. else float_of_int inter /. float_of_int union

let ngram_sim ~n a b = jaccard (ngrams n a) (ngrams n b)

let prefix_sim a b =
  let la = String.length a and lb = String.length b in
  let ml = max la lb in
  if ml = 0 then 1.
  else begin
    let rec common i =
      if i < la && i < lb && a.[i] = b.[i] then common (i + 1) else i
    in
    float_of_int (common 0) /. float_of_int ml
  end
