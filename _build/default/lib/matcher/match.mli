(** The matcher proper: scores every (target attribute, source attribute)
    pair and emits thresholded correspondence candidates.

    This is the COMA++ substitute documented in DESIGN.md: the downstream
    pipeline (k-best bipartite matching → possible mappings) consumes only
    the [(src, dst, score)] triples produced here. *)

type candidate = {
  src : string;  (** qualified source attribute, e.g. ["customer.c_phone"] *)
  dst : string;  (** qualified target attribute, e.g. ["PO.telephone"] *)
  score : float;  (** similarity in [\[0,1\]] *)
}

val pp_candidate : Format.formatter -> candidate -> unit

(** [name_score a b] similarity of two bare attribute names: the better of
    token-level similarity (synonym-canonicalised, blending Jaccard and
    overlap coefficient) and character-level similarity (Levenshtein +
    trigrams). *)
val name_score : string -> string -> float

(** [pair_score ~src_rel ~src ~dst_rel ~dst] full score for a pair of bare
    names plus their relation context, including the deterministic per-pair
    jitter that models matcher noise. *)
val pair_score : src_rel:string -> src:string -> dst_rel:string -> dst:string -> float

(** [candidates ?threshold ?slack ?per_attr ~source ~target ()] pairs with
    score ≥ [threshold] (default [0.5]), pruned per target attribute to the
    [per_attr] best (default [4]) within [slack] (default [0.2]) of that
    attribute's best score — i.e. only {e plausible alternatives} survive,
    the way a matcher's top-k candidate lists do.  Best-first. *)
val candidates :
  ?threshold:float ->
  ?slack:float ->
  ?per_attr:int ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  candidate list
