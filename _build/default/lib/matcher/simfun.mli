(** String-similarity primitives used by the schema matcher. *)

(** [levenshtein a b] classic edit distance (insert/delete/substitute). *)
val levenshtein : string -> string -> int

(** [lev_sim a b] is [1 - d/max_len], in [\[0,1\]]; [1.] for two empty
    strings. *)
val lev_sim : string -> string -> float

(** [ngram_sim ~n a b] Jaccard similarity of the character n-gram sets of
    [a] and [b] (strings shorter than [n] contribute themselves). *)
val ngram_sim : n:int -> string -> string -> float

(** [jaccard a b] Jaccard similarity of two string lists viewed as sets. *)
val jaccard : string list -> string list -> float

(** [prefix_sim a b] length of the common prefix over the longer length. *)
val prefix_sim : string -> string -> float
