(** Murty's ranking algorithm (1968): enumerate the k best assignments in
    non-increasing order of total weight.

    The paper derives its set of h possible mappings by running "a bipartite
    matching algorithm [10],[9]" that returns the h mappings with the highest
    similarity scores; this module is that component.  Partial matchings are
    supported by treating non-positive weights as absent edges: internally
    the weight matrix is padded with zero-weight dummy columns so every row
    may remain unmatched, and dummy/zero assignments are dropped from the
    reported pairs. *)

type assignment = {
  pairs : (int * int) list;  (** matched (row, col) pairs, real edges only *)
  score : float;  (** total weight of [pairs] *)
}

val pp_assignment : Format.formatter -> assignment -> unit

(** [k_best ~weights ~k] the up-to-[k] best assignments, best first, with
    strictly distinct pair sets.  [weights.(i).(j) <= 0.] means "no edge".
    Rows and columns may be of any relative size. *)
val k_best : weights:float array array -> k:int -> assignment list
