lib/bipartite/murty.ml: Array Float Format Hashtbl Hungarian List Printf String Urm_util
