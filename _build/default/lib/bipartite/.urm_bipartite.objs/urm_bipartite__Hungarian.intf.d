lib/bipartite/hungarian.mli:
