lib/bipartite/murty.mli: Format
