lib/bipartite/hungarian.ml: Array Float
