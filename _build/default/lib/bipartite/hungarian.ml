(* Shortest-augmenting-path Hungarian algorithm with row/column potentials.
   Internally 1-indexed (index 0 is the virtual "unassigned" marker), the
   standard formulation; see e.g. Burkard, Dell'Amico & Martello,
   "Assignment Problems", ch. 4. *)

let solve_min cost =
  let n = Array.length cost in
  if n = 0 then ([||], 0.)
  else begin
    let m = Array.length cost.(0) in
    if n > m then invalid_arg "Hungarian.solve_min: more rows than columns";
    Array.iter
      (fun row ->
        if Array.length row <> m then
          invalid_arg "Hungarian.solve_min: ragged cost matrix")
      cost;
    let u = Array.make (n + 1) 0. in
    let v = Array.make (m + 1) 0. in
    let p = Array.make (m + 1) 0 in
    (* p.(j) = row assigned to column j, 0 if free *)
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) infinity in
      let used = Array.make (m + 1) false in
      let continue = ref true in
      while !continue do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref 0 in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Augment along the alternating path. *)
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total = ref 0. in
    Array.iteri (fun i j -> total := !total +. cost.(i).(j)) assignment;
    (assignment, !total)
  end

let solve_max weights =
  let n = Array.length weights in
  if n = 0 then ([||], 0.)
  else begin
    let maxw =
      Array.fold_left
        (fun acc row -> Array.fold_left Float.max acc row)
        neg_infinity weights
    in
    let cost = Array.map (Array.map (fun w -> maxw -. w)) weights in
    let assignment, _ = solve_min cost in
    let total = ref 0. in
    Array.iteri (fun i j -> total := !total +. weights.(i).(j)) assignment;
    (assignment, !total)
  end
