(** Hungarian algorithm (Kuhn–Munkres, shortest-augmenting-path variant,
    O(n³)) for the assignment problem.

    This is the substrate for generating the paper's possible mappings: the
    best one-to-one matching between target and source attributes by total
    similarity score, ranked into the k best by {!Murty}. *)

(** [solve_min cost] minimises total cost over perfect assignments of rows
    to columns.  [cost] must be rectangular with [rows ≤ cols]; every row is
    assigned a distinct column.  Returns [(assignment, total)] where
    [assignment.(i)] is the column of row [i]. *)
val solve_min : float array array -> int array * float

(** [solve_max weights] maximises total weight.  Same shape requirements as
    {!solve_min}. *)
val solve_max : float array array -> int array * float
