type assignment = { pairs : (int * int) list; score : float }

let pp_assignment ppf a =
  Format.fprintf ppf "score=%.4f {%s}" a.score
    (String.concat "; "
       (List.map (fun (i, j) -> Printf.sprintf "%d→%d" i j) a.pairs))

let big = 1e6

(* A constrained subproblem in Murty's partition.  Column [-1] denotes "row
   left unmatched" (assigned to a dummy column). *)
type subproblem = { forced : (int * int) list; forbidden : (int * int) list }

(* Solve one subproblem.  Returns the full row assignment (col or -1 per
   row) and the real-edge score, or None when constraints are unsatisfiable. *)
let solve_sub weights n m sub =
  let cols = m + n in
  let w = Array.make_matrix n cols (-.big) in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if weights.(i).(j) > 0. then w.(i).(j) <- weights.(i).(j)
    done;
    for k = 0 to n - 1 do
      w.(i).(m + k) <- 0.
    done
  done;
  let forbid_row_real i = for j = 0 to m - 1 do w.(i).(j) <- -.big done in
  let forbid_row_dummy i = for k = 0 to n - 1 do w.(i).(m + k) <- -.big done in
  List.iter
    (fun (i, j) ->
      if j = -1 then forbid_row_real i
      else begin
        (* Row i must take column j: block every alternative for both. *)
        for j' = 0 to cols - 1 do
          if j' <> j then w.(i).(j') <- -.big
        done;
        for i' = 0 to n - 1 do
          if i' <> i then w.(i').(j) <- -.big
        done
      end)
    sub.forced;
  List.iter
    (fun (i, j) -> if j = -1 then forbid_row_dummy i else w.(i).(j) <- -.big)
    sub.forbidden;
  let row_assignment, _ = Hungarian.solve_max w in
  let feasible = ref true in
  let pairs = ref [] in
  let score = ref 0. in
  Array.iteri
    (fun i j ->
      if w.(i).(j) <= -.(big /. 2.) then feasible := false
      else if j < m then begin
        pairs := (i, j) :: !pairs;
        score := !score +. weights.(i).(j)
      end)
    row_assignment;
  if not !feasible then None
  else begin
    let full = Array.to_list (Array.mapi (fun i j -> (i, if j < m then j else -1)) row_assignment) in
    Some (full, { pairs = List.rev !pairs; score = !score })
  end

let key_of pairs = List.sort compare pairs

let k_best ~weights ~k =
  let n = Array.length weights in
  if n = 0 || k <= 0 then []
  else begin
    let m = Array.length weights.(0) in
    let cmp (_, _, a) (_, _, b) = Float.compare b.score a.score in
    let queue = Urm_util.Heap.create cmp in
    let push sub =
      match solve_sub weights n m sub with
      | Some (full, a) -> Urm_util.Heap.push queue (full, sub, a)
      | None -> ()
    in
    push { forced = []; forbidden = [] };
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let found = ref 0 in
    while !found < k && not (Urm_util.Heap.is_empty queue) do
      let full, sub, a = Urm_util.Heap.pop queue in
      let key = key_of a.pairs in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := a :: !out;
        incr found;
        (* Murty partition: for each position t of the full row assignment,
           force the first t rows to their columns and forbid the t-th. *)
        let rec branch prefix = function
          | [] -> ()
          | (i, j) :: rest ->
            push
              {
                forced = List.rev_append prefix sub.forced;
                forbidden = (i, j) :: sub.forbidden;
              };
            branch ((i, j) :: prefix) rest
        in
        branch [] full
      end
    done;
    List.rev !out
  end
