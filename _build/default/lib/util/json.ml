type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string json =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_into buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Bad of string

let parse_exn text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (text.[!pos] = ' ' || text.[!pos] = '\t' || text.[!pos] = '\n'
        || text.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = text.[!pos] in
        incr pos;
        if c = '"' then ()
        else if c = '\\' then begin
          if !pos >= n then fail "dangling escape";
          let e = text.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "bad unicode escape";
            let hex = String.sub text !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad unicode escape"
            in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else
              (* Encode the BMP code point as UTF-8. *)
              if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      end
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char text.[!pos] do
      incr pos
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        expect '}';
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          if peek () = Some ',' then begin
            expect ',';
            fields ((key, v) :: acc)
          end
          else begin
            expect '}';
            List.rev ((key, v) :: acc)
          end
        in
        Obj (fields [])
      end
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        expect ']';
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          if peek () = Some ',' then begin
            expect ',';
            items (v :: acc)
          end
          else begin
            expect ']';
            List.rev (v :: acc)
          end
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then raise (Bad (Printf.sprintf "trailing input at offset %d" !pos));
    v
  | exception Bad msg -> failwith ("Json: " ^ msg)

let parse_exn text =
  try parse_exn text with Bad msg -> failwith ("Json: " ^ msg)

let parse text = try Ok (parse_exn text) with Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr l -> l | _ -> failwith "Json.to_list: not an array"
let to_float = function Num f -> f | _ -> failwith "Json.to_float: not a number"

let to_int j =
  let f = to_float j in
  if Float.is_integer f then int_of_float f else failwith "Json.to_int: not an integer"

let to_str = function Str s -> s | _ -> failwith "Json.to_str: not a string"
