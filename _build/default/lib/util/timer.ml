let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_only f = snd (time f)

let repeat ~warmup ~runs f =
  assert (runs > 0);
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let total = ref 0. in
  for _ = 1 to runs do
    total := !total +. time_only f
  done;
  !total /. float_of_int runs

module Stopwatch = struct
  type t = { mutable acc : float; mutable started : float option }

  let create () = { acc = 0.; started = None }

  let start t =
    match t.started with
    | Some _ -> invalid_arg "Stopwatch.start: already running"
    | None -> t.started <- Some (now ())

  let stop t =
    match t.started with
    | None -> invalid_arg "Stopwatch.stop: not running"
    | Some t0 ->
      t.acc <- t.acc +. (now () -. t0);
      t.started <- None

  let elapsed t =
    match t.started with
    | None -> t.acc
    | Some t0 -> t.acc +. (now () -. t0)

  let reset t =
    t.acc <- 0.;
    t.started <- None
end
