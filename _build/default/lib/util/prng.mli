(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (data generation, matcher
    noise, the [Random] operator-selection strategy) draws from an explicit
    {!t} so that experiments are reproducible bit-for-bit from a seed.  The
    generator is SplitMix64 (Steele et al., OOPSLA 2014): tiny state, good
    statistical quality, and cheap independent streams via {!split}. *)

type t

(** [create seed] makes a fresh generator from a 64-bit seed. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)
val split : t -> t

(** [next t] is the next raw 64-bit output. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val in_range : t -> int -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [pick t arr] is a uniformly random element of [arr].
    Requires [arr] non-empty. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] is a uniformly random element of [l].
    Requires [l] non-empty. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [gaussian t ~mu ~sigma] draws from N(mu, sigma²) (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [zipf t ~n ~theta] draws a rank in [\[1, n\]] from a Zipf distribution
    with skew [theta] ([theta = 0.] is uniform).  O(n) per draw; prefer
    {!Zipf} for repeated sampling. *)
val zipf : t -> n:int -> theta:float -> int

(** Precomputed Zipf sampler: O(n) setup, O(log n) per draw. *)
module Zipf : sig
  type prng := t
  type t

  val create : n:int -> theta:float -> t

  (** [draw z rng] is a rank in [\[1, n\]]. *)
  val draw : t -> prng -> int
end
