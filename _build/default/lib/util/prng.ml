type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bound is tiny w.r.t. 2^62 so the
     bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p
let pick t arr = arr.(int t (Array.length arr))

let pick_list t l =
  let n = List.length l in
  List.nth l (int t n)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let gaussian t ~mu ~sigma =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

module Zipf = struct
  type prng = t
  type t = { cdf : float array }

  let create ~n ~theta =
    assert (n > 0);
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) (max 0. theta));
      cdf.(i) <- !acc
    done;
    let total = !acc in
    Array.iteri (fun i v -> cdf.(i) <- v /. total) cdf;
    { cdf }

  let draw z (rng : prng) =
    let x = float rng in
    let n = Array.length z.cdf in
    (* Binary search for the first index with cdf >= x. *)
    let rec go lo hi =
      if lo >= hi then lo + 1
      else
        let mid = (lo + hi) / 2 in
        if z.cdf.(mid) >= x then go lo mid else go (mid + 1) hi
    in
    go 0 (n - 1)
end

let zipf t ~n ~theta =
  let z = Zipf.create ~n ~theta in
  Zipf.draw z t
