(** A minimal JSON representation with emitter and parser — enough to
    persist mapping sets and experiment results without external
    dependencies.

    Supports the full JSON grammar except that numbers are represented as
    OCaml floats (integers round-trip exactly up to 2⁵³) and unicode
    escapes decode only the ASCII range. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace). *)
val to_string : t -> string

(** [parse text] or [Error message]. *)
val parse : string -> (t, string) result

(** [parse_exn text] raises [Failure]. *)
val parse_exn : string -> t

(** [member key json] field of an object. *)
val member : string -> t -> t option

(** Coercions; raise [Failure] on shape mismatch. *)
val to_list : t -> t list

val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
