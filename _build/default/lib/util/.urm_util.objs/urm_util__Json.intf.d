lib/util/json.mli:
