lib/util/stats.mli:
