lib/util/prng.mli:
