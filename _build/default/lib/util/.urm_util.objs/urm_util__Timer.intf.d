lib/util/timer.mli:
