lib/util/heap.mli:
