type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * string * Value.t
  | CmpCols of cmp * string * string
  | And of t * t
  | Or of t * t
  | Not of t

let eq col v = Cmp (Eq, col, v)
let eq_cols a b = CmpCols (Eq, a, b)

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec conjuncts = function
  | True -> []
  | And (a, b) -> conjuncts a @ conjuncts b
  | (Cmp _ | CmpCols _ | Or _ | Not _) as p -> [ p ]

let columns p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      out := c :: !out
    end
  in
  let rec go = function
    | True -> ()
    | Cmp (_, c, _) -> add c
    | CmpCols (_, a, b) ->
      add a;
      add b
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
  in
  go p;
  List.rev !out

let test cmp a b =
  let c = Value.compare a b in
  match cmp with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compile rel p =
  let pos c = Relation.col_pos rel c in
  let rec build = function
    | True -> fun _ -> true
    | Cmp (cmp, c, v) ->
      let i = pos c in
      fun row -> test cmp row.(i) v
    | CmpCols (cmp, a, b) ->
      let i = pos a and j = pos b in
      fun row -> test cmp row.(i) row.(j)
    | And (a, b) ->
      let fa = build a and fb = build b in
      fun row -> fa row && fb row
    | Or (a, b) ->
      let fa = build a and fb = build b in
      fun row -> fa row || fb row
    | Not a ->
      let fa = build a in
      fun row -> not (fa row)
  in
  build p

let eval_on rel p = Relation.filter rel (compile rel p)

let rec rename p f =
  match p with
  | True -> True
  | Cmp (cmp, c, v) -> Cmp (cmp, f c, v)
  | CmpCols (cmp, a, b) -> CmpCols (cmp, f a, f b)
  | And (a, b) -> And (rename a f, rename b f)
  | Or (a, b) -> Or (rename a f, rename b f)
  | Not a -> Not (rename a f)

let equal a b = a = b
let compare = Stdlib.compare

let cmp_str = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Cmp (c, col, v) -> Format.fprintf ppf "%s%s%a" col (cmp_str c) Value.pp v
  | CmpCols (c, a, b) -> Format.fprintf ppf "%s%s%s" a (cmp_str c) b
  | And (a, b) -> Format.fprintf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a ∨ %a)" pp a pp b
  | Not a -> Format.fprintf ppf "¬%a" pp a

let to_string p = Format.asprintf "%a" pp p
