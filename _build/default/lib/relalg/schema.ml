type ty = TInt | TFloat | TStr

type attr = { aname : string; ty : ty }

type rel = { rname : string; attrs : attr list }

type t = { sname : string; rels : rel list }

let make sname rels =
  let rel_of (rname, attrs) =
    { rname; attrs = List.map (fun (aname, ty) -> { aname; ty }) attrs }
  in
  { sname; rels = List.map rel_of rels }

let find_rel s name = List.find (fun r -> String.equal r.rname name) s.rels
let mem_rel s name = List.exists (fun r -> String.equal r.rname name) s.rels
let qualify rname aname = rname ^ "." ^ aname

let split_qualified q =
  match String.index_opt q '.' with
  | None -> invalid_arg ("Schema.split_qualified: " ^ q)
  | Some i ->
    (String.sub q 0 i, String.sub q (i + 1) (String.length q - i - 1))

let rel_attrs r = List.map (fun a -> qualify r.rname a.aname) r.attrs
let qualified_attrs s = List.concat_map rel_attrs s.rels
let attr_count s = List.fold_left (fun n r -> n + List.length r.attrs) 0 s.rels

let type_of s qattr =
  let rname, aname = split_qualified qattr in
  let r = find_rel s rname in
  (List.find (fun a -> String.equal a.aname aname) r.attrs).ty

let rel_of_attr s qattr =
  let rname, _ = split_qualified qattr in
  find_rel s rname

let pp ppf s =
  Format.fprintf ppf "@[<v>schema %s:" s.sname;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  %s(%s)" r.rname
        (String.concat ", " (List.map (fun a -> a.aname) r.attrs)))
    s.rels;
  Format.fprintf ppf "@]"
