(** Typed atomic values stored in relations.

    [Null] is used for target attributes that have no correspondence under a
    given mapping (see DESIGN.md, semantics decision 2); it compares equal to
    itself so that duplicate answers aggregate correctly. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool

(** [approx_equal ?rel a b] like {!equal} but floats compare within relative
    tolerance [rel] (default [1e-9]) scaled by magnitude — useful when the
    same aggregate is computed by differently-ordered float summations. *)
val approx_equal : ?rel:float -> t -> t -> bool

(** Total order: [Null < Int < Float < Str], numeric/lexicographic within a
    constructor. *)
val compare : t -> t -> int

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [is_null v] *)
val is_null : t -> bool

(** Numeric view used by SUM/AVG; [None] for [Null] and [Str]. *)
val to_float_opt : t -> float option

(** [add a b] numeric addition with Null treated as the SQL-style absorbing
    missing value: [add Null x = x].  Raises [Invalid_argument] on strings. *)
val add : t -> t -> t
