type column_stats = {
  rows : int;
  distinct : int;
  null_count : int;
  mcv : (Value.t * int) list;
}

type t = {
  columns : (string * string, column_stats) Hashtbl.t;
  row_counts : (string, int) Hashtbl.t;
}

let build ?(mcv_size = 16) cat =
  let columns = Hashtbl.create 64 in
  let row_counts = Hashtbl.create 16 in
  List.iter
    (fun rname ->
      let rel = Catalog.find cat rname in
      Hashtbl.replace row_counts rname (Relation.cardinality rel);
      List.iteri
        (fun ci col ->
          let counts : (Value.t, int) Hashtbl.t = Hashtbl.create 256 in
          let nulls = ref 0 in
          Relation.iter
            (fun row ->
              let v = row.(ci) in
              if Value.is_null v then incr nulls
              else
                Hashtbl.replace counts v
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
            rel;
          let all = Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts [] in
          let sorted =
            List.sort
              (fun (va, a) (vb, b) ->
                let c = Int.compare b a in
                if c <> 0 then c else Value.compare va vb)
              all
          in
          let mcv = List.filteri (fun i _ -> i < mcv_size) sorted in
          Hashtbl.replace columns (rname, col)
            {
              rows = Relation.cardinality rel;
              distinct = Hashtbl.length counts;
              null_count = !nulls;
              mcv;
            })
        (Relation.cols rel))
    (Catalog.names cat);
  { columns; row_counts }

let column t rel col = Hashtbl.find t.columns (rel, col)

let cardinality t rel =
  match Hashtbl.find_opt t.row_counts rel with Some n -> n | None -> raise Not_found

let eq_selectivity t rel col v =
  match Hashtbl.find_opt t.columns (rel, col) with
  | None -> 0.1 (* unknown column: fall back to the generic guess *)
  | Some cs ->
    if cs.rows = 0 then 0.
    else begin
      match List.assoc_opt v cs.mcv with
      | Some freq -> float_of_int freq /. float_of_int cs.rows
      | None ->
        let mcv_rows = List.fold_left (fun acc (_, c) -> acc + c) 0 cs.mcv in
        let rest_rows = cs.rows - mcv_rows - cs.null_count in
        let rest_distinct = max 1 (cs.distinct - List.length cs.mcv) in
        Float.max 0.
          (float_of_int rest_rows
          /. float_of_int rest_distinct
          /. float_of_int cs.rows)
    end

let join_selectivity t rel_a col_a rel_b col_b =
  let ndv rel col =
    match Hashtbl.find_opt t.columns (rel, col) with
    | Some cs -> max 1 cs.distinct
    | None -> 10
  in
  1. /. float_of_int (max (ndv rel_a col_a) (ndv rel_b col_b))
