(** Column statistics and cardinality estimation for stored relations.

    Per column: row count, number of distinct values, and an equi-width
    histogram over the most frequent values.  Used by the MQO planner's
    cost model in place of fixed selectivity guesses; exposed for any other
    cost-based component. *)

type column_stats = {
  rows : int;
  distinct : int;
  null_count : int;
  mcv : (Value.t * int) list;  (** most common values with frequencies, descending *)
}

type t

(** [build cat] collects statistics for every column of every stored
    relation in [cat] (single full scan per relation). *)
val build : ?mcv_size:int -> Catalog.t -> t

(** [column t rel col] raises [Not_found] for unknown relation/column. *)
val column : t -> string -> string -> column_stats

(** [eq_selectivity t rel col v] estimated fraction of rows with
    [col = v]: the MCV frequency when [v] is tracked, else uniform over the
    remaining distinct values.  In [\[0, 1\]]. *)
val eq_selectivity : t -> string -> string -> Value.t -> float

(** [join_selectivity t relA colA relB colB] the classic
    [1 / max(ndv(A), ndv(B))]. *)
val join_selectivity : t -> string -> string -> string -> string -> float

(** [cardinality t rel] stored row count. *)
val cardinality : t -> string -> int
