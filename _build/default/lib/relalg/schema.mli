(** Logical schemas: named sets of relations with typed attributes.

    Both the source schema (the TPC-H-style purchase-order schema) and the
    three target schemas (Excel, Noris, Paragon) are values of {!t}.  The
    matcher and the mapping model work with {e qualified} attribute names of
    the form ["relation.attribute"]. *)

type ty = TInt | TFloat | TStr

type attr = { aname : string; ty : ty }

type rel = { rname : string; attrs : attr list }

type t = { sname : string; rels : rel list }

val make : string -> (string * (string * ty) list) list -> t

(** [find_rel s name] raises [Not_found] when absent. *)
val find_rel : t -> string -> rel

val mem_rel : t -> string -> bool

(** [qualify rel attr] is ["rel.attr"]. *)
val qualify : string -> string -> string

(** [split_qualified "r.a"] is [("r", "a")].  Raises [Invalid_argument] when
    the name has no dot. *)
val split_qualified : string -> string * string

(** All qualified attribute names of the schema, in declaration order. *)
val qualified_attrs : t -> string list

(** Qualified attribute names of one relation. *)
val rel_attrs : rel -> string list

(** [attr_count s] is the total number of attributes across all relations. *)
val attr_count : t -> int

(** [type_of s qattr] is the type of a qualified attribute.
    Raises [Not_found] when absent. *)
val type_of : t -> string -> ty

(** [rel_of_attr s qattr] is the relation declaring [qattr].
    Raises [Not_found] when absent. *)
val rel_of_attr : t -> string -> rel

val pp : Format.formatter -> t -> unit
