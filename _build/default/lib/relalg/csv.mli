(** CSV import/export for relations and catalogs.

    RFC-4180-style: comma separator, double-quote quoting with ["" ]
    escaping, first row is the header.  On import, values are typed against
    a {!Schema.rel} when one is given (empty fields become [Null]);
    untyped import infers [Int]/[Float]/[Str] per field. *)

(** [write_string rel] the CSV text of a relation (header + rows). *)
val write_string : Relation.t -> string

(** [write_file path rel]. *)
val write_file : string -> Relation.t -> unit

(** [read_string ?schema text] parses CSV text into a relation.  With
    [schema], the header must contain exactly the relation's attributes (in
    any order) and values are coerced to the declared types.
    Raises [Failure] on malformed input or coercion errors. *)
val read_string : ?schema:Schema.rel -> string -> Relation.t

(** [read_file ?schema path]. *)
val read_file : ?schema:Schema.rel -> string -> Relation.t

(** [export_catalog dir cat] writes every relation of [cat] to
    [dir/<name>.csv] (creates [dir] if needed). *)
val export_catalog : string -> Catalog.t -> unit

(** [import_catalog ~schema dir] reads [dir/<rel>.csv] for every relation of
    [schema] into a fresh catalog.  Raises [Failure] on missing files. *)
val import_catalog : schema:Schema.t -> string -> Catalog.t
