(** Row predicates over named columns.

    The paper's workload only needs equality selections and equi-join
    predicates; comparison operators and boolean connectives are provided so
    the engine is usable as a general substrate. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * string * Value.t  (** column ⊛ constant *)
  | CmpCols of cmp * string * string  (** column ⊛ column *)
  | And of t * t
  | Or of t * t
  | Not of t

(** [eq col v] is [Cmp (Eq, col, v)]. *)
val eq : string -> Value.t -> t

(** [eq_cols a b] is [CmpCols (Eq, a, b)]. *)
val eq_cols : string -> string -> t

(** [conj ps] folds a list into nested [And]; [True] for the empty list. *)
val conj : t list -> t

(** [conjuncts p] decomposes nested [And] into a flat list, dropping [True];
    inverse of {!conj} up to association. *)
val conjuncts : t -> t list

(** Columns referenced by the predicate, without duplicates, in first-use
    order. *)
val columns : t -> string list

(** [compile rel p] is a fast row test with column positions resolved against
    [rel]'s header.  Raises [Not_found] if a column is missing. *)
val compile : Relation.t -> t -> Value.t array -> bool

(** [eval_on rel p] filters [rel] by [p]. *)
val eval_on : Relation.t -> t -> Relation.t

(** [rename p f] renames every column reference through [f]. *)
val rename : t -> (string -> string) -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
