lib/relalg/stats_est.mli: Catalog Value
