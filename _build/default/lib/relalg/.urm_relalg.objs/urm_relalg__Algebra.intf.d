lib/relalg/algebra.mli: Format Pred Relation
