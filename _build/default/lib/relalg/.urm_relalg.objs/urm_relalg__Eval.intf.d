lib/relalg/eval.mli: Algebra Catalog Relation
