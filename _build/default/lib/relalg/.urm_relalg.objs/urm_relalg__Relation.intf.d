lib/relalg/relation.mli: Format Hashtbl Value
