lib/relalg/pred.mli: Format Relation Value
