lib/relalg/eval.ml: Algebra Array Catalog Hashtbl List Pred Relation String Value
