lib/relalg/algebra.ml: Format Hashtbl List Pred Relation String
