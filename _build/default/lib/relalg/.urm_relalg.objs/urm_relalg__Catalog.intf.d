lib/relalg/catalog.mli: Hashtbl Relation Value
