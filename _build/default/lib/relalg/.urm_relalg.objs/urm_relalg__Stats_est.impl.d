lib/relalg/stats_est.ml: Array Catalog Float Hashtbl Int List Option Relation Value
