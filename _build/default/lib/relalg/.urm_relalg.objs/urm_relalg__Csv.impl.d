lib/relalg/csv.ml: Array Buffer Catalog Filename Float Fun List Printf Relation Schema String Sys Value
