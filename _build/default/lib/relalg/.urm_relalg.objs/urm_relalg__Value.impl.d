lib/relalg/value.ml: Float Format Hashtbl Int String
