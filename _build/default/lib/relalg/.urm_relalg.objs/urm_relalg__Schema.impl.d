lib/relalg/schema.ml: Format List String
