lib/relalg/pred.ml: Array Format Hashtbl List Relation Stdlib Value
