lib/relalg/relation.ml: Array Format Hashtbl List Seq String Value
