lib/relalg/csv.mli: Catalog Relation Schema
