lib/relalg/catalog.ml: Array Hashtbl List Relation String Value
