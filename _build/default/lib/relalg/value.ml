type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | (Null | Int _ | Float _ | Str _), _ -> false

let approx_equal ?(rel = 1e-9) a b =
  match (a, b) with
  | Float x, Float y ->
    abs_float (x -. y) <= rel *. Float.max 1. (Float.max (abs_float x) (abs_float y))
  | _ -> equal a b

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash (1, x)
  | Float x -> Hashtbl.hash (2, x)
  | Str x -> Hashtbl.hash (3, x)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Str x -> Format.fprintf ppf "%s" x

let to_string v = Format.asprintf "%a" pp v
let is_null = function Null -> true | Int _ | Float _ | Str _ -> false

let to_float_opt = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Null | Str _ -> None

let add a b =
  match (a, b) with
  | Null, x | x, Null -> x
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y | Float y, Int x -> Float (float_of_int x +. y)
  | Str _, _ | _, Str _ -> invalid_arg "Value.add: string operand"
