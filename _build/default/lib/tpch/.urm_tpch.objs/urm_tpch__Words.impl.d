lib/tpch/words.ml:
