lib/tpch/gen.mli: Urm_relalg
