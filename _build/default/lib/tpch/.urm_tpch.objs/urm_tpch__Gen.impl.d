lib/tpch/gen.ml: Array Catalog Float List Printf Relation Schema Urm_relalg Urm_util Value Words
