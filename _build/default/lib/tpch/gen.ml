open Urm_relalg

let phone_hot = "335-1736"
let person_hot = "Mary"
let company_hot = "ABC"
let street_hot = "Central"
let part_hot = "00001"
let order_hot = "00001"
let pad5 n = Printf.sprintf "%05d" n
let default_scale = 0.05

let schema =
  Schema.make "TPCH"
    [
      ("region", [ ("r_regionkey", Schema.TInt); ("r_name", Schema.TStr) ]);
      ( "nation",
        [
          ("n_nationkey", Schema.TInt);
          ("n_name", Schema.TStr);
          ("n_regionkey", Schema.TInt);
        ] );
      ( "supplier",
        [
          ("s_suppkey", Schema.TInt);
          ("s_name", Schema.TStr);
          ("s_address", Schema.TStr);
          ("s_nationkey", Schema.TInt);
          ("s_phone", Schema.TStr);
        ] );
      ( "customer",
        [
          ("c_custkey", Schema.TInt);
          ("c_name", Schema.TStr);
          ("c_address", Schema.TStr);
          ("c_nationkey", Schema.TInt);
          ("c_phone", Schema.TStr);
          ("c_mktsegment", Schema.TStr);
        ] );
      ( "part",
        [
          ("p_partkey", Schema.TStr);
          ("p_name", Schema.TStr);
          ("p_brand", Schema.TStr);
          ("p_type", Schema.TStr);
          ("p_size", Schema.TInt);
          ("p_retailprice", Schema.TFloat);
          ("p_container", Schema.TStr);
        ] );
      ( "partsupp",
        [
          ("ps_partkey", Schema.TStr);
          ("ps_suppkey", Schema.TInt);
          ("ps_availqty", Schema.TInt);
          ("ps_supplycost", Schema.TFloat);
        ] );
      ( "orders",
        [
          ("o_orderkey", Schema.TStr);
          ("o_custkey", Schema.TInt);
          ("o_orderstatus", Schema.TStr);
          ("o_totalprice", Schema.TFloat);
          ("o_orderdate", Schema.TStr);
          ("o_orderpriority", Schema.TInt);
          ("o_delivername", Schema.TStr);
          ("o_contactphone", Schema.TStr);
          ("o_invoicename", Schema.TStr);
          ("o_deliverstreet", Schema.TStr);
        ] );
      ( "lineitem",
        [
          ("l_orderkey", Schema.TStr);
          ("l_partkey", Schema.TStr);
          ("l_suppkey", Schema.TInt);
          ("l_linenumber", Schema.TInt);
          ("l_quantity", Schema.TInt);
          ("l_extendedprice", Schema.TFloat);
          ("l_discount", Schema.TFloat);
          ("l_tax", Schema.TFloat);
          ("l_status", Schema.TStr);
        ] );
    ]

let base_cardinality = function
  | "region" -> 5
  | "nation" -> 25
  | "supplier" -> 100
  | "customer" -> 1500
  | "part" -> 2000
  | "partsupp" -> 8000
  | "orders" -> 15000
  | "lineitem" -> 60000 (* emergent: ~4 lineitems per order *)
  | r -> invalid_arg ("Gen.base_cardinality: " ^ r)

let scaled scale rel = max 1 (int_of_float (Float.round (float_of_int (base_cardinality rel) *. scale)))

(* Value helpers.  Hot constants are planted with fixed probabilities; the
   resulting selectivities are what give the workload queries non-trivial
   result sizes at every scale. *)

let phone rng =
  if Urm_util.Prng.bool rng 0.04 then phone_hot
  else Printf.sprintf "%03d-%04d" (Urm_util.Prng.in_range rng 100 999)
         (Urm_util.Prng.in_range rng 1000 9999)

let person rng =
  if Urm_util.Prng.bool rng 0.05 then person_hot
  else Urm_util.Prng.pick rng Words.first_names

let address rng =
  if Urm_util.Prng.bool rng 0.05 then company_hot
  else
    Printf.sprintf "%d %s St, %s"
      (Urm_util.Prng.in_range rng 1 999)
      (Urm_util.Prng.pick rng Words.streets)
      (Urm_util.Prng.pick rng Words.cities)

let street rng =
  if Urm_util.Prng.bool rng 0.08 then street_hot
  else Urm_util.Prng.pick rng Words.streets

let date rng =
  Printf.sprintf "%04d-%02d-%02d"
    (Urm_util.Prng.in_range rng 1992 1998)
    (Urm_util.Prng.in_range rng 1 12)
    (Urm_util.Prng.in_range rng 1 28)

let money rng lo hi = Float.round (Urm_util.Prng.float rng *. (hi -. lo) *. 100.) /. 100. +. lo

let generate ?(seed = 42) ~scale () =
  let master = Urm_util.Prng.create seed in
  let stream () = Urm_util.Prng.split master in
  let cat = Catalog.create () in
  let add name rel = Catalog.add cat name rel in
  let cols rname =
    List.map (fun a -> a.Schema.aname) (Schema.find_rel schema rname).Schema.attrs
  in

  (* region *)
  let n_region = min (scaled scale "region") (Array.length Words.regions) in
  let region_rows =
    List.init n_region (fun i ->
        [| Value.Int i; Value.Str Words.regions.(i mod Array.length Words.regions) |])
  in
  add "region" (Relation.create ~cols:(cols "region") region_rows);

  (* nation *)
  let rng = stream () in
  let n_nation = min (scaled scale "nation") (Array.length Words.nations) in
  let n_nation = max 1 n_nation in
  let nation_rows =
    List.init n_nation (fun i ->
        [|
          Value.Int i;
          Value.Str Words.nations.(i mod Array.length Words.nations);
          Value.Int (Urm_util.Prng.int rng (max 1 n_region));
        |])
  in
  add "nation" (Relation.create ~cols:(cols "nation") nation_rows);

  (* supplier *)
  let rng = stream () in
  let n_supp = scaled scale "supplier" in
  let supplier_rows =
    List.init n_supp (fun i ->
        let hero = i = 0 in
        [|
          Value.Int (i + 1);
          Value.Str (if hero then person_hot else person rng);
          Value.Str (if hero then company_hot else address rng);
          Value.Int (Urm_util.Prng.int rng n_nation);
          Value.Str (if hero then phone_hot else phone rng);
        |])
  in
  add "supplier" (Relation.create ~cols:(cols "supplier") supplier_rows);

  (* customer *)
  let rng = stream () in
  let n_cust = scaled scale "customer" in
  let customer_rows =
    List.init n_cust (fun i ->
        let hero = i = 0 in
        [|
          Value.Int (i + 1);
          Value.Str (if hero then person_hot else person rng);
          Value.Str (if hero then company_hot else address rng);
          Value.Int (Urm_util.Prng.int rng n_nation);
          Value.Str (if hero then phone_hot else phone rng);
          Value.Str (Urm_util.Prng.pick rng Words.segments);
        |])
  in
  add "customer" (Relation.create ~cols:(cols "customer") customer_rows);

  (* part *)
  let rng = stream () in
  let n_part = scaled scale "part" in
  let part_rows =
    List.init n_part (fun i ->
        [|
          Value.Str (pad5 (i + 1));
          Value.Str
            (Urm_util.Prng.pick rng Words.part_adjectives
            ^ " "
            ^ Urm_util.Prng.pick rng Words.part_nouns);
          Value.Str (Urm_util.Prng.pick rng Words.brands);
          Value.Str (Urm_util.Prng.pick rng Words.part_types);
          Value.Int (Urm_util.Prng.in_range rng 1 50);
          Value.Float (money rng 1. 200.);
          Value.Str (Urm_util.Prng.pick rng Words.containers);
        |])
  in
  add "part" (Relation.create ~cols:(cols "part") part_rows);

  (* partsupp *)
  let rng = stream () in
  let n_ps = scaled scale "partsupp" in
  let partsupp_rows =
    List.init n_ps (fun _ ->
        [|
          Value.Str (pad5 (Urm_util.Prng.in_range rng 1 n_part));
          Value.Int (Urm_util.Prng.in_range rng 1 n_supp);
          Value.Int (Urm_util.Prng.in_range rng 1 9999);
          Value.Float (money rng 1. 100.);
        |])
  in
  add "partsupp" (Relation.create ~cols:(cols "partsupp") partsupp_rows);

  (* orders + lineitem (lineitems are generated per order) *)
  let rng_o = stream () in
  let rng_l = stream () in
  let n_orders = scaled scale "orders" in
  let part_zipf = Urm_util.Prng.Zipf.create ~n:n_part ~theta:0.3 in
  let order_rows = ref [] in
  let lineitem_rows = ref [] in
  for i = 1 to n_orders do
    let okey = pad5 i in
    (* Order 00001 is a "hero" row carrying every planted constant, so the
       workload's conjunctive selections (e.g. Q7: orderNum = 00001 ∧
       deliverTo = Mary ∧ deliverToStreet = Central) have a witness at any
       scale. *)
    let hero = i = 1 in
    order_rows :=
      [|
        Value.Str okey;
        Value.Int (if hero then 1 else Urm_util.Prng.in_range rng_o 1 n_cust);
        Value.Str (Urm_util.Prng.pick rng_o Words.statuses);
        Value.Float (money rng_o 100. 50000.);
        Value.Str (date rng_o);
        Value.Int (if hero then 2 else Urm_util.Prng.in_range rng_o 1 5);
        Value.Str (if hero then person_hot else person rng_o);
        Value.Str (if hero then phone_hot else phone rng_o);
        Value.Str (if hero then person_hot else person rng_o);
        Value.Str (if hero then street_hot else street rng_o);
      |]
      :: !order_rows;
    let items = Urm_util.Prng.in_range rng_l 1 7 in
    for line = 1 to items do
      let pkey = Urm_util.Prng.Zipf.draw part_zipf rng_l in
      lineitem_rows :=
        [|
          Value.Str okey;
          Value.Str (pad5 pkey);
          Value.Int (Urm_util.Prng.in_range rng_l 1 n_supp);
          Value.Int line;
          Value.Int (Urm_util.Prng.in_range rng_l 1 50);
          Value.Float (money rng_l 10. 2000.);
          Value.Float (float_of_int (Urm_util.Prng.in_range rng_l 0 10) /. 100.);
          Value.Float (float_of_int (Urm_util.Prng.in_range rng_l 0 8) /. 100.);
          Value.Str (Urm_util.Prng.pick rng_l Words.statuses);
        |]
        :: !lineitem_rows;
    done
  done;
  add "orders" (Relation.create ~cols:(cols "orders") (List.rev !order_rows));
  add "lineitem" (Relation.create ~cols:(cols "lineitem") (List.rev !lineitem_rows));
  cat
