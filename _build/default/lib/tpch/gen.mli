(** Deterministic generator for the synthetic TPC-H-style purchase-order
    source instance.

    The paper uses TPC-H's dbgen (100 MB, 1M tuples, 8 relations, 46
    attributes).  This module re-creates the same schema shape at
    configurable scale; DESIGN.md documents the substitution.  Constants
    referenced by the Table III workload (["335-1736"], ["Mary"], ["ABC"],
    ["Central"], ["00001"], …) are planted with fixed selectivities so all
    ten queries have non-trivial intermediate and final results. *)

(** The 8-relation, 46-attribute source schema, named ["TPCH"]. *)
val schema : Urm_relalg.Schema.t

(** Base table cardinalities at [scale = 1.0]:
    region 5, nation 25, supplier 100, customer 1500, part 2000,
    partsupp 8000, orders 15000, lineitem 60000 (≈ 86k tuples). *)
val base_cardinality : string -> int

(** [generate ~seed ~scale ()] builds a fully populated catalog.  Equal
    seeds and scales produce identical instances. *)
val generate : ?seed:int -> scale:float -> unit -> Urm_relalg.Catalog.t

(** Scale used by the default experiment configuration. *)
val default_scale : float

(** Planted workload constants, exposed so tests and workload definitions
    stay in sync with the generator: [phone_hot = "335-1736"],
    [person_hot = "Mary"], [company_hot = "ABC"], [street_hot = "Central"],
    [part_hot = "00001"], [order_hot = "00001"]. *)
val phone_hot : string

val person_hot : string
val company_hot : string
val street_hot : string
val part_hot : string
val order_hot : string

(** [pad5 n] is the zero-padded string key form used for part and order
    numbers (["00001"] for 1). *)
val pad5 : int -> string
