(* Vocabulary pools for the synthetic purchase-order instance.  The planted
   constants used by the paper's queries (Table III) appear in the relevant
   pools so that selections are satisfiable with controlled selectivity. *)

let first_names =
  [| "Mary"; "Alice"; "Bob"; "Cindy"; "David"; "Erin"; "Frank"; "Grace";
     "Helen"; "Ivan"; "Judy"; "Kevin"; "Linda"; "Mallory"; "Nancy"; "Oscar";
     "Peggy"; "Quentin"; "Rupert"; "Sybil"; "Trent"; "Ursula"; "Victor";
     "Wendy"; "Xavier"; "Yvonne"; "Zach" |]

let companies =
  [| "ABC"; "Acme"; "Globex"; "Initech"; "Umbrella"; "Stark"; "Wayne";
     "Wonka"; "Hooli"; "Vandelay"; "Cyberdyne"; "Tyrell"; "Monarch";
     "Sirius"; "Octan" |]

let streets =
  [| "Central"; "Main"; "Oak"; "Pine"; "Maple"; "Cedar"; "Elm"; "Lake";
     "Hill"; "Park"; "River"; "Spring"; "North"; "South"; "West" |]

let cities =
  [| "Hongkong"; "Shenzhen"; "London"; "Paris"; "Berlin"; "Tokyo"; "Sydney";
     "Toronto"; "Chicago"; "Austin"; "Seattle"; "Lisbon"; "Oslo"; "Dublin" |]

let nations =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
     "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
     "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
     "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES" |]

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let part_adjectives =
  [| "small"; "large"; "polished"; "rusty"; "shiny"; "matte"; "antique";
     "modern"; "smooth"; "rough" |]

let part_nouns =
  [| "bolt"; "gear"; "widget"; "bracket"; "lever"; "spring"; "valve";
     "washer"; "socket"; "flange"; "bearing"; "coupling" |]

let brands = [| "Brand#1"; "Brand#2"; "Brand#3"; "Brand#4"; "Brand#5" |]

let part_types =
  [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]

let containers = [| "SM BOX"; "SM CASE"; "MED BOX"; "LG BOX"; "JUMBO PACK" |]

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let statuses = [| "O"; "F"; "P" |]
