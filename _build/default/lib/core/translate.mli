(** Data translation: materialise a target-schema instance through a
    mapping — the "translating web data" side of data integration the
    paper's introduction positions itself in ([3]).

    Each target relation is populated from the minimal source-relation
    cover of its mapped attributes (the same Case-3 construction query
    reformulation uses): one column per target attribute, [Null] where the
    mapping has no correspondence, rows deduplicated.  Target relations
    with no mapped attribute at all are left empty. *)

(** [relation ctx m target_rel] the materialised instance of one target
    relation under mapping [m].
    Raises [Not_found] for an unknown relation name. *)
val relation : Ctx.t -> Mapping.t -> string -> Urm_relalg.Relation.t

(** [catalog ctx m] materialises every target relation into a fresh
    catalog: a complete (deterministic) target instance for one possible
    world. *)
val catalog : Ctx.t -> Mapping.t -> Urm_relalg.Catalog.t

(** [expected_cardinalities ctx ms] per target relation, the expected
    number of distinct tuples across the mapping distribution:
    Σ_m Pr(m)·|relation ctx m r| — a cheap summary of what the uncertain
    matching implies about the target instance. *)
val expected_cardinalities : Ctx.t -> Mapping.t list -> (string * float) list
