lib/core/sql.ml: Buffer Format List Printf Query Schema String Urm_relalg Value
