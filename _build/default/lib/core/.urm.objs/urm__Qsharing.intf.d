lib/core/qsharing.mli: Ctx Mapping Query Report
