lib/core/mapping.ml: Format Hashtbl List String
