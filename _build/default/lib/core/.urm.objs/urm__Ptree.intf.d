lib/core/ptree.mli: Mapping Query Urm_relalg
