lib/core/overlap.mli: Mapping
