lib/core/mapgen.mli: Mapping Urm_matcher Urm_relalg
