lib/core/ctx.ml: Urm_relalg
