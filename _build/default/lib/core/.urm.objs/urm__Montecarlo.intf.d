lib/core/montecarlo.mli: Answer Ctx Mapping Query Urm_util
