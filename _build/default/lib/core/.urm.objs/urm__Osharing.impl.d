lib/core/osharing.ml: Answer Ctx Eunit Eval List Option Qsharing Reformulate Report Urm_relalg Urm_util
