lib/core/answer.mli: Format Urm_relalg
