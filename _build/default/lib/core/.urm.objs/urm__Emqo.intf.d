lib/core/emqo.mli: Ctx Mapping Query Report
