lib/core/threshold.ml: Answer Ctx Eunit Eval Hashtbl List Qsharing Reformulate Report Urm_relalg Urm_util Value
