lib/core/topk.ml: Answer Array Ctx Eunit Eval Float Hashtbl List Qsharing Reformulate Report Urm_relalg Urm_util Value
