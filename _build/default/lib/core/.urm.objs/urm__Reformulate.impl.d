lib/core/reformulate.ml: Algebra Answer Array Catalog List Mapping Option Pred Query Relation Schema String Urm_relalg Value
