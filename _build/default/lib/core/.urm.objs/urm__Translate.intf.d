lib/core/translate.mli: Ctx Mapping Urm_relalg
