lib/core/report.mli: Answer Format
