lib/core/mapgen.ml: Array Float Hashtbl List Mapping String Urm_bipartite Urm_matcher
