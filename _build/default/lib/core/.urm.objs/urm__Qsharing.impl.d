lib/core/qsharing.ml: Basic Ctx List Ptree Report Urm_util
