lib/core/reformulate.mli: Answer Mapping Query Urm_relalg
