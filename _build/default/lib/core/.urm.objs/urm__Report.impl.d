lib/core/report.ml: Answer Format
