lib/core/ebasic.mli: Ctx Mapping Query Reformulate Report
