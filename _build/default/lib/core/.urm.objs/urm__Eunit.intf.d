lib/core/eunit.mli: Ctx Mapping Query Urm_relalg
