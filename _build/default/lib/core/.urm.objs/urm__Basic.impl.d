lib/core/basic.ml: Answer Ctx Eval List Mapping Reformulate Report Urm_relalg Urm_util
