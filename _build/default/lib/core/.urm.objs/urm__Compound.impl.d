lib/core/compound.ml: Answer Ctx Eval Format Hashtbl List Mapping Printf Ptree Query Reformulate Report String Urm_relalg Urm_util Value
