lib/core/lineage.ml: Array Ctx Eval Float Format Hashtbl Int List Mapping Reformulate String Urm_relalg Value
