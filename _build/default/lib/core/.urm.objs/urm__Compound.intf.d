lib/core/compound.mli: Ctx Format Mapping Query Report
