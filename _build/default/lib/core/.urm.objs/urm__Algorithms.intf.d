lib/core/algorithms.mli: Ctx Eunit Mapping Query Report
