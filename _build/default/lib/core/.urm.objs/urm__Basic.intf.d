lib/core/basic.mli: Ctx Mapping Query Report
