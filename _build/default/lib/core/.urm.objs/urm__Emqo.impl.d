lib/core/emqo.ml: Answer Array Ctx Ebasic Eval List Reformulate Report Urm_mqo Urm_relalg Urm_util
