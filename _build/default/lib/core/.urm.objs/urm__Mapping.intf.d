lib/core/mapping.mli: Format Hashtbl
