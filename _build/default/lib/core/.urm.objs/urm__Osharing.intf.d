lib/core/osharing.mli: Ctx Eunit Mapping Query Report
