lib/core/ptree.ml: Hashtbl List Mapping Query String Urm_relalg
