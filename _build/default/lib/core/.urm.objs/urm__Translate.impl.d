lib/core/translate.ml: Algebra Array Catalog Ctx Eval List Mapping Option Reformulate Relation Schema String Urm_relalg Value
