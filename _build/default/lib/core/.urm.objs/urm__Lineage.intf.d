lib/core/lineage.mli: Ctx Format Mapping Query Urm_relalg
