lib/core/overlap.ml: Array Float Hashtbl List Mapping
