lib/core/query.ml: Format Hashtbl List Option Schema String Urm_relalg Value
