lib/core/sql.mli: Format Query Urm_relalg
