lib/core/mapping_io.mli: Mapping
