lib/core/query.mli: Format Urm_relalg
