lib/core/threshold.mli: Ctx Eunit Mapping Query Report
