lib/core/montecarlo.ml: Answer Ctx Eval Float Hashtbl List Mapping Option Reformulate Urm_relalg Urm_util Value
