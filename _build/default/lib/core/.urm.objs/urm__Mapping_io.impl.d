lib/core/mapping_io.ml: Fun List Mapping Urm_util
