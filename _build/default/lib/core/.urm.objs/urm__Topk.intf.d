lib/core/topk.mli: Ctx Eunit Mapping Query Report
