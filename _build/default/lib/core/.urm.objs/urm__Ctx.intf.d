lib/core/ctx.mli: Urm_relalg
