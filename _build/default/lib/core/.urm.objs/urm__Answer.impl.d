lib/core/answer.ml: Array Float Format Hashtbl List String Urm_relalg Value
