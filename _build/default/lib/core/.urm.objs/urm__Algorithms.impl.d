lib/core/algorithms.ml: Basic Ebasic Emqo Eunit Osharing Printf Qsharing Topk
