lib/core/eunit.ml: Algebra Array Catalog Ctx Eval Float Format Hashtbl List Mapping Option Pred Ptree Query Relation Schema String Urm_relalg Urm_util Value
