lib/core/ebasic.ml: Answer Ctx Eval Hashtbl List Mapping Reformulate Report Urm_relalg Urm_util
