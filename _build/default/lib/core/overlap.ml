let o_ratio = function
  | [] | [ _ ] -> 1.
  | ms ->
    let arr = Array.of_list ms in
    let n = Array.length arr in
    let total = ref 0. in
    let pairs = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        total := !total +. Mapping.o_ratio arr.(i) arr.(j);
        incr pairs
      done
    done;
    !total /. float_of_int !pairs

let correspondence_frequencies ms =
  let n = List.length ms in
  if n = 0 then []
  else begin
    let counts = Hashtbl.create 64 in
    List.iter
      (fun m ->
        List.iter
          (fun pair ->
            let c = try Hashtbl.find counts pair with Not_found -> 0 in
            Hashtbl.replace counts pair (c + 1))
          m.Mapping.pairs)
      ms;
    Hashtbl.fold
      (fun pair c acc -> (pair, float_of_int c /. float_of_int n) :: acc)
      counts []
    |> List.sort (fun (pa, a) (pb, b) ->
           let c = Float.compare b a in
           if c <> 0 then c else compare pa pb)
  end
