(** A SQL front-end for target queries.

    Covers exactly the query class of the paper's workload (Table III):

    {v
    SELECT <columns | star | COUNT(star) | SUM(col)>
    FROM rel [AS alias] {, rel [AS alias]}
    [WHERE cond {AND cond}]
    v}

    where a condition is [col = literal] or [col = col], a column is
    [name] or [alias.name], and literals are single-quoted strings,
    integers or floats.  [SELECT] of a bare star produces a query without
    explicit projection (evaluated with the implicit-projection semantics).

    Attribute names without an alias qualifier are resolved against the
    aliases in scope and must be unambiguous. *)

type error = {
  position : int;  (** 0-based character offset into the input *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

(** [parse ~name ~target sql] parses and resolves [sql] into a target query.
    All schema validation of {!Query.make} applies. *)
val parse :
  name:string -> target:Urm_relalg.Schema.t -> string -> (Query.t, error) result

(** [parse_exn ~name ~target sql] raises [Invalid_argument] with a rendered
    error message. *)
val parse_exn : name:string -> target:Urm_relalg.Schema.t -> string -> Query.t

(** [to_sql q] renders a query back to SQL text ([parse] ∘ [to_sql] is the
    identity up to formatting). *)
val to_sql : Query.t -> string
