(** Compound (set-operator) probabilistic queries — the first item of the
    paper's future work (§IX: "the use of o-sharing to support other complex
    queries (e.g., set operators…)").

    A compound query combines target queries with UNION / INTERSECT /
    EXCEPT.  Semantics follow the possible-worlds reading of the mapping
    model: under each mapping the compound evaluates set-wise over the
    member queries' (set-semantics) answers, and a tuple's probability is
    the total mass of mappings whose compound answer contains it.

    Evaluation uses query-level sharing: mappings are grouped by the vector
    of member source-query keys (the natural generalisation of q-sharing's
    partitioning), each member's source query runs once per distinct key
    {e across all groups}, and set operations combine cached tuple sets. *)

type t =
  | Query of Query.t
  | Union of t * t
  | Intersect of t * t
  | Except of t * t

(** Member queries, left to right. *)
val leaves : t -> Query.t list

(** All member queries must agree on output arity.
    Raises [Invalid_argument] otherwise. *)
val validate : t -> unit

(** [run ctx c ms] evaluates the compound query.  The report's answer uses
    the first member's output header; [groups] is the number of mapping
    partitions. *)
val run : Ctx.t -> t -> Mapping.t list -> Report.t

val pp : Format.formatter -> t -> unit
