(** Evaluation context: the source instance and the two schemas. *)

type t = {
  catalog : Urm_relalg.Catalog.t;  (** the source instance D *)
  source : Urm_relalg.Schema.t;
  target : Urm_relalg.Schema.t;
}

val make :
  catalog:Urm_relalg.Catalog.t ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  t
