(** Answer lineage: which possible mappings support each answer tuple.

    A probabilistic answer's probability is the mass of the mappings whose
    reformulated query returns the tuple; lineage makes that set explicit,
    which is what a data integrator debugging a suspicious answer actually
    wants to see ("this address only appears if phone maps to hphone").

    Cost matches e-basic: one evaluation per distinct source query. *)

type entry = {
  tuple : Urm_relalg.Value.t array;
  prob : float;
  support : int list;  (** ids of the supporting mappings, ascending *)
}

type t = {
  output : string list;
  entries : entry list;  (** probability-descending *)
  null_prob : float;
  null_support : int list;  (** mappings under which the answer is empty *)
}

val run : Ctx.t -> Query.t -> Mapping.t list -> t

(** [support_of t tuple] ([\[\]] when the tuple is not an answer). *)
val support_of : t -> Urm_relalg.Value.t array -> int list

val pp : Format.formatter -> t -> unit
