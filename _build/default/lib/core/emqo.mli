(** The [e-MQO] algorithm (paper §III-B.3): cluster identical source queries
    as in e-basic, then hand the distinct queries to a multi-query optimiser
    that builds one global plan sharing common subexpressions, and evaluate
    that plan.  Plan generation cost is part of the reported time — it is
    the reason the paper finds e-MQO slower than e-basic despite executing
    the fewest operators. *)

val run : Ctx.t -> Query.t -> Mapping.t list -> Report.t
