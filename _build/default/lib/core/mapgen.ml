let index_of l =
  let h = Hashtbl.create 32 in
  List.iteri (fun i x -> Hashtbl.replace h x i) l;
  h

let from_candidates ~h cands =
  if cands = [] then []
  else begin
    let targets =
      List.sort_uniq String.compare (List.map (fun c -> c.Urm_matcher.Match.dst) cands)
    in
    let sources =
      List.sort_uniq String.compare (List.map (fun c -> c.Urm_matcher.Match.src) cands)
    in
    let t_index = index_of targets and s_index = index_of sources in
    let t_arr = Array.of_list targets and s_arr = Array.of_list sources in
    let weights = Array.make_matrix (Array.length t_arr) (Array.length s_arr) 0. in
    List.iter
      (fun c ->
        let i = Hashtbl.find t_index c.Urm_matcher.Match.dst in
        let j = Hashtbl.find s_index c.Urm_matcher.Match.src in
        weights.(i).(j) <- Float.max weights.(i).(j) c.Urm_matcher.Match.score)
      cands;
    let assignments = Urm_bipartite.Murty.k_best ~weights ~k:h in
    let assignments =
      List.filter (fun (a : Urm_bipartite.Murty.assignment) -> a.score > 0.) assignments
    in
    let total =
      List.fold_left
        (fun acc (a : Urm_bipartite.Murty.assignment) -> acc +. a.score)
        0. assignments
    in
    List.mapi
      (fun id (a : Urm_bipartite.Murty.assignment) ->
        let pairs = List.map (fun (i, j) -> (t_arr.(i), s_arr.(j))) a.pairs in
        Mapping.make ~id ~prob:(a.score /. total) ~score:a.score pairs)
      assignments
  end

let generate ?threshold ~h ~source ~target () =
  let cands = Urm_matcher.Match.candidates ?threshold ~source ~target () in
  from_candidates ~h cands

let top_mapping_size ?threshold ~source ~target () =
  match generate ?threshold ~h:1 ~source ~target () with
  | [] -> 0
  | m :: _ -> Mapping.size m
