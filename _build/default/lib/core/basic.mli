(** The [basic] algorithm (paper §III-B.1): reformulate the target query
    through every possible mapping, evaluate each source query, and
    aggregate duplicate answers by summing probabilities. *)

val run : Ctx.t -> Query.t -> Mapping.t list -> Report.t
