type t = {
  catalog : Urm_relalg.Catalog.t;
  source : Urm_relalg.Schema.t;
  target : Urm_relalg.Schema.t;
}

let make ~catalog ~source ~target = { catalog; source; target }
