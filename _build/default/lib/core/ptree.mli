(** The partition tree (paper §IV-A, Algorithm 3).

    A trie with one level per partition attribute of the target query; edges
    are labelled with the source attribute the mapping assigns to that level's
    target attribute (or ⊥ when unmapped), and each leaf bucket collects the
    mappings of one partition.  Mappings in the same bucket produce the same
    source query. *)

(** [partition target q ms] groups [ms] into partitions, in deterministic
    (first-insertion) order.  Every input mapping appears in exactly one
    partition. *)
val partition :
  Urm_relalg.Schema.t -> Query.t -> Mapping.t list -> Mapping.t list list

(** Naive reference implementation (group-by key vector), for tests and the
    partition-tree ablation bench. *)
val partition_naive :
  Urm_relalg.Schema.t -> Query.t -> Mapping.t list -> Mapping.t list list

(** [represent partitions] one representative mapping per partition, its
    probability the sum over the partition (the paper's [represent]
    routine). *)
val represent : Mapping.t list list -> Mapping.t list

(** [partition_by_labels key ms] generic partitioning of mappings by an
    arbitrary label function (used by o-sharing's per-operator grouping);
    deterministic first-insertion order.  Returns the label with each
    group. *)
val partition_by_labels :
  (Mapping.t -> string) -> Mapping.t list -> (string * Mapping.t list) list
