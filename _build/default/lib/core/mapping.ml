type t = {
  id : int;
  pairs : (string * string) list;
  by_target : (string, string) Hashtbl.t;
  prob : float;
  score : float;
}

let make ~id ~prob ~score pairs =
  let pairs = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  let by_target = Hashtbl.create (List.length pairs) in
  let sources = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (t, s) ->
      if Hashtbl.mem by_target t then
        invalid_arg ("Mapping.make: duplicate target " ^ t);
      if Hashtbl.mem sources s then
        invalid_arg ("Mapping.make: duplicate source " ^ s);
      Hashtbl.add by_target t s;
      Hashtbl.add sources s ())
    pairs;
  { id; pairs; by_target; prob; score }

let source_of m target = Hashtbl.find_opt m.by_target target
let targets m = List.map fst m.pairs
let size m = List.length m.pairs
let with_prob m prob = { m with prob }
let same_correspondences a b = a.pairs = b.pairs

let o_ratio a b =
  let sa = a.pairs and sb = b.pairs in
  if sa = [] && sb = [] then 1.
  else begin
    let inter = List.length (List.filter (fun p -> List.mem p sb) sa) in
    let union = List.length sa + List.length sb - inter in
    float_of_int inter /. float_of_int union
  end

let pp ppf m =
  Format.fprintf ppf "@[m%d (p=%.3f):" m.id m.prob;
  List.iter (fun (t, s) -> Format.fprintf ppf "@ (%s←%s)" t s) m.pairs;
  Format.fprintf ppf "@]"

let total_prob ms = List.fold_left (fun acc m -> acc +. m.prob) 0. ms

let normalize ms =
  let total = total_prob ms in
  if total <= 0. then invalid_arg "Mapping.normalize: no probability mass";
  List.map (fun m -> { m with prob = m.prob /. total }) ms
