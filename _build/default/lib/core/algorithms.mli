(** Uniform dispatch over the five evaluation algorithms (plus top-k), used
    by the CLI, the experiment harness and the cross-algorithm consistency
    tests. *)

type t =
  | Basic
  | Ebasic
  | Emqo
  | Qsharing
  | Osharing of Eunit.strategy
  | Topk of int * Eunit.strategy

val name : t -> string

(** All exact algorithms (everything except [Topk]); they must produce
    identical answers on any input. *)
val exact : t list

val run : t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t
