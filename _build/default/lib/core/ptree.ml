(* A node at level k branches on the source attribute assigned to the k-th
   partition attribute; leaves hold buckets.  Buckets preserve insertion
   order so partitioning is deterministic. *)
type node = {
  edges : (string, node) Hashtbl.t;
  mutable edge_order : string list;  (* reverse insertion order *)
  mutable bucket : Mapping.t list;  (* reverse insertion order, leaves only *)
}

let fresh_node () = { edges = Hashtbl.create 4; edge_order = []; bucket = [] }

let label_of m target_attr =
  match Mapping.source_of m target_attr with Some s -> s | None -> "⊥"

(* The paper's recursive [put]: descend one level per partition attribute,
   creating edges as needed, and deposit the mapping in the leaf bucket.
   Levels are label functions (see [levels]). *)
let rec put node m = function
  | [] -> node.bucket <- m :: node.bucket
  | level :: rest ->
    let label = level m in
    let child =
      match Hashtbl.find_opt node.edges label with
      | Some c -> c
      | None ->
        let c = fresh_node () in
        Hashtbl.add node.edges label c;
        node.edge_order <- label :: node.edge_order;
        c
    in
    put child m rest

let rec buckets node acc =
  if node.bucket <> [] then List.rev node.bucket :: acc
  else
    List.fold_left
      (fun acc label -> buckets (Hashtbl.find node.edges label) acc)
      acc
      (List.rev node.edge_order)

(* One tree level per referenced target attribute (labelled by its source
   attribute under the mapping), plus — for aggregate queries — one level
   per unreferenced alias, labelled by the alias's source-relation cover:
   that cover is all an unreferenced alias contributes to the source query
   (its cardinality factor), so labelling a whole level with it avoids
   splitting partitions over correspondences that cannot change the
   answer. *)
let levels target q =
  let attr_levels =
    Query.referenced_attrs q
    |> List.map (Query.qualified q)
    |> List.sort_uniq String.compare
    |> List.map (fun qattr -> fun m -> label_of m qattr)
  in
  let cover_levels =
    match q.Query.aggregate with
    | None -> []
    | Some _ ->
      List.filter_map
        (fun (alias, _) ->
          if Query.referenced_of_alias q alias <> [] then None
          else
            Some
              (fun m ->
                Query.needed_attrs target q alias
                |> List.filter_map (fun ta ->
                       Mapping.source_of m (Query.qualified q ta))
                |> List.map (fun s ->
                       fst (Urm_relalg.Schema.split_qualified s))
                |> List.sort_uniq String.compare
                |> String.concat ","))
        q.Query.aliases
  in
  attr_levels @ cover_levels

let partition target q ms =
  let lvls = levels target q in
  let root = fresh_node () in
  List.iter (fun m -> put root m lvls) ms;
  List.rev (buckets root [])

let partition_naive target q ms =
  let lvls = levels target q in
  let key m = String.concat "|" (List.map (fun label -> label m) lvls) in
  let groups = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun m ->
      let k = key m in
      match Hashtbl.find_opt groups k with
      | Some l -> l := m :: !l
      | None ->
        Hashtbl.add groups k (ref [ m ]);
        order := k :: !order)
    ms;
  List.rev_map (fun k -> List.rev !(Hashtbl.find groups k)) !order

let represent partitions =
  List.map
    (fun partition ->
      match partition with
      | [] -> invalid_arg "Ptree.represent: empty partition"
      | first :: _ -> Mapping.with_prob first (Mapping.total_prob partition))
    partitions

let partition_by_labels key ms =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun m ->
      let k = key m in
      match Hashtbl.find_opt groups k with
      | Some l -> l := m :: !l
      | None ->
        Hashtbl.add groups k (ref [ m ]);
        order := k :: !order)
    ms;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find groups k))) !order
