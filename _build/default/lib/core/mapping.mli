(** Possible mappings: the paper's data model (§III-A).

    A mapping is a one-to-one partial set of correspondences between target
    and source attributes (both sides as qualified ["rel.attr"] names), with
    a probability of being the correct mapping.  Probabilities across a
    mapping set sum to 1 (mutually exclusive events). *)

type t = private {
  id : int;  (** position within its mapping set *)
  pairs : (string * string) list;
      (** (target attr, source attr), sorted by target attr *)
  by_target : (string, string) Hashtbl.t;
  prob : float;
  score : float;  (** raw similarity score the probability derives from *)
}

(** [make ~id ~prob ~score pairs] checks one-to-one-ness on both sides.
    Raises [Invalid_argument] on duplicate targets or sources. *)
val make : id:int -> prob:float -> score:float -> (string * string) list -> t

(** [source_of m target_attr] the corresponding source attribute, if any. *)
val source_of : t -> string -> string option

(** [targets m] mapped target attributes, sorted. *)
val targets : t -> string list

(** Number of correspondences. *)
val size : t -> int

(** [with_prob m p] same correspondences, different probability (used for
    representative mappings whose probability is a partition mass). *)
val with_prob : t -> float -> t

(** Structural identity on the correspondence sets (ignores id and prob). *)
val same_correspondences : t -> t -> bool

(** [o_ratio a b] = |a∩b| / |a∪b| over correspondence sets — the paper's
    overlap measure (§VIII-B.1).  [1.] when both are empty. *)
val o_ratio : t -> t -> float

val pp : Format.formatter -> t -> unit

(** [normalize ms] rescales probabilities to sum to 1.
    Requires some positive mass. *)
val normalize : t list -> t list

(** [total_prob ms] sum of probabilities. *)
val total_prob : t list -> float
