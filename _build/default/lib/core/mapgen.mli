(** Generation of the possible-mapping set (paper §II / §VIII-A): run the
    matcher over the two schemas, then rank the h best one-to-one partial
    matchings with Murty's algorithm, and normalise their total similarity
    scores into probabilities. *)

(** [from_candidates ~h cands] the up-to-[h] best mappings derivable from
    the matcher's correspondence candidates.  Zero-score (empty) matchings
    are dropped; probabilities are each mapping's score over the total score
    of the returned set. *)
val from_candidates : h:int -> Urm_matcher.Match.candidate list -> Mapping.t list

(** [generate ?threshold ~h ~source ~target ()] full pipeline:
    matcher candidates → k-best matchings → normalised mappings. *)
val generate :
  ?threshold:float ->
  h:int ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  Mapping.t list

(** Number of correspondences of the best (rank-1) mapping — the statistic
    the paper quotes for COMA++ (34 / 18 / 31 correspondences). *)
val top_mapping_size :
  ?threshold:float ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  int
