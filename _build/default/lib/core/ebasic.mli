(** The [e-basic] algorithm (paper §III-B.2): like {!Basic} but identical
    source queries are clustered first and each distinct source query is
    evaluated once, carrying the summed probability of its mappings. *)

val run : Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** The clustering step, exposed for e-MQO and tests: source queries grouped
    by {!Reformulate.key} with their probability mass, in first-appearance
    order. *)
val distinct_source_queries :
  Ctx.t -> Query.t -> Mapping.t list -> (Reformulate.t * float) list
