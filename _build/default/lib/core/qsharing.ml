let representatives (ctx : Ctx.t) q ms =
  Ptree.represent (Ptree.partition ctx.target q ms)

let run (ctx : Ctx.t) q ms =
  let reps, partition_time =
    Urm_util.Timer.time (fun () -> representatives ctx q ms)
  in
  let report = Basic.run ctx q reps in
  {
    report with
    Report.timings =
      {
        report.Report.timings with
        Report.rewrite = report.Report.timings.Report.rewrite +. partition_time;
      };
    groups = List.length reps;
  }
