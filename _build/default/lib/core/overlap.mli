(** The o-ratio overlap measure (paper §VIII-B.1): average pairwise
    |mi ∩ mj| / |mi ∪ mj| over a mapping set.  The high overlap of k-best
    mappings is the property q-sharing and o-sharing exploit. *)

(** [o_ratio ms] average over all unordered pairs; [1.] for fewer than two
    mappings. *)
val o_ratio : Mapping.t list -> float

(** [correspondence_frequencies ms] each distinct correspondence with the
    fraction of mappings containing it, most frequent first (e.g. the
    paper's Fig. 3 observation that (cname,pname) appears in 4 of 5
    mappings). *)
val correspondence_frequencies : Mapping.t list -> ((string * string) * float) list
