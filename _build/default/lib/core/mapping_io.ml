module Json = Urm_util.Json

let to_json ms =
  Json.to_string
    (Json.Arr
       (List.map
          (fun m ->
            Json.Obj
              [
                ("id", Json.Num (float_of_int m.Mapping.id));
                ("prob", Json.Num m.Mapping.prob);
                ("score", Json.Num m.Mapping.score);
                ( "pairs",
                  Json.Arr
                    (List.map
                       (fun (t, s) -> Json.Arr [ Json.Str t; Json.Str s ])
                       m.Mapping.pairs) );
              ])
          ms))

let of_json text =
  let json = Json.parse_exn text in
  List.map
    (fun entry ->
      let field name =
        match Json.member name entry with
        | Some v -> v
        | None -> failwith ("Mapping_io: missing field " ^ name)
      in
      let pairs =
        List.map
          (fun pair ->
            match Json.to_list pair with
            | [ t; s ] -> (Json.to_str t, Json.to_str s)
            | _ -> failwith "Mapping_io: pair must be [target, source]")
          (Json.to_list (field "pairs"))
      in
      Mapping.make
        ~id:(Json.to_int (field "id"))
        ~prob:(Json.to_float (field "prob"))
        ~score:(Json.to_float (field "score"))
        pairs)
    (Json.to_list json)

let save path ms =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ms))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))
