open Urm_relalg

type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "SQL error at offset %d: %s" e.position e.message

exception Error of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Error { position; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Ident of string
  | Str_lit of string
  | Int_lit of int
  | Float_lit of float
  | Star
  | Comma
  | Dot
  | Eq
  | Lparen
  | Rparen
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_as
  | Kw_count
  | Kw_sum
  | Kw_group
  | Kw_by
  | Eof

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Str_lit s -> Printf.sprintf "string %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Float_lit f -> Printf.sprintf "float %g" f
  | Star -> "'*'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Eq -> "'='"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_and -> "AND"
  | Kw_as -> "AS"
  | Kw_count -> "COUNT"
  | Kw_sum -> "SUM"
  | Kw_group -> "GROUP"
  | Kw_by -> "BY"
  | Eof -> "end of input"

let keyword_of = function
  | "select" -> Some Kw_select
  | "from" -> Some Kw_from
  | "where" -> Some Kw_where
  | "and" -> Some Kw_and
  | "as" -> Some Kw_as
  | "count" -> Some Kw_count
  | "sum" -> Some Kw_sum
  | "group" -> Some Kw_group
  | "by" -> Some Kw_by
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Tokens paired with their start offset. *)
let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let pos = ref 0 in
  let push tok at = out := (tok, at) :: !out in
  while !pos < n do
    let c = input.[!pos] in
    let at = !pos in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '*' then (push Star at; incr pos)
    else if c = ',' then (push Comma at; incr pos)
    else if c = '.' && not (!pos + 1 < n && is_digit input.[!pos + 1]) then
      (push Dot at; incr pos)
    else if c = '=' then (push Eq at; incr pos)
    else if c = '(' then (push Lparen at; incr pos)
    else if c = ')' then (push Rparen at; incr pos)
    else if c = '\'' then begin
      (* string literal; '' escapes a quote *)
      let buf = Buffer.create 16 in
      incr pos;
      let closed = ref false in
      while not !closed do
        if !pos >= n then fail at "unterminated string literal"
        else if input.[!pos] = '\'' then
          if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf input.[!pos];
          incr pos
        end
      done;
      push (Str_lit (Buffer.contents buf)) at
    end
    else if is_digit c || (c = '-' && !pos + 1 < n && is_digit input.[!pos + 1]) then begin
      let start = !pos in
      if c = '-' then incr pos;
      while !pos < n && is_digit input.[!pos] do incr pos done;
      let is_float = !pos < n && input.[!pos] = '.' in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit input.[!pos] do incr pos done
      end;
      let text = String.sub input start (!pos - start) in
      if is_float then push (Float_lit (float_of_string text)) at
      else push (Int_lit (int_of_string text)) at
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do incr pos done;
      let text = String.sub input start (!pos - start) in
      match keyword_of (String.lowercase_ascii text) with
      | Some kw -> push kw at
      | None -> push (Ident text) at
    end
    else fail at "unexpected character %C" c
  done;
  push Eof n;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the token list. *)

type state = { mutable tokens : (token * int) list }

let peek st = match st.tokens with [] -> (Eof, 0) | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got, at = peek st in
  if got = tok then advance st
  else fail at "expected %s but found %s" (token_name tok) (token_name got)

let ident st =
  match peek st with
  | Ident name, _ ->
    advance st;
    name
  | got, at -> fail at "expected an identifier but found %s" (token_name got)

(* A column reference: name or alias.name; resolution happens later. *)
type raw_col = { qualifier : string option; col : string; at : int }

let column st =
  let at = snd (peek st) in
  let first = ident st in
  match peek st with
  | Dot, _ ->
    advance st;
    let second = ident st in
    { qualifier = Some first; col = second; at }
  | _ -> { qualifier = None; col = first; at }

type raw_select =
  | Sel_star
  | Sel_count
  | Sel_sum of raw_col
  | Sel_cols of raw_col list

type raw_cond =
  | Cond_const of raw_col * Value.t
  | Cond_cols of raw_col * raw_col

let select_clause st =
  match peek st with
  | Star, _ ->
    advance st;
    Sel_star
  | Kw_count, _ ->
    advance st;
    expect st Lparen;
    expect st Star;
    expect st Rparen;
    Sel_count
  | Kw_sum, _ ->
    advance st;
    expect st Lparen;
    let c = column st in
    expect st Rparen;
    Sel_sum c
  | _ ->
    let rec more acc =
      let c = column st in
      match peek st with
      | Comma, _ ->
        advance st;
        more (c :: acc)
      | _ -> List.rev (c :: acc)
    in
    Sel_cols (more [])

let from_clause st =
  let one () =
    let at = snd (peek st) in
    let rel = ident st in
    match peek st with
    | Kw_as, _ ->
      advance st;
      (ident st, rel, at)
    | Ident _, _ -> (ident st, rel, at)
    | _ -> (rel, rel, at)
  in
  let rec more acc =
    let entry = one () in
    match peek st with
    | Comma, _ ->
      advance st;
      more (entry :: acc)
    | _ -> List.rev (entry :: acc)
  in
  more []

let literal st =
  match peek st with
  | Str_lit s, _ ->
    advance st;
    Value.Str s
  | Int_lit i, _ ->
    advance st;
    Value.Int i
  | Float_lit f, _ ->
    advance st;
    Value.Float f
  | got, at -> fail at "expected a literal but found %s" (token_name got)

let where_clause st =
  let cond () =
    let lhs = column st in
    expect st Eq;
    match peek st with
    | Ident _, _ -> Cond_cols (lhs, column st)
    | _ -> Cond_const (lhs, literal st)
  in
  let rec more acc =
    let c = cond () in
    match peek st with
    | Kw_and, _ ->
      advance st;
      more (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  more []

(* ------------------------------------------------------------------ *)
(* Resolution against the target schema. *)

let resolve_col target aliases (raw : raw_col) =
  match raw.qualifier with
  | Some alias -> begin
    match List.assoc_opt alias aliases with
    | None -> fail raw.at "unknown alias %s" alias
    | Some rel ->
      let r = Schema.find_rel target rel in
      if List.exists (fun a -> String.equal a.Schema.aname raw.col) r.Schema.attrs
      then Query.at alias raw.col
      else fail raw.at "relation %s has no attribute %s" rel raw.col
  end
  | None -> begin
    let hits =
      List.filter
        (fun (_, rel) ->
          let r = Schema.find_rel target rel in
          List.exists (fun a -> String.equal a.Schema.aname raw.col) r.Schema.attrs)
        aliases
    in
    match hits with
    | [ (alias, _) ] -> Query.at alias raw.col
    | [] -> fail raw.at "no relation in scope has attribute %s" raw.col
    | _ -> fail raw.at "attribute %s is ambiguous; qualify it with an alias" raw.col
  end

let parse ~name ~target sql =
  try
    let st = { tokens = tokenize sql } in
    expect st Kw_select;
    let select = select_clause st in
    expect st Kw_from;
    let from = from_clause st in
    let conds =
      match peek st with
      | Kw_where, _ ->
        advance st;
        where_clause st
      | _ -> []
    in
    let group_cols =
      match peek st with
      | Kw_group, _ ->
        advance st;
        expect st Kw_by;
        let rec more acc =
          let c = column st in
          match peek st with
          | Comma, _ ->
            advance st;
            more (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        more []
      | _ -> []
    in
    let tok, at = peek st in
    if tok <> Eof then fail at "trailing input: %s" (token_name tok);
    let aliases = List.map (fun (alias, rel, _) -> (alias, rel)) from in
    List.iter
      (fun (_, rel, at) ->
        if not (Schema.mem_rel target rel) then fail at "unknown relation %s" rel)
      from;
    let resolve = resolve_col target aliases in
    let selections, joins =
      List.fold_left
        (fun (sels, joins) cond ->
          match cond with
          | Cond_const (c, v) -> ((resolve c, v) :: sels, joins)
          | Cond_cols (a, b) -> (sels, (resolve a, resolve b) :: joins))
        ([], []) conds
    in
    let selections = List.rev selections and joins = List.rev joins in
    let projection, aggregate =
      match select with
      | Sel_star -> (None, None)
      | Sel_count -> (None, Some Query.Count)
      | Sel_sum c -> (None, Some (Query.Sum (resolve c)))
      | Sel_cols cols -> (Some (List.map resolve cols), None)
    in
    let group_by = List.map resolve group_cols in
    match
      Query.make ~name ~target ~aliases ~selections ~joins ?projection ?aggregate
        ~group_by ()
    with
    | q -> Ok q
    | exception Invalid_argument msg -> Error { position = 0; message = msg }
  with Error e -> Error e

let parse_exn ~name ~target sql =
  match parse ~name ~target sql with
  | Ok q -> q
  | Error e -> invalid_arg (Format.asprintf "%a" pp_error e)

(* ------------------------------------------------------------------ *)

let to_sql (q : Query.t) =
  let buf = Buffer.create 128 in
  let col ta = Query.tattr_to_string ta in
  Buffer.add_string buf "SELECT ";
  (match (q.Query.projection, q.Query.aggregate) with
  | Some cols, _ -> Buffer.add_string buf (String.concat ", " (List.map col cols))
  | None, Some Query.Count -> Buffer.add_string buf "COUNT(*)"
  | None, Some (Query.Sum ta) ->
    Buffer.add_string buf (Printf.sprintf "SUM(%s)" (col ta))
  | None, None -> Buffer.add_string buf "*");
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (alias, rel) ->
            if String.equal alias rel then rel else rel ^ " AS " ^ alias)
          q.Query.aliases));
  let conds =
    List.map
      (fun (ta, v) ->
        match v with
        | Value.Str s -> Printf.sprintf "%s = '%s'" (col ta) s
        | v -> Printf.sprintf "%s = %s" (col ta) (Value.to_string v))
      q.Query.selections
    @ List.map (fun (a, b) -> Printf.sprintf "%s = %s" (col a) (col b)) q.Query.joins
  in
  if conds <> [] then begin
    Buffer.add_string buf " WHERE ";
    Buffer.add_string buf (String.concat " AND " conds)
  end;
  if q.Query.group_by <> [] then begin
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map col q.Query.group_by))
  end;
  Buffer.contents buf
