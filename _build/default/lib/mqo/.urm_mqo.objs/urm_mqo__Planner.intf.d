lib/mqo/planner.mli: Urm_relalg
