lib/mqo/planner.ml: Algebra Catalog Eval Float Hashtbl Int List Pred Relation Stats_est String Urm_relalg
