type mult = One | Opt | Many

type t = {
  tag : string;
  text : Urm_relalg.Schema.ty option;
  key : string option;
  attrs : (string * Urm_relalg.Schema.ty) list;
  children : (mult * t) list;
}

let element ?text ?key ?(attrs = []) ?(children = []) tag =
  { tag; text; key; attrs; children }

let rec leaf_count t =
  (match t.text with Some _ -> 1 | None -> 0)
  + List.length t.attrs
  + List.fold_left (fun acc (_, c) -> acc + leaf_count c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun acc (_, c) -> max acc (depth c)) 0 t.children

let rec tags t = t.tag :: List.concat_map (fun (_, c) -> tags c) t.children

let mult_str = function One -> "" | Opt -> "?" | Many -> "*"

let ty_str = function
  | Urm_relalg.Schema.TInt -> "int"
  | Urm_relalg.Schema.TFloat -> "float"
  | Urm_relalg.Schema.TStr -> "string"

let rec pp_indent ppf indent t =
  Format.fprintf ppf "%s%s" indent t.tag;
  (match t.text with Some ty -> Format.fprintf ppf " : %s" (ty_str ty) | None -> ());
  (match t.key with Some k -> Format.fprintf ppf " [key=%s]" k | None -> ());
  if t.attrs <> [] then
    Format.fprintf ppf " {%s}"
      (String.concat ", "
         (List.map (fun (a, ty) -> a ^ ":" ^ ty_str ty) t.attrs));
  List.iter
    (fun (m, c) ->
      Format.pp_print_newline ppf ();
      pp_indent ppf (indent ^ "  " ^ mult_str m) c)
    t.children

let pp ppf t = pp_indent ppf "" t
