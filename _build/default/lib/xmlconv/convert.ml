open Urm_relalg

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

let compose base name = if base = "" then name else base ^ capitalize name

(* Attributes contributed to the owning relation by [node] inlined under
   [base] ("" for the relation element itself): its text content, its
   attributes, then recursively its One/Opt children. *)
let rec inline_attrs base (node : Xtree.t) =
  let own =
    (match node.Xtree.text with
    | Some ty when base <> "" -> [ (base, ty) ]
    | Some ty -> [ (node.Xtree.tag, ty) ]
    | None -> [])
    @ List.map (fun (a, ty) -> (compose base a, ty)) node.Xtree.attrs
  in
  own
  @ List.concat_map
      (fun (mult, child) ->
        match mult with
        | Xtree.One | Xtree.Opt ->
          inline_attrs (compose base child.Xtree.tag) child
        | Xtree.Many -> [])
      node.Xtree.children

(* Collect the relations: every Many element, with the key of its nearest
   Many ancestor appended when absent. *)
let rec collect_relations inherited (node : Xtree.t) =
  let attrs = inline_attrs "" node in
  let attrs =
    match inherited with
    | Some (key, ty) when not (List.mem_assoc key attrs) -> attrs @ [ (key, ty) ]
    | _ -> attrs
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a, _) ->
      if Hashtbl.mem seen a then
        invalid_arg
          (Printf.sprintf "Convert.inline: composed attribute %s collides in %s" a
             node.Xtree.tag);
      Hashtbl.add seen a ())
    attrs;
  let own_key =
    match node.Xtree.key with
    | Some k -> (
      match List.assoc_opt k attrs with
      | Some ty -> Some (k, ty)
      | None ->
        invalid_arg
          (Printf.sprintf "Convert.inline: key %s is not an attribute of %s" k
             node.Xtree.tag))
    | None -> inherited
  in
  let rec nested (n : Xtree.t) =
    List.concat_map
      (fun (mult, child) ->
        match mult with
        | Xtree.Many -> collect_relations own_key child
        | Xtree.One | Xtree.Opt -> nested child)
      n.Xtree.children
  in
  (node.Xtree.tag, attrs) :: nested node

let inline (root : Xtree.t) =
  let rels =
    List.concat_map
      (fun (mult, child) ->
        match mult with
        | Xtree.Many -> collect_relations None child
        | Xtree.One | Xtree.Opt ->
          (* top-level singletons also become relations (of one row) *)
          collect_relations None child)
      root.Xtree.children
  in
  if rels = [] then invalid_arg "Convert.inline: no relations";
  Schema.make root.Xtree.tag rels

(* ------------------------------------------------------------------ *)

let nest ~fks (schema : Schema.t) =
  List.iter
    (fun (child, parent) ->
      if not (Schema.mem_rel schema child) then
        invalid_arg ("Convert.nest: unknown relation " ^ child);
      if not (Schema.mem_rel schema parent) then
        invalid_arg ("Convert.nest: unknown relation " ^ parent))
    fks;
  (* first-listed parent wins *)
  let parent_of r =
    List.assoc_opt r fks
  in
  let children_of r =
    List.filter_map
      (fun (rel : Schema.rel) ->
        if parent_of rel.Schema.rname = Some r then Some rel.Schema.rname else None)
      schema.Schema.rels
  in
  let rec build visiting rname =
    if List.mem rname visiting then
      invalid_arg ("Convert.nest: nesting cycle through " ^ rname);
    let rel = Schema.find_rel schema rname in
    Xtree.element rname
      ~attrs:(List.map (fun a -> (a.Schema.aname, a.Schema.ty)) rel.Schema.attrs)
      ~children:
        (List.map
           (fun c -> (Xtree.Many, build (rname :: visiting) c))
           (children_of rname))
  in
  let roots =
    List.filter
      (fun (rel : Schema.rel) -> parent_of rel.Schema.rname = None)
      schema.Schema.rels
  in
  let tree =
    Xtree.element schema.Schema.sname
      ~children:
        (List.map (fun (rel : Schema.rel) -> (Xtree.Many, build [] rel.Schema.rname)) roots)
  in
  (* A relation unreachable from any root means the fk graph has a cycle. *)
  let placed = Xtree.tags tree in
  List.iter
    (fun (rel : Schema.rel) ->
      if not (List.mem rel.Schema.rname placed) then
        invalid_arg ("Convert.nest: nesting cycle through " ^ rel.Schema.rname))
    schema.Schema.rels;
  tree
