(** Schema conversions between the relational and XML worlds.

    {2 XML → relational (shared inlining, [23])}

    Every [Many] element becomes a relation.  [One]/[Opt] children inline
    into their owner with composed camelCase names — element [deliverTo]
    with attribute [street] inlines as [deliverToStreet], its text content
    as [deliverTo] — which is exactly how the purchase-order target
    schemas' attribute vocabulary arises from their XML form.  A nested
    [Many] element becomes a child relation and inherits the key attribute
    of its nearest [Many] ancestor (appended last when not already
    declared).

    {2 Relational → XML (NeT/CoT-style nesting, [22])}

    Relations nest along declared foreign keys (each relation under at most
    one parent); parent-less relations hang off a synthetic document
    root. *)

(** [inline root] converts an XML schema tree to a relational schema named
    after [root]'s tag.  [root] itself is the document node: each of its
    [Many] children (and their nested [Many] descendants) becomes a
    relation.  Raises [Invalid_argument] if no relation would result or a
    composed attribute name collides. *)
val inline : Xtree.t -> Urm_relalg.Schema.t

(** [nest ~fks schema] converts a relational schema to an XML tree.
    [fks] is a list of [(child_relation, parent_relation)]; each child
    nests (with [Many] multiplicity) under its first-listed parent.
    Relations without a parent become [Many] children of the synthetic
    root (tagged with the schema name).
    Raises [Invalid_argument] on unknown relations or nesting cycles. *)
val nest : fks:(string * string) list -> Urm_relalg.Schema.t -> Xtree.t
