(** XML schema trees.

    The paper's matching pipeline crosses the XML/relational border twice
    (§VIII-A): the relational TPC-H schema is converted to XML for COMA++
    ([22], NeT & CoT) and the XML target schemas are converted to relations
    ([23], Shanmugasundaram et al.).  This module is the shared tree
    representation; {!Convert} implements both directions. *)

type mult =
  | One  (** exactly one occurrence *)
  | Opt  (** zero or one *)
  | Many  (** zero or more — becomes its own relation under inlining *)

type t = {
  tag : string;
  text : Urm_relalg.Schema.ty option;  (** typed text content, if any *)
  key : string option;  (** the attribute that identifies an occurrence *)
  attrs : (string * Urm_relalg.Schema.ty) list;
  children : (mult * t) list;
}

(** [element ?text ?key ?attrs ?children tag] *)
val element :
  ?text:Urm_relalg.Schema.ty ->
  ?key:string ->
  ?attrs:(string * Urm_relalg.Schema.ty) list ->
  ?children:(mult * t) list ->
  string ->
  t

(** Total number of typed leaves (attributes + text nodes) in the tree. *)
val leaf_count : t -> int

(** Depth of the tree (a single element is 1). *)
val depth : t -> int

(** All element tags, pre-order. *)
val tags : t -> string list

val pp : Format.formatter -> t -> unit
