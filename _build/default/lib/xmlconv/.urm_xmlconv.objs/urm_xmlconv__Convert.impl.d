lib/xmlconv/convert.ml: Char Hashtbl List Printf Schema String Urm_relalg Xtree
