lib/xmlconv/xtree.mli: Format Urm_relalg
