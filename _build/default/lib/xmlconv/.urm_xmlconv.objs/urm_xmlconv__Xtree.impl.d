lib/xmlconv/xtree.ml: Format List String Urm_relalg
