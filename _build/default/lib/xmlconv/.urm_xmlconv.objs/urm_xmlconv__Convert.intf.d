lib/xmlconv/convert.mli: Urm_relalg Xtree
