open Urm_relalg
open Urm_xmlconv

let s = Schema.TStr
let i = Schema.TInt
let el = Xtree.element
let one c = (Xtree.One, c)
let opt c = (Xtree.Opt, c)
let many c = (Xtree.Many, c)

let test_xtree_measures () =
  let t =
    el "root"
      ~children:
        [ many (el "a" ~attrs:[ ("x", s); ("y", i) ] ~children:[ one (el ~text:s "b") ]) ]
  in
  Alcotest.(check int) "leaves" 3 (Xtree.leaf_count t);
  Alcotest.(check int) "depth" 3 (Xtree.depth t);
  Alcotest.(check (list string)) "tags" [ "root"; "a"; "b" ] (Xtree.tags t)

let test_inline_composed_names () =
  let t =
    el "Doc"
      ~children:
        [
          many
            (el "PO" ~key:"num"
               ~attrs:[ ("num", s) ]
               ~children:
                 [
                   one (el "deliverTo" ~text:s ~attrs:[ ("street", s); ("zip", i) ]);
                   opt (el "billing" ~attrs:[ ("method", s) ]);
                 ]);
        ]
  in
  let schema = Convert.inline t in
  Alcotest.(check string) "schema name" "Doc" schema.Schema.sname;
  let po = Schema.find_rel schema "PO" in
  Alcotest.(check (list string)) "composed attributes"
    [ "num"; "deliverTo"; "deliverToStreet"; "deliverToZip"; "billingMethod" ]
    (List.map (fun a -> a.Schema.aname) po.Schema.attrs);
  Alcotest.(check bool) "zip keeps its type" true
    (Schema.type_of schema "PO.deliverToZip" = Schema.TInt)

let test_inline_key_inheritance () =
  let t =
    el "Doc"
      ~children:
        [
          many
            (el "order" ~key:"oid"
               ~attrs:[ ("oid", i); ("who", s) ]
               ~children:[ many (el "line" ~attrs:[ ("qty", i) ]) ]);
        ]
  in
  let schema = Convert.inline t in
  let line = Schema.find_rel schema "line" in
  (* the nested Many element inherits the parent key, appended last *)
  Alcotest.(check (list string)) "inherited key" [ "qty"; "oid" ]
    (List.map (fun a -> a.Schema.aname) line.Schema.attrs);
  Alcotest.(check bool) "inherited type" true
    (Schema.type_of schema "line.oid" = Schema.TInt)

let test_inline_key_already_declared () =
  let t =
    el "Doc"
      ~children:
        [
          many
            (el "order" ~key:"oid"
               ~attrs:[ ("oid", i) ]
               ~children:[ many (el "line" ~attrs:[ ("oid", i); ("qty", i) ]) ]);
        ]
  in
  let line = Schema.find_rel (Convert.inline t) "line" in
  Alcotest.(check (list string)) "no duplicate key" [ "oid"; "qty" ]
    (List.map (fun a -> a.Schema.aname) line.Schema.attrs)

let test_inline_collision_rejected () =
  let t =
    el "Doc"
      ~children:
        [
          many
            (el "r"
               ~attrs:[ ("aB", s) ]
               ~children:[ one (el "a" ~attrs:[ ("b", s) ]) ]);
        ]
  in
  match Convert.inline t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "collision accepted"

let test_inline_empty_rejected () =
  match Convert.inline (el "Doc") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted"

let test_targets_derived_from_xml () =
  Alcotest.(check int) "Excel XML leaves" 48 (Xtree.leaf_count Urm_workload.Targets.excel_xml);
  Alcotest.(check int) "Noris XML leaves" 66 (Xtree.leaf_count Urm_workload.Targets.noris_xml);
  Alcotest.(check int) "Paragon XML leaves" 69
    (Xtree.leaf_count Urm_workload.Targets.paragon_xml);
  (* inlining preserves the leaf count: every XML leaf becomes a column *)
  List.iter
    (fun (xml, rel) ->
      Alcotest.(check int) "leaves = attributes" (Xtree.leaf_count xml)
        (Schema.attr_count rel))
    [
      (Urm_workload.Targets.excel_xml, Urm_workload.Targets.excel);
      (Urm_workload.Targets.noris_xml, Urm_workload.Targets.noris);
      (Urm_workload.Targets.paragon_xml, Urm_workload.Targets.paragon);
    ];
  (* the composed names the workload queries rely on *)
  Alcotest.(check bool) "deliverToStreet" true
    (Schema.type_of Urm_workload.Targets.excel "PO.deliverToStreet" = Schema.TStr);
  Alcotest.(check bool) "billToAddress" true
    (Schema.type_of Urm_workload.Targets.paragon "PO.billToAddress" = Schema.TStr);
  Alcotest.(check bool) "shipToPhone" true
    (Schema.type_of Urm_workload.Targets.paragon "PO.shipToPhone" = Schema.TStr)

let test_nest_tpch () =
  let fks =
    [
      ("nation", "region"); ("customer", "nation"); ("supplier", "nation");
      ("orders", "customer"); ("lineitem", "orders"); ("partsupp", "part");
    ]
  in
  let xml = Convert.nest ~fks Urm_tpch.Gen.schema in
  Alcotest.(check string) "root tag" "TPCH" xml.Xtree.tag;
  (* all 46 attributes survive the conversion *)
  Alcotest.(check int) "leaves" 46 (Xtree.leaf_count xml);
  (* roots: region and part *)
  let root_tags = List.map (fun (_, c) -> c.Xtree.tag) xml.Xtree.children in
  Alcotest.(check (list string)) "roots" [ "region"; "part" ] root_tags;
  (* nation nests under region, and has two children *)
  let region = List.find (fun (_, c) -> c.Xtree.tag = "region") xml.Xtree.children |> snd in
  let nation = List.find (fun (_, c) -> c.Xtree.tag = "nation") region.Xtree.children |> snd in
  Alcotest.(check int) "nation has customer+supplier" 2 (List.length nation.Xtree.children);
  Alcotest.(check int) "depth" 6 (Xtree.depth xml)

let test_nest_cycle_rejected () =
  let schema = Schema.make "C" [ ("a", [ ("x", s) ]); ("b", [ ("y", s) ]) ] in
  match Convert.nest ~fks:[ ("a", "b"); ("b", "a") ] schema with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle accepted"

let test_nest_unknown_rejected () =
  match Convert.nest ~fks:[ ("zzz", "region") ] Urm_tpch.Gen.schema with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

let test_nest_then_inline_preserves_attrs () =
  (* flat nest (no fks) followed by inlining recovers the relational schema *)
  let back = Convert.inline (Convert.nest ~fks:[] Urm_tpch.Gen.schema) in
  Alcotest.(check int) "attr count" (Schema.attr_count Urm_tpch.Gen.schema)
    (Schema.attr_count back);
  List.iter
    (fun (rel : Schema.rel) ->
      let recovered = Schema.find_rel back rel.Schema.rname in
      Alcotest.(check (list string)) (rel.Schema.rname ^ " attrs")
        (List.map (fun a -> a.Schema.aname) rel.Schema.attrs)
        (List.map (fun a -> a.Schema.aname) recovered.Schema.attrs))
    Urm_tpch.Gen.schema.Schema.rels

let test_xtree_pp () =
  let text = Format.asprintf "%a" Xtree.pp Urm_workload.Targets.excel_xml in
  Alcotest.(check bool) "pp nonempty" true (String.length text > 100)

let suite =
  [
    Alcotest.test_case "xtree measures" `Quick test_xtree_measures;
    Alcotest.test_case "inline composed names" `Quick test_inline_composed_names;
    Alcotest.test_case "inline key inheritance" `Quick test_inline_key_inheritance;
    Alcotest.test_case "inline key already declared" `Quick test_inline_key_already_declared;
    Alcotest.test_case "inline collision rejected" `Quick test_inline_collision_rejected;
    Alcotest.test_case "inline empty rejected" `Quick test_inline_empty_rejected;
    Alcotest.test_case "targets derived from XML" `Quick test_targets_derived_from_xml;
    Alcotest.test_case "nest TPC-H" `Quick test_nest_tpch;
    Alcotest.test_case "nest cycle rejected" `Quick test_nest_cycle_rejected;
    Alcotest.test_case "nest unknown rejected" `Quick test_nest_unknown_rejected;
    Alcotest.test_case "nest ∘ inline preserves" `Quick test_nest_then_inline_preserves_attrs;
    Alcotest.test_case "xtree pp" `Quick test_xtree_pp;
  ]
