(* Deeper evaluator tests: rewrites, aggregates, dynamic factorisation. *)
open Urm_relalg

let s v = Value.Str v
let i v = Value.Int v
let f v = Value.Float v

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "R"
    (Relation.create ~cols:[ "a"; "b"; "x" ]
       [
         [| i 1; s "u"; f 1.5 |]; [| i 2; s "v"; f 2.5 |]; [| i 3; s "u"; f 3.5 |];
         [| i 4; s "w"; f 0.5 |];
       ]);
  Catalog.add cat "S" (Relation.create ~cols:[ "c"; "d" ] [ [| i 2; s "p" |]; [| i 3; s "q" |] ]);
  Catalog.add cat "T" (Relation.create ~cols:[ "e" ] [ [| i 9 |]; [| i 8 |] ]);
  Catalog.add cat "Empty" (Relation.empty ~cols:[ "z" ]);
  cat

let eval ?ctrs ?optimize e = Eval.eval ?ctrs ?optimize (catalog ()) e

let test_cmp_operators () =
  let check cmp expected =
    let r = eval (Algebra.Select (Pred.Cmp (cmp, "a", i 2), Algebra.Base "R")) in
    Alcotest.(check int) "rows" expected (Relation.cardinality r)
  in
  check Pred.Eq 1;
  check Pred.Ne 3;
  check Pred.Lt 1;
  check Pred.Le 2;
  check Pred.Gt 2;
  check Pred.Ge 3

let test_or_not () =
  let p = Pred.Or (Pred.eq "b" (s "u"), Pred.eq "b" (s "w")) in
  Alcotest.(check int) "or" 3
    (Relation.cardinality (eval (Algebra.Select (p, Algebra.Base "R"))));
  Alcotest.(check int) "not-or" 1
    (Relation.cardinality (eval (Algebra.Select (Pred.Not p, Algebra.Base "R"))))

let test_agg_min_max_avg () =
  let one col e = Relation.value (eval e) 0 col in
  Alcotest.(check bool) "min" true
    (Value.equal (one "min(x)" (Algebra.Aggregate (Algebra.Min "x", Algebra.Base "R"))) (f 0.5));
  Alcotest.(check bool) "max" true
    (Value.equal (one "max(x)" (Algebra.Aggregate (Algebra.Max "x", Algebra.Base "R"))) (f 3.5));
  match one "avg(a)" (Algebra.Aggregate (Algebra.Avg "a", Algebra.Base "R")) with
  | Value.Float avg -> Alcotest.(check (float 1e-9)) "avg" 2.5 avg
  | v -> Alcotest.failf "avg returned %s" (Value.to_string v)

let test_join_product_associativity () =
  (* Join of (T × R) with S on R.a = S.c: the optimizer must keep T out of
     the join and the result must match the unoptimised evaluation. *)
  let e =
    Algebra.Join
      ( Pred.eq_cols "a" "c",
        Algebra.Product (Algebra.Base "T", Algebra.Base "R"),
        Algebra.Base "S" )
  in
  let opt = Eval.optimize (catalog ()) e in
  (match opt with
  | Algebra.Product (Algebra.Base "T", Algebra.Join _) -> ()
  | other -> Alcotest.failf "expected T × (R ⋈ S), got %s" (Algebra.to_string other));
  Alcotest.(check bool) "same result" true
    (Relation.equal_contents (eval e) (eval ~optimize:false e))

let test_distinct_project_factorisation () =
  (* δπ over a product factorises and never materialises the cross product;
     result must equal the naive evaluation. *)
  let e =
    Algebra.Distinct
      (Algebra.Project ([ "b"; "d" ], Algebra.Product (Algebra.Base "R", Algebra.Base "S")))
  in
  let fact = eval e in
  let naive = eval ~optimize:false e in
  Alcotest.(check bool) "factorised = naive" true (Relation.equal_contents fact naive);
  Alcotest.(check int) "3 b-values × 2 d-values" 6 (Relation.cardinality fact)

let test_distinct_project_empty_factor () =
  let e =
    Algebra.Distinct
      (Algebra.Project ([ "b" ], Algebra.Product (Algebra.Base "R", Algebra.Base "Empty")))
  in
  Alcotest.(check int) "empty side kills result" 0 (Relation.cardinality (eval e))

let test_nonempty () =
  let cat = catalog () in
  Alcotest.(check bool) "base" true (Eval.nonempty cat (Algebra.Base "R"));
  Alcotest.(check bool) "empty base" false (Eval.nonempty cat (Algebra.Base "Empty"));
  Alcotest.(check bool) "product with empty side" false
    (Eval.nonempty cat (Algebra.Product (Algebra.Base "R", Algebra.Base "Empty")));
  Alcotest.(check bool) "select" true
    (Eval.nonempty cat (Algebra.Select (Pred.eq "b" (s "u"), Algebra.Base "R")));
  Alcotest.(check bool) "select empty" false
    (Eval.nonempty cat (Algebra.Select (Pred.eq "b" (s "zzz"), Algebra.Base "R")))

let test_catalog_index_invalidation () =
  let cat = catalog () in
  let before = Catalog.lookup cat "R" "b" (s "u") in
  Alcotest.(check int) "two u rows" 2 (List.length before);
  Catalog.add cat "R" (Relation.create ~cols:[ "a"; "b"; "x" ] [ [| i 7; s "u"; f 1. |] ]);
  let after = Catalog.lookup cat "R" "b" (s "u") in
  Alcotest.(check int) "index rebuilt" 1 (List.length after)

let test_algebra_inventory () =
  let e =
    Algebra.Aggregate
      ( Algebra.Count,
        Algebra.Select (Pred.eq "b" (s "u"), Algebra.Product (Algebra.Base "R", Algebra.Base "S")) )
  in
  Alcotest.(check int) "size counts operators" 3 (Algebra.size e);
  Alcotest.(check int) "subexpressions" 5 (List.length (Algebra.subexpressions e));
  Alcotest.(check int) "children of product" 2
    (List.length (Algebra.children (Algebra.Product (Algebra.Base "R", Algebra.Base "S"))))

let test_counters_rows () =
  let ctrs = Eval.fresh_counters () in
  ignore (eval ~ctrs (Algebra.Select (Pred.eq "b" (s "u"), Algebra.Base "R")));
  Alcotest.(check int) "one op" 1 ctrs.Eval.operators;
  Alcotest.(check int) "two rows out" 2 ctrs.Eval.rows_produced

(* Property: the whole optimiser (pushdown, join formation, associativity,
   distinct factorisation) preserves semantics on random 2-relation trees. *)
let qcheck_optimizer_sound =
  let open QCheck.Gen in
  let pred =
    oneof
      [
        map (fun v -> Pred.eq "a" (i v)) (1 -- 4);
        oneofl [ Pred.eq "b" (s "u"); Pred.eq_cols "a" "c"; Pred.eq "d" (s "p") ];
      ]
  in
  let base = oneofl [ Algebra.Base "R"; Algebra.Base "S" ] in
  let gen =
    base >>= fun b1 ->
    base >>= fun b2 ->
    list_size (0 -- 3) pred >>= fun preds ->
    oneofl [ `Plain; `DistinctProject; `Count ] >|= fun shape ->
    let prod =
      if Algebra.equal b1 b2 then
        Algebra.Product (Algebra.Rename ("L", b1), Algebra.Rename ("R2", b2))
      else Algebra.Product (b1, b2)
    in
    let renamed = not (Algebra.equal b1 b2) in
    let preds = if renamed then preds else [] in
    let body = match preds with [] -> prod | _ -> Algebra.Select (Pred.conj preds, prod) in
    match shape with
    | `Plain -> body
    | `Count -> Algebra.Aggregate (Algebra.Count, body)
    | `DistinctProject ->
      let cols =
        match (b1, b2) with
        | Algebra.Base "R", Algebra.Base "S" | Algebra.Base "S", Algebra.Base "R" -> [ "b"; "d" ]
        | _ -> []
      in
      if cols = [] then body else Algebra.Distinct (Algebra.Project (cols, body))
  in
  QCheck.Test.make ~name:"optimizer preserves semantics" ~count:150
    (QCheck.make gen ~print:Algebra.to_string)
    (fun e ->
      let cat = catalog () in
      Relation.equal_contents (Eval.eval cat e) (Eval.eval ~optimize:false cat e))

let test_group_by_eval () =
  let e = Algebra.GroupBy ([ "b" ], Algebra.Count, Algebra.Base "R") in
  let r = eval e in
  Alcotest.(check (list string)) "header" [ "b"; "count" ] (Relation.cols r);
  Alcotest.(check int) "three groups" 3 (Relation.cardinality r);
  let count_of key =
    let row =
      Relation.fold
        (fun acc row -> if Value.equal row.(0) (s key) then Some row else acc)
        None r
    in
    match row with Some row -> row.(1) | None -> Value.Null
  in
  Alcotest.(check bool) "u count 2" true (Value.equal (count_of "u") (i 2));
  Alcotest.(check bool) "v count 1" true (Value.equal (count_of "v") (i 1))

let test_group_by_sum_and_multiple_keys () =
  let e = Algebra.GroupBy ([ "b"; "a" ], Algebra.Sum "x", Algebra.Base "R") in
  let r = eval e in
  (* all (b, a) pairs are distinct → 4 groups *)
  Alcotest.(check int) "four groups" 4 (Relation.cardinality r);
  let total =
    Relation.fold
      (fun acc row ->
        match Value.to_float_opt row.(2) with Some f -> acc +. f | None -> acc)
      0. r
  in
  Alcotest.(check (float 1e-9)) "sums partition the total" 8.0 total

let test_group_by_empty_input () =
  let e = Algebra.GroupBy ([ "z" ], Algebra.Count, Algebra.Base "Empty") in
  Alcotest.(check int) "no groups" 0 (Relation.cardinality (eval e))

let test_group_by_no_keys () =
  (* zero keys: one group over all rows iff input non-empty *)
  let e = Algebra.GroupBy ([], Algebra.Count, Algebra.Base "R") in
  let r = eval e in
  Alcotest.(check int) "one group" 1 (Relation.cardinality r);
  Alcotest.(check bool) "count 4" true (Value.equal (Relation.value r 0 "count") (i 4));
  let empty = Algebra.GroupBy ([], Algebra.Count, Algebra.Base "Empty") in
  Alcotest.(check int) "empty input: no group" 0 (Relation.cardinality (eval empty))

let qcheck_group_by_counts_partition =
  (* the counts of the groups always sum to the input cardinality *)
  let gen =
    QCheck.Gen.(
      list_size (0 -- 20)
        (pair (oneofl [ "p"; "q"; "r" ]) (0 -- 3)))
  in
  QCheck.Test.make ~name:"group counts partition cardinality" ~count:150
    (QCheck.make gen)
    (fun rows ->
      let rel =
        Relation.create ~cols:[ "k"; "v" ]
          (List.map (fun (k, v) -> [| s k; i v |]) rows)
      in
      let cat = Catalog.create () in
      Catalog.add cat "T0" rel;
      let grouped = Eval.eval cat (Algebra.GroupBy ([ "k" ], Algebra.Count, Algebra.Base "T0")) in
      let total =
        Relation.fold
          (fun acc row -> match row.(1) with Value.Int c -> acc + c | _ -> acc)
          0 grouped
      in
      total = List.length rows)

let test_pred_rename () =
  let p = Pred.conj [ Pred.eq "a" (i 1); Pred.eq_cols "a" "b" ] in
  let renamed = Pred.rename p (fun c -> "X#" ^ c) in
  Alcotest.(check (list string)) "renamed columns" [ "X#a"; "X#b" ] (Pred.columns renamed)

let test_stats_est () =
  let cat = catalog () in
  let st = Stats_est.build cat in
  let cs = Stats_est.column st "R" "b" in
  Alcotest.(check int) "rows" 4 cs.Stats_est.rows;
  Alcotest.(check int) "distinct" 3 cs.Stats_est.distinct;
  Alcotest.(check int) "no nulls" 0 cs.Stats_est.null_count;
  (match cs.Stats_est.mcv with
  | (v, c) :: _ ->
    Alcotest.(check bool) "mcv is u" true (Value.equal v (s "u"));
    Alcotest.(check int) "u count" 2 c
  | [] -> Alcotest.fail "no mcv");
  Alcotest.(check (float 1e-9)) "eq sel of mcv" 0.5 (Stats_est.eq_selectivity st "R" "b" (s "u"));
  Alcotest.(check bool) "join selectivity bounded" true
    (let js = Stats_est.join_selectivity st "R" "a" "S" "c" in
     js > 0. && js <= 1.);
  Alcotest.(check int) "cardinality" 4 (Stats_est.cardinality st "R")

let test_stats_nulls_and_unknown () =
  let cat = Catalog.create () in
  Catalog.add cat "N"
    (Relation.create ~cols:[ "x" ] [ [| Value.Null |]; [| i 1 |]; [| Value.Null |] ]);
  let st = Stats_est.build cat in
  let cs = Stats_est.column st "N" "x" in
  Alcotest.(check int) "nulls" 2 cs.Stats_est.null_count;
  Alcotest.(check int) "distinct" 1 cs.Stats_est.distinct;
  Alcotest.(check (float 1e-9)) "unknown column default" 0.1
    (Stats_est.eq_selectivity st "N" "zzz" (i 1))

let test_planner_with_stats_consistent () =
  let cat = catalog () in
  let stats = Stats_est.build cat in
  let queries =
    [
      Algebra.Select (Pred.eq "b" (s "u"), Algebra.Base "R");
      Algebra.Project ([ "a" ], Algebra.Select (Pred.eq "b" (s "u"), Algebra.Base "R"));
      Algebra.Join (Pred.eq_cols "a" "c", Algebra.Base "R", Algebra.Base "S");
    ]
  in
  let with_stats = Urm_mqo.Planner.plan ~stats cat queries in
  let without = Urm_mqo.Planner.plan cat queries in
  List.iter2
    (fun (_, r1) (_, r2) -> Alcotest.(check bool) "same results" true (Relation.equal_contents r1 r2))
    (Urm_mqo.Planner.execute cat with_stats)
    (Urm_mqo.Planner.execute cat without)

let suite =
  [
    Alcotest.test_case "comparison operators" `Quick test_cmp_operators;
    Alcotest.test_case "group-by eval" `Quick test_group_by_eval;
    Alcotest.test_case "group-by multiple keys + sum" `Quick test_group_by_sum_and_multiple_keys;
    Alcotest.test_case "group-by empty input" `Quick test_group_by_empty_input;
    Alcotest.test_case "group-by no keys" `Quick test_group_by_no_keys;
    Alcotest.test_case "pred rename" `Quick test_pred_rename;
    QCheck_alcotest.to_alcotest qcheck_group_by_counts_partition;
    Alcotest.test_case "stats estimation" `Quick test_stats_est;
    Alcotest.test_case "stats nulls/unknown" `Quick test_stats_nulls_and_unknown;
    Alcotest.test_case "planner with stats" `Quick test_planner_with_stats_consistent;
    Alcotest.test_case "or/not" `Quick test_or_not;
    Alcotest.test_case "min/max/avg" `Quick test_agg_min_max_avg;
    Alcotest.test_case "join-product associativity" `Quick test_join_product_associativity;
    Alcotest.test_case "distinct-project factorisation" `Quick test_distinct_project_factorisation;
    Alcotest.test_case "distinct-project empty factor" `Quick test_distinct_project_empty_factor;
    Alcotest.test_case "nonempty" `Quick test_nonempty;
    Alcotest.test_case "index invalidation" `Quick test_catalog_index_invalidation;
    Alcotest.test_case "algebra inventory" `Quick test_algebra_inventory;
    Alcotest.test_case "row counters" `Quick test_counters_rows;
    QCheck_alcotest.to_alcotest qcheck_optimizer_sound;
  ]
