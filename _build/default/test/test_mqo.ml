open Urm_relalg

let s v = Value.Str v
let i v = Value.Int v

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "R"
    (Relation.create ~cols:[ "a"; "b" ]
       [ [| i 1; s "x" |]; [| i 2; s "y" |]; [| i 3; s "x" |]; [| i 4; s "z" |] ]);
  Catalog.add cat "S"
    (Relation.create ~cols:[ "c"; "d" ] [ [| i 1; s "p" |]; [| i 2; s "q" |] ]);
  cat

let q_sel v = Algebra.Select (Pred.eq "b" (s v), Algebra.Base "R")

let q_sel_proj v =
  Algebra.Project ([ "a" ], Algebra.Select (Pred.eq "b" (s v), Algebra.Base "R"))

let test_plan_finds_shares () =
  let cat = catalog () in
  let queries = [ q_sel_proj "x"; q_sel "x"; q_sel_proj "x" ] in
  let plan = Urm_mqo.Planner.plan cat queries in
  let m = Urm_mqo.Planner.metrics plan in
  Alcotest.(check bool) "candidates found" true (m.Urm_mqo.Planner.candidates >= 1);
  Alcotest.(check bool) "some chosen" true (m.Urm_mqo.Planner.chosen >= 1);
  Alcotest.(check bool) "cost evaluations counted" true
    (m.Urm_mqo.Planner.cost_evaluations > 0)

let test_execute_matches_direct_eval () =
  let cat = catalog () in
  let queries =
    [
      q_sel_proj "x"; q_sel "y";
      Algebra.Aggregate (Algebra.Count, q_sel "x");
      Algebra.Join (Pred.eq_cols "a" "c", Algebra.Base "R", Algebra.Base "S");
      q_sel_proj "x";
    ]
  in
  let plan = Urm_mqo.Planner.plan cat queries in
  let results = Urm_mqo.Planner.execute cat plan in
  Alcotest.(check int) "result per query" (List.length queries) (List.length results);
  List.iter2
    (fun q (_, rel) ->
      let direct = Eval.eval cat q in
      Alcotest.(check bool)
        (Algebra.to_string q ^ " matches")
        true
        (Relation.equal_contents direct rel))
    queries results

let test_shared_operator_runs_once () =
  let cat = catalog () in
  (* the same selection appears in three queries *)
  let queries = [ q_sel_proj "x"; q_sel_proj "x"; q_sel "x" ] in
  let plan = Urm_mqo.Planner.plan cat queries in
  let ctrs = Eval.fresh_counters () in
  ignore (Urm_mqo.Planner.execute ~ctrs cat plan);
  let ctrs_nosharing = Eval.fresh_counters () in
  List.iter (fun q -> ignore (Eval.eval ~ctrs:ctrs_nosharing cat q)) queries;
  Alcotest.(check bool) "fewer operators with sharing" true
    (ctrs.Eval.operators < ctrs_nosharing.Eval.operators)

let test_execute_iter_streams () =
  let cat = catalog () in
  let queries = [ q_sel "x"; q_sel "y" ] in
  let plan = Urm_mqo.Planner.plan cat queries in
  let seen = ref [] in
  Urm_mqo.Planner.execute_iter cat plan ~f:(fun idx _ rel ->
      seen := (idx, Relation.cardinality rel) :: !seen);
  Alcotest.(check (list (pair int int))) "streamed in order" [ (0, 2); (1, 1) ]
    (List.rev !seen)

let test_empty_query_list () =
  let cat = catalog () in
  let plan = Urm_mqo.Planner.plan cat [] in
  Alcotest.(check int) "no shares" 0 (Urm_mqo.Planner.metrics plan).Urm_mqo.Planner.chosen;
  Alcotest.(check int) "no results" 0 (List.length (Urm_mqo.Planner.execute cat plan))

let test_estimated_cost_decreases_with_sharing () =
  let cat = catalog () in
  let shared_heavy = List.init 6 (fun _ -> q_sel_proj "x") in
  let plan = Urm_mqo.Planner.plan cat shared_heavy in
  let disjoint =
    [ q_sel_proj "x"; q_sel_proj "y"; q_sel_proj "z" ]
  in
  let plan2 = Urm_mqo.Planner.plan cat disjoint in
  Alcotest.(check bool) "heavy sharing chosen" true
    ((Urm_mqo.Planner.metrics plan).Urm_mqo.Planner.chosen
    >= (Urm_mqo.Planner.metrics plan2).Urm_mqo.Planner.chosen)

let qcheck_execute_correct =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 6)
        (oneofl
           [ q_sel "x"; q_sel "y"; q_sel "z"; q_sel_proj "x"; q_sel_proj "y";
             Algebra.Aggregate (Algebra.Count, q_sel "x");
             Algebra.Distinct (Algebra.Project ([ "b" ], Algebra.Base "R")) ]))
  in
  QCheck.Test.make ~name:"mqo execution = direct evaluation" ~count:50 (QCheck.make gen)
    (fun queries ->
      let cat = catalog () in
      let plan = Urm_mqo.Planner.plan cat queries in
      let results = Urm_mqo.Planner.execute cat plan in
      List.for_all2
        (fun q (_, rel) -> Relation.equal_contents (Eval.eval cat q) rel)
        queries results)

let suite =
  [
    Alcotest.test_case "plan finds shares" `Quick test_plan_finds_shares;
    Alcotest.test_case "execute = direct eval" `Quick test_execute_matches_direct_eval;
    Alcotest.test_case "shared operator runs once" `Quick test_shared_operator_runs_once;
    Alcotest.test_case "execute_iter streams" `Quick test_execute_iter_streams;
    Alcotest.test_case "empty query list" `Quick test_empty_query_list;
    Alcotest.test_case "sharing amount tracks overlap" `Quick test_estimated_cost_decreases_with_sharing;
    QCheck_alcotest.to_alcotest qcheck_execute_correct;
  ]
