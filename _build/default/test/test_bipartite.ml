open Urm_bipartite

let test_hungarian_simple () =
  (* Classic 3x3: optimal min assignment cost = 5 (0→1, 1→0, 2→2 etc.). *)
  let cost = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let _, total = Hungarian.solve_min cost in
  Alcotest.(check (float 1e-9)) "min cost" 5. total

let test_hungarian_max () =
  let w = [| [| 1.; 5. |]; [| 4.; 2. |] |] in
  let assignment, total = Hungarian.solve_max w in
  Alcotest.(check (float 1e-9)) "max weight" 9. total;
  Alcotest.(check (array int)) "assignment" [| 1; 0 |] assignment

let test_hungarian_rectangular () =
  let cost = [| [| 10.; 1.; 10.; 10. |]; [| 1.; 10.; 10.; 10. |] |] in
  let assignment, total = Hungarian.solve_min cost in
  Alcotest.(check (float 1e-9)) "rect min" 2. total;
  Alcotest.(check (array int)) "rect assignment" [| 1; 0 |] assignment

let test_hungarian_rejects_bad_shapes () =
  Alcotest.check_raises "rows > cols"
    (Invalid_argument "Hungarian.solve_min: more rows than columns") (fun () ->
      ignore (Hungarian.solve_min [| [| 1. |]; [| 2. |] |]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Hungarian.solve_min: ragged cost matrix") (fun () ->
      ignore (Hungarian.solve_min [| [| 1.; 2. |]; [| 2. |] |]))

(* Brute-force all partial matchings for cross-checking Murty. *)
let brute_force weights =
  let n = Array.length weights in
  let m = if n = 0 then 0 else Array.length weights.(0) in
  let results = ref [] in
  let rec go i used pairs score =
    if i = n then results := (List.rev pairs, score) :: !results
    else begin
      go (i + 1) used pairs score;
      for j = 0 to m - 1 do
        if weights.(i).(j) > 0. && not (List.mem j used) then
          go (i + 1) (j :: used) ((i, j) :: pairs) (score +. weights.(i).(j))
      done
    end
  in
  go 0 [] [] 0.;
  List.sort (fun (_, a) (_, b) -> Float.compare b a) !results

let test_murty_matches_brute_force () =
  let weights =
    [|
      [| 0.9; 0.6; 0.0 |];
      [| 0.7; 0.8; 0.3 |];
      [| 0.0; 0.5; 0.4 |];
    |]
  in
  let k = 8 in
  let murty = Murty.k_best ~weights ~k in
  let brute = brute_force weights in
  Alcotest.(check int) "got k" k (List.length murty);
  List.iteri
    (fun i (a : Murty.assignment) ->
      let _, expected = List.nth brute i in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "rank %d score" i) expected a.score)
    murty

let test_murty_distinct () =
  let weights = [| [| 0.9; 0.8 |]; [| 0.7; 0.6 |] |] in
  let results = Murty.k_best ~weights ~k:20 in
  let keys = List.map (fun (a : Murty.assignment) -> List.sort compare a.pairs) results in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_murty_descending () =
  let weights =
    [| [| 0.9; 0.2; 0.5 |]; [| 0.1; 0.8; 0.4 |]; [| 0.3; 0.6; 0.7 |] |]
  in
  let results = Murty.k_best ~weights ~k:10 in
  let rec desc = function
    | (a : Murty.assignment) :: (b :: _ as rest) -> a.score >= b.score -. 1e-9 && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "scores descending" true (desc results)

let test_murty_partial_allowed () =
  (* Only one positive edge: best solution uses it, second-best is empty. *)
  let weights = [| [| 0.5; 0. |]; [| 0.; 0. |] |] in
  let results = Murty.k_best ~weights ~k:3 in
  Alcotest.(check int) "two solutions" 2 (List.length results);
  (match results with
  | [ first; second ] ->
    Alcotest.(check (float 1e-9)) "best score" 0.5 first.Murty.score;
    Alcotest.(check int) "best has one pair" 1 (List.length first.Murty.pairs);
    Alcotest.(check (float 1e-9)) "empty score" 0. second.Murty.score;
    Alcotest.(check int) "empty pairs" 0 (List.length second.Murty.pairs)
  | _ -> Alcotest.fail "unexpected shape")

let test_murty_k_larger_than_space () =
  let weights = [| [| 0.9 |] |] in
  let results = Murty.k_best ~weights ~k:100 in
  Alcotest.(check int) "only 2 matchings exist" 2 (List.length results)

(* Brute-force optimal assignment over all row permutations (n ≤ 4). *)
let brute_min_assignment cost =
  let n = Array.length cost in
  let m = Array.length cost.(0) in
  let best = ref infinity in
  let rec go i used acc =
    if acc >= !best then ()
    else if i = n then best := acc
    else
      for j = 0 to m - 1 do
        if not (List.mem j used) then go (i + 1) (j :: used) (acc +. cost.(i).(j))
      done
  in
  go 0 [] 0.;
  !best

let qcheck_hungarian_optimal =
  let gen =
    QCheck.Gen.(
      2 -- 4 >>= fun n ->
      n -- 5 >>= fun m ->
      array_size (return n) (array_size (return m) (float_bound_inclusive 10.)))
  in
  QCheck.Test.make ~name:"hungarian finds the optimum" ~count:100 (QCheck.make gen)
    (fun cost ->
      let _, total = Hungarian.solve_min cost in
      abs_float (total -. brute_min_assignment cost) < 1e-9)

let qcheck_hungarian_valid_assignment =
  let gen =
    QCheck.Gen.(
      2 -- 5 >>= fun n ->
      n -- 6 >>= fun m ->
      array_size (return n) (array_size (return m) (float_bound_inclusive 10.)))
  in
  QCheck.Test.make ~name:"hungarian assigns distinct columns" ~count:100
    (QCheck.make gen) (fun cost ->
      let assignment, _ = Hungarian.solve_min cost in
      let cols = Array.to_list assignment in
      List.length (List.sort_uniq compare cols) = Array.length cost
      && List.for_all (fun j -> j >= 0 && j < Array.length cost.(0)) cols)

let qcheck_murty_vs_brute =
  let gen =
    QCheck.Gen.(
      let dim = 2 -- 4 in
      pair dim dim >>= fun (n, m) ->
      array_size (return n) (array_size (return m) (float_bound_inclusive 1.))
      >|= fun w -> w)
  in
  QCheck.Test.make ~name:"murty scores match brute force" ~count:60 (QCheck.make gen)
    (fun weights ->
      let k = 6 in
      let murty = Murty.k_best ~weights ~k in
      let brute = brute_force weights in
      let expected =
        List.filteri (fun i _ -> i < k) (List.map snd brute)
      in
      let got = List.map (fun (a : Murty.assignment) -> a.score) murty in
      List.length got = min k (List.length brute)
      && List.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) got expected)

let suite =
  [
    Alcotest.test_case "hungarian 3x3" `Quick test_hungarian_simple;
    Alcotest.test_case "hungarian max" `Quick test_hungarian_max;
    Alcotest.test_case "hungarian rectangular" `Quick test_hungarian_rectangular;
    Alcotest.test_case "hungarian bad shapes" `Quick test_hungarian_rejects_bad_shapes;
    Alcotest.test_case "murty = brute force" `Quick test_murty_matches_brute_force;
    Alcotest.test_case "murty distinct" `Quick test_murty_distinct;
    Alcotest.test_case "murty descending" `Quick test_murty_descending;
    Alcotest.test_case "murty partial matchings" `Quick test_murty_partial_allowed;
    Alcotest.test_case "murty exhausts space" `Quick test_murty_k_larger_than_space;
    QCheck_alcotest.to_alcotest qcheck_hungarian_optimal;
    QCheck_alcotest.to_alcotest qcheck_hungarian_valid_assignment;
    QCheck_alcotest.to_alcotest qcheck_murty_vs_brute;
  ]
