(* Smaller surfaces: algorithm dispatch, reports, experiment tables,
   matcher pruning knobs, pipeline conveniences. *)

let test_algorithm_names () =
  Alcotest.(check string) "basic" "basic" (Urm.Algorithms.name Urm.Algorithms.Basic);
  Alcotest.(check string) "e-mqo" "e-MQO" (Urm.Algorithms.name Urm.Algorithms.Emqo);
  Alcotest.(check string) "osharing sef" "o-sharing/SEF"
    (Urm.Algorithms.name (Urm.Algorithms.Osharing Urm.Eunit.Sef));
  Alcotest.(check string) "topk" "top-5/SNF"
    (Urm.Algorithms.name (Urm.Algorithms.Topk (5, Urm.Eunit.Snf)));
  Alcotest.(check int) "seven exact algorithms" 7 (List.length Urm.Algorithms.exact)

let test_report_total () =
  let t = { Urm.Report.rewrite = 0.1; plan = 0.2; evaluate = 0.3; aggregate = 0.4 } in
  Alcotest.(check (float 1e-9)) "total" 1.0 (Urm.Report.total t);
  Alcotest.(check (float 1e-9)) "zero" 0. (Urm.Report.total Urm.Report.zero_timings)

let test_experiment_table_pp () =
  let table =
    {
      Urm_workload.Experiments.Table.id = "t";
      title = "demo";
      headers = [ "a"; "long-header" ];
      rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
      notes = [ "a note" ];
    }
  in
  let text = Format.asprintf "%a" Urm_workload.Experiments.Table.pp table in
  Alcotest.(check bool) "has title" true
    (String.length text > 0
    && String.length (String.concat "" (String.split_on_char 'd' text))
       < String.length text (* contains 'd' from demo *));
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "5+ lines" true (List.length lines >= 5)

let test_experiments_registry () =
  Alcotest.(check int) "18 experiments" 18 (List.length Urm_workload.Experiments.all);
  match Urm_workload.Experiments.run_by_id Urm_workload.Experiments.quick "zzz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown id accepted"

let test_matcher_per_attr_cap () =
  let target =
    Urm_relalg.Schema.make "T"
      [ ("PO", [ ("telephone", Urm_relalg.Schema.TStr) ]) ]
  in
  let all =
    Urm_matcher.Match.candidates ~threshold:0.1 ~slack:1.0 ~per_attr:100
      ~source:Urm_tpch.Gen.schema ~target ()
  in
  let capped =
    Urm_matcher.Match.candidates ~threshold:0.1 ~slack:1.0 ~per_attr:2
      ~source:Urm_tpch.Gen.schema ~target ()
  in
  Alcotest.(check bool) "cap reduces" true (List.length capped <= 2);
  Alcotest.(check bool) "uncapped has more" true (List.length all > List.length capped);
  (* capped keeps the best-scoring candidates *)
  match (all, capped) with
  | best :: _, kept :: _ ->
    Alcotest.(check (float 1e-9)) "same best" best.Urm_matcher.Match.score
      kept.Urm_matcher.Match.score
  | _ -> Alcotest.fail "empty candidates"

let test_matcher_slack () =
  let target =
    Urm_relalg.Schema.make "T"
      [ ("PO", [ ("telephone", Urm_relalg.Schema.TStr) ]) ]
  in
  let tight =
    Urm_matcher.Match.candidates ~threshold:0.1 ~slack:0.01 ~per_attr:100
      ~source:Urm_tpch.Gen.schema ~target ()
  in
  let loose =
    Urm_matcher.Match.candidates ~threshold:0.1 ~slack:1.0 ~per_attr:100
      ~source:Urm_tpch.Gen.schema ~target ()
  in
  Alcotest.(check bool) "tight ⊆ loose" true (List.length tight <= List.length loose);
  (* every tight candidate is within slack of the best *)
  match tight with
  | best :: _ ->
    List.iter
      (fun c ->
        Alcotest.(check bool) "within slack" true
          (c.Urm_matcher.Match.score >= best.Urm_matcher.Match.score -. 0.01))
      tight
  | [] -> Alcotest.fail "no tight candidates"

let test_pipeline_run_wrapper () =
  let p = Urm_workload.Pipeline.create ~seed:3 ~scale:0.01 () in
  let target, q = Urm_workload.Queries.by_name "Q1" in
  let r1 = Urm_workload.Pipeline.run p Urm.Algorithms.Ebasic ~query:q ~target ~h:5 in
  let ctx = Urm_workload.Pipeline.ctx p target in
  let ms = Urm_workload.Pipeline.mappings p target ~h:5 in
  let r2 = Urm.Algorithms.run Urm.Algorithms.Ebasic ctx q ms in
  Alcotest.(check bool) "wrapper = manual" true
    (Urm.Answer.equal r1.Urm.Report.answer r2.Urm.Report.answer);
  Alcotest.(check bool) "seed/scale accessors" true
    (Urm_workload.Pipeline.seed p = 3 && Urm_workload.Pipeline.scale p = 0.01)

let test_mapping_pp_and_query_pp () =
  let m =
    Urm.Mapping.make ~id:7 ~prob:0.25 ~score:1.5 [ ("T.a", "S.x"); ("T.b", "S.y") ]
  in
  let text = Format.asprintf "%a" Urm.Mapping.pp m in
  Alcotest.(check bool) "mentions id" true
    (String.split_on_char '7' text |> List.length > 1);
  let _, q4 = Urm_workload.Queries.by_name "Q4" in
  let qtext = Urm.Query.to_string q4 in
  Alcotest.(check bool) "query pp nonempty" true (String.length qtext > 20)

let test_compound_pp_and_leaves () =
  let _, q1 = Urm_workload.Queries.by_name "Q1" in
  let _, q5 = Urm_workload.Queries.by_name "Q5" in
  let c = Urm.Compound.Union (Query q1, Urm.Compound.Except (Query q1, Query q5)) in
  Alcotest.(check int) "three leaves" 3 (List.length (Urm.Compound.leaves c));
  let text = Format.asprintf "%a" Urm.Compound.pp c in
  Alcotest.(check bool) "pp nonempty" true (String.length text > 5)

let test_stopwatch () =
  let sw = Urm_util.Timer.Stopwatch.create () in
  Alcotest.(check (float 1e-9)) "fresh" 0. (Urm_util.Timer.Stopwatch.elapsed sw);
  Urm_util.Timer.Stopwatch.start sw;
  Alcotest.check_raises "double start"
    (Invalid_argument "Stopwatch.start: already running") (fun () ->
      Urm_util.Timer.Stopwatch.start sw);
  Urm_util.Timer.Stopwatch.stop sw;
  Alcotest.check_raises "double stop" (Invalid_argument "Stopwatch.stop: not running")
    (fun () -> Urm_util.Timer.Stopwatch.stop sw);
  let t1 = Urm_util.Timer.Stopwatch.elapsed sw in
  Alcotest.(check bool) "non-negative" true (t1 >= 0.);
  (* accumulates across runs *)
  Urm_util.Timer.Stopwatch.start sw;
  ignore (Sys.opaque_identity (List.init 1000 (fun i -> i * i)));
  Urm_util.Timer.Stopwatch.stop sw;
  Alcotest.(check bool) "accumulated" true (Urm_util.Timer.Stopwatch.elapsed sw >= t1);
  Urm_util.Timer.Stopwatch.reset sw;
  Alcotest.(check (float 1e-9)) "reset" 0. (Urm_util.Timer.Stopwatch.elapsed sw)

let test_timer_repeat () =
  let calls = ref 0 in
  let mean = Urm_util.Timer.repeat ~warmup:2 ~runs:3 (fun () -> incr calls) in
  Alcotest.(check int) "warmup + runs" 5 !calls;
  Alcotest.(check bool) "mean non-negative" true (mean >= 0.)

let test_relation_pp_truncates () =
  let rel =
    Urm_relalg.Relation.create ~cols:[ "x" ]
      (List.init 20 (fun j -> [| Urm_relalg.Value.Int j |]))
  in
  let text = Format.asprintf "%a" (Urm_relalg.Relation.pp ~max_rows:3) rel in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions more rows" true (contains text "17 more")

let test_value_pp () =
  let check v expected =
    Alcotest.(check string) expected expected (Urm_relalg.Value.to_string v)
  in
  check Urm_relalg.Value.Null "NULL";
  check (Urm_relalg.Value.Int (-3)) "-3";
  check (Urm_relalg.Value.Str "hi") "hi";
  check (Urm_relalg.Value.Float 2.5) "2.5"

let test_schema_pp_and_catalog_names () =
  let text = Format.asprintf "%a" Urm_relalg.Schema.pp Urm_tpch.Gen.schema in
  Alcotest.(check bool) "schema pp mentions orders" true
    (String.length text > 100);
  let cat = Urm_tpch.Gen.generate ~seed:1 ~scale:0.005 () in
  Alcotest.(check int) "eight relations" 8 (List.length (Urm_relalg.Catalog.names cat));
  Alcotest.(check bool) "sorted names" true
    (let names = Urm_relalg.Catalog.names cat in
     names = List.sort String.compare names)

let test_sql_negative_numbers () =
  let target =
    Urm_relalg.Schema.make "T" [ ("R", [ ("n", Urm_relalg.Schema.TInt) ]) ]
  in
  match Urm.Sql.parse ~name:"t" ~target "SELECT * FROM R WHERE n = -5" with
  | Ok q -> begin
    match q.Urm.Query.selections with
    | [ (_, Urm_relalg.Value.Int (-5)) ] -> ()
    | _ -> Alcotest.fail "negative literal"
  end
  | Error e -> Alcotest.failf "parse error: %a" Urm.Sql.pp_error e

let test_json_number_forms () =
  let module J = Urm_util.Json in
  List.iter
    (fun (text, expected) ->
      match J.parse text with
      | Ok (J.Num f) -> Alcotest.(check (float 1e-9)) text expected f
      | _ -> Alcotest.failf "did not parse %s" text)
    [ ("0", 0.); ("-12", -12.); ("3.5", 3.5); ("1e3", 1000.); ("2.5E-1", 0.25) ]

let suite =
  [
    Alcotest.test_case "stopwatch" `Quick test_stopwatch;
    Alcotest.test_case "timer repeat" `Quick test_timer_repeat;
    Alcotest.test_case "relation pp truncates" `Quick test_relation_pp_truncates;
    Alcotest.test_case "value pp" `Quick test_value_pp;
    Alcotest.test_case "schema pp + catalog names" `Quick test_schema_pp_and_catalog_names;
    Alcotest.test_case "sql negative numbers" `Quick test_sql_negative_numbers;
    Alcotest.test_case "json number forms" `Quick test_json_number_forms;
    Alcotest.test_case "algorithm names" `Quick test_algorithm_names;
    Alcotest.test_case "report total" `Quick test_report_total;
    Alcotest.test_case "experiment table pp" `Quick test_experiment_table_pp;
    Alcotest.test_case "experiments registry" `Quick test_experiments_registry;
    Alcotest.test_case "matcher per-attr cap" `Quick test_matcher_per_attr_cap;
    Alcotest.test_case "matcher slack" `Quick test_matcher_slack;
    Alcotest.test_case "pipeline run wrapper" `Quick test_pipeline_run_wrapper;
    Alcotest.test_case "pp smoke" `Quick test_mapping_pp_and_query_pp;
    Alcotest.test_case "compound pp/leaves" `Quick test_compound_pp_and_leaves;
  ]
