open Urm_relalg

let cat = lazy (Urm_tpch.Gen.generate ~seed:1 ~scale:0.02 ())

let test_all_relations_present () =
  let cat = Lazy.force cat in
  List.iter
    (fun r -> Alcotest.(check bool) (r ^ " present") true (Catalog.mem cat r))
    [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ]

let test_schema_attr_count () =
  Alcotest.(check int) "46 attributes" 46 (Schema.attr_count Urm_tpch.Gen.schema)

let test_deterministic () =
  let a = Urm_tpch.Gen.generate ~seed:9 ~scale:0.01 () in
  let b = Urm_tpch.Gen.generate ~seed:9 ~scale:0.01 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " identical") true
        (Relation.equal_contents (Catalog.find a r) (Catalog.find b r)))
    [ "customer"; "orders"; "lineitem" ];
  let c = Urm_tpch.Gen.generate ~seed:10 ~scale:0.01 () in
  Alcotest.(check bool) "different seed differs" false
    (Relation.equal_contents (Catalog.find a "customer") (Catalog.find c "customer"))

let test_cardinalities_scale () =
  let small = Urm_tpch.Gen.generate ~seed:1 ~scale:0.01 () in
  let large = Urm_tpch.Gen.generate ~seed:1 ~scale:0.05 () in
  Alcotest.(check bool) "scaling grows orders" true
    (Relation.cardinality (Catalog.find large "orders")
    > Relation.cardinality (Catalog.find small "orders"));
  let expected = max 1 (int_of_float (Float.round (15000. *. 0.01))) in
  Alcotest.(check int) "orders cardinality" expected
    (Relation.cardinality (Catalog.find small "orders"))

let test_schema_matches_data () =
  let cat = Lazy.force cat in
  List.iter
    (fun (r : Schema.rel) ->
      let rel = Catalog.find cat r.Schema.rname in
      Alcotest.(check (list string))
        (r.Schema.rname ^ " columns")
        (List.map (fun a -> a.Schema.aname) r.Schema.attrs)
        (Relation.cols rel))
    Urm_tpch.Gen.schema.Schema.rels

let count_where cat rel col v =
  let r = Pred.eval_on (Catalog.find cat rel) (Pred.eq col v) in
  Relation.cardinality r

let test_hot_constants_planted () =
  let cat = Lazy.force cat in
  Alcotest.(check bool) "hot phone in customers or orders" true
    (count_where cat "customer" "c_phone" (Value.Str Urm_tpch.Gen.phone_hot)
     + count_where cat "orders" "o_contactphone" (Value.Str Urm_tpch.Gen.phone_hot)
    > 0);
  Alcotest.(check bool) "Mary invoices exist" true
    (count_where cat "orders" "o_invoicename" (Value.Str Urm_tpch.Gen.person_hot) > 0);
  Alcotest.(check bool) "Central street exists" true
    (count_where cat "orders" "o_deliverstreet" (Value.Str Urm_tpch.Gen.street_hot) > 0);
  Alcotest.(check bool) "part 00001 ordered" true
    (count_where cat "lineitem" "l_partkey" (Value.Str Urm_tpch.Gen.part_hot) > 0);
  Alcotest.(check bool) "ABC addresses exist" true
    (count_where cat "customer" "c_address" (Value.Str Urm_tpch.Gen.company_hot) > 0)

let test_referential_integrity () =
  let cat = Lazy.force cat in
  let orders = Catalog.find cat "orders" in
  let n_cust = Relation.cardinality (Catalog.find cat "customer") in
  Relation.iter
    (fun row ->
      match row.(Relation.col_pos orders "o_custkey") with
      | Value.Int k ->
        if k < 1 || k > n_cust then Alcotest.failf "dangling custkey %d" k
      | v -> Alcotest.failf "non-int custkey %s" (Value.to_string v))
    orders;
  let lineitem = Catalog.find cat "lineitem" in
  let okeys = Catalog.index cat "orders" "o_orderkey" in
  Relation.iter
    (fun row ->
      let okey = row.(Relation.col_pos lineitem "l_orderkey") in
      if not (Hashtbl.mem okeys okey) then
        Alcotest.failf "dangling orderkey %s" (Value.to_string okey))
    lineitem

let test_orderkeys_unique () =
  let cat = Lazy.force cat in
  let orders = Catalog.find cat "orders" in
  let keys = Relation.project orders [ "o_orderkey" ] in
  Alcotest.(check int) "unique keys"
    (Relation.cardinality orders)
    (Relation.cardinality (Relation.distinct keys))

let test_pad5 () =
  Alcotest.(check string) "pad5" "00001" (Urm_tpch.Gen.pad5 1);
  Alcotest.(check string) "pad5 big" "12345" (Urm_tpch.Gen.pad5 12345)

let suite =
  [
    Alcotest.test_case "relations present" `Quick test_all_relations_present;
    Alcotest.test_case "46 attributes" `Quick test_schema_attr_count;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "cardinalities scale" `Quick test_cardinalities_scale;
    Alcotest.test_case "schema matches data" `Quick test_schema_matches_data;
    Alcotest.test_case "hot constants planted" `Quick test_hot_constants_planted;
    Alcotest.test_case "referential integrity" `Quick test_referential_integrity;
    Alcotest.test_case "order keys unique" `Quick test_orderkeys_unique;
    Alcotest.test_case "pad5" `Quick test_pad5;
  ]
