open Urm_relalg

let v_int i = Value.Int i
let v_str s = Value.Str s

(* The running example of the paper's Fig. 2: the Customer relation. *)
let customer () =
  Relation.create
    ~cols:[ "cid"; "cname"; "ophone"; "hphone"; "oaddr"; "haddr" ]
    [
      [| v_int 1; v_str "Alice"; v_str "123"; v_str "789"; v_str "aaa"; v_str "hk" |];
      [| v_int 2; v_str "Bob"; v_str "456"; v_str "123"; v_str "bbb"; v_str "hk" |];
      [| v_int 3; v_str "Cindy"; v_str "456"; v_str "789"; v_str "aaa"; v_str "aaa" |];
    ]

let catalog () =
  let cat = Catalog.create () in
  Catalog.add cat "Customer" (customer ());
  cat

let eval ?ctrs e = Eval.eval ?ctrs (catalog ()) e

let test_value_order () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "int < str" true (Value.compare (v_int 99) (v_str "a") < 0);
  Alcotest.(check bool) "null = null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "a") (v_str "b") < 0)

let test_value_add () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "null absorbs" true (Value.equal (Value.add Value.Null (v_int 3)) (v_int 3));
  Alcotest.check_raises "string add" (Invalid_argument "Value.add: string operand")
    (fun () -> ignore (Value.add (v_str "x") (v_int 1)))

let test_schema_lookup () =
  let s =
    Schema.make "S" [ ("r", [ ("a", Schema.TInt); ("b", Schema.TStr) ]) ]
  in
  Alcotest.(check int) "attr count" 2 (Schema.attr_count s);
  Alcotest.(check (list string)) "qualified" [ "r.a"; "r.b" ] (Schema.qualified_attrs s);
  let rel, attr = Schema.split_qualified "r.a" in
  Alcotest.(check string) "rel" "r" rel;
  Alcotest.(check string) "attr" "a" attr;
  Alcotest.(check bool) "type" true (Schema.type_of s "r.a" = Schema.TInt)

let test_relation_basics () =
  let c = customer () in
  Alcotest.(check int) "cardinality" 3 (Relation.cardinality c);
  Alcotest.(check int) "arity" 6 (Relation.arity c);
  Alcotest.(check bool) "value" true
    (Value.equal (Relation.value c 0 "cname") (v_str "Alice"))

let test_relation_project_distinct () =
  let c = customer () in
  let p = Relation.project c [ "haddr" ] in
  Alcotest.(check int) "bag size" 3 (Relation.cardinality p);
  Alcotest.(check int) "distinct size" 2 (Relation.cardinality (Relation.distinct p))

let test_relation_product () =
  let c = customer () in
  let small = Relation.create ~cols:[ "x" ] [ [| v_int 1 |]; [| v_int 2 |] ] in
  let p = Relation.product c small in
  Alcotest.(check int) "product card" 6 (Relation.cardinality p);
  Alcotest.(check int) "product arity" 7 (Relation.arity p)

let test_relation_rename_prefix () =
  let c = Relation.rename_prefix (customer ()) "C1" in
  Alcotest.(check bool) "prefixed col" true (Relation.mem_col c "C1#cname");
  Alcotest.(check bool) "old gone" false (Relation.mem_col c "cname")

let test_relation_duplicate_col_rejected () =
  Alcotest.check_raises "dup col" (Invalid_argument "Relation: duplicate column x")
    (fun () -> ignore (Relation.create ~cols:[ "x"; "x" ] []))

let test_pred_eval () =
  let c = customer () in
  let r = Pred.eval_on c (Pred.eq "ophone" (v_str "456")) in
  Alcotest.(check int) "eq" 2 (Relation.cardinality r);
  let r2 = Pred.eval_on c (Pred.eq_cols "oaddr" "haddr") in
  Alcotest.(check int) "eq_cols: cindy" 1 (Relation.cardinality r2);
  let r3 =
    Pred.eval_on c
      (Pred.conj [ Pred.eq "ophone" (v_str "456"); Pred.eq "haddr" (v_str "hk") ])
  in
  Alcotest.(check int) "conj" 1 (Relation.cardinality r3);
  let r4 = Pred.eval_on c (Pred.Not (Pred.eq "haddr" (v_str "hk"))) in
  Alcotest.(check int) "not" 1 (Relation.cardinality r4)

let test_pred_conjuncts_roundtrip () =
  let atoms = [ Pred.eq "a" (v_int 1); Pred.eq "b" (v_int 2); Pred.eq_cols "a" "b" ] in
  Alcotest.(check int) "3 conjuncts" 3 (List.length (Pred.conjuncts (Pred.conj atoms)));
  Alcotest.(check (list string)) "columns" [ "a"; "b" ]
    (Pred.columns (Pred.conj atoms))

(* q0 of the paper's introduction: π_addr σ_phone='123' Person, reformulated
   through (ophone,phone),(oaddr,addr): π_oaddr σ_ophone='123' Customer = aaa. *)
let test_eval_paper_q0 () =
  let q =
    Algebra.Project
      ([ "oaddr" ], Algebra.Select (Pred.eq "ophone" (v_str "123"), Algebra.Base "Customer"))
  in
  let r = eval q in
  Alcotest.(check int) "one row" 1 (Relation.cardinality r);
  Alcotest.(check bool) "aaa" true (Value.equal (Relation.value r 0 "oaddr") (v_str "aaa"));
  (* The hphone variant yields bbb, the paper's motivating discrepancy. *)
  let q' =
    Algebra.Project
      ([ "oaddr" ], Algebra.Select (Pred.eq "hphone" (v_str "123"), Algebra.Base "Customer"))
  in
  let r' = eval q' in
  Alcotest.(check bool) "bbb" true (Value.equal (Relation.value r' 0 "oaddr") (v_str "bbb"))

let test_eval_aggregates () =
  let count = eval (Algebra.Aggregate (Algebra.Count, Algebra.Base "Customer")) in
  Alcotest.(check bool) "count 3" true (Value.equal (Relation.value count 0 "count") (v_int 3));
  let sum = eval (Algebra.Aggregate (Algebra.Sum "cid", Algebra.Base "Customer")) in
  Alcotest.(check bool) "sum 6" true (Value.equal (Relation.value sum 0 "sum(cid)") (v_int 6));
  let empty =
    eval
      (Algebra.Aggregate
         (Algebra.Sum "cid", Algebra.Select (Pred.eq "cname" (v_str "Zoe"), Algebra.Base "Customer")))
  in
  Alcotest.(check bool) "sum over empty is null" true
    (Value.is_null (Relation.value empty 0 "sum(cid)"))

let test_eval_join_vs_product () =
  let a = Relation.create ~cols:[ "k"; "va" ] [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |] ] in
  let b = Relation.create ~cols:[ "j"; "vb" ] [ [| v_int 1; v_str "p" |]; [| v_int 1; v_str "q" |] ] in
  let cat = Catalog.create () in
  Catalog.add cat "A" a;
  Catalog.add cat "B" b;
  let join = Algebra.Join (Pred.eq_cols "k" "j", Algebra.Base "A", Algebra.Base "B") in
  let r = Eval.eval cat join in
  Alcotest.(check int) "join rows" 2 (Relation.cardinality r);
  let prod_sel =
    Algebra.Select (Pred.eq_cols "k" "j", Algebra.Product (Algebra.Base "A", Algebra.Base "B"))
  in
  let r2 = Eval.eval cat prod_sel in
  Alcotest.(check bool) "join = σ(product)" true (Relation.equal_contents r r2)

let test_eval_pushdown_shape () =
  let cat = catalog () in
  let other = Relation.create ~cols:[ "x" ] [ [| v_int 1 |]; [| v_int 2 |] ] in
  let expr =
    Algebra.Select
      ( Pred.eq "ophone" (v_str "456"),
        Algebra.Product (Algebra.Base "Customer", Algebra.Mat other) )
  in
  let opt = Eval.optimize cat expr in
  (match opt with
  | Algebra.Product (Algebra.Select _, _) -> ()
  | other -> Alcotest.failf "selection not pushed: %s" (Algebra.to_string other));
  Alcotest.(check bool) "same result" true
    (Relation.equal_contents (Eval.eval cat expr) (Eval.eval cat ~optimize:false expr))

let test_eval_index_matches_scan () =
  let cat = catalog () in
  let q = Algebra.Select (Pred.eq "ophone" (v_str "456"), Algebra.Base "Customer") in
  let with_index = Eval.eval cat q in
  Catalog.set_indexing cat false;
  let without = Eval.eval cat q in
  Alcotest.(check bool) "index = scan" true (Relation.equal_contents with_index without)

let test_eval_counters () =
  let ctrs = Eval.fresh_counters () in
  let q =
    Algebra.Project ([ "cname" ], Algebra.Select (Pred.eq "haddr" (v_str "hk"), Algebra.Base "Customer"))
  in
  ignore (eval ~ctrs q);
  Alcotest.(check int) "two operators" 2 ctrs.Eval.operators

let test_rename_select_through_index () =
  let cat = catalog () in
  let q =
    Algebra.Select
      (Pred.eq "C1#ophone" (v_str "456"), Algebra.Rename ("C1", Algebra.Base "Customer"))
  in
  let r = Eval.eval cat q in
  Alcotest.(check int) "rows" 2 (Relation.cardinality r);
  Alcotest.(check bool) "renamed col" true (Relation.mem_col r "C1#cname")

let test_algebra_fingerprint () =
  let q1 = Algebra.Select (Pred.eq "a" (v_int 1), Algebra.Base "r") in
  let q2 = Algebra.Select (Pred.eq "a" (v_int 1), Algebra.Base "r") in
  let q3 = Algebra.Select (Pred.eq "a" (v_int 2), Algebra.Base "r") in
  Alcotest.(check bool) "equal" true (Algebra.equal q1 q2);
  Alcotest.(check bool) "not equal" false (Algebra.equal q1 q3);
  Alcotest.(check int) "size" 1 (Algebra.size q1)

(* Property: optimisation never changes results. *)
let qcheck_optimize_preserves =
  let gen_pred =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Pred.eq "cid" (Value.Int i)) (1 -- 3);
          map (fun s -> Pred.eq "haddr" (Value.Str s)) (oneofl [ "hk"; "aaa"; "zz" ]);
          return (Pred.eq_cols "oaddr" "haddr");
        ])
  in
  let gen_expr =
    QCheck.Gen.(
      let base = return (Algebra.Base "Customer") in
      fix (fun self depth ->
          if depth = 0 then base
          else
            oneof
              [
                base;
                map2 (fun p e -> Algebra.Select (p, e)) gen_pred (self (depth - 1));
                map (fun e -> Algebra.Distinct e) (self (depth - 1));
                map (fun e -> Algebra.Project ([ "cid"; "oaddr"; "haddr" ], Algebra.Select (Pred.True, e)))
                  (return (Algebra.Base "Customer"));
              ])
        3)
  in
  QCheck.Test.make ~name:"optimize preserves evaluation" ~count:100
    (QCheck.make gen_expr ~print:Algebra.to_string)
    (fun e ->
      let cat = catalog () in
      Relation.equal_contents (Eval.eval cat e) (Eval.eval ~optimize:false cat e))

let suite =
  [
    Alcotest.test_case "value order" `Quick test_value_order;
    Alcotest.test_case "value add" `Quick test_value_add;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "relation basics" `Quick test_relation_basics;
    Alcotest.test_case "project/distinct" `Quick test_relation_project_distinct;
    Alcotest.test_case "product" `Quick test_relation_product;
    Alcotest.test_case "rename prefix" `Quick test_relation_rename_prefix;
    Alcotest.test_case "duplicate col rejected" `Quick test_relation_duplicate_col_rejected;
    Alcotest.test_case "pred eval" `Quick test_pred_eval;
    Alcotest.test_case "pred conjuncts" `Quick test_pred_conjuncts_roundtrip;
    Alcotest.test_case "paper q0" `Quick test_eval_paper_q0;
    Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
    Alcotest.test_case "join = filtered product" `Quick test_eval_join_vs_product;
    Alcotest.test_case "pushdown shape" `Quick test_eval_pushdown_shape;
    Alcotest.test_case "index matches scan" `Quick test_eval_index_matches_scan;
    Alcotest.test_case "operator counters" `Quick test_eval_counters;
    Alcotest.test_case "select through rename+index" `Quick test_rename_select_through_index;
    Alcotest.test_case "fingerprints" `Quick test_algebra_fingerprint;
    QCheck_alcotest.to_alcotest qcheck_optimize_preserves;
  ]
