test/test_xmlconv.ml: Alcotest Convert Format List Schema String Urm_relalg Urm_tpch Urm_workload Urm_xmlconv Xtree
