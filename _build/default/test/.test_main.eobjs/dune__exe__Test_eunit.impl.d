test/test_eunit.ml: Alcotest Catalog Eval List Relation Schema String Urm Urm_relalg Value
