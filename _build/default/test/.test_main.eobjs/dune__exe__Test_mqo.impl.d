test/test_mqo.ml: Alcotest Algebra Catalog Eval List Pred QCheck QCheck_alcotest Relation Urm_mqo Urm_relalg Value
