test/test_eval.ml: Alcotest Algebra Array Catalog Eval List Pred QCheck QCheck_alcotest Relation Stats_est Urm_mqo Urm_relalg Value
