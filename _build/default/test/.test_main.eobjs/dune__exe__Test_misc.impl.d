test/test_misc.ml: Alcotest Format List String Sys Urm Urm_matcher Urm_relalg Urm_tpch Urm_util Urm_workload
