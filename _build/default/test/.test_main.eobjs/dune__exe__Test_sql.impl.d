test/test_sql.ml: Alcotest Catalog List QCheck QCheck_alcotest Relation Schema String Urm Urm_relalg Urm_workload Value
