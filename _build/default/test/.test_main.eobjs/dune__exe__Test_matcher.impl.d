test/test_matcher.ml: Alcotest List Match QCheck QCheck_alcotest Simfun Synonyms Token Urm_matcher Urm_relalg Urm_tpch
