test/test_core.ml: Alcotest Algebra Array Catalog Float Format List Printf QCheck QCheck_alcotest Relation Schema String Urm Urm_matcher Urm_relalg Urm_util Value
