test/test_util.ml: Alcotest Array Gen Heap List Prng QCheck QCheck_alcotest Stats Urm_util
