test/test_relalg.ml: Alcotest Algebra Catalog Eval List Pred QCheck QCheck_alcotest Relation Schema Urm_relalg Value
