test/test_bipartite.ml: Alcotest Array Float Hungarian List Murty Printf QCheck QCheck_alcotest Urm_bipartite
