test/test_tpch.ml: Alcotest Array Catalog Float Hashtbl Lazy List Pred Relation Schema Urm_relalg Urm_tpch Value
