test/test_workload.ml: Alcotest Lazy List Printf QCheck QCheck_alcotest Urm Urm_relalg Urm_tpch Urm_workload
