test/test_extensions.ml: Alcotest Array Catalog Csv Filename Float Hashtbl List Option Printf QCheck QCheck_alcotest Relation Schema Set Sys Urm Urm_relalg Urm_tpch Urm_util Value
