open Urm_matcher

let test_levenshtein () =
  Alcotest.(check int) "kitten/sitting" 3 (Simfun.levenshtein "kitten" "sitting");
  Alcotest.(check int) "identical" 0 (Simfun.levenshtein "phone" "phone");
  Alcotest.(check int) "empty" 5 (Simfun.levenshtein "" "phone")

let test_lev_sim () =
  Alcotest.(check (float 1e-9)) "identical" 1. (Simfun.lev_sim "abc" "abc");
  Alcotest.(check (float 1e-9)) "disjoint" 0. (Simfun.lev_sim "abc" "xyz");
  Alcotest.(check (float 1e-9)) "both empty" 1. (Simfun.lev_sim "" "")

let test_ngram_sim () =
  Alcotest.(check (float 1e-9)) "identical" 1. (Simfun.ngram_sim ~n:3 "phone" "phone");
  Alcotest.(check bool) "related > unrelated" true
    (Simfun.ngram_sim ~n:3 "telephone" "phone" > Simfun.ngram_sim ~n:3 "telephone" "status")

let test_tokenize_camel () =
  Alcotest.(check (list string)) "camelCase" [ "invoice" ] (Token.tokens "invoiceTo");
  Alcotest.(check (list string)) "three words" [ "deliver"; "street" ]
    (Token.tokens "deliverToStreet");
  Alcotest.(check (list string)) "item num" [ "item"; "num" ] (Token.tokens "itemNum")

let test_tokenize_tpch_prefix () =
  Alcotest.(check (list string)) "c_phone" [ "phone" ] (Token.tokens "c_phone");
  Alcotest.(check (list string)) "ps_availqty" [ "avail"; "qty" ] (Token.tokens "ps_availqty");
  Alcotest.(check (list string)) "o_orderpriority" [ "order"; "priority" ]
    (Token.tokens "o_orderpriority")

let test_decompose () =
  Alcotest.(check (list string)) "compound" [ "order"; "key" ]
    (Token.decompose Synonyms.vocabulary "orderkey");
  Alcotest.(check (list string)) "no decomposition" [ "zzqqx" ]
    (Token.decompose Synonyms.vocabulary "zzqqx")

let test_synonyms () =
  Alcotest.(check string) "telephone → phone" "phone" (Synonyms.canon "telephone");
  Alcotest.(check string) "key → num" "num" (Synonyms.canon "key");
  Alcotest.(check string) "unknown unchanged" "frobnicate" (Synonyms.canon "frobnicate")

let test_name_score_intended_pairs () =
  let strong = [ ("telephone", "c_phone"); ("orderNum", "o_orderkey");
                 ("itemNum", "l_partkey"); ("quantity", "l_quantity");
                 ("priority", "o_orderpriority"); ("invoiceTo", "o_invoicename");
                 ("deliverToStreet", "o_deliverstreet"); ("unitPrice", "o_totalprice") ] in
  List.iter
    (fun (t, s) ->
      let score = Match.name_score s t in
      if score < 0.5 then
        Alcotest.failf "intended pair %s/%s scored %.3f" t s score)
    strong;
  let weak = [ ("telephone", "o_orderdate"); ("quantity", "c_name"); ("priority", "l_tax") ] in
  List.iter
    (fun (t, s) ->
      let score = Match.name_score s t in
      if score > 0.45 then Alcotest.failf "bogus pair %s/%s scored %.3f" t s score)
    weak

let test_pair_score_context_bonus () =
  let with_ctx =
    Match.pair_score ~src_rel:"orders" ~src:"o_orderkey" ~dst_rel:"PO" ~dst:"orderNum"
  in
  let without_ctx =
    Match.pair_score ~src_rel:"nation" ~src:"o_orderkey" ~dst_rel:"PO" ~dst:"orderNum"
  in
  Alcotest.(check bool) "context helps" true (with_ctx > without_ctx)

let test_pair_score_deterministic () =
  let s () =
    Match.pair_score ~src_rel:"customer" ~src:"c_phone" ~dst_rel:"PO" ~dst:"telephone"
  in
  Alcotest.(check (float 1e-12)) "stable" (s ()) (s ())

let test_candidates_sorted_and_thresholded () =
  let target =
    Urm_relalg.Schema.make "T"
      [ ("PO", [ ("telephone", Urm_relalg.Schema.TStr); ("orderNum", Urm_relalg.Schema.TStr) ]) ]
  in
  let cands = Match.candidates ~source:Urm_tpch.Gen.schema ~target () in
  Alcotest.(check bool) "non-empty" true (cands <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Match.score >= b.Match.score && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted cands);
  List.iter
    (fun c -> Alcotest.(check bool) "above threshold" true (c.Match.score >= 0.45))
    cands;
  Alcotest.(check bool) "telephone has multiple candidates" true
    (List.length (List.filter (fun c -> c.Match.dst = "PO.telephone") cands) >= 2)

let qcheck_score_bounds =
  let name_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 12)) in
  QCheck.Test.make ~name:"pair_score in [0,1]" ~count:300
    (QCheck.make QCheck.Gen.(pair name_gen name_gen))
    (fun (a, b) ->
      let s = Match.pair_score ~src_rel:"r" ~src:a ~dst_rel:"t" ~dst:b in
      s >= 0. && s <= 1.)

let qcheck_lev_triangle =
  let name_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (0 -- 8)) in
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:300
    (QCheck.make QCheck.Gen.(triple name_gen name_gen name_gen))
    (fun (a, b, c) ->
      Simfun.levenshtein a c <= Simfun.levenshtein a b + Simfun.levenshtein b c)

let qcheck_lev_symmetric =
  let name_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'd') (0 -- 10)) in
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:300
    (QCheck.make QCheck.Gen.(pair name_gen name_gen))
    (fun (a, b) -> Simfun.levenshtein a b = Simfun.levenshtein b a)

let suite =
  [
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "lev_sim" `Quick test_lev_sim;
    Alcotest.test_case "ngram_sim" `Quick test_ngram_sim;
    Alcotest.test_case "tokenize camelCase" `Quick test_tokenize_camel;
    Alcotest.test_case "tokenize tpch prefix" `Quick test_tokenize_tpch_prefix;
    Alcotest.test_case "decompose" `Quick test_decompose;
    Alcotest.test_case "synonyms" `Quick test_synonyms;
    Alcotest.test_case "intended pairs score high" `Quick test_name_score_intended_pairs;
    Alcotest.test_case "context bonus" `Quick test_pair_score_context_bonus;
    Alcotest.test_case "deterministic scores" `Quick test_pair_score_deterministic;
    Alcotest.test_case "candidates sorted+thresholded" `Quick test_candidates_sorted_and_thresholded;
    QCheck_alcotest.to_alcotest qcheck_score_bounds;
    QCheck_alcotest.to_alcotest qcheck_lev_triangle;
    QCheck_alcotest.to_alcotest qcheck_lev_symmetric;
  ]
