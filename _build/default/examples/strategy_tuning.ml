(* Operator-selection strategies: how o-sharing decides what to run next.

   o-sharing repeatedly picks one pending target operator, partitions the
   mappings by how they reformulate it, and executes one source operator per
   partition.  The order matters: a bad pick multiplies downstream
   partitions.  The paper compares Random, SNF (fewest partitions first) and
   SEF (smallest entropy first); this example reproduces that comparison and
   also shows the partition entropies SEF reasons about.

   Run with: dune exec examples/strategy_tuning.exe *)

let () =
  let pipeline = Urm_workload.Pipeline.create ~seed:11 ~scale:0.05 () in
  let queries = [ "Q3"; "Q4"; "Q5" ] in
  Format.printf "%-5s %-9s %-10s %-12s %-8s@." "query" "strategy" "time(s)"
    "operators" "e-units";
  List.iter
    (fun qname ->
      let target, q = Urm_workload.Queries.by_name qname in
      let ctx = Urm_workload.Pipeline.ctx pipeline target in
      let ms = Urm_workload.Pipeline.mappings pipeline target ~h:100 in
      List.iter
        (fun strategy ->
          let t0 = Unix.gettimeofday () in
          let report, stats = Urm.Osharing.run_with_stats ~strategy ctx q ms in
          Format.printf "%-5s %-9s %-10.4f %-12d %-8d@." qname
            (Urm.Eunit.strategy_name strategy)
            (Unix.gettimeofday () -. t0)
            report.Urm.Report.source_operators stats.Urm.Osharing.eunits)
        [ Urm.Eunit.Random; Urm.Eunit.Snf; Urm.Eunit.Sef ])
    queries;

  (* Why SEF differs from SNF: the paper's Fig. 7 example.  Partition counts
     alone prefer o1 (three partitions over four), entropy prefers o2
     because 70% of the mappings land in a single partition. *)
  let e1 = Urm_util.Stats.entropy [ 0.4; 0.3; 0.3 ] in
  let e2 = Urm_util.Stats.entropy [ 0.1; 0.7; 0.1; 0.1 ] in
  Format.printf
    "@.Paper Fig. 7: E(o1 | 3 partitions 40/30/30) = %.2f, E(o2 | 4 partitions 10/70/10/10) = %.2f@."
    e1 e2;
  Format.printf "SNF picks o1 (fewer partitions); SEF picks o2 (lower entropy).@."
