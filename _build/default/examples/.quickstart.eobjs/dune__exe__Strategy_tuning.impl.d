examples/strategy_tuning.ml: Format List Unix Urm Urm_util Urm_workload
