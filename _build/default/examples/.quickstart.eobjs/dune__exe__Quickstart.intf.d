examples/quickstart.mli:
