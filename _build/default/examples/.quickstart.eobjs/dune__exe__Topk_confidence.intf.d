examples/topk_confidence.mli:
