examples/ecommerce_integration.ml: Format List Urm Urm_matcher Urm_relalg Urm_tpch Urm_workload Urm_xmlconv
