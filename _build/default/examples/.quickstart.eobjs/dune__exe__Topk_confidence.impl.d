examples/topk_confidence.ml: Array Format List String Urm Urm_relalg Urm_workload
