examples/advanced_features.ml: Array Filename Format List String Sys Urm Urm_relalg Urm_tpch Urm_workload
