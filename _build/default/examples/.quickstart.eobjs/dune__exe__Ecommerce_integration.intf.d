examples/ecommerce_integration.mli:
