examples/quickstart.ml: Array Catalog Format List Relation Schema Urm Urm_relalg Value
