(* Top-k queries: when only the most credible answers matter.

   The Noris schema's Q7 asks for item numbers and unit prices of a specific
   order.  Different mappings disagree about which source column holds the
   unit price, so answers carry real uncertainty; a top-k query returns the
   k most probable answers while pruning most of the u-trace.

   Run with: dune exec examples/topk_confidence.exe *)

let () =
  let pipeline = Urm_workload.Pipeline.create ~seed:5 ~scale:0.05 () in
  let target, q = Urm_workload.Queries.by_name "Q7" in
  let ctx = Urm_workload.Pipeline.ctx pipeline target in
  let mappings = Urm_workload.Pipeline.mappings pipeline target ~h:100 in
  Format.printf "Query: %a@.@." Urm.Query.pp q;

  (* Ground truth: the full probabilistic answer via o-sharing. *)
  let full = Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx q mappings in
  Format.printf "Exact evaluation: %d distinct answers, %d source operators@."
    (Urm.Answer.size full.Urm.Report.answer)
    full.Urm.Report.source_operators;
  Format.printf "Three most probable:@.";
  List.iter
    (fun (t, p) ->
      Format.printf "  (%s) : %.3f@."
        (String.concat ", " (Array.to_list (Array.map Urm_relalg.Value.to_string t)))
        p)
    (Urm.Answer.top_k full.Urm.Report.answer 3);

  (* Top-k for increasing k: fewer e-units visited for small k. *)
  Format.printf "@.%-4s %-10s %-10s %s@." "k" "e-units" "operators" "early stop";
  List.iter
    (fun k ->
      let r = Urm.Topk.run ~k ctx q mappings in
      Format.printf "%-4d %-10d %-10d %b@." k r.Urm.Topk.visited_eunits
        r.Urm.Topk.report.Urm.Report.source_operators r.Urm.Topk.stopped_early)
    [ 1; 5; 10; 20 ];

  (* Soundness check: every top-3 tuple really is among the most probable. *)
  let top3 = Urm.Topk.run ~k:3 ctx q mappings in
  let truth = Urm.Answer.top_k full.Urm.Report.answer 3 in
  let threshold = match List.rev truth with [] -> 0. | (_, p) :: _ -> p in
  let sound =
    List.for_all
      (fun (t, _) -> Urm.Answer.prob_of full.Urm.Report.answer t >= threshold -. 1e-9)
      (Urm.Answer.to_list top3.Urm.Topk.report.Urm.Report.answer)
  in
  Format.printf "@.Top-3 matches the exact ranking: %b@." sound
