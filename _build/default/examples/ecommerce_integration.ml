(* End-to-end data-integration scenario: a purchase-order web shop imports
   order data from a TPC-H-style supplier database whose schema it does not
   control.  The matcher scores attribute correspondences, Murty's algorithm
   ranks the 100 best one-to-one mappings, and probabilistic queries over the
   uncertain matching return every answer with its probability of being
   correct.

   Run with: dune exec examples/ecommerce_integration.exe *)

let () =
  (* 1. The source instance (scaled-down TPC-H-like purchase orders). *)
  let pipeline = Urm_workload.Pipeline.create ~seed:2024 ~scale:0.05 () in
  Format.printf "Source instance: %d tuples across 8 relations@."
    (Urm_workload.Pipeline.instance_rows pipeline);

  (* 2. The paper's schema-format border crossings (§VIII-A): the relational
     source schema converts to XML for the matcher's benefit, and the XML
     target schema inlines into relations for querying. *)
  let tpch_xml =
    Urm_xmlconv.Convert.nest
      ~fks:
        [
          ("nation", "region"); ("customer", "nation"); ("supplier", "nation");
          ("orders", "customer"); ("lineitem", "orders"); ("partsupp", "part");
        ]
      Urm_tpch.Gen.schema
  in
  Format.printf "@.TPC-H as XML (depth %d, %d leaves):@.%a@."
    (Urm_xmlconv.Xtree.depth tpch_xml)
    (Urm_xmlconv.Xtree.leaf_count tpch_xml)
    Urm_xmlconv.Xtree.pp tpch_xml;
  Format.printf "@.Excel target schema (XML, inlines to %d relational attributes):@.%a@."
    (Urm_relalg.Schema.attr_count Urm_workload.Targets.excel)
    Urm_xmlconv.Xtree.pp Urm_workload.Targets.excel_xml;

  (* 3. Match the Excel purchase-order schema against the source schema. *)
  let target = Urm_workload.Targets.excel in
  let candidates =
    Urm_matcher.Match.candidates ~source:Urm_tpch.Gen.schema ~target ()
  in
  Format.printf "Matcher produced %d correspondence candidates; top five:@."
    (List.length candidates);
  List.iteri
    (fun i c -> if i < 5 then Format.printf "  %a@." Urm_matcher.Match.pp_candidate c)
    candidates;

  (* 3. The 100 best mappings and how much they overlap. *)
  let mappings = Urm_workload.Pipeline.mappings pipeline target ~h:100 in
  Format.printf "@.%d possible mappings; best has %d correspondences; o-ratio %.2f@."
    (List.length mappings)
    (Urm.Mapping.size (List.hd mappings))
    (Urm.Overlap.o_ratio mappings);
  let shared = Urm.Overlap.correspondence_frequencies mappings in
  Format.printf "Most widely shared correspondences:@.";
  List.iteri
    (fun i ((t, s), f) ->
      if i < 5 then Format.printf "  %s ← %s  (in %.0f%% of mappings)@." t s (100. *. f))
    shared;

  (* 4. A probabilistic query: orders invoiced to Mary with priority 2 and
     the hot phone number (the paper's Q1). *)
  let ctx = Urm_workload.Pipeline.ctx pipeline target in
  let _, q1 = Urm_workload.Queries.by_name "Q1" in
  Format.printf "@.Query: %a@." Urm.Query.pp q1;
  let report = Urm.Algorithms.run (Urm.Algorithms.Osharing Urm.Eunit.Sef) ctx q1 mappings in
  Format.printf "%a@." Urm.Answer.pp report.Urm.Report.answer;

  (* 5. The same answer from the naive algorithm, at very different cost. *)
  let naive = Urm.Algorithms.run Urm.Algorithms.Basic ctx q1 mappings in
  Format.printf
    "@.o-sharing executed %d source operators; basic executed %d — same answer: %b@."
    report.Urm.Report.source_operators naive.Urm.Report.source_operators
    (Urm.Answer.equal report.Urm.Report.answer naive.Urm.Report.answer)
