(** Stable 64-bit FNV-1a hashing.

    Unlike [Hashtbl.hash], the digest is defined by the input bytes alone —
    independent of OCaml version, word size and process — so it is usable
    as a persistent fingerprint (session identity, cache keys on the
    service wire).  Not cryptographic: collisions are unlikely, not
    impossible. *)

type t = int64

val seed : t
(** The FNV-1a offset basis; starting state for {!add_string}. *)

val add_string : t -> string -> t
(** Fold the bytes of a string into the digest. *)

val add_int : t -> int -> t
(** Fold an integer (its decimal rendering, so it is platform-stable). *)

val add_float : t -> float -> t
(** Fold a float via its shortest round-trip decimal rendering. *)

val string : string -> t
(** [string s] = [add_string seed s]. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)
