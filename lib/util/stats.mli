(** Streaming and batch statistics used by the experiment harness. *)

(** Welford's online mean/variance accumulator. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Sample standard deviation; [0.] with fewer than two observations. *)
  val stddev : t -> float
end

(** [mean xs] of a list; [0.] when empty. *)
val mean : float list -> float

(** [stddev xs] sample standard deviation; [0.] with fewer than two items. *)
val stddev : float list -> float

(** [percentile p xs] with [p] in [\[0,1\]], by linear interpolation on the
    sorted data.  Raises [Invalid_argument] on an empty list. *)
val percentile : float -> float list -> float

(** [percentile_or_zero p xs] like {!percentile} but total: [0.] on an
    empty list — the convention for latency windows that may not have
    filled yet (a ring with [filled = 0] reports 0, never raises, so a
    metrics roll-up over idle shards is safe). *)
val percentile_or_zero : float -> float list -> float

(** [normal_quantile p] the standard normal quantile Φ⁻¹(p) for [p] in
    (0, 1) (Acklam's rational approximation, |error| < 1.2e-9).  The
    two-sided critical value for confidence 1−δ is
    [normal_quantile (1. -. delta /. 2.)].
    Raises [Invalid_argument] outside (0, 1). *)
val normal_quantile : float -> float

(** [wilson_interval ~positives ~n ~z] the Wilson score interval
    [(lo, hi)] ⊆ [\[0,1\]] for a binomial proportion observed as
    [positives] successes in [n] trials at critical value [z].  Unlike the
    Wald interval it stays informative at counts 0 and [n] (the anytime
    estimator's unseen-tuple bound is the [positives = 0] upper limit).
    Raises [Invalid_argument] on [n <= 0], a count outside [\[0, n\]] or a
    negative [z]. *)
val wilson_interval : positives:int -> n:int -> z:float -> float * float

(** [entropy fractions] is [-Σ f log2 f] over the strictly positive entries;
    the spread measure used by the SEF strategy (Definition 1 of the paper). *)
val entropy : float list -> float

(** [histogram ~buckets xs] counts of [xs] over [buckets] equal-width bins
    spanning \[min, max\].  Raises [Invalid_argument] on an empty list or a
    non-positive bucket count. *)
val histogram : buckets:int -> float list -> int array
