(** Imperative binary heap, parameterised by an explicit comparison.

    Used by the top-k algorithm (Algorithm 4 of the paper) to maintain
    candidate answer tuples ordered by lower-bound probability, and by the
    MQO planner's benefit queue. *)

type 'a t

(** [create cmp] is an empty heap; the minimum according to [cmp] sits at
    the root (pass a flipped comparison for a max-heap). *)
val create : ('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [peek t] is the root without removing it.  Raises [Not_found] if empty. *)
val peek : 'a t -> 'a

(** [pop t] removes and returns the root.  Raises [Not_found] if empty. *)
val pop : 'a t -> 'a

(** [copy t] an independent heap with the same elements; only the live
    elements are cloned, never stale slots of the backing array. *)
val copy : 'a t -> 'a t

(** [to_sorted_list t] drains a copy of [t] in ascending order. *)
val to_sorted_list : 'a t -> 'a list

(** [of_list cmp xs] builds a heap from [xs]. *)
val of_list : ('a -> 'a -> int) -> 'a list -> 'a t

(** [iter f t] applies [f] to every element in unspecified order. *)
val iter : ('a -> unit) -> 'a t -> unit
