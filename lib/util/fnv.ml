type t = int64

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  (* Separator byte so ["ab";"c"] and ["a";"bc"] differ. *)
  add_byte !h 0x1f

let add_int h i = add_string h (string_of_int i)
let add_float h f = add_string h (Printf.sprintf "%h" f)
let string s = add_string seed s
let to_hex h = Printf.sprintf "%016Lx" h
