(** Wall-clock timing helpers for the experiment harness. *)

(** Current wall-clock time in seconds (the clock every helper below uses). *)
val now : unit -> float

(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] is the elapsed seconds of [f ()], discarding the result. *)
val time_only : (unit -> 'a) -> float

(** [repeat ~warmup ~runs f] runs [f] [warmup] times unmeasured, then [runs]
    times measured, returning the mean elapsed seconds per run. *)
val repeat : warmup:int -> runs:int -> (unit -> 'a) -> float

(** A resumable stopwatch used to attribute time to phases (e.g. the paper's
    evaluation-vs-aggregation breakdown in Fig. 10(a)). *)
module Stopwatch : sig
  type t

  val create : unit -> t
  val start : t -> unit
  val stop : t -> unit

  (** Accumulated running time in seconds. *)
  val elapsed : t -> float

  val reset : t -> unit
end
