let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let digest_sub get length ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> length s - pos in
  if pos < 0 || len < 0 || pos + len > length s then
    invalid_arg "Crc32.digest: range out of bounds";
  let table = Lazy.force table in
  let crc = ref mask32 in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (get s i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor mask32 land mask32

let digest ?pos ?len s = digest_sub String.unsafe_get String.length ?pos ?len s

let digest_bytes ?pos ?len b =
  digest_sub Bytes.unsafe_get Bytes.length ?pos ?len b
