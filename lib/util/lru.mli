(** A mutex-guarded LRU map from string keys to values.

    Backing store for the service answer cache and the compiled-plan
    cache: bounded capacity, O(1)
    lookup and insertion, least-recently-used eviction.  {!find} counts as
    a use.  All operations are safe to call from concurrent domains. *)

type 'a t

(** [create ~capacity] — raises [Invalid_argument] when [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] the cached value, promoting [key] to most recently used. *)
val find : 'a t -> string -> 'a option

(** [add t key v] binds [key], replacing any existing binding, and evicts
    least-recently-used entries beyond capacity.  Returns the evicted
    keys (at most one, except degenerate capacities). *)
val add : 'a t -> string -> 'a -> string list

(** [add_guarded t key v ~guard] like {!add}, but first runs [guard] under
    the map's lock and inserts only when it returns [true]; [None] means
    the insert was refused.  With invalidation also running under the lock
    ({!remove_if}), a guard that re-checks the version an entry was
    computed at makes publish-then-invalidate linearizable: a stale value
    can never be inserted after the invalidation that should have covered
    it.  [guard] must not re-enter the map. *)
val add_guarded :
  'a t -> string -> 'a -> guard:(unit -> bool) -> string list option

(** [put_if_absent t key v] inserts [v] only when [key] is unbound,
    otherwise promotes the incumbent.  Returns [(winner, inserted,
    evicted)] — the race discipline of caches whose values are computed
    outside the lock: the loser adopts the winner's value. *)
val put_if_absent : 'a t -> string -> 'a -> 'a * bool * string list

(** [remove t key] unbinds [key]; [false] when it was absent. *)
val remove : 'a t -> string -> bool

(** [remove_if t pred] unbinds every entry satisfying [pred] and returns how
    many were removed.  [pred] runs under the map's lock and must not
    re-enter the map.  Basis of the service cache's selective
    invalidation. *)
val remove_if : 'a t -> (string -> 'a -> bool) -> int

(** Drop every entry. *)
val clear : 'a t -> unit
