(** A mutex-guarded LRU map from string keys to values.

    Backing store for the service answer cache and the compiled-plan
    cache: bounded capacity, O(1)
    lookup and insertion, least-recently-used eviction.  {!find} counts as
    a use.  All operations are safe to call from concurrent domains. *)

type 'a t

(** [create ~capacity] — raises [Invalid_argument] when [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] the cached value, promoting [key] to most recently used. *)
val find : 'a t -> string -> 'a option

(** [add t key v] binds [key], replacing any existing binding, and evicts
    least-recently-used entries beyond capacity.  Returns the evicted
    keys (at most one, except degenerate capacities). *)
val add : 'a t -> string -> 'a -> string list

(** [put_if_absent t key v] inserts [v] only when [key] is unbound,
    otherwise promotes the incumbent.  Returns [(winner, inserted,
    evicted)] — the race discipline of caches whose values are computed
    outside the lock: the loser adopts the winner's value. *)
val put_if_absent : 'a t -> string -> 'a -> 'a * bool * string list

(** Drop every entry. *)
val clear : 'a t -> unit
