(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
    guarding binary frame headers on the service wire.  Table-driven, no
    external dependencies; the digest of [""] is [0] and of ["123456789"]
    is [0xCBF43926] (the standard check value). *)

val digest : ?pos:int -> ?len:int -> string -> int
(** [digest ?pos ?len s] the CRC-32 of the given substring (the whole
    string by default) as a non-negative int in [\[0, 2³²)].  Raises
    [Invalid_argument] when the range falls outside [s]. *)

val digest_bytes : ?pos:int -> ?len:int -> Bytes.t -> int
