module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
end

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  Welford.stddev w

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty input";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let percentile_or_zero p = function [] -> 0. | xs -> percentile p xs

(* Acklam's rational approximation of the standard normal quantile Φ⁻¹:
   absolute error < 1.15e-9 over (0, 1) — far below the sampling noise any
   confidence-interval user faces. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Stats.normal_quantile: p must lie in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let u = sqrt (-2. *. log p) in
    (((((c.(0) *. u +. c.(1)) *. u +. c.(2)) *. u +. c.(3)) *. u +. c.(4)) *. u
    +. c.(5))
    /. ((((d.(0) *. u +. d.(1)) *. u +. d.(2)) *. u +. d.(3)) *. u +. 1.)
  end
  else if p > 1. -. p_low then begin
    let u = sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. u +. c.(1)) *. u +. c.(2)) *. u +. c.(3)) *. u +. c.(4))
          *. u
       +. c.(5))
       /. ((((d.(0) *. u +. d.(1)) *. u +. d.(2)) *. u +. d.(3)) *. u +. 1.))
  end
  else begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
       +. 1.)
  end

let wilson_interval ~positives ~n ~z =
  if n <= 0 then invalid_arg "Stats.wilson_interval: n must be positive";
  if positives < 0 || positives > n then
    invalid_arg "Stats.wilson_interval: positives must lie in [0, n]";
  if not (z >= 0.) then invalid_arg "Stats.wilson_interval: z must be >= 0";
  let nf = float_of_int n in
  let phat = float_of_int positives /. nf in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let centre = (phat +. (z2 /. (2. *. nf))) /. denom in
  let half =
    z /. denom
    *. sqrt ((phat *. (1. -. phat) /. nf) +. (z2 /. (4. *. nf *. nf)))
  in
  (Float.max 0. (centre -. half), Float.min 1. (centre +. half))

let entropy fractions =
  List.fold_left
    (fun acc f -> if f > 0. then acc -. (f *. (log f /. log 2.)) else acc)
    0. fractions

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if xs = [] then invalid_arg "Stats.histogram: empty input";
  let lo = List.fold_left min infinity xs in
  let hi = List.fold_left max neg_infinity xs in
  let counts = Array.make buckets 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1. in
  let bucket_of x =
    let b = int_of_float ((x -. lo) /. width) in
    if b >= buckets then buckets - 1 else if b < 0 then 0 else b
  in
  List.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
  counts
