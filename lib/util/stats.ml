module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
end

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  Welford.stddev w

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty input";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let entropy fractions =
  List.fold_left
    (fun acc f -> if f > 0. then acc -. (f *. (log f /. log 2.)) else acc)
    0. fractions

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if xs = [] then invalid_arg "Stats.histogram: empty input";
  let lo = List.fold_left min infinity xs in
  let hi = List.fold_left max neg_infinity xs in
  let counts = Array.make buckets 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1. in
  let bucket_of x =
    let b = int_of_float ((x -. lo) /. width) in
    if b >= buckets then buckets - 1 else if b < 0 then 0 else b
  in
  List.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
  counts
