(** Walker-Vose alias tables: sampling from a discrete distribution in O(1)
    per draw after O(n) construction.

    The shared weighted sampler of the repository: {!Urm.Montecarlo} draws
    validation worlds through it and [lib/anytime]'s budgeted estimator
    samples mappings weighted by [Pr(mi)] — both deterministic from an
    explicit {!Prng.t}. *)

type t

(** [create weights] builds the table.  Weights need not be normalised;
    they must be non-negative with a positive sum.
    Raises [Invalid_argument] otherwise (or when empty). *)
val create : float array -> t

(** Number of outcomes. *)
val length : t -> int

(** [draw t rng] an index in [\[0, length t)], distributed proportionally
    to the construction weights.  Consumes exactly two PRNG draws. *)
val draw : t -> Prng.t -> int
