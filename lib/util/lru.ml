(* Classic intrusive doubly-linked list over a hash table: [head] is the
   most recently used entry, [tail] the eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some n ->
        unlink t n;
        push_front t n;
        Some n.value)

let evict_over_capacity t =
  let evicted = ref [] in
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false
    | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      evicted := n.key :: !evicted
  done;
  !evicted

let add t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
      | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n);
      evict_over_capacity t)

let add_guarded t key value ~guard =
  locked t (fun () ->
      if not (guard ()) then None
      else begin
        (match Hashtbl.find_opt t.tbl key with
        | Some n ->
          n.value <- value;
          unlink t n;
          push_front t n
        | None ->
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace t.tbl key n;
          push_front t n);
        Some (evict_over_capacity t)
      end)

let put_if_absent t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        (* Keep the incumbent: callers that computed [value] outside the
           lock lost a race and must adopt the winner. *)
        unlink t n;
        push_front t n;
        (n.value, false, [])
      | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n;
        (value, true, evict_over_capacity t))

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> false
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl key;
        true)

let remove_if t pred =
  locked t (fun () ->
      (* Collect first: [pred] must not run while we restructure the list,
         and Hashtbl iteration forbids concurrent removal. *)
      let doomed =
        Hashtbl.fold
          (fun key n acc -> if pred key n.value then n :: acc else acc)
          t.tbl []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key)
        doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)
