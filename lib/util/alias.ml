(* Walker-Vose alias method: O(n) construction, O(1) per draw.

   Construction partitions the normalised weights into "small" (< 1/n) and
   "large" (≥ 1/n) columns and pairs each small column with a large donor,
   so every column holds at most two outcomes: itself (with probability
   [prob.(i)]) and its alias.  A draw picks a uniform column and flips the
   column's biased coin — two PRNG draws, independent of n. *)

type t = {
  prob : float array;  (* acceptance probability of column i *)
  alias : int array;  (* donor outcome when the coin rejects *)
}

let length t = Array.length t.prob

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty weights";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Alias.create: weights must sum > 0";
  Array.iter
    (fun w ->
      if not (w >= 0.) then invalid_arg "Alias.create: negative weight")
    weights;
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  (* Worklists as explicit stacks over index arrays (no allocation per
     element beyond the two arrays). *)
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  Array.iteri
    (fun i s ->
      if s < 1. then begin
        small.(!ns) <- i;
        incr ns
      end
      else begin
        large.(!nl) <- i;
        incr nl
      end)
    scaled;
  while !ns > 0 && !nl > 0 do
    decr ns;
    let s = small.(!ns) in
    let l = large.(!nl - 1) in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then begin
      decr nl;
      small.(!ns) <- l;
      incr ns
    end
  done;
  (* Leftovers (either list) sit at exactly 1 up to rounding. *)
  while !nl > 0 do
    decr nl;
    prob.(large.(!nl)) <- 1.
  done;
  while !ns > 0 do
    decr ns;
    prob.(small.(!ns)) <- 1.
  done;
  { prob; alias }

let draw t rng =
  let n = Array.length t.prob in
  let i = Prng.int rng n in
  if Prng.float rng < t.prob.(i) then i else t.alias.(i)
