(** Probability-threshold queries: all answers with probability ≥ τ.

    A companion to {!Topk} in the same spirit (the "probability threshold"
    query class of the uncertain-database literature the paper builds on):
    the u-trace is pruned with the same lower/upper-bound reasoning —
    a tuple is {e in} once its accumulated lower bound reaches τ, {e out}
    once even the whole unvisited mass cannot lift it to τ, and traversal
    stops as soon as every candidate is decided and no new tuple can still
    qualify. *)

type result = {
  report : Report.t;
      (** [report.answer] holds the qualifying tuples with their
          accumulated lower-bound probabilities (exact when
          [stopped_early = false]) *)
  visited_eunits : int;
  stopped_early : bool;
}

(** [run ~tau ctx q ms] with [0 < tau ≤ 1].
    Raises [Invalid_argument] otherwise.  Counters and phase timers are
    recorded under the ["threshold"] scope of [metrics] (default
    {!Urm_obs.Metrics.global}). *)
val run :
  ?strategy:Eunit.strategy ->
  ?seed:int ->
  ?use_memo:bool ->
  ?metrics:Urm_obs.Metrics.t ->
  tau:float ->
  Ctx.t ->
  Query.t ->
  Mapping.t list ->
  result
