open Urm_relalg

type t =
  | Query of Query.t
  | Union of t * t
  | Intersect of t * t
  | Except of t * t

let rec leaves = function
  | Query q -> [ q ]
  | Union (a, b) | Intersect (a, b) | Except (a, b) -> leaves a @ leaves b

let rec pp ppf = function
  | Query q -> Format.fprintf ppf "(%s)" q.Query.name
  | Union (a, b) -> Format.fprintf ppf "(%a ∪ %a)" pp a pp b
  | Intersect (a, b) -> Format.fprintf ppf "(%a ∩ %a)" pp a pp b
  | Except (a, b) -> Format.fprintf ppf "(%a ∖ %a)" pp a pp b

let arity q = List.length (Reformulate.output_header q)

let validate c =
  match leaves c with
  | [] -> invalid_arg "Compound.validate: no member queries"
  | first :: rest ->
    let a = arity first in
    List.iter
      (fun q ->
        if arity q <> a then
          invalid_arg
            (Printf.sprintf "Compound.validate: %s has arity %d, expected %d"
               q.Query.name (arity q) a))
      rest

(* Tuple sets as hash tables keyed by the tuple arrays. *)
module Tset = struct
  type t = (Value.t array, unit) Hashtbl.t

  let of_list l : t =
    let h = Hashtbl.create (max 16 (List.length l)) in
    List.iter (fun t -> Hashtbl.replace h t ()) l;
    h

  let union (a : t) (b : t) : t =
    let out = Hashtbl.copy a in
    Hashtbl.iter (fun k () -> Hashtbl.replace out k ()) b;
    out

  let inter (a : t) (b : t) : t =
    let out = Hashtbl.create 16 in
    Hashtbl.iter (fun k () -> if Hashtbl.mem b k then Hashtbl.replace out k ()) a;
    out

  let diff (a : t) (b : t) : t =
    let out = Hashtbl.create 16 in
    Hashtbl.iter (fun k () -> if not (Hashtbl.mem b k) then Hashtbl.replace out k ()) a;
    out
end

let run (ctx : Ctx.t) c ms =
  validate c;
  let members = leaves c in
  let ctrs = Eval.fresh_counters () in
  (* Group mappings by the vector of member source-query keys: mappings in
     one group give every member the same source query, hence the same
     compound answer. *)
  let sq_of m q = Reformulate.source_query ctx.target q m in
  let groups, rewrite =
    Urm_util.Timer.time (fun () ->
        Ptree.partition_by_labels
          (fun m ->
            String.concat "\x00"
              (List.map (fun q -> Reformulate.key (sq_of m q)) members))
          ms)
  in
  (* Each distinct member source query evaluates once across all groups. *)
  let cache : (string, Tset.t) Hashtbl.t = Hashtbl.create 32 in
  let member_set m q =
    let sq = sq_of m q in
    let key = Reformulate.key sq in
    match Hashtbl.find_opt cache key with
    | Some set -> set
    | None ->
      let rel =
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Ctx.eval ~ctrs ctx e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None
      in
      let tuples =
        Reformulate.result_tuples sq ~factor:(Reformulate.factor ctx.catalog sq) rel
      in
      let set = Tset.of_list tuples in
      Hashtbl.replace cache key set;
      set
  in
  let header = Reformulate.output_header (List.hd members) in
  let acc = Answer.create header in
  let (), evaluate =
    Urm_util.Timer.time (fun () ->
        List.iter
          (fun (_, group) ->
            let m = List.hd group in
            let mass = Mapping.total_prob group in
            let rec eval_set = function
              | Query q -> member_set m q
              | Union (a, b) -> Tset.union (eval_set a) (eval_set b)
              | Intersect (a, b) -> Tset.inter (eval_set a) (eval_set b)
              | Except (a, b) -> Tset.diff (eval_set a) (eval_set b)
            in
            let set = eval_set c in
            if Hashtbl.length set = 0 then Answer.add_null acc mass
            else Hashtbl.iter (fun tuple () -> Answer.add acc tuple mass) set)
          groups)
  in
  {
    Report.answer = acc;
    intervals = None;
    timings = { Report.rewrite; plan = 0.; evaluate; aggregate = 0. };
    source_operators = ctrs.Eval.operators;
    rows_produced = ctrs.Eval.rows_produced;
    groups = List.length groups;
    engine = Urm_relalg.Compile.engine_name (Ctx.engine ctx);
  }
