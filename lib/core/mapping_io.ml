module Json = Urm_util.Json

let to_json ms =
  Json.to_string
    (Json.Arr
       (List.map
          (fun m ->
            Json.Obj
              [
                ("id", Json.Num (float_of_int m.Mapping.id));
                ("prob", Json.Num m.Mapping.prob);
                ("score", Json.Num m.Mapping.score);
                ( "pairs",
                  Json.Arr
                    (List.map
                       (fun (t, s) -> Json.Arr [ Json.Str t; Json.Str s ])
                       m.Mapping.pairs) );
              ])
          ms))

(* Serialisation rounds probabilities through shortest-round-trip decimal
   text, so an honestly normalised set re-reads to a sum within float
   noise; anything beyond this tolerance is a corrupt or hand-edited
   file. *)
let sum_eps = 1e-6

let of_json text =
  let json = Json.parse_exn text in
  let ms =
    List.map
      (fun entry ->
        let field name =
          match Json.member name entry with
          | Some v -> v
          | None -> failwith ("Mapping_io: missing field " ^ name)
        in
        let pairs =
          List.map
            (fun pair ->
              match Json.to_list pair with
              | [ t; s ] -> (Json.to_str t, Json.to_str s)
              | _ -> failwith "Mapping_io: pair must be [target, source]")
            (Json.to_list (field "pairs"))
        in
        let prob = Json.to_float (field "prob") in
        if not (prob >= 0. && prob <= 1.) then
          failwith (Printf.sprintf "Mapping_io: probability %g outside [0,1]" prob);
        match
          Mapping.make
            ~id:(Json.to_int (field "id"))
            ~prob
            ~score:(Json.to_float (field "score"))
            pairs
        with
        | m -> m
        | exception Invalid_argument msg -> failwith ("Mapping_io: " ^ msg))
      (Json.to_list json)
  in
  if ms = [] then failwith "Mapping_io: empty mapping set";
  let total = Mapping.total_prob ms in
  if Float.abs (total -. 1.) > sum_eps then
    failwith
      (Printf.sprintf "Mapping_io: probabilities sum to %.9g, expected 1" total);
  ms

let save path ms =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ms))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (really_input_string ic (in_channel_length ic)))
