(** Persistence for mapping sets.

    A matching (h possible mappings with probabilities) is the expensive
    artefact of the pipeline — matcher scoring plus Murty enumeration —
    so it is worth saving between sessions.  Format: a JSON array of
    objects [{"id", "prob", "score", "pairs": [[target, source], …]}]. *)

(** [to_json ms] compact JSON text. *)
val to_json : Mapping.t list -> string

(** [of_json text] raises [Failure] on malformed JSON, missing or
    ill-typed fields, mappings that violate the one-to-one constraint, an
    empty mapping set, a probability outside [0,1], or probabilities that
    do not sum to 1 (within serialisation tolerance).  The query service
    reuses this format on the wire, so every error path must reject
    cleanly rather than load a corrupt matching. *)
val of_json : string -> Mapping.t list

(** [save path ms] / [load path]: file round-trip. *)
val save : string -> Mapping.t list -> unit

val load : string -> Mapping.t list
