(** The [basic] algorithm (paper §III-B.1): reformulate the target query
    through every possible mapping, evaluate each source query, and
    aggregate duplicate answers by summing probabilities. *)

(** [run ?metrics ctx q ms] records its counters and phase timers under the
    ["basic"] scope of [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** [run_scoped ~metrics …] like {!run} but records directly into [metrics]
    without adding the ["basic"] scope or the per-run summary — for callers
    (q-sharing) that reuse the evaluation loop under their own scope and
    adjust the report before recording it. *)
val run_scoped :
  metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** [accumulate ~ctrs ctx q acc ms] the raw evaluation loop: reformulate,
    evaluate and aggregate each mapping of [ms] (in order) into [acc],
    without timers or reporting.  The domain-parallel driver runs this over
    contiguous mapping chunks and merges the chunk answers in ascending
    chunk order (see {!Answer.merge_into}). *)
val accumulate :
  ctrs:Urm_relalg.Eval.counters ->
  Ctx.t ->
  Query.t ->
  Answer.t ->
  Mapping.t list ->
  unit
