open Urm_relalg

let representatives (ctx : Ctx.t) q ms =
  Ptree.represent (Ptree.partition ctx.target q ms)

(* The interpreted oracle runs {!Basic} over the representatives; the plan
   engines run the factorized executor over one singleton-weight unit per
   representative — same per-representative accumulation order (duplicate
   reformulation keys replay), one plan execution per distinct e-unit. *)
let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "q-sharing" in
  let reps, partition_time =
    Urm_util.Timer.time (fun () -> representatives ctx q ms)
  in
  let report =
    match Ctx.engine ctx with
    | Urm_relalg.Compile.Interpreted ->
      let report = Basic.run_scoped ~metrics:m ctx q reps in
      {
        report with
        Report.timings =
          {
            report.Report.timings with
            Report.rewrite = report.Report.timings.Report.rewrite +. partition_time;
          };
        groups = List.length reps;
      }
    | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
      let ctrs = Eval.fresh_counters ~metrics:m () in
      let units, rewrite =
        Urm_util.Timer.time (fun () -> Factorized.singleton_units ctx q reps)
      in
      let r = Factorized.eval ~ctrs ctx q units in
      {
        Report.answer = r.Factorized.answer;
        intervals = None;
        timings =
          {
            Report.rewrite = partition_time +. rewrite;
            plan = r.Factorized.plan_time;
            evaluate = r.Factorized.evaluate_time;
            aggregate = 0.;
          };
        source_operators = ctrs.Eval.operators;
        rows_produced = ctrs.Eval.rows_produced;
        groups = List.length reps;
        engine =
          Urm_relalg.Compile.engine_name (Ctx.engine ctx) ^ "+factorized";
      }
  in
  Report.record_metrics m report;
  report
