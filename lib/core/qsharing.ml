let representatives (ctx : Ctx.t) q ms =
  Ptree.represent (Ptree.partition ctx.target q ms)

let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "q-sharing" in
  let reps, partition_time =
    Urm_util.Timer.time (fun () -> representatives ctx q ms)
  in
  let report = Basic.run_scoped ~metrics:m ctx q reps in
  let report =
    {
      report with
      Report.timings =
        {
          report.Report.timings with
          Report.rewrite = report.Report.timings.Report.rewrite +. partition_time;
        };
      groups = List.length reps;
    }
  in
  Report.record_metrics m report;
  report
