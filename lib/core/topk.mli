(** Probabilistic top-k queries (paper §VII, Algorithm 4).

    Returns the k answer tuples with the highest probabilities without
    computing exact probabilities: the u-trace is expanded only until the
    maintained lower/upper bounds prove the top-k set, pruning the
    remaining e-units.  θ is probability book-keeping only, never a
    candidate answer (DESIGN.md, semantics decision 7).

    Reported per-tuple probabilities are the accumulated {e lower bounds}
    at termination (exact only for mass that was actually visited) — the
    paper's contract: the user "does not care about the exact probability
    values". *)

type result = {
  report : Report.t;
      (** [report.answer] holds the top-k tuples with their lower-bound
          probabilities *)
  visited_eunits : int;
  stopped_early : bool;
}

(** Counters and phase timers are recorded under the ["topk"] scope of
    [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?strategy:Eunit.strategy ->
  ?seed:int ->
  ?use_memo:bool ->
  ?metrics:Urm_obs.Metrics.t ->
  k:int ->
  Ctx.t ->
  Query.t ->
  Mapping.t list ->
  result
