open Urm_relalg

let sampler ms =
  let arr = Array.of_list ms in
  let table = Urm_util.Alias.create (Array.map (fun m -> m.Mapping.prob) arr) in
  fun rng -> arr.(Urm_util.Alias.draw table rng)

let sample rng ms = (sampler ms) rng

let estimate ?(seed = 17) ~samples (ctx : Ctx.t) q ms =
  if samples <= 0 then invalid_arg "Montecarlo.estimate: samples must be positive";
  let draw = sampler ms in
  let rng = Urm_util.Prng.create seed in
  (* Evaluate each distinct source query once; a sampled world then only
     looks up the tuples of its mapping's source query. *)
  let cache : (string, Value.t array list) Hashtbl.t = Hashtbl.create 32 in
  let tuples_of m =
    let sq = Reformulate.source_query ctx.target q m in
    let key = Reformulate.key sq in
    match Hashtbl.find_opt cache key with
    | Some tuples -> tuples
    | None ->
      let rel =
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Ctx.eval ctx e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None
      in
      let tuples =
        Reformulate.result_tuples sq ~factor:(Reformulate.factor ctx.catalog sq) rel
      in
      Hashtbl.replace cache key tuples;
      tuples
  in
  let counts : (Value.t array, int) Hashtbl.t = Hashtbl.create 64 in
  let null_count = ref 0 in
  for _ = 1 to samples do
    let world = draw rng in
    match tuples_of world with
    | [] -> incr null_count
    | tuples ->
      List.iter
        (fun t ->
          Hashtbl.replace counts t
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
        tuples
  done;
  let acc = Answer.create (Reformulate.output_header q) in
  let total = float_of_int samples in
  Hashtbl.iter (fun t c -> Answer.add acc t (float_of_int c /. total)) counts;
  Answer.add_null acc (float_of_int !null_count /. total);
  acc

let max_deviation ~exact ~estimate =
  let dev_over a b =
    List.fold_left
      (fun acc (t, p) -> Float.max acc (abs_float (p -. Answer.prob_of b t)))
      0. (Answer.to_list a)
  in
  Float.max
    (abs_float (Answer.null_prob exact -. Answer.null_prob estimate))
    (Float.max (dev_over exact estimate) (dev_over estimate exact))
