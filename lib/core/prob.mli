(** Shared numeric tolerance for probability bookkeeping.

    Probabilities in this system are sums of mapping masses, accumulated in
    different orders by different algorithms; float addition is not
    associative, so any comparison of accumulated masses must allow for
    rounding noise.  [eps] is comfortably above the error of summing a few
    thousand doubles and far below any genuine probability difference the
    workloads produce.

    Everything that compares probability masses — {!Answer.equal}, top-k
    pruning ({!Topk}), threshold decisions ({!Threshold}) — uses this one
    constant, so they agree on when two masses are "equal".  (Previously
    {!Answer.equal} used 1e-9 while the pruning code hard-coded 1e-12: a
    tuple could be pruned as decided under one tolerance yet compare as
    undecided under the other.) *)

val eps : float
(** [1e-9]. *)
