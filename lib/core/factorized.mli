(** The factorized multi-mapping executor: one vectorized pass over the
    e-unit DAG for all h mappings.

    Each distinct e-unit compiles to one plan and executes exactly once;
    result batches stream into the answer over the weight-vector channel
    ({!Ctx.eval_wbatches}), folding the Pr(mᵢ) mass of every mapping whose
    reformulation contains the e-unit into each bucket with a single
    addition ({!Answer.add_vec}).  With [cse] the distinct units
    additionally share materialised common subexpressions through the
    {!Urm_mqo.Dag} pass.

    Answers are bit-identical to the sequential interpreted per-unit
    oracle: units are processed in first-seen order, the collapsed vector
    mass equals the oracle's incremental per-mapping sum, and repeated
    reformulation keys replay the first occurrence's bucket cells in unit
    order. *)

type result = {
  answer : Answer.t;
  units : int;  (** e-units processed (incl. unsatisfiable/trivial) *)
  executed : int;  (** plans actually run *)
  replayed : int;  (** units served from the replay memo *)
  matched : int;
      (** executed units whose result stream exactly reproduced an earlier
          unit's and replayed its bucket ids (see
          {!Reformulate.record_weighted_answers_into}) *)
  shares : int;  (** DAG subexpressions materialised once *)
  plan_time : float;  (** DAG construction seconds ([cse] only) *)
  evaluate_time : float;  (** share + unit execution seconds *)
}

(** [weighted_units ctx q ms] the distinct e-units of [q] under [ms] with
    their per-mapping probability vectors (ascending mapping order) — the
    mapping→e-unit incidence.  Same grouping and order as
    {!Ebasic.distinct_source_queries}; the collapsed {!Answer.vec_mass} of
    each vector is bit-identical to its summed mass. *)
val weighted_units :
  Ctx.t -> Query.t -> Mapping.t list -> (Reformulate.t * float array) list

(** [singleton_units ctx q ms] one unit per mapping with a degenerate
    weight vector — the q-sharing path, where each representative already
    carries its partition's mass and per-representative accumulation order
    must be preserved (duplicate reformulation keys replay). *)
val singleton_units :
  Ctx.t -> Query.t -> Mapping.t list -> (Reformulate.t * float array) list

(** [eval ~ctrs ?cse ctx q units] the single pass.  [cse] (default
    [false]) turns on cross-unit common-subexpression materialisation —
    the factorized e-MQO. *)
val eval :
  ctrs:Urm_relalg.Eval.counters ->
  ?cse:bool ->
  Ctx.t ->
  Query.t ->
  (Reformulate.t * float array) list ->
  result
