(** Generation of the possible-mapping set (paper §II / §VIII-A): run the
    matcher over the two schemas, then rank the h best one-to-one partial
    matchings with Murty's algorithm, and normalise their total similarity
    scores into probabilities. *)

(** [from_candidates ~h cands] the up-to-[h] best mappings derivable from
    the matcher's correspondence candidates.  Zero-score (empty) matchings
    are dropped; probabilities are each mapping's score over the total score
    of the returned set. *)
val from_candidates : h:int -> Urm_matcher.Match.candidate list -> Mapping.t list

(** [synthetic ?seed ~h cands] up to [h] distinct one-to-one mappings for
    the anytime experiments at scales (h = 10⁴..10⁶) where Murty's exact
    enumeration is too slow: the greedy rank-1 matching first, then
    randomized score-weighted variants, deduplicated structurally, with
    probabilities normalised over total score.  Deterministic from [seed];
    may return fewer than [h] when the candidate set cannot support that
    many distinct matchings. *)
val synthetic :
  ?seed:int -> h:int -> Urm_matcher.Match.candidate list -> Mapping.t list

(** [generate ?threshold ~h ~source ~target ()] full pipeline:
    matcher candidates → k-best matchings → normalised mappings. *)
val generate :
  ?threshold:float ->
  h:int ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  Mapping.t list

(** Number of correspondences of the best (rank-1) mapping — the statistic
    the paper quotes for COMA++ (34 / 18 / 31 correspondences). *)
val top_mapping_size :
  ?threshold:float ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  int
