(** The o-sharing algorithm (paper §V–§VI, Algorithm 2): interleaves query
    reformulation and operator execution through the u-trace so that
    operator results are shared between mappings that agree on the operator
    being executed, even when they disagree elsewhere. *)

(** [run ?strategy ?seed ?use_memo ?metrics ctx q ms] evaluates the
    probabilistic query.  [strategy] (default {!Eunit.Sef}) picks the next
    operator; [seed] feeds the [Random] strategy; [use_memo] (default
    [true]) toggles cross-branch operator-result memoisation.  Counters and
    phase timers are recorded under the ["o-sharing"] scope of [metrics]
    (default {!Urm_obs.Metrics.global}). *)
val run :
  ?strategy:Eunit.strategy ->
  ?seed:int ->
  ?use_memo:bool ->
  ?metrics:Urm_obs.Metrics.t ->
  Ctx.t ->
  Query.t ->
  Mapping.t list ->
  Report.t

(** Extra run statistics alongside the report.  Since the metrics layer was
    threaded through {!Eunit}, this record is a thin view over the same
    [urm_obs] counters (["o-sharing/eunit/executions"],
    ["o-sharing/eunit/memo_hits"], ["o-sharing/eunit/representatives"]) —
    the two always agree. *)
type stats = { eunits : int; memo_hits : int; representatives : int }

(** [run_with_stats ?tracer …] like {!run}; [tracer] receives one line per
    u-trace event (see {!Eunit.set_tracer}) — o-sharing's "explain". *)
val run_with_stats :
  ?strategy:Eunit.strategy ->
  ?seed:int ->
  ?use_memo:bool ->
  ?tracer:(string -> unit) ->
  ?metrics:Urm_obs.Metrics.t ->
  Ctx.t ->
  Query.t ->
  Mapping.t list ->
  Report.t * stats
