open Urm_relalg

(* Buckets live in an open-addressed table specialized to answer tuples
   rather than a generic [Hashtbl]: the factorized executor performs one
   find-or-insert per emitted tuple (hundreds of thousands per e-unit), and
   the generic table pays for that with two hash computations per
   accumulate (find, then add), a cons cell per binding, and list-walk
   probes — about 1.2μs per accumulate against ~0.25μs here.  Hashing is
   the stdlib's own polymorphic hash and equality matches polymorphic
   comparison on [Value.t] ([Float.compare] on floats, so nan/-0. bucket
   exactly as before), which keeps bucket identity — and therefore every
   bit-identity regression — unchanged. *)

let dummy_key : Value.t array = [||]

type table = {
  mutable hashes : int array; (* -1 = free slot, else the key's hash (≥ 0) *)
  mutable keys : Value.t array array;
  mutable ids : int array; (* slot → bucket id *)
  mutable count : int;
}

let value_eq a b =
  a == b
  ||
  match (a, b) with
  | Value.Null, Value.Null -> true
  | Value.Int x, Value.Int y -> Int.equal x y
  | Value.Float x, Value.Float y -> Float.compare x y = 0
  | Value.Str x, Value.Str y -> String.equal x y
  | _, _ -> false

let tuple_eq a b =
  a == b
  || Array.length a = Array.length b
     &&
     let rec go i = i >= Array.length a || (value_eq a.(i) b.(i) && go (i + 1)) in
     go 0

let tbl_create () =
  {
    hashes = Array.make 16 (-1);
    keys = Array.make 16 dummy_key;
    ids = Array.make 16 0;
    count = 0;
  }

(* Linear probe to [key]'s slot, or to the first free slot of its run.
   Stored hashes are compared before any key is dereferenced, so a probe
   over occupied foreign slots touches only the int array.  Terminates
   because the load factor is kept ≤ 1/2. *)
let slot tb h key =
  let mask = Array.length tb.hashes - 1 in
  let i = ref (h land mask) in
  while
    let hi = tb.hashes.(!i) in
    hi >= 0 && not (hi = h && tuple_eq tb.keys.(!i) key)
  do
    i := (!i + 1) land mask
  done;
  !i

(* Redistribution never needs key comparison (all stored keys are
   distinct) or re-hashing (hashes are stored): probe to a free slot. *)
let place tb h key id =
  let mask = Array.length tb.hashes - 1 in
  let i = ref (h land mask) in
  while tb.hashes.(!i) >= 0 do
    i := (!i + 1) land mask
  done;
  tb.hashes.(!i) <- h;
  tb.keys.(!i) <- key;
  tb.ids.(!i) <- id;
  tb.count <- tb.count + 1

let grow_to tb ncap =
  let ohashes = tb.hashes and okeys = tb.keys and oids = tb.ids in
  tb.hashes <- Array.make ncap (-1);
  tb.keys <- Array.make ncap dummy_key;
  tb.ids <- Array.make ncap 0;
  tb.count <- 0;
  Array.iteri (fun j h -> if h >= 0 then place tb h okeys.(j) oids.(j)) ohashes

let grow tb = grow_to tb (2 * Array.length tb.hashes)

let tbl_iter f tb =
  Array.iteri (fun i h -> if h >= 0 then f tb.keys.(i) tb.ids.(i)) tb.hashes

let tbl_fold f tb init =
  let acc = ref init in
  Array.iteri
    (fun i h -> if h >= 0 then acc := f tb.keys.(i) tb.ids.(i) !acc)
    tb.hashes;
  !acc

type t = {
  output : string list;
  arity : int;
  rows : table;
  (* Bucket id → accumulated probability.  Ids are dense insertion indices
     and probabilities live unboxed in one float array, so a replayed
     accumulation (see {!bump}) is a plain array update with no pointer
     chasing or allocation. *)
  mutable vals : float array;
  mutable next_id : int; (* monotonic — compacted ids are never reused *)
  mutable null_mass : float;
}

let create output =
  {
    output;
    arity = List.length output;
    rows = tbl_create ();
    vals = Array.make 16 0.;
    next_id = 0;
    null_mass = 0.;
  }

let output t = t.output
let tuple_equal = tuple_eq

(* Find-or-insert in a single probe; accumulates [p] into [tuple]'s bucket
   and returns the bucket's id. *)
let add_id t tuple p =
  if Array.length tuple <> t.arity then invalid_arg "Answer.add: arity mismatch";
  let tb = t.rows in
  if 2 * (tb.count + 1) > Array.length tb.hashes then grow tb;
  let h = Hashtbl.hash tuple in
  let i = slot tb h tuple in
  if tb.hashes.(i) < 0 then (
    let id = t.next_id in
    t.next_id <- id + 1;
    if id >= Array.length t.vals then (
      let n = Array.make (2 * Array.length t.vals) 0. in
      Array.blit t.vals 0 n 0 (Array.length t.vals);
      t.vals <- n);
    t.vals.(id) <- p;
    tb.hashes.(i) <- h;
    tb.keys.(i) <- tuple;
    tb.ids.(i) <- id;
    tb.count <- tb.count + 1;
    id)
  else (
    let id = tb.ids.(i) in
    t.vals.(id) <- t.vals.(id) +. p;
    id)

let add t tuple p = ignore (add_id t tuple p)

(* Pre-size for [n] further insertions: one redistribution now instead of
   log₂ n doublings (and their rehash traffic) spread across a bulk insert
   pass whose size is already known. *)
let reserve t n =
  let tb = t.rows in
  let needed = 2 * (tb.count + n) in
  if needed > Array.length tb.hashes then (
    let cap = ref (Array.length tb.hashes) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    grow_to tb !cap);
  let vneeded = t.next_id + n in
  if vneeded > Array.length t.vals then (
    let cap = ref (Array.length t.vals) in
    while !cap < vneeded do
      cap := 2 * !cap
    done;
    let nv = Array.make !cap 0. in
    Array.blit t.vals 0 nv 0 (Array.length t.vals);
    t.vals <- nv)

(* Replay a further accumulation into a bucket previously returned by
   {!add_id} — valid for the answer's lifetime; {!compact} drops a ghost
   bucket's table entry but never reassigns its id. *)
let bump t id p = t.vals.(id) <- t.vals.(id) +. p

let tbl_find tb key =
  let i = slot tb (Hashtbl.hash key) key in
  if tb.hashes.(i) < 0 then None else Some tb.ids.(i)

(* The collapsed mass of a weight vector: summed left to right, which is
   exactly the accumulation order of [Ebasic.distinct_source_queries]'s
   incremental per-mapping sum — so factorized answers stay bit-identical
   to the interpreted per-unit accumulation. *)
let vec_mass w = Array.fold_left ( +. ) 0. w

(* Bulk weighted accumulate: fold a whole weight vector into one bucket
   addition.  One call replaces the h per-mapping [add]s a non-factorized
   evaluation would perform for this tuple. *)
let add_vec t tuple w = add t tuple (vec_mass w)
let add_null t p = t.null_mass <- t.null_mass +. p
let null_prob t = t.null_mass

(* Merging sums the source's per-tuple masses into the target.  When
   partial answers are built over disjoint contiguous mapping ranges and
   merged in ascending range order, every tuple's probability is summed in
   ascending mapping order — exactly the accumulation order of the
   sequential loop — so the merged answer is bit-identical to a sequential
   run, for any number of ranges. *)
let merge_into t other =
  if t.output <> other.output then invalid_arg "Answer.merge_into: header mismatch";
  tbl_iter (fun tuple id -> add t tuple other.vals.(id)) other.rows;
  t.null_mass <- t.null_mass +. other.null_mass

(* Delta maintenance patches buckets with signed increments: a tuple whose
   contributions were fully retracted is left holding the float residue of
   [+p … -p] cancellation (≈ ulp-sized, possibly negative) rather than
   disappearing.  [equal] matches buckets one-to-one, so such ghosts would
   make a patched answer differ from a fresh evaluation even though every
   probability agrees within eps.  The epsilon floor removes them; genuine
   buckets always carry at least one mapping's probability, which in any
   normalised mapping set is orders of magnitude above {!Prob.eps}. *)
let compact ?(eps = Prob.eps) t =
  let tb = t.rows in
  let doomed =
    tbl_fold
      (fun _ id n -> if Float.abs t.vals.(id) <= eps then n + 1 else n)
      tb 0
  in
  if doomed > 0 then (
    (* Rebuild without the ghosts; surviving buckets keep their ids so
       outstanding {!add_id} handles stay live — [next_id] never goes
       backwards, so a ghost's id is never reassigned. *)
    let ohashes = tb.hashes and okeys = tb.keys and oids = tb.ids in
    tb.hashes <- Array.make (Array.length ohashes) (-1);
    tb.keys <- Array.make (Array.length okeys) dummy_key;
    tb.ids <- Array.make (Array.length oids) 0;
    tb.count <- 0;
    Array.iteri
      (fun j h ->
        if h >= 0 && Float.abs t.vals.(oids.(j)) > eps then
          place tb h okeys.(j) oids.(j))
      ohashes);
  if t.null_mass < 0. && t.null_mass >= -.eps then t.null_mass <- 0.

let compare_tuples a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let to_list t =
  tbl_fold (fun tuple id acc -> (tuple, t.vals.(id)) :: acc) t.rows []
  |> List.sort (fun (ta, pa) (tb, pb) ->
         let c = Float.compare pb pa in
         if c <> 0 then c else compare_tuples ta tb)

let top_k t k = List.filteri (fun i _ -> i < k) (to_list t)
let size t = t.rows.count
let total_prob t = tbl_fold (fun _ id acc -> acc +. t.vals.(id)) t.rows t.null_mass

let prob_of t tuple =
  match tbl_find t.rows tuple with Some id -> t.vals.(id) | None -> 0.

let approx_tuple_equal ta tb =
  Array.length ta = Array.length tb
  &&
  let rec go i =
    i >= Array.length ta || (Value.approx_equal ta.(i) tb.(i) && go (i + 1))
  in
  go 0

(* Equality is a one-to-one matching of buckets: every tuple of [a] must
   claim a distinct, not-yet-consumed bucket of [b] whose key matches
   (exactly, else approximately — float-valued aggregates computed by
   differently-ordered summations land on slightly different keys) with
   probability within [eps].  Without consumption, two near-identical
   float keys of [a] could both match one bucket of [b] and equal sizes
   would still report equality on unequal answers (and the check was
   asymmetric). *)
let equal ?(eps = Prob.eps) a b =
  a.output = b.output
  && abs_float (a.null_mass -. b.null_mass) <= eps
  && a.rows.count = b.rows.count
  &&
  let consumed : (Value.t array, unit) Hashtbl.t =
    Hashtbl.create (max 16 a.rows.count)
  in
  let claim tuple p =
    let matches key id =
      (not (Hashtbl.mem consumed key)) && abs_float (b.vals.(id) -. p) <= eps
    in
    match tbl_find b.rows tuple with
    | Some id when matches tuple id ->
      Hashtbl.add consumed tuple ();
      true
    | _ -> (
      let found =
        tbl_fold
          (fun key id acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if approx_tuple_equal tuple key && matches key id then Some key
              else None)
          b.rows None
      in
      match found with
      | Some key ->
        Hashtbl.add consumed key ();
        true
      | None -> false)
  in
  tbl_fold (fun tuple id ok -> ok && claim tuple a.vals.(id)) a.rows true

(* Serialisation follows [to_list]'s deterministic ranking, so two answers
   with bit-identical probabilities render to byte-identical JSON — the
   property the jobs=1 vs jobs=N determinism regression checks. *)
let to_json t =
  let rows = to_list t in
  let open Urm_util.Json in
  let value = function
    | Value.Null -> Null
    | Value.Int i -> Num (float_of_int i)
    | Value.Float f -> Num f
    | Value.Str s -> Str s
  in
  Obj
    [
      ("output", Arr (List.map (fun c -> Str c) t.output));
      ( "answers",
        Arr
          (List.map
             (fun (tuple, p) ->
               Obj
                 [
                   ("tuple", Arr (Array.to_list (Array.map value tuple)));
                   ("prob", Num p);
                 ])
             rows) );
      ("null_prob", Num t.null_mass);
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>answer over (%s):" (String.concat ", " t.output);
  List.iter
    (fun (tuple, p) ->
      Format.fprintf ppf "@,  (%s) : %.4f"
        (String.concat ", " (Array.to_list (Array.map Value.to_string tuple)))
        p)
    (to_list t);
  if t.null_mass > 0. then Format.fprintf ppf "@,  θ : %.4f" t.null_mass;
  Format.fprintf ppf "@]"
