open Urm_relalg

type t = {
  output : string list;
  arity : int;
  rows : (Value.t array, float ref) Hashtbl.t;
  mutable null_mass : float;
}

let create output =
  { output; arity = List.length output; rows = Hashtbl.create 64; null_mass = 0. }

let output t = t.output

let add t tuple p =
  if Array.length tuple <> t.arity then invalid_arg "Answer.add: arity mismatch";
  match Hashtbl.find_opt t.rows tuple with
  | Some r -> r := !r +. p
  | None -> Hashtbl.add t.rows tuple (ref p)

let add_null t p = t.null_mass <- t.null_mass +. p
let null_prob t = t.null_mass

(* Merging sums the source's per-tuple masses into the target.  When
   partial answers are built over disjoint contiguous mapping ranges and
   merged in ascending range order, every tuple's probability is summed in
   ascending mapping order — exactly the accumulation order of the
   sequential loop — so the merged answer is bit-identical to a sequential
   run, for any number of ranges. *)
let merge_into t other =
  if t.output <> other.output then invalid_arg "Answer.merge_into: header mismatch";
  Hashtbl.iter (fun tuple r -> add t tuple !r) other.rows;
  t.null_mass <- t.null_mass +. other.null_mass

let compare_tuples a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let to_list t =
  Hashtbl.fold (fun tuple r acc -> (tuple, !r) :: acc) t.rows []
  |> List.sort (fun (ta, pa) (tb, pb) ->
         let c = Float.compare pb pa in
         if c <> 0 then c else compare_tuples ta tb)

let top_k t k = List.filteri (fun i _ -> i < k) (to_list t)
let size t = Hashtbl.length t.rows
let total_prob t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.rows t.null_mass
let prob_of t tuple = match Hashtbl.find_opt t.rows tuple with Some r -> !r | None -> 0.

let approx_tuple_equal ta tb =
  Array.length ta = Array.length tb
  &&
  let rec go i =
    i >= Array.length ta || (Value.approx_equal ta.(i) tb.(i) && go (i + 1))
  in
  go 0

(* [prob_of] with a fallback approximate scan: float-valued aggregates
   computed by differently-ordered summations land on slightly different
   keys. *)
let prob_of_approx t tuple =
  match Hashtbl.find_opt t.rows tuple with
  | Some r -> Some !r
  | None ->
    Hashtbl.fold
      (fun other r acc ->
        match acc with
        | Some _ -> acc
        | None -> if approx_tuple_equal tuple other then Some !r else None)
      t.rows None

let equal ?(eps = Prob.eps) a b =
  a.output = b.output
  && abs_float (a.null_mass -. b.null_mass) <= eps
  && Hashtbl.length a.rows = Hashtbl.length b.rows
  && Hashtbl.fold
       (fun tuple r ok ->
         ok
         &&
         match prob_of_approx b tuple with
         | Some q -> abs_float (q -. !r) <= eps
         | None -> false)
       a.rows true

(* Serialisation follows [to_list]'s deterministic ranking, so two answers
   with bit-identical probabilities render to byte-identical JSON — the
   property the jobs=1 vs jobs=N determinism regression checks. *)
let to_json t =
  let rows = to_list t in
  let open Urm_util.Json in
  let value = function
    | Value.Null -> Null
    | Value.Int i -> Num (float_of_int i)
    | Value.Float f -> Num f
    | Value.Str s -> Str s
  in
  Obj
    [
      ("output", Arr (List.map (fun c -> Str c) t.output));
      ( "answers",
        Arr
          (List.map
             (fun (tuple, p) ->
               Obj
                 [
                   ("tuple", Arr (Array.to_list (Array.map value tuple)));
                   ("prob", Num p);
                 ])
             rows) );
      ("null_prob", Num t.null_mass);
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>answer over (%s):" (String.concat ", " t.output);
  List.iter
    (fun (tuple, p) ->
      Format.fprintf ppf "@,  (%s) : %.4f"
        (String.concat ", " (Array.to_list (Array.map Value.to_string tuple)))
        p)
    (to_list t);
  if t.null_mass > 0. then Format.fprintf ppf "@,  θ : %.4f" t.null_mass;
  Format.fprintf ppf "@]"
