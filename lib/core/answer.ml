open Urm_relalg

type t = {
  output : string list;
  arity : int;
  rows : (Value.t array, float ref) Hashtbl.t;
  mutable null_mass : float;
}

let create output =
  { output; arity = List.length output; rows = Hashtbl.create 64; null_mass = 0. }

let output t = t.output

let add t tuple p =
  if Array.length tuple <> t.arity then invalid_arg "Answer.add: arity mismatch";
  match Hashtbl.find_opt t.rows tuple with
  | Some r -> r := !r +. p
  | None -> Hashtbl.add t.rows tuple (ref p)

(* Like [add], but returns the bucket's accumulator cell so a caller can
   replay further [+. p] additions without re-deriving the tuple (the
   vectorized engine's per-reformulation answer memo).  Cells stay valid
   for the answer's lifetime — buckets are never removed. *)
let add_ref t tuple p =
  if Array.length tuple <> t.arity then invalid_arg "Answer.add: arity mismatch";
  match Hashtbl.find_opt t.rows tuple with
  | Some r ->
    r := !r +. p;
    r
  | None ->
    let r = ref p in
    Hashtbl.add t.rows tuple r;
    r

let add_null t p = t.null_mass <- t.null_mass +. p
let null_prob t = t.null_mass

(* Merging sums the source's per-tuple masses into the target.  When
   partial answers are built over disjoint contiguous mapping ranges and
   merged in ascending range order, every tuple's probability is summed in
   ascending mapping order — exactly the accumulation order of the
   sequential loop — so the merged answer is bit-identical to a sequential
   run, for any number of ranges. *)
let merge_into t other =
  if t.output <> other.output then invalid_arg "Answer.merge_into: header mismatch";
  Hashtbl.iter (fun tuple r -> add t tuple !r) other.rows;
  t.null_mass <- t.null_mass +. other.null_mass

(* Delta maintenance patches buckets with signed increments: a tuple whose
   contributions were fully retracted is left holding the float residue of
   [+p … -p] cancellation (≈ ulp-sized, possibly negative) rather than
   disappearing.  [equal] matches buckets one-to-one, so such ghosts would
   make a patched answer differ from a fresh evaluation even though every
   probability agrees within eps.  The epsilon floor removes them; genuine
   buckets always carry at least one mapping's probability, which in any
   normalised mapping set is orders of magnitude above {!Prob.eps}. *)
let compact ?(eps = Prob.eps) t =
  let doomed =
    Hashtbl.fold
      (fun tuple r acc -> if Float.abs !r <= eps then tuple :: acc else acc)
      t.rows []
  in
  List.iter (Hashtbl.remove t.rows) doomed;
  if t.null_mass < 0. && t.null_mass >= -.eps then t.null_mass <- 0.

let compare_tuples a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let to_list t =
  Hashtbl.fold (fun tuple r acc -> (tuple, !r) :: acc) t.rows []
  |> List.sort (fun (ta, pa) (tb, pb) ->
         let c = Float.compare pb pa in
         if c <> 0 then c else compare_tuples ta tb)

let top_k t k = List.filteri (fun i _ -> i < k) (to_list t)
let size t = Hashtbl.length t.rows
let total_prob t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.rows t.null_mass
let prob_of t tuple = match Hashtbl.find_opt t.rows tuple with Some r -> !r | None -> 0.

let approx_tuple_equal ta tb =
  Array.length ta = Array.length tb
  &&
  let rec go i =
    i >= Array.length ta || (Value.approx_equal ta.(i) tb.(i) && go (i + 1))
  in
  go 0

(* Equality is a one-to-one matching of buckets: every tuple of [a] must
   claim a distinct, not-yet-consumed bucket of [b] whose key matches
   (exactly, else approximately — float-valued aggregates computed by
   differently-ordered summations land on slightly different keys) with
   probability within [eps].  Without consumption, two near-identical
   float keys of [a] could both match one bucket of [b] and equal sizes
   would still report equality on unequal answers (and the check was
   asymmetric). *)
let equal ?(eps = Prob.eps) a b =
  a.output = b.output
  && abs_float (a.null_mass -. b.null_mass) <= eps
  && Hashtbl.length a.rows = Hashtbl.length b.rows
  &&
  let consumed : (Value.t array, unit) Hashtbl.t =
    Hashtbl.create (Hashtbl.length a.rows)
  in
  let claim tuple p =
    let matches key r =
      (not (Hashtbl.mem consumed key)) && abs_float (!r -. p) <= eps
    in
    match Hashtbl.find_opt b.rows tuple with
    | Some r when matches tuple r ->
      Hashtbl.add consumed tuple ();
      true
    | _ -> (
      let found =
        Hashtbl.fold
          (fun key r acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if approx_tuple_equal tuple key && matches key r then Some key
              else None)
          b.rows None
      in
      match found with
      | Some key ->
        Hashtbl.add consumed key ();
        true
      | None -> false)
  in
  Hashtbl.fold (fun tuple r ok -> ok && claim tuple !r) a.rows true

(* Serialisation follows [to_list]'s deterministic ranking, so two answers
   with bit-identical probabilities render to byte-identical JSON — the
   property the jobs=1 vs jobs=N determinism regression checks. *)
let to_json t =
  let rows = to_list t in
  let open Urm_util.Json in
  let value = function
    | Value.Null -> Null
    | Value.Int i -> Num (float_of_int i)
    | Value.Float f -> Num f
    | Value.Str s -> Str s
  in
  Obj
    [
      ("output", Arr (List.map (fun c -> Str c) t.output));
      ( "answers",
        Arr
          (List.map
             (fun (tuple, p) ->
               Obj
                 [
                   ("tuple", Arr (Array.to_list (Array.map value tuple)));
                   ("prob", Num p);
                 ])
             rows) );
      ("null_prob", Num t.null_mass);
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>answer over (%s):" (String.concat ", " t.output);
  List.iter
    (fun (tuple, p) ->
      Format.fprintf ppf "@,  (%s) : %.4f"
        (String.concat ", " (Array.to_list (Array.map Value.to_string tuple)))
        p)
    (to_list t);
  if t.null_mass > 0. then Format.fprintf ppf "@,  θ : %.4f" t.null_mass;
  Format.fprintf ppf "@]"
