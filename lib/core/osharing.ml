open Urm_relalg

type stats = { eunits : int; memo_hits : int; representatives : int }

(* The interpreted engine runs the paper's Algorithm 2 — the adaptive
   u-trace traversal in {!Eunit}, kept as the differential oracle.  The
   plan engines run the factorized executor over the same representatives
   with cross-unit CSE: the global e-unit DAG subsumes the adaptive
   traversal's operator sharing (every shared subexpression materialises
   exactly once), and the batched single pass is what makes o-sharing
   profit from vectorized execution.  [strategy] only influences the
   interpreted traversal — the DAG pass has no operator-ordering choice. *)
let run_with_stats ?(strategy = Eunit.Sef) ?seed ?use_memo ?tracer
    ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "o-sharing" in
  let mu = Urm_obs.Metrics.scope m "eunit" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  Urm_obs.Metrics.incr ~by:(List.length reps)
    (Urm_obs.Metrics.counter mu "representatives");
  match Ctx.engine ctx with
  | Urm_relalg.Compile.Interpreted ->
    let env = Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q in
    Option.iter (Eunit.set_tracer env) tracer;
    let answer = Answer.create (Reformulate.output_header q) in
    let emit = function
      | Eunit.Tuples (tuples, mass) ->
        List.iter (fun t -> Answer.add answer t mass) tuples;
        true
      | Eunit.Null_answer mass ->
        Answer.add_null answer mass;
        true
    in
    let (_ : bool), evaluate =
      Urm_util.Timer.time (fun () -> Eunit.run_qt env (Eunit.init q reps) ~emit)
    in
    let ctrs = Eunit.counters env in
    let report =
      {
        Report.answer;
        intervals = None;
        timings = { Report.rewrite; plan = 0.; evaluate; aggregate = 0. };
        source_operators = ctrs.Eval.operators;
        rows_produced = ctrs.Eval.rows_produced;
        groups = List.length reps;
        engine = "interpreted";
      }
    in
    Report.record_metrics m report;
    ( report,
      {
        eunits = Eunit.eunits_created env;
        memo_hits = Eunit.memo_hits env;
        representatives = List.length reps;
      } )
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    let ctrs = Eval.fresh_counters ~metrics:m () in
    let units, unit_time =
      Urm_util.Timer.time (fun () -> Factorized.singleton_units ctx q reps)
    in
    let trace fmt = Printf.ksprintf (fun l -> Option.iter (fun f -> f l) tracer) fmt in
    List.iteri
      (fun i ((sq, w) : Reformulate.t * float array) ->
        trace "e-unit #%d (mass %.3f): %s" i (Answer.vec_mass w)
          (Reformulate.key sq))
      units;
    let r = Factorized.eval ~ctrs ~cse:true ctx q units in
    trace "factorized: %d unit(s), %d executed, %d replayed, %d share(s)"
      r.Factorized.units r.Factorized.executed r.Factorized.replayed
      r.Factorized.shares;
    (* Keep the eunit counters agreeing with the stats record, as the
       interpreted path does. *)
    Urm_obs.Metrics.incr ~by:r.Factorized.executed
      (Urm_obs.Metrics.counter mu "executions");
    Urm_obs.Metrics.incr ~by:r.Factorized.replayed
      (Urm_obs.Metrics.counter mu "memo_hits");
    let report =
      {
        Report.answer = r.Factorized.answer;
        intervals = None;
        timings =
          {
            Report.rewrite = rewrite +. unit_time;
            plan = r.Factorized.plan_time;
            evaluate = r.Factorized.evaluate_time;
            aggregate = 0.;
          };
        source_operators = ctrs.Eval.operators;
        rows_produced = ctrs.Eval.rows_produced;
        groups = List.length reps;
        engine =
          Urm_relalg.Compile.engine_name (Ctx.engine ctx) ^ "+factorized";
      }
    in
    Report.record_metrics m report;
    ( report,
      {
        eunits = r.Factorized.executed;
        memo_hits = r.Factorized.replayed;
        representatives = List.length reps;
      } )

let run ?strategy ?seed ?use_memo ?metrics ctx q ms =
  fst (run_with_stats ?strategy ?seed ?use_memo ?metrics ctx q ms)
