open Urm_relalg

type stats = { eunits : int; memo_hits : int; representatives : int }

let run_with_stats ?(strategy = Eunit.Sef) ?seed ?use_memo ?tracer
    ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "o-sharing" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  Urm_obs.Metrics.incr ~by:(List.length reps)
    (Urm_obs.Metrics.counter (Urm_obs.Metrics.scope m "eunit") "representatives");
  let env = Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q in
  Option.iter (Eunit.set_tracer env) tracer;
  let answer = Answer.create (Reformulate.output_header q) in
  let emit = function
    | Eunit.Tuples (tuples, mass) ->
      List.iter (fun t -> Answer.add answer t mass) tuples;
      true
    | Eunit.Null_answer mass ->
      Answer.add_null answer mass;
      true
  in
  let (_ : bool), evaluate =
    Urm_util.Timer.time (fun () -> Eunit.run_qt env (Eunit.init q reps) ~emit)
  in
  let ctrs = Eunit.counters env in
  let report =
    {
      Report.answer;
      intervals = None;
      timings = { Report.rewrite; plan = 0.; evaluate; aggregate = 0. };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length reps;
    }
  in
  Report.record_metrics m report;
  ( report,
    {
      eunits = Eunit.eunits_created env;
      memo_hits = Eunit.memo_hits env;
      representatives = List.length reps;
    } )

let run ?strategy ?seed ?use_memo ?metrics ctx q ms =
  fst (run_with_stats ?strategy ?seed ?use_memo ?metrics ctx q ms)
