(** Uniform dispatch over the five evaluation algorithms (plus top-k), used
    by the CLI, the experiment harness and the cross-algorithm consistency
    tests. *)

type t =
  | Basic
  | Ebasic
  | Emqo
  | Qsharing
  | Osharing of Eunit.strategy
  | Topk of int * Eunit.strategy

val name : t -> string

(** All exact algorithms (everything except [Topk]); they must produce
    identical answers on any input. *)
val exact : t list

(** [run ?metrics t ctx q ms] dispatches to the algorithm's [run]; each
    algorithm records under its own scope of [metrics] (default
    {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t ->
  t ->
  Ctx.t ->
  Query.t ->
  Mapping.t list ->
  Report.t
