open Urm_relalg

type result = {
  report : Report.t;
  visited_eunits : int;
  stopped_early : bool;
}

let run ?(strategy = Eunit.Sef) ?seed ?use_memo
    ?(metrics = Urm_obs.Metrics.global) ~k (ctx : Ctx.t) q ms =
  if k <= 0 then invalid_arg "Topk.run: k must be positive";
  let m = Urm_obs.Metrics.scope metrics "topk" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  Urm_obs.Metrics.incr ~by:(List.length reps)
    (Urm_obs.Metrics.counter (Urm_obs.Metrics.scope m "eunit") "representatives");
  let env = Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q in
  (* Candidate tuples with their accumulated lower-bound probability. *)
  let table : (Value.t array, float ref) Hashtbl.t = Hashtbl.create 64 in
  let ub = ref 1.0 in
  let lb = ref 0.0 in
  let eps = Prob.eps in
  (* The k-th highest lower bound currently in the table ([0.] with fewer
     than k candidates), and whether at most k candidates can still reach
     the top-k (a candidate's best possible probability is lb + UB). *)
  let update_bounds_and_decide () =
    (* k-th largest lb via a bounded min-heap: O(n log k), no sorting. *)
    let heap = Urm_util.Heap.create Float.compare in
    Hashtbl.iter
      (fun _ r ->
        if Urm_util.Heap.length heap < k then Urm_util.Heap.push heap !r
        else if !r > Urm_util.Heap.peek heap then begin
          ignore (Urm_util.Heap.pop heap);
          Urm_util.Heap.push heap !r
        end)
      table;
    lb := (if Urm_util.Heap.length heap >= k then Urm_util.Heap.peek heap else 0.);
    !ub <= !lb +. eps
    &&
    let survivors = ref 0 in
    (try
       Hashtbl.iter
         (fun _ r ->
           if !r +. !ub > !lb +. eps then begin
             incr survivors;
             if !survivors > k then raise Exit
           end)
         table;
       true
     with Exit -> false)
  in
  (* The paper's decide_result: fold one leaf's tuples into the bounds and
     report whether the top-k set is now proven.  A new tuple is only worth
     tracking if the unvisited mass could still lift it past LB. *)
  let decide leaf =
    let mass, tuples =
      match leaf with
      | Eunit.Null_answer mass -> (mass, [])
      | Eunit.Tuples (tuples, mass) -> (mass, tuples)
    in
    List.iter
      (fun t ->
        match Hashtbl.find_opt table t with
        | Some r -> r := !r +. mass
        | None -> if !ub > !lb +. eps then Hashtbl.replace table t (ref mass))
      tuples;
    ub := !ub -. mass;
    update_bounds_and_decide ()
  in
  let finished, evaluate =
    Urm_util.Timer.time (fun () ->
        Eunit.run_qt env (Eunit.init q reps) ~emit:(fun leaf -> not (decide leaf)))
  in
  let answer = Answer.create (Reformulate.output_header q) in
  let compare_tuples ta tb =
    let rec go i =
      if i >= Array.length ta then 0
      else
        let c = Value.compare ta.(i) tb.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  (* Select the k best candidates with a bounded min-heap (the table can be
     much larger than k). *)
  let worst_first (ta, a) (tb, b) =
    let c = Float.compare a b in
    if c <> 0 then c else compare_tuples tb ta
  in
  let heap = Urm_util.Heap.create worst_first in
  Hashtbl.iter
    (fun t r ->
      let entry = (t, !r) in
      if Urm_util.Heap.length heap < k then Urm_util.Heap.push heap entry
      else if worst_first entry (Urm_util.Heap.peek heap) > 0 then begin
        ignore (Urm_util.Heap.pop heap);
        Urm_util.Heap.push heap entry
      end)
    table;
  Urm_util.Heap.iter (fun (t, p) -> Answer.add answer t p) heap;
  let ctrs = Eunit.counters env in
  let report =
    {
      Report.answer;
      intervals = None;
      timings = { Report.rewrite; plan = 0.; evaluate; aggregate = 0. };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length reps;
      engine = Urm_relalg.Compile.engine_name (Ctx.engine ctx);
    }
  in
  Report.record_metrics m report;
  {
    report;
    visited_eunits = Eunit.eunits_created env;
    stopped_early = not finished;
  }
