type timings = {
  rewrite : float;
  plan : float;
  evaluate : float;
  aggregate : float;
}

let zero_timings = { rewrite = 0.; plan = 0.; evaluate = 0.; aggregate = 0. }
let total t = t.rewrite +. t.plan +. t.evaluate +. t.aggregate

type t = {
  answer : Answer.t;
  timings : timings;
  source_operators : int;
  rows_produced : int;
  groups : int;
}

(* One record per completed run: the phase breakdown as timers plus run and
   group counts, under the algorithm's metrics scope. *)
let record_metrics m r =
  let open Urm_obs.Metrics in
  incr (counter m "runs");
  incr ~by:r.groups (counter m "groups");
  record (timer m "phase.rewrite") r.timings.rewrite;
  record (timer m "phase.plan") r.timings.plan;
  record (timer m "phase.evaluate") r.timings.evaluate;
  record (timer m "phase.aggregate") r.timings.aggregate

(* [volatile:false] drops everything that may legitimately differ between
   two runs computing the same answer — wall-clock timings and operator/row
   work counters (memoisation and plan sharing change with chunking) — and
   keeps only the answer and the group count.  The determinism regression
   compares this stable rendering byte-for-byte across jobs values. *)
let to_json ?(volatile = true) r =
  let open Urm_util.Json in
  let stable =
    [
      ("answer", Answer.to_json r.answer);
      ("groups", Num (float_of_int r.groups));
    ]
  in
  if not volatile then Obj stable
  else
    Obj
      (stable
      @ [
          ( "timings",
            Obj
              [
                ("rewrite", Num r.timings.rewrite);
                ("plan", Num r.timings.plan);
                ("evaluate", Num r.timings.evaluate);
                ("aggregate", Num r.timings.aggregate);
              ] );
          ("source_operators", Num (float_of_int r.source_operators));
          ("rows_produced", Num (float_of_int r.rows_produced));
        ])

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d tuples (θ=%.3f) | rewrite %.4fs plan %.4fs eval %.4fs agg %.4fs | %d ops, %d rows, %d groups@]"
    (Answer.size r.answer)
    (Answer.null_prob r.answer)
    r.timings.rewrite r.timings.plan r.timings.evaluate r.timings.aggregate
    r.source_operators r.rows_produced r.groups
