type timings = {
  rewrite : float;
  plan : float;
  evaluate : float;
  aggregate : float;
}

let zero_timings = { rewrite = 0.; plan = 0.; evaluate = 0.; aggregate = 0. }
let total t = t.rewrite +. t.plan +. t.evaluate +. t.aggregate

type t = {
  answer : Answer.t;
  timings : timings;
  source_operators : int;
  rows_produced : int;
  groups : int;
  engine : string;
  intervals : (Urm_relalg.Value.t array * (float * float)) list option;
}

(* Compare like Answer.to_list's tie-break so interval lists render
   deterministically. *)
let compare_tuples a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Urm_relalg.Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let make ?intervals ?(engine = "") ~answer ~timings ~source_operators
    ~rows_produced ~groups () =
  let intervals =
    Option.map
      (List.sort (fun (ta, (la, _)) (tb, (lb, _)) ->
           let c = Float.compare lb la in
           if c <> 0 then c else compare_tuples ta tb))
      intervals
  in
  { answer; timings; source_operators; rows_produced; groups; engine; intervals }

(* One record per completed run: the phase breakdown as timers plus run and
   group counts, under the algorithm's metrics scope. *)
let record_metrics m r =
  let open Urm_obs.Metrics in
  incr (counter m "runs");
  incr ~by:r.groups (counter m "groups");
  record (timer m "phase.rewrite") r.timings.rewrite;
  record (timer m "phase.plan") r.timings.plan;
  record (timer m "phase.evaluate") r.timings.evaluate;
  record (timer m "phase.aggregate") r.timings.aggregate

(* [volatile:false] drops everything that may legitimately differ between
   two runs computing the same answer — wall-clock timings and operator/row
   work counters (memoisation and plan sharing change with chunking) — and
   keeps only the answer and the group count.  The determinism regression
   compares this stable rendering byte-for-byte across jobs values. *)
let value_to_json = function
  | Urm_relalg.Value.Null -> Urm_util.Json.Null
  | Urm_relalg.Value.Int i -> Urm_util.Json.Num (float_of_int i)
  | Urm_relalg.Value.Float f -> Urm_util.Json.Num f
  | Urm_relalg.Value.Str s -> Urm_util.Json.Str s

let value_of_json = function
  | Urm_util.Json.Null -> Urm_relalg.Value.Null
  | Urm_util.Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Urm_relalg.Value.Int (int_of_float f)
  | Urm_util.Json.Num f -> Urm_relalg.Value.Float f
  | Urm_util.Json.Str s -> Urm_relalg.Value.Str s
  | _ -> failwith "Report: interval tuple cell is not a scalar"

let intervals_to_json ivs =
  let open Urm_util.Json in
  Arr
    (List.map
       (fun (tuple, (lo, hi)) ->
         Obj
           [
             ("tuple", Arr (Array.to_list (Array.map value_to_json tuple)));
             ("lo", Num lo);
             ("hi", Num hi);
           ])
       ivs)

let intervals_of_json json =
  match Urm_util.Json.member "intervals" json with
  | None | Some Urm_util.Json.Null -> None
  | Some (Urm_util.Json.Arr items) ->
    Some
      (List.map
         (fun item ->
           let field n =
             match Urm_util.Json.member n item with
             | Some v -> v
             | None -> failwith ("Report: interval missing \"" ^ n ^ "\"")
           in
           let tuple =
             match field "tuple" with
             | Urm_util.Json.Arr cells ->
               Array.of_list (List.map value_of_json cells)
             | _ -> failwith "Report: interval \"tuple\" is not an array"
           in
           ( tuple,
             (Urm_util.Json.to_float (field "lo"),
              Urm_util.Json.to_float (field "hi")) ))
         items)
  | Some _ -> failwith "Report: \"intervals\" is not an array"

let to_json ?(volatile = true) r =
  let open Urm_util.Json in
  let stable =
    [
      ("answer", Answer.to_json r.answer);
      ("groups", Num (float_of_int r.groups));
    ]
    (* Omitted entirely when absent: exact reports render exactly as before
       this field existed (backward-compatible consumers, byte-stable
       determinism regressions). *)
    @
    match r.intervals with
    | None -> []
    | Some ivs -> [ ("intervals", intervals_to_json ivs) ]
  in
  if not volatile then Obj stable
  else
    Obj
      (stable
      @ [
          ( "timings",
            Obj
              [
                ("rewrite", Num r.timings.rewrite);
                ("plan", Num r.timings.plan);
                ("evaluate", Num r.timings.evaluate);
                ("aggregate", Num r.timings.aggregate);
              ] );
          ("source_operators", Num (float_of_int r.source_operators));
          ("rows_produced", Num (float_of_int r.rows_produced));
        ]
      (* The engine the run actually executed on (which may differ from
         the one the context requested — e.g. an algorithm falling back to
         its interpreted oracle path).  Volatile: the stable rendering must
         stay byte-identical across engines computing the same answer. *)
      @ match r.engine with "" -> [] | e -> [ ("engine", Str e) ])

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d tuples (θ=%.3f) | rewrite %.4fs plan %.4fs eval %.4fs agg %.4fs | %d ops, %d rows, %d groups%s@]"
    (Answer.size r.answer)
    (Answer.null_prob r.answer)
    r.timings.rewrite r.timings.plan r.timings.evaluate r.timings.aggregate
    r.source_operators r.rows_produced r.groups
    (match r.engine with "" -> "" | e -> " | engine " ^ e)
