type timings = {
  rewrite : float;
  plan : float;
  evaluate : float;
  aggregate : float;
}

let zero_timings = { rewrite = 0.; plan = 0.; evaluate = 0.; aggregate = 0. }
let total t = t.rewrite +. t.plan +. t.evaluate +. t.aggregate

type t = {
  answer : Answer.t;
  timings : timings;
  source_operators : int;
  rows_produced : int;
  groups : int;
}

(* One record per completed run: the phase breakdown as timers plus run and
   group counts, under the algorithm's metrics scope. *)
let record_metrics m r =
  let open Urm_obs.Metrics in
  incr (counter m "runs");
  incr ~by:r.groups (counter m "groups");
  record (timer m "phase.rewrite") r.timings.rewrite;
  record (timer m "phase.plan") r.timings.plan;
  record (timer m "phase.evaluate") r.timings.evaluate;
  record (timer m "phase.aggregate") r.timings.aggregate

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d tuples (θ=%.3f) | rewrite %.4fs plan %.4fs eval %.4fs agg %.4fs | %d ops, %d rows, %d groups@]"
    (Answer.size r.answer)
    (Answer.null_prob r.answer)
    r.timings.rewrite r.timings.plan r.timings.evaluate r.timings.aggregate
    r.source_operators r.rows_produced r.groups
