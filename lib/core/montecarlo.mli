(** Monte-Carlo validation of probabilistic answers.

    The mapping model is a discrete distribution over possible worlds: one
    mapping is correct, with its probability.  Sampling worlds and
    evaluating the query deterministically in each gives an unbiased
    estimate of every answer tuple's probability — an implementation-
    independent cross-check of the exact algorithms (used by the test
    suite, and useful as a fallback for enormous mapping sets). *)

(** [sampler ms] builds a Walker-Vose alias table over the probabilities
    (shared with [Urm_anytime]) and returns an O(1)-per-draw sampler.
    Requires total probability ≈ 1. *)
val sampler : Mapping.t list -> Urm_util.Prng.t -> Mapping.t

(** [sample rng ms] draws one mapping according to the probabilities —
    [sampler] applied once.  Prefer [sampler] when drawing repeatedly. *)
val sample : Urm_util.Prng.t -> Mapping.t list -> Mapping.t

(** [estimate ?seed ~samples ctx q ms] Monte-Carlo answer estimate: tuple
    probabilities are sample frequencies.  Evaluation results are cached
    per distinct source query, so cost is O(distinct queries) evaluations
    plus O(samples) bookkeeping. *)
val estimate :
  ?seed:int -> samples:int -> Ctx.t -> Query.t -> Mapping.t list -> Answer.t

(** [max_deviation ~exact ~estimate] largest |p_exact − p_estimate| over
    tuples of either answer (θ included). *)
val max_deviation : exact:Answer.t -> estimate:Answer.t -> float
