open Urm_relalg

let body_expr (sq, _) =
  match sq.Reformulate.body with Reformulate.Expr e -> Some e | _ -> None

(* [eval_units ~ctrs ctx q units] plans the evaluable units of [units]
   together (one shared MQO plan) and returns one partial answer per unit,
   index-aligned with [units], plus the plan and execution times.

   Contributions are kept per unit instead of being folded into one
   accumulator in plan-execution order: callers merge the parts in
   ascending unit order, so probabilities accumulate in a
   schedule-independent order — the plan's internal evaluation order (and,
   for the domain-parallel driver, the chunking) cannot perturb the final
   float sums. *)
let eval_units ~ctrs (ctx : Ctx.t) q units =
  let units = Array.of_list units in
  let header = Reformulate.output_header q in
  let parts = Array.map (fun _ -> Answer.create header) units in
  let evaluable_idx =
    Array.to_list units
    |> List.mapi (fun i u -> (i, u))
    |> List.filter_map (fun (i, u) -> if body_expr u = None then None else Some i)
    |> Array.of_list
  in
  let exprs =
    Array.to_list evaluable_idx
    |> List.map (fun i -> Option.get (body_expr units.(i)))
  in
  let plan, plan_time =
    Urm_util.Timer.time (fun () -> Urm_mqo.Planner.plan ctx.catalog exprs)
  in
  let (), evaluate =
    Urm_util.Timer.time (fun () ->
        Urm_mqo.Planner.execute_iter ~ctrs
          ~eval:(fun e -> Ctx.eval ~ctrs ctx e)
          ctx.catalog plan
          ~f:(fun i _ rel ->
            let j = evaluable_idx.(i) in
            let sq, p = units.(j) in
            Reformulate.answers_into parts.(j) sq
              ~factor:(Reformulate.factor ctx.catalog sq) rel p))
  in
  Array.iteri
    (fun j ((sq, p) as u) ->
      if body_expr u = None then
        Reformulate.null_answer_into parts.(j) sq
          ~factor:(Reformulate.factor ctx.catalog sq) p)
    units;
  (parts, plan_time, evaluate)

(* The interpreted Roy et al. planner path — deliberately expensive plan
   search (see {!Urm_mqo.Planner}) and the factorized executor's
   differential oracle. *)
let run_interpreted ~m ~ctrs (ctx : Ctx.t) q ms =
  let distinct, rewrite =
    Urm_util.Timer.time (fun () -> Ebasic.distinct_source_queries ctx q ms)
  in
  let parts, plan_time, evaluate = eval_units ~ctrs ctx q distinct in
  let acc = Answer.create (Reformulate.output_header q) in
  let (), aggregate =
    Urm_util.Timer.time (fun () -> Array.iter (Answer.merge_into acc) parts)
  in
  let report =
    {
      Report.answer = acc;
      intervals = None;
      timings = { Report.rewrite; plan = plan_time; evaluate; aggregate };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = Array.length parts;
      engine = "interpreted";
    }
  in
  Report.record_metrics m report;
  report

(* The plan engines go through the factorized executor with cross-unit
   common-subexpression elimination ({!Urm_mqo.Dag}): the global e-unit
   DAG is built once with a cheap counting pass, each share materialises
   once, and every distinct unit streams its batches into the answer with
   its whole mapping-mass vector. *)
let run_factorized ~m ~ctrs (ctx : Ctx.t) q ms =
  let units, rewrite =
    Urm_util.Timer.time (fun () -> Factorized.weighted_units ctx q ms)
  in
  let r = Factorized.eval ~ctrs ~cse:true ctx q units in
  let report =
    {
      Report.answer = r.Factorized.answer;
      intervals = None;
      timings =
        {
          Report.rewrite;
          plan = r.Factorized.plan_time;
          evaluate = r.Factorized.evaluate_time;
          aggregate = 0.;
        };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = r.Factorized.units;
      engine =
        Urm_relalg.Compile.engine_name (Ctx.engine ctx) ^ "+factorized";
    }
  in
  Report.record_metrics m report;
  report

let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "e-MQO" in
  let ctrs = Eval.fresh_counters ~metrics:m () in
  match Ctx.engine ctx with
  | Urm_relalg.Compile.Interpreted -> run_interpreted ~m ~ctrs ctx q ms
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    run_factorized ~m ~ctrs ctx q ms
