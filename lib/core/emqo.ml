open Urm_relalg

let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "e-MQO" in
  let ctrs = Eval.fresh_counters ~metrics:m () in
  let distinct, rewrite =
    Urm_util.Timer.time (fun () -> Ebasic.distinct_source_queries ctx q ms)
  in
  let body_expr (sq, _) =
    match sq.Reformulate.body with Reformulate.Expr e -> Some e | _ -> None
  in
  let evaluable = List.filter (fun g -> body_expr g <> None) distinct in
  let exprs = List.filter_map body_expr evaluable in
  let plan, plan_time = Urm_util.Timer.time (fun () -> Urm_mqo.Planner.plan ctx.catalog exprs) in
  let acc = Answer.create (Reformulate.output_header q) in
  let evaluable_arr = Array.of_list evaluable in
  let (), evaluate =
    Urm_util.Timer.time (fun () ->
        Urm_mqo.Planner.execute_iter ~ctrs ctx.catalog plan ~f:(fun i _ rel ->
            let sq, p = evaluable_arr.(i) in
            Reformulate.answers_into acc sq
              ~factor:(Reformulate.factor ctx.catalog sq) rel p))
  in
  let (), aggregate =
    Urm_util.Timer.time (fun () ->
        List.iter
          (fun (sq, p) ->
            if body_expr (sq, p) = None then
              Reformulate.null_answer_into acc sq
                ~factor:(Reformulate.factor ctx.catalog sq) p)
          distinct)
  in
  let report =
    {
      Report.answer = acc;
      timings = { Report.rewrite; plan = plan_time; evaluate; aggregate };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length distinct;
    }
  in
  Report.record_metrics m report;
  report
