open Urm_relalg

type strategy = Random | Snf | Sef

let strategy_name = function Random -> "Random" | Snf -> "SNF" | Sef -> "SEF"

type piece = {
  rel : Relation.t option;
      (* materialised result; [None] while the piece is a lazily-extended
         input expression (reformulation Case 2: R × R1 × … is the input
         of the next operator, not an executed operator itself) *)
  hint : Algebra.t;
  aliases : string list;
  loaded : (string * string) list;
}

type t = {
  pieces : piece list;
  pending : Query.op list;
  mappings : Mapping.t list;
}

type env = {
  ctx : Ctx.t;
  q : Query.t;
  strategy : strategy;
  rng : Urm_util.Prng.t;
  ctrs : Eval.counters;
  memo : (string, Relation.t) Hashtbl.t;
  use_memo : bool;
  c_eunits : Urm_obs.Metrics.counter;
  c_hits : Urm_obs.Metrics.counter;
  c_misses : Urm_obs.Metrics.counter;
  mutable tracer : (string -> unit) option;
}

let make_env ?(seed = 1) ?(use_memo = true) ?(metrics = Urm_obs.Metrics.global)
    ~strategy ctx q =
  let mu = Urm_obs.Metrics.scope metrics "eunit" in
  {
    ctx;
    q;
    strategy;
    rng = Urm_util.Prng.create seed;
    ctrs = Eval.fresh_counters ~metrics ();
    memo = Hashtbl.create 256;
    use_memo;
    c_eunits = Urm_obs.Metrics.counter mu "executions";
    c_hits = Urm_obs.Metrics.counter mu "memo_hits";
    c_misses = Urm_obs.Metrics.counter mu "memo_misses";
    tracer = None;
  }

let counters env = env.ctrs
let memo_hits env = Urm_obs.Metrics.value env.c_hits
let set_tracer env f = env.tracer <- Some f

let trace env fmt =
  match env.tracer with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some f -> Format.kasprintf f fmt
let eunits_created env = Urm_obs.Metrics.value env.c_eunits
let init q mappings = { pieces = []; pending = Query.operators q; mappings }
let mass u = Mapping.total_prob u.mappings

type leaf =
  | Tuples of Value.t array list * float
  | Null_answer of float

(* ------------------------------------------------------------------ *)
(* Source-operator execution with cross-branch memoisation.  Evaluation
   runs with the engine's logical optimisation on: a lazily-extended input
   product is planned together with the operator on top of it (selection
   pushdown, join formation), as a real engine would. *)

let run_qs env expr =
  let fp = Algebra.fingerprint expr in
  match if env.use_memo then Hashtbl.find_opt env.memo fp else None with
  | Some r ->
    Urm_obs.Metrics.incr env.c_hits;
    r
  | None ->
    Urm_obs.Metrics.incr env.c_misses;
    let r = Ctx.eval ~ctrs:env.ctrs env.ctx expr in
    if env.use_memo then Hashtbl.replace env.memo fp r;
    r

(* ------------------------------------------------------------------ *)
(* Piece management. *)

let source_of env m ta = Mapping.source_of m (Query.qualified env.q ta)

let base_instance env alias srel =
  let prefix = alias ^ "@" ^ srel in
  let hint = Algebra.Rename (prefix, Algebra.Base srel) in
  let rel = Relation.rename_prefix (Catalog.find env.ctx.catalog srel) prefix in
  { rel = Some rel; hint; aliases = [ alias ]; loaded = [ (alias, srel) ] }

let find_piece pieces pred =
  let rec go i = function
    | [] -> None
    | p :: rest -> if pred p then Some (i, p) else go (i + 1) rest
  in
  go 0 pieces

let replace_piece pieces i p = List.mapi (fun j old -> if j = i then p else old) pieces
let remove_two pieces i j = List.filteri (fun k _ -> k <> i && k <> j) pieces

(* Make the source attribute [src_qattr] (for target alias [alias])
   available in some piece.  An extension is symbolic — the product with the
   new base instance becomes part of the piece's input expression and is
   planned together with the next operator executed on the piece. *)
let ensure env pieces alias src_qattr =
  let srel, scol = Schema.split_qualified src_qattr in
  let col = alias ^ "@" ^ srel ^ "#" ^ scol in
  match find_piece pieces (fun p -> List.mem (alias, srel) p.loaded) with
  | Some (i, _) -> (pieces, i, col)
  | None -> begin
    match find_piece pieces (fun p -> List.mem alias p.aliases) with
    | Some (i, p) ->
      let inst = base_instance env alias srel in
      let p' =
        {
          rel = None;
          hint = Algebra.Product (p.hint, inst.hint);
          aliases = p.aliases;
          loaded = (alias, srel) :: p.loaded;
        }
      in
      (replace_piece pieces i p', i, col)
    | None ->
      let inst = base_instance env alias srel in
      (pieces @ [ inst ], List.length pieces, col)
  end

(* The source-relation cover an alias needs under mapping [m]: the relations
   owning its mapped needed attributes, sorted. *)
let cover env m alias =
  Query.needed_attrs env.ctx.target env.q alias
  |> List.filter_map (source_of env m)
  |> List.map (fun s -> fst (Schema.split_qualified s))
  |> List.sort_uniq String.compare

let is_referenced env alias = Query.referenced_of_alias env.q alias <> []

(* Load an alias's full cover as one (symbolic) piece.  Unreferenced aliases
   are never materialised: they contribute only the aggregate cardinality
   factor, applied in [exec_output]. *)
let load_alias env pieces m alias =
  if not (is_referenced env alias) then (pieces, None)
  else
    match find_piece pieces (fun p -> List.mem alias p.aliases) with
    | Some (i, _) -> (pieces, Some i)
    | None -> begin
      match cover env m alias with
      | [] -> (pieces, None)
      | first :: rest ->
        let piece0 = base_instance env alias first in
        let piece =
          List.fold_left
            (fun p srel ->
              let inst = base_instance env alias srel in
              {
                rel = None;
                hint = Algebra.Product (p.hint, inst.hint);
                aliases = p.aliases;
                loaded = (alias, srel) :: p.loaded;
              })
            piece0 rest
        in
        (pieces @ [ piece ], Some (List.length pieces))
    end

(* ------------------------------------------------------------------ *)
(* Partition labels: mappings with equal labels reformulate the operator to
   the same source operator (paper §VI-A). *)

let cover_label env u m alias =
  if not (is_referenced env alias) then
    (* Unreferenced alias: irrelevant for plain queries, a cardinality
       factor (determined by the cover) for aggregates. *)
    match env.q.Query.aggregate with
    | None -> "·"
    | Some _ -> String.concat "," (cover env m alias)
  else
    match find_piece u.pieces (fun p -> List.mem alias p.aliases) with
    | Some _ -> "·" (* already loaded: reformulation is piece-local *)
    | None -> String.concat "," (cover env m alias)

let op_label env u op m =
  match op with
  | Query.Op_select i ->
    let ta, _ = List.nth env.q.Query.selections i in
    Option.value ~default:"⊥" (source_of env m ta)
  | Query.Op_join i ->
    let a, b = List.nth env.q.Query.joins i in
    let la = Option.value ~default:"⊥" (source_of env m a) in
    let lb = Option.value ~default:"⊥" (source_of env m b) in
    la ^ "=" ^ lb
  | Query.Op_product (a1, a2) ->
    cover_label env u m a1 ^ "|" ^ cover_label env u m a2
  | Query.Op_output ->
    let outs =
      List.map
        (fun ta -> Option.value ~default:"⊥" (source_of env m ta))
        (Query.output_attrs env.q)
    in
    let agg =
      match env.q.Query.aggregate with
      | Some (Query.Sum ta) -> [ Option.value ~default:"⊥" (source_of env m ta) ]
      | Some Query.Count | None -> []
    in
    let covers =
      List.map (fun (alias, _) -> cover_label env u m alias) env.q.Query.aliases
    in
    String.concat ";" (outs @ agg @ covers)

(* ------------------------------------------------------------------ *)
(* Operator selection: Random / SNF / SEF (paper §VI-A). *)

let partitions_for env u op =
  Ptree.partition_by_labels (op_label env u op) u.mappings

let select_next env u =
  let candidates =
    match u.pending with
    | [ Query.Op_output ] -> [ Query.Op_output ]
    | ops -> List.filter (fun o -> o <> Query.Op_output) ops
  in
  match candidates with
  | [] -> invalid_arg "Eunit.select_next: no pending operators"
  | [ op ] -> (op, partitions_for env u op)
  | ops -> begin
    match env.strategy with
    | Random ->
      let op = Urm_util.Prng.pick_list env.rng ops in
      (op, partitions_for env u op)
    | Snf | Sef ->
      let total = float_of_int (List.length u.mappings) in
      let score op =
        let parts = partitions_for env u op in
        let value =
          match env.strategy with
          | Snf -> float_of_int (List.length parts)
          | Sef | Random ->
            Urm_util.Stats.entropy
              (List.map
                 (fun (_, group) -> float_of_int (List.length group) /. total)
                 parts)
        in
        (value, parts)
      in
      let best =
        List.fold_left
          (fun acc op ->
            let value, parts = score op in
            match acc with
            | Some (_, best_value, _) when best_value <= value -> acc
            | _ -> Some (op, value, parts))
          None ops
      in
      (match best with
      | Some (op, _, parts) -> (op, parts)
      | None -> assert false)
  end

(* ------------------------------------------------------------------ *)
(* Operator execution. *)

let leaf_null env m_mass =
  match (env.q.Query.aggregate, env.q.Query.group_by) with
  (* A grouped aggregate over an empty input has no groups: θ. *)
  | Some _, _ :: _ -> Null_answer m_mass
  | Some Query.Count, [] -> Tuples ([ [| Value.Int 0 |] ], m_mass)
  | Some (Query.Sum _), [] -> Tuples ([ [| Value.Null |] ], m_mass)
  | None, _ -> Null_answer m_mass

type step = Child of t | Leaf of leaf

let remaining u op = List.filter (fun o -> o <> op) u.pending

let update_or_null env u op pieces i rel group =
  if Relation.is_empty rel then Leaf (leaf_null env (Mapping.total_prob group))
  else begin
    let p = List.nth pieces i in
    let p' = { p with rel = Some rel; hint = Algebra.Mat rel } in
    Child { pieces = replace_piece pieces i p'; pending = remaining u op; mappings = group }
  end

let exec_select env u op i group =
  let ta, v = List.nth env.q.Query.selections i in
  let m = List.hd group in
  let g_mass = Mapping.total_prob group in
  match source_of env m ta with
  | None -> Leaf (leaf_null env g_mass)
  | Some src ->
    let pieces, idx, col = ensure env u.pieces ta.Query.alias src in
    let p = List.nth pieces idx in
    let rel = run_qs env (Algebra.Select (Pred.eq col v, p.hint)) in
    update_or_null env u op pieces idx rel group

let exec_join env u op i group =
  let a, b = List.nth env.q.Query.joins i in
  let m = List.hd group in
  let g_mass = Mapping.total_prob group in
  match (source_of env m a, source_of env m b) with
  | None, _ | _, None -> Leaf (leaf_null env g_mass)
  | Some sa, Some sb ->
    let pieces, ia, ca = ensure env u.pieces a.Query.alias sa in
    let pieces, ib, cb = ensure env pieces b.Query.alias sb in
    if ia = ib then begin
      let p = List.nth pieces ia in
      let rel = run_qs env (Algebra.Select (Pred.eq_cols ca cb, p.hint)) in
      update_or_null env u op pieces ia rel group
    end
    else begin
      let pa = List.nth pieces ia and pb = List.nth pieces ib in
      let rel = run_qs env (Algebra.Join (Pred.eq_cols ca cb, pa.hint, pb.hint)) in
      if Relation.is_empty rel then Leaf (leaf_null env g_mass)
      else begin
        let merged =
          {
            rel = Some rel;
            hint = Algebra.Mat rel;
            aliases = pa.aliases @ pb.aliases;
            loaded = pa.loaded @ pb.loaded;
          }
        in
        Child
          {
            pieces = remove_two pieces ia ib @ [ merged ];
            pending = remaining u op;
            mappings = group;
          }
      end
    end

let exec_product env u op a1 a2 group =
  let m = List.hd group in
  let g_mass = Mapping.total_prob group in
  (* Executing a Cartesian product materialises nothing: its sides are
     loaded (that is what the partition key reflects) and the cross product
     itself is deferred to the output operator, where the engine factorises
     it under set semantics.  Materialising raw cross products here is what
     makes the naive strategies explode. *)
  let pieces, _ = load_alias env u.pieces m a1 in
  let pieces, _ = load_alias env pieces m a2 in
  let empty_piece p = match p.rel with Some r -> Relation.is_empty r | None -> false in
  if List.exists empty_piece pieces then Leaf (leaf_null env g_mass)
  else Child { pieces; pending = remaining u op; mappings = group }

let exec_output env u group =
  let m = List.hd group in
  let g_mass = Mapping.total_prob group in
  (* Aggregate multiplicity of the factored-out unreferenced aliases. *)
  let factor =
    match env.q.Query.aggregate with
    | None -> 1
    | Some _ ->
      List.fold_left
        (fun acc (alias, _) ->
          if is_referenced env alias then acc
          else
            List.fold_left
              (fun acc r ->
                acc * Relation.cardinality (Catalog.find env.ctx.catalog r))
              acc (cover env m alias))
        1 env.q.Query.aliases
  in
  let scale v =
    match v with
    | Value.Int c -> Value.Int (c * factor)
    | Value.Float s -> Value.Float (s *. float_of_int factor)
    | Value.Null | Value.Str _ -> v
  in
  (* 1. Every referenced alias must contribute its cover. *)
  let pieces =
    List.fold_left
      (fun pieces (alias, _) -> fst (load_alias env pieces m alias))
      u.pieces env.q.Query.aliases
  in
  if pieces = [] then
    match env.q.Query.aggregate with
    | Some Query.Count ->
      (* Nothing to evaluate: the count is exactly the multiplicity. *)
      Leaf (Tuples ([ [| Value.Int factor |] ], g_mass))
    | Some (Query.Sum _) | None -> Leaf (leaf_null env g_mass)
  else begin
    (* 2. Make mapped output (and SUM) attributes available. *)
    let need_attrs =
      (match env.q.Query.aggregate with
      | Some (Query.Sum ta) -> [ ta ]
      | Some Query.Count | None -> [])
      @ Query.output_attrs env.q
    in
    let pieces, cols =
      List.fold_left
        (fun (pieces, cols) ta ->
          match source_of env m ta with
          | None -> (pieces, (ta, None) :: cols)
          | Some src ->
            let pieces, _, col = ensure env pieces ta.Query.alias src in
            (pieces, (ta, Some col) :: cols))
        (pieces, []) need_attrs
    in
    let col_of ta =
      List.assoc (Query.tattr_to_string ta)
        (List.map (fun (t, c) -> (Query.tattr_to_string t, c)) cols)
    in
    (* 3. Merge remaining pieces symbolically. *)
    let merged_hint =
      match pieces with
      | [] -> assert false
      | p :: rest ->
        List.fold_left (fun acc p2 -> Algebra.Product (acc, p2.hint)) p.hint rest
    in
    (* 4. Aggregate (grouped or global) or project-and-deduplicate. *)
    let source_agg =
      match env.q.Query.aggregate with
      | Some Query.Count -> Some Algebra.Count
      | Some (Query.Sum ta) -> Option.map (fun c -> Algebra.Sum c) (col_of ta)
      | None -> None
    in
    match (env.q.Query.aggregate, env.q.Query.group_by) with
    | Some _, (_ :: _ as group_by) -> begin
      match source_agg with
      | None -> Leaf (leaf_null env g_mass) (* SUM attribute unmapped *)
      | Some a ->
        let keys =
          List.sort_uniq String.compare (List.filter_map col_of group_by)
        in
        let rel = run_qs env (Algebra.GroupBy (keys, a, merged_hint)) in
        if Relation.is_empty rel then Leaf (Null_answer g_mass)
        else begin
          let getters =
            List.map (fun ta -> Option.map (Relation.col_pos rel) (col_of ta)) group_by
          in
          let agg_pos = Relation.col_pos rel (Algebra.output_col a) in
          let tuples = ref [] in
          Relation.iter
            (fun row ->
              let groups =
                List.map (function Some i -> row.(i) | None -> Value.Null) getters
              in
              tuples := Array.of_list (groups @ [ scale row.(agg_pos) ]) :: !tuples)
            rel;
          Leaf (Tuples (List.rev !tuples, g_mass))
        end
    end
    | Some Query.Count, [] ->
      let rel = run_qs env (Algebra.Aggregate (Algebra.Count, merged_hint)) in
      Leaf (Tuples ([ [| scale (Relation.value rel 0 "count") |] ], g_mass))
    | Some (Query.Sum _), [] -> begin
      match source_agg with
      | None -> Leaf (leaf_null env g_mass)
      | Some a ->
        let rel = run_qs env (Algebra.Aggregate (a, merged_hint)) in
        Leaf
          (Tuples ([ [| scale (Relation.value rel 0 (Algebra.output_col a)) |] ], g_mass))
    end
    | None, _ ->
      let outputs = Query.output_attrs env.q in
      let out_cols = List.filter_map col_of outputs in
      let proj_cols = List.sort_uniq String.compare out_cols in
      if proj_cols = [] then begin
        (* No output mapped: only (factored) emptiness matters. *)
        if Ctx.nonempty ~ctrs:env.ctrs env.ctx merged_hint then
          Leaf (Tuples ([ Array.make (List.length outputs) Value.Null ], g_mass))
        else Leaf (Null_answer g_mass)
      end
      else begin
        let projected =
          run_qs env (Algebra.Distinct (Algebra.Project (proj_cols, merged_hint)))
        in
        if Relation.is_empty projected then Leaf (Null_answer g_mass)
        else begin
          let getters =
            List.map
              (fun ta -> Option.map (Relation.col_pos projected) (col_of ta))
              outputs
          in
          (* [projected] is distinct over the mapped output columns and
             unmapped outputs are a constant Null, so tuples are distinct. *)
          let tuples = ref [] in
          Relation.iter
            (fun row ->
              let tuple =
                Array.of_list
                  (List.map (function Some i -> row.(i) | None -> Value.Null) getters)
              in
              tuples := tuple :: !tuples)
            projected;
          Leaf (Tuples (List.rev !tuples, g_mass))
        end
      end
  end

let exec_op env u op group =
  match op with
  | Query.Op_select i -> exec_select env u op i group
  | Query.Op_join i -> exec_join env u op i group
  | Query.Op_product (a1, a2) -> exec_product env u op a1 a2 group
  | Query.Op_output -> exec_output env u group

(* ------------------------------------------------------------------ *)
(* The u-trace traversal: paper Algorithm 2 (and the skeleton of
   Algorithm 4 when [emit] stops early). *)

(* Operator selection plus partition ordering for one e-unit — the prefix
   of [run_qt] before it recurses.  Exposed so the domain-parallel
   o-sharing driver can fan the root's partitions across domains while
   visiting (merging) them in exactly this order. *)
let branches env u =
  Urm_obs.Metrics.incr env.c_eunits;
  let op, groups = select_next env u in
  trace env "e-unit #%d (%d mappings, mass %.3f): next %a across %d partition(s)"
    (eunits_created env) (List.length u.mappings) (mass u) (Query.pp_op env.q) op
    (List.length groups);
  let groups =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare (Mapping.total_prob b) (Mapping.total_prob a))
      groups
  in
  (op, groups)

let rec run_qt env u ~emit =
  let op, groups = branches env u in
  let rec visit = function
    | [] -> true
    | (label, group) :: rest -> begin
      trace env "  partition %s: %d mapping(s), mass %.3f" label
        (List.length group) (Mapping.total_prob group);
      match exec_op env u op group with
      | Leaf l ->
        (match l with
        | Tuples (ts, m) -> trace env "  leaf: %d tuple(s), mass %.3f" (List.length ts) m
        | Null_answer m -> trace env "  leaf: θ, mass %.3f" m);
        if emit l then visit rest else false
      | Child c -> if run_qt env c ~emit then visit rest else false
    end
  in
  visit groups
