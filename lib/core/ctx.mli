(** Evaluation context: the source instance, the two schemas, and the
    query-execution engine.

    The context owns a {!Urm_relalg.Compile.env} (per-catalog statistics +
    compile counters) and a {!Urm_relalg.Plan_cache.t}, so every algorithm
    that evaluates through {!eval} compiles each distinct query shape once
    and executes it per mapping.  The engine defaults to [Vectorized]
    (batched execution over typed column vectors); pass [~engine:Compiled]
    for the row-at-a-time plan pipeline or [~engine:Interpreted]
    (CLI: [--engine interpreted]) for the tree-walking evaluator.  All
    three produce bit-identical answers. *)

type t = {
  catalog : Urm_relalg.Catalog.t;  (** the source instance D *)
  source : Urm_relalg.Schema.t;
  target : Urm_relalg.Schema.t;
  engine : Urm_relalg.Compile.engine;
  compile_env : Urm_relalg.Compile.env;
  plans : Urm_relalg.Plan_cache.t;
}

val make :
  ?engine:Urm_relalg.Compile.engine ->
  catalog:Urm_relalg.Catalog.t ->
  source:Urm_relalg.Schema.t ->
  target:Urm_relalg.Schema.t ->
  unit ->
  t

val engine : t -> Urm_relalg.Compile.engine

(** [with_catalog t cat] the same context evaluating over [cat] — the
    versioned-catalog commit path.  The plan cache and compile env are
    shared with [t]: plans bind [Base] leaves at execution time, so they
    stay valid across copy-on-write catalog versions (which never change a
    relation's header), and the memoized hash-join build tables key on the
    catalog pointer, so a new version automatically rebuilds its own.
    Compile-time cardinality statistics keep describing [t]'s instance. *)
val with_catalog : t -> Urm_relalg.Catalog.t -> t

(** [eval ?ctrs t e] evaluates [e] through the context's engine.
    [Compiled] looks the plan up in the context's plan cache (expressions
    embedding [Mat] nodes compile uncached — their fingerprints are
    one-shot) and executes it; [Interpreted] is {!Urm_relalg.Eval.eval}.
    Both engines feed the same operator counters. *)
val eval :
  ?ctrs:Urm_relalg.Eval.counters -> t -> Urm_relalg.Algebra.t -> Urm_relalg.Relation.t

(** [eval_stream ?ctrs t e] = [(header, drive)]: [drive f] invokes [f]
    once per result row (same rows and order as {!eval}).  [Compiled]
    streams out of the plan pipeline without materialising a relation —
    the basic algorithm's fused evaluate-and-accumulate path;
    [Interpreted] evaluates eagerly at the call and replays the rows. *)
val eval_stream :
  ?ctrs:Urm_relalg.Eval.counters ->
  t ->
  Urm_relalg.Algebra.t ->
  string list * ((Urm_relalg.Value.t array -> unit) -> unit)

(** [eval_batches ?ctrs t e] = [(header, drive)] like {!eval_stream} but
    streaming {!Urm_relalg.Column.batch}es — the vectorized fused
    evaluate-and-accumulate path.  Same rows in the same order as
    {!eval_stream}; batches are only valid during the callback. *)
val eval_batches :
  ?ctrs:Urm_relalg.Eval.counters ->
  t ->
  Urm_relalg.Algebra.t ->
  string list * ((Urm_relalg.Column.batch -> unit) -> unit)

(** [eval_wbatches ?ctrs t e ~weights] like {!eval_batches} but every
    batch is wrapped in {!Urm_relalg.Column.weighted} carrying [weights] —
    the Pr(mᵢ) mass vector of the mappings whose reformulation contains
    [e].  The factorized multi-mapping executor's entry point: one plan
    execution serves every mapping in the vector. *)
val eval_wbatches :
  ?ctrs:Urm_relalg.Eval.counters ->
  t ->
  Urm_relalg.Algebra.t ->
  weights:float array ->
  string list * ((Urm_relalg.Column.weighted -> unit) -> unit)

(** Emptiness test; products short-circuit without materialising either
    side on both engines. *)
val nonempty : ?ctrs:Urm_relalg.Eval.counters -> t -> Urm_relalg.Algebra.t -> bool

(** [(hits, misses, evictions)] of the context's plan cache. *)
val plan_stats : t -> int * int * int
