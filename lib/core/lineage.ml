open Urm_relalg

type entry = {
  tuple : Value.t array;
  prob : float;
  support : int list;
}

type t = {
  output : string list;
  entries : entry list;
  null_prob : float;
  null_support : int list;
}

let run (ctx : Ctx.t) q ms =
  (* Group mappings by source query (as e-basic does), evaluate each
     distinct query once, then attribute its tuples to every mapping of the
     group. *)
  let groups : (string, Reformulate.t * Mapping.t list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun m ->
      let sq = Reformulate.source_query ctx.target q m in
      let key = Reformulate.key sq in
      match Hashtbl.find_opt groups key with
      | Some (_, members) -> members := m :: !members
      | None ->
        Hashtbl.add groups key (sq, ref [ m ]);
        order := key :: !order)
    ms;
  let acc : (Value.t array, float ref * int list ref) Hashtbl.t = Hashtbl.create 64 in
  let null_mass = ref 0. in
  let null_support = ref [] in
  List.iter
    (fun key ->
      let sq, members = Hashtbl.find groups key in
      let mass = Mapping.total_prob !members in
      let ids = List.map (fun m -> m.Mapping.id) !members in
      let rel =
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Ctx.eval ctx e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None
      in
      let tuples =
        Reformulate.result_tuples sq ~factor:(Reformulate.factor ctx.catalog sq) rel
      in
      match tuples with
      | [] ->
        null_mass := !null_mass +. mass;
        null_support := ids @ !null_support
      | _ ->
        List.iter
          (fun t ->
            match Hashtbl.find_opt acc t with
            | Some (p, support) ->
              p := !p +. mass;
              support := ids @ !support
            | None -> Hashtbl.replace acc t (ref mass, ref ids))
          tuples)
    (List.rev !order);
  let entries =
    Hashtbl.fold
      (fun tuple (p, support) out ->
        { tuple; prob = !p; support = List.sort_uniq Int.compare !support } :: out)
      acc []
    |> List.sort (fun a b ->
           let c = Float.compare b.prob a.prob in
           if c <> 0 then c else compare a.tuple b.tuple)
  in
  {
    output = Reformulate.output_header q;
    entries;
    null_prob = !null_mass;
    null_support = List.sort_uniq Int.compare !null_support;
  }

let support_of t tuple =
  match List.find_opt (fun e -> e.tuple = tuple) t.entries with
  | Some e -> e.support
  | None -> []

let pp ppf t =
  Format.fprintf ppf "@[<v>lineage over (%s):" (String.concat ", " t.output);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  (%s) : %.4f  ⟵ mappings {%s}"
        (String.concat ", " (Array.to_list (Array.map Value.to_string e.tuple)))
        e.prob
        (String.concat "," (List.map string_of_int e.support)))
    t.entries;
  if t.null_prob > 0. then
    Format.fprintf ppf "@,  θ : %.4f  ⟵ mappings {%s}" t.null_prob
      (String.concat "," (List.map string_of_int t.null_support));
  Format.fprintf ppf "@]"
