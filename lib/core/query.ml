open Urm_relalg

type tattr = { alias : string; attr : string }

let at alias attr = { alias; attr }
let tattr_to_string ta = ta.alias ^ "." ^ ta.attr
let pp_tattr ppf ta = Format.pp_print_string ppf (tattr_to_string ta)

type agg = Count | Sum of tattr

type t = {
  name : string;
  aliases : (string * string) list;
  selections : (tattr * Value.t) list;
  joins : (tattr * tattr) list;
  projection : tattr list option;
  aggregate : agg option;
  group_by : tattr list;
}

let relation_of q alias = List.assoc alias q.aliases
let qualified q ta = Schema.qualify (relation_of q ta.alias) ta.attr

let make ~name ~target ~aliases ?(selections = []) ?(joins = []) ?projection
    ?aggregate ?(group_by = []) () =
  if aliases = [] then invalid_arg "Query.make: no aliases";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (a, r) ->
      if Hashtbl.mem seen a then invalid_arg ("Query.make: duplicate alias " ^ a);
      Hashtbl.add seen a ();
      if not (Schema.mem_rel target r) then
        invalid_arg ("Query.make: unknown target relation " ^ r))
    aliases;
  let check ta =
    match List.assoc_opt ta.alias aliases with
    | None -> invalid_arg ("Query.make: unknown alias " ^ ta.alias)
    | Some r ->
      let rel = Schema.find_rel target r in
      if not (List.exists (fun a -> String.equal a.Schema.aname ta.attr) rel.Schema.attrs)
      then invalid_arg ("Query.make: unknown attribute " ^ tattr_to_string ta)
  in
  List.iter (fun (ta, _) -> check ta) selections;
  List.iter
    (fun (a, b) ->
      check a;
      check b)
    joins;
  Option.iter (List.iter check) projection;
  (match aggregate with
  | Some (Sum ta) -> check ta
  | Some Count | None -> ());
  List.iter check group_by;
  if projection <> None && aggregate <> None then
    invalid_arg "Query.make: projection and aggregate are exclusive";
  if group_by <> [] && aggregate = None then
    invalid_arg "Query.make: group_by requires an aggregate";
  { name; aliases; selections; joins; projection; aggregate; group_by }

let dedup_tattrs l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun ta ->
      let k = tattr_to_string ta in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    l

let referenced_attrs q =
  let sels = List.map fst q.selections in
  let joins = List.concat_map (fun (a, b) -> [ a; b ]) q.joins in
  let proj = Option.value ~default:[] q.projection in
  let agg = match q.aggregate with Some (Sum ta) -> [ ta ] | Some Count | None -> [] in
  dedup_tattrs (sels @ joins @ proj @ agg @ q.group_by)

let referenced_of_alias q alias =
  List.filter (fun ta -> String.equal ta.alias alias) (referenced_attrs q)

let output_attrs q =
  match (q.projection, q.aggregate) with
  | Some p, _ -> p
  | None, Some _ -> q.group_by
  | None, None -> referenced_attrs q

let needed_attrs target q alias =
  match referenced_of_alias q alias with
  | _ :: _ as refs -> refs
  | [] ->
    let rel = Schema.find_rel target (relation_of q alias) in
    List.map (fun a -> at alias a.Schema.aname) rel.Schema.attrs

let partition_attrs target q =
  (* For plain queries an unreferenced alias contributes nothing to the
     source query (its piece is factored away, see Reformulate), so its
     correspondences must not split partitions; for aggregates its cover
     determines the cardinality factor, so they must. *)
  List.concat_map
    (fun (alias, _) ->
      match (referenced_of_alias q alias, q.aggregate) with
      | (_ :: _ as refs), _ -> refs
      | [], Some _ -> needed_attrs target q alias
      | [], None -> [])
    q.aliases

type op =
  | Op_select of int
  | Op_join of int
  | Op_product of string * string
  | Op_output

let pp_op q ppf = function
  | Op_select i ->
    let ta, v = List.nth q.selections i in
    Format.fprintf ppf "σ[%a=%a]" pp_tattr ta Value.pp v
  | Op_join i ->
    let a, b = List.nth q.joins i in
    Format.fprintf ppf "⋈[%a=%a]" pp_tattr a pp_tattr b
  | Op_product (a, b) -> Format.fprintf ppf "×[%s,%s]" a b
  | Op_output -> Format.pp_print_string ppf "output"

(* Products connect the alias components left separate by the join graph:
   union-find over aliases, then one product per surviving component pair,
   in alias declaration order. *)
let products q =
  let aliases = List.map fst q.aliases in
  let parent = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace parent a a) aliases;
  let rec find a =
    let p = Hashtbl.find parent a in
    if String.equal p a then a
    else begin
      let root = find p in
      Hashtbl.replace parent a root;
      root
    end
  in
  let union a b = Hashtbl.replace parent (find a) (find b) in
  List.iter (fun (x, y) -> union x.alias y.alias) q.joins;
  let out = ref [] in
  (match aliases with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun a ->
        if not (String.equal (find a) (find first)) then begin
          out := (first, a) :: !out;
          union a first
        end)
      rest);
  List.rev !out

let operators q =
  List.mapi (fun i _ -> Op_select i) q.selections
  @ List.mapi (fun i _ -> Op_join i) q.joins
  @ List.map (fun (a, b) -> Op_product (a, b)) (products q)
  @ [ Op_output ]

let operator_count q =
  List.length q.selections + List.length q.joins + List.length (products q)
  + (match (q.projection, q.aggregate) with None, None -> 0 | _ -> 1)

(* Canonical text: identifies the query up to name and up to the order of
   aliases, selections and join predicates (join sides are oriented
   lexicographically).  Projection, aggregate and group-by order is
   significant (it shapes the output) and is kept as written. *)
let canonical q =
  let buf = Buffer.create 128 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sorted to_str l = List.sort String.compare (List.map to_str l) in
  add "aliases[%s]"
    (String.concat ";" (sorted (fun (a, r) -> a ^ ":" ^ r) q.aliases));
  add "sel[%s]"
    (String.concat ";"
       (sorted
          (fun (ta, v) -> tattr_to_string ta ^ "=" ^ Value.to_string v)
          q.selections));
  add "join[%s]"
    (String.concat ";"
       (sorted
          (fun (a, b) ->
            let a = tattr_to_string a and b = tattr_to_string b in
            if String.compare a b <= 0 then a ^ "~" ^ b else b ^ "~" ^ a)
          q.joins));
  (match q.projection with
  | None -> ()
  | Some p ->
    add "proj[%s]" (String.concat ";" (List.map tattr_to_string p)));
  (match q.aggregate with
  | None -> ()
  | Some Count -> add "agg[count]"
  | Some (Sum ta) -> add "agg[sum:%s]" (tattr_to_string ta));
  if q.group_by <> [] then
    add "group[%s]" (String.concat ";" (List.map tattr_to_string q.group_by));
  Buffer.contents buf

let fingerprint q = Urm_util.Fnv.(to_hex (string (canonical q)))

let pp ppf q =
  Format.fprintf ppf "@[<h>%s:" q.name;
  (match q.aggregate with
  | Some Count -> Format.fprintf ppf " COUNT("
  | Some (Sum ta) -> Format.fprintf ppf " SUM(%a, " pp_tattr ta
  | None -> ());
  (match q.projection with
  | Some p ->
    Format.fprintf ppf " π[%s]" (String.concat "," (List.map tattr_to_string p))
  | None -> ());
  List.iter
    (fun (ta, v) -> Format.fprintf ppf " σ[%a=%a]" pp_tattr ta Value.pp v)
    q.selections;
  List.iter
    (fun (a, b) -> Format.fprintf ppf " ⋈[%a=%a]" pp_tattr a pp_tattr b)
    q.joins;
  Format.fprintf ppf " %s"
    (String.concat " × "
       (List.map (fun (a, r) -> if String.equal a r then r else r ^ " as " ^ a) q.aliases));
  (match q.aggregate with Some _ -> Format.fprintf ppf ")" | None -> ());
  if q.group_by <> [] then
    Format.fprintf ppf " γ[%s]"
      (String.concat "," (List.map tattr_to_string q.group_by));
  Format.fprintf ppf "@]"

let to_string q = Format.asprintf "%a" pp q
