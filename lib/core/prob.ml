let eps = 1e-9
