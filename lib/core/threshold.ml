open Urm_relalg

type result = {
  report : Report.t;
  visited_eunits : int;
  stopped_early : bool;
}

let run ?(strategy = Eunit.Sef) ?seed ?use_memo
    ?(metrics = Urm_obs.Metrics.global) ~tau (ctx : Ctx.t) q ms =
  if tau <= 0. || tau > 1. then invalid_arg "Threshold.run: tau must be in (0, 1]";
  let m = Urm_obs.Metrics.scope metrics "threshold" in
  let reps, rewrite =
    Urm_util.Timer.time (fun () -> Qsharing.representatives ctx q ms)
  in
  Urm_obs.Metrics.incr ~by:(List.length reps)
    (Urm_obs.Metrics.counter (Urm_obs.Metrics.scope m "eunit") "representatives");
  let env = Eunit.make_env ?seed ?use_memo ~metrics:m ~strategy ctx q in
  let eps = Prob.eps in
  (* Candidate tuples with their accumulated lower bounds.  Tuples whose
     best possible probability (lb + UB) drops below τ are discarded. *)
  let table : (Value.t array, float ref) Hashtbl.t = Hashtbl.create 64 in
  let ub = ref 1.0 in
  let decide leaf =
    let mass, tuples =
      match leaf with
      | Eunit.Null_answer mass -> (mass, [])
      | Eunit.Tuples (tuples, mass) -> (mass, tuples)
    in
    List.iter
      (fun t ->
        match Hashtbl.find_opt table t with
        | Some r -> r := !r +. mass
        | None ->
          (* A new tuple can reach τ only if the remaining mass (which
             includes this leaf) suffices. *)
          if !ub >= tau -. eps then Hashtbl.replace table t (ref mass))
      tuples;
    ub := !ub -. mass;
    (* Drop candidates that can no longer qualify. *)
    let doomed =
      Hashtbl.fold
        (fun t r acc -> if !r +. !ub < tau -. eps then t :: acc else acc)
        table []
    in
    List.iter (Hashtbl.remove table) doomed;
    (* Stop when no unseen tuple can qualify and every tracked candidate is
       decided (already at τ, since the undecided ones were just dropped or
       still need future mass). *)
    !ub < tau -. eps
    && Hashtbl.fold (fun _ r ok -> ok && !r >= tau -. eps) table true
  in
  let finished, evaluate =
    Urm_util.Timer.time (fun () ->
        Eunit.run_qt env (Eunit.init q reps) ~emit:(fun leaf -> not (decide leaf)))
  in
  let answer = Answer.create (Reformulate.output_header q) in
  Hashtbl.iter (fun t r -> if !r >= tau -. eps then Answer.add answer t !r) table;
  let ctrs = Eunit.counters env in
  let report =
    {
      Report.answer;
      intervals = None;
      timings = { Report.rewrite; plan = 0.; evaluate; aggregate = 0. };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length reps;
      engine = Urm_relalg.Compile.engine_name (Ctx.engine ctx);
    }
  in
  Report.record_metrics m report;
  {
    report;
    visited_eunits = Eunit.eunits_created env;
    stopped_early = not finished;
  }
