open Urm_relalg

let distinct_source_queries (ctx : Ctx.t) q ms =
  let groups = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun m ->
      let sq = Reformulate.source_query ctx.target q m in
      let k = Reformulate.key sq in
      match Hashtbl.find_opt groups k with
      | Some cell -> cell := (fst !cell, snd !cell +. m.Mapping.prob)
      | None ->
        Hashtbl.add groups k (ref (sq, m.Mapping.prob));
        order := k :: !order)
    ms;
  List.rev_map (fun k -> !(Hashtbl.find groups k)) !order

let timed sw f =
  match sw with
  | None -> f ()
  | Some sw ->
    Urm_util.Timer.Stopwatch.start sw;
    Fun.protect ~finally:(fun () -> Urm_util.Timer.Stopwatch.stop sw) f

(* One distinct source query's evaluate→aggregate step, shared by the
   sequential loop below and the domain-parallel driver (which fans
   contiguous chunks of the distinct list). *)
let eval_unit ?evaluate_sw ?aggregate_sw ~ctrs (ctx : Ctx.t) acc (sq, p) =
  let rel =
    timed evaluate_sw (fun () ->
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Ctx.eval ~ctrs ctx e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None)
  in
  timed aggregate_sw (fun () ->
      let factor = Reformulate.factor ctx.catalog sq in
      match rel with
      | Some r -> Reformulate.answers_into acc sq ~factor r p
      | None -> Reformulate.null_answer_into acc sq ~factor p)

let accumulate_units ~ctrs ctx acc units =
  List.iter (eval_unit ~ctrs ctx acc) units

(* The interpreted per-unit loop — the factorized executor's differential
   oracle. *)
let run_interpreted ~m ~ctrs (ctx : Ctx.t) q ms =
  let distinct, rewrite =
    Urm_util.Timer.time (fun () -> distinct_source_queries ctx q ms)
  in
  let sw_evaluate = Urm_util.Timer.Stopwatch.create () in
  let sw_aggregate = Urm_util.Timer.Stopwatch.create () in
  let acc = Answer.create (Reformulate.output_header q) in
  List.iter
    (eval_unit ~evaluate_sw:sw_evaluate ~aggregate_sw:sw_aggregate ~ctrs ctx acc)
    distinct;
  let report =
    {
      Report.answer = acc;
      intervals = None;
      timings =
        {
          Report.rewrite;
          plan = 0.;
          evaluate = Urm_util.Timer.Stopwatch.elapsed sw_evaluate;
          aggregate = Urm_util.Timer.Stopwatch.elapsed sw_aggregate;
        };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length distinct;
      engine = "interpreted";
    }
  in
  Report.record_metrics m report;
  report

(* The plan engines go through the factorized executor: each distinct
   source query runs once, streaming its batches into the answer with the
   unit's whole mapping-mass vector (no cross-unit CSE — that is e-MQO's
   job).  Bit-identical to [run_interpreted]: same unit order, and the
   collapsed vector mass equals the incremental per-mapping sum. *)
let run_factorized ~m ~ctrs (ctx : Ctx.t) q ms =
  let units, rewrite =
    Urm_util.Timer.time (fun () -> Factorized.weighted_units ctx q ms)
  in
  let r = Factorized.eval ~ctrs ctx q units in
  let report =
    {
      Report.answer = r.Factorized.answer;
      intervals = None;
      timings =
        {
          Report.rewrite;
          plan = r.Factorized.plan_time;
          evaluate = r.Factorized.evaluate_time;
          aggregate = 0.;
        };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = r.Factorized.units;
      engine =
        Urm_relalg.Compile.engine_name (Ctx.engine ctx) ^ "+factorized";
    }
  in
  Report.record_metrics m report;
  report

let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "e-basic" in
  let ctrs = Eval.fresh_counters ~metrics:m () in
  match Ctx.engine ctx with
  | Urm_relalg.Compile.Interpreted -> run_interpreted ~m ~ctrs ctx q ms
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    run_factorized ~m ~ctrs ctx q ms
