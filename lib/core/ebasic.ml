open Urm_relalg

let distinct_source_queries (ctx : Ctx.t) q ms =
  let groups = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun m ->
      let sq = Reformulate.source_query ctx.target q m in
      let k = Reformulate.key sq in
      match Hashtbl.find_opt groups k with
      | Some cell -> cell := (fst !cell, snd !cell +. m.Mapping.prob)
      | None ->
        Hashtbl.add groups k (ref (sq, m.Mapping.prob));
        order := k :: !order)
    ms;
  List.rev_map (fun k -> !(Hashtbl.find groups k)) !order

let run ?(metrics = Urm_obs.Metrics.global) (ctx : Ctx.t) q ms =
  let m = Urm_obs.Metrics.scope metrics "e-basic" in
  let ctrs = Eval.fresh_counters ~metrics:m () in
  let distinct, rewrite =
    Urm_util.Timer.time (fun () -> distinct_source_queries ctx q ms)
  in
  let sw_evaluate = Urm_util.Timer.Stopwatch.create () in
  let sw_aggregate = Urm_util.Timer.Stopwatch.create () in
  let acc = Answer.create (Reformulate.output_header q) in
  List.iter
    (fun (sq, p) ->
      Urm_util.Timer.Stopwatch.start sw_evaluate;
      let rel =
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Eval.eval ~ctrs ctx.catalog e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None
      in
      Urm_util.Timer.Stopwatch.stop sw_evaluate;
      Urm_util.Timer.Stopwatch.start sw_aggregate;
      let factor = Reformulate.factor ctx.catalog sq in
      (match rel with
      | Some r -> Reformulate.answers_into acc sq ~factor r p
      | None -> Reformulate.null_answer_into acc sq ~factor p);
      Urm_util.Timer.Stopwatch.stop sw_aggregate)
    distinct;
  let report =
    {
      Report.answer = acc;
      timings =
        {
          Report.rewrite;
          plan = 0.;
          evaluate = Urm_util.Timer.Stopwatch.elapsed sw_evaluate;
          aggregate = Urm_util.Timer.Stopwatch.elapsed sw_aggregate;
        };
      source_operators = ctrs.Eval.operators;
      rows_produced = ctrs.Eval.rows_produced;
      groups = List.length distinct;
    }
  in
  Report.record_metrics m report;
  report
