open Urm_relalg

(* The factorized multi-mapping executor: one vectorized pass over the
   e-unit DAG for all h mappings.

   The paper's sharing algorithms all reduce to the same shape — a list of
   distinct e-units, each owed the probability mass of the mappings whose
   reformulation contains it.  This executor compiles each distinct e-unit
   to one plan, executes it exactly once, and streams its result batches
   into the answer with the unit's whole mapping-mass weight vector folded
   into every bucket in a single addition ([Answer.add_vec_ref]), instead
   of re-running the plan h times.

   Bit-identity with the interpreted per-unit oracle: units are processed
   in first-seen order (the order [Ebasic.distinct_source_queries]
   produces), each bucket receives exactly one addition of the vector's
   left-to-right sum per unit (the same float the oracle's incremental
   per-mapping sum yields), and units sharing a reformulation key replay
   the first occurrence's bucket cells in unit order — so per-bucket
   addition order matches the sequential interpreted run exactly. *)

type result = {
  answer : Answer.t;
  units : int;  (* e-units processed (incl. unsatisfiable/trivial) *)
  executed : int;  (* plans actually run *)
  replayed : int;  (* units served from the replay memo *)
  matched : int;  (* executed units whose result stream matched a prior unit *)
  shares : int;  (* DAG subexpressions materialised once *)
  plan_time : float;
  evaluate_time : float;
}

(* Like [Ebasic.distinct_source_queries] but keeping the per-mapping
   probability vector instead of collapsing it: the vector (in ascending
   mapping order) is the unit's row in the mapping→e-unit incidence
   matrix. *)
let weighted_units (ctx : Ctx.t) q ms =
  let groups = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun m ->
      let sq = Reformulate.source_query ctx.target q m in
      let k = Reformulate.key sq in
      match Hashtbl.find_opt groups k with
      | Some cell -> cell := (fst !cell, m.Mapping.prob :: snd !cell)
      | None ->
        Hashtbl.add groups k (ref (sq, [ m.Mapping.prob ]));
        order := k :: !order)
    ms;
  List.rev_map
    (fun k ->
      let sq, ws = !(Hashtbl.find groups k) in
      (sq, Array.of_list (List.rev ws)))
    !order

(* One unit per mapping, degenerate weight vector — the q-sharing path,
   where each representative already carries its partition's mass and the
   per-representative accumulation order must be preserved. *)
let singleton_units (ctx : Ctx.t) q ms =
  List.map
    (fun m ->
      (Reformulate.source_query ctx.target q m, [| m.Mapping.prob |]))
    ms

let eval ~ctrs ?(cse = false) (ctx : Ctx.t) q units =
  let acc = Answer.create (Reformulate.output_header q) in
  (* Distinct evaluable bodies, first occurrence per reformulation key —
     the nodes of the e-unit DAG. *)
  let seen = Hashtbl.create 16 in
  let distinct_bodies =
    List.filter_map
      (fun (sq, _) ->
        match sq.Reformulate.body with
        | Reformulate.Expr e ->
          let k = Reformulate.key sq in
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some (k, e)
          end
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None)
      units
  in
  let sw_eval = Urm_util.Timer.Stopwatch.create () in
  let timed sw f =
    Urm_util.Timer.Stopwatch.start sw;
    Fun.protect ~finally:(fun () -> Urm_util.Timer.Stopwatch.stop sw) f
  in
  (* Cross-unit common-subexpression elimination (e-MQO only): a cheap
     counting pass over the optimised bodies, then one materialisation per
     chosen share.  e-basic keeps [cse = false] — its sharing is exactly
     the per-unit dedup above. *)
  let prepared, shares, plan_time =
    if not cse then (distinct_bodies, 0, 0.)
    else begin
      let opt_bodies =
        List.map (fun (k, e) -> (k, Eval.optimize ctx.catalog e)) distinct_bodies
      in
      let dag, plan_time =
        Urm_util.Timer.time (fun () ->
            Urm_mqo.Dag.build ctx.catalog (List.map snd opt_bodies))
      in
      let table : (string, Relation.t) Hashtbl.t = Hashtbl.create 16 in
      let lookup fp = Hashtbl.find_opt table fp in
      timed sw_eval (fun () ->
          List.iter
            (fun s ->
              let r = Ctx.eval ~ctrs ctx (Urm_mqo.Dag.substitute lookup s) in
              Hashtbl.replace table (Algebra.canonical_fingerprint s) r)
            (Urm_mqo.Dag.shares dag));
      let prepared =
        List.map2
          (fun (k, raw) (_, opt) ->
            let sub = Urm_mqo.Dag.substitute lookup opt in
            (* Units untouched by sharing keep their raw body, so their
               plans stay in the cross-algorithm plan cache; substituted
               bodies embed Mat leaves and compile one-shot. *)
            if Algebra.contains_mat sub then (k, sub) else (k, raw))
          distinct_bodies opt_bodies
      in
      (prepared, Urm_mqo.Dag.chosen dag, plan_time)
    end
  in
  let prepared_tbl = Hashtbl.create 16 in
  List.iter (fun (k, e) -> Hashtbl.replace prepared_tbl k e) prepared;
  (* The single pass: ascending unit order, executing each distinct e-unit
     once and replaying repeated reformulation keys, so per-bucket addition
     order is the sequential oracle's. *)
  let memo : (string, Reformulate.recording) Hashtbl.t = Hashtbl.create 16 in
  (* Recordings of executed units with genuinely new result streams, most
     recent first — reversed into execution order when offered as stream
     candidates, so an ambiguous match deterministically prefers the
     earliest unit. *)
  let recordings = ref [] in
  let executed = ref 0 and replayed = ref 0 and matched = ref 0 in
  timed sw_eval (fun () ->
      List.iter
        (fun ((sq, weights) : Reformulate.t * float array) ->
          let mass = Answer.vec_mass weights in
          match sq.Reformulate.body with
          | Reformulate.Unsatisfiable | Reformulate.Trivial ->
            Reformulate.null_answer_into acc sq
              ~factor:(Reformulate.factor ctx.catalog sq)
              mass
          | Reformulate.Expr _ -> (
            let k = Reformulate.key sq in
            match Hashtbl.find_opt memo k with
            | Some r ->
              incr replayed;
              Reformulate.replay_answers_into acc (Reformulate.replay_of r)
                mass
            | None ->
              incr executed;
              let e = Hashtbl.find prepared_tbl k in
              let factor = Reformulate.factor ctx.catalog sq in
              let stream = Ctx.eval_wbatches ~ctrs ctx e ~weights in
              let r, stream_matched =
                Reformulate.record_weighted_answers_into acc sq ~factor
                  stream ~weights ~candidates:(List.rev !recordings)
              in
              if stream_matched then incr matched
              else recordings := r :: !recordings;
              Hashtbl.add memo k r))
        units);
  {
    answer = acc;
    units = List.length units;
    executed = !executed;
    replayed = !replayed;
    matched = !matched;
    shares;
    plan_time;
    evaluate_time = Urm_util.Timer.Stopwatch.elapsed sw_eval;
  }
