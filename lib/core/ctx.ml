type t = {
  catalog : Urm_relalg.Catalog.t;
  source : Urm_relalg.Schema.t;
  target : Urm_relalg.Schema.t;
  engine : Urm_relalg.Compile.engine;
  compile_env : Urm_relalg.Compile.env;
  plans : Urm_relalg.Plan_cache.t;
}

let make ?(engine = Urm_relalg.Compile.Vectorized) ~catalog ~source ~target () =
  {
    catalog;
    source;
    target;
    engine;
    compile_env = Urm_relalg.Compile.create_env catalog;
    plans = Urm_relalg.Plan_cache.create ();
  }

let engine t = t.engine

(* Rebinding the catalog keeps the compile env and plan cache: plans
   resolve [Base] leaves against the catalog passed at execution time, and
   compiled column layouts only depend on schemas, which copy-on-write
   derivation preserves.  Cardinality statistics consulted at compile time
   keep describing the original instance — join orders chosen then remain
   valid (if increasingly approximate) as the data drifts. *)
let with_catalog t catalog = { t with catalog }

let plan_of t e =
  let compile () = Urm_relalg.Compile.compile t.compile_env e in
  (* Mat fingerprints name ephemeral relation ids — one-shot expressions
     (o-sharing e-units, e-MQO rewrites) compile directly, uncached.
     Cacheable expressions key on the canonical fingerprint: conjunct
     arrangement does not change the result rows, so structurally identical
     e-units arriving from different mappings with permuted predicates hit
     the same compiled plan. *)
  if Urm_relalg.Algebra.contains_mat e then compile ()
  else
    Urm_relalg.Plan_cache.find_or_add t.plans
      (Urm_relalg.Algebra.canonical_fingerprint e)
      compile

let eval ?ctrs t e =
  match t.engine with
  | Urm_relalg.Compile.Interpreted -> Urm_relalg.Eval.eval ?ctrs t.catalog e
  | Urm_relalg.Compile.Compiled ->
    Urm_relalg.Plan.execute ?ctrs t.catalog (plan_of t e)
  | Urm_relalg.Compile.Vectorized ->
    Urm_relalg.Plan.execute_batches ?ctrs t.catalog (plan_of t e)

(* [eval_stream ?ctrs t e] the result header plus a driver that streams
   the result rows: compiled plans push rows straight out of the pipeline
   (no materialised relation); the interpreted engine evaluates eagerly
   here and the driver replays the relation. *)
let eval_stream ?ctrs t e =
  match t.engine with
  | Urm_relalg.Compile.Interpreted ->
    let r = Urm_relalg.Eval.eval ?ctrs t.catalog e in
    (Urm_relalg.Relation.cols r, fun f -> Urm_relalg.Relation.iter f r)
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    let plan = plan_of t e in
    ( Urm_relalg.Plan.header plan,
      fun f -> Urm_relalg.Plan.iter_rows ?ctrs t.catalog plan ~f )

(* [eval_batches ?ctrs t e] like [eval_stream] but over {!Column.batch}es:
   compiled plans stream their batch pipeline (the vectorized fused path);
   the interpreted engine evaluates eagerly and replays the relation's
   memoised columns chunk-wise. *)
let eval_batches ?ctrs t e =
  match t.engine with
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    let plan = plan_of t e in
    ( Urm_relalg.Plan.header plan,
      fun f -> Urm_relalg.Plan.iter_batches ?ctrs t.catalog plan ~f )
  | Urm_relalg.Compile.Interpreted ->
    let r = Urm_relalg.Eval.eval ?ctrs t.catalog e in
    ( Urm_relalg.Relation.cols r,
      fun f ->
        let n = Urm_relalg.Relation.cardinality r in
        if n > 0 then begin
          let vecs = Urm_relalg.Relation.columns r in
          Urm_relalg.Column.iter_chunks n ~f:(fun sel len ->
              f { Urm_relalg.Column.vecs; sel; n = len })
        end )

(* [eval_wbatches ?ctrs t e ~weights] the weight-vector channel: like
   [eval_batches] but every batch is wrapped in {!Column.weighted} carrying
   the producing e-unit's mapping-mass vector, so the factorized executor
   runs the plan once for all the mappings the vector describes.  The
   interpreted fallback wraps the eager batch replay. *)
let eval_wbatches ?ctrs t e ~weights =
  match t.engine with
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized ->
    let plan = plan_of t e in
    ( Urm_relalg.Plan.header plan,
      fun f -> Urm_relalg.Plan.iter_wbatches ?ctrs t.catalog plan ~weights ~f )
  | Urm_relalg.Compile.Interpreted ->
    let header, bdrive = eval_batches ?ctrs t e in
    (header, fun f -> bdrive (fun batch -> f { Urm_relalg.Column.batch; weights }))

(* Emptiness without materialising: products short-circuit structurally
   (same shapes as the interpreter's [nonempty]); everything else asks the
   compiled plan, which stops at the first produced row. *)
let rec nonempty ?ctrs t e =
  match t.engine with
  | Urm_relalg.Compile.Interpreted -> Urm_relalg.Eval.nonempty ?ctrs t.catalog e
  | Urm_relalg.Compile.Compiled | Urm_relalg.Compile.Vectorized -> (
    match e with
    | Urm_relalg.Algebra.Product (a, b) -> nonempty ?ctrs t a && nonempty ?ctrs t b
    | Urm_relalg.Algebra.Rename (_, inner) -> nonempty ?ctrs t inner
    | Urm_relalg.Algebra.Base n ->
      not (Urm_relalg.Relation.is_empty (Urm_relalg.Catalog.find t.catalog n))
    | Urm_relalg.Algebra.Mat r -> not (Urm_relalg.Relation.is_empty r)
    | _ -> Urm_relalg.Plan.nonempty ?ctrs t.catalog (plan_of t e))

let plan_stats t = Urm_relalg.Plan_cache.stats t.plans
