open Urm_relalg

(* Phases are interleaved per mapping (results are not retained across
   mappings — with large h the h materialised answers would not fit in
   memory) but attributed to the paper's three phases with stopwatches:
   rewrite, evaluate, aggregate (Fig. 10(a)). *)
let run_scoped ~metrics (ctx : Ctx.t) q ms =
  let ctrs = Eval.fresh_counters ~metrics () in
  let sw_rewrite = Urm_util.Timer.Stopwatch.create () in
  let sw_evaluate = Urm_util.Timer.Stopwatch.create () in
  let sw_aggregate = Urm_util.Timer.Stopwatch.create () in
  let acc = Answer.create (Reformulate.output_header q) in
  List.iter
    (fun m ->
      Urm_util.Timer.Stopwatch.start sw_rewrite;
      let sq = Reformulate.source_query ctx.target q m in
      Urm_util.Timer.Stopwatch.stop sw_rewrite;
      let p = m.Mapping.prob in
      Urm_util.Timer.Stopwatch.start sw_evaluate;
      let rel =
        match sq.Reformulate.body with
        | Reformulate.Expr e -> Some (Eval.eval ~ctrs ctx.catalog e)
        | Reformulate.Unsatisfiable | Reformulate.Trivial -> None
      in
      Urm_util.Timer.Stopwatch.stop sw_evaluate;
      Urm_util.Timer.Stopwatch.start sw_aggregate;
      let factor = Reformulate.factor ctx.catalog sq in
      (match rel with
      | Some r -> Reformulate.answers_into acc sq ~factor r p
      | None -> Reformulate.null_answer_into acc sq ~factor p);
      Urm_util.Timer.Stopwatch.stop sw_aggregate)
    ms;
  {
    Report.answer = acc;
    timings =
      {
        Report.rewrite = Urm_util.Timer.Stopwatch.elapsed sw_rewrite;
        plan = 0.;
        evaluate = Urm_util.Timer.Stopwatch.elapsed sw_evaluate;
        aggregate = Urm_util.Timer.Stopwatch.elapsed sw_aggregate;
      };
    source_operators = ctrs.Eval.operators;
    rows_produced = ctrs.Eval.rows_produced;
    groups = List.length ms;
  }

let run ?(metrics = Urm_obs.Metrics.global) ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "basic" in
  let r = run_scoped ~metrics:m ctx q ms in
  Report.record_metrics m r;
  r
