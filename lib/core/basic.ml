open Urm_relalg

(* Phases are interleaved per mapping (results are not retained across
   mappings — with large h the h materialised answers would not fit in
   memory) but attributed to the paper's three phases with stopwatches:
   rewrite, evaluate, aggregate (Fig. 10(a)). *)

let timed sw f =
  match sw with
  | None -> f ()
  | Some sw ->
    Urm_util.Timer.Stopwatch.start sw;
    Fun.protect ~finally:(fun () -> Urm_util.Timer.Stopwatch.stop sw) f

(* One mapping's rewrite→evaluate→aggregate step, shared by the sequential
   loop (which attributes the phases to stopwatches) and the parallel
   driver (which times whole chunks instead and passes no stopwatches).

   [memo] (vectorized engine only) caches, per accumulation run, the
   answer-bucket cells each distinct reformulation key touched: mappings
   sharing a key produce identical target tuples, so later mappings replay
   the recorded cells with their own probability instead of re-executing
   the plan — same buckets, same per-bucket addition order, bit-identical
   to evaluating every mapping (see {!Reformulate.replay_answers_into}). *)
let eval_mapping ?rewrite_sw ?evaluate_sw ?aggregate_sw ?memo ~ctrs (ctx : Ctx.t)
    q acc m =
  let sq = timed rewrite_sw (fun () -> Reformulate.source_query ctx.target q m) in
  let p = m.Mapping.prob in
  match sq.Reformulate.body with
  | Reformulate.Expr e when Ctx.engine ctx = Urm_relalg.Compile.Vectorized ->
    (* The vectorized engine fuses evaluate and aggregate over batches:
       plan batches stream straight into the accumulator.  Charged to the
       evaluate phase like the compiled fused path below. *)
    let factor =
      timed aggregate_sw (fun () -> Reformulate.factor ctx.catalog sq)
    in
    timed evaluate_sw (fun () ->
        match memo with
        | None ->
          Reformulate.stream_batch_answers_into acc sq ~factor
            (Ctx.eval_batches ~ctrs ctx e) p
        | Some tbl -> (
          let key = Reformulate.key sq in
          match Hashtbl.find_opt tbl key with
          | Some r -> Reformulate.replay_answers_into acc r p
          | None ->
            Hashtbl.add tbl key
              (Reformulate.record_batch_answers_into acc sq ~factor
                 (Ctx.eval_batches ~ctrs ctx e) p)))
  | Reformulate.Expr e when Ctx.engine ctx = Urm_relalg.Compile.Compiled ->
    (* The compiled engine fuses evaluate and aggregate: plan rows stream
       straight into the accumulator, never materialising the per-mapping
       result.  The fused pass is charged to the evaluate phase (it is
       dominated by plan execution); only the multiplicity factor remains
       under aggregate. *)
    let factor =
      timed aggregate_sw (fun () -> Reformulate.factor ctx.catalog sq)
    in
    timed evaluate_sw (fun () ->
        Reformulate.stream_answers_into acc sq ~factor
          (Ctx.eval_stream ~ctrs ctx e) p)
  | body ->
    let rel =
      timed evaluate_sw (fun () ->
          match body with
          | Reformulate.Expr e -> Some (Ctx.eval ~ctrs ctx e)
          | Reformulate.Unsatisfiable | Reformulate.Trivial -> None)
    in
    timed aggregate_sw (fun () ->
        let factor = Reformulate.factor ctx.catalog sq in
        match rel with
        | Some r -> Reformulate.answers_into acc sq ~factor r p
        | None -> Reformulate.null_answer_into acc sq ~factor p)

(* One memo per accumulation run: recorded cells point into the run's
   accumulator, so the table must never outlive [acc]. *)
let memo_for ctx =
  if Ctx.engine ctx = Urm_relalg.Compile.Vectorized then Some (Hashtbl.create 16)
  else None

let accumulate ~ctrs ctx q acc ms =
  let memo = memo_for ctx in
  List.iter (eval_mapping ?memo ~ctrs ctx q acc) ms

let run_scoped ~metrics (ctx : Ctx.t) q ms =
  let ctrs = Eval.fresh_counters ~metrics () in
  let sw_rewrite = Urm_util.Timer.Stopwatch.create () in
  let sw_evaluate = Urm_util.Timer.Stopwatch.create () in
  let sw_aggregate = Urm_util.Timer.Stopwatch.create () in
  let acc = Answer.create (Reformulate.output_header q) in
  let memo = memo_for ctx in
  List.iter
    (eval_mapping ~rewrite_sw:sw_rewrite ~evaluate_sw:sw_evaluate
       ~aggregate_sw:sw_aggregate ?memo ~ctrs ctx q acc)
    ms;
  {
    Report.answer = acc;
    intervals = None;
    timings =
      {
        Report.rewrite = Urm_util.Timer.Stopwatch.elapsed sw_rewrite;
        plan = 0.;
        evaluate = Urm_util.Timer.Stopwatch.elapsed sw_evaluate;
        aggregate = Urm_util.Timer.Stopwatch.elapsed sw_aggregate;
      };
    source_operators = ctrs.Eval.operators;
    rows_produced = ctrs.Eval.rows_produced;
    groups = List.length ms;
    engine = Urm_relalg.Compile.engine_name (Ctx.engine ctx);
  }

let run ?(metrics = Urm_obs.Metrics.global) ctx q ms =
  let m = Urm_obs.Metrics.scope metrics "basic" in
  let r = run_scoped ~metrics:m ctx q ms in
  Report.record_metrics m r;
  r
