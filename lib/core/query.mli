(** Target queries in canonical select–join–product–project–aggregate form.

    Every query of the paper's workload (Table III) is a set of relation
    aliases (self-joins use distinct aliases over the same target relation),
    equality selections, equi-join predicates, an optional projection and an
    optional aggregate.  Queries without an explicit projection are
    normalised to project onto their referenced attributes (DESIGN.md,
    semantics decision 1). *)

(** An attribute of a specific alias, e.g. [{alias = "PO1"; attr = "orderNum"}]. *)
type tattr = { alias : string; attr : string }

val pp_tattr : Format.formatter -> tattr -> unit
val tattr_to_string : tattr -> string

(** [at alias attr] constructs a {!tattr}. *)
val at : string -> string -> tattr

type agg = Count | Sum of tattr

type t = private {
  name : string;
  aliases : (string * string) list;  (** alias → target relation name *)
  selections : (tattr * Urm_relalg.Value.t) list;
  joins : (tattr * tattr) list;
  projection : tattr list option;
  aggregate : agg option;
  group_by : tattr list;  (** grouping attributes; only with [aggregate] *)
}

(** [make ~name ~target ~aliases ?selections ?joins ?projection ?aggregate ()]
    validates every alias against [target] and every attribute against its
    alias's relation.  Raises [Invalid_argument] on unknown aliases,
    relations or attributes, and when both [projection] and [aggregate] are
    supplied. *)
val make :
  name:string ->
  target:Urm_relalg.Schema.t ->
  aliases:(string * string) list ->
  ?selections:(tattr * Urm_relalg.Value.t) list ->
  ?joins:(tattr * tattr) list ->
  ?projection:tattr list ->
  ?aggregate:agg ->
  ?group_by:tattr list ->
  unit ->
  t

(** Relation of an alias.  Raises [Not_found] for unknown aliases. *)
val relation_of : t -> string -> string

(** [qualified q ta] the target-schema attribute name [ta] resolves to,
    e.g. [at "PO1" "orderNum"] → ["PO.orderNum"]; this is the key used
    against mapping correspondences. *)
val qualified : t -> tattr -> string

(** Attributes referenced by operators of the query (selections, joins,
    projection, aggregate), first-use order, no duplicates. *)
val referenced_attrs : t -> tattr list

(** Referenced attributes of one alias. *)
val referenced_of_alias : t -> string -> tattr list

(** Output attributes: the explicit projection, or all referenced
    attributes when none; for aggregate queries, the grouping attributes
    (the aggregate value itself is appended by the reformulation). *)
val output_attrs : t -> tattr list

(** [needed_attrs target q alias] attributes whose correspondences determine
    the alias's source cover: its referenced attributes, or {e all} its
    relation's attributes when the alias is referenced by no operator. *)
val needed_attrs : Urm_relalg.Schema.t -> t -> string -> tattr list

(** Partition attributes (qualified by alias, flattened across aliases):
    what the q-sharing partition tree keys on.  Mappings agreeing on all of
    these produce the same source query. *)
val partition_attrs : Urm_relalg.Schema.t -> t -> tattr list

(** Schedulable operators for o-sharing. *)
type op =
  | Op_select of int  (** index into [selections] *)
  | Op_join of int  (** index into [joins] *)
  | Op_product of string * string  (** connect two alias components *)
  | Op_output  (** final projection / aggregation; always last *)

val pp_op : t -> Format.formatter -> op -> unit

(** All operators of the query: every selection, every join, one product per
    component connection (components induced by the join graph), and the
    output operator. *)
val operators : t -> op list

(** Number of "query operators" in the paper's sense (selections + joins +
    products + aggregate/projection), for reporting. *)
val operator_count : t -> int

(** Canonical text of the query body: independent of the query's [name] and
    of the order in which aliases, selections and join predicates were
    written (join sides are oriented lexicographically), so two spellings
    of the same query — e.g. a named workload query and its SQL rendering —
    canonicalise identically.  The service answer cache keys on this. *)
val canonical : t -> string

(** Stable 64-bit digest of {!canonical} as 16 hex digits. *)
val fingerprint : t -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
