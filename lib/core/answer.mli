(** Probabilistic query answers: a set of (tuple, probability) pairs over
    the target output attributes, plus the probability mass of the empty
    answer θ (paper §V, Case 2).

    Tuples are over the target schema — each position is the value of one
    output target attribute, [Null] where the mapping had no correspondence
    — so answers produced under different mappings aggregate correctly
    (duplicates sum their probabilities). *)

type t

(** [create output] an empty accumulator with the given output labels. *)
val create : string list -> t

val output : t -> string list

(** [add t tuple p] accumulates probability [p] onto [tuple].
    Requires arity to match [output]. *)
val add : t -> Urm_relalg.Value.t array -> float -> unit

(** [add_null t p] accumulates probability onto θ. *)
val add_null : t -> float -> unit

(** [vec_mass w] the collapsed probability mass of a mapping weight
    vector, summed left to right — the same accumulation order as the
    per-mapping incremental sum, so collapsing is bit-identical to adding
    each mapping's probability in ascending mapping order. *)
val vec_mass : float array -> float

(** [add_vec t tuple w] the bulk weighted-accumulate entry point of the
    factorized executor: folds the whole weight vector [w] into [tuple]'s
    bucket with a single addition of {!vec_mass}[ w] — one call replaces
    the h per-mapping {!add}s of a non-factorized evaluation. *)
val add_vec : t -> Urm_relalg.Value.t array -> float array -> unit

(** [add_id t tuple p] like {!add}, but returns the tuple's bucket id so
    further probability can be replayed with {!bump} — the engines'
    per-reformulation answer memo.  Ids are dense insertion indices, stay
    valid for the answer's lifetime, and are never reassigned (not even by
    {!compact}). *)
val add_id : t -> Urm_relalg.Value.t array -> float -> int

(** [bump t id p] accumulates [p] onto the bucket behind [id] (from
    {!add_id}) — an unboxed array update, the replay fast path. *)
val bump : t -> int -> float -> unit

(** [reserve t n] pre-sizes the bucket table for [n] further insertions, so
    a bulk insert pass of known size pays one redistribution instead of
    log₂ n doublings. *)
val reserve : t -> int -> unit

(** [tuple_equal a b] bucket-identity equality of answer tuples — the
    exact equivalence [add] uses to coalesce buckets (so nan = nan and
    -0. = 0., as under polymorphic comparison). *)
val tuple_equal : Urm_relalg.Value.t array -> Urm_relalg.Value.t array -> bool

(** [merge_into t other] sums [other]'s tuple probabilities and θ mass into
    [t].  Merging partial answers built over disjoint contiguous mapping
    ranges in ascending range order reproduces the sequential accumulation
    order exactly, so parallel evaluation is bit-identical to sequential
    (see DESIGN.md "Parallel evaluation").  Raises [Invalid_argument] when
    the outputs differ. *)
val merge_into : t -> t -> unit

val null_prob : t -> float

(** [compact ?eps t] removes buckets whose accumulated probability is within
    [eps] (default {!Prob.eps}) of zero and clamps an eps-negative θ back to
    0.  Incremental maintenance calls this after every mutation batch: a
    retracted tuple's bucket holds only float cancellation residue, and
    dropping it restores the bucket census a fresh evaluation would
    produce, so {!equal} keeps holding under repeated add/subtract
    cycles. *)
val compact : ?eps:float -> t -> unit

(** Distinct tuples with their probabilities, sorted by probability
    descending (ties broken by tuple order, deterministically). *)
val to_list : t -> (Urm_relalg.Value.t array * float) list

(** [top_k t k] the k most probable tuples (θ excluded). *)
val top_k : t -> int -> (Urm_relalg.Value.t array * float) list

(** Number of distinct tuples (θ excluded). *)
val size : t -> int

(** Total probability mass including θ. *)
val total_prob : t -> float

(** [prob_of t tuple] the accumulated probability of [tuple] ([0.] when
    absent). *)
val prob_of : t -> Urm_relalg.Value.t array -> float

(** [equal ?eps a b] same outputs, same θ mass, and a one-to-one matching
    of [a]'s tuples onto [b]'s buckets (exact keys first, then approximate
    — float aggregate keys may differ across summation orders) with
    probabilities within [eps] (default {!Prob.eps}).  Each bucket of [b]
    is consumed by at most one tuple of [a], so the check is symmetric. *)
val equal : ?eps:float -> t -> t -> bool

(** [{"output": […], "answers": [{"tuple": […], "prob": p}, …],
    "null_prob": θ}] in {!to_list} order — deterministic, so equal answers
    render to byte-identical text. *)
val to_json : t -> Urm_util.Json.t

val pp : Format.formatter -> t -> unit
