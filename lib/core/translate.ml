open Urm_relalg

let relation (ctx : Ctx.t) m target_rel_name =
  let rel = Schema.find_rel ctx.target target_rel_name in
  let attrs = List.map (fun a -> a.Schema.aname) rel.Schema.attrs in
  let mapped =
    List.filter_map
      (fun a ->
        Option.map
          (fun src -> (a, src))
          (Mapping.source_of m (Schema.qualify target_rel_name a)))
      attrs
  in
  if mapped = [] then Relation.empty ~cols:attrs
  else begin
    (* Cover product with alias-style renames, exactly as reformulation
       instantiates a target alias. *)
    let alias = target_rel_name in
    let covers =
      List.sort_uniq String.compare
        (List.map (fun (_, src) -> fst (Schema.split_qualified src)) mapped)
    in
    let from_expr =
      match
        List.map
          (fun r -> Algebra.Rename (alias ^ "@" ^ r, Algebra.Base r))
          covers
      with
      | [] -> assert false
      | first :: rest ->
        List.fold_left (fun acc p -> Algebra.Product (acc, p)) first rest
    in
    let col_of src = Reformulate.column_for ~alias ~source_attr:src in
    let proj_cols =
      List.sort_uniq String.compare (List.map (fun (_, src) -> col_of src) mapped)
    in
    let result =
      Ctx.eval ctx
        (Algebra.Distinct (Algebra.Project (proj_cols, from_expr)))
    in
    let getters =
      List.map
        (fun a ->
          match List.assoc_opt a mapped with
          | Some src -> Some (Relation.col_pos result (col_of src))
          | None -> None)
        attrs
    in
    let rows =
      Relation.fold
        (fun acc row ->
          Array.of_list
            (List.map (function Some i -> row.(i) | None -> Value.Null) getters)
          :: acc)
        [] result
    in
    Relation.create ~cols:attrs (List.rev rows)
  end

let catalog (ctx : Ctx.t) m =
  let out = Catalog.create () in
  List.iter
    (fun (rel : Schema.rel) ->
      Catalog.add out rel.Schema.rname (relation ctx m rel.Schema.rname))
    ctx.target.Schema.rels;
  out

let expected_cardinalities (ctx : Ctx.t) ms =
  List.map
    (fun (rel : Schema.rel) ->
      let expected =
        List.fold_left
          (fun acc m ->
            acc
            +. (m.Mapping.prob
               *. float_of_int (Relation.cardinality (relation ctx m rel.Schema.rname))))
          0. ms
      in
      (rel.Schema.rname, expected))
    ctx.target.Schema.rels
