type t =
  | Basic
  | Ebasic
  | Emqo
  | Qsharing
  | Osharing of Eunit.strategy
  | Topk of int * Eunit.strategy

let name = function
  | Basic -> "basic"
  | Ebasic -> "e-basic"
  | Emqo -> "e-MQO"
  | Qsharing -> "q-sharing"
  | Osharing s -> "o-sharing/" ^ Eunit.strategy_name s
  | Topk (k, s) -> Printf.sprintf "top-%d/%s" k (Eunit.strategy_name s)

let exact =
  [ Basic; Ebasic; Emqo; Qsharing; Osharing Eunit.Random; Osharing Eunit.Snf;
    Osharing Eunit.Sef ]

let run ?metrics t ctx q ms =
  match t with
  | Basic -> Basic.run ?metrics ctx q ms
  | Ebasic -> Ebasic.run ?metrics ctx q ms
  | Emqo -> Emqo.run ?metrics ctx q ms
  | Qsharing -> Qsharing.run ?metrics ctx q ms
  | Osharing s -> Osharing.run ~strategy:s ?metrics ctx q ms
  | Topk (k, s) -> (Topk.run ~strategy:s ?metrics ~k ctx q ms).Topk.report
