(** Query reformulation: translating a target query into a source query
    through one mapping (the paper's §III / §VI-B, whole-query form).

    Column naming convention for source relations instantiated for a target
    alias: source relation [r] loaded for alias [A] is renamed with prefix
    ["A@r"], so its column [c] appears as ["A@r#c"].  Distinct aliases over
    the same target relation (self-joins) therefore never clash.

    Aliases referenced by no operator are not materialised: under the
    target-tuple answer semantics they contribute only row multiplicity,
    which matters solely for aggregates and is accounted for by
    [factor_rels] — the unfiltered source relations whose cardinalities
    multiply the aggregate value (DESIGN.md, semantics decision 1). *)

type body =
  | Unsatisfiable
      (** a selection/join/SUM attribute has no correspondence: the answer
          is θ (or COUNT = 0 / SUM = Null) *)
  | Trivial
      (** nothing needs evaluating: no referenced alias contributes a piece;
          the answer is θ for plain queries, the cardinality factor for
          COUNT *)
  | Expr of Urm_relalg.Algebra.t

type t = {
  body : body;
  outputs : (string * string option) list;
      (** (output label, source column); [None] = the target attribute is
          unmapped and evaluates to [Null].  For grouped aggregates the
          grouping attributes come first and the aggregate label last. *)
  aggregate : Query.agg option;
  grouped : bool;  (** the query has GROUP BY attributes *)
  factor_rels : string list;
      (** source relations of unreferenced aliases' covers (with
          multiplicity); their cardinality product scales aggregate
          values *)
}

(** Output labels in order (the target-side header of the answer). *)
val output_labels : t -> string list

(** [source_query target q m] reformulates [q] through mapping [m]. *)
val source_query : Urm_relalg.Schema.t -> Query.t -> Mapping.t -> t

(** [key sq] identity of the source query: two mappings with equal keys
    produce identical answers.  This is what e-basic deduplicates on. *)
val key : t -> string

(** [factor cat sq] the aggregate multiplicity factor: the product of the
    [factor_rels] cardinalities in the source instance ([1] when none). *)
val factor : Urm_relalg.Catalog.t -> t -> int

(** [column_for ~alias ~source_attr] the column name an instantiated source
    attribute gets (["A@rel#col"]). *)
val column_for : alias:string -> source_attr:string -> string

(** [answers_into acc sq ~factor rel p] folds the evaluation result [rel] of
    [sq] into accumulator [acc] with probability [p]: builds target tuples
    (Null for unmapped outputs), removes duplicates (set semantics per
    mapping), θ for an empty plain result, aggregate values scaled by
    [factor]. *)
val answers_into : Answer.t -> t -> factor:int -> Urm_relalg.Relation.t -> float -> unit

(** [stream_answers_into acc sq ~factor (header, drive) p] the streaming
    form of {!answers_into} used by the compiled engine's fused path:
    [drive f] must invoke [f] once per result row of [sq]'s expression
    (columns [header], see [Urm.Ctx.eval_stream]); target tuples fold into
    [acc] as rows stream past, without a materialised relation. *)
val stream_answers_into :
  Answer.t ->
  t ->
  factor:int ->
  string list * ((Urm_relalg.Value.t array -> unit) -> unit) ->
  float ->
  unit

(** [stream_batch_answers_into acc sq ~factor (header, bdrive) p] the
    vectorized form of {!stream_answers_into}: [bdrive f] must invoke [f]
    once per result batch (see [Urm.Ctx.eval_batches]).  Emits the same
    tuples in the same order as the row form, so accumulated probabilities
    are bit-identical across engines. *)
val stream_batch_answers_into :
  Answer.t ->
  t ->
  factor:int ->
  string list * ((Urm_relalg.Column.batch -> unit) -> unit) ->
  float ->
  unit

(** A recorded accumulation (see {!record_batch_answers_into}). *)
type replay

(** [record_batch_answers_into acc sq ~factor stream p] accumulates like
    {!stream_batch_answers_into} and records the touched answer-bucket
    cells.  Mappings with equal {!key}s produce identical target tuples,
    so the recording stands in for re-evaluating the shared shape. *)
val record_batch_answers_into :
  Answer.t ->
  t ->
  factor:int ->
  string list * ((Urm_relalg.Column.batch -> unit) -> unit) ->
  float ->
  replay

(** A {!replay} plus the emitted target-tuple stream, in emission order —
    the factorized executor's cross-unit result-stream memo. *)
type recording

(** The {!replay} of a recording, for {!replay_answers_into}. *)
val replay_of : recording -> replay

(** [record_weighted_answers_into acc sq ~factor wstream ~weights
    ~candidates] the factorized executor's accumulate: streams [sq]'s
    result over the weight-vector channel ({!Urm.Ctx.eval_wbatches}) and
    folds the e-unit's whole collapsed mapping mass into each tuple's
    bucket — one plan execution for all the mappings in [weights].  The
    emitted stream is simultaneously compared against [candidates]
    (recordings of previously executed units, in execution order); on an
    exact stream match the candidate's bucket ids are replayed instead of
    re-probing the answer table, and the candidate's recording is shared.
    Returns the recording and whether it was served by a stream match. *)
val record_weighted_answers_into :
  Answer.t ->
  t ->
  factor:int ->
  string list * ((Urm_relalg.Column.weighted -> unit) -> unit) ->
  weights:float array ->
  candidates:recording list ->
  recording * bool

(** [replay_answers_into acc r p] re-applies a recording with probability
    [p]: the same buckets receive the same additions, in the same order, as
    a fresh evaluation would produce — bit-identical, without evaluating.
    [acc] must be the answer [r] was recorded against. *)
val replay_answers_into : Answer.t -> replay -> float -> unit

(** [null_answer_into acc sq ~factor p] the contribution of a mapping whose
    body is [Unsatisfiable] or [Trivial]: θ for plain queries; COUNT = 0
    (unsatisfiable) or COUNT = factor (trivial); SUM = Null. *)
val null_answer_into : Answer.t -> t -> factor:int -> float -> unit

(** [output_header q] the answer header shared by all mappings of a query
    (labels of {!Query.output_attrs}, or the aggregate label). *)
val output_header : Query.t -> string list

(** [result_tuples sq ~factor rel] the distinct target tuples of an
    evaluated reformulation ([rel] is the evaluation of [sq]'s expression,
    [None] for [Unsatisfiable]/[Trivial] bodies); [\[\]] means θ.  The same
    target-tuple construction {!answers_into} performs, reified as a list —
    used by compound (set-operator) queries. *)
val result_tuples :
  t -> factor:int -> Urm_relalg.Relation.t option -> Urm_relalg.Value.t array list
