(** E-units and the u-trace: the execution machinery of o-sharing
    (paper §V–§VI).

    An e-unit is a partially executed target query: a forest of materialised
    {e pieces} (source relations instantiated for target aliases, with the
    operators executed so far applied), the target operators still pending,
    and the set of (representative) mappings that agree on every operator
    executed so far.  Executing the next operator partitions the e-unit's
    mappings by how they reformulate that operator; each partition's source
    operator runs once and yields a child e-unit.  The recursion tree of
    e-units is the u-trace.

    Sharing comes from three places: (1) mappings in a partition share one
    operator execution, (2) untouched pieces are shared physically between
    sibling e-units, and (3) an optional memo table recognises identical
    (operator, input) pairs across branches of the u-trace. *)

type strategy = Random | Snf | Sef

val strategy_name : strategy -> string

(** A component of the partially-executed query. *)
type piece = {
  rel : Urm_relalg.Relation.t option;
      (** materialised result; [None] while the piece is a symbolic input
          expression (a base instance product awaiting its next operator) *)
  hint : Urm_relalg.Algebra.t;
      (** how to reference this piece in an operator expression: a pristine
          base instance keeps its [Rename(prefix, Base r)] form (so equality
          selections can use catalog indexes and memo keys stay stable), a
          lazy extension is a [Product] over such instances, and anything
          already computed is [Mat rel] *)
  aliases : string list;
  loaded : (string * string) list;  (** (alias, source relation) instances *)
}

type t = {
  pieces : piece list;
  pending : Query.op list;
  mappings : Mapping.t list;  (** representatives; probs are partition masses *)
}

(** Shared state of one o-sharing run. *)
type env

(** [make_env ?seed ?use_memo ?metrics ~strategy ctx q] fresh run state.
    [seed] drives the [Random] strategy only; [use_memo] (default [true])
    toggles cross-branch operator memoisation (the [abl-memo] ablation);
    [metrics] (default {!Urm_obs.Metrics.global}) is the scope that
    receives the run's counters — e-unit executions and memo hits/misses
    under ["eunit/"], engine operator counts under ["relalg/"]. *)
val make_env :
  ?seed:int ->
  ?use_memo:bool ->
  ?metrics:Urm_obs.Metrics.t ->
  strategy:strategy ->
  Ctx.t ->
  Query.t ->
  env

(** Operator/row counters of the run so far. *)
val counters : env -> Urm_relalg.Eval.counters

(** Memo hits of the run so far. *)
val memo_hits : env -> int

(** [set_tracer env f] installs a trace sink: [f] receives one formatted
    line per u-trace event (operator selection, partition branching, leaf
    emission) — the "explain" facility for o-sharing runs. *)
val set_tracer : env -> (string -> unit) -> unit

(** Number of e-units created so far (root included). *)
val eunits_created : env -> int

(** [init ctx q representatives] the root e-unit: the full pending operator
    list, no pieces, all representative mappings. *)
val init : Query.t -> Mapping.t list -> t

(** A leaf of the u-trace: what one fully-executed e-unit contributes. *)
type leaf =
  | Tuples of Urm_relalg.Value.t array list * float
      (** distinct target tuples over the query's output header, and the
          probability mass of the e-unit's mappings *)
  | Null_answer of float  (** θ with its mass *)

(** [run_qt env u ~emit] recursively evaluates the u-trace rooted at [u]
    (paper Algorithm 2).  [emit] is called on every leaf; returning [false]
    aborts the remaining traversal (used by top-k's early termination).
    Returns [false] iff the traversal was aborted.

    Child partitions are visited in decreasing probability-mass order. *)
val run_qt : env -> t -> emit:(leaf -> bool) -> bool

(** [branches env u] the strategy's operator choice for [u] and the
    resulting partitions, sorted in {!run_qt}'s visit order (decreasing
    probability mass; deterministic for the SNF/SEF strategies).  Counts
    [u] as one executed e-unit.  The domain-parallel o-sharing driver fans
    these partitions across domains and merges their answers in this
    order, reproducing the sequential accumulation order exactly. *)
val branches : env -> t -> Query.op * (string * Mapping.t list) list

(** Result of executing one operator on one partition: a child e-unit to
    recurse into, or a leaf. *)
type step = Child of t | Leaf of leaf

(** [exec_op env u op group] executes [op]'s reformulation under the
    partition [group] against [u]'s pieces. *)
val exec_op : env -> t -> Query.op -> Mapping.t list -> step

(** [mass u] total probability of [u.mappings]. *)
val mass : t -> float
