let index_of l =
  let h = Hashtbl.create 32 in
  List.iteri (fun i x -> Hashtbl.replace h x i) l;
  h

let from_candidates ~h cands =
  if cands = [] then []
  else begin
    let targets =
      List.sort_uniq String.compare (List.map (fun c -> c.Urm_matcher.Match.dst) cands)
    in
    let sources =
      List.sort_uniq String.compare (List.map (fun c -> c.Urm_matcher.Match.src) cands)
    in
    let t_index = index_of targets and s_index = index_of sources in
    let t_arr = Array.of_list targets and s_arr = Array.of_list sources in
    let weights = Array.make_matrix (Array.length t_arr) (Array.length s_arr) 0. in
    List.iter
      (fun c ->
        let i = Hashtbl.find t_index c.Urm_matcher.Match.dst in
        let j = Hashtbl.find s_index c.Urm_matcher.Match.src in
        weights.(i).(j) <- Float.max weights.(i).(j) c.Urm_matcher.Match.score)
      cands;
    let assignments = Urm_bipartite.Murty.k_best ~weights ~k:h in
    let assignments =
      List.filter (fun (a : Urm_bipartite.Murty.assignment) -> a.score > 0.) assignments
    in
    let total =
      List.fold_left
        (fun acc (a : Urm_bipartite.Murty.assignment) -> acc +. a.score)
        0. assignments
    in
    List.mapi
      (fun id (a : Urm_bipartite.Murty.assignment) ->
        let pairs = List.map (fun (i, j) -> (t_arr.(i), s_arr.(j))) a.pairs in
        Mapping.make ~id ~prob:(a.score /. total) ~score:a.score pairs)
      assignments
  end

(* Murty's k-best enumeration is exact but its cost per mapping grows with
   the score matrix, which rules it out for the anytime experiments at
   h = 10⁴..10⁶.  [synthetic] trades exactness for volume: the greedy
   rank-1 matching first (so the head of the set is the plausible best),
   then randomized one-to-one variants — each target attribute is either
   dropped (small probability) or matched to a score-weighted choice among
   its still-unused candidate sources — deduplicated structurally and
   normalised by total score.  Deterministic from [seed]. *)
let synthetic ?(seed = 42) ~h cands =
  if cands = [] || h <= 0 then []
  else begin
    let by_target : (string, (string * float) list) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun c ->
        let t = c.Urm_matcher.Match.dst
        and s = c.Urm_matcher.Match.src
        and w = c.Urm_matcher.Match.score in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_target t) in
        if not (List.mem_assoc s prev) then
          Hashtbl.replace by_target t ((s, w) :: prev))
      cands;
    let targets =
      Hashtbl.fold (fun t _ acc -> t :: acc) by_target []
      |> List.sort String.compare |> Array.of_list
    in
    let greedy () =
      let used = Hashtbl.create 16 in
      Array.fold_left
        (fun acc t ->
          let best =
            List.fold_left
              (fun best (s, w) ->
                if Hashtbl.mem used s then best
                else
                  match best with
                  | Some (_, bw) when bw > w -> best
                  | Some (bs, bw) when bw = w && String.compare bs s <= 0 ->
                    best
                  | _ -> Some (s, w))
              None (Hashtbl.find by_target t)
          in
          match best with
          | None -> acc
          | Some (s, w) ->
            Hashtbl.replace used s ();
            ((t, s), w) :: acc)
        [] targets
    in
    let rng = Urm_util.Prng.create seed in
    let random_matching () =
      let order = Array.copy targets in
      Urm_util.Prng.shuffle rng order;
      let used = Hashtbl.create 16 in
      Array.fold_left
        (fun acc t ->
          if Urm_util.Prng.bool rng 0.15 then acc
          else
            let avail =
              List.filter
                (fun (s, _) -> not (Hashtbl.mem used s))
                (Hashtbl.find by_target t)
            in
            let total = List.fold_left (fun a (_, w) -> a +. w) 0. avail in
            if total <= 0. then acc
            else begin
              let x = Urm_util.Prng.float rng *. total in
              let rec pick acc_w = function
                | [ (s, w) ] -> (s, w)
                | (s, w) :: rest ->
                  let acc_w = acc_w +. w in
                  if x < acc_w then (s, w) else pick acc_w rest
                | [] -> assert false
              in
              let s, w = pick 0. avail in
              Hashtbl.replace used s ();
              ((t, s), w) :: acc
            end)
        [] order
    in
    (* Canonical key as one string: the generic [Hashtbl.hash] examines
       only a bounded prefix of a structured key, which at h = 10⁵ makes a
       pair-list table collide into O(h²) scans; a flat string is hashed
       wholesale. *)
    let canon pairs =
      List.sort String.compare
        (List.map (fun ((t, s), _) -> t ^ "=" ^ s) pairs)
      |> String.concat ";"
    in
    let seen = Hashtbl.create (2 * h) in
    let out = ref [] and count = ref 0 in
    let admit pairs =
      if pairs <> [] then begin
        let key = canon pairs in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          let score = List.fold_left (fun a (_, w) -> a +. w) 0. pairs in
          out := (List.map fst pairs, score) :: !out;
          incr count
        end
      end
    in
    admit (greedy ());
    let attempts = ref 0 in
    let max_attempts = 20 * h in
    while !count < h && !attempts < max_attempts do
      incr attempts;
      admit (random_matching ())
    done;
    let ms = List.rev !out in
    let total = List.fold_left (fun a (_, s) -> a +. s) 0. ms in
    List.mapi
      (fun id (pairs, score) ->
        Mapping.make ~id ~prob:(score /. total) ~score pairs)
      ms
  end

let generate ?threshold ~h ~source ~target () =
  let cands = Urm_matcher.Match.candidates ?threshold ~source ~target () in
  from_candidates ~h cands

let top_mapping_size ?threshold ~source ~target () =
  match generate ?threshold ~h:1 ~source ~target () with
  | [] -> 0
  | m :: _ -> Mapping.size m
