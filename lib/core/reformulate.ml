open Urm_relalg

type body =
  | Unsatisfiable
  | Trivial
  | Expr of Algebra.t

type t = {
  body : body;
  outputs : (string * string option) list;
  aggregate : Query.agg option;
  grouped : bool;
  factor_rels : string list;
}

let output_labels sq = List.map fst sq.outputs

let column_for ~alias ~source_attr =
  let rel, col = Schema.split_qualified source_attr in
  alias ^ "@" ^ rel ^ "#" ^ col

let prefix_for alias rel = alias ^ "@" ^ rel

let agg_label = function
  | Query.Count -> "count"
  | Query.Sum ta -> "sum(" ^ Query.tattr_to_string ta ^ ")"

let output_header q =
  match q.Query.aggregate with
  | Some a ->
    List.map Query.tattr_to_string q.Query.group_by @ [ agg_label a ]
  | None -> List.map Query.tattr_to_string (Query.output_attrs q)

let cover_of target q m alias =
  Query.needed_attrs target q alias
  |> List.filter_map (fun ta -> Mapping.source_of m (Query.qualified q ta))
  |> List.map (fun s -> fst (Schema.split_qualified s))
  |> List.sort_uniq String.compare

let source_query target q m =
  let source_of ta = Mapping.source_of m (Query.qualified q ta) in
  let col_of ta =
    Option.map (fun s -> column_for ~alias:ta.Query.alias ~source_attr:s) (source_of ta)
  in
  let source_agg =
    match q.Query.aggregate with
    | Some Query.Count -> Some Algebra.Count
    | Some (Query.Sum ta) -> Option.map (fun c -> Algebra.Sum c) (col_of ta)
    | None -> None
  in
  let outputs =
    match q.Query.aggregate with
    | Some a ->
      List.map (fun ta -> (Query.tattr_to_string ta, col_of ta)) q.Query.group_by
      @ [ (agg_label a, Option.map Algebra.output_col source_agg) ]
    | None -> List.map (fun ta -> (Query.tattr_to_string ta, col_of ta)) (Query.output_attrs q)
  in
  let grouped = q.Query.group_by <> [] in
  (* Unreferenced aliases are factored out rather than materialised. *)
  let referenced, unreferenced =
    List.partition
      (fun (alias, _) -> Query.referenced_of_alias q alias <> [])
      q.Query.aliases
  in
  let factor_rels =
    match q.Query.aggregate with
    | Some _ ->
      List.concat_map (fun (alias, _) -> cover_of target q m alias) unreferenced
    | None -> []
  in
  let unsatisfiable =
    List.exists (fun (ta, _) -> source_of ta = None) q.Query.selections
    || List.exists
         (fun (a, b) -> source_of a = None || source_of b = None)
         q.Query.joins
    || (match q.Query.aggregate with
       | Some (Query.Sum ta) -> source_of ta = None
       | Some Query.Count | None -> false)
  in
  if unsatisfiable then
    { body = Unsatisfiable; outputs; aggregate = q.Query.aggregate; grouped; factor_rels }
  else begin
    (* One piece per (alias, covering source relation); the cover of an
       alias is the set of relations owning its mapped needed attributes
       (paper §VI-B: minimal source-relation set — minimality is immediate
       because each source attribute belongs to exactly one relation). *)
    let alias_pieces (alias, _) =
      List.map
        (fun r -> Algebra.Rename (prefix_for alias r, Algebra.Base r))
        (cover_of target q m alias)
    in
    let pieces = List.concat_map alias_pieces referenced in
    match pieces with
    | [] -> { body = Trivial; outputs; aggregate = q.Query.aggregate; grouped; factor_rels }
    | first :: rest ->
      let from_expr = List.fold_left (fun acc p -> Algebra.Product (acc, p)) first rest in
      let must_col ta =
        match col_of ta with
        | Some c -> c
        | None -> assert false (* guarded by [unsatisfiable] *)
      in
      let sel_preds =
        List.map (fun (ta, v) -> Pred.eq (must_col ta) v) q.Query.selections
      in
      let join_preds =
        List.map (fun (a, b) -> Pred.eq_cols (must_col a) (must_col b)) q.Query.joins
      in
      let pred = Pred.conj (sel_preds @ join_preds) in
      let filtered =
        match pred with Pred.True -> from_expr | p -> Algebra.Select (p, from_expr)
      in
      let expr =
        match source_agg with
        | Some a when grouped ->
          let keys =
            List.sort_uniq String.compare (List.filter_map col_of q.Query.group_by)
          in
          Algebra.GroupBy (keys, a, filtered)
        | Some a -> Algebra.Aggregate (a, filtered)
        | None ->
          let proj_cols =
            List.sort_uniq String.compare (List.filter_map snd outputs)
          in
          if proj_cols = [] then filtered
          else
            (* Answers are sets per mapping; Distinct lets the engine
               factorise the projection through Cartesian products. *)
            Algebra.Distinct (Algebra.Project (proj_cols, filtered))
      in
      { body = Expr expr; outputs; aggregate = q.Query.aggregate; grouped; factor_rels }
  end

let key sq =
  let body_part =
    match sq.body with
    | Unsatisfiable -> "<unsat>"
    | Trivial -> "<trivial>"
    | Expr e -> Algebra.fingerprint e
  in
  let outputs_part =
    String.concat ";"
      (List.map
         (fun (label, col) -> label ^ "=" ^ Option.value ~default:"⊥" col)
         sq.outputs)
  in
  body_part ^ "||" ^ outputs_part ^ "||" ^ String.concat "," sq.factor_rels

let factor cat sq =
  List.fold_left
    (fun acc r -> acc * Relation.cardinality (Catalog.find cat r))
    1 sq.factor_rels

let scale_value factor v =
  match v with
  | Value.Int c -> Value.Int (c * factor)
  | Value.Float s -> Value.Float (s *. float_of_int factor)
  | Value.Null -> Value.Null
  | Value.Str _ -> invalid_arg "Reformulate.scale_value: string aggregate"

let null_answer_into acc sq ~factor p =
  match (sq.aggregate, sq.grouped, sq.body) with
  (* A grouped aggregate over nothing has no groups: the answer is θ. *)
  | Some _, true, _ -> Answer.add_null acc p
  | Some Query.Count, false, Trivial -> Answer.add acc [| Value.Int factor |] p
  | Some Query.Count, false, _ -> Answer.add acc [| Value.Int 0 |] p
  | Some (Query.Sum _), false, _ -> Answer.add acc [| Value.Null |] p
  | None, _, _ -> Answer.add_null acc p

(* Iterate the target tuples of a plain (non-aggregate) evaluated result:
   the source query ends in Distinct over exactly the mapped output columns
   and unmapped outputs are a constant Null, so rows map one-to-one onto
   distinct target tuples (a completely unmapped output list collapses to a
   single all-Null tuple).  Does nothing on an empty result (θ). *)
let iter_plain_tuples sq rel ~f =
  if not (Relation.is_empty rel) then begin
    let getters =
      Array.of_list
        (List.map (fun (_, c) -> Option.map (Relation.col_pos rel) c) sq.outputs)
    in
    let n = Array.length getters in
    let identity =
      n = Relation.arity rel
      &&
      let rec go i = i >= n || (getters.(i) = Some i && go (i + 1)) in
      go 0
    in
    if identity then Relation.iter f rel
    else if Array.for_all (( = ) None) getters then
      f (Array.make n Value.Null)
    else
      Relation.iter
        (fun row ->
          f
            (Array.map
               (function Some i -> row.(i) | None -> Value.Null)
               getters))
        rel
  end

let aggregate_tuple sq ~factor rel =
  match sq.outputs with
  | [ (_, Some col) ] -> [| scale_value factor (Relation.value rel 0 col) |]
  | _ -> invalid_arg "Reformulate: bad aggregate outputs"

(* Grouped aggregate result rows: group columns (Null for unmapped grouping
   attributes), then the aggregate value scaled by the cardinality factor.
   Rows are distinct by construction (GroupBy keys). *)
let iter_grouped_tuples sq ~factor rel ~f =
  let getters =
    Array.of_list
      (List.map (fun (_, c) -> Option.map (Relation.col_pos rel) c) sq.outputs)
  in
  let n = Array.length getters in
  Relation.iter
    (fun row ->
      let tuple =
        Array.init n (fun i ->
            let v =
              match getters.(i) with Some idx -> row.(idx) | None -> Value.Null
            in
            if i = n - 1 then scale_value factor v else v)
      in
      f tuple)
    rel

let answers_into acc sq ~factor rel p =
  match (sq.aggregate, sq.grouped) with
  | Some _, true ->
    if Relation.is_empty rel then Answer.add_null acc p
    else iter_grouped_tuples sq ~factor rel ~f:(fun tuple -> Answer.add acc tuple p)
  | Some _, false -> Answer.add acc (aggregate_tuple sq ~factor rel) p
  | None, _ ->
    if Relation.is_empty rel then Answer.add_null acc p
    else iter_plain_tuples sq rel ~f:(fun tuple -> Answer.add acc tuple p)

(* The fused accumulate of the compiled engine: [drive] pushes the result
   rows of [sq]'s expression (header [header], {!Urm.Ctx.eval_stream}),
   and every target tuple folds into [acc] as it streams past — no
   materialised relation.  Must agree with {!answers_into} over the
   materialised result; per-mapping tuples are distinct by construction
   (see {!iter_plain_tuples}), so the within-mapping accumulation order
   cannot affect the summed probabilities. *)
let stream_answers_into acc sq ~factor (header, drive) p =
  let pos c =
    let rec go i = function
      | [] -> raise Not_found
      | x :: _ when String.equal x c -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 header
  in
  let getters () =
    Array.of_list (List.map (fun (_, c) -> Option.map pos c) sq.outputs)
  in
  match (sq.aggregate, sq.grouped) with
  | Some _, false -> (
    (* Scalar aggregate: the expression yields exactly one row. *)
    let seen = ref None in
    drive (fun row -> seen := Some row);
    match (!seen, sq.outputs) with
    | Some row, [ (_, Some col) ] ->
      Answer.add acc [| scale_value factor row.(pos col) |] p
    | None, _ -> Answer.add_null acc p
    | _ -> invalid_arg "Reformulate: bad aggregate outputs")
  | Some _, true ->
    let getters = getters () in
    let n = Array.length getters in
    let any = ref false in
    drive (fun row ->
        any := true;
        let tuple =
          Array.init n (fun i ->
              let v =
                match getters.(i) with Some idx -> row.(idx) | None -> Value.Null
              in
              if i = n - 1 then scale_value factor v else v)
        in
        Answer.add acc tuple p);
    if not !any then Answer.add_null acc p
  | None, _ ->
    let getters = getters () in
    let n = Array.length getters in
    let any = ref false in
    let identity =
      n = List.length header
      &&
      let rec go i = i >= n || (getters.(i) = Some i && go (i + 1)) in
      go 0
    in
    if identity then drive (fun row -> any := true; Answer.add acc row p)
    else if Array.for_all (( = ) None) getters then begin
      drive (fun _ -> any := true);
      if !any then Answer.add acc (Array.make n Value.Null) p
    end
    else
      drive (fun row ->
          any := true;
          Answer.add acc
            (Array.map (function Some i -> row.(i) | None -> Value.Null) getters)
            p);
    if not !any then Answer.add_null acc p

(* The vectorized fused accumulate: [bdrive] pushes the result of [sq]'s
   expression as {!Column.batch}es (header [header], see
   [Urm.Ctx.eval_batches]); column getters specialise once per batch, and
   every target tuple flows through [emit] ([emit_null] for θ).  Emits
   exactly the tuples {!stream_answers_into} emits, in the same order —
   the batch stream preserves row order — so accumulated probabilities
   stay bit-identical across engines. *)
let fold_batches_into ~emit ~emit_null sq ~factor (header, bdrive) =
  let pos c =
    let rec go i = function
      | [] -> raise Not_found
      | x :: _ when String.equal x c -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 header
  in
  let idxs () =
    Array.of_list (List.map (fun (_, c) -> Option.map pos c) sq.outputs)
  in
  match (sq.aggregate, sq.grouped) with
  | Some _, false -> (
    (* Scalar aggregate: the expression yields exactly one row. *)
    let seen = ref None in
    bdrive (fun b ->
        if b.Column.n > 0 then seen := Some (Column.row b (b.Column.n - 1)));
    match (!seen, sq.outputs) with
    | Some row, [ (_, Some col) ] -> emit [| scale_value factor row.(pos col) |]
    | None, _ -> emit_null ()
    | _ -> invalid_arg "Reformulate: bad aggregate outputs")
  | Some _, true ->
    let idxs = idxs () in
    let n = Array.length idxs in
    let any = ref false in
    bdrive (fun b ->
        let getters =
          Array.map (Option.map (fun i -> Column.getter b.Column.vecs.(i))) idxs
        in
        for k = 0 to b.Column.n - 1 do
          any := true;
          let i = b.Column.sel.(k) in
          emit
            (Array.init n (fun j ->
                 let v =
                   match getters.(j) with Some get -> get i | None -> Value.Null
                 in
                 if j = n - 1 then scale_value factor v else v))
        done);
    if not !any then emit_null ()
  | None, _ ->
    let idxs = idxs () in
    let n = Array.length idxs in
    let any = ref false in
    let identity =
      n = List.length header
      &&
      let rec go i = i >= n || (idxs.(i) = Some i && go (i + 1)) in
      go 0
    in
    if identity then
      bdrive (fun b ->
          for k = 0 to b.Column.n - 1 do
            any := true;
            emit (Column.row b k)
          done)
    else if Array.for_all (( = ) None) idxs then begin
      bdrive (fun b -> if b.Column.n > 0 then any := true);
      if !any then emit (Array.make n Value.Null)
    end
    else
      bdrive (fun b ->
          let getters =
            Array.map (Option.map (fun i -> Column.getter b.Column.vecs.(i))) idxs
          in
          for k = 0 to b.Column.n - 1 do
            any := true;
            let i = b.Column.sel.(k) in
            emit
              (Array.map
                 (function Some get -> get i | None -> Value.Null)
                 getters)
          done);
    if not !any then emit_null ()

let stream_batch_answers_into acc sq ~factor stream p =
  fold_batches_into sq ~factor stream
    ~emit:(fun tuple -> Answer.add acc tuple p)
    ~emit_null:(fun () -> Answer.add_null acc p)

(* A recorded accumulation: the answer-bucket ids one evaluation of a
   reformulation touched, in emission order.  Mappings sharing a {!key}
   produce identical target tuples, so a later mapping replays the ids
   with its own probability instead of re-evaluating — same buckets, same
   per-bucket addition order, hence bit-identical to a fresh evaluation. *)
type replay = { ids : int array; null : bool }

(* A replay plus the emitted target-tuple stream itself, in emission
   order — the factorized executor's cross-unit result-stream memo (see
   [record_weighted_answers_into]). *)
type recording = { rep : replay; tuples : Value.t array array }

let replay_of r = r.rep

(* Growable array buffer: record paths push one entry per emitted tuple,
   so consing a list and reversing would double the allocation on the
   hottest loop in the system. *)
let push buf count x =
  let n = Array.length !buf in
  if !count = n then begin
    let bigger = Array.make (2 * n) !buf.(0) in
    Array.blit !buf 0 bigger 0 n;
    buf := bigger
  end;
  !buf.(!count) <- x;
  incr count

let record_batch_answers_into acc sq ~factor stream p =
  let ids = ref (Array.make 256 0) and count = ref 0 and null = ref false in
  fold_batches_into sq ~factor stream
    ~emit:(fun tuple -> push ids count (Answer.add_id acc tuple p))
    ~emit_null:(fun () ->
      null := true;
      Answer.add_null acc p);
  { ids = Array.sub !ids 0 !count; null = !null }

let replay_answers_into acc r p =
  let ids = r.ids in
  for i = 0 to Array.length ids - 1 do
    Answer.bump acc ids.(i) p
  done;
  if r.null then Answer.add_null acc p

(* The factorized executor's recording: one pass over the weight-vector
   channel ({!Urm.Ctx.eval_wbatches}) that accumulates the e-unit's whole
   collapsed mapping mass and records the emitted stream — while
   simultaneously comparing that stream, tuple by tuple, against the
   [candidates] recorded by previously executed units.  Distinct
   reformulations frequently produce identical result streams (they differ
   in source attributes the target projection discards); when a candidate's
   stream is reproduced exactly — same tuples, same order, same length,
   same θ emission — the unit replays the candidate's bucket ids instead of
   paying a hash probe per tuple, and shares the candidate's recording.

   Bit-identity: bucket additions are deferred until the drive completes,
   which preserves their relative (emission) order, and a full stream match
   means the replayed additions are exactly the additions a fresh
   accumulation would have made — same buckets, same order, no hashing
   involved in the match (structural tuple equality only). *)
let record_weighted_answers_into acc sq ~factor (header, wdrive) ~weights
    ~candidates =
  let bdrive f = wdrive (fun wb -> f wb.Column.batch) in
  (* Collapse the weight vector once per unit, not per emitted tuple: the
     left-to-right fold is the same float the oracle's incremental
     per-mapping sum reaches, and hoisting it turns the accumulation from
     O(h · tuples) flops into O(h + tuples). *)
  let mass = Answer.vec_mass weights in
  let cands = Array.of_list candidates in
  let nc = Array.length cands in
  let live = Array.make nc true in
  let nlive = ref nc in
  (* While any candidate is live the emitted tuples are compared and
     dropped, not buffered — a full match never needs them, and the common
     prefix can always be recovered from a candidate's own recording.  Only
     once every candidate has died (or none existed) do tuples go to [buf]:
     on the transition, the shared prefix is backfilled from the last
     candidate standing, whose stream is identical on the rows seen so
     far. *)
  let k = ref 0 in
  let buffering = ref (nc = 0) in
  let buf = ref (Array.make 256 [||]) and count = ref 0 and null = ref false in
  let ensure n =
    if n > Array.length !buf then begin
      let cap = ref (Array.length !buf) in
      while !cap < n do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap [||] in
      Array.blit !buf 0 bigger 0 !count;
      buf := bigger
    end
  in
  fold_batches_into sq ~factor (header, bdrive)
    ~emit:(fun tuple ->
      if !buffering then push buf count tuple
      else begin
        let died_now = ref (-1) in
        for c = 0 to nc - 1 do
          if
            live.(c)
            && (!k >= Array.length cands.(c).tuples
               || not (Answer.tuple_equal tuple cands.(c).tuples.(!k)))
          then begin
            live.(c) <- false;
            decr nlive;
            died_now := c
          end
        done;
        if !nlive = 0 then begin
          buffering := true;
          ensure (!k + 1);
          Array.blit cands.(!died_now).tuples 0 !buf 0 !k;
          count := !k;
          push buf count tuple
        end
      end;
      incr k)
    ~emit_null:(fun () -> null := true);
  (* θ only ever fires on an empty stream, so adding it after the loop is
     the same accumulation order as adding it at emission time. *)
  let matched = ref None in
  for c = nc - 1 downto 0 do
    if
      live.(c)
      && Array.length cands.(c).tuples = !k
      && cands.(c).rep.null = !null
    then matched := Some cands.(c)
  done;
  match !matched with
  | Some r ->
    let ids = r.rep.ids in
    for i = 0 to Array.length ids - 1 do
      Answer.bump acc ids.(i) mass
    done;
    if !null then Answer.add_null acc mass;
    (r, true)
  | None ->
    let tuples =
      if !buffering then Array.sub !buf 0 !count
      else begin
        (* Candidates outlived the stream (it is a strict prefix of
           theirs): recover the emitted rows from any survivor. *)
        let src = ref [||] in
        for c = nc - 1 downto 0 do
          if live.(c) then src := cands.(c).tuples
        done;
        Array.sub !src 0 !k
      end
    in
    Answer.reserve acc (Array.length tuples);
    let ids = Array.map (fun tu -> Answer.add_id acc tu mass) tuples in
    if !null then Answer.add_null acc mass;
    ({ rep = { ids; null = !null }; tuples }, false)

let result_tuples sq ~factor rel =
  match (rel, sq.aggregate) with
  | Some rel, Some _ when sq.grouped ->
    let out = ref [] in
    iter_grouped_tuples sq ~factor rel ~f:(fun t -> out := t :: !out);
    List.rev !out
  | Some rel, Some _ -> [ aggregate_tuple sq ~factor rel ]
  | Some rel, None ->
    let out = ref [] in
    iter_plain_tuples sq rel ~f:(fun t -> out := t :: !out);
    List.rev !out
  | None, Some _ when sq.grouped -> []
  | None, Some Query.Count ->
    [ [| Value.Int (match sq.body with Trivial -> factor | _ -> 0) |] ]
  | None, Some (Query.Sum _) -> [ [| Value.Null |] ]
  | None, None -> []
