(** The q-sharing algorithm (paper §IV, Algorithm 1): partition the mapping
    set with the partition tree, pick one representative mapping per
    partition carrying the partition's probability mass, and run {!Basic}
    over the representatives.  Unlike e-basic this never rewrites the query
    through all h mappings. *)

(** [run ?metrics ctx q ms] records its counters and phase timers under the
    ["q-sharing"] scope of [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** The representative mappings q-sharing would use (exposed for o-sharing,
    which starts from the same partitioning, and for tests). *)
val representatives : Ctx.t -> Query.t -> Mapping.t list -> Mapping.t list
