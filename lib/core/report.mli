(** Instrumented result of running one evaluation algorithm: the answer plus
    the timing breakdown and operator counts the paper's figures report. *)

type timings = {
  rewrite : float;  (** query reformulation / partitioning seconds *)
  plan : float;  (** MQO global-plan generation (e-MQO only) *)
  evaluate : float;  (** source-operator execution seconds *)
  aggregate : float;  (** answer-aggregation seconds *)
}

val zero_timings : timings

(** Wall-clock total. *)
val total : timings -> float

type t = {
  answer : Answer.t;
  timings : timings;
  source_operators : int;  (** operator executions on the source instance *)
  rows_produced : int;
  groups : int;
      (** distinct source queries / representative mappings / e-units,
          depending on the algorithm *)
}

(** [record_metrics m r] records one completed run into the metrics scope
    [m]: the ["runs"] and ["groups"] counters plus one ["phase.*"] timer
    observation per phase of [r.timings]. *)
val record_metrics : Urm_obs.Metrics.t -> t -> unit

(** [to_json ?volatile r] the report as JSON.  [volatile:false] (default
    [true]) keeps only the schedule-independent fields — the answer and the
    group count — dropping timings and operator/row counters, which differ
    across equivalent runs (e.g. different [--jobs]); the determinism
    regression test compares that rendering byte-for-byte. *)
val to_json : ?volatile:bool -> t -> Urm_util.Json.t

val pp : Format.formatter -> t -> unit
