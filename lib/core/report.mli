(** Instrumented result of running one evaluation algorithm: the answer plus
    the timing breakdown and operator counts the paper's figures report. *)

type timings = {
  rewrite : float;  (** query reformulation / partitioning seconds *)
  plan : float;  (** MQO global-plan generation (e-MQO only) *)
  evaluate : float;  (** source-operator execution seconds *)
  aggregate : float;  (** answer-aggregation seconds *)
}

val zero_timings : timings

(** Wall-clock total. *)
val total : timings -> float

type t = {
  answer : Answer.t;
  timings : timings;
  source_operators : int;  (** operator executions on the source instance *)
  rows_produced : int;
  groups : int;
      (** distinct source queries / representative mappings / e-units,
          depending on the algorithm *)
  engine : string;
      (** the execution engine the run {e actually} used (an
          {!Urm_relalg.Compile.engine_name}, possibly suffixed
          ["+factorized"]), which may differ from the engine the context
          requested when an algorithm falls back to its interpreted oracle
          path; [""] when unrecorded.  [urm query] warns on mismatch. *)
  intervals : (Urm_relalg.Value.t array * (float * float)) list option;
      (** per-tuple [lo, hi] probability bounds, when the producing
          algorithm is approximate (the anytime estimator); [None] for the
          exact algorithms.  Sorted by lower bound descending (ties by
          tuple), matching {!Answer.to_list}'s discipline. *)
}

(** [make ?intervals ~answer … ()] assembles a report; [intervals]
    defaults to [None] and is sorted into the deterministic rendering
    order. *)
val make :
  ?intervals:(Urm_relalg.Value.t array * (float * float)) list ->
  ?engine:string ->
  answer:Answer.t ->
  timings:timings ->
  source_operators:int ->
  rows_produced:int ->
  groups:int ->
  unit ->
  t

(** [record_metrics m r] records one completed run into the metrics scope
    [m]: the ["runs"] and ["groups"] counters plus one ["phase.*"] timer
    observation per phase of [r.timings]. *)
val record_metrics : Urm_obs.Metrics.t -> t -> unit

(** [to_json ?volatile r] the report as JSON.  [volatile:false] (default
    [true]) keeps only the schedule-independent fields — the answer and the
    group count — dropping timings and operator/row counters, which differ
    across equivalent runs (e.g. different [--jobs]); the determinism
    regression test compares that rendering byte-for-byte.
    When [intervals] is present it renders as
    [{"intervals": [{"tuple": […], "lo": l, "hi": h}, …]}] inside the
    stable fields; when absent the field is omitted entirely, so reports
    from the exact algorithms render byte-identically to the pre-interval
    schema. *)
val to_json : ?volatile:bool -> t -> Urm_util.Json.t

(** [intervals_of_json json] parses the ["intervals"] member of a rendered
    report back into the {!t.intervals} representation ([None] when the
    field is absent or [null]) — the round-trip inverse of {!to_json}'s
    interval rendering.  Raises [Failure] on a malformed field. *)
val intervals_of_json :
  Urm_util.Json.t -> (Urm_relalg.Value.t array * (float * float)) list option

val pp : Format.formatter -> t -> unit
