(** The [e-MQO] algorithm (paper §III-B.3): cluster identical source queries
    as in e-basic, then hand the distinct queries to a multi-query optimiser
    that builds one global plan sharing common subexpressions, and evaluate
    that plan.  Plan generation cost is part of the reported time — it is
    the reason the paper finds e-MQO slower than e-basic despite executing
    the fewest operators. *)

(** [run ?metrics ctx q ms] records its counters and phase timers under the
    ["e-MQO"] scope of [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t
