(** The [e-MQO] algorithm (paper §III-B.3): cluster identical source queries
    as in e-basic, then hand the distinct queries to a multi-query optimiser
    that builds one global plan sharing common subexpressions, and evaluate
    that plan.  Plan generation cost is part of the reported time — it is
    the reason the paper finds e-MQO slower than e-basic despite executing
    the fewest operators. *)

(** [run ?metrics ctx q ms] records its counters and phase timers under the
    ["e-MQO"] scope of [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** [eval_units ~ctrs ctx q units] builds one shared MQO plan for the
    evaluable units and returns [(parts, plan_secs, evaluate_secs)] where
    [parts] holds each unit's answer contribution, index-aligned with
    [units] (null/trivial units included).  Merging the parts in ascending
    unit order makes the accumulation order independent of the plan's
    execution order; the domain-parallel driver calls this per contiguous
    chunk of the distinct-unit list and merges all parts ascending. *)
val eval_units :
  ctrs:Urm_relalg.Eval.counters ->
  Ctx.t ->
  Query.t ->
  (Reformulate.t * float) list ->
  Answer.t array * float * float
