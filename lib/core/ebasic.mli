(** The [e-basic] algorithm (paper §III-B.2): like {!Basic} but identical
    source queries are clustered first and each distinct source query is
    evaluated once, carrying the summed probability of its mappings. *)

(** [run ?metrics ctx q ms] records its counters and phase timers under the
    ["e-basic"] scope of [metrics] (default {!Urm_obs.Metrics.global}). *)
val run :
  ?metrics:Urm_obs.Metrics.t -> Ctx.t -> Query.t -> Mapping.t list -> Report.t

(** The clustering step, exposed for e-MQO and tests: source queries grouped
    by {!Reformulate.key} with their probability mass, in first-appearance
    order. *)
val distinct_source_queries :
  Ctx.t -> Query.t -> Mapping.t list -> (Reformulate.t * float) list

(** [accumulate_units ~ctrs ctx acc units] evaluate-and-aggregate each
    distinct source query of [units] (in order) into [acc], without timers
    or reporting — the raw loop the domain-parallel driver fans over
    contiguous chunks of the distinct list. *)
val accumulate_units :
  ctrs:Urm_relalg.Eval.counters ->
  Ctx.t ->
  Answer.t ->
  (Reformulate.t * float) list ->
  unit
