module Metrics = Urm_obs.Metrics
module Lru = Urm_util.Lru

type entry = { payload : Urm_util.Json.t; deps : string list }

type t = {
  lru : entry Lru.t;
  hit : Metrics.counter;
  miss : Metrics.counter;
  evict : Metrics.counter;
  inv_selective : Metrics.counter;
  inv_wholesale : Metrics.counter;
  inv_removed : Metrics.counter;
}

let create ?(metrics = Metrics.scope Metrics.global "service") ~capacity () =
  {
    lru = Lru.create ~capacity;
    hit = Metrics.counter metrics "cache.hit";
    miss = Metrics.counter metrics "cache.miss";
    evict = Metrics.counter metrics "cache.evict";
    inv_selective = Metrics.counter metrics "cache.invalidate.selective";
    inv_wholesale = Metrics.counter metrics "cache.invalidate.wholesale";
    inv_removed = Metrics.counter metrics "cache.invalidate.removed";
  }

(* The full canonical text, not its 64-bit digest: a hash collision within
   a session would silently serve the wrong cached answer.  NUL separators
   cannot occur in any component.  The fingerprint comes first so
   invalidation can address one session's entries by prefix. *)
let key ~session ~query ~algorithm ~variant =
  String.concat "\x00"
    [ Session.fingerprint session; Urm.Query.canonical query; algorithm; variant ]

let find t k =
  match Lru.find t.lru k with
  | Some e ->
    Metrics.incr t.hit;
    Some e.payload
  | None ->
    Metrics.incr t.miss;
    None

let add t ?(guard = fun () -> true) ~deps k payload =
  match Lru.add_guarded t.lru k { payload; deps } ~guard with
  | None -> ()
  | Some evicted ->
    if evicted <> [] then Metrics.incr ~by:(List.length evicted) t.evict

type scope = All | Relations of string list

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let invalidate t ~fingerprint scope =
  let prefix = fingerprint ^ "\x00" in
  let removed =
    match scope with
    | All ->
      Metrics.incr t.inv_wholesale;
      Lru.remove_if t.lru (fun k _ -> has_prefix ~prefix k)
    | Relations rels ->
      Metrics.incr t.inv_selective;
      Lru.remove_if t.lru (fun k e ->
          has_prefix ~prefix k
          && List.exists (fun r -> List.mem r e.deps) rels)
  in
  Metrics.incr ~by:removed t.inv_removed;
  removed

let stats t = (Metrics.value t.hit, Metrics.value t.miss, Metrics.value t.evict)

let invalidation_stats t =
  ( Metrics.value t.inv_selective,
    Metrics.value t.inv_wholesale,
    Metrics.value t.inv_removed )
