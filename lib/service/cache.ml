module Metrics = Urm_obs.Metrics
module Lru = Urm_util.Lru

type t = {
  lru : Urm_util.Json.t Lru.t;
  hit : Metrics.counter;
  miss : Metrics.counter;
  evict : Metrics.counter;
}

let create ?(metrics = Metrics.scope Metrics.global "service") ~capacity () =
  {
    lru = Lru.create ~capacity;
    hit = Metrics.counter metrics "cache.hit";
    miss = Metrics.counter metrics "cache.miss";
    evict = Metrics.counter metrics "cache.evict";
  }

(* The full canonical text, not its 64-bit digest: a hash collision within
   a session would silently serve the wrong cached answer.  NUL separators
   cannot occur in any component. *)
let key ~session ~query ~algorithm ~variant =
  String.concat "\x00"
    [ session.Session.fingerprint; Urm.Query.canonical query; algorithm; variant ]

let find t k =
  match Lru.find t.lru k with
  | Some _ as hit ->
    Metrics.incr t.hit;
    hit
  | None ->
    Metrics.incr t.miss;
    None

let add t k v =
  let evicted = Lru.add t.lru k v in
  if evicted <> [] then Metrics.incr ~by:(List.length evicted) t.evict

let stats t = (Metrics.value t.hit, Metrics.value t.miss, Metrics.value t.evict)
