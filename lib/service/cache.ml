module Metrics = Urm_obs.Metrics

type t = {
  lru : Urm_util.Json.t Lru.t;
  hit : Metrics.counter;
  miss : Metrics.counter;
  evict : Metrics.counter;
}

let create ?(metrics = Metrics.scope Metrics.global "service") ~capacity () =
  {
    lru = Lru.create ~capacity;
    hit = Metrics.counter metrics "cache.hit";
    miss = Metrics.counter metrics "cache.miss";
    evict = Metrics.counter metrics "cache.evict";
  }

let key ~session ~query ~algorithm ~variant =
  String.concat "|"
    [ session.Session.fingerprint; Urm.Query.fingerprint query; algorithm; variant ]

let find t k =
  match Lru.find t.lru k with
  | Some _ as hit ->
    Metrics.incr t.hit;
    hit
  | None ->
    Metrics.incr t.miss;
    None

let add t k v =
  let evicted = Lru.add t.lru k v in
  if evicted <> [] then Metrics.incr ~by:(List.length evicted) t.evict

let stats t = (Metrics.value t.hit, Metrics.value t.miss, Metrics.value t.evict)
