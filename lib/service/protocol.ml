module Json = Urm_util.Json

type request = { id : Json.t; op : string; params : Json.t }

let request ?(id = Json.Null) ~op params =
  Json.Obj [ ("id", id); ("op", Json.Str op); ("params", Json.Obj params) ]

let parse_request line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> (
    match json with
    | Json.Obj _ -> (
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      let params = Option.value ~default:Json.Null (Json.member "params" json) in
      match Json.member "op" json with
      | Some (Json.Str op) when op <> "" -> Ok { id; op; params }
      | Some _ -> Error "\"op\" must be a non-empty string"
      | None -> Error "missing \"op\"")
    | _ -> Error "request must be a JSON object")

let param req name = Json.member name req.params

let str_param req name =
  Option.map Json.to_str (param req name)

let int_param req name =
  Option.map Json.to_int (param req name)

let float_param req name =
  Option.map Json.to_float (param req name)

(* ------------------------------------------------------------------ *)

let ok ~id result =
  Json.to_string (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ])

let error ~id ~code message =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ("error", Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ]);
       ])

type reply =
  | Ok of Json.t * Json.t
  | Err of Json.t * string * string

let parse_reply line =
  match Json.parse line with
  | Error msg -> Stdlib.Error msg
  | Stdlib.Ok json -> (
    let id = Option.value ~default:Json.Null (Json.member "id" json) in
    match Json.member "ok" json with
    | Some (Json.Bool true) ->
      Stdlib.Ok (Ok (id, Option.value ~default:Json.Null (Json.member "result" json)))
    | Some (Json.Bool false) -> (
      match Json.member "error" json with
      | Some err ->
        let field n =
          match Json.member n err with Some (Json.Str s) -> s | _ -> ""
        in
        Stdlib.Ok (Err (id, field "code", field "message"))
      | None -> Stdlib.Ok (Err (id, "error", "unspecified error")))
    | _ -> Stdlib.Error "reply must carry a boolean \"ok\"")

(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Urm_relalg.Value.Null -> Json.Null
  | Urm_relalg.Value.Int i -> Json.Num (float_of_int i)
  | Urm_relalg.Value.Float f -> Json.Num f
  | Urm_relalg.Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Null -> Urm_relalg.Value.Null
  | Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Urm_relalg.Value.Int (int_of_float f)
  | Json.Num f -> Urm_relalg.Value.Float f
  | Json.Str s -> Urm_relalg.Value.Str s
  | _ -> failwith "Protocol.value_of_json: not a scalar"
