(** The session catalog: named, long-lived query contexts.

    A session is the expensive per-instance state the paper's sharing
    techniques amortise {e within} one query — generated source instance,
    matcher + Murty mapping set, hash indexes — built once at open time and
    then shared read-only across the whole query stream.  Catalog mutation
    is serialised by the catalog lock, but the build itself runs outside
    it so concurrent lookups never stall behind an open; after
    {!open_session} returns, every field of {!t} is immutable, so executor
    domains evaluate over it concurrently without further locking.

    A session is identified by a stable fingerprint: an FNV-1a digest of
    the target schema, generation seed, scale, h and the full mapping-set
    JSON.  Equal parameters always produce equal fingerprints (generation
    is deterministic), and the answer cache keys on the fingerprint, so
    cached answers survive close/reopen of an identical session. *)

type t = private {
  name : string;
  fingerprint : string;  (** 16 hex digits, see {!Urm_util.Fnv} *)
  target_name : string;
  target : Urm_relalg.Schema.t;
  ctx : Urm.Ctx.t;
  mappings : Urm.Mapping.t list;
  seed : int;
  scale : float;
  h : int;
  rows : int;  (** total tuples of the generated source instance *)
}

type catalog

val create_catalog : unit -> catalog

(** [open_session catalog ?name ?engine ?seed ?scale ?h ~target ()] finds
    or builds a session.  Defaults: engine compiled, seed 42, scale
    {!Urm_tpch.Gen.default_scale}, h 100, name derived from the
    fingerprint.  Returns [(session, created)] where [created] is [false]
    when an identical session (same name, same parameters) already
    existed.  [Error]s: unknown target schema, or an existing session of
    the same name with different parameters.  The build runs outside the
    catalog lock; concurrent opens of the same name may each build, but
    only the first insert wins and the others observe it.  The engine is
    not part of the fingerprint — both engines return identical answers,
    so cached answers remain valid across the knob. *)
val open_session :
  catalog ->
  ?name:string ->
  ?engine:Urm_relalg.Compile.engine ->
  ?seed:int ->
  ?scale:float ->
  ?h:int ->
  target:string ->
  unit ->
  (t * bool, string) result

val find : catalog -> string -> t option

(** [close catalog name] drops the session; [false] when absent.  Cached
    answers keyed by its fingerprint remain valid (the fingerprint pins
    the exact state they were computed over). *)
val close : catalog -> string -> bool

(** All open sessions, sorted by name. *)
val list : catalog -> t list

val to_json : t -> Urm_util.Json.t
