(** The session catalog: named, long-lived query contexts.

    A session is the expensive per-instance state the paper's sharing
    techniques amortise {e within} one query — generated source instance,
    matcher + Murty mapping set, hash indexes — built once at open time.
    The instance and mapping set live in a {!Urm_incr.Vcatalog}: queries
    pin the head snapshot and evaluate over it without locking, while
    {!mutate} commits copy-on-write versions under the catalog's writer
    lock.  Readers holding an older snapshot are unaffected (snapshot
    isolation); the per-query maintained answers ({!with_incr_state})
    catch up by delta evaluation.

    A session is identified by a stable fingerprint: an FNV-1a digest of
    the target schema, generation seed, scale, h and the full mapping-set
    JSON {e at open time}.  Equal parameters always produce equal
    fingerprints (generation is deterministic).  The answer cache keys on
    the fingerprint and relies on mutation-driven invalidation
    ({!Cache.invalidate}) for freshness; {!epoch} tells the two states
    apart. *)

type t = private {
  name : string;
  fingerprint : string;  (** 16 hex digits, see {!Urm_util.Fnv} *)
  target_name : string;
  target : Urm_relalg.Schema.t;
  vcat : Urm_incr.Vcatalog.t;
  seed : int;
  scale : float;
  h : int;  (** requested mapping-set size at open time *)
  rows : int;  (** total tuples of the generated source instance *)
  incr_states : (string, Urm_incr.State.t) Hashtbl.t;
  incr_lock : Mutex.t;
  inv_selective : int Atomic.t;
  inv_wholesale : int Atomic.t;
}

type catalog

val create_catalog : unit -> catalog

(** [open_session catalog ?name ?engine ?seed ?scale ?h ~target ()] finds
    or builds a session.  Defaults: engine vectorized, seed 42, scale
    {!Urm_tpch.Gen.default_scale}, h 100, name derived from the
    fingerprint.  Returns [(session, created)] where [created] is [false]
    when an identical session (same name, same parameters) already
    existed.  [Error]s: unknown target schema, or an existing session of
    the same name with different parameters.  The build runs outside the
    catalog lock; concurrent opens of the same name may each build, but
    only the first insert wins and the others observe it.  The engine is
    not part of the fingerprint — all engines return identical answers,
    so cached answers remain valid across the knob. *)
val open_session :
  catalog ->
  ?name:string ->
  ?engine:Urm_relalg.Compile.engine ->
  ?seed:int ->
  ?scale:float ->
  ?h:int ->
  target:string ->
  unit ->
  (t * bool, string) result

val find : catalog -> string -> t option

(** [close catalog name] drops the session; [false] when absent. *)
val close : catalog -> string -> bool

(** All open sessions, sorted by name. *)
val list : catalog -> t list

val fingerprint : t -> string

(** The current head snapshot.  Pin it once per request: the {!ctx} and
    {!mappings} of one snapshot are mutually consistent, while two
    successive calls may straddle a commit. *)
val snapshot : t -> Urm_incr.Vcatalog.snapshot

val ctx : t -> Urm.Ctx.t  (** = [(snapshot s).ctx] *)

val mappings : t -> Urm.Mapping.t list  (** = [(snapshot s).mappings] *)

val epoch : t -> int

(** [mutate s batch] commits the batch atomically (see
    {!Urm_incr.Vcatalog.commit}); the caller (the server's [mutate] op)
    is responsible for invalidating the answer cache {e after} the commit
    and before replying. *)
val mutate :
  t -> Urm_incr.Mutation.batch -> (Urm_incr.Vcatalog.outcome, string) result

(** [query_deps s q] the stored relations [q] can read through the
    session's current mapping set — the cache-invalidation dependency
    set. *)
val query_deps : t -> Urm.Query.t -> string list

(** [with_incr_state ?metrics s q f] runs [f] over the session's
    maintained state for [q] — built on first use, caught up to the
    catalog head by delta evaluation on every later use — serialised by
    the session's incr lock ([f] must not re-enter it). *)
val with_incr_state :
  ?metrics:Urm_obs.Metrics.t ->
  t ->
  Urm.Query.t ->
  (Urm_incr.State.t -> [ `Built | `Current | `Patched | `Rebuilt ] -> 'a) ->
  'a

(** Per-session invalidation accounting, surfaced in the [metrics] op. *)
val note_invalidation : t -> [ `Selective | `Wholesale ] -> unit

val invalidations : t -> int * int  (** (selective, wholesale) *)

val to_json : t -> Urm_util.Json.t
