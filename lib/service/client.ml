module Json = Urm_util.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  framed : bool;
  mutable next_id : int;
}

let connect ?(host = "127.0.0.1") ?(framed = false) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    framed;
    next_id = 1;
  }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let transport_error = function
  | End_of_file -> "connection closed by server"
  | Sys_error msg -> msg
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | exn -> Printexc.to_string exn

let read_frame c =
  match input_char c.ic with
  | exception (End_of_file | Sys_error _) -> Error "connection closed by server"
  | m when m <> Frame.magic -> Error "garbage where a frame was expected"
  | _ -> (
    match Frame.read_body c.ic with
    | Ok f -> Ok f
    | Error e -> Error (Frame.error_message e))

(* One framed exchange: write [frame], read frames until one [expect]
   accepts.  A server may volunteer [Credit] frames at any point (e.g.
   after a busy reject); exchanges that are not waiting for one skip
   them. *)
let frame_roundtrip c frame expect =
  match
    Frame.write c.oc frame;
    flush c.oc
  with
  | exception exn -> Error (transport_error exn)
  | () ->
    let rec loop () =
      match read_frame c with
      | Error _ as e -> e
      | Ok f -> (
        match expect f with
        | Some v -> Ok v
        | None -> (
          match f with
          | Frame.Credit _ -> loop ()
          | Frame.Proto_error (code, message) ->
            Error (Printf.sprintf "protocol error %s: %s" code message)
          | _ -> Error "unexpected frame from server"))
    in
    loop ()

let roundtrip c line =
  if c.framed then
    frame_roundtrip c (Frame.Request line) (function
      | Frame.Reply doc -> Some doc
      | _ -> None)
  else
    match
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc;
      input_line c.ic
    with
    | reply -> Ok reply
    | exception exn -> Error (transport_error exn)

let fresh_id c =
  let id = Json.Num (float_of_int c.next_id) in
  c.next_id <- c.next_id + 1;
  id

let parse_result reply =
  match Protocol.parse_reply reply with
  | Error msg -> Error ("transport", "malformed reply: " ^ msg)
  | Ok (Protocol.Ok (_, result)) -> Ok result
  | Ok (Protocol.Err (_, code, message)) -> Error (code, message)

let call c ~op params =
  let line = Json.to_string (Protocol.request ~id:(fresh_id c) ~op params) in
  match roundtrip c line with
  | Error msg -> Error ("transport", msg)
  | Ok reply -> parse_result reply

let call_batch c reqs =
  let docs =
    List.map
      (fun (op, params) ->
        Json.to_string (Protocol.request ~id:(fresh_id c) ~op params))
      reqs
  in
  if not c.framed then
    invalid_arg "Client.call_batch: requires a framed connection";
  match
    frame_roundtrip c (Frame.Batch docs) (function
      | Frame.Batch_reply replies -> Some replies
      | _ -> None)
  with
  | Error msg -> Error msg
  | Ok replies ->
    if List.length replies <> List.length docs then
      Error "batch reply count mismatch"
    else Ok (List.map parse_result replies)

let hello c =
  if not c.framed then invalid_arg "Client.hello: requires a framed connection";
  frame_roundtrip c
    (Frame.Hello "{\"client\":\"urm\"}")
    (function Frame.Hello_ack credit -> Some credit | _ -> None)

let credit c =
  if not c.framed then invalid_arg "Client.credit: requires a framed connection";
  frame_roundtrip c (Frame.Credit 0) (function
    | Frame.Credit n -> Some n
    | _ -> None)
