module Json = Urm_util.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1;
  }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let roundtrip c line =
  match
    output_string c.oc line;
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let call c ~op params =
  let id = Json.Num (float_of_int c.next_id) in
  c.next_id <- c.next_id + 1;
  let line = Json.to_string (Protocol.request ~id ~op params) in
  match roundtrip c line with
  | Error msg -> Error ("transport", msg)
  | Ok reply -> (
    match Protocol.parse_reply reply with
    | Error msg -> Error ("transport", "malformed reply: " ^ msg)
    | Ok (Protocol.Ok (_, result)) -> Ok result
    | Ok (Protocol.Err (_, code, message)) -> Error (code, message))
