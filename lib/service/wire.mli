(** One server-side connection speaking either wire framing.

    A connection starts in line (ND-JSON) mode and is promoted to binary
    framing the moment its first byte is the frame magic [0xF5] — the
    negotiation is that single sniffed byte, so old clients keep working
    unchanged while framed clients get pipelining, batching and credit.

    Writes are serialised by a per-connection lock and never raise: an
    I/O failure marks the connection dead and later writes become no-ops
    (the reply to a vanished client is discarded, not fatal).  Both
    {!Server} and the shard router build their reader loops on {!recv}. *)

type mode = Lines | Frames

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  mutable alive : bool;
  mutable mode : mode;
}

val of_fd : Unix.file_descr -> t
(** Wrap an accepted socket; mode starts as [Lines] until sniffed. *)

type event =
  | Line of string  (** one ND-JSON request line (without the newline) *)
  | Framed of Frame.t
  | Malformed of Frame.error  (** answer with a proto-error, then close *)
  | Eof  (** clean close at a message boundary *)

val recv : t -> event
(** Block for the next inbound event.  The first [0xF5] byte switches the
    connection to [Frames] permanently. *)

val send_reply : t -> string -> unit
(** Send one serialised reply document in the connection's mode: a line,
    or a [Reply] frame. *)

val send_frame : t -> Frame.t -> unit
(** Send a frame verbatim (framed connections only — callers only reach
    this from frame-triggered paths). *)

val wake : t -> unit
(** Unblock a reader parked in [recv] (shutdown both directions); the
    reader then observes [Eof] and runs {!teardown}. *)

val teardown : t -> unit
(** Mark dead and close the fd.  Idempotent. *)
