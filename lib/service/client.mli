(** A minimal synchronous client for the service wire protocol.

    One request in flight at a time per client: {!call} writes a line and
    blocks for the single matching reply, so no id-based demultiplexing is
    needed.  Open several clients for concurrency (the smoke test drives
    four from four threads). *)

type t

(** [connect ?host ~port ()] — raises [Unix.Unix_error] when nothing
    listens there. *)
val connect : ?host:string -> port:int -> unit -> t

val close : t -> unit

(** [call c ~op params] sends one request (with a fresh integer id) and
    waits for its reply.  [Ok result] on success; [Error (code, message)]
    for error replies and transport failures (code ["transport"]). *)
val call :
  t ->
  op:string ->
  (string * Urm_util.Json.t) list ->
  (Urm_util.Json.t, string * string) result

(** [roundtrip c line] raw exchange: send a pre-serialised request line,
    return the raw reply line — the [urm request] batch mode. *)
val roundtrip : t -> string -> (string, string) result
