(** A minimal synchronous client for the service wire protocol.

    One exchange in flight at a time per client: {!call} writes a request
    and blocks for the matching reply, so no id-based demultiplexing is
    needed.  Open several clients for concurrency (the smoke test drives
    four from four threads).

    With [~framed:true] the client speaks the binary framing of {!Frame}
    (its first byte, the frame magic, is also what tells the server to
    answer in frames): {!call} exchanges [Request]/[Reply] frames,
    {!call_batch} ships several requests in one [Batch] frame — the
    pipelining/batching path — and {!hello}/{!credit} query the server's
    admission credit.  The default remains ND-JSON lines, so [urm
    request] works against any server. *)

type t

(** [connect ?host ?framed ~port ()] — raises [Unix.Unix_error] when
    nothing listens there.  [framed] defaults to [false] (ND-JSON). *)
val connect : ?host:string -> ?framed:bool -> port:int -> unit -> t

val close : t -> unit

(** [call c ~op params] sends one request (with a fresh integer id) and
    waits for its reply.  [Ok result] on success; [Error (code, message)]
    for error replies and transport failures (code ["transport"]). *)
val call :
  t ->
  op:string ->
  (string * Urm_util.Json.t) list ->
  (Urm_util.Json.t, string * string) result

(** [call_batch c [(op, params); …]] one [Batch] frame, one [Batch_reply]
    back: per-request results in request order.  The outer [Error] is a
    transport/protocol failure.  Framed connections only
    ([Invalid_argument] otherwise). *)
val call_batch :
  t ->
  (string * (string * Urm_util.Json.t) list) list ->
  ((Urm_util.Json.t, string * string) result list, string) result

(** [hello c] negotiates and returns the server's current admission
    credit (free queue slots).  Framed connections only. *)
val hello : t -> (int, string) result

(** [credit c] probes the server's current admission credit.  Framed
    connections only. *)
val credit : t -> (int, string) result

(** [roundtrip c line] raw exchange: send a pre-serialised request
    document, return the raw reply document — the [urm request] batch
    mode.  On a framed connection the document travels inside
    [Request]/[Reply] frames. *)
val roundtrip : t -> string -> (string, string) result
