(** The concurrent query service.

    A server owns a loopback TCP listening socket speaking the
    {!Protocol} wire format — ND-JSON lines, or the binary framing of
    {!Frame} when a connection's first byte is the frame magic (see
    {!Wire}) — a {!Session} catalog, a {!Cache} of answers, and an
    executor pool of OCaml domains fed by a bounded admission queue.
    Per-connection reader threads parse requests and enqueue jobs; when
    the queue is at [queue_depth] the request is rejected immediately
    with a [busy] error instead of building unbounded backlog (framed
    connections additionally receive a [Credit] frame carrying the free
    slot count — explicit backpressure).  A [Batch] frame is admitted as
    one job whose requests execute sequentially and are answered in one
    [Batch_reply].  Worker domains pop jobs, evaluate them over the
    (immutable, shared) session state, and write the reply under a
    per-connection lock.  Malformed frames are answered with a
    [Proto_error] frame, then the connection is closed.

    A [query] request carrying [range_lo]/[range_hi] evaluates only that
    contiguous mapping range and returns per-mapping partial answers
    (algorithm [basic] only) — the shard router's fan-out unit; see
    lib/shard.

    Request latency (admission to reply, seconds) is recorded in the
    ["service"] metrics scope as the [phase.request] timer and in a
    sliding window from which {!latency_summary} derives p50/p95/p99.
    Counters: [requests], [cache.{hit,miss,evict}],
    [queue.{depth,rejected}].

    Shutdown — {!stop}, or a client [shutdown] request — is a graceful
    drain: no further admissions, queued work completes and is answered,
    then workers exit and connections are closed. *)

type config = {
  host : string;  (** loopback interface, default ["127.0.0.1"] *)
  port : int;  (** [0] binds an ephemeral port; see {!port} *)
  workers : int;  (** executor domains *)
  queue_depth : int;  (** admission-queue bound; beyond it requests get [busy] *)
  cache_capacity : int;  (** answer-cache entries *)
  send_timeout : float;
      (** SO_SNDTIMEO on accepted sockets, seconds; a reply write stalled
          this long marks the connection dead instead of wedging a worker.
          [0.] disables the bound. *)
  eval_jobs : int;
      (** evaluation domains per query: [> 1] shares one
          {!Urm_par.Pool} across the worker domains and routes [query]
          requests through the parallel drivers (answers are bit-identical
          to sequential evaluation; see lib/par).  Default [1]. *)
  engine : Urm_relalg.Compile.engine;
      (** query-execution engine for sessions this server opens (default
          compiled); [metrics] requests report the sessions' plan-cache
          hit/miss/evict totals under ["plan_cache"]. *)
}

val default_config : config

type t

(** [start ?metrics config] binds, listens and returns immediately with
    the pool running.  [metrics] defaults to the ["service"] scope of
    {!Urm_obs.Metrics.global}.  Ignores SIGPIPE process-wide so writes to
    disconnected clients surface as I/O errors rather than killing the
    server.  Raises [Unix.Unix_error] when the port is taken. *)
val start : ?metrics:Urm_obs.Metrics.t -> config -> t

(** The actually-bound port (differs from [config.port] when that was 0). *)
val port : t -> int

(** The server's session catalog — lets an embedding process (CLI preload,
    tests, examples) open sessions without a round-trip. *)
val sessions : t -> Session.catalog

(** [answers_json answer limit] the top-[limit] answers exactly as
    [query] replies serialise them — shared with the shard router, whose
    merged answers must render byte-identically to a single process. *)
val answers_json : Urm.Answer.t -> int -> Urm_util.Json.t

(** Begin graceful drain; returns immediately. Idempotent. *)
val stop : t -> unit

(** Block until the server has fully drained and every worker, reader and
    acceptor has exited.  Returns only after {!stop} (or a client
    [shutdown] request) initiated the drain. *)
val wait : t -> unit

(** [(count, p50, p95, p99)] over the recent-latency window, seconds;
    all zero while the window is empty. *)
val latency_summary : t -> int * float * float * float

(** Live connections right now — drops to its old level once misbehaving
    or departed clients have been torn down (the fuzz suite's leak
    probe). *)
val connection_count : t -> int
