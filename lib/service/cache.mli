(** The service answer cache: LRU over fully-evaluated reply payloads.

    Keys combine the session fingerprint, the canonical query text, the
    algorithm and the evaluation variant (exact / top-k / threshold plus
    its parameter), so a hit is guaranteed to be the byte-identical answer
    a cold run would produce over the same state.  Hits, misses and
    evictions are counted as [cache.hit], [cache.miss] and [cache.evict]
    under the metrics scope given at creation (the server passes its
    ["service"] scope). *)

type t

val create : ?metrics:Urm_obs.Metrics.t -> capacity:int -> unit -> t

(** [key ~session ~query ~algorithm ~variant] — [variant] distinguishes
    evaluation modes sharing a query, e.g. ["exact"], ["topk:5"],
    ["threshold:0.3"]. *)
val key :
  session:Session.t -> query:Urm.Query.t -> algorithm:string -> variant:string ->
  string

val find : t -> string -> Urm_util.Json.t option
val add : t -> string -> Urm_util.Json.t -> unit
val stats : t -> int * int * int  (** (hits, misses, evictions) *)
