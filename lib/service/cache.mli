(** The service answer cache: LRU over fully-evaluated reply payloads.

    Keys combine the session fingerprint, the canonical query text, the
    algorithm and the evaluation variant (exact / top-k / threshold plus
    its parameter), so a hit is guaranteed to be the byte-identical answer
    a cold run would produce over the same state.

    With mutable sessions ({!Session.mutate}) a fingerprint no longer pins
    one immutable instance, so entries carry the stored relations their
    answer read ({!Session.query_deps}) and mutations {!invalidate} the
    session's entries — selectively by touched relation for data-only
    batches, wholesale when the mapping set changed (every answer depends
    on it).  Inserts are guarded ({!Urm_util.Lru.add_guarded}): the server
    passes an epoch re-check so an answer computed over a pre-mutation
    snapshot can never be published after the mutation's invalidation ran.

    Hits, misses and evictions are counted as [cache.hit], [cache.miss]
    and [cache.evict]; invalidation as [cache.invalidate.selective],
    [cache.invalidate.wholesale] and [cache.invalidate.removed] — all
    under the metrics scope given at creation (the server passes its
    ["service"] scope). *)

type t

val create : ?metrics:Urm_obs.Metrics.t -> capacity:int -> unit -> t

(** [key ~session ~query ~algorithm ~variant] — [variant] distinguishes
    evaluation modes sharing a query, e.g. ["exact"], ["topk:5"],
    ["threshold:0.3"]. *)
val key :
  session:Session.t -> query:Urm.Query.t -> algorithm:string -> variant:string ->
  string

val find : t -> string -> Urm_util.Json.t option

(** [add t ?guard ~deps key payload] — [deps] the stored relations the
    answer read; [guard] (default always-true) runs under the cache lock
    and vetoes the insert when it returns [false]. *)
val add :
  t -> ?guard:(unit -> bool) -> deps:string list -> string -> Urm_util.Json.t ->
  unit

type scope =
  | All  (** the session's whole entry set (mapping-set mutations) *)
  | Relations of string list  (** entries reading any of these relations *)

(** [invalidate t ~fingerprint scope] removes the matching entries of the
    session with that fingerprint and returns how many were removed. *)
val invalidate : t -> fingerprint:string -> scope -> int

val stats : t -> int * int * int  (** (hits, misses, evictions) *)

(** (selective, wholesale, removed-entry) invalidation counts. *)
val invalidation_stats : t -> int * int * int
