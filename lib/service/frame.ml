module Json = Urm_util.Json

type t =
  | Hello of string
  | Hello_ack of int
  | Request of string
  | Reply of string
  | Batch of string list
  | Batch_reply of string list
  | Credit of int
  | Proto_error of string * string

let magic = '\xF5'
let version = 1
let max_payload = 1 lsl 26

type error =
  | Truncated
  | Bad_magic of char
  | Bad_crc
  | Bad_version of int
  | Bad_tag of int
  | Oversized of int
  | Bad_payload of string

let error_code = function
  | Truncated -> "truncated"
  | Bad_magic _ -> "bad_magic"
  | Bad_crc -> "bad_crc"
  | Bad_version _ -> "version_skew"
  | Bad_tag _ -> "bad_tag"
  | Oversized _ -> "frame_too_large"
  | Bad_payload _ -> "bad_payload"

let error_message = function
  | Truncated -> "input ended inside a frame"
  | Bad_magic c -> Printf.sprintf "expected magic 0xF5, got 0x%02X" (Char.code c)
  | Bad_crc -> "header checksum mismatch"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d (want %d)" v version
  | Bad_tag t -> Printf.sprintf "unknown frame tag 0x%02X" t
  | Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds the %d limit" n max_payload
  | Bad_payload m -> "malformed payload: " ^ m

exception Err of error

let tag_of = function
  | Hello _ -> 0x01
  | Hello_ack _ -> 0x02
  | Request _ -> 0x03
  | Reply _ -> 0x04
  | Batch _ -> 0x05
  | Batch_reply _ -> 0x06
  | Credit _ -> 0x07
  | Proto_error _ -> 0x08

(* ------------------------------------------------------------------ *)
(* Varints (unsigned LEB128) *)

let add_varint buf n =
  if n < 0 then invalid_arg "Frame: negative varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* [read_varint byte] where [byte] yields the next input byte; raises
   [Err] on overlong encodings. Five bytes (35 value bits) bound every
   frame length, batch count and credit value far beyond [max_payload],
   and the cap keeps a crafted 9-byte encoding (0x80 x8 then a high
   final byte) from overflowing OCaml's 63-bit int into a negative
   length that would slip past the [> max_payload] checks. *)
let read_varint byte =
  let value = ref 0 and shift = ref 0 and count = ref 0 in
  let continue = ref true in
  while !continue do
    let b = Char.code (byte ()) in
    incr count;
    if !count > 5 then raise (Err (Oversized max_int));
    value := !value lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !value

(* ------------------------------------------------------------------ *)
(* Payload codecs per tag *)

let varint_payload n =
  let buf = Buffer.create 4 in
  add_varint buf n;
  Buffer.contents buf

let list_payload items =
  let buf = Buffer.create 256 in
  add_varint buf (List.length items);
  List.iter
    (fun s ->
      add_varint buf (String.length s);
      Buffer.add_string buf s)
    items;
  Buffer.contents buf

let payload_of = function
  | Hello info -> info
  | Hello_ack credit -> varint_payload credit
  | Request doc | Reply doc -> doc
  | Batch items | Batch_reply items -> list_payload items
  | Credit n -> varint_payload n
  | Proto_error (code, message) ->
    Json.to_string
      (Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ])

(* Truncation inside a payload is the payload's own malformation
   ([Bad_payload]), not the frame's ([Truncated]): the frame length was
   honoured, its contents were not. *)
let varint_of_payload s =
  let i = ref 0 in
  let byte () =
    if !i >= String.length s then raise (Err (Bad_payload "payload ends early"))
    else begin
      let c = s.[!i] in
      incr i;
      c
    end
  in
  let v = try read_varint byte with Err (Oversized _) -> raise (Err (Bad_payload "varint too long")) in
  if !i <> String.length s then raise (Err (Bad_payload "trailing bytes after varint"));
  v

let list_of_payload s =
  let i = ref 0 in
  let byte () =
    if !i >= String.length s then raise (Err (Bad_payload "payload ends early"))
    else begin
      let c = s.[!i] in
      incr i;
      c
    end
  in
  let varint () =
    try read_varint byte with Err (Oversized _) -> raise (Err (Bad_payload "varint too long"))
  in
  let count = varint () in
  let items = ref [] in
  for _ = 1 to count do
    let len = varint () in
    if len < 0 || !i + len > String.length s then
      raise (Err (Bad_payload "item length beyond payload"));
    items := String.sub s !i len :: !items;
    i := !i + len
  done;
  if !i <> String.length s then
    raise (Err (Bad_payload "trailing bytes after batch items"));
  List.rev !items

let frame_of_tag tag payload =
  match tag with
  | 0x01 -> Hello payload
  | 0x02 -> Hello_ack (varint_of_payload payload)
  | 0x03 -> Request payload
  | 0x04 -> Reply payload
  | 0x05 -> Batch (list_of_payload payload)
  | 0x06 -> Batch_reply (list_of_payload payload)
  | 0x07 -> Credit (varint_of_payload payload)
  | 0x08 -> (
    match Json.parse payload with
    | Ok j -> (
      match (Json.member "code" j, Json.member "message" j) with
      | Some (Json.Str c), Some (Json.Str m) -> Proto_error (c, m)
      | _ -> raise (Err (Bad_payload "proto-error needs string code and message")))
    | Error m -> raise (Err (Bad_payload m)))
  | t -> raise (Err (Bad_tag t))

(* ------------------------------------------------------------------ *)
(* String codec *)

let add_be32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let encode t =
  let payload = payload_of t in
  if String.length payload > max_payload then
    invalid_arg "Frame.encode: payload exceeds max_payload";
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_char buf magic;
  add_varint buf (String.length payload);
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr (tag_of t));
  let crc = Urm_util.Crc32.digest (Buffer.contents buf) in
  add_be32 buf crc;
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode ?(pos = 0) s =
  let n = String.length s in
  try
    let i = ref pos in
    let byte () =
      if !i >= n then raise (Err Truncated)
      else begin
        let c = s.[!i] in
        incr i;
        c
      end
    in
    let c = byte () in
    if c <> magic then raise (Err (Bad_magic c));
    let len = read_varint byte in
    let ver = Char.code (byte ()) in
    let tag = Char.code (byte ()) in
    let header_len = !i - pos in
    let crc =
      let b3 = Char.code (byte ()) in
      let b2 = Char.code (byte ()) in
      let b1 = Char.code (byte ()) in
      let b0 = Char.code (byte ()) in
      (b3 lsl 24) lor (b2 lsl 16) lor (b1 lsl 8) lor b0
    in
    if crc <> Urm_util.Crc32.digest ~pos ~len:header_len s then
      raise (Err Bad_crc);
    if ver <> version then raise (Err (Bad_version ver));
    if len < 0 || len > max_payload then raise (Err (Oversized len));
    if !i + len > n then raise (Err Truncated);
    let payload = String.sub s !i len in
    i := !i + len;
    Ok (frame_of_tag tag payload, !i)
  with Err e -> Error e

(* ------------------------------------------------------------------ *)
(* Channel codec *)

let read_body ic =
  try
    let hdr = Buffer.create 16 in
    Buffer.add_char hdr magic;
    let byte () =
      let c = input_char ic in
      Buffer.add_char hdr c;
      c
    in
    let len = read_varint byte in
    let ver = Char.code (byte ()) in
    let tag = Char.code (byte ()) in
    let expect = Urm_util.Crc32.digest (Buffer.contents hdr) in
    let crc =
      let b3 = Char.code (input_char ic) in
      let b2 = Char.code (input_char ic) in
      let b1 = Char.code (input_char ic) in
      let b0 = Char.code (input_char ic) in
      (b3 lsl 24) lor (b2 lsl 16) lor (b1 lsl 8) lor b0
    in
    if crc <> expect then raise (Err Bad_crc);
    if ver <> version then raise (Err (Bad_version ver));
    if len < 0 || len > max_payload then raise (Err (Oversized len));
    if tag < 0x01 || tag > 0x08 then raise (Err (Bad_tag tag));
    let payload = really_input_string ic len in
    Ok (frame_of_tag tag payload)
  with
  | Err e -> Error e
  | End_of_file | Sys_error _ -> Error Truncated

let write oc t = output_string oc (encode t)
