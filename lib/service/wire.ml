type mode = Lines | Frames

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  mutable alive : bool;
  mutable mode : mode;
}

let of_fd fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    alive = true;
    mode = Lines;
  }

type event =
  | Line of string
  | Framed of Frame.t
  | Malformed of Frame.error
  | Eof

let recv t =
  match input_char t.ic with
  | exception (End_of_file | Sys_error _) -> Eof
  | c when c = Frame.magic -> (
    t.mode <- Frames;
    match Frame.read_body t.ic with
    | Ok f -> Framed f
    | Error e -> Malformed e)
  | c when t.mode = Frames -> Malformed (Frame.Bad_magic c)
  | c -> (
    (* Line mode: [c] is the first byte of a request line. *)
    match input_line t.ic with
    | rest -> Line (String.make 1 c ^ rest)
    | exception (End_of_file | Sys_error _) -> Line (String.make 1 c))

let send_raw t f =
  Mutex.lock t.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.wlock)
    (fun () ->
      if t.alive then
        try
          f t.oc;
          flush t.oc
        with Sys_error _ | Unix.Unix_error _ -> t.alive <- false)

let send_reply t doc =
  match t.mode with
  | Frames -> send_raw t (fun oc -> Frame.write oc (Frame.Reply doc))
  | Lines ->
    send_raw t (fun oc ->
        output_string oc doc;
        output_char oc '\n')

let send_frame t frame = send_raw t (fun oc -> Frame.write oc frame)

let wake t =
  Mutex.lock t.wlock;
  if t.alive then
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock t.wlock

let teardown t =
  Mutex.lock t.wlock;
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.wlock
