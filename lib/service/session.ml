module Vcatalog = Urm_incr.Vcatalog
module State = Urm_incr.State

type t = {
  name : string;
  fingerprint : string;
  target_name : string;
  target : Urm_relalg.Schema.t;
  vcat : Vcatalog.t;
  seed : int;
  scale : float;
  h : int;
  rows : int;
  incr_states : (string, State.t) Hashtbl.t;
  incr_lock : Mutex.t;
  inv_selective : int Atomic.t;
  inv_wholesale : int Atomic.t;
}

type catalog = {
  sessions : (string, t) Hashtbl.t;
  lock : Mutex.t;
}

let create_catalog () = { sessions = Hashtbl.create 8; lock = Mutex.create () }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let fingerprint_of ~target_name ~seed:sd ~scale ~h mappings =
  let open Urm_util.Fnv in
  let d = seed in
  let d = add_string d target_name in
  let d = add_int d sd in
  let d = add_float d scale in
  let d = add_int d h in
  let d = add_string d (Urm.Mapping_io.to_json mappings) in
  to_hex d

let same_params s ~target_name ~seed ~scale ~h =
  String.equal s.target_name target_name
  && s.seed = seed
  && Float.equal s.scale scale
  && s.h = h

let fingerprint s = s.fingerprint
let snapshot s = Vcatalog.head s.vcat
let ctx s = (snapshot s).Vcatalog.ctx
let mappings s = (snapshot s).Vcatalog.mappings
let epoch s = Vcatalog.epoch s.vcat

let build ?engine ~name ~target_name ~target ~seed ~scale ~h () =
  let pipeline = Urm_workload.Pipeline.create ~seed ~scale () in
  let ctx = Urm_workload.Pipeline.ctx ?engine pipeline target in
  let mappings = Urm_workload.Pipeline.mappings pipeline target ~h in
  (* Indexes must exist before concurrent evaluation: lazy construction
     inside a worker would race (Catalog is a plain Hashtbl).  The same
     discipline holds across mutations — [eager_indexes] makes every
     committed catalog version index its replaced relations up front. *)
  Urm_relalg.Catalog.build_indexes ctx.Urm.Ctx.catalog;
  let fingerprint = fingerprint_of ~target_name ~seed ~scale ~h mappings in
  let name = match name with Some n -> n | None -> String.sub fingerprint 0 12 in
  {
    name;
    fingerprint;
    target_name;
    target;
    vcat = Vcatalog.create ~eager_indexes:true ~ctx ~mappings ();
    seed;
    scale;
    h;
    rows = Urm_workload.Pipeline.instance_rows pipeline;
    incr_states = Hashtbl.create 4;
    incr_lock = Mutex.create ();
    inv_selective = Atomic.make 0;
    inv_wholesale = Atomic.make 0;
  }

let conflict s =
  Error
    (Printf.sprintf
       "session %S already open with different parameters (target %s, \
        seed %d, scale %g, h %d)"
       s.name s.target_name s.seed s.scale s.h)

let open_session c ?name ?engine ?(seed = 42)
    ?(scale = Urm_tpch.Gen.default_scale) ?(h = 100) ~target () =
  match Urm_workload.Targets.by_name target with
  | exception Not_found ->
    Error (Printf.sprintf "unknown target schema %S (Excel|Noris|Paragon)" target)
  | target_schema ->
    let target_name = target in
    (* The build — workload generation plus eager index construction — can
       take seconds, so it must not run under the catalog lock: [find] is
       on the path of every query.  Take the lock only to check, then to
       re-check-and-insert; a concurrent opener of the same name may build
       redundantly, but the first insert wins and the loser adopts it. *)
    let existing =
      locked c (fun () ->
          match Option.bind name (Hashtbl.find_opt c.sessions) with
          | Some s when same_params s ~target_name ~seed ~scale ~h ->
            Some (Ok (s, false))
          | Some s -> Some (conflict s)
          | None -> None)
    in
    (match existing with
    | Some result -> result
    | None ->
      let s =
        build ?engine ~name ~target_name ~target:target_schema ~seed ~scale ~h ()
      in
      locked c (fun () ->
          match Hashtbl.find_opt c.sessions s.name with
          | Some clash when same_params clash ~target_name ~seed ~scale ~h ->
            Ok (clash, false)
          | Some clash -> conflict clash
          | None ->
            Hashtbl.replace c.sessions s.name s;
            Ok (s, true)))

let find c name = locked c (fun () -> Hashtbl.find_opt c.sessions name)

let close c name =
  locked c (fun () ->
      let present = Hashtbl.mem c.sessions name in
      Hashtbl.remove c.sessions name;
      present)

let list c =
  locked c (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) c.sessions [])
  |> List.sort (fun a b -> String.compare a.name b.name)

(* ------------------------------------------------------------------ *)
(* Mutation and maintained answers *)

let mutate s batch = Vcatalog.commit s.vcat batch

let query_deps s q = State.query_deps (snapshot s) q

let with_incr_state ?metrics s q f =
  Mutex.lock s.incr_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock s.incr_lock)
    (fun () ->
      let key = Urm.Query.canonical q in
      let state, status =
        match Hashtbl.find_opt s.incr_states key with
        | None -> (State.build (snapshot s) q, `Built)
        | Some st ->
          let st, status = State.catch_up ?metrics s.vcat st in
          (st, (status :> [ `Built | `Current | `Patched | `Rebuilt ]))
      in
      Hashtbl.replace s.incr_states key state;
      f state status)

let note_invalidation s = function
  | `Selective -> Atomic.incr s.inv_selective
  | `Wholesale -> Atomic.incr s.inv_wholesale

let invalidations s = (Atomic.get s.inv_selective, Atomic.get s.inv_wholesale)

let to_json s =
  let open Urm_util.Json in
  Obj
    [
      ("session", Str s.name);
      ("fingerprint", Str s.fingerprint);
      ("target", Str s.target_name);
      ("seed", Num (float_of_int s.seed));
      ("scale", Num s.scale);
      ("mappings", Num (float_of_int (List.length (mappings s))));
      ("rows", Num (float_of_int s.rows));
      ("epoch", Num (float_of_int (epoch s)));
    ]
