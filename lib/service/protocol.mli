(** The service wire protocol: newline-delimited JSON over a loopback TCP
    socket, or the same JSON documents inside the binary framing of
    {!Frame} (a connection negotiates by its first byte; ND-JSON is the
    fallback, so [urm request] keeps working against any server).

    One request per line, one reply per line.  A request is
    [{"id": <any>, "op": "<name>", "params": {…}}]; the reply echoes the
    id and is either [{"id", "ok": true, "result": …}] or
    [{"id", "ok": false, "error": {"code", "message"}}].  Replies to
    pipelined requests may arrive out of request order (workers complete
    independently); the id is the correlation handle.

    Operations and their parameters are documented in DESIGN.md
    ("Query service"). *)

module Json = Urm_util.Json

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when the client sent none *)
  op : string;
  params : Json.t;  (** an object, or [Null] when omitted *)
}

(** {1 Requests} *)

(** [request ?id ~op params] builds a request value (client side). *)
val request : ?id:Json.t -> op:string -> (string * Json.t) list -> Json.t

(** [parse_request line] — [Error] describes the malformation. *)
val parse_request : string -> (request, string) result

(** Parameter accessors: [None] when absent; [Error] mentions of a present
    but ill-typed parameter are reported as [Failure] by the raw [Json]
    accessors, which the server maps to a [bad_request] reply. *)

val param : request -> string -> Json.t option
val str_param : request -> string -> string option
val int_param : request -> string -> int option
val float_param : request -> string -> float option

(** {1 Replies} *)

(** [ok ~id result] serialised reply line (without the newline). *)
val ok : id:Json.t -> Json.t -> string

(** [error ~id ~code message] — codes in use: [bad_request], [busy],
    [not_found], [conflict], [unavailable], [error], and (from the shard
    router) [shard_unavailable] when a worker process died and its
    replacement was not ready in time. *)
val error : id:Json.t -> code:string -> string -> string

type reply =
  | Ok of Json.t * Json.t  (** id, result *)
  | Err of Json.t * string * string  (** id, code, message *)

val parse_reply : string -> (reply, string) result

(** {1 Values} *)

(** Relational values on the wire: [Null] ↦ JSON null, numbers ↦ numbers,
    strings ↦ strings (ints survive a round-trip exactly; [to_value]
    reads integral numbers back as [Int]). *)

val value_to_json : Urm_relalg.Value.t -> Json.t

val value_of_json : Json.t -> Urm_relalg.Value.t
