(** Length-prefixed binary framing for the service wire.

    A frame is

    {v
    0xF5 | varint payload_len | version (1B) | tag (1B) | crc32 (4B BE) | payload
    v}

    where the length is an unsigned LEB128 varint and the CRC-32 covers
    every header byte before it (magic through tag).  The magic byte
    [0xF5] can never begin a well-formed ND-JSON request line, so a
    server sniffs the first byte of a connection to pick the framing:
    ['{'] (or whitespace) selects the line protocol, [0xF5] the binary
    one — ND-JSON stays available as the negotiated fallback.

    Frame types:
    - [Hello]/[Hello_ack]: feature negotiation; the ack carries the
      server's current admission credit (free queue slots) so a client
      can pipeline without tripping [busy] rejects.
    - [Request]/[Reply]: one {!Protocol} JSON document each.  Requests
      may be pipelined: the server replies per-request (possibly out of
      order; the id correlates).
    - [Batch]/[Batch_reply]: several requests in one frame, executed as
      one job and answered positionally in one frame — the server-side
      batching path for many small queries.
    - [Credit]: explicit backpressure.  A client may send [Credit 0] as
      a probe; the server answers with its free queue slots.  The server
      also volunteers a [Credit] frame whenever it rejects a framed
      request with [busy].
    - [Proto_error]: the server's answer to a malformed frame — sent
      once, then the connection is closed.

    Payloads are capped at {!max_payload} bytes; oversized lengths are
    rejected before any allocation. *)

type t =
  | Hello of string  (** client info, free-form (JSON by convention) *)
  | Hello_ack of int  (** admission credit: free queue slots right now *)
  | Request of string  (** one serialised request document *)
  | Reply of string  (** one serialised reply document *)
  | Batch of string list  (** requests executed as one job *)
  | Batch_reply of string list  (** replies, positionally matching *)
  | Credit of int
  | Proto_error of string * string  (** code, message *)

val magic : char
(** [0xF5]. *)

val version : int
(** Current protocol version, [1].  Frames carrying any other version are
    rejected with {!Bad_version}. *)

val max_payload : int
(** 64 MiB. *)

type error =
  | Truncated  (** input ended inside a frame *)
  | Bad_magic of char
  | Bad_crc
  | Bad_version of int
  | Bad_tag of int
  | Oversized of int  (** declared length beyond {!max_payload} *)
  | Bad_payload of string  (** tag/payload shape mismatch *)

val error_code : error -> string
(** Stable machine-readable code, e.g. ["bad_crc"], ["version_skew"]. *)

val error_message : error -> string

(** {1 String codec} (pure — the qcheck round-trip surface) *)

val encode : t -> string

val decode : ?pos:int -> string -> (t * int, error) result
(** [decode ?pos s] one frame starting at [pos] (default 0); on success
    returns the frame and the offset just past it, so consecutive frames
    decode by chaining.  [Error Truncated] when [s] ends mid-frame. *)

(** {1 Channel codec} *)

val read_body : in_channel -> (t, error) result
(** [read_body ic] one frame whose magic byte was already consumed by the
    caller's sniffing read.  EOF mid-frame is [Error Truncated]; never
    raises [End_of_file]. *)

val write : out_channel -> t -> unit
(** Emit one frame (no flush). *)
