module Json = Urm_util.Json
module Metrics = Urm_obs.Metrics

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  cache_capacity : int;
  send_timeout : float;
  eval_jobs : int;
  engine : Urm_relalg.Compile.engine;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    workers = max 1 (min 4 (Domain.recommended_domain_count () - 1));
    queue_depth = 64;
    cache_capacity = 256;
    send_timeout = 10.;
    eval_jobs = 1;
    engine = Urm_relalg.Compile.Vectorized;
  }

(* Connections live in {!Wire}: line/frame mode sniffing, locked writes,
   wake/teardown — shared with the shard router's accept path. *)
let send conn line = Wire.send_reply conn line

(* ------------------------------------------------------------------ *)
(* Sliding latency window for percentile reporting *)

type ring = {
  buf : float array;
  mutable filled : int;
  mutable next : int;
  rlock : Mutex.t;
}

let ring_create n =
  { buf = Array.make n 0.; filled = 0; next = 0; rlock = Mutex.create () }

let ring_add r x =
  Mutex.lock r.rlock;
  r.buf.(r.next) <- x;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.filled <- min (r.filled + 1) (Array.length r.buf);
  Mutex.unlock r.rlock

let ring_to_list r =
  Mutex.lock r.rlock;
  let out = List.init r.filled (fun i -> r.buf.(i)) in
  Mutex.unlock r.rlock;
  out

(* ------------------------------------------------------------------ *)

(* A batch frame is admitted as one job (one queue slot, one worker):
   its requests execute sequentially and are answered positionally in a
   single [Batch_reply] — the server-side batching path.  Requests that
   failed to parse occupy their slot as pre-rendered error replies. *)
type work =
  | Single of Protocol.request
  | Batched of (Protocol.request, string) result list

type job = { jconn : Wire.t; work : work; enqueued : float }

type t = {
  cfg : config;
  sock : Unix.file_descr;
  bound_port : int;
  session_catalog : Session.catalog;
  cache : Cache.t;
  requests : Metrics.counter;
  rejected : Metrics.counter;
  depth : Metrics.counter;
  request_timer : Metrics.timer;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable conns : Wire.t list;
  mutable readers : Thread.t list;
  conns_lock : Mutex.t;
  lat : ring;
  pool : Urm_par.Pool.t option;
      (* one evaluation pool shared by all worker domains; Pool serialises
         rounds internally, so concurrent requests queue for it in turn *)
  mutable workers : unit Domain.t array;
  mutable acceptor : Thread.t option;
}

let port t = t.bound_port
let sessions t = t.session_catalog

(* Live connection records — the fuzz suite's leak probe: every reader
   that exits (clean EOF or protocol error) removes its record. *)
let connection_count t =
  Mutex.lock t.conns_lock;
  let n = List.length t.conns in
  Mutex.unlock t.conns_lock;
  n

let stop t =
  Mutex.lock t.qlock;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.qcond
  end;
  Mutex.unlock t.qlock

(* ------------------------------------------------------------------ *)
(* Request execution *)

type failure =
  [ `Bad of string | `Not_found of string | `Conflict of string | `Error of string ]

(* Raised inside a snapshot compute when a partial-range query's bounds
   fall outside the snapshot's mapping set — the caller's cached mapping
   count is behind a concurrent mutate.  {!reply_of} surfaces it as the
   typed "stale_range" error code so the shard router can refresh and
   retry without parsing message text. *)
exception Stale_range of string

let algorithm_of_string = function
  | "basic" -> Ok Urm.Algorithms.Basic
  | "e-basic" -> Ok Urm.Algorithms.Ebasic
  | "e-mqo" -> Ok Urm.Algorithms.Emqo
  | "q-sharing" -> Ok Urm.Algorithms.Qsharing
  | "o-sharing" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Sef)
  | "o-sharing-snf" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Snf)
  | "o-sharing-random" -> Ok (Urm.Algorithms.Osharing Urm.Eunit.Random)
  | other -> Error (`Bad ("unknown algorithm " ^ other))

let session_of t req : (Session.t, failure) result =
  match Protocol.str_param req "session" with
  | None -> Error (`Bad "missing \"session\"")
  | Some name -> (
    match Session.find t.session_catalog name with
    | Some s -> Ok s
    | None -> Error (`Not_found (Printf.sprintf "unknown session %S" name)))

let query_of (session : Session.t) req : (Urm.Query.t, failure) result =
  match (Protocol.str_param req "query", Protocol.str_param req "sql") with
  | Some _, Some _ -> Error (`Bad "give either \"query\" or \"sql\", not both")
  | None, None -> Error (`Bad "missing \"query\" or \"sql\"")
  | Some name, None -> (
    match Urm_workload.Queries.by_name name with
    | exception Not_found -> Error (`Not_found ("unknown query " ^ name))
    | target, q ->
      if String.equal target.Urm_relalg.Schema.sname session.Session.target.Urm_relalg.Schema.sname
      then Ok q
      else
        Error
          (`Bad
            (Printf.sprintf "query %s targets schema %s, session %S is over %s"
               name target.Urm_relalg.Schema.sname session.Session.name
               session.Session.target_name)))
  | None, Some text -> (
    match Urm.Sql.parse ~name:"wire" ~target:session.Session.target text with
    | Ok q -> Ok q
    | Error e -> Error (`Bad (Format.asprintf "%a" Urm.Sql.pp_error e)))

let answers_json answer limit =
  Json.Arr
    (List.map
       (fun (tuple, p) ->
         Json.Obj
           [
             ( "tuple",
               Json.Arr (List.map Protocol.value_to_json (Array.to_list tuple)) );
             ("prob", Json.Num p);
           ])
       (Urm.Answer.top_k answer limit))

let with_cached payload cached =
  match payload with
  | Json.Obj fields -> Json.Obj (fields @ [ ("cached", Json.Bool cached) ])
  | other -> other

let answers_limit req =
  Option.value ~default:20 (Protocol.int_param req "answers")

(* Cached-or-computed evaluation: [variant] makes the cache key, [compute]
   builds the payload on a miss over one pinned snapshot.  The insert is
   guarded by an epoch re-check under the cache lock, so an answer computed
   over a pre-mutation snapshot can never be published after the mutation's
   invalidation ran ([exec_mutate] commits, then invalidates). *)
let cached_eval t session q ~algorithm ~variant compute =
  let key = Cache.key ~session ~query:q ~algorithm ~variant in
  match Cache.find t.cache key with
  | Some payload -> with_cached payload true
  | None ->
    let snap = Session.snapshot session in
    let payload = compute snap in
    Cache.add t.cache key payload
      ~deps:(Urm_incr.State.query_deps snap q)
      ~guard:(fun () ->
        Session.epoch session = snap.Urm_incr.Vcatalog.epoch);
    with_cached payload false

(* Partial evaluation over a contiguous mapping range [lo, hi): the shard
   router's fan-out unit for the [basic] algorithm.  The reply carries one
   answer per mapping (ascending), so the router can replay [urm_par]'s
   per-item ascending merge exactly and recombine bit-identically to a
   single-process evaluation at any shard count.  Per-range subtotals
   would not be enough — float addition is non-associative, so only the
   per-item parts pin the grouping. *)
let exec_query_partial t session q ~alg_name ~lo ~hi : (Json.t, failure) result =
  if not (String.equal alg_name "basic") then
    Error (`Bad "partial range evaluation supports only algorithm \"basic\"")
  else if lo < 0 || hi < lo then
    Error (`Bad "\"range_lo\"/\"range_hi\" must satisfy 0 <= lo <= hi")
  else
    let variant = Printf.sprintf "partial:%d:%d" lo hi in
    Ok
      (cached_eval t session q ~algorithm:alg_name ~variant (fun snap ->
           let ctx = snap.Urm_incr.Vcatalog.ctx
           and mappings = snap.Urm_incr.Vcatalog.mappings in
           let n = List.length mappings in
           if hi > n then
             raise
               (Stale_range
                  (Printf.sprintf "range [%d, %d) outside the %d mappings" lo hi n));
           let header = Urm.Reformulate.output_header q in
           let ms = Array.of_list mappings in
           let parts =
             List.init (hi - lo) (fun j ->
                 let ctrs = Urm_relalg.Eval.fresh_counters () in
                 let acc = Urm.Answer.create header in
                 Urm.Basic.accumulate ~ctrs ctx q acc [ ms.(lo + j) ];
                 Json.Obj
                   [
                     ("m", Json.Num (float_of_int (lo + j)));
                     ("answers", answers_json acc max_int);
                     ("null_prob", Json.Num (Urm.Answer.null_prob acc));
                   ])
           in
           Json.Obj
             [
               ("query", Json.Str (Urm.Query.to_string q));
               ("algorithm", Json.Str "basic");
               ( "range",
                 Json.Obj
                   [
                     ("lo", Json.Num (float_of_int lo));
                     ("hi", Json.Num (float_of_int hi));
                   ] );
               ("output", Json.Arr (List.map (fun c -> Json.Str c) header));
               ("partials", Json.Arr parts);
             ]))

(* Partial evaluation of the sharing algorithms: the shard router fans the
   distinct e-unit list instead of the mapping range.  Every worker holds
   every session, so each worker derives the same unit list deterministically
   and evaluates its contiguous chunk [slot·n/slots, (slot+1)·n/slots).  The
   reply carries one answer per e-unit (ascending), so the router's
   ascending-slot merge replays the factorized executor's per-unit bucket
   additions exactly and recombines bit-identically to a single process at
   any shard count.  [expect_h] is the router's cached mapping count — a
   mismatch means a mutate raced the fan-out and surfaces as the typed
   [stale_range] error, same refresh-and-retry discipline as the basic
   range fan-out. *)
let unit_fan_algorithms = [ "e-basic"; "e-mqo"; "q-sharing" ]

let exec_query_units t session q ~alg_name ~slot ~slots ~expect_h :
    (Json.t, failure) result =
  if not (List.mem alg_name unit_fan_algorithms) then
    Error
      (`Bad
        "e-unit slot evaluation supports only algorithms \"e-basic\", \
         \"e-mqo\" and \"q-sharing\"")
  else if slots <= 0 || slot < 0 || slot >= slots then
    Error (`Bad "\"slot\"/\"slots\" must satisfy 0 <= slot < slots")
  else
    let variant = Printf.sprintf "units:%d:%d:%d" slot slots expect_h in
    Ok
      (cached_eval t session q ~algorithm:alg_name ~variant (fun snap ->
           let ctx = snap.Urm_incr.Vcatalog.ctx
           and mappings = snap.Urm_incr.Vcatalog.mappings in
           let h = List.length mappings in
           if expect_h >= 0 && expect_h <> h then
             raise
               (Stale_range
                  (Printf.sprintf "expected %d mappings, session has %d"
                     expect_h h));
           let units =
             match alg_name with
             | "q-sharing" ->
               Urm.Factorized.singleton_units ctx q
                 (Urm.Qsharing.representatives ctx q mappings)
             | _ -> Urm.Factorized.weighted_units ctx q mappings
           in
           let n = List.length units in
           let lo = slot * n / slots and hi = (slot + 1) * n / slots in
           let header = Urm.Reformulate.output_header q in
           let ua = Array.of_list units in
           let parts =
             List.init (hi - lo) (fun j ->
                 let i = lo + j in
                 let ctrs = Urm_relalg.Eval.fresh_counters () in
                 let acc =
                   (Urm.Factorized.eval ~ctrs ctx q [ ua.(i) ])
                     .Urm.Factorized.answer
                 in
                 Json.Obj
                   [
                     ("u", Json.Num (float_of_int i));
                     ("answers", answers_json acc max_int);
                     ("null_prob", Json.Num (Urm.Answer.null_prob acc));
                   ])
           in
           Json.Obj
             [
               ("query", Json.Str (Urm.Query.to_string q));
               ("algorithm", Json.Str alg_name);
               ("units", Json.Num (float_of_int n));
               ( "slot",
                 Json.Obj
                   [
                     ("index", Json.Num (float_of_int slot));
                     ("of", Json.Num (float_of_int slots));
                   ] );
               ("output", Json.Arr (List.map (fun c -> Json.Str c) header));
               ("partials", Json.Arr parts);
             ]))

let exec_query t req : (Json.t, failure) result =
  match session_of t req with
  | Error _ as e -> e
  | Ok session -> (
    match query_of session req with
    | Error _ as e -> e
    | Ok q -> (
      let alg_name =
        Option.value ~default:"o-sharing" (Protocol.str_param req "algorithm")
      in
      let limit = answers_limit req in
      match
        ( Protocol.int_param req "range_lo",
          Protocol.int_param req "range_hi",
          Protocol.int_param req "slot",
          Protocol.int_param req "slots" )
      with
      | _, _, Some slot, Some slots ->
        let expect_h =
          Option.value ~default:(-1) (Protocol.int_param req "expect_h")
        in
        exec_query_units t session q ~alg_name ~slot ~slots ~expect_h
      | _, _, Some _, None | _, _, None, Some _ ->
        Error (`Bad "give both \"slot\" and \"slots\", or neither")
      | Some lo, Some hi, None, None ->
        exec_query_partial t session q ~alg_name ~lo ~hi
      | Some _, None, None, None | None, Some _, None, None ->
        Error (`Bad "give both \"range_lo\" and \"range_hi\", or neither")
      | None, None, None, None ->
      if String.equal alg_name "incr" then
        (* The maintained answer: built on first use, patched forward by
           delta evaluation on every later one.  Always fresh at the
           catalog head, so it bypasses the LRU cache entirely. *)
        Ok
          (Session.with_incr_state session q (fun state status ->
               let answer = Urm_incr.State.answer state in
               Json.Obj
                 [
                   ("query", Json.Str (Urm.Query.to_string q));
                   ("algorithm", Json.Str "incr");
                   ("epoch", Json.Num (float_of_int (Urm_incr.State.epoch state)));
                   ( "status",
                     Json.Str
                       (match status with
                       | `Built -> "built"
                       | `Current -> "current"
                       | `Patched -> "patched"
                       | `Rebuilt -> "rebuilt") );
                   ( "shapes",
                     Json.Num (float_of_int (Urm_incr.State.shape_count state)) );
                   ("size", Json.Num (float_of_int (Urm.Answer.size answer)));
                   ("null_prob", Json.Num (Urm.Answer.null_prob answer));
                   ("answers", answers_json answer limit);
                 ]))
      else
        match algorithm_of_string alg_name with
      | Error _ as e -> e
      | Ok alg ->
        let variant = "exact:" ^ string_of_int limit in
        Ok
          (cached_eval t session q ~algorithm:alg_name ~variant (fun snap ->
               let ctx = snap.Urm_incr.Vcatalog.ctx
               and mappings = snap.Urm_incr.Vcatalog.mappings in
               let report =
                 match t.pool with
                 | Some pool -> Urm_par.Drivers.run ~pool alg ctx q mappings
                 | None -> Urm.Algorithms.run alg ctx q mappings
               in
               let answer = report.Urm.Report.answer in
               Json.Obj
                 [
                   ("query", Json.Str (Urm.Query.to_string q));
                   ("algorithm", Json.Str alg_name);
                   ("size", Json.Num (float_of_int (Urm.Answer.size answer)));
                   ("null_prob", Json.Num (Urm.Answer.null_prob answer));
                   ("answers", answers_json answer limit);
                   ( "seconds",
                     Json.Num (Urm.Report.total report.Urm.Report.timings) );
                 ]))))

let exec_topk t req : (Json.t, failure) result =
  match session_of t req with
  | Error _ as e -> e
  | Ok session -> (
    match query_of session req with
    | Error _ as e -> e
    | Ok q ->
      let k = Option.value ~default:5 (Protocol.int_param req "k") in
      if k <= 0 then Error (`Bad "\"k\" must be positive")
      else
        let variant = "topk:" ^ string_of_int k in
        Ok
          (cached_eval t session q ~algorithm:"topk" ~variant (fun snap ->
               let r =
                 Urm.Topk.run ~k snap.Urm_incr.Vcatalog.ctx q
                   snap.Urm_incr.Vcatalog.mappings
               in
               let answer = r.Urm.Topk.report.Urm.Report.answer in
               Json.Obj
                 [
                   ("query", Json.Str (Urm.Query.to_string q));
                   ("k", Json.Num (float_of_int k));
                   ("answers", answers_json answer k);
                   ("stopped_early", Json.Bool r.Urm.Topk.stopped_early);
                   ( "visited_eunits",
                     Json.Num (float_of_int r.Urm.Topk.visited_eunits) );
                 ])))

let exec_threshold t req : (Json.t, failure) result =
  match session_of t req with
  | Error _ as e -> e
  | Ok session -> (
    match query_of session req with
    | Error _ as e -> e
    | Ok q -> (
      match Protocol.float_param req "tau" with
      | None -> Error (`Bad "missing \"tau\"")
      | Some tau when not (tau > 0. && tau <= 1.) ->
        Error (`Bad "\"tau\" must lie in (0, 1]")
      | Some tau ->
        let variant = Printf.sprintf "threshold:%h" tau in
        Ok
          (cached_eval t session q ~algorithm:"threshold" ~variant (fun snap ->
               let r =
                 Urm.Threshold.run ~tau snap.Urm_incr.Vcatalog.ctx q
                   snap.Urm_incr.Vcatalog.mappings
               in
               let answer = r.Urm.Threshold.report.Urm.Report.answer in
               Json.Obj
                 [
                   ("query", Json.Str (Urm.Query.to_string q));
                   ("tau", Json.Num tau);
                   ("answers", answers_json answer max_int);
                   ("stopped_early", Json.Bool r.Urm.Threshold.stopped_early);
                 ]))))

(* Anytime approximate evaluation.  The cache key's variant encodes every
   parameter the sampled result depends on — mode, k/τ, δ, ε, budget and
   seed — so distinct budgets never alias (the run is deterministic in
   those, making the cached payload exact replay). *)
let exec_approx t req : (Json.t, failure) result =
  match session_of t req with
  | Error _ as e -> e
  | Ok session -> (
    match query_of session req with
    | Error _ as e -> e
    | Ok q -> (
      let module B = Urm_anytime.Budget in
      let k = Protocol.int_param req "k" in
      let tau = Protocol.float_param req "tau" in
      let delta = Option.value ~default:0.05 (Protocol.float_param req "delta") in
      let epsilon =
        Option.value ~default:0.02 (Protocol.float_param req "epsilon")
      in
      let samples =
        Option.value ~default:100_000 (Protocol.int_param req "samples")
      in
      let deadline = Protocol.float_param req "deadline" in
      let seed = Option.value ~default:17 (Protocol.int_param req "seed") in
      let limit = answers_limit req in
      let budget =
        {
          B.default with
          B.max_samples = (if samples <= 0 then None else Some samples);
          deadline;
          delta;
          epsilon;
        }
      in
      match B.validate budget with
      | exception Invalid_argument m -> Error (`Bad m)
      | () -> (
        let intervals_json report =
          match report.Urm.Report.intervals with
          | None -> Json.Arr []
          | Some bounds ->
            Json.Arr
              (List.filteri
                 (fun i _ -> i < limit)
                 bounds
              |> List.map (fun (tuple, (lo, hi)) ->
                     Json.Obj
                       [
                         ( "tuple",
                           Json.Arr
                             (List.map Protocol.value_to_json
                                (Array.to_list tuple)) );
                         ("lo", Json.Num lo);
                         ("hi", Json.Num hi);
                       ]))
        in
        let base mode report samples shapes stop extra =
          let answer = report.Urm.Report.answer in
          Json.Obj
            ([
               ("query", Json.Str (Urm.Query.to_string q));
               ("mode", Json.Str mode);
               ("delta", Json.Num delta);
               ("samples", Json.Num (float_of_int samples));
               ("shapes", Json.Num (float_of_int shapes));
               ("stop_reason", Json.Str (B.stop_reason_name stop));
               ("size", Json.Num (float_of_int (Urm.Answer.size answer)));
               ("answers", answers_json answer limit);
               ("intervals", intervals_json report);
             ]
            @ extra)
        in
        let variant =
          Printf.sprintf "approx:%s:%h:%h:%d:%s:%d"
            (match (k, tau) with
            | Some k, None -> "topk=" ^ string_of_int k
            | None, Some tau -> Printf.sprintf "tau=%h" tau
            | _ -> "estimate")
            delta epsilon samples
            (match deadline with None -> "-" | Some d -> Printf.sprintf "%h" d)
            seed
        in
        match (k, tau) with
        | Some _, Some _ -> Error (`Bad "give either \"k\" or \"tau\", not both")
        | Some k, None when k <= 0 -> Error (`Bad "\"k\" must be positive")
        | None, Some tau when not (tau > 0. && tau <= 1.) ->
          Error (`Bad "\"tau\" must lie in (0, 1]")
        | Some k, None ->
          Ok
            (cached_eval t session q ~algorithm:"approx" ~variant (fun snap ->
                 let r =
                   Urm_anytime.Topk.run ~seed ~budget ~k
                     snap.Urm_incr.Vcatalog.ctx q snap.Urm_incr.Vcatalog.mappings
                 in
                 base "topk" r.Urm_anytime.Topk.report
                   r.Urm_anytime.Topk.samples r.Urm_anytime.Topk.shapes
                   r.Urm_anytime.Topk.stop_reason
                   [
                     ("k", Json.Num (float_of_int k));
                     ( "stopped_early",
                       Json.Bool r.Urm_anytime.Topk.stopped_early );
                   ]))
        | None, Some tau ->
          Ok
            (cached_eval t session q ~algorithm:"approx" ~variant (fun snap ->
                 let r =
                   Urm_anytime.Threshold.run ~seed ~budget ~tau
                     snap.Urm_incr.Vcatalog.ctx q snap.Urm_incr.Vcatalog.mappings
                 in
                 base "threshold" r.Urm_anytime.Threshold.report
                   r.Urm_anytime.Threshold.samples
                   r.Urm_anytime.Threshold.shapes
                   r.Urm_anytime.Threshold.stop_reason
                   [
                     ("tau", Json.Num tau);
                     ( "stopped_early",
                       Json.Bool r.Urm_anytime.Threshold.stopped_early );
                     ( "undecided",
                       Json.Num
                         (float_of_int r.Urm_anytime.Threshold.undecided) );
                   ]))
        | None, None ->
          Ok
            (cached_eval t session q ~algorithm:"approx" ~variant (fun snap ->
                 let r =
                   Urm_anytime.Estimator.run ~seed ~budget
                     snap.Urm_incr.Vcatalog.ctx q snap.Urm_incr.Vcatalog.mappings
                 in
                 let lo, hi = r.Urm_anytime.Estimator.null_interval in
                 base "estimate" r.Urm_anytime.Estimator.report
                   r.Urm_anytime.Estimator.samples
                   r.Urm_anytime.Estimator.shapes
                   r.Urm_anytime.Estimator.stop_reason
                   [
                     ( "null_interval",
                       Json.Obj [ ("lo", Json.Num lo); ("hi", Json.Num hi) ] );
                     ("unseen_hi", Json.Num r.Urm_anytime.Estimator.unseen_hi);
                   ])))))

(* Commit a mutation batch, then invalidate the answer cache before
   replying: any query issued after this reply observes the new epoch, so
   serving it a pre-mutation cached answer is impossible (queries already
   in flight may legitimately answer over the snapshot they pinned).
   Data-only batches invalidate selectively — only entries whose answer
   read a touched relation; mapping-set changes invalidate the session
   wholesale, since every answer depends on the mapping probabilities. *)
let exec_mutate t req : (Json.t, failure) result =
  match session_of t req with
  | Error _ as e -> e
  | Ok session -> (
    match Protocol.param req "mutations" with
    | None -> Error (`Bad "missing \"mutations\"")
    | Some json -> (
      match Urm_incr.Mutation.batch_of_json json with
      | Error m -> Error (`Bad m)
      | Ok [] -> Error (`Bad "\"mutations\" must be non-empty")
      | Ok batch -> (
        match Session.mutate session batch with
        | Error m -> Error (`Conflict m)
        | Ok out ->
          let scope, kind =
            if out.Urm_incr.Vcatalog.mappings_changed then
              (Cache.All, `Wholesale)
            else (Cache.Relations out.Urm_incr.Vcatalog.touched, `Selective)
          in
          let removed =
            Cache.invalidate t.cache
              ~fingerprint:(Session.fingerprint session)
              scope
          in
          Session.note_invalidation session kind;
          Ok
            (Json.Obj
               [
                 ("session", Json.Str session.Session.name);
                 ( "epoch",
                   Json.Num
                     (float_of_int
                        out.Urm_incr.Vcatalog.snapshot.Urm_incr.Vcatalog.epoch) );
                 ( "applied",
                   Json.Num
                     (float_of_int (List.length out.Urm_incr.Vcatalog.resolved))
                 );
                 ( "touched",
                   Json.Arr
                     (List.map
                        (fun r -> Json.Str r)
                        out.Urm_incr.Vcatalog.touched) );
                 ( "mappings_changed",
                   Json.Bool out.Urm_incr.Vcatalog.mappings_changed );
                 ( "invalidation",
                   Json.Obj
                     [
                       ( "scope",
                         Json.Str
                           (match kind with
                           | `Wholesale -> "wholesale"
                           | `Selective -> "selective") );
                       ("removed", Json.Num (float_of_int removed));
                     ] );
                 ( "mutations",
                   Urm_incr.Mutation.batch_to_json out.Urm_incr.Vcatalog.resolved
                 );
               ]))))

let exec_open_session t req : (Json.t, failure) result =
  match Protocol.str_param req "target" with
  | None -> Error (`Bad "missing \"target\"")
  | Some target -> (
    let name = Protocol.str_param req "session" in
    let seed = Protocol.int_param req "seed" in
    let scale = Protocol.float_param req "scale" in
    let h = Protocol.int_param req "h" in
    match
      Session.open_session t.session_catalog ?name ~engine:t.cfg.engine ?seed
        ?scale ?h ~target ()
    with
    | Error msg -> Error (`Conflict msg)
    | Ok (s, created) -> (
      match Session.to_json s with
      | Json.Obj fields -> Ok (Json.Obj (fields @ [ ("created", Json.Bool created) ]))
      | other -> Ok other))

(* Totalised percentiles ({!Urm_util.Stats.percentile_or_zero}): the ring
   may legitimately have [filled = 0] — a server polled before its first
   request, or an idle shard inside a roll-up — and must report 0 rather
   than raise into the metrics path. *)
let latency_summary t =
  let lats = ring_to_list t.lat in
  let p q = Urm_util.Stats.percentile_or_zero q lats in
  (List.length lats, p 0.5, p 0.95, p 0.99)

let exec_metrics t : Json.t =
  let count, p50, p95, p99 = latency_summary t in
  let hits, misses, evictions = Cache.stats t.cache in
  let num f = Json.Num (float_of_int f) in
  Json.Obj
    [
      ("requests", num (Metrics.value t.requests));
      ( "latency",
        Json.Obj
          [
            ("count", num count);
            ("p50", Json.Num p50);
            ("p95", Json.Num p95);
            ("p99", Json.Num p99);
            ("mean", Json.Num (Urm_util.Stats.mean (ring_to_list t.lat)));
          ] );
      ( "cache",
        let selective, wholesale, removed = Cache.invalidation_stats t.cache in
        Json.Obj
          [
            ("hit", num hits);
            ("miss", num misses);
            ("evict", num evictions);
            ( "invalidate",
              Json.Obj
                [
                  ("selective", num selective);
                  ("wholesale", num wholesale);
                  ("removed", num removed);
                ] );
          ] );
      (* Per-session mutation-driven invalidation counts. *)
      ( "invalidations",
        Json.Obj
          (List.map
             (fun s ->
               let selective, wholesale = Session.invalidations s in
               ( s.Session.name,
                 Json.Obj
                   [
                     ("selective", num selective);
                     ("wholesale", num wholesale);
                     ("epoch", num (Session.epoch s));
                   ] ))
             (Session.list t.session_catalog)) );
      (* Plan-cache totals across open sessions (each context owns one). *)
      ( "plan_cache",
        let hit, miss, evict =
          List.fold_left
            (fun (h, m, e) s ->
              let h', m', e' = Urm.Ctx.plan_stats (Session.ctx s) in
              (h + h', m + m', e + e'))
            (0, 0, 0)
            (Session.list t.session_catalog)
        in
        Json.Obj [ ("hit", num hit); ("miss", num miss); ("evict", num evict) ] );
      ( "queue",
        Json.Obj
          [
            ("depth", num (Metrics.value t.depth));
            ("rejected", num (Metrics.value t.rejected));
          ] );
      ("sessions", num (List.length (Session.list t.session_catalog)));
    ]

let execute t (req : Protocol.request) : (Json.t, failure) result =
  match req.op with
  | "ping" -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | "open-session" -> exec_open_session t req
  | "close-session" -> (
    match Protocol.str_param req "session" with
    | None -> Error (`Bad "missing \"session\"")
    | Some name ->
      if Session.close t.session_catalog name then
        Ok (Json.Obj [ ("closed", Json.Str name) ])
      else Error (`Not_found (Printf.sprintf "unknown session %S" name)))
  | "sessions" ->
    Ok
      (Json.Obj
         [
           ( "sessions",
             Json.Arr (List.map Session.to_json (Session.list t.session_catalog)) );
         ])
  | "query" -> exec_query t req
  | "mutate" -> exec_mutate t req
  | "topk" -> exec_topk t req
  | "threshold" -> exec_threshold t req
  | "approx" -> exec_approx t req
  | "metrics" -> Ok (exec_metrics t)
  | "shutdown" ->
    stop t;
    Ok (Json.Obj [ ("draining", Json.Bool true) ])
  | other -> Error (`Bad ("unknown op " ^ other))

(* ------------------------------------------------------------------ *)
(* Executor pool *)

let reply_of t (req : Protocol.request) =
  let id = req.Protocol.id in
  match execute t req with
  | Ok result -> Protocol.ok ~id result
  | Error (`Bad m) -> Protocol.error ~id ~code:"bad_request" m
  | Error (`Not_found m) -> Protocol.error ~id ~code:"not_found" m
  | Error (`Conflict m) -> Protocol.error ~id ~code:"conflict" m
  | Error (`Error m) -> Protocol.error ~id ~code:"error" m
  | exception Stale_range m -> Protocol.error ~id ~code:"stale_range" m
  | exception Failure m -> Protocol.error ~id ~code:"bad_request" m
  | exception Invalid_argument m -> Protocol.error ~id ~code:"bad_request" m
  | exception Not_found -> Protocol.error ~id ~code:"not_found" "not found"
  | exception exn -> Protocol.error ~id ~code:"error" (Printexc.to_string exn)

let handle t job =
  let executed =
    match job.work with
    | Single req ->
      send job.jconn (reply_of t req);
      1
    | Batched items ->
      let replies =
        List.map
          (function Ok req -> reply_of t req | Error pre -> pre)
          items
      in
      Wire.send_frame job.jconn (Frame.Batch_reply replies);
      List.length items
  in
  let dt = Urm_util.Timer.now () -. job.enqueued in
  Metrics.record t.request_timer dt;
  Metrics.incr ~by:executed t.requests;
  ring_add t.lat dt

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.qlock (* drained, stopping *)
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.qlock;
      Metrics.incr ~by:(-1) t.depth;
      handle t job;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Admission and connection readers *)

(* Free admission slots right now — the credit value of [Hello_ack] and
   [Credit] frames.  Advisory: a snapshot, not a reservation. *)
let free_slots t =
  Mutex.lock t.qlock;
  let n = max 0 (t.cfg.queue_depth - Queue.length t.queue) in
  Mutex.unlock t.qlock;
  n

let reject work conn ~code ~message =
  let err (req : Protocol.request) =
    Protocol.error ~id:req.Protocol.id ~code message
  in
  match work with
  | Single req -> send conn (err req)
  | Batched items ->
    Wire.send_frame conn
      (Frame.Batch_reply
         (List.map (function Ok req -> err req | Error pre -> pre) items))

let enqueue t conn work =
  Mutex.lock t.qlock;
  if t.stopping then begin
    Mutex.unlock t.qlock;
    reject work conn ~code:"unavailable" ~message:"server is draining"
  end
  else if Queue.length t.queue >= t.cfg.queue_depth then begin
    Mutex.unlock t.qlock;
    Metrics.incr t.rejected;
    reject work conn ~code:"busy" ~message:"admission queue is full";
    (* Explicit backpressure for framed clients: volunteer the current
       credit alongside the rejection so a pipelining sender can pace
       itself instead of spinning on [busy]. *)
    if conn.Wire.mode = Wire.Frames then
      Wire.send_frame conn (Frame.Credit (free_slots t))
  end
  else begin
    Queue.push { jconn = conn; work; enqueued = Urm_util.Timer.now () } t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qlock;
    Metrics.incr t.depth
  end

let reader t conn =
  let parse_item doc =
    match Protocol.parse_request doc with
    | Ok req -> Ok req
    | Error msg ->
      Error
        (Protocol.error ~id:Json.Null ~code:"bad_request"
           ("malformed request: " ^ msg))
  in
  let enqueue_doc doc =
    match parse_item doc with
    | Ok req -> enqueue t conn (Single req)
    | Error pre -> send conn pre
  in
  (* Returns [true] to keep reading, [false] to drop the connection. *)
  let step () =
    match Wire.recv conn with
    | Wire.Eof -> false
    | Wire.Line line ->
      if not (String.equal (String.trim line) "") then enqueue_doc line;
      true
    | Wire.Framed (Frame.Request doc) ->
      enqueue_doc doc;
      true
    | Wire.Framed (Frame.Batch docs) ->
      (match List.map parse_item docs with
      | [] -> Wire.send_frame conn (Frame.Batch_reply [])
      | items -> enqueue t conn (Batched items));
      true
    | Wire.Framed (Frame.Hello _) ->
      Wire.send_frame conn (Frame.Hello_ack (free_slots t));
      true
    | Wire.Framed (Frame.Credit _) ->
      Wire.send_frame conn (Frame.Credit (free_slots t));
      true
    | Wire.Framed
        (Frame.Hello_ack _ | Frame.Reply _ | Frame.Batch_reply _
        | Frame.Proto_error _) ->
      Wire.send_frame conn
        (Frame.Proto_error
           ("unexpected_frame", "frame type flows server-to-client only"));
      false
    | Wire.Malformed err ->
      (* Answer the malformation, then close: a corrupted binary stream
         has no resynchronisation point. *)
      Wire.send_frame conn
        (Frame.Proto_error (Frame.error_code err, Frame.error_message err));
      false
  in
  let rec loop () = if step () then loop () in
  loop ();
  Wire.teardown conn;
  (* Drop this connection's record and our own thread handle so a
     long-lived server accepting many short connections doesn't
     accumulate dead entries.  Queued jobs may still reference [conn];
     [send] checks [alive] before writing. *)
  let self = Thread.id (Thread.self ()) in
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers;
  Mutex.unlock t.conns_lock

let acceptor_loop t () =
  let stopping () =
    Mutex.lock t.qlock;
    let s = t.stopping in
    Mutex.unlock t.qlock;
    s
  in
  let rec loop () =
    if stopping () then ()
    else begin
      (* Short select timeout so a drain is noticed promptly even with no
         incoming connections. *)
      (match Unix.select [ t.sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
          (* Bound blocking reply writes: a stalled client whose socket
             buffer fills must not wedge a worker domain forever — the
             timed-out write surfaces as Sys_error in [send], which marks
             the connection dead. *)
          (if t.cfg.send_timeout > 0. then
             try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.send_timeout
             with Unix.Unix_error _ | Invalid_argument _ -> ());
          let conn = Wire.of_fd fd in
          Mutex.lock t.conns_lock;
          t.conns <- conn :: t.conns;
          t.readers <- Thread.create (reader t) conn :: t.readers;
          Mutex.unlock t.conns_lock
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.sock with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

let start ?(metrics = Metrics.scope Metrics.global "service") (cfg : config) =
  if cfg.workers <= 0 then invalid_arg "Server.start: workers must be positive";
  if cfg.queue_depth <= 0 then invalid_arg "Server.start: queue_depth must be positive";
  if cfg.eval_jobs <= 0 then invalid_arg "Server.start: eval_jobs must be positive";
  (* A write to a disconnected client must surface as EPIPE/Sys_error in
     [send] — the default SIGPIPE action would terminate the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen sock 64;
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let t =
    {
      cfg;
      sock;
      bound_port;
      session_catalog = Session.create_catalog ();
      cache = Cache.create ~metrics ~capacity:cfg.cache_capacity ();
      requests = Metrics.counter metrics "requests";
      rejected = Metrics.counter metrics "queue.rejected";
      depth = Metrics.counter metrics "queue.depth";
      request_timer = Metrics.timer metrics "phase.request";
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      conns = [];
      readers = [];
      conns_lock = Mutex.create ();
      lat = ring_create 4096;
      pool =
        (if cfg.eval_jobs > 1 then
           Some (Urm_par.Pool.create ~metrics ~jobs:cfg.eval_jobs ())
         else None);
      workers = [||];
      acceptor = None;
    }
  in
  t.workers <- Array.init cfg.workers (fun _ -> Domain.spawn (worker_loop t));
  t.acceptor <- Some (Thread.create (acceptor_loop t) ());
  t

let wait t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  Array.iter Domain.join t.workers;
  Option.iter Urm_par.Pool.shutdown t.pool;
  Mutex.lock t.conns_lock;
  let conns = t.conns and readers = t.readers in
  t.conns <- [];
  t.readers <- [];
  Mutex.unlock t.conns_lock;
  List.iter Wire.wake conns;
  List.iter Thread.join readers;
  List.iter Wire.teardown conns
