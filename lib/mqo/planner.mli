(** Multi-query optimisation, in the style of Roy et al. (SIGMOD 2000): a
    cost-based greedy search over candidate shared subexpressions with full
    benefit recomputation at each step.

    This is the substrate behind the paper's e-MQO baseline.  The planner
    deliberately performs the expensive global search the paper attributes to
    MQO ("the plan generation process is extremely expensive", §VIII-B.2):
    each greedy iteration re-costs every remaining candidate against the
    current materialisation set, so planning cost grows super-linearly with
    the number of distinct source queries, while the resulting plan executes
    a near-minimal number of operators. *)

type metrics = {
  candidates : int;  (** shareable subexpressions considered *)
  chosen : int;  (** subexpressions selected for materialisation *)
  cost_evaluations : int;  (** total cost-model evaluations performed *)
}

type plan

(** [plan ?stats cat queries] builds a global plan for evaluating all
    [queries] (already optimised or not; the planner normalises them
    itself).  With [stats], the cost model uses per-column statistics
    ({!Urm_relalg.Stats_est}) for selection and join selectivities instead
    of fixed magic constants. *)
val plan :
  ?stats:Urm_relalg.Stats_est.t ->
  Urm_relalg.Catalog.t ->
  Urm_relalg.Algebra.t list ->
  plan

val metrics : plan -> metrics

(** Fingerprints of the chosen shared subexpressions, in evaluation order. *)
val shared : plan -> Urm_relalg.Algebra.t list

(** [execute ?ctrs ?eval cat p] evaluates every input query under the plan,
    materialising shared subexpressions once.  Results are returned in input
    order.  [ctrs] counts operator executions (shared operators count
    once).  [eval] substitutes the expression evaluator (the core library
    passes [Urm.Ctx.eval] so the swapped expressions run through the
    context's engine); defaults to {!Urm_relalg.Eval.eval}. *)
val execute :
  ?ctrs:Urm_relalg.Eval.counters ->
  ?eval:(Urm_relalg.Algebra.t -> Urm_relalg.Relation.t) ->
  Urm_relalg.Catalog.t ->
  plan ->
  (Urm_relalg.Algebra.t * Urm_relalg.Relation.t) list

(** [execute_iter ?ctrs ?eval cat p ~f] like {!execute} but streams each
    query's result to [f index query relation] instead of retaining all
    results (shared materialisations are still cached for the duration). *)
val execute_iter :
  ?ctrs:Urm_relalg.Eval.counters ->
  ?eval:(Urm_relalg.Algebra.t -> Urm_relalg.Relation.t) ->
  Urm_relalg.Catalog.t ->
  plan ->
  f:(int -> Urm_relalg.Algebra.t -> Urm_relalg.Relation.t -> unit) ->
  unit

(** [estimated_total_cost p] the cost model's value for the final plan
    (exposed for tests and ablation). *)
val estimated_total_cost : plan -> float

(** [est_card ?stats cat e] the cost model's cardinality estimate for [e] —
    exposed for {!Dag}'s cheap benefit heuristic. *)
val est_card :
  ?stats:Urm_relalg.Stats_est.t ->
  Urm_relalg.Catalog.t ->
  Urm_relalg.Algebra.t ->
  float

(** [eval_cost ?stats cat e] the cost model's estimate of evaluating [e]
    standalone (no materialised shares). *)
val eval_cost :
  ?stats:Urm_relalg.Stats_est.t ->
  Urm_relalg.Catalog.t ->
  Urm_relalg.Algebra.t ->
  float
