open Urm_relalg

type metrics = { candidates : int; chosen : int; cost_evaluations : int }

type plan = {
  queries : Algebra.t list;  (* optimised, original order *)
  shared_exprs : Algebra.t list;  (* dependency order *)
  plan_metrics : metrics;
  total_cost : float;
}

let metrics p = p.plan_metrics
let shared p = p.shared_exprs
let estimated_total_cost p = p.total_cost

(* ------------------------------------------------------------------ *)
(* Cardinality and cost estimation.  Without statistics the planner uses
   fixed selectivity guesses — it needs relative costs that are stable
   across runs, not accuracy; with statistics ({!Stats_est}) it estimates
   per-predicate selectivities from the data. *)

let selectivity_select = 0.1
let selectivity_join = 0.05

(* Instantiated columns are named ["alias@rel#col"]; recover (rel, col) for
   statistics lookups. *)
let unrename col =
  match (String.index_opt col '@', String.index_opt col '#') with
  | Some at, Some hash when at < hash ->
    Some
      ( String.sub col (at + 1) (hash - at - 1),
        String.sub col (hash + 1) (String.length col - hash - 1) )
  | _ -> None

let pred_selectivity stats p =
  let atom = function
    | Pred.Cmp (Pred.Eq, col, v) -> begin
      match (stats, unrename col) with
      | Some st, Some (rel, c) -> Stats_est.eq_selectivity st rel c v
      | _ -> selectivity_select
    end
    | Pred.CmpCols (Pred.Eq, a, b) -> begin
      match (stats, unrename a, unrename b) with
      | Some st, Some (ra, ca), Some (rb, cb) ->
        Stats_est.join_selectivity st ra ca rb cb
      | _ -> selectivity_join
    end
    | Pred.True -> 1.
    | _ -> 0.3
  in
  match Pred.conjuncts p with
  | [] -> 1.
  | conjs -> List.fold_left (fun acc c -> acc *. atom c) 1. conjs

let rec est_card_with stats cat = function
  | Algebra.Base n -> float_of_int (Relation.cardinality (Catalog.find cat n))
  | Algebra.Mat r -> float_of_int (Relation.cardinality r)
  | Algebra.Rename (_, e) -> est_card_with stats cat e
  | Algebra.Select (p, e) ->
    Float.max 1. (pred_selectivity stats p *. est_card_with stats cat e)
  | Algebra.Project (_, e) | Algebra.Distinct e -> est_card_with stats cat e
  | Algebra.Product (a, b) -> est_card_with stats cat a *. est_card_with stats cat b
  | Algebra.Join (p, a, b) ->
    Float.max 1.
      (pred_selectivity stats p
      *. est_card_with stats cat a
      *. est_card_with stats cat b)
  | Algebra.Aggregate _ -> 1.
  | Algebra.GroupBy (_, _, e) ->
    Float.max 1. (0.1 *. est_card_with stats cat e)

(* Work performed by the operator at the root of [e] (inputs scanned plus
   output produced); leaves are free.  [est] is the cardinality estimator. *)
let node_work est e =
  let inputs = List.fold_left (fun acc c -> acc +. est c) 0. (Algebra.children e) in
  match e with
  | Algebra.Base _ | Algebra.Mat _ | Algebra.Rename _ -> 0.
  | Algebra.Product (a, b) -> inputs +. (est a *. est b)
  | _ -> inputs +. est e

(* ------------------------------------------------------------------ *)
(* Cost of evaluating [e] given a set of materialised fingerprints: a
   materialised node costs only its (re)scan. *)

let cost_of est mat_set counter e =
  let rec go ~root e =
    incr counter;
    let fp = Algebra.fingerprint e in
    if (not root) && Hashtbl.mem mat_set fp then est e
    else
      node_work est e
      +. List.fold_left (fun acc c -> acc +. go ~root:false c) 0. (Algebra.children e)
  in
  go ~root:true e

(* Total cost of all queries plus the one-off cost of computing each
   materialised expression (which may itself reuse other shares). *)
let total_cost est mat_exprs queries counter =
  let mat_set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace mat_set (Algebra.fingerprint e) ()) mat_exprs;
  let qcost =
    List.fold_left
      (fun acc q ->
        acc
        +.
        let fp = Algebra.fingerprint q in
        if Hashtbl.mem mat_set fp then est q else cost_of est mat_set counter q)
      0. queries
  in
  let mcost =
    List.fold_left
      (fun acc m ->
        let others = Hashtbl.copy mat_set in
        Hashtbl.remove others (Algebra.fingerprint m);
        (* Computing the share once, plus the cost of storing its result —
           the write cost is what stops the planner from materialising huge
           unfiltered products whose reuse saves nothing. *)
        acc +. cost_of est others counter m +. est m)
      0. mat_exprs
  in
  qcost +. mcost

(* ------------------------------------------------------------------ *)
(* The cost model, exposed for the factorized executor's cheap DAG pass
   ({!Dag}), which needs relative costs without the greedy search. *)

let est_card ?stats cat e = est_card_with stats cat e

let eval_cost ?stats cat e =
  cost_of (est_card_with stats cat) (Hashtbl.create 1) (ref 0) e

(* ------------------------------------------------------------------ *)

let plan ?stats cat queries =
  let est = est_card_with stats cat in
  let queries = List.map (Eval.optimize cat) queries in
  (* Candidate shared subexpressions: any subexpression with at least one
     operator that occurs in at least two distinct positions. *)
  let occurrences = Hashtbl.create 256 in
  List.iter
    (fun q ->
      List.iter
        (fun sub ->
          if Algebra.size sub >= 1 then begin
            let fp = Algebra.fingerprint sub in
            let count, _ =
              try Hashtbl.find occurrences fp with Not_found -> (0, sub)
            in
            Hashtbl.replace occurrences fp (count + 1, sub)
          end)
        (Algebra.subexpressions q))
    queries;
  let candidates =
    Hashtbl.fold (fun _ (count, sub) acc -> if count >= 2 then sub :: acc else acc)
      occurrences []
    |> List.sort Algebra.compare
  in
  let counter = ref 0 in
  (* Greedy with full benefit recomputation: the Roy et al. "Greedy"
     strategy.  Each iteration costs O(|remaining| · Σ|query|). *)
  let rec greedy chosen remaining current_cost =
    let best =
      List.fold_left
        (fun best cand ->
          let c = total_cost est (cand :: chosen) queries counter in
          match best with
          | Some (_, best_cost) when best_cost <= c -> best
          | _ when c < current_cost -> Some (cand, c)
          | best -> best)
        None remaining
    in
    match best with
    | None -> (List.rev chosen, current_cost)
    | Some (cand, c) ->
      let remaining = List.filter (fun r -> not (Algebra.equal r cand)) remaining in
      greedy (cand :: chosen) remaining c
  in
  let initial = total_cost est [] queries counter in
  let chosen, final_cost = greedy [] candidates initial in
  (* Dependency order: smaller expressions first so that a share which is a
     subexpression of another share is materialised before it. *)
  let shared_exprs =
    List.sort (fun a b -> Int.compare (Algebra.size a) (Algebra.size b)) chosen
  in
  {
    queries;
    shared_exprs;
    plan_metrics =
      {
        candidates = List.length candidates;
        chosen = List.length chosen;
        cost_evaluations = !counter;
      };
    total_cost = final_cost;
  }

(* ------------------------------------------------------------------ *)
(* Execution: evaluate with a fingerprint-keyed memo so every shared
   subexpression runs exactly once. *)

let execute_iter ?ctrs ?eval cat p ~f =
  let eval_expr =
    match eval with Some f -> f | None -> Eval.eval ?ctrs cat
  in
  let memo : (string, Relation.t) Hashtbl.t = Hashtbl.create 64 in
  let shared_set = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace shared_set (Algebra.fingerprint e) ())
    p.shared_exprs;
  (* Evaluate one expression with its proper shared subexpressions swapped
     for their materialised results; everything in between stays symbolic so
     the engine can still pipeline, push selections and factorise
     distinct-projections. *)
  let rec eval_memo e =
    let fp = Algebra.fingerprint e in
    match Hashtbl.find_opt memo fp with
    | Some r -> r
    | None ->
      let r = eval_expr (swap_children e) in
      if Hashtbl.mem shared_set fp then Hashtbl.replace memo fp r;
      r
  and swap e =
    if Hashtbl.mem shared_set (Algebra.fingerprint e) then Algebra.Mat (eval_memo e)
    else swap_children e
  and swap_children e =
    match e with
    | Algebra.Base _ | Algebra.Mat _ -> e
    | Algebra.Rename (pfx, c) -> Algebra.Rename (pfx, swap c)
    | Algebra.Select (pr, c) -> Algebra.Select (pr, swap c)
    | Algebra.Project (cs, c) -> Algebra.Project (cs, swap c)
    | Algebra.Distinct c -> Algebra.Distinct (swap c)
    | Algebra.Product (a, b) -> Algebra.Product (swap a, swap b)
    | Algebra.Join (pr, a, b) -> Algebra.Join (pr, swap a, swap b)
    | Algebra.Aggregate (a, c) -> Algebra.Aggregate (a, swap c)
    | Algebra.GroupBy (keys, a, c) -> Algebra.GroupBy (keys, a, swap c)
  in
  List.iter (fun e -> ignore (eval_memo e)) p.shared_exprs;
  List.iteri (fun i q -> f i q (eval_memo q)) p.queries

let execute ?ctrs ?eval cat p =
  let out = ref [] in
  execute_iter ?ctrs ?eval cat p ~f:(fun _ q r -> out := (q, r) :: !out);
  List.rev !out
