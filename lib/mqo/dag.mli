(** The deduplicated e-unit DAG of the factorized multi-mapping executor.

    Given the optimised bodies of all distinct e-units, one counting sweep
    finds the subexpressions worth materialising once and re-scanning —
    common subexpressions are keyed on
    {!Urm_relalg.Algebra.canonical_fingerprint}, so conjunct-permuted
    duplicates arriving from different mappings collapse into one DAG
    node.  Deliberately cheap (a single pass with a local benefit test, no
    greedy re-costing): the factorized engine must win wall-clock even
    when nothing is shareable, unlike {!Planner}'s exhaustive e-MQO
    search. *)

type share = {
  expr : Urm_relalg.Algebra.t;
  occurrences : int;  (** e-units containing this subexpression *)
}

type t

(** The DAG with no shares — the e-basic degenerate case. *)
val empty : t

(** [build ?stats cat exprs] counts canonical subexpression occurrences
    across all unit bodies and keeps those whose re-use benefit exceeds
    the estimated write cost. *)
val build :
  ?stats:Urm_relalg.Stats_est.t ->
  Urm_relalg.Catalog.t ->
  Urm_relalg.Algebra.t list ->
  t

(** Chosen shares in dependency order (smaller expressions first, so a
    nested share materialises before its host). *)
val shares : t -> Urm_relalg.Algebra.t list

val chosen : t -> int
val candidates : t -> int

(** [substitute lookup e] swaps every maximal subtree with a materialised
    result (per [lookup], keyed on canonical fingerprint) into a [Mat]
    leaf.  Evaluate the shares in {!shares} order, adding each result to
    the lookup table as it completes, then substitute every unit body. *)
val substitute :
  (string -> Urm_relalg.Relation.t option) ->
  Urm_relalg.Algebra.t ->
  Urm_relalg.Algebra.t

val is_shared : t -> Urm_relalg.Algebra.t -> bool
