open Urm_relalg

(* The factorized executor's common-subexpression pass.

   Unlike {!Planner}, which deliberately performs the expensive Roy et al.
   greedy search the paper attributes to MQO, this pass is a single
   counting sweep with a local benefit test: planning must stay cheap
   enough that the factorized engine wins wall-clock even when nothing is
   shareable.  Subexpressions are keyed on the canonical fingerprint
   ({!Algebra.canonical_fingerprint}), so conjunct-permuted duplicates
   arriving from different mappings count as one node of the DAG. *)

type share = { expr : Algebra.t; occurrences : int }

type t = {
  shares : share list;  (* dependency order: smaller expressions first *)
  shared_fps : (string, unit) Hashtbl.t;
  candidates : int;
}

let shares t = List.map (fun s -> s.expr) t.shares
let chosen t = List.length t.shares
let candidates t = t.candidates
let empty = { shares = []; shared_fps = Hashtbl.create 1; candidates = 0 }

(* Materialisation only pays for operators that reduce or combine:
   leaves and renames are free to re-scan, raw products cost more to
   store than to recompute (the write cost exceeds the scan), and scalar
   aggregates are one row — cheaper to recompute than to manage. *)
let worth_materialising = function
  | Algebra.Select _ | Algebra.Project _ | Algebra.Distinct _
  | Algebra.Join _ | Algebra.GroupBy _ -> true
  | Algebra.Base _ | Algebra.Mat _ | Algebra.Rename _ | Algebra.Product _
  | Algebra.Aggregate _ -> false

let build ?stats cat exprs =
  let occurrences : (string, int * Algebra.t) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun sub ->
          if Algebra.size sub >= 1 && worth_materialising sub then begin
            let fp = Algebra.canonical_fingerprint sub in
            match Hashtbl.find_opt occurrences fp with
            | Some (count, first) ->
              Hashtbl.replace occurrences fp (count + 1, first)
            | None ->
              Hashtbl.add occurrences fp (1, sub);
              order := fp :: !order
          end)
        (Algebra.subexpressions e))
    exprs;
  let candidates = ref 0 in
  let chosen =
    List.rev !order
    |> List.filter_map (fun fp ->
           let count, expr = Hashtbl.find occurrences fp in
           if count < 2 then None
           else begin
             incr candidates;
             (* Benefit of materialising once and re-scanning [count - 1]
                times, against the write cost of storing the result — the
                guard that keeps huge low-reuse intermediates symbolic. *)
             let cost = Planner.eval_cost ?stats cat expr in
             let card = Planner.est_card ?stats cat expr in
             let benefit = (float_of_int (count - 1) *. cost) -. card in
             if benefit > 0. then Some { expr; occurrences = count } else None
           end)
  in
  let shared_fps = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace shared_fps (Algebra.canonical_fingerprint s.expr) ())
    chosen;
  (* Dependency order: smaller first, so a share nested inside another is
     materialised before its host substitutes it. *)
  let shares =
    List.stable_sort
      (fun a b -> Int.compare (Algebra.size a.expr) (Algebra.size b.expr))
      chosen
  in
  { shares; shared_fps; candidates = !candidates }

(* [substitute lookup e] swaps every maximal subtree whose canonical
   fingerprint has a materialised result into a [Mat] leaf.  Evaluating
   the shares in dependency order and adding each result to [lookup]'s
   table as it completes makes self-substitution impossible: a share being
   evaluated is not yet in the table, so only its proper subshares swap. *)
let substitute lookup e =
  let rec swap e =
    match lookup (Algebra.canonical_fingerprint e) with
    | Some r -> Algebra.Mat r
    | None -> (
      match e with
      | Algebra.Base _ | Algebra.Mat _ -> e
      | Algebra.Rename (p, c) -> Algebra.Rename (p, swap c)
      | Algebra.Select (p, c) -> Algebra.Select (p, swap c)
      | Algebra.Project (cs, c) -> Algebra.Project (cs, swap c)
      | Algebra.Distinct c -> Algebra.Distinct (swap c)
      | Algebra.Product (a, b) -> Algebra.Product (swap a, swap b)
      | Algebra.Join (p, a, b) -> Algebra.Join (p, swap a, swap b)
      | Algebra.Aggregate (a, c) -> Algebra.Aggregate (a, swap c)
      | Algebra.GroupBy (keys, a, c) -> Algebra.GroupBy (keys, a, swap c))
  in
  swap e

let is_shared t e = Hashtbl.mem t.shared_fps (Algebra.canonical_fingerprint e)
