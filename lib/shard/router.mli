(** The shard router: one front-door service process fanning requests
    over N spawned worker processes.

    Placement — {!Hash}: a session's home shard is the rendezvous hash
    of its fingerprint; session-state operations ([open-session],
    [close-session], [mutate]) are applied on the home shard first (its
    reply is the client's reply), then broadcast to the rest, so every
    worker holds every session and the [basic] fan-out below can touch
    all of them.  All other session operations ([topk], [threshold],
    [approx], [incr] and non-basic [query]s) route whole to the home
    shard — the same deterministic code over the same deterministic
    state, hence byte-identical to a single-process server.

    [query] with algorithm [basic] fans out: each shard evaluates a
    contiguous mapping range ([range_lo]/[range_hi], see {!Server}) and
    returns per-mapping partial answers; the router merges them in
    ascending mapping order — exactly the [urm_par] per-item merge
    discipline — so the recombined answer is bit-identical to sequential
    evaluation at any shard count (JSON floats render as %.17g and
    round-trip exactly).

    Lifecycle: workers are spawned at {!start} ({!Launcher}); a health
    thread reaps crashed workers and respawns them, replaying every
    session open and the full ordered mutation log so the replacement
    converges to the fleet state.  A request that hits a dead worker is
    retried once against the respawned one; if that also fails the
    client receives a typed [shard_unavailable] error.  Mutation batches
    are logged — in the home shard's resolved form, as echoed by its
    commit reply — before the broadcast, so a worker that died
    mid-broadcast replays the batch it missed.

    The router's own wire behaviour matches the server's: ND-JSON or
    binary frames by first-byte sniffing, batch frames, credit
    backpressure, proto-error-then-close on malformed frames. *)

type config = {
  host : string;
  port : int;  (** [0] binds an ephemeral port *)
  shards : int;  (** worker processes, [>= 1] *)
  forwarders : int;  (** router-side executor threads *)
  queue_depth : int;
  respawn : bool;  (** health thread respawns crashed workers *)
  worker : Launcher.spec;
}

val default_config : config
(** 2 shards, 4 forwarders, queue depth 64, respawn on. *)

type t

val start : config -> (t, string) result
(** Spawn the workers, bind and serve.  [Error] when a worker cannot be
    spawned (any already-spawned ones are killed). *)

val port : t -> int

val worker_pids : t -> int list
(** Live worker pids, by shard index — the fault-injection tests'
    SIGKILL targets. *)

val restarts : t -> int
(** Total worker respawns so far. *)

val stop : t -> unit
(** Begin shutdown: drain workers (wire [shutdown]), stop accepting.
    Idempotent. *)

val wait : t -> unit
(** Block until the router has stopped and every worker is reaped. *)
