(** Placement: which worker owns what.

    Sessions are placed by rendezvous (highest-random-weight) hashing of
    their fingerprint — every router instance computes the same owner
    from the key and the shard count alone, no coordination state, and
    changing the shard count moves only the minimal number of sessions.
    Within a session, [basic] query evaluation fans out over contiguous
    mapping ranges, one per shard, so the router can recombine the
    per-mapping partial answers in ascending order (the [urm_par] merge
    discipline). *)

val owner : shards:int -> string -> int
(** [owner ~shards key] ∈ [\[0, shards)], stable across processes
    ({!Urm_util.Fnv} is platform-independent).  Raises
    [Invalid_argument] when [shards <= 0]. *)

val ranges : shards:int -> h:int -> (int * int) array
(** [ranges ~shards ~h] contiguous [\[lo, hi)] mapping ranges covering
    [0..h-1], one per shard, sizes differing by at most one.  Empty
    ranges appear when [h < shards]. *)
