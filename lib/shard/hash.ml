module Fnv = Urm_util.Fnv

let owner ~shards key =
  if shards <= 0 then invalid_arg "Hash.owner: shards must be positive";
  if shards = 1 then 0
  else begin
    let base = Fnv.string key in
    let best = ref 0 and best_w = ref (Fnv.add_int base 0) in
    for i = 1 to shards - 1 do
      let w = Fnv.add_int base i in
      if Int64.unsigned_compare w !best_w > 0 then begin
        best := i;
        best_w := w
      end
    done;
    !best
  end

let ranges ~shards ~h =
  if shards <= 0 then invalid_arg "Hash.ranges: shards must be positive";
  if h < 0 then invalid_arg "Hash.ranges: h must be non-negative";
  Array.init shards (fun i -> (i * h / shards, (i + 1) * h / shards))
