module Json = Urm_util.Json
module Metrics = Urm_obs.Metrics
module Protocol = Urm_service.Protocol
module Client = Urm_service.Client
module Server = Urm_service.Server
module Wire = Urm_service.Wire
module Frame = Urm_service.Frame

type config = {
  host : string;
  port : int;
  shards : int;
  forwarders : int;
  queue_depth : int;
  respawn : bool;
  worker : Launcher.spec;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    shards = 2;
    forwarders = 4;
    queue_depth = 64;
    respawn = true;
    worker = Launcher.default_spec;
  }

(* ------------------------------------------------------------------ *)

(* What the router remembers about a session — enough to rebuild a
   crashed worker's copy from scratch: the open parameters, plus every
   committed mutation batch.  The log stores the home shard's *resolved*
   batches (ids assigned, rows coerced) so a replay does not depend on
   re-running mutation resolution, and it is kept newest-first so a
   commit is an O(1) cons; {!replay} reverses it.  [sh] is the current
   mapping count (the fan-out range bound), refreshed after mapping-set
   mutations. *)
type sess = {
  sname : string;
  mutable sfp : string;  (** fingerprint — the placement key *)
  mutable sh : int;
  sopen : (string * Json.t) list;
  mutable slog : Json.t list;  (** resolved mutation batches, newest first *)
}

(* Keep the replay log short: past [slog_cap] batches, squash everything
   into one concatenated batch.  A "mutate" commit applies its mutations
   in order atomically, so replaying the squashed batch reaches the same
   catalog and mapping state as replaying the originals one by one (only
   the rebuilt worker's epoch counter differs, never answer content).
   This bounds both the per-commit append cost and the number of replay
   round-trips; memory stays proportional to the total mutation count,
   which is inherent to log-based replay. *)
let slog_cap = 32

let log_batch (s : sess) batch =
  let slog = batch :: s.slog in
  s.slog <-
    (if List.length slog <= slog_cap then slog
     else
       let items =
         List.concat_map
           (function Json.Arr xs -> xs | j -> [ j ])
           (List.rev slog)
       in
       [ Json.Arr items ])

type slot = {
  index : int;
  mutable proc : Launcher.proc option;
  mutable cl : Client.t option;
  slock : Mutex.t;
}

type work =
  | Single of Protocol.request
  | Batched of (Protocol.request, string) result list

type job = { jconn : Wire.t; work : work; enqueued : float }

type ring = {
  buf : float array;
  mutable filled : int;
  mutable next : int;
  rlock : Mutex.t;
}

type t = {
  cfg : config;
  sock : Unix.file_descr;
  bound_port : int;
  slots : slot array;
  sessions : (string, sess) Hashtbl.t;
  sess_lock : Mutex.t;  (** guards [sessions] *)
  admin_lock : Mutex.t;
      (** serialises session-state changes (open/close/mutate) and worker
          respawns, so a replay always sees a consistent log.  Lock order:
          [admin_lock] before any [slot.slock]; never the reverse. *)
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable conns : Wire.t list;
  mutable readers : Thread.t list;
  conns_lock : Mutex.t;
  lat : ring;
  requests : int Atomic.t;
  rejected : int Atomic.t;
  restarts_n : int Atomic.t;
  mutable forwarder_threads : Thread.t array;
  mutable acceptor : Thread.t option;
  mutable health : Thread.t option;
}

let port t = t.bound_port
let restarts t = Atomic.get t.restarts_n

let worker_pids t =
  Array.to_list t.slots
  |> List.filter_map (fun slot ->
         Mutex.lock slot.slock;
         let p = Option.map (fun p -> p.Launcher.pid) slot.proc in
         Mutex.unlock slot.slock;
         p)

let is_stopping t =
  Mutex.lock t.qlock;
  let s = t.stopping in
  Mutex.unlock t.qlock;
  s

let stop t =
  Mutex.lock t.qlock;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.qcond
  end;
  Mutex.unlock t.qlock

(* ------------------------------------------------------------------ *)
(* Latency ring (same discipline as the server's) *)

let ring_create n =
  { buf = Array.make n 0.; filled = 0; next = 0; rlock = Mutex.create () }

let ring_add r x =
  Mutex.lock r.rlock;
  r.buf.(r.next) <- x;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.filled <- min (r.filled + 1) (Array.length r.buf);
  Mutex.unlock r.rlock

let ring_to_list r =
  Mutex.lock r.rlock;
  let out = List.init r.filled (fun i -> r.buf.(i)) in
  Mutex.unlock r.rlock;
  out

(* ------------------------------------------------------------------ *)
(* Worker calls *)

let connect_worker (p : Launcher.proc) =
  Client.connect ~framed:true ~port:p.Launcher.port ()

(* One call to a worker; a transport failure closes the slot's client so
   the next caller (or the health thread) triggers a respawn. *)
let slot_call t slot ~op params =
  ignore t;
  Mutex.lock slot.slock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slot.slock)
    (fun () ->
      let client =
        match slot.cl with
        | Some c -> Ok c
        | None -> (
          match slot.proc with
          | Some p when Launcher.alive p -> (
            match connect_worker p with
            | c ->
              slot.cl <- Some c;
              Ok c
            | exception _ -> Error "cannot reconnect to the worker")
          | _ -> Error "worker process is down")
      in
      match client with
      | Error m -> Error ("transport", m)
      | Ok c -> (
        match Client.call c ~op params with
        | Error ("transport", m) ->
          (try Client.close c with _ -> ());
          slot.cl <- None;
          Error ("transport", m)
        | r -> r))

let sessions_snapshot t =
  Mutex.lock t.sess_lock;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
  Mutex.unlock t.sess_lock;
  List.sort (fun a b -> String.compare a.sname b.sname) all

(* Rebuild a fresh worker's state: every session open, then its mutation
   log in commit order.  Opens are deterministic (same parameters ⇒ same
   instance and fingerprint), so the replica converges exactly. *)
let replay t c =
  let rec each = function
    | [] -> Ok ()
    | s :: rest -> (
      match Client.call c ~op:"open-session" s.sopen with
      | Error (code, m) -> Error (Printf.sprintf "replay open %s: %s: %s" s.sname code m)
      | Ok _ -> (
        let rec mutations = function
          | [] -> Ok ()
          | batch :: more -> (
            match
              Client.call c ~op:"mutate"
                [ ("session", Json.Str s.sname); ("mutations", batch) ]
            with
            | Error (code, m) ->
              Error (Printf.sprintf "replay mutate %s: %s: %s" s.sname code m)
            | Ok _ -> mutations more)
        in
        match mutations (List.rev s.slog) with
        | Error _ as e -> e
        | Ok () -> each rest))
  in
  each (sessions_snapshot t)

(* Caller holds [admin_lock].  No-op when the slot is already healthy
   (a concurrent retry or the health thread beat us to it). *)
let respawn_slot t slot =
  Mutex.lock slot.slock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slot.slock)
    (fun () ->
      let healthy =
        Option.is_some slot.cl
        && (match slot.proc with Some p -> Launcher.alive p | None -> false)
      in
      if healthy then Ok ()
      else if is_stopping t then Error "router is stopping"
      else begin
      (match slot.cl with
      | Some c ->
        (try Client.close c with _ -> ());
        slot.cl <- None
      | None -> ());
      (match slot.proc with
      | Some p ->
        Launcher.kill p;
        slot.proc <- None
      | None -> ());
      match Launcher.spawn ~spec:t.cfg.worker () with
      | Error m -> Error ("respawn failed: " ^ m)
      | Ok p -> (
        match connect_worker p with
        | exception _ ->
          Launcher.kill p;
          Error "respawned worker refused the connection"
        | c -> (
          match replay t c with
          | Error m ->
            (try Client.close c with _ -> ());
            Launcher.kill p;
            Error m
          | Ok () ->
            slot.proc <- Some p;
            slot.cl <- Some c;
            Atomic.incr t.restarts_n;
            Ok ()))
    end)

let ensure_worker t slot =
  Mutex.lock t.admin_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admin_lock)
    (fun () -> respawn_slot t slot)

(* The client-facing discipline: one transparent retry against a freshly
   respawned worker, then a typed [shard_unavailable].  [respawn]
   abstracts over whether the caller already holds [admin_lock]. *)
let call_retrying ~respawn t slot ~op params =
  match slot_call t slot ~op params with
  | Error ("transport", m) -> (
    match respawn t slot with
    | Error m2 ->
      Error ("shard_unavailable", Printf.sprintf "shard %d: %s (%s)" slot.index m m2)
    | Ok () -> (
      match slot_call t slot ~op params with
      | Error ("transport", m2) ->
        Error ("shard_unavailable", Printf.sprintf "shard %d: %s" slot.index m2)
      | r -> r))
  | r -> r

let call_with_retry t slot ~op params =
  call_retrying ~respawn:ensure_worker t slot ~op params

(* Under [admin_lock] — respawn directly, no re-lock. *)
let call_admin t slot ~op params =
  call_retrying ~respawn:respawn_slot t slot ~op params

(* ------------------------------------------------------------------ *)
(* Routing *)

let params_of (req : Protocol.request) =
  match req.Protocol.params with Json.Obj fields -> fields | _ -> []

let find_sess t name =
  Mutex.lock t.sess_lock;
  let s = Hashtbl.find_opt t.sessions name in
  Mutex.unlock t.sess_lock;
  s

(* The home shard: rendezvous hash of the session fingerprint (falling
   back to the requested name for sessions the router has not seen, and
   to shard 0 for sessionless requests).  Correctness never depends on
   the choice — every worker holds every session — only load placement
   does, so any deterministic key works. *)
let route_slot t req =
  let shards = Array.length t.slots in
  match Protocol.str_param req "session" with
  | exception Failure _ -> t.slots.(0)
  | None -> t.slots.(0)
  | Some name ->
    let key = match find_sess t name with Some s -> s.sfp | None -> name in
    t.slots.(Hash.owner ~shards key)

let forward t slot (req : Protocol.request) =
  match call_with_retry t slot ~op:req.Protocol.op (params_of req) with
  | Ok result -> Protocol.ok ~id:req.Protocol.id result
  | Error (code, m) -> Protocol.error ~id:req.Protocol.id ~code m

(* ------------------------------------------------------------------ *)
(* Session-state operations: home shard first (its reply is the client's
   reply), then broadcast, under [admin_lock]. *)

let broadcast_rest t ~home ~op params =
  Array.iter
    (fun slot ->
      if slot.index <> home.index then
        match call_admin t slot ~op params with
        | Ok _ -> ()
        | Error _ ->
          (* A logical divergence here would be a determinism bug (same
             deterministic commit over the same state); a transport one
             means the slot died and its respawn replays the log, batch
             included.  Either way the home reply stands. *)
          ())
    t.slots

let exec_open t (req : Protocol.request) =
  let id = req.Protocol.id in
  let params = params_of req in
  Mutex.lock t.admin_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admin_lock)
    (fun () ->
      let home = route_slot t req in
      match call_admin t home ~op:"open-session" params with
      | Error (code, m) -> Protocol.error ~id ~code m
      | Ok result ->
        let str k = match Json.member k result with Some (Json.Str s) -> Some s | _ -> None in
        let int k =
          match Json.member k result with Some (Json.Num f) -> Some (int_of_float f) | _ -> None
        in
        (match (str "session", str "fingerprint", int "mappings") with
        | Some name, Some fp, Some h ->
          Mutex.lock t.sess_lock;
          (if not (Hashtbl.mem t.sessions name) then
             Hashtbl.replace t.sessions name
               { sname = name; sfp = fp; sh = h; sopen = params; slog = [] });
          Mutex.unlock t.sess_lock
        | _ -> ());
        broadcast_rest t ~home ~op:"open-session" params;
        Protocol.ok ~id result)

let exec_close t (req : Protocol.request) =
  let id = req.Protocol.id in
  let params = params_of req in
  Mutex.lock t.admin_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admin_lock)
    (fun () ->
      let home = route_slot t req in
      match call_admin t home ~op:"close-session" params with
      | Error (code, m) -> Protocol.error ~id ~code m
      | Ok result ->
        (match Protocol.str_param req "session" with
        | Some name ->
          Mutex.lock t.sess_lock;
          Hashtbl.remove t.sessions name;
          Mutex.unlock t.sess_lock
        | None | (exception Failure _) -> ());
        broadcast_rest t ~home ~op:"close-session" params;
        Protocol.ok ~id result)

(* Refresh the cached mapping count after a mapping-set mutation: ask the
   home worker's session listing. *)
let refresh_h t home (s : sess) =
  match call_admin t home ~op:"sessions" [] with
  | Error _ -> ()
  | Ok result -> (
    match Json.member "sessions" result with
    | Some (Json.Arr items) ->
      List.iter
        (fun item ->
          match (Json.member "session" item, Json.member "mappings" item) with
          | Some (Json.Str n), Some (Json.Num h) when String.equal n s.sname ->
            s.sh <- int_of_float h
          | _ -> ())
        items
    | _ -> ())

let exec_mutate t (req : Protocol.request) =
  let id = req.Protocol.id in
  let params = params_of req in
  Mutex.lock t.admin_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admin_lock)
    (fun () ->
      let home = route_slot t req in
      let sess =
        match Protocol.str_param req "session" with
        | Some name -> find_sess t name
        | None | (exception Failure _) -> None
      in
      match call_admin t home ~op:"mutate" params with
      | Error (code, m) -> Protocol.error ~id ~code m
      | Ok result ->
        (* The home reply echoes the batch it committed, resolved (rows
           coerced, mapping ids assigned); log and broadcast that form so
           replicas and replays never depend on re-running resolution.
           Log before broadcasting: a worker that dies mid-broadcast is
           replayed from the log, this batch included, so the fleet
           converges even through the crash. *)
        let batch =
          match Json.member "mutations" result with
          | Some (Json.Arr _ as resolved) -> Some resolved
          | _ -> Protocol.param req "mutations"
        in
        (match (sess, batch) with
        | Some s, Some batch -> log_batch s batch
        | _ -> ());
        let bparams =
          match batch with
          | None -> params
          | Some b ->
            List.map
              (fun (k, v) -> if String.equal k "mutations" then (k, b) else (k, v))
              params
        in
        broadcast_rest t ~home ~op:"mutate" bparams;
        (match (sess, Json.member "mappings_changed" result) with
        | Some s, Some (Json.Bool true) -> refresh_h t home s
        | _ -> ());
        Protocol.ok ~id result)

(* ------------------------------------------------------------------ *)
(* The basic-algorithm fan-out *)

let answers_limit req =
  Option.value ~default:20 (Protocol.int_param req "answers")

(* Merge per-mapping partial answers in ascending mapping order — the
   urm_par discipline: each partial carries one mapping's bucket totals,
   so one [Answer.add] per (mapping, tuple) replays the exact float
   addition sequence of a sequential evaluation. *)
let merge_partials ~output replies =
  let answer = Urm.Answer.create output in
  List.iter
    (fun reply ->
      match Json.member "partials" reply with
      | Some (Json.Arr parts) ->
        List.iter
          (fun part ->
            (match Json.member "answers" part with
            | Some (Json.Arr items) ->
              List.iter
                (fun item ->
                  match (Json.member "tuple" item, Json.member "prob" item) with
                  | Some (Json.Arr vs), Some (Json.Num p) ->
                    let tuple =
                      Array.of_list (List.map Protocol.value_of_json vs)
                    in
                    Urm.Answer.add answer tuple p
                  | _ -> failwith "malformed partial answer")
                items
            | _ -> failwith "partial without answers");
            match Json.member "null_prob" part with
            | Some (Json.Num p) -> Urm.Answer.add_null answer p
            | _ -> failwith "partial without null_prob")
          parts
      | _ -> failwith "shard reply without partials")
    replies;
  answer

(* The shared fan-out core: [slot_params ~shards ~h] builds, per attempt,
   the function giving each slot its extra request parameters ([None] for
   a slot with nothing to do).  The basic algorithm fans contiguous
   mapping ranges; the sharing algorithms fan e-unit slots (the worker
   derives the distinct-unit list itself — every worker holds every
   session — and evaluates its contiguous chunk). *)
let fan_out t (s : sess) (req : Protocol.request) ~alg ~slot_params =
  let id = req.Protocol.id in
  let shards = Array.length t.slots in
  let base_params = params_of req in
  let attempt h =
    let params_of_slot = slot_params ~shards ~h in
    (* The sentinel must be an [Error]: a fan-out thread that dies from
       an uncaught exception leaves its slot untouched, and an [Ok]
       sentinel would be silently dropped from the merge as if the range
       were empty.  Only a genuinely empty slot writes [Ok Null]. *)
    let results =
      Array.make shards (Error ("internal", "shard fan-out thread died"))
    in
    let threads =
      Array.init shards (fun i ->
          Thread.create
            (fun () ->
              results.(i) <-
                (match params_of_slot i with
                | None -> Ok Json.Null
                | Some extra -> (
                  try
                    call_with_retry t t.slots.(i) ~op:"query"
                      (base_params @ extra)
                  with exn -> Error ("internal", Printexc.to_string exn))))
            ())
    in
    Array.iter Thread.join threads;
    results
  in
  let results = attempt s.sh in
  (* A stale mapping count (a mutate raced this query) surfaces as the
     worker's typed [stale_range] error; refresh and retry once. *)
  let results =
    let stale =
      Array.exists
        (function Error ("stale_range", _) -> true | _ -> false)
        results
    in
    if stale then begin
      Mutex.lock t.admin_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.admin_lock)
        (fun () -> refresh_h t (t.slots.(Hash.owner ~shards s.sfp)) s);
      attempt s.sh
    end
    else results
  in
  match
    Array.to_list results
    |> List.filter_map (function Error e -> Some e | Ok _ -> None)
  with
  | (code, m) :: _ -> Protocol.error ~id ~code m
  | [] -> (
    let replies =
      Array.to_list results
      |> List.filter_map (function Ok Json.Null -> None | Ok r -> Some r | Error _ -> None)
    in
    match replies with
    | [] -> Protocol.error ~id ~code:"error" "no shard produced a partial answer"
    | first :: _ ->
      let output =
        match Json.member "output" first with
        | Some (Json.Arr cols) ->
          List.map (function Json.Str c -> c | _ -> "") cols
        | _ -> []
      in
      let answer = merge_partials ~output replies in
      let limit = answers_limit req in
      Protocol.ok ~id
        (Json.Obj
           [
             ( "query",
               Option.value ~default:Json.Null (Json.member "query" first) );
             ("algorithm", Json.Str alg);
             ("size", Json.Num (float_of_int (Urm.Answer.size answer)));
             ("null_prob", Json.Num (Urm.Answer.null_prob answer));
             ("answers", Server.answers_json answer limit);
             ("sharded", Json.Num (float_of_int shards));
           ]))

let fan_basic t (s : sess) (req : Protocol.request) =
  fan_out t s req ~alg:"basic" ~slot_params:(fun ~shards ~h ->
      let ranges = Hash.ranges ~shards ~h in
      fun i ->
        let lo, hi = ranges.(i) in
        if hi <= lo then None
        else
          Some
            [
              ("algorithm", Json.Str "basic");
              ("range_lo", Json.Num (float_of_int lo));
              ("range_hi", Json.Num (float_of_int hi));
            ])

(* The sharing-algorithm fan-out: each slot evaluates its chunk of the
   e-unit list; [expect_h] lets the worker detect a racing mapping-set
   mutation (typed stale_range, retried once after a refresh).  Merging
   replies in ascending slot order replays per-unit contributions in
   ascending unit order — the factorized executor's own accumulation
   order — so the recombined answer is byte-identical to one process. *)
let fan_units t (s : sess) ~alg (req : Protocol.request) =
  fan_out t s req ~alg ~slot_params:(fun ~shards ~h ->
      fun i ->
        Some
          [
            ("algorithm", Json.Str alg);
            ("slot", Json.Num (float_of_int i));
            ("slots", Json.Num (float_of_int shards));
            ("expect_h", Json.Num (float_of_int h));
          ])

let unit_fan_algorithms = [ "e-basic"; "e-mqo"; "q-sharing" ]

let exec_query t (req : Protocol.request) =
  let alg =
    match Protocol.str_param req "algorithm" with
    | Some a -> a
    | None -> "o-sharing"
    | exception Failure _ -> ""
  in
  let sess =
    match Protocol.str_param req "session" with
    | Some name -> find_sess t name
    | None | (exception Failure _) -> None
  in
  let unsliced =
    Protocol.param req "range_lo" = None
    && Protocol.param req "range_hi" = None
    && Protocol.param req "slot" = None
    && Protocol.param req "slots" = None
  in
  match sess with
  | Some s when String.equal alg "basic" && s.sh > 0 && unsliced ->
    fan_basic t s req
  | Some s when List.mem alg unit_fan_algorithms && s.sh > 0 && unsliced ->
    fan_units t s ~alg req
  | _ -> forward t (route_slot t req) req

(* ------------------------------------------------------------------ *)
(* Router-local operations *)

let exec_metrics t =
  let shard_replies =
    Array.map (fun slot -> slot_call t slot ~op:"metrics" []) t.slots
  in
  let num f = Json.Num (float_of_int f) in
  let lats = ring_to_list t.lat in
  let p q = Urm_util.Stats.percentile_or_zero q lats in
  Mutex.lock t.sess_lock;
  let n_sessions = Hashtbl.length t.sessions in
  Mutex.unlock t.sess_lock;
  Mutex.lock t.qlock;
  let depth = Queue.length t.queue in
  Mutex.unlock t.qlock;
  Json.Obj
    [
      ( "router",
        Json.Obj
          [
            ("shards", num (Array.length t.slots));
            ("requests", num (Atomic.get t.requests));
            ("restarts", num (Atomic.get t.restarts_n));
            ( "latency",
              Json.Obj
                [
                  ("count", num (List.length lats));
                  ("p50", Json.Num (p 0.5));
                  ("p95", Json.Num (p 0.95));
                  ("p99", Json.Num (p 0.99));
                  ("mean", Json.Num (Urm_util.Stats.mean lats));
                ] );
            ( "queue",
              Json.Obj
                [ ("depth", num depth); ("rejected", num (Atomic.get t.rejected)) ]
            );
            ("sessions", num n_sessions);
          ] );
      ( "shards",
        Json.Arr
          (Array.to_list
             (Array.mapi
                (fun i r ->
                  Json.Obj
                    [
                      ("shard", num i);
                      ( "metrics",
                        match r with Ok m -> m | Error _ -> Json.Null );
                    ])
                shard_replies)) );
      ( "aggregate",
        Metrics.rollup
          (Array.to_list shard_replies
          |> List.filter_map (function Ok m -> Some m | Error _ -> None)) );
    ]

let exec_shutdown t =
  Array.iter (fun slot -> ignore (slot_call t slot ~op:"shutdown" [])) t.slots;
  stop t;
  Json.Obj [ ("draining", Json.Bool true) ]

(* The guard mirrors {!Urm_service.Server.reply_of}: forwarder threads
   are never respawned, so an exception escaping any branch — not just
   "query" — would permanently shrink the pool and silently drop the
   client's reply.  Every op must reduce to a typed reply. *)
let execute t (req : Protocol.request) : string =
  let id = req.Protocol.id in
  match
    match req.Protocol.op with
    | "ping" -> Protocol.ok ~id (Json.Obj [ ("pong", Json.Bool true) ])
    | "metrics" -> Protocol.ok ~id (exec_metrics t)
    | "shutdown" -> Protocol.ok ~id (exec_shutdown t)
    | "open-session" -> exec_open t req
    | "close-session" -> exec_close t req
    | "mutate" -> exec_mutate t req
    | "query" -> exec_query t req
    | _other ->
      (* sessions, topk, threshold, approx, unknown ops: whole-request
         forwarding keeps replies byte-identical to a single process. *)
      forward t (route_slot t req) req
  with
  | reply -> reply
  | exception Failure m -> Protocol.error ~id ~code:"bad_request" m
  | exception Invalid_argument m -> Protocol.error ~id ~code:"bad_request" m
  | exception Not_found -> Protocol.error ~id ~code:"not_found" "not found"
  | exception exn -> Protocol.error ~id ~code:"error" (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Front door: admission, forwarder pool, acceptor — the same loop
   shapes as {!Urm_service.Server}, over forwarder threads instead of
   evaluation domains (router work is I/O-bound). *)

let handle t job =
  let executed =
    match job.work with
    | Single req ->
      Wire.send_reply job.jconn (execute t req);
      1
    | Batched items ->
      let replies =
        List.map (function Ok req -> execute t req | Error pre -> pre) items
      in
      Wire.send_frame job.jconn (Frame.Batch_reply replies);
      List.length items
  in
  ignore (Atomic.fetch_and_add t.requests executed);
  ring_add t.lat (Urm_util.Timer.now () -. job.enqueued)

let forwarder_loop t () =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.qlock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.qlock;
      handle t job;
      loop ()
    end
  in
  loop ()

let free_slots t =
  Mutex.lock t.qlock;
  let n = max 0 (t.cfg.queue_depth - Queue.length t.queue) in
  Mutex.unlock t.qlock;
  n

let reject work conn ~code ~message =
  let err (req : Protocol.request) =
    Protocol.error ~id:req.Protocol.id ~code message
  in
  match work with
  | Single req -> Wire.send_reply conn (err req)
  | Batched items ->
    Wire.send_frame conn
      (Frame.Batch_reply
         (List.map (function Ok req -> err req | Error pre -> pre) items))

let enqueue t conn work =
  Mutex.lock t.qlock;
  if t.stopping then begin
    Mutex.unlock t.qlock;
    reject work conn ~code:"unavailable" ~message:"router is draining"
  end
  else if Queue.length t.queue >= t.cfg.queue_depth then begin
    Mutex.unlock t.qlock;
    Atomic.incr t.rejected;
    reject work conn ~code:"busy" ~message:"admission queue is full";
    if conn.Wire.mode = Wire.Frames then
      Wire.send_frame conn (Frame.Credit (free_slots t))
  end
  else begin
    Queue.push { jconn = conn; work; enqueued = Urm_util.Timer.now () } t.queue;
    Condition.signal t.qcond;
    Mutex.unlock t.qlock
  end

let reader t conn =
  let parse_item doc =
    match Protocol.parse_request doc with
    | Ok req -> Ok req
    | Error msg ->
      Error
        (Protocol.error ~id:Json.Null ~code:"bad_request"
           ("malformed request: " ^ msg))
  in
  let enqueue_doc doc =
    match parse_item doc with
    | Ok req -> enqueue t conn (Single req)
    | Error pre -> Wire.send_reply conn pre
  in
  let step () =
    match Wire.recv conn with
    | Wire.Eof -> false
    | Wire.Line line ->
      if not (String.equal (String.trim line) "") then enqueue_doc line;
      true
    | Wire.Framed (Frame.Request doc) ->
      enqueue_doc doc;
      true
    | Wire.Framed (Frame.Batch docs) ->
      (match List.map parse_item docs with
      | [] -> Wire.send_frame conn (Frame.Batch_reply [])
      | items -> enqueue t conn (Batched items));
      true
    | Wire.Framed (Frame.Hello _) ->
      Wire.send_frame conn (Frame.Hello_ack (free_slots t));
      true
    | Wire.Framed (Frame.Credit _) ->
      Wire.send_frame conn (Frame.Credit (free_slots t));
      true
    | Wire.Framed
        (Frame.Hello_ack _ | Frame.Reply _ | Frame.Batch_reply _
        | Frame.Proto_error _) ->
      Wire.send_frame conn
        (Frame.Proto_error
           ("unexpected_frame", "frame type flows server-to-client only"));
      false
    | Wire.Malformed err ->
      Wire.send_frame conn
        (Frame.Proto_error (Frame.error_code err, Frame.error_message err));
      false
  in
  let rec loop () = if step () then loop () in
  loop ();
  Wire.teardown conn;
  let self = Thread.id (Thread.self ()) in
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers;
  Mutex.unlock t.conns_lock

let acceptor_loop t () =
  let rec loop () =
    if is_stopping t then ()
    else begin
      (match Unix.select [ t.sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | fd, _ ->
          let conn = Wire.of_fd fd in
          Mutex.lock t.conns_lock;
          t.conns <- conn :: t.conns;
          t.readers <- Thread.create (reader t) conn :: t.readers;
          Mutex.unlock t.conns_lock
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  try Unix.close t.sock with Unix.Unix_error _ -> ()

(* Reap crashed workers promptly and (optionally) respawn them before
   the next request has to pay for it. *)
let health_loop t () =
  let rec loop () =
    if is_stopping t then ()
    else begin
      Array.iter
        (fun slot ->
          Mutex.lock slot.slock;
          let dead =
            match slot.proc with
            | Some p when not (Launcher.alive p) ->
              slot.proc <- None;
              (match slot.cl with
              | Some c ->
                (try Client.close c with _ -> ());
                slot.cl <- None
              | None -> ());
              true
            | None -> true
            | Some _ -> false
          in
          Mutex.unlock slot.slock;
          if dead && t.cfg.respawn && not (is_stopping t) then
            ignore (ensure_worker t slot))
        t.slots;
      Thread.delay 0.25;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)

let start (cfg : config) =
  if cfg.shards <= 0 then invalid_arg "Router.start: shards must be positive";
  if cfg.forwarders <= 0 then
    invalid_arg "Router.start: forwarders must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Spawn the fleet before binding: a failed spawn aborts cleanly. *)
  let procs = Array.make cfg.shards None in
  let failure = ref None in
  (try
     for i = 0 to cfg.shards - 1 do
       match Launcher.spawn ~spec:cfg.worker () with
       | Ok p -> procs.(i) <- Some p
       | Error m ->
         failure := Some (Printf.sprintf "worker %d: %s" i m);
         raise Exit
     done
   with Exit -> ());
  match !failure with
  | Some m ->
    Array.iter (function Some p -> Launcher.kill p | None -> ()) procs;
    Error m
  | None -> (
    match
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen sock 64;
      sock
    with
    | exception Unix.Unix_error (e, _, _) ->
      Array.iter (function Some p -> Launcher.kill p | None -> ()) procs;
      Error (Unix.error_message e)
    | sock ->
      let bound_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      let slots =
        Array.init cfg.shards (fun i ->
            {
              index = i;
              proc = procs.(i);
              cl =
                (match procs.(i) with
                | Some p -> ( try Some (connect_worker p) with _ -> None)
                | None -> None);
              slock = Mutex.create ();
            })
      in
      let t =
        {
          cfg;
          sock;
          bound_port;
          slots;
          sessions = Hashtbl.create 16;
          sess_lock = Mutex.create ();
          admin_lock = Mutex.create ();
          queue = Queue.create ();
          qlock = Mutex.create ();
          qcond = Condition.create ();
          stopping = false;
          conns = [];
          readers = [];
          conns_lock = Mutex.create ();
          lat = ring_create 4096;
          requests = Atomic.make 0;
          rejected = Atomic.make 0;
          restarts_n = Atomic.make 0;
          forwarder_threads = [||];
          acceptor = None;
          health = None;
        }
      in
      t.forwarder_threads <-
        Array.init cfg.forwarders (fun _ -> Thread.create (forwarder_loop t) ());
      t.acceptor <- Some (Thread.create (acceptor_loop t) ());
      t.health <- Some (Thread.create (health_loop t) ());
      Ok t)

let wait t =
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  Array.iter Thread.join t.forwarder_threads;
  (match t.health with Some th -> Thread.join th | None -> ());
  (* Drain and reap the fleet (idempotent when a wire shutdown already
     did it — the workers are then gone and the calls fail silently). *)
  Array.iter
    (fun slot ->
      Mutex.lock slot.slock;
      (match slot.cl with
      | Some c ->
        (try ignore (Client.call c ~op:"shutdown" []) with _ -> ());
        (try Client.close c with _ -> ());
        slot.cl <- None
      | None -> ());
      (match slot.proc with
      | Some p ->
        Launcher.reap p;
        slot.proc <- None
      | None -> ());
      Mutex.unlock slot.slock)
    t.slots;
  Mutex.lock t.conns_lock;
  let conns = t.conns and readers = t.readers in
  t.conns <- [];
  t.readers <- [];
  Mutex.unlock t.conns_lock;
  List.iter Wire.wake conns;
  List.iter Thread.join readers;
  List.iter Wire.teardown conns
