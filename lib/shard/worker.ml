module Server = Urm_service.Server

let env_flag = "URM_SHARD_WORKER"
let env_engine = "URM_SHARD_ENGINE"
let env_eval_workers = "URM_SHARD_EVAL_WORKERS"
let env_queue_depth = "URM_SHARD_QUEUE_DEPTH"
let env_cache_capacity = "URM_SHARD_CACHE_CAPACITY"

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)

let serve ~watchdog (cfg : Server.config) =
  (* The router drives shutdown over the wire; a SIGTERM (operator or
     router cleanup path) drains gracefully too. *)
  let server = Server.start cfg in
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> Server.stop server))
   with Invalid_argument _ -> ());
  (* A worker must not outlive its router: when the parent dies without
     a goodbye (SIGKILL, crash), getppid flips to the reaper and the
     worker exits rather than leak. *)
  if watchdog then begin
    let parent = Unix.getppid () in
    ignore
      (Thread.create
         (fun () ->
           while Unix.getppid () = parent do
             Thread.delay 0.5
           done;
           exit 1)
         ())
  end;
  Printf.printf "URM_SHARD_PORT %d\n%!" (Server.port server);
  Server.wait server;
  exit 0

let run_from_env () =
  (* SIGINT at the terminal hits the whole process group; only the
     router (or its operator) decides when workers die. *)
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore with Invalid_argument _ -> ());
  let engine =
    match Sys.getenv_opt env_engine with
    | None | Some "" -> Server.default_config.Server.engine
    | Some s -> (
      match Urm_relalg.Compile.engine_of_string s with
      | Ok e -> e
      | Error _ -> Server.default_config.Server.engine)
  in
  serve ~watchdog:true
    {
      Server.default_config with
      Server.port = 0;
      workers = env_int env_eval_workers 2;
      queue_depth = env_int env_queue_depth Server.default_config.Server.queue_depth;
      cache_capacity =
        env_int env_cache_capacity Server.default_config.Server.cache_capacity;
      engine;
    }

let run ?(port = 0) ?engine () =
  let engine =
    Option.value ~default:Server.default_config.Server.engine engine
  in
  serve ~watchdog:false
    { Server.default_config with Server.port; workers = 2; engine }
