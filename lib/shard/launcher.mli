(** Worker process lifecycle: spawn, probe, kill.

    Workers are spawned by re-executing the current binary
    ([/proc/self/exe]) with {!Worker.env_flag} set — NOT by plain
    [fork]: an OCaml 5 process with running domains and threads cannot
    safely fork-and-continue (the child inherits locked runtime state),
    while fork+exec is always safe.  The trade-off is that every entry
    point that may host a router must call {!exec_if_worker} first thing
    in [main], before any argument parsing.

    The child's stdout is a pipe; the parent reads the
    ["URM_SHARD_PORT <n>"] line to learn the worker's ephemeral port,
    then closes its end. *)

type spec = {
  engine : Urm_relalg.Compile.engine;
  eval_workers : int;  (** executor domains inside each worker *)
  queue_depth : int;
  cache_capacity : int;
}

val default_spec : spec
(** Vectorized engine, 2 executor domains, server-default queue depth
    and cache capacity. *)

type proc = { pid : int; port : int }

val exec_if_worker : unit -> unit
(** If {!Worker.env_flag} is present in the environment, become a shard
    worker and never return.  Call this before anything else in every
    binary that can start a router (CLI, tests, bench). *)

val spawn : ?spec:spec -> unit -> (proc, string) result
(** Spawn one worker and wait (bounded) for its port announcement.
    [Error] when the binary cannot be re-executed or the child dies
    before announcing. *)

val alive : proc -> bool
(** Non-blocking liveness probe ([waitpid WNOHANG]); reaps the child if
    it has exited.  [false] once reaped. *)

val kill : proc -> unit
(** SIGKILL and reap, best-effort.  Idempotent. *)

val reap : ?timeout:float -> proc -> unit
(** Wait up to [timeout] (default 5s) for a voluntary exit, then
    {!kill}. *)
