(** A shard worker: one ordinary {!Urm_service.Server} in a child
    process, configured through environment variables set by
    {!Launcher.spawn}.

    The worker binds an ephemeral loopback port and prints
    ["URM_SHARD_PORT <n>"] on stdout (the pipe the parent reads), then
    serves until the router sends [shutdown] — plus two safety nets: an
    orphan watchdog exits when the parent process disappears, and
    SIGTERM triggers a graceful drain. *)

val env_flag : string
(** ["URM_SHARD_WORKER"] — presence in the environment means this
    process must run as a worker (see {!Launcher.exec_if_worker}). *)

val env_engine : string
val env_eval_workers : string
val env_queue_depth : string
val env_cache_capacity : string

val run_from_env : unit -> 'a
(** Run the worker as configured by the environment; never returns
    (calls [exit]). *)

val run : ?port:int -> ?engine:Urm_relalg.Compile.engine -> unit -> 'a
(** [run ()] the [urm shard-worker] entry point: same lifecycle, but
    configured by arguments and without the orphan watchdog (the process
    was started by hand). *)
