type spec = {
  engine : Urm_relalg.Compile.engine;
  eval_workers : int;
  queue_depth : int;
  cache_capacity : int;
}

let default_spec =
  {
    engine = Urm_relalg.Compile.Vectorized;
    eval_workers = 2;
    queue_depth = Urm_service.Server.default_config.Urm_service.Server.queue_depth;
    cache_capacity =
      Urm_service.Server.default_config.Urm_service.Server.cache_capacity;
  }

type proc = { pid : int; port : int }

let exec_if_worker () =
  match Sys.getenv_opt Worker.env_flag with
  | Some v when v <> "" -> Worker.run_from_env ()
  | _ -> ()

let self_exe () =
  match Unix.readlink "/proc/self/exe" with
  | exe -> exe
  | exception (Unix.Unix_error _ | Invalid_argument _) -> Sys.executable_name

let worker_env spec =
  let keep e =
    not (String.length e >= 10 && String.equal (String.sub e 0 10) "URM_SHARD_")
  in
  let base = Array.to_list (Unix.environment ()) |> List.filter keep in
  Array.of_list
    (base
    @ [
        Worker.env_flag ^ "=1";
        Worker.env_engine ^ "=" ^ Urm_relalg.Compile.engine_name spec.engine;
        Worker.env_eval_workers ^ "=" ^ string_of_int spec.eval_workers;
        Worker.env_queue_depth ^ "=" ^ string_of_int spec.queue_depth;
        Worker.env_cache_capacity ^ "=" ^ string_of_int spec.cache_capacity;
      ])

(* Read the port announcement from the child's stdout pipe, bounded so a
   child that dies silently (or wedges before binding) cannot hang the
   router: select for readability, then parse byte-wise up to a newline. *)
let read_port_line fd ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 32 in
  let byte = Bytes.create 1 in
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then Error "timed out waiting for the worker's port"
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> Error "timed out waiting for the worker's port"
      | _, _, _ -> (
        match Unix.read fd byte 0 1 with
        | 0 -> Error "worker exited before announcing its port"
        | _ ->
          if Bytes.get byte 0 = '\n' then begin
            let line = Buffer.contents buf in
            match String.index_opt line ' ' with
            | Some i
              when String.equal (String.sub line 0 i) "URM_SHARD_PORT" -> (
              let rest =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match int_of_string_opt (String.trim rest) with
              | Some port -> Ok port
              | None -> Error ("bad port announcement: " ^ line))
            | _ ->
              (* Tolerate stray output before the announcement. *)
              Buffer.clear buf;
              loop ()
          end
          else begin
            Buffer.add_char buf (Bytes.get byte 0);
            loop ()
          end
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let spawn ?(spec = default_spec) () =
  let exe = self_exe () in
  match Unix.pipe ~cloexec:true () with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | r, w -> (
    match
      Unix.create_process_env exe
        [| exe; "shard-worker:child" |]
        (worker_env spec) Unix.stdin w Unix.stderr
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | pid ->
      (try Unix.close w with Unix.Unix_error _ -> ());
      let result = read_port_line r ~timeout:60. in
      (try Unix.close r with Unix.Unix_error _ -> ());
      (match result with
      | Ok port -> Ok { pid; port }
      | Error msg ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        Error msg))

let alive p =
  match Unix.waitpid [ Unix.WNOHANG ] p.pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let kill p =
  (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] p.pid) with Unix.Unix_error _ -> ()

let reap ?(timeout = 5.) p =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    match Unix.waitpid [ Unix.WNOHANG ] p.pid with
    | 0, _ ->
      if Unix.gettimeofday () >= deadline then kill p
      else begin
        Thread.delay 0.05;
        loop ()
      end
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()
