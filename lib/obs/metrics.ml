type counter = { c_name : string; mutable count : int }
type timer = { t_name : string; mutable seconds : float; mutable calls : int }
type span = { sp_timer : timer; sp_t0 : float }

type registry = {
  counters : (string, counter) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
}

type t = { reg : registry; prefix : string }

(* One process-wide lock serialises registry mutation (handle resolution,
   reset), counter/timer updates and snapshots, so server worker domains can
   share {!global} without torn or lost counts.  Contention is negligible:
   the critical sections are a few loads and stores. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let create () =
  { reg = { counters = Hashtbl.create 64; timers = Hashtbl.create 16 }; prefix = "" }

let global = create ()
let scope t name = { t with prefix = t.prefix ^ name ^ "/" }

let in_scope t key =
  let lp = String.length t.prefix in
  lp = 0 || (String.length key >= lp && String.equal (String.sub key 0 lp) t.prefix)

let reset t =
  locked (fun () ->
      let drop tbl =
        let keys =
          Hashtbl.fold (fun k _ acc -> if in_scope t k then k :: acc else acc) tbl []
        in
        List.iter (Hashtbl.remove tbl) keys
      in
      drop t.reg.counters;
      drop t.reg.timers)

(* ------------------------------------------------------------------ *)
(* Counters *)

let counter t name =
  let key = t.prefix ^ name in
  locked (fun () ->
      match Hashtbl.find_opt t.reg.counters key with
      | Some c -> c
      | None ->
        let c = { c_name = key; count = 0 } in
        Hashtbl.add t.reg.counters key c;
        c)

let incr ?(by = 1) c = locked (fun () -> c.count <- c.count + by)
let value c = locked (fun () -> c.count)
let counter_name c = c.c_name

let find_counter t name =
  locked (fun () ->
      Option.map (fun c -> c.count) (Hashtbl.find_opt t.reg.counters (t.prefix ^ name)))

(* ------------------------------------------------------------------ *)
(* Timers and spans *)

let timer t name =
  let key = t.prefix ^ name in
  locked (fun () ->
      match Hashtbl.find_opt t.reg.timers key with
      | Some tm -> tm
      | None ->
        let tm = { t_name = key; seconds = 0.; calls = 0 } in
        Hashtbl.add t.reg.timers key tm;
        tm)

let record tm secs =
  locked (fun () ->
      tm.seconds <- tm.seconds +. secs;
      tm.calls <- tm.calls + 1)

let elapsed tm = locked (fun () -> tm.seconds)
let calls tm = locked (fun () -> tm.calls)
let timer_name tm = tm.t_name

let span_begin tm = { sp_timer = tm; sp_t0 = Urm_util.Timer.now () }
let span_end sp = record sp.sp_timer (Urm_util.Timer.now () -. sp.sp_t0)

let time tm f =
  let sp = span_begin tm in
  Fun.protect ~finally:(fun () -> span_end sp) f

(* ------------------------------------------------------------------ *)
(* Snapshots *)

(* Snapshots are taken under the lock and sorted by name, so the rendered
   JSON (and pp output) is deterministic regardless of Hashtbl iteration
   order or concurrent writers. *)
let by_name (a, _) (b, _) = String.compare a b

let counters t =
  locked (fun () ->
      Hashtbl.fold
        (fun k c acc -> if in_scope t k then (k, c.count) :: acc else acc)
        t.reg.counters [])
  |> List.sort by_name

let timers t =
  locked (fun () ->
      Hashtbl.fold
        (fun k tm acc -> if in_scope t k then (k, (tm.seconds, tm.calls)) :: acc else acc)
        t.reg.timers [])
  |> List.sort by_name

let to_json t =
  let open Urm_util.Json in
  Obj
    [
      ( "counters",
        Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) (counters t)) );
      ( "timers",
        Obj
          (List.map
             (fun (k, (s, n)) ->
               (k, Obj [ ("seconds", Num s); ("count", Num (float_of_int n)) ]))
             (timers t)) );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-52s %12d@," k v) (counters t);
  List.iter
    (fun (k, (s, n)) -> Format.fprintf ppf "%-52s %10.4fs /%d@," k s n)
    (timers t);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Roll-up of metric snapshots across processes (the shard router's
   [metrics] op): numeric leaves with the same path sum; objects merge
   recursively over the union of keys (key order: first appearance, so a
   roll-up over identically-shaped shard snapshots stays deterministic).
   Keys in [drop] are removed wherever they appear — percentiles and
   means are not additive, so summing them would lie. *)
let rollup ?(drop = [ "p50"; "p95"; "p99"; "mean" ]) snapshots =
  let open Urm_util.Json in
  let dropped = List.filter (fun k -> not (List.mem k drop)) in
  let rec merge a b =
    match (a, b) with
    | Num x, Num y -> Num (x +. y)
    | Obj xs, Obj ys ->
      let keys =
        dropped
          (List.map fst xs
          @ List.filter (fun k -> not (List.mem_assoc k xs)) (List.map fst ys))
      in
      Obj
        (List.map
           (fun k ->
             match (List.assoc_opt k xs, List.assoc_opt k ys) with
             | Some x, Some y -> (k, merge x y)
             | Some x, None | None, Some x -> (k, prune x)
             | None, None -> (k, Null))
           keys)
    | x, _ -> x
  and prune = function
    | Obj xs ->
      Obj (List.filter_map
             (fun (k, v) -> if List.mem k drop then None else Some (k, prune v))
             xs)
    | other -> other
  in
  match snapshots with
  | [] -> Urm_util.Json.Obj []
  | first :: rest -> List.fold_left merge (prune first) rest
