(** Operator-level observability: monotonic counters, accumulating
    wall-clock timers and lightweight spans, grouped in a registry and
    addressed through hierarchical name scopes.

    Counter and timer names are flat strings; a {!scope} is a cheap view of
    a registry that prefixes every name it touches with ["<name>/"], so the
    same instrumentation code yields ["e-basic/relalg/op.select"] and
    ["o-sharing/relalg/op.select"] depending on which algorithm scope it
    ran under.  One {!global} registry is the default sink, so algorithms
    can record without a handle being threaded through every call; a
    harness that needs isolation (one snapshot per experiment) either
    passes its own registry or {!reset}s a scope of the global one between
    runs.

    Handles returned by {!counter} and {!timer} are stable and cheap to hit
    (a mutable record, no hashtable access), so hot paths resolve them once
    and increment in O(1).  Counter names in use are documented in
    DESIGN.md ("Metrics & observability").

    The module is safe for concurrent use from multiple domains: a single
    process-wide mutex serialises registry mutation, counter/timer updates
    and snapshots, so the query-service worker pool can share {!global}
    without torn counts.  Snapshots ({!counters}, {!timers}, {!to_json},
    {!pp}) are sorted by name, making rendered metrics byte-deterministic
    for golden tests and diffs. *)

type t
(** A registry (or a scoped view of one). *)

val create : unit -> t
(** A fresh, empty registry with no prefix. *)

val global : t
(** The process-wide default registry. *)

val scope : t -> string -> t
(** [scope t name] views [t] with ["name/"] appended to the prefix. *)

val reset : t -> unit
(** Drop every counter and timer whose name lies under [t]'s prefix
    (everything, for an unscoped registry).  Handles obtained before the
    reset keep counting into detached objects; re-resolve after a reset. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the counter named [prefix ^ name]. *)

val incr : ?by:int -> counter -> unit
val value : counter -> int
val counter_name : counter -> string

val find_counter : t -> string -> int option
(** Current value of a counter by name, [None] if it was never created. *)

(** {1 Timers and spans} *)

type timer
(** Accumulated seconds plus the number of recordings. *)

type span
(** One started timing interval. *)

val timer : t -> string -> timer
val record : timer -> float -> unit
val elapsed : timer -> float
val calls : timer -> int
val timer_name : timer -> string

val span_begin : timer -> span
val span_end : span -> unit

val time : timer -> (unit -> 'a) -> 'a
(** [time tm f] runs [f] inside a span of [tm] (recorded even if [f]
    raises). *)

(** {1 Snapshots} *)

val counters : t -> (string * int) list
(** Counters under [t]'s prefix, sorted by name. *)

val timers : t -> (string * (float * int)) list
(** Timers under [t]'s prefix as [(name, (seconds, count))], sorted. *)

val to_json : t -> Urm_util.Json.t
(** [{"counters": {name: int, …}, "timers": {name: {"seconds": s,
    "count": n}, …}}] — the [metrics.json] schema (see DESIGN.md). *)

val pp : Format.formatter -> t -> unit

(** {1 Cross-process roll-up} *)

val rollup : ?drop:string list -> Urm_util.Json.t list -> Urm_util.Json.t
(** [rollup snapshots] merges metric snapshots from several processes
    (the shard router's aggregate view): numeric leaves at the same path
    sum, objects merge recursively over the union of keys, and any other
    mismatch keeps the first value.  Keys in [drop] (default the
    non-additive [p50]/[p95]/[p99]/[mean]) are removed wherever they
    appear — a roll-up must not pretend percentiles add. *)
