open Urm_relalg

(* ------------------------------------------------------------------ *)
(* Base-leaf utilities.  An "occurrence" of a stored relation is one
   [Base] leaf naming it; self-joins instantiate the same relation under
   several [Rename] aliases, so occurrences are numbered per name in
   pre-order (left-to-right) — the numbering [subst_bases] replays. *)

let base_names e =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let rec go = function
    | Algebra.Base n ->
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        out := n :: !out
      end
    | e -> List.iter go (Algebra.children e)
  in
  go e;
  List.rev !out

let subst_bases f e =
  let counts = Hashtbl.create 4 in
  let rec go e =
    match e with
    | Algebra.Base n -> (
      let occ = Option.value ~default:0 (Hashtbl.find_opt counts n) in
      Hashtbl.replace counts n (occ + 1);
      match f n occ with Some e' -> e' | None -> e)
    | Algebra.Mat _ -> e
    | Algebra.Rename (p, inner) -> Algebra.Rename (p, go inner)
    | Algebra.Select (p, inner) -> Algebra.Select (p, go inner)
    | Algebra.Project (cs, inner) -> Algebra.Project (cs, go inner)
    | Algebra.Distinct inner -> Algebra.Distinct (go inner)
    | Algebra.Product (a, b) ->
      let a = go a in
      let b = go b in
      Algebra.Product (a, b)
    | Algebra.Join (p, a, b) ->
      let a = go a in
      let b = go b in
      Algebra.Join (p, a, b)
    | Algebra.Aggregate (a, inner) -> Algebra.Aggregate (a, go inner)
    | Algebra.GroupBy (ks, a, inner) -> Algebra.GroupBy (ks, a, go inner)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Delta candidates for a monotone (SPJ/Distinct, non-aggregate) source
   query under an insert-only batch.

   With R_new = R_old ∪ ΔR per touched relation, the result over the new
   instance telescopes over the touched occurrences o_1 … o_p (pre-order):

     E(new) = E(old) ∪ ⋃_k E[ o_1…o_{k-1} ↦ new, o_k ↦ Δ, o_{k+1}…o_p ↦ old ]

   Each step expression pins every touched occurrence to a materialised
   version, so only the step's Δ leaf varies; untouched relations stay
   [Base] and resolve to the (identical) new catalog at execution.
   Selections and joins filter rows independently, so monotonicity holds
   for any predicate; aggregates are excluded by the caller (their values
   change rather than grow).  The union of the steps' target tuples is a
   superset of the answer's growth — subtracting the old tuple set yields
   exactly the new tuples. *)

let candidates (ctx : Urm.Ctx.t) (sq : Urm.Reformulate.t) ~factor ~old_of
    ~delta_of e =
  let touched = ref [] in
  let counts = Hashtbl.create 4 in
  let rec scan = function
    | Algebra.Base n ->
      let occ = Option.value ~default:0 (Hashtbl.find_opt counts n) in
      Hashtbl.replace counts n (occ + 1);
      if Option.is_some (delta_of n) then touched := (n, occ) :: !touched
    | e -> List.iter scan (Algebra.children e)
  in
  scan e;
  let touched = Array.of_list (List.rev !touched) in
  let rank = Hashtbl.create (Array.length touched) in
  Array.iteri (fun i pos -> Hashtbl.replace rank pos i) touched;
  let new_of n = Catalog.find ctx.Urm.Ctx.catalog n in
  let out = ref [] in
  Array.iteri
    (fun k (rel_k, _) ->
      let delta_k = Option.get (delta_of rel_k) in
      if not (Relation.is_empty delta_k) then begin
        let step =
          subst_bases
            (fun n occ ->
              match delta_of n with
              | None -> None
              | Some d -> (
                match Hashtbl.find_opt rank (n, occ) with
                | None -> None
                | Some j ->
                  if j < k then Some (Algebra.Mat (new_of n))
                  else if j = k then Some (Algebra.Mat d)
                  else Some (Algebra.Mat (old_of n))))
            e
        in
        let rel = Urm.Ctx.eval ctx step in
        out := Urm.Reformulate.result_tuples sq ~factor (Some rel) :: !out
      end)
    touched;
  List.concat (List.rev !out)
