module Json = Urm_util.Json
module Value = Urm_relalg.Value

type t =
  | Insert of { rel : string; row : Value.t array }
  | Delete of { rel : string; row : Value.t array }
  | Reweight of { mapping : int; prob : float }
  | Prune of { mapping : int }
  | Add_mapping of {
      id : int option;
      pairs : (string * string) list;
      prob : float;
      score : float;
    }

type batch = t list

let touched_relations batch =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (function
      | Insert { rel; _ } | Delete { rel; _ } ->
        if Hashtbl.mem seen rel then None
        else begin
          Hashtbl.add seen rel ();
          Some rel
        end
      | Reweight _ | Prune _ | Add_mapping _ -> None)
    batch

let touches_mappings =
  List.exists (function
    | Reweight _ | Prune _ | Add_mapping _ -> true
    | Insert _ | Delete _ -> false)

let has_deletes = List.exists (function Delete _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON (the wire form of the service's "mutate" op).

   Row values use the scalar convention of the query protocol: integral
   numbers parse as [Int].  A float-typed column receiving such a value is
   coerced back by {!Vcatalog.commit} against the stored column's type, so
   the round trip through JSON is lossless for TPC-H data. *)

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Num (float_of_int i)
  | Value.Float f -> Json.Num f
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Ok (Value.Int (int_of_float f))
  | Json.Num f -> Ok (Value.Float f)
  | Json.Str s -> Ok (Value.Str s)
  | _ -> Error "row values must be scalars"

let row_to_json row = Json.Arr (List.map value_to_json (Array.to_list row))

let to_json = function
  | Insert { rel; row } ->
    Json.Obj [ ("op", Json.Str "insert"); ("rel", Json.Str rel); ("row", row_to_json row) ]
  | Delete { rel; row } ->
    Json.Obj [ ("op", Json.Str "delete"); ("rel", Json.Str rel); ("row", row_to_json row) ]
  | Reweight { mapping; prob } ->
    Json.Obj
      [
        ("op", Json.Str "reweight");
        ("mapping", Json.Num (float_of_int mapping));
        ("prob", Json.Num prob);
      ]
  | Prune { mapping } ->
    Json.Obj [ ("op", Json.Str "prune"); ("mapping", Json.Num (float_of_int mapping)) ]
  | Add_mapping { id; pairs; prob; score } ->
    Json.Obj
      ((match id with
       | Some i -> [ ("id", Json.Num (float_of_int i)) ]
       | None -> [])
      @ [
          ("op", Json.Str "add-mapping");
          ( "pairs",
            Json.Arr
              (List.map (fun (t, s) -> Json.Arr [ Json.Str t; Json.Str s ]) pairs) );
          ("prob", Json.Num prob);
          ("score", Json.Num score);
        ])

let batch_to_json batch = Json.Arr (List.map to_json batch)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let row_of_json = function
  | Json.Arr vs ->
    let* values = map_result value_of_json vs in
    Ok (Array.of_list values)
  | _ -> Error "\"row\" must be an array of scalars"

let str_field name json =
  match Json.member name json with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let num_field name json =
  match Json.member name json with
  | Some (Json.Num f) -> Ok f
  | _ -> Error (Printf.sprintf "missing numeric field %S" name)

let int_field name json =
  let* f = num_field name json in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "field %S must be an integer" name)

let row_mutation make json =
  let* rel = str_field "rel" json in
  match Json.member "row" json with
  | Some row_json ->
    let* row = row_of_json row_json in
    Ok (make rel row)
  | None -> Error "missing \"row\""

let pairs_of_json = function
  | Json.Arr ps ->
    map_result
      (function
        | Json.Arr [ Json.Str t; Json.Str s ] -> Ok (t, s)
        | _ -> Error "\"pairs\" entries must be [target, source] string pairs")
      ps
  | _ -> Error "\"pairs\" must be an array"

let of_json json =
  let* op = str_field "op" json in
  match op with
  | "insert" -> row_mutation (fun rel row -> Insert { rel; row }) json
  | "delete" -> row_mutation (fun rel row -> Delete { rel; row }) json
  | "reweight" ->
    let* mapping = int_field "mapping" json in
    let* prob = num_field "prob" json in
    Ok (Reweight { mapping; prob })
  | "prune" ->
    let* mapping = int_field "mapping" json in
    Ok (Prune { mapping })
  | "add-mapping" ->
    let* pairs =
      match Json.member "pairs" json with
      | Some p -> pairs_of_json p
      | None -> Error "missing \"pairs\""
    in
    let* prob = num_field "prob" json in
    let score =
      match Json.member "score" json with Some (Json.Num f) -> f | _ -> prob
    in
    let id =
      match Json.member "id" json with
      | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
      | _ -> None
    in
    Ok (Add_mapping { id; pairs; prob; score })
  | other -> Error ("unknown mutation op " ^ other)

let batch_of_json = function
  | Json.Arr ms -> map_result of_json ms
  | _ -> Error "\"mutations\" must be an array"

let pp ppf = function
  | Insert { rel; row } ->
    Format.fprintf ppf "insert %s(%s)" rel
      (String.concat ", " (Array.to_list (Array.map Value.to_string row)))
  | Delete { rel; row } ->
    Format.fprintf ppf "delete %s(%s)" rel
      (String.concat ", " (Array.to_list (Array.map Value.to_string row)))
  | Reweight { mapping; prob } -> Format.fprintf ppf "reweight m%d := %g" mapping prob
  | Prune { mapping } -> Format.fprintf ppf "prune m%d" mapping
  | Add_mapping { id; pairs; prob; _ } ->
    Format.fprintf ppf "add-mapping%s (%d pairs, p=%g)"
      (match id with Some i -> Printf.sprintf " m%d" i | None -> "")
      (List.length pairs) prob
