(** Delta algebra over reformulated source queries.

    The delta rules per operator (DESIGN.md "Incremental maintenance"):
    selection and projection distribute over deltas (σ(R ∪ Δ) = σR ∪ σΔ),
    and a join telescopes — Δ(A ⋈ B) = (ΔA ⋈ B_old) ∪ (A_new ⋈ ΔB) — which
    generalises to any number of touched leaves by pinning earlier
    occurrences to the new version, the pivot to its delta and later
    occurrences to the old version.  Distinct-set semantics make the union
    of the step results a superset of the growth; subtracting the
    previously-known tuples recovers the exact delta. *)

(** Distinct stored-relation names ([Base] leaves) of an expression, in
    first-appearance (pre-order) order. *)
val base_names : Urm_relalg.Algebra.t -> string list

(** [subst_bases f e] rewrites every [Base n] leaf by [f n occ], where
    [occ] counts prior occurrences of [n] in pre-order; [None] keeps the
    leaf.  Structure (renames, predicates, aggregates) is preserved. *)
val subst_bases :
  (string -> int -> Urm_relalg.Algebra.t option) ->
  Urm_relalg.Algebra.t ->
  Urm_relalg.Algebra.t

(** [candidates ctx sq ~factor ~old_of ~delta_of e] target tuples that may
    be new after an insert-only batch: evaluates one telescoped step
    expression per touched occurrence of [e] through [ctx] (which must be
    pinned to the {e post}-commit snapshot) and reifies each result through
    [Urm.Reformulate.result_tuples].  [delta_of] returns the inserted rows
    of a touched relation ([None] = untouched), [old_of] its pre-commit
    version.  The caller must ensure [sq] is non-aggregate with an [Expr]
    body and subtract the pre-commit tuple set; duplicates across steps are
    possible and harmless. *)
val candidates :
  Urm.Ctx.t ->
  Urm.Reformulate.t ->
  factor:int ->
  old_of:(string -> Urm_relalg.Relation.t) ->
  delta_of:(string -> Urm_relalg.Relation.t option) ->
  Urm_relalg.Algebra.t ->
  Urm_relalg.Value.t array list
