(** The versioned catalog: copy-on-write relation versions under a monotone
    epoch.

    Readers pin a {!snapshot} — an immutable (epoch, context, mapping set)
    triple — and keep evaluating over it unperturbed while writers commit:
    {!commit} derives a new catalog version through {!Urm_relalg.Catalog.cow}
    (sharing untouched relations and their indexes), rebinds it into the
    context with {!Urm.Ctx.with_catalog} (sharing the compiled-plan cache),
    and publishes the new head atomically.  Commits are serialised by an
    internal writer lock; reads never block.

    A bounded history of (pre, post, batch) entries lets maintained answer
    states ({!State}) catch up by replaying the batches they missed instead
    of rebuilding. *)

type snapshot = {
  epoch : int;
  ctx : Urm.Ctx.t;
  mappings : Urm.Mapping.t list;
}

type entry = { pre : snapshot; post : snapshot; batch : Mutation.batch }

type outcome = {
  snapshot : snapshot;  (** the new head *)
  touched : string list;  (** relations changed by inserts/deletes *)
  mappings_changed : bool;
  resolved : Mutation.batch;
      (** the committed batch: rows coerced to column types, add-mapping
          ids assigned *)
}

type t

(** [create ?history ?eager_indexes ~ctx ~mappings ()] — epoch 0 is the
    given state.  [history] (default 32) bounds the replay log.
    [eager_indexes] (default false) makes every commit rebuild the touched
    relations' indexes before publishing — required when concurrent readers
    evaluate over the head (lazy index construction is not thread-safe);
    single-threaded callers can skip it and let indexes build on demand. *)
val create :
  ?history:int ->
  ?eager_indexes:bool ->
  ctx:Urm.Ctx.t ->
  mappings:Urm.Mapping.t list ->
  unit ->
  t

(** The current head.  Safe from any domain; the returned snapshot never
    changes. *)
val head : t -> snapshot

val epoch : t -> int

(** [commit t batch] validates and applies [batch] atomically: all-or-
    nothing (an unknown relation/mapping, arity or type mismatch, or a
    delete of an absent row rejects the whole batch with no state change).
    Inserted rows are coerced against the stored column types (JSON
    round-trips integral floats as ints); inserts append at the end of the
    relation, so the pre-commit rows remain a prefix — {!State} recovers
    insert deltas as row-array suffixes.  Serialised against concurrent
    commits; readers pinned to older snapshots are unaffected. *)
val commit : t -> Mutation.batch -> (outcome, string) result

(** [entries_since t epoch] the committed entries leading from [epoch] to
    the head, oldest first ([Some []] when already current); [None] when
    the history no longer reaches back that far (caller must rebuild). *)
val entries_since : t -> int -> entry list option
