open Urm_relalg
module Metrics = Urm_obs.Metrics

(* One distinct reformulation shape: every mapping whose source query has
   the same [Reformulate.key] contributes the same target tuples, so the
   shape carries the summed probability mass of its member mappings
   (exactly e-basic's grouping, kept live instead of recomputed). *)
type shape = {
  key : string;
  sq : Urm.Reformulate.t;
  expr_rels : string list;  (* stored relations of the body; [] for null bodies *)
  mutable factor : int;
  mutable weight : float;  (* Σ Pr(m) over member mappings *)
  mutable members : int;
  mutable tuples : (Value.t array, unit) Hashtbl.t;  (* empty = θ *)
}

type t = {
  query : Urm.Query.t;
  answer : Urm.Answer.t;
  shapes : (string, shape) Hashtbl.t;
  mutable order : string list;  (* shape keys, first-appearance order *)
  mutable epoch : int;
}

let answer t = t.answer
let epoch t = t.epoch
let shape_count t = Hashtbl.length t.shapes
let query t = t.query

(* ------------------------------------------------------------------ *)

let eval_shape (ctx : Urm.Ctx.t) sq =
  let factor = Urm.Reformulate.factor ctx.Urm.Ctx.catalog sq in
  let tuples =
    match sq.Urm.Reformulate.body with
    | Urm.Reformulate.Expr e ->
      Urm.Reformulate.result_tuples sq ~factor (Some (Urm.Ctx.eval ctx e))
    | Urm.Reformulate.Unsatisfiable | Urm.Reformulate.Trivial ->
      Urm.Reformulate.result_tuples sq ~factor None
  in
  let tbl = Hashtbl.create (max 16 (List.length tuples)) in
  List.iter (fun tu -> Hashtbl.replace tbl tu ()) tuples;
  (factor, tbl)

let shape_key (ctx : Urm.Ctx.t) q m =
  let sq = Urm.Reformulate.source_query ctx.Urm.Ctx.target q m in
  (Urm.Reformulate.key sq, sq)

(* Add [dw] mass to every tuple the shape currently produces (θ when it
   produces none). *)
let patch_shape answer s dw =
  if dw <> 0. then
    if Hashtbl.length s.tuples = 0 then Urm.Answer.add_null answer dw
    else Hashtbl.iter (fun tu () -> Urm.Answer.add answer tu dw) s.tuples

let add_member t (ctx : Urm.Ctx.t) m =
  let k, sq = shape_key ctx t.query m in
  let prob = m.Urm.Mapping.prob in
  match Hashtbl.find_opt t.shapes k with
  | Some s ->
    s.weight <- s.weight +. prob;
    s.members <- s.members + 1;
    s
  | None ->
    let factor, tuples = eval_shape ctx sq in
    let expr_rels =
      match sq.Urm.Reformulate.body with
      | Urm.Reformulate.Expr e -> Delta.base_names e
      | _ -> []
    in
    let s = { key = k; sq; expr_rels; factor; weight = prob; members = 1; tuples } in
    Hashtbl.replace t.shapes k s;
    t.order <- k :: t.order;
    s

let build (snap : Vcatalog.snapshot) q =
  let t =
    {
      query = q;
      answer = Urm.Answer.create (Urm.Reformulate.output_header q);
      shapes = Hashtbl.create 16;
      order = [];
      epoch = snap.epoch;
    }
  in
  List.iter (fun m -> ignore (add_member t snap.ctx m)) snap.mappings;
  t.order <- List.rev t.order;
  List.iter (fun k -> let s = Hashtbl.find t.shapes k in patch_shape t.answer s s.weight) t.order;
  Urm.Answer.compact t.answer;
  t

(* ------------------------------------------------------------------ *)
(* Delta application *)

let inter_nonempty xs tbl = List.exists (Hashtbl.mem tbl) xs

(* Insert deltas as row-array suffixes: commits append, so the rows beyond
   the pre-commit cardinality are exactly this batch's inserts. *)
let suffix_deltas (pre : Vcatalog.snapshot) (post : Vcatalog.snapshot) touched =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun rel ->
      let old_r = Catalog.find pre.ctx.Urm.Ctx.catalog rel in
      let new_r = Catalog.find post.ctx.Urm.Ctx.catalog rel in
      let n0 = Relation.cardinality old_r in
      let rows =
        Array.sub new_r.Relation.rows n0 (Relation.cardinality new_r - n0)
      in
      Hashtbl.replace tbl rel (Relation.of_rows ~cols:(Relation.cols new_r) rows))
    touched;
  tbl

let reeval_shape t (post : Vcatalog.snapshot) s =
  let factor, tuples = eval_shape post.ctx s.sq in
  let was_empty = Hashtbl.length s.tuples = 0 in
  let now_empty = Hashtbl.length tuples = 0 in
  Hashtbl.iter
    (fun tu () ->
      if not (Hashtbl.mem s.tuples tu) then Urm.Answer.add t.answer tu s.weight)
    tuples;
  Hashtbl.iter
    (fun tu () ->
      if not (Hashtbl.mem tuples tu) then Urm.Answer.add t.answer tu (-.s.weight))
    s.tuples;
  if was_empty && not now_empty then Urm.Answer.add_null t.answer (-.s.weight);
  if (not was_empty) && now_empty then Urm.Answer.add_null t.answer s.weight;
  s.tuples <- tuples;
  s.factor <- factor

let delta_shape t (pre : Vcatalog.snapshot) (post : Vcatalog.snapshot) deltas s =
  match s.sq.Urm.Reformulate.body with
  | Urm.Reformulate.Expr e ->
    let old_of n = Catalog.find pre.ctx.Urm.Ctx.catalog n in
    let delta_of n = Hashtbl.find_opt deltas n in
    let candidates =
      Delta.candidates post.ctx s.sq ~factor:s.factor ~old_of ~delta_of e
    in
    let was_empty = Hashtbl.length s.tuples = 0 in
    let added = ref 0 in
    List.iter
      (fun tu ->
        if not (Hashtbl.mem s.tuples tu) then begin
          Hashtbl.replace s.tuples tu ();
          Urm.Answer.add t.answer tu s.weight;
          incr added
        end)
      candidates;
    if was_empty && !added > 0 then Urm.Answer.add_null t.answer (-.s.weight)
  | Urm.Reformulate.Unsatisfiable | Urm.Reformulate.Trivial -> assert false

let remove_shape t k =
  Hashtbl.remove t.shapes k;
  t.order <- List.filter (fun k' -> not (String.equal k' k)) t.order

let apply ?(metrics = Metrics.global) t (e : Vcatalog.entry) =
  if e.Vcatalog.pre.epoch <> t.epoch then
    invalid_arg
      (Printf.sprintf "State.apply: state at epoch %d, entry starts at %d" t.epoch
         e.Vcatalog.pre.epoch);
  let m = Metrics.scope metrics "incr" in
  let c_delta = Metrics.counter m "shapes.delta" in
  let c_reeval = Metrics.counter m "shapes.reeval" in
  let c_skipped = Metrics.counter m "shapes.skipped" in
  let pre = e.Vcatalog.pre and post = e.Vcatalog.post and batch = e.Vcatalog.batch in
  (* Data phase: patch every shape whose body or aggregate factor reads a
     touched relation; untouched shapes cost nothing. *)
  let touched = Mutation.touched_relations batch in
  if touched <> [] then begin
    let touched_tbl = Hashtbl.create 4 in
    List.iter (fun r -> Hashtbl.replace touched_tbl r ()) touched;
    let monotone = not (Mutation.has_deletes batch) in
    let deltas = if monotone then suffix_deltas pre post touched else Hashtbl.create 0 in
    List.iter
      (fun k ->
        let s = Hashtbl.find t.shapes k in
        let body_dep = inter_nonempty s.expr_rels touched_tbl in
        let is_aggregate = Option.is_some s.sq.Urm.Reformulate.aggregate in
        let factor_dep =
          is_aggregate && inter_nonempty s.sq.Urm.Reformulate.factor_rels touched_tbl
        in
        if not (body_dep || factor_dep) then Metrics.incr c_skipped
        else if monotone && (not is_aggregate) && body_dep then begin
          delta_shape t pre post deltas s;
          Metrics.incr c_delta
        end
        else begin
          reeval_shape t post s;
          Metrics.incr c_reeval
        end)
      t.order
  end;
  (* Mapping phase: weights patch in place; pruned-empty shapes drop out;
     added mappings either join an existing shape or evaluate a new one
     over the post-commit snapshot. *)
  let mappings = ref pre.mappings in
  List.iter
    (fun mu ->
      match mu with
      | Mutation.Insert _ | Mutation.Delete _ -> ()
      | Mutation.Reweight { mapping; prob } ->
        let mp = List.find (fun mp -> mp.Urm.Mapping.id = mapping) !mappings in
        let k, _ = shape_key post.ctx t.query mp in
        let s = Hashtbl.find t.shapes k in
        let dw = prob -. mp.Urm.Mapping.prob in
        patch_shape t.answer s dw;
        s.weight <- s.weight +. dw;
        mappings :=
          List.map
            (fun mp ->
              if mp.Urm.Mapping.id = mapping then Urm.Mapping.with_prob mp prob
              else mp)
            !mappings
      | Mutation.Prune { mapping } ->
        let mp = List.find (fun mp -> mp.Urm.Mapping.id = mapping) !mappings in
        let k, _ = shape_key post.ctx t.query mp in
        let s = Hashtbl.find t.shapes k in
        patch_shape t.answer s (-.mp.Urm.Mapping.prob);
        s.weight <- s.weight -. mp.Urm.Mapping.prob;
        s.members <- s.members - 1;
        if s.members = 0 then remove_shape t k;
        mappings := List.filter (fun mp -> mp.Urm.Mapping.id <> mapping) !mappings
      | Mutation.Add_mapping { id = Some id; pairs; prob; score } ->
        let mp = Urm.Mapping.make ~id ~prob ~score pairs in
        let s = add_member t post.ctx mp in
        patch_shape t.answer s prob;
        mappings := !mappings @ [ mp ]
      | Mutation.Add_mapping { id = None; _ } ->
        invalid_arg "State.apply: unresolved add-mapping (commit the batch first)")
    batch;
  Urm.Answer.compact t.answer;
  t.epoch <- post.epoch

let catch_up ?metrics vcat t =
  let head = Vcatalog.head vcat in
  if head.Vcatalog.epoch = t.epoch then (t, `Current)
  else
    match Vcatalog.entries_since vcat t.epoch with
    | Some entries ->
      List.iter (apply ?metrics t) entries;
      (t, `Patched)
    | None -> (build head t.query, `Rebuilt)

(* ------------------------------------------------------------------ *)

(* The stored relations a query can read through any mapping of the
   snapshot — reformulation only, no evaluation.  This is what the service
   keys selective answer-cache invalidation on. *)
let query_deps (snap : Vcatalog.snapshot) q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note r =
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      out := r :: !out
    end
  in
  List.iter
    (fun m ->
      let sq = Urm.Reformulate.source_query snap.Vcatalog.ctx.Urm.Ctx.target q m in
      (match sq.Urm.Reformulate.body with
      | Urm.Reformulate.Expr e -> List.iter note (Delta.base_names e)
      | Urm.Reformulate.Unsatisfiable | Urm.Reformulate.Trivial -> ());
      List.iter note sq.Urm.Reformulate.factor_rels)
    snap.Vcatalog.mappings;
  List.rev !out
