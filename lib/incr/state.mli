(** Maintained probabilistic answers: delta evaluation over the versioned
    catalog.

    A state pins one query's fully-evaluated answer together with the
    per-shape decomposition that produced it: every exact algorithm of the
    paper computes  answer = Σ_shapes weight(shape) · tuples(shape), where
    a shape is one distinct reformulation ({!Urm.Reformulate.key}) and its
    weight the summed probability of the mappings sharing it.  Keeping the
    decomposition live makes the answer patchable:

    - data mutations touch only shapes whose body (or aggregate factor)
      reads a mutated relation — untouched shapes cost nothing;
    - insert-only batches on non-aggregate shapes take the monotone delta
      path ({!Delta.candidates}): new tuples join the shape at its weight;
    - deletes and aggregates re-evaluate just the touched shapes and patch
      the answer by the set difference;
    - probability reweights/prunes/adds patch bucket masses directly,
      evaluating at most the newly-added shape.

    After every batch the answer is {!Urm.Answer.compact}ed, so bucket
    drift from repeated add/subtract cycles never accumulates and the
    maintained answer stays {!Urm.Answer.equal} (within [Prob.eps]) to a
    fresh evaluation at the same epoch. *)

type t

(** [build snap q] evaluates [q] over the snapshot — one evaluation per
    distinct shape, e-basic style — and records the decomposition. *)
val build : Vcatalog.snapshot -> Urm.Query.t -> t

(** [apply ?metrics t entry] patches the state across one committed batch.
    The state must be at [entry.pre.epoch] (raises [Invalid_argument]
    otherwise); afterwards it is at [entry.post.epoch].  Counts
    [incr/shapes.delta], [incr/shapes.reeval] and [incr/shapes.skipped]
    under [metrics] (default {!Urm_obs.Metrics.global}). *)
val apply : ?metrics:Urm_obs.Metrics.t -> t -> Vcatalog.entry -> unit

(** [catch_up ?metrics vcat t] brings the state to the catalog head:
    [`Current] (already there), [`Patched] (replayed the missed batches
    from the history), or [`Rebuilt] (history no longer reaches the
    state's epoch — returns a fresh {!build} of the head). *)
val catch_up :
  ?metrics:Urm_obs.Metrics.t ->
  Vcatalog.t ->
  t ->
  t * [ `Current | `Patched | `Rebuilt ]

(** The maintained answer.  Owned by the state: callers must not mutate it,
    and must serialise reads against concurrent {!apply}/{!catch_up}. *)
val answer : t -> Urm.Answer.t

val epoch : t -> int
val query : t -> Urm.Query.t

(** Number of live distinct shapes. *)
val shape_count : t -> int

(** [query_deps snap q] the stored relations [q] can read through any
    mapping of the snapshot (reformulation only, no evaluation) — the
    dependency set the service keys selective cache invalidation on. *)
val query_deps : Vcatalog.snapshot -> Urm.Query.t -> string list
