(** Mutations over a session's uncertain-matching state: tuple-level changes
    to the source instance [D] and probability-level changes to the possible
    mapping set [M].

    A {!batch} is applied atomically by {!Vcatalog.commit}: all mutations
    take effect in one epoch bump, and delta evaluation ({!State.apply})
    patches maintained answers against the batch as a whole.  Within a
    batch, data mutations are applied to relations in list order (a delete
    may remove a row inserted earlier in the same batch) and mapping
    mutations likewise; the two groups commute — both orders describe the
    same final instance. *)

type t =
  | Insert of { rel : string; row : Urm_relalg.Value.t array }
  | Delete of { rel : string; row : Urm_relalg.Value.t array }
      (** removes one occurrence of [row]; committing fails when absent *)
  | Reweight of { mapping : int; prob : float }
      (** set [Pr(m_id)]; probabilities are {e not} renormalised — the
          caller owns the invariant that the set's total mass stays ≤ 1 *)
  | Prune of { mapping : int }
  | Add_mapping of {
      id : int option;
          (** [None] until committed; {!Vcatalog.commit} assigns the next
              free id and records the resolved form in its history *)
      pairs : (string * string) list;
      prob : float;
      score : float;
    }

type batch = t list

(** Distinct relation names touched by inserts/deletes, in first-touch
    order. *)
val touched_relations : batch -> string list

(** Whether the batch changes the mapping set (reweight/prune/add). *)
val touches_mappings : batch -> bool

(** Whether the batch deletes any tuple.  Insert-only data change is the
    monotone case where delta evaluation never needs to retract tuples;
    deletes force touched query shapes onto the re-evaluate-and-diff
    path. *)
val has_deletes : batch -> bool

val to_json : t -> Urm_util.Json.t
val of_json : Urm_util.Json.t -> (t, string) result
val batch_to_json : batch -> Urm_util.Json.t
val batch_of_json : Urm_util.Json.t -> (batch, string) result
val pp : Format.formatter -> t -> unit
