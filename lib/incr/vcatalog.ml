open Urm_relalg

type snapshot = {
  epoch : int;
  ctx : Urm.Ctx.t;
  mappings : Urm.Mapping.t list;
}

type entry = { pre : snapshot; post : snapshot; batch : Mutation.batch }

type outcome = {
  snapshot : snapshot;
  touched : string list;
  mappings_changed : bool;
  resolved : Mutation.batch;  (** batch with rows coerced and ids assigned *)
}

type t = {
  head : snapshot Atomic.t;
  mutable history : entry list;  (* newest first, bounded *)
  history_cap : int;
  wlock : Mutex.t;
  eager_indexes : bool;
}

let create ?(history = 32) ?(eager_indexes = false) ~ctx ~mappings () =
  {
    head = Atomic.make { epoch = 0; ctx; mappings };
    history = [];
    history_cap = max 0 history;
    wlock = Mutex.create ();
    eager_indexes;
  }

let head t = Atomic.get t.head
let epoch t = (Atomic.get t.head).epoch

(* ------------------------------------------------------------------ *)
(* Row typing.  Catalogs carry no declared column types; the stored rows
   are the schema.  Incoming rows (CLI flags, wire JSON — where 5.0 and 5
   are the same number) are coerced against a template row of the target
   relation so typed column vectors stay homogeneous. *)

let coerce_value rel col template v =
  match (template, v) with
  | _, Value.Null -> Ok Value.Null
  | Value.Int _, Value.Int _
  | Value.Float _, Value.Float _
  | Value.Str _, Value.Str _
  | Value.Null, _ ->
    Ok v
  | Value.Float _, Value.Int i -> Ok (Value.Float (float_of_int i))
  | Value.Int _, Value.Float f when Float.is_integer f ->
    Ok (Value.Int (int_of_float f))
  | _ ->
    Error
      (Printf.sprintf "%s.%s: value %s does not match the column's type" rel col
         (Value.to_string v))

let coerce_row rel_name rel row =
  if Array.length row <> Relation.arity rel then
    Error
      (Printf.sprintf "%s: row arity %d, relation arity %d" rel_name
         (Array.length row) (Relation.arity rel))
  else if Relation.is_empty rel then Ok row
  else begin
    let template = rel.Relation.rows.(0) in
    let out = Array.copy row in
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then
          match coerce_value rel_name rel.Relation.cols.(i) template.(i) v with
          | Ok v' -> out.(i) <- v'
          | Error e -> err := Some e)
      row;
    match !err with None -> Ok out | Some e -> Error e
  end

(* ------------------------------------------------------------------ *)
(* Pending per-relation edits: the base row array with deletion marks plus
   appended rows (kept reversed).  Inserts append at the end, so an
   insert-only commit leaves the pre-commit rows as a prefix of the new
   row array — the property {!State} uses to recover each relation's
   delta as a suffix. *)

type pending = {
  base : Value.t array array;
  kept : bool array;
  mutable appended : Value.t array list;  (* reversed *)
}

let row_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let ( let* ) = Result.bind

let apply_data cat pendings m =
  let pending_of rel =
    match Hashtbl.find_opt pendings rel with
    | Some p -> Ok p
    | None -> (
      match Catalog.find cat rel with
      | exception Not_found -> Error ("unknown relation " ^ rel)
      | r ->
        let p =
          {
            base = r.Relation.rows;
            kept = Array.make (Relation.cardinality r) true;
            appended = [];
          }
        in
        Hashtbl.replace pendings rel p;
        Ok p)
  in
  match m with
  | Mutation.Insert { rel; row } ->
    let* r =
      match Catalog.find cat rel with
      | exception Not_found -> Error ("unknown relation " ^ rel)
      | r -> Ok r
    in
    let* row = coerce_row rel r row in
    let* p = pending_of rel in
    p.appended <- row :: p.appended;
    Ok (Mutation.Insert { rel; row })
  | Mutation.Delete { rel; row } ->
    let* r =
      match Catalog.find cat rel with
      | exception Not_found -> Error ("unknown relation " ^ rel)
      | r -> Ok r
    in
    let* row = coerce_row rel r row in
    let* p = pending_of rel in
    (* Remove the first live occurrence in current order: base rows first,
       then rows appended earlier in this batch. *)
    let found = ref false in
    Array.iteri
      (fun i b -> if (not !found) && p.kept.(i) && row_equal b row then begin
           p.kept.(i) <- false;
           found := true
         end)
      p.base;
    if not !found then begin
      let rec drop = function
        | [] -> []
        | r :: rest when (not !found) && row_equal r row ->
          found := true;
          rest
        | r :: rest -> r :: drop rest
      in
      (* [appended] is reversed; deletion order among equal duplicates is
         immaterial (they are indistinguishable). *)
      p.appended <- drop p.appended
    end;
    if !found then Ok (Mutation.Delete { rel; row })
    else
      Error
        (Printf.sprintf "delete: no such row in %s (%s)" rel
           (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
  | (Mutation.Reweight _ | Mutation.Prune _ | Mutation.Add_mapping _) as m -> Ok m

let apply_mapping mappings m =
  match m with
  | Mutation.Reweight { mapping; prob } ->
    if not (prob >= 0. && prob <= 1.) then
      Error (Printf.sprintf "reweight: probability %g outside [0, 1]" prob)
    else if List.exists (fun mp -> mp.Urm.Mapping.id = mapping) mappings then
      Ok
        ( List.map
            (fun mp ->
              if mp.Urm.Mapping.id = mapping then Urm.Mapping.with_prob mp prob
              else mp)
            mappings,
          m )
    else Error (Printf.sprintf "reweight: unknown mapping %d" mapping)
  | Mutation.Prune { mapping } ->
    if List.exists (fun mp -> mp.Urm.Mapping.id = mapping) mappings then
      Ok (List.filter (fun mp -> mp.Urm.Mapping.id <> mapping) mappings, m)
    else Error (Printf.sprintf "prune: unknown mapping %d" mapping)
  | Mutation.Add_mapping { id = _; pairs; prob; score } -> (
    if not (prob >= 0. && prob <= 1.) then
      Error (Printf.sprintf "add-mapping: probability %g outside [0, 1]" prob)
    else
      let id =
        1 + List.fold_left (fun acc mp -> max acc mp.Urm.Mapping.id) (-1) mappings
      in
      match Urm.Mapping.make ~id ~prob ~score pairs with
      | exception Invalid_argument msg -> Error ("add-mapping: " ^ msg)
      | mp ->
        Ok (mappings @ [ mp ], Mutation.Add_mapping { id = Some id; pairs; prob; score })
    )
  | Mutation.Insert _ | Mutation.Delete _ -> Ok (mappings, m)

let finalize_pending cat rel p =
  let rows =
    Array.of_list
      (List.concat
         [
           List.filteri (fun i _ -> p.kept.(i)) (Array.to_list p.base);
           List.rev p.appended;
         ])
  in
  Relation.of_rows ~cols:(Relation.cols (Catalog.find cat rel)) rows

let commit t batch =
  Mutex.lock t.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.wlock)
    (fun () ->
      let pre = Atomic.get t.head in
      let cat = pre.ctx.Urm.Ctx.catalog in
      let pendings : (string, pending) Hashtbl.t = Hashtbl.create 4 in
      (* Validate and stage everything before publishing anything: a failed
         mutation leaves the head untouched. *)
      let rec stage mappings resolved = function
        | [] -> Ok (mappings, List.rev resolved)
        | m :: rest ->
          let* m = apply_data cat pendings m in
          let* mappings, m = apply_mapping mappings m in
          stage mappings (m :: resolved) rest
      in
      match stage pre.mappings [] batch with
      | Error _ as e -> e
      | Ok (mappings, resolved) ->
        let touched = Mutation.touched_relations resolved in
        let replacements =
          List.map (fun rel -> (rel, finalize_pending cat rel (Hashtbl.find pendings rel))) touched
        in
        let catalog = Catalog.cow cat replacements in
        if t.eager_indexes then Catalog.build_indexes catalog;
        let post =
          {
            epoch = pre.epoch + 1;
            ctx = Urm.Ctx.with_catalog pre.ctx catalog;
            mappings;
          }
        in
        let entry = { pre; post; batch = resolved } in
        t.history <-
          (if t.history_cap = 0 then []
           else entry :: List.filteri (fun i _ -> i < t.history_cap - 1) t.history);
        Atomic.set t.head post;
        Ok
          {
            snapshot = post;
            touched;
            mappings_changed = Mutation.touches_mappings resolved;
            resolved;
          })

let entries_since t epoch =
  let head = Atomic.get t.head in
  if epoch = head.epoch then Some []
  else if epoch > head.epoch then None
  else begin
    (* history is newest-first; walk back while epochs chain. *)
    let rec collect acc = function
      | e :: rest when e.pre.epoch >= epoch ->
        if e.pre.epoch = epoch then Some (e :: acc) else collect (e :: acc) rest
      | _ -> None
    in
    collect [] t.history
  end
