let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let force_quote s =
  "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let field_of_value = function
  | Value.Null -> ""
  | Value.Int i -> string_of_int i
  | Value.Float f ->
    (* Keep a decimal point so the value re-reads as a float, not an int. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f
  | Value.Str s ->
    (* Quote strings that would otherwise re-read as numbers or Null, so
       untyped round-trips preserve types. *)
    if s = "" || int_of_string_opt s <> None || float_of_string_opt s <> None
    then force_quote s
    else quote s

let write_string rel =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," (List.map quote (Relation.cols rel)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map field_of_value row)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let write_file path rel =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write_string rel))

(* ------------------------------------------------------------------ *)

(* Split CSV text into rows of raw fields, honouring quotes. *)
let parse_rows text =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted_field = ref false in
  let pos = ref 0 in
  let n = String.length text in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted_field) :: !fields;
    Buffer.clear buf;
    quoted_field := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  while !pos < n do
    let c = text.[!pos] in
    if c = '"' then begin
      if Buffer.length buf > 0 && not !quoted_field then
        failwith "Csv: quote inside unquoted field";
      quoted_field := true;
      incr pos;
      let closed = ref false in
      while not !closed do
        if !pos >= n then failwith "Csv: unterminated quoted field"
        else if text.[!pos] = '"' then
          if !pos + 1 < n && text.[!pos + 1] = '"' then begin
            Buffer.add_char buf '"';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf text.[!pos];
          incr pos
        end
      done
    end
    else if c = ',' then begin
      flush_field ();
      incr pos
    end
    else if c = '\n' then begin
      flush_row ();
      incr pos
    end
    else if c = '\r' then incr pos
    else begin
      Buffer.add_char buf c;
      incr pos
    end
  done;
  (* A quoted field pending at EOF counts even when its text is empty
     ([""] with no trailing newline is a one-field row). *)
  if Buffer.length buf > 0 || !quoted_field || !fields <> [] then flush_row ();
  List.rev !rows

let infer_value (text, quoted) =
  if quoted then Value.Str text
  else if text = "" then Value.Null
  else
    match int_of_string_opt text with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Value.Float f
      | None -> Value.Str text)

let typed_value ty (text, quoted) =
  if text = "" && not quoted then Value.Null
  else
    match ty with
    | Schema.TInt -> begin
      match int_of_string_opt text with
      | Some i -> Value.Int i
      | None -> failwith (Printf.sprintf "Csv: %S is not an integer" text)
    end
    | Schema.TFloat -> begin
      match float_of_string_opt text with
      | Some f -> Value.Float f
      | None -> failwith (Printf.sprintf "Csv: %S is not a float" text)
    end
    | Schema.TStr -> Value.Str text

let read_string ?schema text =
  match parse_rows text with
  | [] -> failwith "Csv: empty input"
  | header :: body ->
    let cols = List.map fst header in
    let converters =
      match schema with
      | None -> List.map (fun _ -> infer_value) cols
      | Some rel ->
        let declared = List.map (fun a -> a.Schema.aname) rel.Schema.attrs in
        List.iter
          (fun c ->
            if not (List.mem c declared) then
              failwith (Printf.sprintf "Csv: unexpected column %S" c))
          cols;
        List.iter
          (fun d ->
            if not (List.mem d cols) then
              failwith (Printf.sprintf "Csv: missing column %S" d))
          declared;
        List.map
          (fun c ->
            let attr = List.find (fun a -> String.equal a.Schema.aname c) rel.Schema.attrs in
            typed_value attr.Schema.ty)
          cols
    in
    let rows =
      List.map
        (fun fields ->
          if List.length fields <> List.length cols then
            failwith "Csv: row arity mismatch";
          Array.of_list (List.map2 (fun conv f -> conv f) converters fields))
        body
    in
    Relation.create ~cols rows

let read_file ?schema path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_string ?schema (really_input_string ic (in_channel_length ic)))

let export_catalog dir cat =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name -> write_file (Filename.concat dir (name ^ ".csv")) (Catalog.find cat name))
    (Catalog.names cat)

let import_catalog ~schema dir =
  let cat = Catalog.create () in
  List.iter
    (fun (rel : Schema.rel) ->
      let path = Filename.concat dir (rel.Schema.rname ^ ".csv") in
      if not (Sys.file_exists path) then
        failwith (Printf.sprintf "Csv: missing file %s" path);
      Catalog.add cat rel.Schema.rname (read_file ~schema:rel path))
    schema.Schema.rels;
  cat
