(** Typed column vectors and row batches — the data plane of the vectorized
    engine.

    Stored relations columnise lazily ({!Relation.columns}) into the
    tightest representation that preserves [Value.t] identity exactly:
    unboxed ints/floats with an optional null mask, dictionary-interned
    strings, or a boxed fallback for mixed-type columns.  A {!batch} is a
    slice of up to {!batch_size} rows over shared vectors plus a selection
    vector of {e absolute} row indices — filters narrow the selection and
    projections remap the vector array, neither copying column data. *)

type vec =
  | VInt of int array * Bytes.t option
      (** values + null mask ([None] = no nulls); a set byte marks Null *)
  | VFloat of float array * Bytes.t option
  | VStr of int array * string array
      (** per-row dictionary ids ([-1] = Null) + the dictionary *)
  | VVal of Value.t array  (** boxed fallback for mixed-type columns *)
  | VConst of Value.t  (** every row holds the same value (broadcast) *)

type batch = {
  vecs : vec array;
  sel : int array;
      (** absolute row indices into each vec; only [sel.(0..n-1)] is live *)
  n : int;
}

(** A batch annotated with an e-unit's mapping-mass weight vector: the
    Pr(mᵢ) of every mapping whose reformulation contains the e-unit that
    produced the batch, in ascending mapping order.  The factorized
    multi-mapping executor streams these so one plan execution carries the
    probability mass of all its mappings at once; the vector is shared
    across all batches of one execution. *)
type weighted = { batch : batch; weights : float array }

val batch_size : int

(** [null_at mask i] — true when the mask marks row [i] null. *)
val null_at : Bytes.t -> int -> bool

(** [get v i] the value of absolute row [i]. *)
val get : vec -> int -> Value.t

(** [getter v] specialises {!get} once per vector for tight loops. *)
val getter : vec -> int -> Value.t

(** [row b k] materialises the [k]-th {e selected} row as a fresh array. *)
val row : batch -> int -> Value.t array

(** [of_rows ~arity rows] columnises a row store, one tightest-fit vector
    per column. *)
val of_rows : arity:int -> Value.t array array -> vec array

(** [batch_of_rows rows n] transposes [rows.(0..n-1)] into an all-boxed
    batch with an identity selection (the rows are copied out, so the
    caller may reuse the buffer). *)
val batch_of_rows : Value.t array array -> int -> batch

(** [batching_sink bsink] = [(push, flush)]: [push] buffers rows and emits
    a batch every {!batch_size}; [flush] emits the remainder. *)
val batching_sink : (batch -> unit) -> (Value.t array -> unit) * (unit -> unit)

(** [iter_chunks n ~f] covers [0, n) with consecutive identity selections
    of at most {!batch_size} rows: [f sel len]. *)
val iter_chunks : int -> f:(int array -> int -> unit) -> unit
